file(REMOVE_RECURSE
  "CMakeFiles/screenshot.dir/screenshot.cpp.o"
  "CMakeFiles/screenshot.dir/screenshot.cpp.o.d"
  "screenshot"
  "screenshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screenshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
