# Empty dependencies file for screenshot.
# This may be replaced when dependencies are built.
