file(REMOVE_RECURSE
  "CMakeFiles/custom_panel.dir/custom_panel.cpp.o"
  "CMakeFiles/custom_panel.dir/custom_panel.cpp.o.d"
  "custom_panel"
  "custom_panel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_panel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
