# Empty dependencies file for custom_panel.
# This may be replaced when dependencies are built.
