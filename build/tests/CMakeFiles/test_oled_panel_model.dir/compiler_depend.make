# Empty compiler generated dependencies file for test_oled_panel_model.
# This may be replaced when dependencies are built.
