file(REMOVE_RECURSE
  "CMakeFiles/test_oled_panel_model.dir/test_oled_panel_model.cpp.o"
  "CMakeFiles/test_oled_panel_model.dir/test_oled_panel_model.cpp.o.d"
  "test_oled_panel_model"
  "test_oled_panel_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oled_panel_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
