file(REMOVE_RECURSE
  "CMakeFiles/test_frame_stats_recorder.dir/test_frame_stats_recorder.cpp.o"
  "CMakeFiles/test_frame_stats_recorder.dir/test_frame_stats_recorder.cpp.o.d"
  "test_frame_stats_recorder"
  "test_frame_stats_recorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frame_stats_recorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
