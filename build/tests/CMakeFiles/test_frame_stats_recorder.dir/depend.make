# Empty dependencies file for test_frame_stats_recorder.
# This may be replaced when dependencies are built.
