# Empty dependencies file for test_param_app_profiles.
# This may be replaced when dependencies are built.
