file(REMOVE_RECURSE
  "CMakeFiles/test_scenes.dir/test_scenes.cpp.o"
  "CMakeFiles/test_scenes.dir/test_scenes.cpp.o.d"
  "test_scenes"
  "test_scenes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
