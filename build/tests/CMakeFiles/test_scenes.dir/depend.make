# Empty dependencies file for test_scenes.
# This may be replaced when dependencies are built.
