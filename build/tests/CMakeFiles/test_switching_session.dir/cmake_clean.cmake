file(REMOVE_RECURSE
  "CMakeFiles/test_switching_session.dir/test_switching_session.cpp.o"
  "CMakeFiles/test_switching_session.dir/test_switching_session.cpp.o.d"
  "test_switching_session"
  "test_switching_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_switching_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
