file(REMOVE_RECURSE
  "CMakeFiles/test_param_panel_cadence.dir/test_param_panel_cadence.cpp.o"
  "CMakeFiles/test_param_panel_cadence.dir/test_param_panel_cadence.cpp.o.d"
  "test_param_panel_cadence"
  "test_param_panel_cadence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_param_panel_cadence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
