# Empty compiler generated dependencies file for test_param_panel_cadence.
# This may be replaced when dependencies are built.
