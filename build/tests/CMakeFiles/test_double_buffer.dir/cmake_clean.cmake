file(REMOVE_RECURSE
  "CMakeFiles/test_double_buffer.dir/test_double_buffer.cpp.o"
  "CMakeFiles/test_double_buffer.dir/test_double_buffer.cpp.o.d"
  "test_double_buffer"
  "test_double_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_double_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
