# Empty dependencies file for test_double_buffer.
# This may be replaced when dependencies are built.
