# Empty dependencies file for test_monsoon_meter.
# This may be replaced when dependencies are built.
