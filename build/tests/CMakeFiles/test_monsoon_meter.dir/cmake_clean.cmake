file(REMOVE_RECURSE
  "CMakeFiles/test_monsoon_meter.dir/test_monsoon_meter.cpp.o"
  "CMakeFiles/test_monsoon_meter.dir/test_monsoon_meter.cpp.o.d"
  "test_monsoon_meter"
  "test_monsoon_meter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monsoon_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
