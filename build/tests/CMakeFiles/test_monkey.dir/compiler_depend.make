# Empty compiler generated dependencies file for test_monkey.
# This may be replaced when dependencies are built.
