file(REMOVE_RECURSE
  "CMakeFiles/test_monkey.dir/test_monkey.cpp.o"
  "CMakeFiles/test_monkey.dir/test_monkey.cpp.o.d"
  "test_monkey"
  "test_monkey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monkey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
