file(REMOVE_RECURSE
  "CMakeFiles/test_refresh_rate.dir/test_refresh_rate.cpp.o"
  "CMakeFiles/test_refresh_rate.dir/test_refresh_rate.cpp.o.d"
  "test_refresh_rate"
  "test_refresh_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refresh_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
