# Empty dependencies file for test_touch_booster.
# This may be replaced when dependencies are built.
