file(REMOVE_RECURSE
  "CMakeFiles/test_touch_booster.dir/test_touch_booster.cpp.o"
  "CMakeFiles/test_touch_booster.dir/test_touch_booster.cpp.o.d"
  "test_touch_booster"
  "test_touch_booster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_touch_booster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
