# Empty dependencies file for test_fuzz_region.
# This may be replaced when dependencies are built.
