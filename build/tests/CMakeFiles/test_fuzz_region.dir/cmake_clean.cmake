file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_region.dir/test_fuzz_region.cpp.o"
  "CMakeFiles/test_fuzz_region.dir/test_fuzz_region.cpp.o.d"
  "test_fuzz_region"
  "test_fuzz_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
