file(REMOVE_RECURSE
  "CMakeFiles/test_section_table.dir/test_section_table.cpp.o"
  "CMakeFiles/test_section_table.dir/test_section_table.cpp.o.d"
  "test_section_table"
  "test_section_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_section_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
