# Empty dependencies file for test_section_table.
# This may be replaced when dependencies are built.
