file(REMOVE_RECURSE
  "CMakeFiles/test_param_section_properties.dir/test_param_section_properties.cpp.o"
  "CMakeFiles/test_param_section_properties.dir/test_param_section_properties.cpp.o.d"
  "test_param_section_properties"
  "test_param_section_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_param_section_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
