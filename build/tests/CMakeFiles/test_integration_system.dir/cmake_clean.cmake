file(REMOVE_RECURSE
  "CMakeFiles/test_integration_system.dir/test_integration_system.cpp.o"
  "CMakeFiles/test_integration_system.dir/test_integration_system.cpp.o.d"
  "test_integration_system"
  "test_integration_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
