# Empty dependencies file for test_metering_cost_model.
# This may be replaced when dependencies are built.
