file(REMOVE_RECURSE
  "CMakeFiles/test_multi_surface.dir/test_multi_surface.cpp.o"
  "CMakeFiles/test_multi_surface.dir/test_multi_surface.cpp.o.d"
  "test_multi_surface"
  "test_multi_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
