file(REMOVE_RECURSE
  "CMakeFiles/test_framebuffer.dir/test_framebuffer.cpp.o"
  "CMakeFiles/test_framebuffer.dir/test_framebuffer.cpp.o.d"
  "test_framebuffer"
  "test_framebuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_framebuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
