# Empty dependencies file for test_framebuffer.
# This may be replaced when dependencies are built.
