file(REMOVE_RECURSE
  "CMakeFiles/test_refresh_policy.dir/test_refresh_policy.cpp.o"
  "CMakeFiles/test_refresh_policy.dir/test_refresh_policy.cpp.o.d"
  "test_refresh_policy"
  "test_refresh_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refresh_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
