# Empty compiler generated dependencies file for test_refresh_policy.
# This may be replaced when dependencies are built.
