# Empty dependencies file for test_display_power_manager.
# This may be replaced when dependencies are built.
