file(REMOVE_RECURSE
  "CMakeFiles/test_display_power_manager.dir/test_display_power_manager.cpp.o"
  "CMakeFiles/test_display_power_manager.dir/test_display_power_manager.cpp.o.d"
  "test_display_power_manager"
  "test_display_power_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_display_power_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
