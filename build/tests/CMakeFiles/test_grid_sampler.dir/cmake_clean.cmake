file(REMOVE_RECURSE
  "CMakeFiles/test_grid_sampler.dir/test_grid_sampler.cpp.o"
  "CMakeFiles/test_grid_sampler.dir/test_grid_sampler.cpp.o.d"
  "test_grid_sampler"
  "test_grid_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
