# Empty compiler generated dependencies file for test_grid_sampler.
# This may be replaced when dependencies are built.
