# Empty dependencies file for test_response_latency.
# This may be replaced when dependencies are built.
