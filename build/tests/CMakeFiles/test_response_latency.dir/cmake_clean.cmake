file(REMOVE_RECURSE
  "CMakeFiles/test_response_latency.dir/test_response_latency.cpp.o"
  "CMakeFiles/test_response_latency.dir/test_response_latency.cpp.o.d"
  "test_response_latency"
  "test_response_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_response_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
