file(REMOVE_RECURSE
  "CMakeFiles/test_script_io.dir/test_script_io.cpp.o"
  "CMakeFiles/test_script_io.dir/test_script_io.cpp.o.d"
  "test_script_io"
  "test_script_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_script_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
