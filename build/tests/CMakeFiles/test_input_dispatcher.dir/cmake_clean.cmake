file(REMOVE_RECURSE
  "CMakeFiles/test_input_dispatcher.dir/test_input_dispatcher.cpp.o"
  "CMakeFiles/test_input_dispatcher.dir/test_input_dispatcher.cpp.o.d"
  "test_input_dispatcher"
  "test_input_dispatcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_input_dispatcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
