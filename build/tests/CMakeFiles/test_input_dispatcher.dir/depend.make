# Empty dependencies file for test_input_dispatcher.
# This may be replaced when dependencies are built.
