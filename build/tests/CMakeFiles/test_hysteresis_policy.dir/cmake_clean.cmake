file(REMOVE_RECURSE
  "CMakeFiles/test_hysteresis_policy.dir/test_hysteresis_policy.cpp.o"
  "CMakeFiles/test_hysteresis_policy.dir/test_hysteresis_policy.cpp.o.d"
  "test_hysteresis_policy"
  "test_hysteresis_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hysteresis_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
