# Empty compiler generated dependencies file for test_calibration_regression.
# This may be replaced when dependencies are built.
