file(REMOVE_RECURSE
  "CMakeFiles/test_calibration_regression.dir/test_calibration_regression.cpp.o"
  "CMakeFiles/test_calibration_regression.dir/test_calibration_regression.cpp.o.d"
  "test_calibration_regression"
  "test_calibration_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calibration_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
