file(REMOVE_RECURSE
  "CMakeFiles/test_canvas.dir/test_canvas.cpp.o"
  "CMakeFiles/test_canvas.dir/test_canvas.cpp.o.d"
  "test_canvas"
  "test_canvas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_canvas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
