# Empty compiler generated dependencies file for test_canvas.
# This may be replaced when dependencies are built.
