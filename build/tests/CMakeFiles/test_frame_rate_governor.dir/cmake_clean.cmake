file(REMOVE_RECURSE
  "CMakeFiles/test_frame_rate_governor.dir/test_frame_rate_governor.cpp.o"
  "CMakeFiles/test_frame_rate_governor.dir/test_frame_rate_governor.cpp.o.d"
  "test_frame_rate_governor"
  "test_frame_rate_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frame_rate_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
