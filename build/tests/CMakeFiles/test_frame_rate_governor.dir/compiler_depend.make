# Empty compiler generated dependencies file for test_frame_rate_governor.
# This may be replaced when dependencies are built.
