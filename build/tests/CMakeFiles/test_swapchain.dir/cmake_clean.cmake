file(REMOVE_RECURSE
  "CMakeFiles/test_swapchain.dir/test_swapchain.cpp.o"
  "CMakeFiles/test_swapchain.dir/test_swapchain.cpp.o.d"
  "test_swapchain"
  "test_swapchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swapchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
