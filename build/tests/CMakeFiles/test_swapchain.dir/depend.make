# Empty dependencies file for test_swapchain.
# This may be replaced when dependencies are built.
