# Empty compiler generated dependencies file for test_param_grid_properties.
# This may be replaced when dependencies are built.
