# Empty dependencies file for test_param_scene_properties.
# This may be replaced when dependencies are built.
