file(REMOVE_RECURSE
  "CMakeFiles/test_meter_modes.dir/test_meter_modes.cpp.o"
  "CMakeFiles/test_meter_modes.dir/test_meter_modes.cpp.o.d"
  "test_meter_modes"
  "test_meter_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_meter_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
