# Empty compiler generated dependencies file for test_meter_modes.
# This may be replaced when dependencies are built.
