file(REMOVE_RECURSE
  "CMakeFiles/test_app_model.dir/test_app_model.cpp.o"
  "CMakeFiles/test_app_model.dir/test_app_model.cpp.o.d"
  "test_app_model"
  "test_app_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
