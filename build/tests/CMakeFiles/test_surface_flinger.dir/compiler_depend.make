# Empty compiler generated dependencies file for test_surface_flinger.
# This may be replaced when dependencies are built.
