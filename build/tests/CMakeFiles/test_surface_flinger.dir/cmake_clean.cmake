file(REMOVE_RECURSE
  "CMakeFiles/test_surface_flinger.dir/test_surface_flinger.cpp.o"
  "CMakeFiles/test_surface_flinger.dir/test_surface_flinger.cpp.o.d"
  "test_surface_flinger"
  "test_surface_flinger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surface_flinger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
