file(REMOVE_RECURSE
  "CMakeFiles/test_display_panel.dir/test_display_panel.cpp.o"
  "CMakeFiles/test_display_panel.dir/test_display_panel.cpp.o.d"
  "test_display_panel"
  "test_display_panel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_display_panel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
