# Empty compiler generated dependencies file for test_display_panel.
# This may be replaced when dependencies are built.
