# Empty compiler generated dependencies file for test_self_refresh.
# This may be replaced when dependencies are built.
