file(REMOVE_RECURSE
  "CMakeFiles/test_self_refresh.dir/test_self_refresh.cpp.o"
  "CMakeFiles/test_self_refresh.dir/test_self_refresh.cpp.o.d"
  "test_self_refresh"
  "test_self_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_self_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
