file(REMOVE_RECURSE
  "CMakeFiles/test_content_rate_meter.dir/test_content_rate_meter.cpp.o"
  "CMakeFiles/test_content_rate_meter.dir/test_content_rate_meter.cpp.o.d"
  "test_content_rate_meter"
  "test_content_rate_meter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_content_rate_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
