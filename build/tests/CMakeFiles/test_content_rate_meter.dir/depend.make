# Empty dependencies file for test_content_rate_meter.
# This may be replaced when dependencies are built.
