file(REMOVE_RECURSE
  "CMakeFiles/ccdem_gfx.dir/canvas.cpp.o"
  "CMakeFiles/ccdem_gfx.dir/canvas.cpp.o.d"
  "CMakeFiles/ccdem_gfx.dir/framebuffer.cpp.o"
  "CMakeFiles/ccdem_gfx.dir/framebuffer.cpp.o.d"
  "CMakeFiles/ccdem_gfx.dir/ppm.cpp.o"
  "CMakeFiles/ccdem_gfx.dir/ppm.cpp.o.d"
  "CMakeFiles/ccdem_gfx.dir/region.cpp.o"
  "CMakeFiles/ccdem_gfx.dir/region.cpp.o.d"
  "CMakeFiles/ccdem_gfx.dir/surface.cpp.o"
  "CMakeFiles/ccdem_gfx.dir/surface.cpp.o.d"
  "CMakeFiles/ccdem_gfx.dir/surface_flinger.cpp.o"
  "CMakeFiles/ccdem_gfx.dir/surface_flinger.cpp.o.d"
  "CMakeFiles/ccdem_gfx.dir/swapchain.cpp.o"
  "CMakeFiles/ccdem_gfx.dir/swapchain.cpp.o.d"
  "libccdem_gfx.a"
  "libccdem_gfx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdem_gfx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
