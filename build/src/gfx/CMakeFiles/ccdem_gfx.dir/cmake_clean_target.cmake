file(REMOVE_RECURSE
  "libccdem_gfx.a"
)
