# Empty compiler generated dependencies file for ccdem_gfx.
# This may be replaced when dependencies are built.
