
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gfx/canvas.cpp" "src/gfx/CMakeFiles/ccdem_gfx.dir/canvas.cpp.o" "gcc" "src/gfx/CMakeFiles/ccdem_gfx.dir/canvas.cpp.o.d"
  "/root/repo/src/gfx/framebuffer.cpp" "src/gfx/CMakeFiles/ccdem_gfx.dir/framebuffer.cpp.o" "gcc" "src/gfx/CMakeFiles/ccdem_gfx.dir/framebuffer.cpp.o.d"
  "/root/repo/src/gfx/ppm.cpp" "src/gfx/CMakeFiles/ccdem_gfx.dir/ppm.cpp.o" "gcc" "src/gfx/CMakeFiles/ccdem_gfx.dir/ppm.cpp.o.d"
  "/root/repo/src/gfx/region.cpp" "src/gfx/CMakeFiles/ccdem_gfx.dir/region.cpp.o" "gcc" "src/gfx/CMakeFiles/ccdem_gfx.dir/region.cpp.o.d"
  "/root/repo/src/gfx/surface.cpp" "src/gfx/CMakeFiles/ccdem_gfx.dir/surface.cpp.o" "gcc" "src/gfx/CMakeFiles/ccdem_gfx.dir/surface.cpp.o.d"
  "/root/repo/src/gfx/surface_flinger.cpp" "src/gfx/CMakeFiles/ccdem_gfx.dir/surface_flinger.cpp.o" "gcc" "src/gfx/CMakeFiles/ccdem_gfx.dir/surface_flinger.cpp.o.d"
  "/root/repo/src/gfx/swapchain.cpp" "src/gfx/CMakeFiles/ccdem_gfx.dir/swapchain.cpp.o" "gcc" "src/gfx/CMakeFiles/ccdem_gfx.dir/swapchain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccdem_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
