file(REMOVE_RECURSE
  "libccdem_display.a"
)
