file(REMOVE_RECURSE
  "CMakeFiles/ccdem_display.dir/display_panel.cpp.o"
  "CMakeFiles/ccdem_display.dir/display_panel.cpp.o.d"
  "libccdem_display.a"
  "libccdem_display.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdem_display.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
