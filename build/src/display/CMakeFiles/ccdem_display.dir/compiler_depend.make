# Empty compiler generated dependencies file for ccdem_display.
# This may be replaced when dependencies are built.
