
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/content_rate_meter.cpp" "src/core/CMakeFiles/ccdem_core.dir/content_rate_meter.cpp.o" "gcc" "src/core/CMakeFiles/ccdem_core.dir/content_rate_meter.cpp.o.d"
  "/root/repo/src/core/display_power_manager.cpp" "src/core/CMakeFiles/ccdem_core.dir/display_power_manager.cpp.o" "gcc" "src/core/CMakeFiles/ccdem_core.dir/display_power_manager.cpp.o.d"
  "/root/repo/src/core/frame_rate_governor.cpp" "src/core/CMakeFiles/ccdem_core.dir/frame_rate_governor.cpp.o" "gcc" "src/core/CMakeFiles/ccdem_core.dir/frame_rate_governor.cpp.o.d"
  "/root/repo/src/core/grid_sampler.cpp" "src/core/CMakeFiles/ccdem_core.dir/grid_sampler.cpp.o" "gcc" "src/core/CMakeFiles/ccdem_core.dir/grid_sampler.cpp.o.d"
  "/root/repo/src/core/metering_cost_model.cpp" "src/core/CMakeFiles/ccdem_core.dir/metering_cost_model.cpp.o" "gcc" "src/core/CMakeFiles/ccdem_core.dir/metering_cost_model.cpp.o.d"
  "/root/repo/src/core/section_table.cpp" "src/core/CMakeFiles/ccdem_core.dir/section_table.cpp.o" "gcc" "src/core/CMakeFiles/ccdem_core.dir/section_table.cpp.o.d"
  "/root/repo/src/core/self_refresh_controller.cpp" "src/core/CMakeFiles/ccdem_core.dir/self_refresh_controller.cpp.o" "gcc" "src/core/CMakeFiles/ccdem_core.dir/self_refresh_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccdem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gfx/CMakeFiles/ccdem_gfx.dir/DependInfo.cmake"
  "/root/repo/build/src/display/CMakeFiles/ccdem_display.dir/DependInfo.cmake"
  "/root/repo/build/src/input/CMakeFiles/ccdem_input.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ccdem_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
