# Empty dependencies file for ccdem_core.
# This may be replaced when dependencies are built.
