file(REMOVE_RECURSE
  "CMakeFiles/ccdem_core.dir/content_rate_meter.cpp.o"
  "CMakeFiles/ccdem_core.dir/content_rate_meter.cpp.o.d"
  "CMakeFiles/ccdem_core.dir/display_power_manager.cpp.o"
  "CMakeFiles/ccdem_core.dir/display_power_manager.cpp.o.d"
  "CMakeFiles/ccdem_core.dir/frame_rate_governor.cpp.o"
  "CMakeFiles/ccdem_core.dir/frame_rate_governor.cpp.o.d"
  "CMakeFiles/ccdem_core.dir/grid_sampler.cpp.o"
  "CMakeFiles/ccdem_core.dir/grid_sampler.cpp.o.d"
  "CMakeFiles/ccdem_core.dir/metering_cost_model.cpp.o"
  "CMakeFiles/ccdem_core.dir/metering_cost_model.cpp.o.d"
  "CMakeFiles/ccdem_core.dir/section_table.cpp.o"
  "CMakeFiles/ccdem_core.dir/section_table.cpp.o.d"
  "CMakeFiles/ccdem_core.dir/self_refresh_controller.cpp.o"
  "CMakeFiles/ccdem_core.dir/self_refresh_controller.cpp.o.d"
  "libccdem_core.a"
  "libccdem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
