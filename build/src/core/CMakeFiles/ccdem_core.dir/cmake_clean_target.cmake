file(REMOVE_RECURSE
  "libccdem_core.a"
)
