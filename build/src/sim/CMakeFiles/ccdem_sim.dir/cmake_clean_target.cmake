file(REMOVE_RECURSE
  "libccdem_sim.a"
)
