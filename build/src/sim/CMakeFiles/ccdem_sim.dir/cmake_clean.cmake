file(REMOVE_RECURSE
  "CMakeFiles/ccdem_sim.dir/event_queue.cpp.o"
  "CMakeFiles/ccdem_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/ccdem_sim.dir/rng.cpp.o"
  "CMakeFiles/ccdem_sim.dir/rng.cpp.o.d"
  "CMakeFiles/ccdem_sim.dir/simulator.cpp.o"
  "CMakeFiles/ccdem_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/ccdem_sim.dir/trace.cpp.o"
  "CMakeFiles/ccdem_sim.dir/trace.cpp.o.d"
  "libccdem_sim.a"
  "libccdem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
