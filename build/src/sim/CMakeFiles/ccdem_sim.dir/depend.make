# Empty dependencies file for ccdem_sim.
# This may be replaced when dependencies are built.
