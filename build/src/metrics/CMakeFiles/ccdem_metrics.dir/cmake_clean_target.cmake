file(REMOVE_RECURSE
  "libccdem_metrics.a"
)
