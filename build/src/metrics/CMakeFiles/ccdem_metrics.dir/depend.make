# Empty dependencies file for ccdem_metrics.
# This may be replaced when dependencies are built.
