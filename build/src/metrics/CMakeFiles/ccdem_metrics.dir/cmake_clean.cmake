file(REMOVE_RECURSE
  "CMakeFiles/ccdem_metrics.dir/frame_stats_recorder.cpp.o"
  "CMakeFiles/ccdem_metrics.dir/frame_stats_recorder.cpp.o.d"
  "CMakeFiles/ccdem_metrics.dir/histogram.cpp.o"
  "CMakeFiles/ccdem_metrics.dir/histogram.cpp.o.d"
  "CMakeFiles/ccdem_metrics.dir/quality.cpp.o"
  "CMakeFiles/ccdem_metrics.dir/quality.cpp.o.d"
  "CMakeFiles/ccdem_metrics.dir/response_latency.cpp.o"
  "CMakeFiles/ccdem_metrics.dir/response_latency.cpp.o.d"
  "CMakeFiles/ccdem_metrics.dir/stats.cpp.o"
  "CMakeFiles/ccdem_metrics.dir/stats.cpp.o.d"
  "libccdem_metrics.a"
  "libccdem_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdem_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
