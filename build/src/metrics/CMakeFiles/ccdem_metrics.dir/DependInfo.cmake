
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/frame_stats_recorder.cpp" "src/metrics/CMakeFiles/ccdem_metrics.dir/frame_stats_recorder.cpp.o" "gcc" "src/metrics/CMakeFiles/ccdem_metrics.dir/frame_stats_recorder.cpp.o.d"
  "/root/repo/src/metrics/histogram.cpp" "src/metrics/CMakeFiles/ccdem_metrics.dir/histogram.cpp.o" "gcc" "src/metrics/CMakeFiles/ccdem_metrics.dir/histogram.cpp.o.d"
  "/root/repo/src/metrics/quality.cpp" "src/metrics/CMakeFiles/ccdem_metrics.dir/quality.cpp.o" "gcc" "src/metrics/CMakeFiles/ccdem_metrics.dir/quality.cpp.o.d"
  "/root/repo/src/metrics/response_latency.cpp" "src/metrics/CMakeFiles/ccdem_metrics.dir/response_latency.cpp.o" "gcc" "src/metrics/CMakeFiles/ccdem_metrics.dir/response_latency.cpp.o.d"
  "/root/repo/src/metrics/stats.cpp" "src/metrics/CMakeFiles/ccdem_metrics.dir/stats.cpp.o" "gcc" "src/metrics/CMakeFiles/ccdem_metrics.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccdem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gfx/CMakeFiles/ccdem_gfx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
