file(REMOVE_RECURSE
  "CMakeFiles/ccdem_apps.dir/app_model.cpp.o"
  "CMakeFiles/ccdem_apps.dir/app_model.cpp.o.d"
  "CMakeFiles/ccdem_apps.dir/app_profiles.cpp.o"
  "CMakeFiles/ccdem_apps.dir/app_profiles.cpp.o.d"
  "CMakeFiles/ccdem_apps.dir/game_scene.cpp.o"
  "CMakeFiles/ccdem_apps.dir/game_scene.cpp.o.d"
  "CMakeFiles/ccdem_apps.dir/map_scene.cpp.o"
  "CMakeFiles/ccdem_apps.dir/map_scene.cpp.o.d"
  "CMakeFiles/ccdem_apps.dir/scene_factory.cpp.o"
  "CMakeFiles/ccdem_apps.dir/scene_factory.cpp.o.d"
  "CMakeFiles/ccdem_apps.dir/static_ui_scene.cpp.o"
  "CMakeFiles/ccdem_apps.dir/static_ui_scene.cpp.o.d"
  "CMakeFiles/ccdem_apps.dir/typing_scene.cpp.o"
  "CMakeFiles/ccdem_apps.dir/typing_scene.cpp.o.d"
  "CMakeFiles/ccdem_apps.dir/video_scene.cpp.o"
  "CMakeFiles/ccdem_apps.dir/video_scene.cpp.o.d"
  "CMakeFiles/ccdem_apps.dir/wallpaper_scene.cpp.o"
  "CMakeFiles/ccdem_apps.dir/wallpaper_scene.cpp.o.d"
  "libccdem_apps.a"
  "libccdem_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdem_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
