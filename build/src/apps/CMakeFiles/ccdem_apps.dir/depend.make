# Empty dependencies file for ccdem_apps.
# This may be replaced when dependencies are built.
