
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_model.cpp" "src/apps/CMakeFiles/ccdem_apps.dir/app_model.cpp.o" "gcc" "src/apps/CMakeFiles/ccdem_apps.dir/app_model.cpp.o.d"
  "/root/repo/src/apps/app_profiles.cpp" "src/apps/CMakeFiles/ccdem_apps.dir/app_profiles.cpp.o" "gcc" "src/apps/CMakeFiles/ccdem_apps.dir/app_profiles.cpp.o.d"
  "/root/repo/src/apps/game_scene.cpp" "src/apps/CMakeFiles/ccdem_apps.dir/game_scene.cpp.o" "gcc" "src/apps/CMakeFiles/ccdem_apps.dir/game_scene.cpp.o.d"
  "/root/repo/src/apps/map_scene.cpp" "src/apps/CMakeFiles/ccdem_apps.dir/map_scene.cpp.o" "gcc" "src/apps/CMakeFiles/ccdem_apps.dir/map_scene.cpp.o.d"
  "/root/repo/src/apps/scene_factory.cpp" "src/apps/CMakeFiles/ccdem_apps.dir/scene_factory.cpp.o" "gcc" "src/apps/CMakeFiles/ccdem_apps.dir/scene_factory.cpp.o.d"
  "/root/repo/src/apps/static_ui_scene.cpp" "src/apps/CMakeFiles/ccdem_apps.dir/static_ui_scene.cpp.o" "gcc" "src/apps/CMakeFiles/ccdem_apps.dir/static_ui_scene.cpp.o.d"
  "/root/repo/src/apps/typing_scene.cpp" "src/apps/CMakeFiles/ccdem_apps.dir/typing_scene.cpp.o" "gcc" "src/apps/CMakeFiles/ccdem_apps.dir/typing_scene.cpp.o.d"
  "/root/repo/src/apps/video_scene.cpp" "src/apps/CMakeFiles/ccdem_apps.dir/video_scene.cpp.o" "gcc" "src/apps/CMakeFiles/ccdem_apps.dir/video_scene.cpp.o.d"
  "/root/repo/src/apps/wallpaper_scene.cpp" "src/apps/CMakeFiles/ccdem_apps.dir/wallpaper_scene.cpp.o" "gcc" "src/apps/CMakeFiles/ccdem_apps.dir/wallpaper_scene.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccdem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gfx/CMakeFiles/ccdem_gfx.dir/DependInfo.cmake"
  "/root/repo/build/src/display/CMakeFiles/ccdem_display.dir/DependInfo.cmake"
  "/root/repo/build/src/input/CMakeFiles/ccdem_input.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ccdem_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
