file(REMOVE_RECURSE
  "libccdem_apps.a"
)
