
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/config_io.cpp" "src/harness/CMakeFiles/ccdem_harness.dir/config_io.cpp.o" "gcc" "src/harness/CMakeFiles/ccdem_harness.dir/config_io.cpp.o.d"
  "/root/repo/src/harness/csv.cpp" "src/harness/CMakeFiles/ccdem_harness.dir/csv.cpp.o" "gcc" "src/harness/CMakeFiles/ccdem_harness.dir/csv.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/harness/CMakeFiles/ccdem_harness.dir/experiment.cpp.o" "gcc" "src/harness/CMakeFiles/ccdem_harness.dir/experiment.cpp.o.d"
  "/root/repo/src/harness/parallel.cpp" "src/harness/CMakeFiles/ccdem_harness.dir/parallel.cpp.o" "gcc" "src/harness/CMakeFiles/ccdem_harness.dir/parallel.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/harness/CMakeFiles/ccdem_harness.dir/report.cpp.o" "gcc" "src/harness/CMakeFiles/ccdem_harness.dir/report.cpp.o.d"
  "/root/repo/src/harness/session.cpp" "src/harness/CMakeFiles/ccdem_harness.dir/session.cpp.o" "gcc" "src/harness/CMakeFiles/ccdem_harness.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccdem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gfx/CMakeFiles/ccdem_gfx.dir/DependInfo.cmake"
  "/root/repo/build/src/display/CMakeFiles/ccdem_display.dir/DependInfo.cmake"
  "/root/repo/build/src/input/CMakeFiles/ccdem_input.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ccdem_power.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ccdem_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ccdem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ccdem_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
