file(REMOVE_RECURSE
  "libccdem_harness.a"
)
