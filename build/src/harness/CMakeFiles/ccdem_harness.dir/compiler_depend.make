# Empty compiler generated dependencies file for ccdem_harness.
# This may be replaced when dependencies are built.
