file(REMOVE_RECURSE
  "CMakeFiles/ccdem_harness.dir/config_io.cpp.o"
  "CMakeFiles/ccdem_harness.dir/config_io.cpp.o.d"
  "CMakeFiles/ccdem_harness.dir/csv.cpp.o"
  "CMakeFiles/ccdem_harness.dir/csv.cpp.o.d"
  "CMakeFiles/ccdem_harness.dir/experiment.cpp.o"
  "CMakeFiles/ccdem_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/ccdem_harness.dir/parallel.cpp.o"
  "CMakeFiles/ccdem_harness.dir/parallel.cpp.o.d"
  "CMakeFiles/ccdem_harness.dir/report.cpp.o"
  "CMakeFiles/ccdem_harness.dir/report.cpp.o.d"
  "CMakeFiles/ccdem_harness.dir/session.cpp.o"
  "CMakeFiles/ccdem_harness.dir/session.cpp.o.d"
  "libccdem_harness.a"
  "libccdem_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdem_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
