
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/input/input_dispatcher.cpp" "src/input/CMakeFiles/ccdem_input.dir/input_dispatcher.cpp.o" "gcc" "src/input/CMakeFiles/ccdem_input.dir/input_dispatcher.cpp.o.d"
  "/root/repo/src/input/monkey.cpp" "src/input/CMakeFiles/ccdem_input.dir/monkey.cpp.o" "gcc" "src/input/CMakeFiles/ccdem_input.dir/monkey.cpp.o.d"
  "/root/repo/src/input/script_io.cpp" "src/input/CMakeFiles/ccdem_input.dir/script_io.cpp.o" "gcc" "src/input/CMakeFiles/ccdem_input.dir/script_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccdem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gfx/CMakeFiles/ccdem_gfx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
