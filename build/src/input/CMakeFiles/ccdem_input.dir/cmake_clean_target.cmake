file(REMOVE_RECURSE
  "libccdem_input.a"
)
