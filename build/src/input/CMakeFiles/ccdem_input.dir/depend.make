# Empty dependencies file for ccdem_input.
# This may be replaced when dependencies are built.
