file(REMOVE_RECURSE
  "CMakeFiles/ccdem_input.dir/input_dispatcher.cpp.o"
  "CMakeFiles/ccdem_input.dir/input_dispatcher.cpp.o.d"
  "CMakeFiles/ccdem_input.dir/monkey.cpp.o"
  "CMakeFiles/ccdem_input.dir/monkey.cpp.o.d"
  "CMakeFiles/ccdem_input.dir/script_io.cpp.o"
  "CMakeFiles/ccdem_input.dir/script_io.cpp.o.d"
  "libccdem_input.a"
  "libccdem_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdem_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
