
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/battery.cpp" "src/power/CMakeFiles/ccdem_power.dir/battery.cpp.o" "gcc" "src/power/CMakeFiles/ccdem_power.dir/battery.cpp.o.d"
  "/root/repo/src/power/device_power_model.cpp" "src/power/CMakeFiles/ccdem_power.dir/device_power_model.cpp.o" "gcc" "src/power/CMakeFiles/ccdem_power.dir/device_power_model.cpp.o.d"
  "/root/repo/src/power/monsoon_meter.cpp" "src/power/CMakeFiles/ccdem_power.dir/monsoon_meter.cpp.o" "gcc" "src/power/CMakeFiles/ccdem_power.dir/monsoon_meter.cpp.o.d"
  "/root/repo/src/power/oled_panel_model.cpp" "src/power/CMakeFiles/ccdem_power.dir/oled_panel_model.cpp.o" "gcc" "src/power/CMakeFiles/ccdem_power.dir/oled_panel_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccdem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gfx/CMakeFiles/ccdem_gfx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
