file(REMOVE_RECURSE
  "CMakeFiles/ccdem_power.dir/battery.cpp.o"
  "CMakeFiles/ccdem_power.dir/battery.cpp.o.d"
  "CMakeFiles/ccdem_power.dir/device_power_model.cpp.o"
  "CMakeFiles/ccdem_power.dir/device_power_model.cpp.o.d"
  "CMakeFiles/ccdem_power.dir/monsoon_meter.cpp.o"
  "CMakeFiles/ccdem_power.dir/monsoon_meter.cpp.o.d"
  "CMakeFiles/ccdem_power.dir/oled_panel_model.cpp.o"
  "CMakeFiles/ccdem_power.dir/oled_panel_model.cpp.o.d"
  "libccdem_power.a"
  "libccdem_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdem_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
