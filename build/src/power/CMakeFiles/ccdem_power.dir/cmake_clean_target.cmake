file(REMOVE_RECURSE
  "libccdem_power.a"
)
