# Empty compiler generated dependencies file for ccdem_power.
# This may be replaced when dependencies are built.
