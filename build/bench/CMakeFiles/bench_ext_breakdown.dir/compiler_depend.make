# Empty compiler generated dependencies file for bench_ext_breakdown.
# This may be replaced when dependencies are built.
