# Empty compiler generated dependencies file for bench_baseline_e3.
# This may be replaced when dependencies are built.
