file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_e3.dir/bench_baseline_e3.cpp.o"
  "CMakeFiles/bench_baseline_e3.dir/bench_baseline_e3.cpp.o.d"
  "bench_baseline_e3"
  "bench_baseline_e3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_e3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
