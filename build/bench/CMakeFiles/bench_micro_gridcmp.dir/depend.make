# Empty dependencies file for bench_micro_gridcmp.
# This may be replaced when dependencies are built.
