file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_gridcmp.dir/bench_micro_gridcmp.cpp.o"
  "CMakeFiles/bench_micro_gridcmp.dir/bench_micro_gridcmp.cpp.o.d"
  "bench_micro_gridcmp"
  "bench_micro_gridcmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_gridcmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
