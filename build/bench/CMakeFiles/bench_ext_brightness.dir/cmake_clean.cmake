file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_brightness.dir/bench_ext_brightness.cpp.o"
  "CMakeFiles/bench_ext_brightness.dir/bench_ext_brightness.cpp.o.d"
  "bench_ext_brightness"
  "bench_ext_brightness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_brightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
