# Empty dependencies file for bench_ext_brightness.
# This may be replaced when dependencies are built.
