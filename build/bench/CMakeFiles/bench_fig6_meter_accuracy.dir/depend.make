# Empty dependencies file for bench_fig6_meter_accuracy.
# This may be replaced when dependencies are built.
