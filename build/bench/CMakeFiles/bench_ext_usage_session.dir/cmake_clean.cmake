file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_usage_session.dir/bench_ext_usage_session.cpp.o"
  "CMakeFiles/bench_ext_usage_session.dir/bench_ext_usage_session.cpp.o.d"
  "bench_ext_usage_session"
  "bench_ext_usage_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_usage_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
