# Empty dependencies file for bench_ext_usage_session.
# This may be replaced when dependencies are built.
