# Empty dependencies file for bench_fig9_power_savings.
# This may be replaced when dependencies are built.
