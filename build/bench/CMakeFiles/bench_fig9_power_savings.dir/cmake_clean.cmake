file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_power_savings.dir/bench_fig9_power_savings.cpp.o"
  "CMakeFiles/bench_fig9_power_savings.dir/bench_fig9_power_savings.cpp.o.d"
  "bench_fig9_power_savings"
  "bench_fig9_power_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_power_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
