file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ltpo.dir/bench_ext_ltpo.cpp.o"
  "CMakeFiles/bench_ext_ltpo.dir/bench_ext_ltpo.cpp.o.d"
  "bench_ext_ltpo"
  "bench_ext_ltpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ltpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
