# Empty compiler generated dependencies file for bench_ext_ltpo.
# This may be replaced when dependencies are built.
