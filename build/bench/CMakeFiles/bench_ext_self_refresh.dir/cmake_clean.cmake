file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_self_refresh.dir/bench_ext_self_refresh.cpp.o"
  "CMakeFiles/bench_ext_self_refresh.dir/bench_ext_self_refresh.cpp.o.d"
  "bench_ext_self_refresh"
  "bench_ext_self_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_self_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
