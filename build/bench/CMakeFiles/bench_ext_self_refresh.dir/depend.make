# Empty dependencies file for bench_ext_self_refresh.
# This may be replaced when dependencies are built.
