# Empty compiler generated dependencies file for bench_fig8_power_traces.
# This may be replaced when dependencies are built.
