# Empty dependencies file for bench_ext_oled.
# This may be replaced when dependencies are built.
