file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_oled.dir/bench_ext_oled.cpp.o"
  "CMakeFiles/bench_ext_oled.dir/bench_ext_oled.cpp.o.d"
  "bench_ext_oled"
  "bench_ext_oled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_oled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
