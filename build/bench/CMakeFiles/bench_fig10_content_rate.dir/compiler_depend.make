# Empty compiler generated dependencies file for bench_fig10_content_rate.
# This may be replaced when dependencies are built.
