#include "apps/app_model.h"

#include <gtest/gtest.h>

#include "device/simulated_device.h"

namespace ccdem::apps {
namespace {

AppSpec toy_spec(double idle_fps, double content_fps) {
  AppSpec s;
  s.name = "toy";
  s.idle_request_fps = idle_fps;
  s.burst_request_fps = 60.0;
  s.burst_hold_s = 1.0;
  s.render_mj_per_frame = 2.0;
  s.scene = SceneSpec::game(content_fps);
  return s;
}

/// A full device around one toy app.  Tests drive the raw simulator
/// (dev.sim()) so no power meter attaches.
struct Rig {
  device::SimulatedDevice dev;
  AppModel* app = nullptr;

  explicit Rig(const AppSpec& spec) {
    device::DeviceConfig dc;
    dc.seed = 3;
    dev.configure(dc);
    app = &dev.install_app(spec);
    dev.start_control();
  }

  [[nodiscard]] sim::Simulator& sim() { return dev.sim(); }
};

TEST(AppModel, PostsAtIdleRequestRate) {
  Rig rig(toy_spec(/*idle_fps=*/10.0, /*content_fps=*/5.0));
  rig.sim().run_for(sim::seconds(5));
  const double fps =
      static_cast<double>(rig.app->frames_posted()) / 5.0;
  EXPECT_NEAR(fps, 10.0, 1.5);
}

TEST(AppModel, RequestRateCappedByRefreshRate) {
  Rig rig(toy_spec(/*idle_fps=*/60.0, /*content_fps=*/5.0));
  rig.dev.panel().set_refresh_rate(20);
  rig.sim().run_for(sim::seconds(5));
  const double fps = static_cast<double>(rig.app->frames_posted()) / 5.0;
  EXPECT_NEAR(fps, 20.0, 1.5);  // V-Sync limits the app to the refresh rate
}

TEST(AppModel, TouchOpensRequestBurst) {
  Rig rig(toy_spec(/*idle_fps=*/5.0, /*content_fps=*/5.0));
  rig.sim().run_for(sim::seconds(2));
  const auto before = rig.app->frames_posted();
  input::TouchEvent e{rig.sim().now(), {10, 10},
                      input::TouchEvent::Action::kDown};
  rig.app->on_touch(e);
  EXPECT_DOUBLE_EQ(rig.app->current_request_fps(rig.sim().now()), 60.0);
  rig.sim().run_for(sim::seconds(1));
  const double burst_fps = static_cast<double>(rig.app->frames_posted() -
                                               before);
  EXPECT_GT(burst_fps, 40.0);  // ~60 fps during the burst second
}

TEST(AppModel, BurstDecaysAfterHold) {
  AppSpec spec = toy_spec(5.0, 5.0);
  spec.burst_hold_s = 0.5;
  Rig rig(spec);
  input::TouchEvent e{rig.sim().now(), {10, 10},
                      input::TouchEvent::Action::kDown};
  rig.app->on_touch(e);
  EXPECT_DOUBLE_EQ(rig.app->current_request_fps(sim::at_seconds(0.4)), 60.0);
  EXPECT_DOUBLE_EQ(rig.app->current_request_fps(sim::at_seconds(0.6)), 5.0);
}

TEST(AppModel, ChargesRenderEnergyPerPost) {
  Rig rig(toy_spec(10.0, 5.0));
  const double before = rig.dev.power().energy_mj_at(rig.sim().now());
  rig.sim().run_for(sim::seconds(1));
  // Continuous power also accrues; isolate the impulse part by comparing
  // against a model-only projection.
  const double continuous =
      rig.dev.power().continuous_power_mw(60) * 1.0;  // 1 s
  const double total = rig.dev.power().energy_mj_at(rig.sim().now()) - before;
  const double impulses = total - continuous;
  // ~10 posts * 2 mJ render + composition costs (> 0).
  EXPECT_GT(impulses, 15.0);
}

TEST(AppModel, RedundantPostsWhenContentSlowerThanRequests) {
  Rig rig(toy_spec(/*idle_fps=*/60.0, /*content_fps=*/10.0));
  rig.sim().run_for(sim::seconds(5));
  EXPECT_GT(rig.dev.recorder().total_frames(), 250u);
  // Roughly 10 content fps out of ~60 posted.
  const double content_fps =
      static_cast<double>(rig.dev.recorder().total_content_frames()) / 5.0;
  EXPECT_NEAR(content_fps, 10.0, 2.5);
  EXPECT_GT(rig.dev.recorder().total_redundant_frames(),
            rig.dev.recorder().total_content_frames() * 3);
}

TEST(AppModel, ZeroRequestRatePostsOnlyTheLaunchFrame) {
  AppSpec spec = toy_spec(0.0, 5.0);
  Rig rig(spec);
  rig.sim().run_for(sim::seconds(2));
  // The window is painted once on launch, then the app goes fully idle.
  EXPECT_EQ(rig.app->frames_posted(), 1u);
}

TEST(AppModel, ParkedAppWakesOnTouch) {
  AppSpec spec = toy_spec(0.0, 20.0);
  Rig rig(spec);
  rig.sim().run_for(sim::seconds(2));
  ASSERT_EQ(rig.app->frames_posted(), 1u);
  input::TouchEvent e{rig.sim().now(), {10, 10},
                      input::TouchEvent::Action::kDown};
  rig.app->on_touch(e);
  rig.sim().run_for(sim::seconds(1));
  // Burst at ~60 fps for burst_hold_s = 1 s.
  EXPECT_GT(rig.app->frames_posted(), 40u);
}

TEST(AppModel, RenderEnergyFlatWithoutDvfs) {
  Rig rig(toy_spec(10.0, 5.0));
  EXPECT_DOUBLE_EQ(rig.app->render_energy_mj(60.0), 2.0);
  EXPECT_DOUBLE_EQ(rig.app->render_energy_mj(20.0), 2.0);
}

TEST(AppModel, DvfsCouplingScalesWithRate) {
  AppSpec spec = toy_spec(10.0, 5.0);
  spec.dvfs_coupling = true;
  Rig rig(spec);
  EXPECT_DOUBLE_EQ(rig.app->render_energy_mj(60.0), 2.0 * 1.3);
  EXPECT_DOUBLE_EQ(rig.app->render_energy_mj(0.0), 2.0 * 0.7);
  EXPECT_NEAR(rig.app->render_energy_mj(30.0), 2.0, 1e-9);
}

TEST(AppModel, BackgroundedAppGoesSilent) {
  Rig rig(toy_spec(30.0, 5.0));
  rig.sim().run_for(sim::seconds(1));
  const auto posted = rig.app->frames_posted();
  EXPECT_GT(posted, 0u);
  rig.app->set_foreground(false);
  rig.sim().run_for(sim::seconds(2));
  EXPECT_EQ(rig.app->frames_posted(), posted);
  // Touch while backgrounded must not open a burst.
  input::TouchEvent e{rig.sim().now(), {1, 1},
                      input::TouchEvent::Action::kDown};
  rig.app->on_touch(e);
  EXPECT_LT(rig.app->current_request_fps(rig.sim().now()), 60.0);
}

TEST(AppModel, ForegroundResumeRepaintsWindow) {
  Rig rig(toy_spec(30.0, 5.0));
  rig.sim().run_for(sim::seconds(1));
  rig.app->set_foreground(false);
  rig.sim().run_for(sim::milliseconds(500));
  const auto content_before = rig.dev.flinger().content_frames();
  rig.app->set_foreground(true);
  rig.sim().run_for(sim::milliseconds(200));
  // The resume repaint composes as a content frame.
  EXPECT_GT(rig.dev.flinger().content_frames(), content_before);
}

}  // namespace
}  // namespace ccdem::apps
