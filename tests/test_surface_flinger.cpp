#include "gfx/surface_flinger.h"

#include <gtest/gtest.h>

#include <vector>

namespace ccdem::gfx {
namespace {

class RecordingListener final : public FrameListener {
 public:
  void on_frame(const FrameInfo& info, const Framebuffer&) override {
    frames.push_back(info);
  }
  std::vector<FrameInfo> frames;
};

class FlingerTest : public ::testing::Test {
 protected:
  FlingerTest() : flinger_({64, 64}) { flinger_.add_listener(&listener_); }

  SurfaceFlinger flinger_;
  RecordingListener listener_;
};

TEST_F(FlingerTest, NoPendingFrameNoComposition) {
  flinger_.create_surface("a", Rect{0, 0, 64, 64}, 0);
  EXPECT_FALSE(flinger_.on_vsync(sim::Time{}));
  EXPECT_TRUE(listener_.frames.empty());
  EXPECT_EQ(flinger_.frames_composed(), 0u);
}

TEST_F(FlingerTest, ComposesPostedSurface) {
  Surface* s = flinger_.create_surface("a", Rect{0, 0, 64, 64}, 0);
  Canvas& c = s->begin_frame();
  c.fill_rect(Rect{0, 0, 8, 8}, colors::kRed);
  s->post_frame();
  EXPECT_TRUE(flinger_.on_vsync(sim::Time{1'000}));
  ASSERT_EQ(listener_.frames.size(), 1u);
  EXPECT_EQ(listener_.frames[0].seq, 1u);
  EXPECT_EQ(listener_.frames[0].composed_at, sim::Time{1'000});
  EXPECT_TRUE(listener_.frames[0].content_changed);
  EXPECT_EQ(listener_.frames[0].dirty, (Rect{0, 0, 8, 8}));
  EXPECT_EQ(listener_.frames[0].composed_pixels, 64);
  EXPECT_EQ(flinger_.framebuffer().at(4, 4), colors::kRed);
}

TEST_F(FlingerTest, RedundantPostComposesWithoutContentChange) {
  Surface* s = flinger_.create_surface("a", Rect{0, 0, 64, 64}, 0);
  s->begin_frame();
  s->post_frame();  // nothing drawn
  EXPECT_TRUE(flinger_.on_vsync(sim::Time{}));
  ASSERT_EQ(listener_.frames.size(), 1u);
  EXPECT_FALSE(listener_.frames[0].content_changed);
  EXPECT_EQ(listener_.frames[0].composed_pixels, 0);
  EXPECT_EQ(flinger_.content_frames(), 0u);
  EXPECT_EQ(flinger_.frames_composed(), 1u);
}

TEST_F(FlingerTest, RedrawingIdenticalPixelsIsNotAContentChange) {
  Surface* s = flinger_.create_surface("a", Rect{0, 0, 64, 64}, 0);
  // First frame paints.
  Canvas& c1 = s->begin_frame();
  c1.fill_rect(Rect{0, 0, 8, 8}, colors::kRed);
  s->post_frame();
  flinger_.on_vsync(sim::Time{});
  // Second frame redraws the same pixels with the same colour: the dirty
  // rect is non-empty but nothing actually changes on screen.
  Canvas& c2 = s->begin_frame();
  c2.fill_rect(Rect{0, 0, 8, 8}, colors::kRed);
  s->post_frame();
  flinger_.on_vsync(sim::Time{1});
  ASSERT_EQ(listener_.frames.size(), 2u);
  EXPECT_TRUE(listener_.frames[0].content_changed);
  EXPECT_FALSE(listener_.frames[1].content_changed);
}

TEST_F(FlingerTest, OptimisticModeTrustsDirtyRect) {
  flinger_.set_exact_change_detection(false);
  Surface* s = flinger_.create_surface("a", Rect{0, 0, 64, 64}, 0);
  Canvas& c1 = s->begin_frame();
  c1.fill_rect(Rect{0, 0, 8, 8}, colors::kRed);
  s->post_frame();
  flinger_.on_vsync(sim::Time{});
  Canvas& c2 = s->begin_frame();
  c2.fill_rect(Rect{0, 0, 8, 8}, colors::kRed);  // identical pixels
  s->post_frame();
  flinger_.on_vsync(sim::Time{1});
  // Optimistic mode cannot tell: it reports a change because dirty != empty.
  EXPECT_TRUE(listener_.frames[1].content_changed);
}

TEST_F(FlingerTest, SurfacePositionOffsetsComposition) {
  Surface* s = flinger_.create_surface("a", Rect{10, 20, 16, 16}, 0);
  Canvas& c = s->begin_frame();
  c.fill_rect(Rect{0, 0, 4, 4}, colors::kGreen);
  s->post_frame();
  flinger_.on_vsync(sim::Time{});
  EXPECT_EQ(flinger_.framebuffer().at(10, 20), colors::kGreen);
  EXPECT_EQ(flinger_.framebuffer().at(9, 19), colors::kBlack);
  EXPECT_EQ(listener_.frames[0].dirty, (Rect{10, 20, 4, 4}));
}

TEST_F(FlingerTest, ZOrderDeterminesStacking) {
  Surface* below = flinger_.create_surface("below", Rect{0, 0, 64, 64}, 0);
  Surface* above = flinger_.create_surface("above", Rect{0, 0, 64, 64}, 1);
  Canvas& cb = below->begin_frame();
  cb.fill_rect(Rect{0, 0, 16, 16}, colors::kRed);
  below->post_frame();
  Canvas& ca = above->begin_frame();
  ca.fill_rect(Rect{0, 0, 8, 8}, colors::kBlue);
  above->post_frame();
  flinger_.on_vsync(sim::Time{});
  EXPECT_EQ(flinger_.framebuffer().at(2, 2), colors::kBlue);    // above wins
  EXPECT_EQ(flinger_.framebuffer().at(12, 12), colors::kRed);   // below shows
}

TEST_F(FlingerTest, InvisibleSurfaceIgnored) {
  Surface* s = flinger_.create_surface("a", Rect{0, 0, 64, 64}, 0);
  s->set_visible(false);
  Canvas& c = s->begin_frame();
  c.fill_rect(Rect{0, 0, 8, 8}, colors::kRed);
  s->post_frame();
  EXPECT_FALSE(flinger_.on_vsync(sim::Time{}));
}

TEST_F(FlingerTest, RemoveSurfaceStopsComposition) {
  Surface* s = flinger_.create_surface("a", Rect{0, 0, 64, 64}, 0);
  s->begin_frame();
  s->post_frame();
  flinger_.remove_surface(s);
  EXPECT_FALSE(flinger_.on_vsync(sim::Time{}));
}

TEST_F(FlingerTest, FrameSeqIncrements) {
  Surface* s = flinger_.create_surface("a", Rect{0, 0, 64, 64}, 0);
  for (int i = 0; i < 3; ++i) {
    Canvas& c = s->begin_frame();
    c.fill_rect(Rect{i * 4, 0, 4, 4}, colors::kRed);
    s->post_frame();
    flinger_.on_vsync(sim::Time{i});
  }
  ASSERT_EQ(listener_.frames.size(), 3u);
  EXPECT_EQ(listener_.frames[2].seq, 3u);
  EXPECT_EQ(flinger_.content_frames(), 3u);
}

TEST_F(FlingerTest, PreviousFrameHoldsLastDisplayedPixels) {
  Surface* s = flinger_.create_surface("a", Rect{0, 0, 64, 64}, 0);
  Canvas& c1 = s->begin_frame();
  c1.fill_rect(Rect{0, 0, 8, 8}, colors::kRed);
  s->post_frame();
  flinger_.on_vsync(sim::Time{});
  Canvas& c2 = s->begin_frame();
  c2.fill_rect(Rect{0, 0, 8, 8}, colors::kBlue);
  s->post_frame();
  flinger_.on_vsync(sim::Time{1});
  EXPECT_EQ(flinger_.framebuffer().at(2, 2), colors::kBlue);
  EXPECT_EQ(flinger_.previous_frame().at(2, 2), colors::kRed);
}

TEST_F(FlingerTest, ReconciledPixelsReported) {
  Surface* s = flinger_.create_surface("a", Rect{0, 0, 64, 64}, 0);
  Canvas& c1 = s->begin_frame();
  c1.fill_rect(Rect{0, 0, 8, 8}, colors::kRed);
  s->post_frame();
  flinger_.on_vsync(sim::Time{});
  ASSERT_EQ(listener_.frames.size(), 1u);
  EXPECT_EQ(listener_.frames[0].reconciled_pixels, 0);  // first frame
  Canvas& c2 = s->begin_frame();
  c2.fill_rect(Rect{20, 20, 4, 4}, colors::kBlue);
  s->post_frame();
  flinger_.on_vsync(sim::Time{1});
  // The back buffer needed frame 1's 8x8 damage recopied.
  EXPECT_EQ(listener_.frames[1].reconciled_pixels, 64);
}

TEST_F(FlingerTest, CountsSurfacesLatched) {
  Surface* a = flinger_.create_surface("a", Rect{0, 0, 32, 32}, 0);
  Surface* b = flinger_.create_surface("b", Rect{32, 32, 32, 32}, 1);
  a->begin_frame();
  a->post_frame();
  b->begin_frame();
  b->post_frame();
  flinger_.on_vsync(sim::Time{});
  ASSERT_EQ(listener_.frames.size(), 1u);
  EXPECT_EQ(listener_.frames[0].surfaces_latched, 2);
}

}  // namespace
}  // namespace ccdem::gfx
