#include "input/monkey.h"

#include <gtest/gtest.h>

namespace ccdem::input {
namespace {

constexpr gfx::Size kScreen{720, 1280};

TEST(Monkey, DeterministicForSeed) {
  sim::Rng r1(99), r2(99);
  const auto a = generate_monkey_script(r1, MonkeyProfile::general_app(),
                                        sim::seconds(60), kScreen);
  const auto b = generate_monkey_script(r2, MonkeyProfile::general_app(),
                                        sim::seconds(60), kScreen);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].from, b[i].from);
    EXPECT_EQ(a[i].to, b[i].to);
  }
}

TEST(Monkey, GesturesWithinRunLength) {
  sim::Rng r(5);
  const auto script = generate_monkey_script(
      r, MonkeyProfile::general_app(), sim::seconds(30), kScreen);
  for (const auto& g : script) {
    EXPECT_LT(g.start.ticks, sim::seconds(30).ticks);
    EXPECT_GE(g.start.ticks, 0);
  }
}

TEST(Monkey, GesturesAreTimeOrderedAndNonOverlapping) {
  sim::Rng r(6);
  const auto script = generate_monkey_script(
      r, MonkeyProfile::game_app(), sim::seconds(60), kScreen);
  for (std::size_t i = 1; i < script.size(); ++i) {
    EXPECT_GE(script[i].start.ticks,
              script[i - 1].start.ticks + script[i - 1].duration.ticks);
  }
}

TEST(Monkey, PositionsWithinScreen) {
  sim::Rng r(7);
  const auto script = generate_monkey_script(
      r, MonkeyProfile::game_app(), sim::seconds(60), kScreen);
  for (const auto& g : script) {
    EXPECT_TRUE(gfx::Rect::of(kScreen).contains(g.from));
    EXPECT_TRUE(gfx::Rect::of(kScreen).contains(g.to));
  }
}

TEST(Monkey, GameProfileTouchesMoreOften) {
  sim::Rng r1(8), r2(8);
  const auto general = generate_monkey_script(
      r1, MonkeyProfile::general_app(), sim::seconds(120), kScreen);
  const auto game = generate_monkey_script(
      r2, MonkeyProfile::game_app(), sim::seconds(120), kScreen);
  EXPECT_GT(game.size(), general.size() * 2);
}

TEST(Monkey, TapsHaveZeroDisplacement) {
  sim::Rng r(9);
  const auto script = generate_monkey_script(
      r, MonkeyProfile::general_app(), sim::seconds(120), kScreen);
  for (const auto& g : script) {
    if (g.kind == TouchGesture::Kind::kTap) {
      EXPECT_EQ(g.from, g.to);
    } else {
      EXPECT_GT(g.duration.ticks, 0);
    }
  }
}

TEST(Monkey, SwipeProbabilityRespected) {
  sim::Rng r(10);
  MonkeyProfile p = MonkeyProfile::general_app();
  p.swipe_probability = 1.0;
  const auto script =
      generate_monkey_script(r, p, sim::seconds(60), kScreen);
  for (const auto& g : script) {
    EXPECT_EQ(g.kind, TouchGesture::Kind::kSwipe);
  }
}

TEST(Monkey, MeanGapApproximatelyHonoured) {
  sim::Rng r(11);
  MonkeyProfile p = MonkeyProfile::general_app();
  p.mean_gap_s = 2.0;
  p.swipe_probability = 0.0;
  const auto script =
      generate_monkey_script(r, p, sim::seconds(600), kScreen);
  // ~600 s / ~2.06 s per cycle (gap + tap) -> ~290 gestures.
  EXPECT_GT(script.size(), 200u);
  EXPECT_LT(script.size(), 400u);
}

}  // namespace
}  // namespace ccdem::input
