#include "core/touch_booster.h"

#include <gtest/gtest.h>

namespace ccdem::core {
namespace {

input::TouchEvent touch_at(sim::Tick t) {
  return input::TouchEvent{sim::Time{t}, {0, 0},
                           input::TouchEvent::Action::kDown};
}

TEST(TouchBooster, InactiveBeforeAnyTouch) {
  TouchBooster b;
  EXPECT_FALSE(b.active(sim::Time{}));
  EXPECT_FALSE(b.active(sim::Time{1'000'000}));
}

TEST(TouchBooster, ActiveDuringHoldWindow) {
  TouchBooster b(sim::seconds(1));
  b.on_touch(touch_at(1'000'000));
  EXPECT_TRUE(b.active(sim::Time{1'000'000}));
  EXPECT_TRUE(b.active(sim::Time{1'500'000}));
  EXPECT_TRUE(b.active(sim::Time{2'000'000}));   // inclusive end
  EXPECT_FALSE(b.active(sim::Time{2'000'001}));
}

TEST(TouchBooster, RepeatedTouchesExtendHold) {
  TouchBooster b(sim::seconds(1));
  b.on_touch(touch_at(0));
  b.on_touch(touch_at(900'000));
  EXPECT_TRUE(b.active(sim::Time{1'800'000}));
  EXPECT_FALSE(b.active(sim::Time{2'000'000}));
}

TEST(TouchBooster, CountsEvents) {
  TouchBooster b;
  b.on_touch(touch_at(0));
  b.on_touch(touch_at(1));
  b.on_touch(touch_at(2));
  EXPECT_EQ(b.touch_events(), 3u);
}

TEST(TouchBooster, HoldIsConfigurable) {
  TouchBooster b(sim::milliseconds(250));
  b.on_touch(touch_at(0));
  EXPECT_TRUE(b.active(sim::Time{250'000}));
  EXPECT_FALSE(b.active(sim::Time{250'001}));
  b.set_hold(sim::seconds(2));
  EXPECT_EQ(b.hold(), sim::seconds(2));
  b.on_touch(touch_at(300'000));
  EXPECT_TRUE(b.active(sim::Time{2'300'000}));
}

// --- lossy input path (fault layer) regressions ---------------------------

TEST(TouchBooster, HoldExpiresNormallyWhenTrailingEventsDrop) {
  // A gesture whose trailing move/up events were dropped still opened the
  // window at the first event; the hold must expire `hold` after the last
  // event that DID arrive -- no sticky boost.
  TouchBooster b(sim::milliseconds(500));
  b.on_touch(touch_at(1'000'000));  // the rest of the gesture got dropped
  EXPECT_TRUE(b.active(sim::Time{1'400'000}));
  EXPECT_TRUE(b.active(sim::Time{1'500'000}));
  EXPECT_FALSE(b.active(sim::Time{1'500'001}));
  EXPECT_EQ(b.activations(), 1u);
}

TEST(TouchBooster, LateEventCannotRewindTheWindow) {
  // A delayed event is delivered with its ORIGINAL timestamp after a newer
  // one was already seen.  The window edge must not move backwards: the
  // boost still runs until (newest event + hold).
  TouchBooster b(sim::milliseconds(500));
  b.on_touch(touch_at(2'000'000));
  b.on_touch(touch_at(1'800'000));  // late delivery, older timestamp
  EXPECT_TRUE(b.active(sim::Time{2'500'000}));
  EXPECT_FALSE(b.active(sim::Time{2'500'001}));
  EXPECT_EQ(b.touch_events(), 2u);
  EXPECT_EQ(b.activations(), 1u);  // both land inside one window
}

TEST(TouchBooster, OutOfOrderTimestampsDoNotUnderflowTheWindow) {
  // Out-of-order delivery where the late event is older than the whole
  // hold window: active() math must not wrap or reopen a closed window
  // retroactively; the late event re-opens it from the NEWEST edge only.
  TouchBooster b(sim::milliseconds(100));
  b.on_touch(touch_at(5'000'000));
  EXPECT_FALSE(b.active(sim::Time{5'200'000}));  // window closed
  b.on_touch(touch_at(4'000'000));               // very late straggler
  // last_touch_ stays at 5'000'000: the straggler cannot shrink it, and
  // the already-expired window stays expired.
  EXPECT_FALSE(b.active(sim::Time{5'200'000}));
  EXPECT_TRUE(b.active(sim::Time{5'100'000}));
  EXPECT_EQ(b.touch_events(), 2u);
}

TEST(TouchBooster, MinHoldKeepsBoostUsableWhenGestureTruncated) {
  // With min_hold set, the opening touch guarantees a floor even if the
  // hold is configured very short (or trailing events never arrive).
  TouchBooster b(sim::milliseconds(100), sim::milliseconds(400));
  b.on_touch(touch_at(1'000'000));
  EXPECT_TRUE(b.active(sim::Time{1'100'000}));  // inside hold
  EXPECT_TRUE(b.active(sim::Time{1'400'000}));  // hold passed, min_hold holds
  EXPECT_FALSE(b.active(sim::Time{1'400'001}));
  // A follow-up touch extends past the floor as usual.
  b.on_touch(touch_at(1'400'000));
  EXPECT_TRUE(b.active(sim::Time{1'500'000}));
  EXPECT_EQ(b.min_hold(), sim::milliseconds(400));
}

TEST(TouchBooster, MinHoldZeroIsClassicBehaviour) {
  TouchBooster classic(sim::seconds(1));
  TouchBooster with_floor(sim::seconds(1), sim::Duration{});
  for (sim::Tick t : {0LL, 900'000LL, 2'500'000LL}) {
    classic.on_touch(touch_at(t));
    with_floor.on_touch(touch_at(t));
  }
  for (sim::Tick t = 0; t <= 4'000'000; t += 100'000) {
    EXPECT_EQ(classic.active(sim::Time{t}), with_floor.active(sim::Time{t}))
        << t;
  }
}

TEST(TouchBooster, AllActionKindsBoost) {
  TouchBooster b(sim::seconds(1));
  input::TouchEvent move{sim::Time{0}, {5, 5},
                         input::TouchEvent::Action::kMove};
  b.on_touch(move);
  EXPECT_TRUE(b.active(sim::Time{500'000}));
}

}  // namespace
}  // namespace ccdem::core
