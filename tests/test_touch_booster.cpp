#include "core/touch_booster.h"

#include <gtest/gtest.h>

namespace ccdem::core {
namespace {

input::TouchEvent touch_at(sim::Tick t) {
  return input::TouchEvent{sim::Time{t}, {0, 0},
                           input::TouchEvent::Action::kDown};
}

TEST(TouchBooster, InactiveBeforeAnyTouch) {
  TouchBooster b;
  EXPECT_FALSE(b.active(sim::Time{}));
  EXPECT_FALSE(b.active(sim::Time{1'000'000}));
}

TEST(TouchBooster, ActiveDuringHoldWindow) {
  TouchBooster b(sim::seconds(1));
  b.on_touch(touch_at(1'000'000));
  EXPECT_TRUE(b.active(sim::Time{1'000'000}));
  EXPECT_TRUE(b.active(sim::Time{1'500'000}));
  EXPECT_TRUE(b.active(sim::Time{2'000'000}));   // inclusive end
  EXPECT_FALSE(b.active(sim::Time{2'000'001}));
}

TEST(TouchBooster, RepeatedTouchesExtendHold) {
  TouchBooster b(sim::seconds(1));
  b.on_touch(touch_at(0));
  b.on_touch(touch_at(900'000));
  EXPECT_TRUE(b.active(sim::Time{1'800'000}));
  EXPECT_FALSE(b.active(sim::Time{2'000'000}));
}

TEST(TouchBooster, CountsEvents) {
  TouchBooster b;
  b.on_touch(touch_at(0));
  b.on_touch(touch_at(1));
  b.on_touch(touch_at(2));
  EXPECT_EQ(b.touch_events(), 3u);
}

TEST(TouchBooster, HoldIsConfigurable) {
  TouchBooster b(sim::milliseconds(250));
  b.on_touch(touch_at(0));
  EXPECT_TRUE(b.active(sim::Time{250'000}));
  EXPECT_FALSE(b.active(sim::Time{250'001}));
  b.set_hold(sim::seconds(2));
  EXPECT_EQ(b.hold(), sim::seconds(2));
  b.on_touch(touch_at(300'000));
  EXPECT_TRUE(b.active(sim::Time{2'300'000}));
}

TEST(TouchBooster, AllActionKindsBoost) {
  TouchBooster b(sim::seconds(1));
  input::TouchEvent move{sim::Time{0}, {5, 5},
                         input::TouchEvent::Action::kMove};
  b.on_touch(move);
  EXPECT_TRUE(b.active(sim::Time{500'000}));
}

}  // namespace
}  // namespace ccdem::core
