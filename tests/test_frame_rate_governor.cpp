#include "core/frame_rate_governor.h"

#include <gtest/gtest.h>

#include "apps/app_model.h"
#include "device/simulated_device.h"

namespace ccdem::core {
namespace {

apps::AppSpec make_spec(double request_fps, double content_fps) {
  apps::AppSpec s;
  s.name = "governed";
  s.idle_request_fps = request_fps;
  s.burst_request_fps = 60.0;
  s.scene = apps::SceneSpec::game(content_fps);
  return s;
}

/// A device in kE3FrameRate mode: the governor caps the installed app while
/// the panel stays at 60 Hz.  Tests drive the raw simulator (dev.sim()).
struct Rig {
  device::SimulatedDevice dev;
  apps::AppModel* app = nullptr;
  FrameRateGovernor* governor = nullptr;

  explicit Rig(double request_fps, double content_fps,
               FrameRateGovernor::Config config = {}) {
    device::DeviceConfig dc;
    dc.mode = device::ControlMode::kE3FrameRate;
    dc.seed = 5;
    dc.governor = config;
    dev.configure(dc);
    app = &dev.install_app(make_spec(request_fps, content_fps));
    dev.start_control();
    governor = dev.governor();
  }

  [[nodiscard]] sim::Simulator& sim() { return dev.sim(); }
};

TEST(FrameRateGovernor, CapsRedundantRequester) {
  Rig rig(/*request=*/60.0, /*content=*/10.0);
  rig.sim().run_for(sim::seconds(5));
  // Cap should settle near content * headroom = 15 fps.
  EXPECT_GT(rig.app->request_cap(), 0.0);
  EXPECT_LT(rig.app->request_cap(), 25.0);
  // Effective posting rate drops accordingly.
  const double fps = static_cast<double>(rig.app->frames_posted()) / 5.0;
  EXPECT_LT(fps, 30.0);
}

TEST(FrameRateGovernor, RefreshRateStaysUntouched) {
  Rig rig(60.0, 10.0);
  rig.sim().run_for(sim::seconds(5));
  EXPECT_EQ(rig.dev.panel().refresh_hz(), 60);
}

TEST(FrameRateGovernor, RespectsMinimumCap) {
  FrameRateGovernor::Config config;
  config.min_cap_fps = 12.0;
  Rig rig(60.0, 1.0, config);
  rig.sim().run_for(sim::seconds(5));
  EXPECT_GE(rig.app->request_cap(), 12.0);
}

TEST(FrameRateGovernor, TouchLiftsCapImmediately) {
  Rig rig(60.0, 10.0);
  rig.sim().run_for(sim::seconds(5));
  ASSERT_GT(rig.app->request_cap(), 0.0);
  input::TouchEvent e{rig.sim().now(), {10, 10},
                      input::TouchEvent::Action::kDown};
  rig.governor->on_touch(e);
  EXPECT_DOUBLE_EQ(rig.app->request_cap(), 0.0);
}

TEST(FrameRateGovernor, CapReappliesAfterInteractHold) {
  FrameRateGovernor::Config config;
  config.interact_hold = sim::milliseconds(300);
  Rig rig(60.0, 10.0, config);
  rig.sim().run_for(sim::seconds(5));
  input::TouchEvent e{rig.sim().now(), {10, 10},
                      input::TouchEvent::Action::kDown};
  rig.governor->on_touch(e);
  rig.sim().run_for(sim::seconds(2));
  EXPECT_GT(rig.app->request_cap(), 0.0);
}

TEST(FrameRateGovernor, CapTraceRecordsChanges) {
  Rig rig(60.0, 10.0);
  rig.sim().run_for(sim::seconds(3));
  EXPECT_GE(rig.governor->cap_trace().size(), 2u);  // initial 0 + applied cap
  EXPECT_DOUBLE_EQ(rig.governor->cap_trace().points().front().value, 0.0);
}

TEST(FrameRateGovernor, StopFreezesControl) {
  Rig rig(60.0, 10.0);
  rig.sim().run_for(sim::seconds(3));
  rig.governor->stop();
  rig.app->set_request_cap(0.0);
  rig.sim().run_for(sim::seconds(2));
  EXPECT_DOUBLE_EQ(rig.app->request_cap(), 0.0);  // governor no longer writes
}

TEST(FrameRateGovernor, HighContentAppBarelyCapped) {
  Rig rig(60.0, 38.0);
  rig.sim().run_for(sim::seconds(5));
  // ~38 fps of logic (slightly less in delivered pixels) with 1.5x headroom:
  // the cap settles just above the content rate, far from starving it.
  const double fps = static_cast<double>(rig.app->frames_posted()) / 5.0;
  EXPECT_GT(fps, 34.0);
  EXPECT_GT(rig.app->request_cap(), 36.0);
}

}  // namespace
}  // namespace ccdem::core
