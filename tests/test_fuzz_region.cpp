// Randomized differential test: Region against a brute-force bitmap on a
// small canvas.  The region's area must never undercount coverage (it may
// overcount only after coalescing, which joins rects), and every covered
// point must be contained.
#include <gtest/gtest.h>

#include <algorithm>
#include <bitset>

#include "gfx/region.h"
#include "sim/rng.h"

namespace ccdem::gfx {
namespace {

constexpr int kSide = 64;

class Bitmap {
 public:
  void add(Rect r) {
    const Rect c = r.intersect(Rect{0, 0, kSide, kSide});
    for (int y = c.y; y < c.bottom(); ++y) {
      for (int x = c.x; x < c.right(); ++x) {
        bits_.set(static_cast<std::size_t>(y * kSide + x));
      }
    }
  }
  [[nodiscard]] bool test(int x, int y) const {
    return bits_.test(static_cast<std::size_t>(y * kSide + x));
  }
  [[nodiscard]] std::int64_t count() const {
    return static_cast<std::int64_t>(bits_.count());
  }

 private:
  std::bitset<kSide * kSide> bits_;
};

TEST(RegionFuzz, CoverageMatchesBitmapBeforeCoalescing) {
  // With few rects the region never coalesces, so area must be EXACT.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::Rng rng(seed);
    Region region;
    Bitmap bitmap;
    for (int i = 0; i < 6; ++i) {  // stays below kMaxRects worst case
      const int x = static_cast<int>(rng.uniform_int(0, kSide - 2));
      const int y = static_cast<int>(rng.uniform_int(0, kSide - 2));
      const Rect r{x, y,
                   static_cast<int>(rng.uniform_int(1, std::min(20, kSide - x))),
                   static_cast<int>(rng.uniform_int(1, std::min(20, kSide - y)))};
      region.add(r);
      bitmap.add(r);
    }
    if (region.rects().size() < Region::kMaxRects) {
      EXPECT_EQ(region.area(), bitmap.count()) << "seed " << seed;
    }
    for (int y = 0; y < kSide; ++y) {
      for (int x = 0; x < kSide; ++x) {
        if (bitmap.test(x, y)) {
          ASSERT_TRUE(region.contains({x, y}))
              << "seed " << seed << " point " << x << "," << y;
        }
      }
    }
  }
}

TEST(RegionFuzz, NeverUndercoversUnderCoalescing) {
  // Many rects force coalescing: containment of every covered point must
  // still hold, and area must be >= the true coverage.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Rng rng(seed * 977);
    Region region;
    Bitmap bitmap;
    for (int i = 0; i < 60; ++i) {
      const int x = static_cast<int>(rng.uniform_int(0, kSide - 9));
      const int y = static_cast<int>(rng.uniform_int(0, kSide - 9));
      const Rect r{x, y, static_cast<int>(rng.uniform_int(1, 8)),
                   static_cast<int>(rng.uniform_int(1, 8))};
      region.add(r);
      bitmap.add(r);
    }
    EXPECT_GE(region.area(), bitmap.count()) << "seed " << seed;
    EXPECT_LE(region.rects().size(), Region::kMaxRects);
    for (int y = 0; y < kSide; ++y) {
      for (int x = 0; x < kSide; ++x) {
        if (bitmap.test(x, y)) {
          ASSERT_TRUE(region.contains({x, y}))
              << "seed " << seed << " point " << x << "," << y;
        }
      }
    }
  }
}

TEST(RegionFuzz, DisjointInvariantHolds) {
  for (std::uint64_t seed = 100; seed <= 104; ++seed) {
    sim::Rng rng(seed);
    Region region;
    for (int i = 0; i < 100; ++i) {
      region.add(Rect{static_cast<int>(rng.uniform_int(0, kSide - 2)),
                      static_cast<int>(rng.uniform_int(0, kSide - 2)),
                      static_cast<int>(rng.uniform_int(1, 30)),
                      static_cast<int>(rng.uniform_int(1, 30))});
      const auto& rects = region.rects();
      for (std::size_t a = 0; a < rects.size(); ++a) {
        for (std::size_t b = a + 1; b < rects.size(); ++b) {
          ASSERT_TRUE(rects[a].intersect(rects[b]).empty())
              << "seed " << seed << " add " << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace ccdem::gfx
