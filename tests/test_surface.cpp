#include "gfx/surface.h"

#include <gtest/gtest.h>

namespace ccdem::gfx {
namespace {

TEST(Surface, ConstructedFromRect) {
  Surface s("app", Rect{0, 0, 16, 32}, 1);
  EXPECT_EQ(s.name(), "app");
  EXPECT_EQ(s.screen_rect(), (Rect{0, 0, 16, 32}));
  EXPECT_EQ(s.z_order(), 1);
  EXPECT_TRUE(s.visible());
  EXPECT_EQ(s.buffer().size(), (Size{16, 32}));
  EXPECT_FALSE(s.has_pending_frame());
}

TEST(Surface, PostFrameReportsDirty) {
  Surface s("app", Rect{0, 0, 16, 16}, 0);
  Canvas& c = s.begin_frame();
  c.fill_rect(Rect{2, 2, 4, 4}, colors::kRed);
  const Rect dirty = s.post_frame();
  EXPECT_EQ(dirty, (Rect{2, 2, 4, 4}));
  EXPECT_TRUE(s.has_pending_frame());
  EXPECT_EQ(s.pending_dirty(), dirty);
}

TEST(Surface, RedundantPostHasEmptyDirty) {
  Surface s("app", Rect{0, 0, 16, 16}, 0);
  s.begin_frame();
  const Rect dirty = s.post_frame();
  EXPECT_TRUE(dirty.empty());
  EXPECT_TRUE(s.has_pending_frame());  // still a frame request
}

TEST(Surface, AcquireConsumesPendingFrame) {
  Surface s("app", Rect{0, 0, 16, 16}, 0);
  s.begin_frame();
  s.post_frame();
  s.acquire_frame();
  EXPECT_FALSE(s.has_pending_frame());
  EXPECT_TRUE(s.pending_dirty().empty());
}

TEST(Surface, ConsecutivePostsMergeDirty) {
  Surface s("app", Rect{0, 0, 16, 16}, 0);
  Canvas& c1 = s.begin_frame();
  c1.fill_rect(Rect{0, 0, 2, 2}, colors::kRed);
  s.post_frame();
  Canvas& c2 = s.begin_frame();
  c2.fill_rect(Rect{10, 10, 2, 2}, colors::kBlue);
  s.post_frame();
  EXPECT_EQ(s.pending_dirty(), (Rect{0, 0, 12, 12}));
}

TEST(Surface, VisibilityToggle) {
  Surface s("app", Rect{0, 0, 8, 8}, 0);
  s.set_visible(false);
  EXPECT_FALSE(s.visible());
}

}  // namespace
}  // namespace ccdem::gfx
