// Minimizer unit tests against synthetic predicates (no experiment runs),
// so each shrink lever can be pinned down exactly and the suite stays fast.
#include <gtest/gtest.h>

#include "apps/scene_dsl.h"
#include "check/minimizer.h"

namespace ccdem::check {
namespace {

Scenario big_scenario() {
  Scenario s;
  s.app = "TempleRun";
  s.mode = device::ControlMode::kSectionHysteresis;
  s.duration_ms = 4000;
  s.grid = "36k";
  s.alpha = 0.35;
  s.eval_ms = 200;
  s.boost_hold_ms = 900;
  s.fault_scale = 1.5;
  s.fleet = true;
  return s;
}

TEST(Minimizer, PassingInputIsReturnedUnchanged) {
  const Scenario s = big_scenario();
  int calls = 0;
  const MinimizeResult r = minimize_scenario(
      s, [&](const Scenario&) -> std::optional<std::string> {
        ++calls;
        return std::nullopt;
      });
  EXPECT_EQ(r.scenario, s);
  EXPECT_TRUE(r.failure.empty());
  EXPECT_EQ(calls, 1);
}

TEST(Minimizer, ShrinksEverythingUnderAlwaysFail) {
  const MinimizeResult r = minimize_scenario(
      big_scenario(),
      [](const Scenario&) -> std::optional<std::string> { return "boom"; });
  EXPECT_EQ(r.failure, "boom");
  const Scenario& m = r.scenario;
  EXPECT_LE(m.duration_ms, 500);
  EXPECT_FALSE(m.fleet);
  EXPECT_EQ(m.fault_scale, 0.0);
  EXPECT_EQ(m.mode, device::ControlMode::kSection);
  EXPECT_EQ(m.grid, Scenario{}.grid);
  EXPECT_EQ(m.alpha, Scenario{}.alpha);
  // The Monkey script was materialized and delta-debugged away entirely.
  ASSERT_TRUE(m.script.has_value());
  EXPECT_TRUE(m.script->empty());
  EXPECT_LT(m.rates.size(), big_scenario().rates.size());
  EXPECT_GT(r.accepted, 0);
}

TEST(Minimizer, KeepsDurationAboveWhatTheFailureNeeds) {
  const MinimizeResult r = minimize_scenario(
      big_scenario(), [](const Scenario& s) -> std::optional<std::string> {
        if (s.duration_ms >= 1000) return "needs a second";
        return std::nullopt;
      });
  EXPECT_GE(r.scenario.duration_ms, 1000);
  EXPECT_LT(r.scenario.duration_ms, 4000);
}

TEST(Minimizer, IsolatesTheFaultClassTheFailureNeeds) {
  const MinimizeResult r = minimize_scenario(
      big_scenario(), [](const Scenario& s) -> std::optional<std::string> {
        if (s.fault_scale > 0.0 && s.fault_classes.meter) return "meter flip";
        return std::nullopt;
      });
  EXPECT_GT(r.scenario.fault_scale, 0.0);
  const FaultClasses expect_meter_only{false, false, false, false, true};
  EXPECT_EQ(r.scenario.fault_classes, expect_meter_only);
}

TEST(Minimizer, PreservesFleetWhenTheFailureNeedsIt) {
  const MinimizeResult r = minimize_scenario(
      big_scenario(), [](const Scenario& s) -> std::optional<std::string> {
        if (s.fleet) return "fleet-only divergence";
        return std::nullopt;
      });
  EXPECT_TRUE(r.scenario.fleet);
}

TEST(Minimizer, PreservesTheModeTheFailureNeeds) {
  const MinimizeResult r = minimize_scenario(
      big_scenario(), [](const Scenario& s) -> std::optional<std::string> {
        if (s.mode == device::ControlMode::kSectionHysteresis) {
          return "hysteresis bug";
        }
        return std::nullopt;
      });
  EXPECT_EQ(r.scenario.mode, device::ControlMode::kSectionHysteresis);
}

TEST(Minimizer, DeltaDebugsScriptToTheOneGuiltyGesture) {
  Scenario s;
  s.fault_scale = 0.0;
  s.duration_ms = 3000;
  std::vector<input::TouchGesture> script;
  for (int i = 0; i < 8; ++i) {
    input::TouchGesture g;
    g.start = sim::Time{} + sim::milliseconds(100 + 200 * i);
    g.kind = input::TouchGesture::Kind::kTap;
    g.from = g.to = {10 * i, 20 * i};
    script.push_back(g);
  }
  const input::TouchGesture guilty = script[3];  // starts at 700 ms
  s.script = script;
  const MinimizeResult r = minimize_scenario(
      s, [&](const Scenario& c) -> std::optional<std::string> {
        if (!c.script) return std::nullopt;
        for (const input::TouchGesture& g : *c.script) {
          if (g == guilty) return "gesture tickles the bug";
        }
        return std::nullopt;
      });
  ASSERT_TRUE(r.scenario.script.has_value());
  ASSERT_EQ(r.scenario.script->size(), 1u);
  EXPECT_EQ(r.scenario.script->front(), guilty);
  // Duration shrank, but never below the gesture it must keep.
  EXPECT_GE(r.scenario.duration_ms, 700);
}

TEST(Minimizer, DropsAnInnocentSceneOverride) {
  Scenario s = big_scenario();
  s.scene =
      "schema = ccdem-scene-v1\n"
      "type = burst_video\n"
      "gap_ms = 700\n"
      "burst_frames = 12\n"
      "burst_fps = 30\n"
      "motion = 1,3,0,2\n";
  const MinimizeResult r = minimize_scenario(
      s, [](const Scenario&) -> std::optional<std::string> { return "boom"; });
  EXPECT_TRUE(r.scenario.scene.empty());
}

TEST(Minimizer, ShrinksTheStateGraphToTheGuiltyDialog) {
  // The synthetic "bug" needs a reachable dialog state: the minimizer must
  // keep the scene, drop the innocent states (remapping transition edges),
  // and straighten what remains.
  Scenario s = big_scenario();
  s.scene =
      "schema = ccdem-scene-v1\n"
      "type = ui\n"
      "idle_timeout_ms = 3000\n"
      "marquee_px = 6\n"
      "state = idle dwell_ms=1200 fps=2 next=1 touch=1\n"
      "state = menu dwell_ms=900 fps=6 next=2 touch=3\n"
      "state = scroll dwell_ms=700 fps=24 next=3 touch=-1\n"
      "state = dialog dwell_ms=600 fps=12 next=4 touch=0\n"
      "state = slide dwell_ms=500 fps=24 next=5 touch=-1\n"
      "state = marquee dwell_ms=1500 fps=24 next=0 touch=3\n";
  const MinimizeResult r = minimize_scenario(
      s, [](const Scenario& c) -> std::optional<std::string> {
        if (c.scene.empty()) return std::nullopt;
        const auto spec = apps::scene_spec_from_string(c.scene);
        if (!spec || spec->type != apps::SceneSpec::Type::kUi) {
          return std::nullopt;
        }
        // "Reachable": walk the timed chain from state 0.
        int at = 0;
        for (int hops = 0; hops < 8; ++hops) {
          const auto& st = spec->ui.states[static_cast<std::size_t>(at)];
          if (st.kind == apps::UiState::Kind::kDialog) {
            return "dialog state trips the bug";
          }
          if (st.dwell_ms == 0 || st.next == at) break;
          at = st.next;
        }
        return std::nullopt;
      });
  ASSERT_FALSE(r.scenario.scene.empty());
  const auto spec = apps::scene_spec_from_string(r.scenario.scene);
  ASSERT_TRUE(spec);
  ASSERT_EQ(spec->type, apps::SceneSpec::Type::kUi);
  EXPECT_LE(spec->ui.states.size(), 3u) << r.scenario.scene;
  bool has_dialog = false;
  for (const auto& st : spec->ui.states) {
    has_dialog |= st.kind == apps::UiState::Kind::kDialog;
  }
  EXPECT_TRUE(has_dialog);
  EXPECT_EQ(spec->ui.idle_timeout_ms, 0) << "timeout was not straightened";
}

TEST(Minimizer, ShrinksBurstVideoToTheGuiltyMotionLevel) {
  Scenario s = big_scenario();
  s.scene =
      "schema = ccdem-scene-v1\n"
      "type = burst_video\n"
      "gap_ms = 800\n"
      "burst_frames = 16\n"
      "burst_fps = 30\n"
      "motion = 1,3,0,2\n";
  const MinimizeResult r = minimize_scenario(
      s, [](const Scenario& c) -> std::optional<std::string> {
        if (c.scene.empty()) return std::nullopt;
        const auto spec = apps::scene_spec_from_string(c.scene);
        if (!spec || spec->type != apps::SceneSpec::Type::kBurstVideo) {
          return std::nullopt;
        }
        for (const int level : spec->burst.motion) {
          if (level == 3) return "level-3 segments trip the bug";
        }
        return std::nullopt;
      });
  ASSERT_FALSE(r.scenario.scene.empty());
  const auto spec = apps::scene_spec_from_string(r.scenario.scene);
  ASSERT_TRUE(spec);
  EXPECT_EQ(spec->burst.motion, std::vector<int>{3}) << r.scenario.scene;
  EXPECT_LE(spec->burst.burst_frames, 2);
  EXPECT_LE(spec->burst.gap_ms, 100);
}

TEST(Minimizer, RespectsTheAttemptBudget) {
  MinimizeOptions options;
  options.max_attempts = 5;
  int calls = 0;
  const MinimizeResult r = minimize_scenario(
      big_scenario(),
      [&](const Scenario&) -> std::optional<std::string> {
        ++calls;
        return "boom";
      },
      options);
  EXPECT_LE(calls, 5);
  EXPECT_LE(r.attempts, 5);
  EXPECT_EQ(r.failure, "boom");
}

}  // namespace
}  // namespace ccdem::check
