// Minimizer unit tests against synthetic predicates (no experiment runs),
// so each shrink lever can be pinned down exactly and the suite stays fast.
#include <gtest/gtest.h>

#include "check/minimizer.h"

namespace ccdem::check {
namespace {

Scenario big_scenario() {
  Scenario s;
  s.app = "TempleRun";
  s.mode = device::ControlMode::kSectionHysteresis;
  s.duration_ms = 4000;
  s.grid = "36k";
  s.alpha = 0.35;
  s.eval_ms = 200;
  s.boost_hold_ms = 900;
  s.fault_scale = 1.5;
  s.fleet = true;
  return s;
}

TEST(Minimizer, PassingInputIsReturnedUnchanged) {
  const Scenario s = big_scenario();
  int calls = 0;
  const MinimizeResult r = minimize_scenario(
      s, [&](const Scenario&) -> std::optional<std::string> {
        ++calls;
        return std::nullopt;
      });
  EXPECT_EQ(r.scenario, s);
  EXPECT_TRUE(r.failure.empty());
  EXPECT_EQ(calls, 1);
}

TEST(Minimizer, ShrinksEverythingUnderAlwaysFail) {
  const MinimizeResult r = minimize_scenario(
      big_scenario(),
      [](const Scenario&) -> std::optional<std::string> { return "boom"; });
  EXPECT_EQ(r.failure, "boom");
  const Scenario& m = r.scenario;
  EXPECT_LE(m.duration_ms, 500);
  EXPECT_FALSE(m.fleet);
  EXPECT_EQ(m.fault_scale, 0.0);
  EXPECT_EQ(m.mode, device::ControlMode::kSection);
  EXPECT_EQ(m.grid, Scenario{}.grid);
  EXPECT_EQ(m.alpha, Scenario{}.alpha);
  // The Monkey script was materialized and delta-debugged away entirely.
  ASSERT_TRUE(m.script.has_value());
  EXPECT_TRUE(m.script->empty());
  EXPECT_LT(m.rates.size(), big_scenario().rates.size());
  EXPECT_GT(r.accepted, 0);
}

TEST(Minimizer, KeepsDurationAboveWhatTheFailureNeeds) {
  const MinimizeResult r = minimize_scenario(
      big_scenario(), [](const Scenario& s) -> std::optional<std::string> {
        if (s.duration_ms >= 1000) return "needs a second";
        return std::nullopt;
      });
  EXPECT_GE(r.scenario.duration_ms, 1000);
  EXPECT_LT(r.scenario.duration_ms, 4000);
}

TEST(Minimizer, IsolatesTheFaultClassTheFailureNeeds) {
  const MinimizeResult r = minimize_scenario(
      big_scenario(), [](const Scenario& s) -> std::optional<std::string> {
        if (s.fault_scale > 0.0 && s.fault_classes.meter) return "meter flip";
        return std::nullopt;
      });
  EXPECT_GT(r.scenario.fault_scale, 0.0);
  const FaultClasses expect_meter_only{false, false, false, false, true};
  EXPECT_EQ(r.scenario.fault_classes, expect_meter_only);
}

TEST(Minimizer, PreservesFleetWhenTheFailureNeedsIt) {
  const MinimizeResult r = minimize_scenario(
      big_scenario(), [](const Scenario& s) -> std::optional<std::string> {
        if (s.fleet) return "fleet-only divergence";
        return std::nullopt;
      });
  EXPECT_TRUE(r.scenario.fleet);
}

TEST(Minimizer, PreservesTheModeTheFailureNeeds) {
  const MinimizeResult r = minimize_scenario(
      big_scenario(), [](const Scenario& s) -> std::optional<std::string> {
        if (s.mode == device::ControlMode::kSectionHysteresis) {
          return "hysteresis bug";
        }
        return std::nullopt;
      });
  EXPECT_EQ(r.scenario.mode, device::ControlMode::kSectionHysteresis);
}

TEST(Minimizer, DeltaDebugsScriptToTheOneGuiltyGesture) {
  Scenario s;
  s.fault_scale = 0.0;
  s.duration_ms = 3000;
  std::vector<input::TouchGesture> script;
  for (int i = 0; i < 8; ++i) {
    input::TouchGesture g;
    g.start = sim::Time{} + sim::milliseconds(100 + 200 * i);
    g.kind = input::TouchGesture::Kind::kTap;
    g.from = g.to = {10 * i, 20 * i};
    script.push_back(g);
  }
  const input::TouchGesture guilty = script[3];  // starts at 700 ms
  s.script = script;
  const MinimizeResult r = minimize_scenario(
      s, [&](const Scenario& c) -> std::optional<std::string> {
        if (!c.script) return std::nullopt;
        for (const input::TouchGesture& g : *c.script) {
          if (g == guilty) return "gesture tickles the bug";
        }
        return std::nullopt;
      });
  ASSERT_TRUE(r.scenario.script.has_value());
  ASSERT_EQ(r.scenario.script->size(), 1u);
  EXPECT_EQ(r.scenario.script->front(), guilty);
  // Duration shrank, but never below the gesture it must keep.
  EXPECT_GE(r.scenario.duration_ms, 700);
}

TEST(Minimizer, RespectsTheAttemptBudget) {
  MinimizeOptions options;
  options.max_attempts = 5;
  int calls = 0;
  const MinimizeResult r = minimize_scenario(
      big_scenario(),
      [&](const Scenario&) -> std::optional<std::string> {
        ++calls;
        return "boom";
      },
      options);
  EXPECT_LE(calls, 5);
  EXPECT_LE(r.attempts, 5);
  EXPECT_EQ(r.failure, "boom");
}

}  // namespace
}  // namespace ccdem::check
