#include "gfx/ppm.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ccdem::gfx {
namespace {

TEST(Ppm, HeaderFormat) {
  Framebuffer fb(4, 2);
  std::ostringstream os;
  write_ppm(os, fb);
  const std::string s = os.str();
  EXPECT_EQ(s.substr(0, 11), "P6\n4 2\n255\n");
  // 11-byte header + 4*2*3 payload bytes.
  EXPECT_EQ(s.size(), 11u + 24u);
}

TEST(Ppm, RoundTrip) {
  Framebuffer fb(8, 8);
  fb.fill_rect(Rect{0, 0, 4, 8}, colors::kRed);
  fb.set(7, 7, colors::kBlue);
  std::stringstream ss;
  write_ppm(ss, fb);
  const Framebuffer back = read_ppm(ss);
  ASSERT_EQ(back.size(), fb.size());
  EXPECT_TRUE(back.equals(fb));
}

TEST(Ppm, RejectsWrongMagic) {
  std::istringstream is("P3\n2 2\n255\n");
  EXPECT_TRUE(read_ppm(is).size().empty());
}

TEST(Ppm, RejectsTruncatedPayload) {
  std::stringstream ss;
  ss << "P6\n4 4\n255\n";
  ss << "short";
  EXPECT_TRUE(read_ppm(ss).size().empty());
}

TEST(Ppm, PixelOrderIsRowMajorRgb) {
  Framebuffer fb(2, 1);
  fb.set(0, 0, Rgb888{1, 2, 3});
  fb.set(1, 0, Rgb888{4, 5, 6});
  std::ostringstream os;
  write_ppm(os, fb);
  const std::string s = os.str();
  const std::string payload = s.substr(s.size() - 6);
  EXPECT_EQ(payload, std::string("\x01\x02\x03\x04\x05\x06", 6));
}

}  // namespace
}  // namespace ccdem::gfx
