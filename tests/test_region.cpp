#include "gfx/region.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace ccdem::gfx {
namespace {

TEST(Region, StartsEmpty) {
  Region r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.area(), 0);
  EXPECT_TRUE(r.bounds().empty());
}

TEST(Region, SingleRect) {
  Region r(Rect{1, 2, 3, 4});
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.area(), 12);
  EXPECT_EQ(r.bounds(), (Rect{1, 2, 3, 4}));
}

TEST(Region, EmptyRectIgnored) {
  Region r;
  r.add(Rect{0, 0, 0, 5});
  EXPECT_TRUE(r.empty());
}

TEST(Region, DisjointRectsAreExact) {
  Region r;
  r.add(Rect{0, 0, 10, 10});
  r.add(Rect{100, 100, 10, 10});
  EXPECT_EQ(r.area(), 200);
  // The bounding box is much larger than the actual covered area -- the
  // whole point of multi-rect tracking.
  EXPECT_EQ(r.bounds().area(), 110 * 110);
}

TEST(Region, OverlapNotDoubleCounted) {
  Region r;
  r.add(Rect{0, 0, 10, 10});
  r.add(Rect{5, 5, 10, 10});
  EXPECT_EQ(r.area(), 100 + 100 - 25);
}

TEST(Region, FullyContainedAddIsNoop) {
  Region r;
  r.add(Rect{0, 0, 20, 20});
  r.add(Rect{5, 5, 5, 5});
  EXPECT_EQ(r.area(), 400);
}

TEST(Region, IdenticalAddIsIdempotent) {
  Region r;
  r.add(Rect{3, 3, 7, 7});
  r.add(Rect{3, 3, 7, 7});
  EXPECT_EQ(r.area(), 49);
}

TEST(Region, ContainsPoints) {
  Region r;
  r.add(Rect{0, 0, 10, 10});
  r.add(Rect{20, 20, 10, 10});
  EXPECT_TRUE(r.contains({5, 5}));
  EXPECT_TRUE(r.contains({25, 25}));
  EXPECT_FALSE(r.contains({15, 15}));  // in bounds gap
}

TEST(Region, Intersects) {
  Region r(Rect{0, 0, 10, 10});
  EXPECT_TRUE(r.intersects(Rect{5, 5, 10, 10}));
  EXPECT_FALSE(r.intersects(Rect{20, 20, 5, 5}));
}

TEST(Region, ClipRestricts) {
  Region r;
  r.add(Rect{0, 0, 10, 10});
  r.add(Rect{20, 0, 10, 10});
  r.clip(Rect{0, 0, 15, 15});
  EXPECT_EQ(r.area(), 100);
  EXPECT_FALSE(r.contains({22, 2}));
}

TEST(Region, Translate) {
  Region r(Rect{0, 0, 5, 5});
  r.translate(10, 20);
  EXPECT_TRUE(r.contains({12, 22}));
  EXPECT_FALSE(r.contains({2, 2}));
}

TEST(Region, AddRegionMerges) {
  Region a(Rect{0, 0, 10, 10});
  Region b;
  b.add(Rect{5, 0, 10, 10});
  b.add(Rect{30, 30, 2, 2});
  a.add(b);
  EXPECT_EQ(a.area(), 150 + 4);
}

TEST(Region, CoalescesBeyondMaxRects) {
  Region r;
  // 4 * kMaxRects disjoint unit rects along a diagonal.
  for (int i = 0; i < static_cast<int>(Region::kMaxRects) * 4; ++i) {
    r.add(Rect{i * 3, i * 3, 1, 1});
  }
  EXPECT_LE(r.rects().size(), Region::kMaxRects);
  // Coverage may grow (coalescing joins) but never shrinks below the input.
  EXPECT_GE(r.area(), static_cast<std::int64_t>(Region::kMaxRects) * 4);
  // Every original point is still covered.
  for (int i = 0; i < static_cast<int>(Region::kMaxRects) * 4; ++i) {
    EXPECT_TRUE(r.contains({i * 3, i * 3}));
  }
}

TEST(Region, RectsStayDisjointUnderRandomAdds) {
  sim::Rng rng(21);
  Region r;
  for (int i = 0; i < 200; ++i) {
    r.add(Rect{static_cast<int>(rng.uniform_int(0, 90)),
               static_cast<int>(rng.uniform_int(0, 90)),
               static_cast<int>(rng.uniform_int(1, 20)),
               static_cast<int>(rng.uniform_int(1, 20))});
  }
  const auto& rects = r.rects();
  for (std::size_t i = 0; i < rects.size(); ++i) {
    for (std::size_t j = i + 1; j < rects.size(); ++j) {
      EXPECT_TRUE(rects[i].intersect(rects[j]).empty())
          << "rects " << i << " and " << j << " overlap";
    }
  }
  EXPECT_LE(r.area(), r.bounds().area());
}

TEST(Region, AreaNeverExceedsBoundsUnderCoalescing) {
  sim::Rng rng(22);
  Region r;
  for (int i = 0; i < 100; ++i) {
    r.add(Rect{static_cast<int>(rng.uniform_int(0, 700)),
               static_cast<int>(rng.uniform_int(0, 1200)),
               static_cast<int>(rng.uniform_int(1, 60)),
               static_cast<int>(rng.uniform_int(1, 60))});
    EXPECT_LE(r.area(), r.bounds().area());
    EXPECT_LE(r.rects().size(), Region::kMaxRects);
  }
}

}  // namespace
}  // namespace ccdem::gfx
