#include <gtest/gtest.h>

#include "harness/session.h"

namespace ccdem::harness {
namespace {

SessionConfig two_apps(ControlMode mode) {
  SessionConfig c;
  c.mode = mode;
  c.seed = 9;
  c.segments = {
      {apps::app_by_name("Tiny Flashlight"), sim::seconds(5)},
      {apps::app_by_name("Jelly Splash"), sim::seconds(5)},
  };
  return c;
}

TEST(SwitchingSession, RunsAllSegmentsOnOneDevice) {
  const auto r = run_switching_session(two_apps(ControlMode::kBaseline60));
  EXPECT_EQ(r.total_duration, sim::seconds(10));
  ASSERT_EQ(r.segment_power_mw.size(), 2u);
  EXPECT_GT(r.frames_composed, 0u);
}

TEST(SwitchingSession, SegmentPowersReflectTheApps) {
  const auto r = run_switching_session(two_apps(ControlMode::kBaseline60));
  // A static flashlight draws far less than a 60 fps game.
  EXPECT_LT(r.segment_power_mw[0], r.segment_power_mw[1] - 200.0);
}

TEST(SwitchingSession, ControlledUsesLessEnergy) {
  const auto base = run_switching_session(two_apps(ControlMode::kBaseline60));
  const auto ctl =
      run_switching_session(two_apps(ControlMode::kSectionWithBoost));
  EXPECT_LT(ctl.total_energy_mj, base.total_energy_mj);
}

TEST(SwitchingSession, AppSwitchRepaintsWindow) {
  // The incoming app must repaint, producing a content frame right at the
  // boundary; composition never stalls across the switch.
  const auto r = run_switching_session(two_apps(ControlMode::kBaseline60));
  EXPECT_GT(r.content_frames, 10u);
  // The flashlight segment contributes almost nothing; nearly all content
  // comes from the game segment plus the two window repaints.
  EXPECT_GT(r.frames_composed, r.content_frames);
}

TEST(SwitchingSession, ControllerRampsAcrossSwitch) {
  // Static app first (panel parks at 20 Hz), then a demanding game: the
  // refresh trace must show the ramp back up after the switch.
  const auto r =
      run_switching_session(two_apps(ControlMode::kSectionWithBoost));
  const double during_static =
      r.refresh_rate.value_at(sim::at_seconds(4.5), 60.0);
  const double during_game =
      r.refresh_rate.value_at(sim::at_seconds(9.5), 60.0);
  EXPECT_LT(during_static, 30.0);
  EXPECT_GT(during_game, during_static);
}

TEST(SwitchingSession, IncomingAppRepaintsAtBoundary) {
  // Two fully static segments: the only content around the boundary is the
  // incoming app's resume repaint, so the ground-truth content-rate trace
  // must show it right after the switch.
  SessionConfig c;
  c.mode = ControlMode::kBaseline60;
  c.seed = 9;
  c.segments = {
      {apps::app_by_name("Tiny Flashlight"), sim::seconds(5)},
      {apps::app_by_name("Tiny Flashlight"), sim::seconds(5)},
  };
  const auto r = run_switching_session(c);
  double content_after_switch = 0.0;
  for (const sim::TracePoint& p : r.content_rate.points()) {
    if (p.t >= sim::at_seconds(5.0) && p.t < sim::at_seconds(6.5)) {
      content_after_switch += p.value;
    }
  }
  EXPECT_GT(content_after_switch, 0.0);
}

TEST(SwitchingSession, BackgroundAppStopsPosting) {
  // Game first, flashlight second: once backgrounded at t = 5 s, the game
  // must stop posting -- its total stays at roughly 5 s x 60 fps, nowhere
  // near the ~600 frames of a full 10 s foreground run.
  SessionConfig c;
  c.mode = ControlMode::kBaseline60;
  c.seed = 9;
  c.segments = {
      {apps::app_by_name("Jelly Splash"), sim::seconds(5)},
      {apps::app_by_name("Tiny Flashlight"), sim::seconds(5)},
  };
  const auto r = run_switching_session(c);
  ASSERT_EQ(r.app_frames_posted.size(), 2u);
  EXPECT_GT(r.app_frames_posted[0], 200u);  // active for its own segment
  EXPECT_LT(r.app_frames_posted[0], 400u);  // silent after the switch
  // The flashlight paints its window and little else.
  EXPECT_LT(r.app_frames_posted[1], 100u);
}

TEST(SwitchingSession, PowerIntegrationContinuousAcrossSwitch) {
  const auto r = run_switching_session(two_apps(ControlMode::kSectionWithBoost));
  // The meter samples every 50 ms for the whole 10 s session: no gap or
  // restart at the segment boundary.
  ASSERT_EQ(r.power.size(), 200u);
  const auto& pts = r.power.points();
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_EQ((pts[i].t - pts[i - 1].t).ticks,
              sim::milliseconds(50).ticks);
  }
  // Samples straddling the switch carry real power, not zeros.
  EXPECT_GT(r.power.mean_between(sim::at_seconds(4.5), sim::at_seconds(5.5)),
            0.0);
}

TEST(SwitchingSession, Deterministic) {
  const auto a = run_switching_session(two_apps(ControlMode::kSection));
  const auto b = run_switching_session(two_apps(ControlMode::kSection));
  EXPECT_DOUBLE_EQ(a.mean_power_mw, b.mean_power_mw);
  EXPECT_EQ(a.frames_composed, b.frames_composed);
}

}  // namespace
}  // namespace ccdem::harness
