#include <gtest/gtest.h>

#include "harness/session.h"

namespace ccdem::harness {
namespace {

SessionConfig two_apps(ControlMode mode) {
  SessionConfig c;
  c.mode = mode;
  c.seed = 9;
  c.segments = {
      {apps::app_by_name("Tiny Flashlight"), sim::seconds(5)},
      {apps::app_by_name("Jelly Splash"), sim::seconds(5)},
  };
  return c;
}

TEST(SwitchingSession, RunsAllSegmentsOnOneDevice) {
  const auto r = run_switching_session(two_apps(ControlMode::kBaseline60));
  EXPECT_EQ(r.total_duration, sim::seconds(10));
  ASSERT_EQ(r.segment_power_mw.size(), 2u);
  EXPECT_GT(r.frames_composed, 0u);
}

TEST(SwitchingSession, SegmentPowersReflectTheApps) {
  const auto r = run_switching_session(two_apps(ControlMode::kBaseline60));
  // A static flashlight draws far less than a 60 fps game.
  EXPECT_LT(r.segment_power_mw[0], r.segment_power_mw[1] - 200.0);
}

TEST(SwitchingSession, ControlledUsesLessEnergy) {
  const auto base = run_switching_session(two_apps(ControlMode::kBaseline60));
  const auto ctl =
      run_switching_session(two_apps(ControlMode::kSectionWithBoost));
  EXPECT_LT(ctl.total_energy_mj, base.total_energy_mj);
}

TEST(SwitchingSession, AppSwitchRepaintsWindow) {
  // The incoming app must repaint, producing a content frame right at the
  // boundary; composition never stalls across the switch.
  const auto r = run_switching_session(two_apps(ControlMode::kBaseline60));
  EXPECT_GT(r.content_frames, 10u);
  // The flashlight segment contributes almost nothing; nearly all content
  // comes from the game segment plus the two window repaints.
  EXPECT_GT(r.frames_composed, r.content_frames);
}

TEST(SwitchingSession, ControllerRampsAcrossSwitch) {
  // Static app first (panel parks at 20 Hz), then a demanding game: the
  // refresh trace must show the ramp back up after the switch.
  const auto r =
      run_switching_session(two_apps(ControlMode::kSectionWithBoost));
  const double during_static =
      r.refresh_rate.value_at(sim::at_seconds(4.5), 60.0);
  const double during_game =
      r.refresh_rate.value_at(sim::at_seconds(9.5), 60.0);
  EXPECT_LT(during_static, 30.0);
  EXPECT_GT(during_game, during_static);
}

TEST(SwitchingSession, Deterministic) {
  const auto a = run_switching_session(two_apps(ControlMode::kSection));
  const auto b = run_switching_session(two_apps(ControlMode::kSection));
  EXPECT_DOUBLE_EQ(a.mean_power_mw, b.mean_power_mw);
  EXPECT_EQ(a.frames_composed, b.frames_composed);
}

}  // namespace
}  // namespace ccdem::harness
