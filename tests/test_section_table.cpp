#include "core/section_table.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ccdem::core {
namespace {

const display::RefreshRateSet kS3 = display::RefreshRateSet::galaxy_s3();

TEST(SectionTable, ReproducesPaperFigure5) {
  const SectionTable t = SectionTable::build(kS3, 0.5);
  // The paper's table for the Galaxy S3:
  //   0~10 -> 20 Hz, 10~22 -> 24 Hz, 22~27 -> 30 Hz, 27~35 -> 40 Hz,
  //   35~60 -> 60 Hz.
  ASSERT_EQ(t.sections().size(), 5u);
  EXPECT_DOUBLE_EQ(t.sections()[0].lo_fps, 0.0);
  EXPECT_DOUBLE_EQ(t.sections()[0].hi_fps, 10.0);
  EXPECT_EQ(t.sections()[0].refresh_hz, 20);
  EXPECT_DOUBLE_EQ(t.sections()[1].hi_fps, 22.0);
  EXPECT_EQ(t.sections()[1].refresh_hz, 24);
  EXPECT_DOUBLE_EQ(t.sections()[2].hi_fps, 27.0);
  EXPECT_EQ(t.sections()[2].refresh_hz, 30);
  EXPECT_DOUBLE_EQ(t.sections()[3].hi_fps, 35.0);
  EXPECT_EQ(t.sections()[3].refresh_hz, 40);
  EXPECT_TRUE(std::isinf(t.sections()[4].hi_fps));
  EXPECT_EQ(t.sections()[4].refresh_hz, 60);
}

TEST(SectionTable, PaperExampleLookups) {
  const SectionTable t = SectionTable::build(kS3, 0.5);
  // Figure 5's worked example: 8 fps -> 20 Hz, 33 fps -> 40 Hz.
  EXPECT_EQ(t.rate_for(8.0), 20);
  EXPECT_EQ(t.rate_for(33.0), 40);
  // Section 3.2's text: "if the content rate exceeds 20 fps, the system
  // increases the refresh rate" -- 21 fps must not stay at 20 Hz.
  EXPECT_GT(t.rate_for(21.0), 20);
}

TEST(SectionTable, BoundaryValues) {
  const SectionTable t = SectionTable::build(kS3, 0.5);
  EXPECT_EQ(t.rate_for(0.0), 20);
  EXPECT_EQ(t.rate_for(9.999), 20);
  EXPECT_EQ(t.rate_for(10.0), 24);
  EXPECT_EQ(t.rate_for(22.0), 30);
  EXPECT_EQ(t.rate_for(27.0), 40);
  EXPECT_EQ(t.rate_for(35.0), 60);
  EXPECT_EQ(t.rate_for(60.0), 60);
  EXPECT_EQ(t.rate_for(1000.0), 60);
}

TEST(SectionTable, NegativeContentRateClampsToLowest) {
  const SectionTable t = SectionTable::build(kS3, 0.5);
  EXPECT_EQ(t.rate_for(-5.0), 20);
}

TEST(SectionTable, RefreshAlwaysExceedsContentRate) {
  // The control-correctness invariant: the chosen rate must be strictly
  // above the content rate (else V-Sync would hide content growth).
  const SectionTable t = SectionTable::build(kS3, 0.5);
  for (double c = 0.0; c < 59.0; c += 0.25) {
    EXPECT_GT(t.rate_for(c), c) << "content rate " << c;
  }
}

TEST(SectionTable, AlphaOneIsMinimalSufficientRate) {
  const SectionTable t = SectionTable::build(kS3, 1.0);
  EXPECT_EQ(t.rate_for(19.0), 20);
  EXPECT_EQ(t.rate_for(21.0), 24);
  EXPECT_EQ(t.rate_for(39.0), 40);
  EXPECT_EQ(t.rate_for(41.0), 60);
}

TEST(SectionTable, AlphaZeroIsMostConservative) {
  const SectionTable t = SectionTable::build(kS3, 0.0);
  // All thresholds collapse to the lower neighbour rate: any content rate
  // above the previous level forces the next rate up, and the lowest
  // section degenerates to empty (the panel never drops to 20 Hz).
  EXPECT_EQ(t.rate_for(0.0), 24);
  EXPECT_EQ(t.rate_for(5.0), 24);
  EXPECT_EQ(t.rate_for(21.0), 30);
  EXPECT_EQ(t.rate_for(31.0), 60);
}

TEST(SectionTable, SectionsArePartition) {
  const SectionTable t = SectionTable::build(kS3, 0.5);
  double prev_hi = 0.0;
  for (const auto& s : t.sections()) {
    EXPECT_DOUBLE_EQ(s.lo_fps, prev_hi);
    prev_hi = s.hi_fps;
  }
}

TEST(SectionTable, SingleRateSet) {
  const SectionTable t =
      SectionTable::build(display::RefreshRateSet{60}, 0.5);
  ASSERT_EQ(t.sections().size(), 1u);
  EXPECT_EQ(t.rate_for(0.0), 60);
  EXPECT_EQ(t.rate_for(100.0), 60);
}

TEST(SectionTable, RebuildsForDifferentPanel) {
  // "the thresholds should be redefined when the available refresh rates
  // are changed" -- an LTPO panel gets a very different table.
  const SectionTable t =
      SectionTable::build(display::RefreshRateSet::ltpo_120(), 0.5);
  EXPECT_EQ(t.rate_for(0.2), 1);
  EXPECT_EQ(t.rate_for(3.0), 10);
  EXPECT_EQ(t.rate_for(70.0), 90);   // 70 < median(60, 90) = 75
  EXPECT_EQ(t.rate_for(80.0), 120);
}

TEST(SectionTable, ToStringListsAllSections) {
  const SectionTable t = SectionTable::build(kS3, 0.5);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("20 Hz"), std::string::npos);
  EXPECT_NE(s.find("60 Hz"), std::string::npos);
  EXPECT_NE(s.find("inf"), std::string::npos);
}

}  // namespace
}  // namespace ccdem::core
