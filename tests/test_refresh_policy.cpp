#include "core/refresh_policy.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ccdem::core {
namespace {

const display::RefreshRateSet kS3 = display::RefreshRateSet::galaxy_s3();

TEST(SectionPolicy, FollowsSectionTable) {
  SectionPolicy p(kS3, 0.5);
  EXPECT_EQ(p.decide(sim::Time{}, 8.0, 60), 20);
  EXPECT_EQ(p.decide(sim::Time{}, 33.0, 20), 40);
  EXPECT_EQ(p.decide(sim::Time{}, 50.0, 20), 60);
  EXPECT_STREQ(p.name(), "section");
}

TEST(SectionPolicy, AlwaysAboveContentRate) {
  SectionPolicy p(kS3, 0.5);
  for (double c = 0.0; c < 59.0; c += 0.5) {
    EXPECT_GT(p.decide(sim::Time{}, c, 60), c);
  }
}

TEST(NaivePolicy, MapsToCeilRate) {
  NaivePolicy p(kS3);
  EXPECT_EQ(p.decide(sim::Time{}, 8.0, 60), 20);
  EXPECT_EQ(p.decide(sim::Time{}, 21.0, 60), 24);
  EXPECT_EQ(p.decide(sim::Time{}, 59.0, 60), 60);
  EXPECT_STREQ(p.name(), "naive");
}

TEST(NaivePolicy, ExhibitsVsyncTrap) {
  // The paper's failed first attempt: once at 20 Hz, the measured content
  // rate can never exceed 20 fps (V-Sync caps it), so the decision never
  // leaves 20 Hz even though the app wants 60 fps of content.
  NaivePolicy p(kS3);
  int hz = 60;
  // Content rate the meter *observes* is min(true content, refresh).
  const double true_content = 45.0;
  hz = p.decide(sim::Time{}, std::min(true_content, 8.0), hz);  // idle dip
  EXPECT_EQ(hz, 20);
  for (int step = 0; step < 10; ++step) {
    const double observed = std::min(true_content, static_cast<double>(hz));
    hz = p.decide(sim::Time{}, observed, hz);
  }
  EXPECT_EQ(hz, 20) << "naive control escaped the trap it is known for";
}

TEST(SectionPolicy, EscapesVsyncTrap) {
  // Same scenario: the section table keeps headroom above the observed
  // rate, so the observation can climb and the controller ramps up.
  SectionPolicy p(kS3, 0.5);
  int hz = p.decide(sim::Time{}, 8.0, 60);
  EXPECT_EQ(hz, 20);
  const double true_content = 45.0;
  for (int step = 0; step < 10; ++step) {
    const double observed = std::min(true_content, static_cast<double>(hz));
    hz = p.decide(sim::Time{}, observed, hz);
  }
  EXPECT_EQ(hz, 60);
}

TEST(FixedPolicy, AlwaysReturnsConfiguredRate) {
  FixedPolicy p(60);
  EXPECT_EQ(p.decide(sim::Time{}, 0.0, 20), 60);
  EXPECT_EQ(p.decide(sim::Time{}, 59.0, 20), 60);
  EXPECT_STREQ(p.name(), "fixed");
}

}  // namespace
}  // namespace ccdem::core
