// Randomized round-trip test for the Monkey script serializer: arbitrary
// gesture streams must survive write -> parse without loss, and the parser
// must reject truncated or corrupted input with an error, never a crash
// (companion to test_fuzz_trace_export for the obs formats).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/scenario.h"
#include "check/scenario_gen.h"
#include "input/monkey.h"
#include "input/script_io.h"
#include "sim/rng.h"
#include "sim/time.h"

using namespace ccdem;
using input::TouchGesture;

namespace {

bool gestures_equal(const TouchGesture& a, const TouchGesture& b) {
  return a.kind == b.kind && a.start == b.start && a.duration == b.duration &&
         a.from.x == b.from.x && a.from.y == b.from.y && a.to.x == b.to.x &&
         a.to.y == b.to.y;
}

/// Random script honouring the format's invariants (non-negative swipe
/// duration, non-decreasing start times).  Taps reparse with the parser's
/// canonical 60 ms duration, so the generator uses it too.
std::vector<TouchGesture> random_script(sim::Rng& rng, int count) {
  std::vector<TouchGesture> script;
  sim::Tick start = rng.uniform_int(0, 1'000'000);
  for (int i = 0; i < count; ++i) {
    TouchGesture g;
    g.start = sim::Time{start};
    g.from = {static_cast<int>(rng.uniform_int(-100, 2000)),
              static_cast<int>(rng.uniform_int(-100, 2000))};
    if (rng.chance(0.5)) {
      g.kind = TouchGesture::Kind::kSwipe;
      g.duration = sim::Duration{rng.uniform_int(0, 2'000'000)};
      g.to = {static_cast<int>(rng.uniform_int(-100, 2000)),
              static_cast<int>(rng.uniform_int(-100, 2000))};
    } else {
      g.kind = TouchGesture::Kind::kTap;
      g.duration = sim::milliseconds(60);
      g.to = g.from;
    }
    script.push_back(g);
    start += rng.uniform_int(0, 5'000'000);  // non-decreasing; ties allowed
  }
  return script;
}

TEST(ScriptIoFuzz, RoundTripsArbitraryScripts) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    sim::Rng rng(seed);
    const auto script =
        random_script(rng, static_cast<int>(rng.uniform_int(0, 40)));
    std::string error;
    const auto back =
        input::script_from_string(input::script_to_string(script), &error);
    ASSERT_TRUE(back.has_value()) << "seed=" << seed << ": " << error;
    ASSERT_EQ(back->size(), script.size()) << "seed=" << seed;
    for (std::size_t i = 0; i < script.size(); ++i) {
      EXPECT_TRUE(gestures_equal((*back)[i], script[i]))
          << "seed=" << seed << " gesture=" << i;
    }
  }
}

TEST(ScriptIoFuzz, RoundTripsGeneratedMonkeyScripts) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    sim::Rng rng(seed);
    const auto script = input::generate_monkey_script(
        rng, input::MonkeyProfile::general_app(), sim::seconds(120),
        {720, 1280});
    const auto back = input::script_from_string(input::script_to_string(script));
    ASSERT_TRUE(back.has_value()) << "seed=" << seed;
    ASSERT_EQ(back->size(), script.size()) << "seed=" << seed;
    for (std::size_t i = 0; i < script.size(); ++i) {
      EXPECT_TRUE(gestures_equal((*back)[i], script[i]))
          << "seed=" << seed << " gesture=" << i;
    }
  }
}

TEST(ScriptIoFuzz, TruncatedInputErrorsNotCrashes) {
  // Chop a valid script at every byte boundary: each prefix must either
  // parse (the cut fell on a line boundary) or error with a message --
  // never crash, never return a gesture the text does not contain.
  sim::Rng rng(7);
  const auto script = random_script(rng, 12);
  const std::string text = input::script_to_string(script);
  for (std::size_t cut = 0; cut < text.size(); ++cut) {
    std::string error = "unset";
    const auto parsed =
        input::script_from_string(text.substr(0, cut), &error);
    if (parsed.has_value()) {
      EXPECT_LE(parsed->size(), script.size()) << "cut=" << cut;
    } else {
      EXPECT_NE(error, "unset") << "cut=" << cut;
    }
  }
}

TEST(ScriptIoFuzz, MutatedInputErrorsNotCrashes) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    sim::Rng rng(seed);
    std::string text = input::script_to_string(random_script(rng, 10));
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < flips; ++i) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
      text[pos] = static_cast<char>(rng.uniform_int(1, 127));
    }
    std::string error = "unset";
    const auto parsed = input::script_from_string(text, &error);
    if (!parsed.has_value()) {
      EXPECT_NE(error, "unset") << "seed=" << seed;
    }
  }
}

TEST(ScriptIoFuzz, RejectsSpecificMalformedLines) {
  const char* kBad[] = {
      "jump 0 10 10\n",              // unknown gesture kind
      "tap 0 10\n",                  // missing coordinate
      "swipe 0 100 1 2 3\n",         // missing destination coordinate
      "swipe 0 -5 1 2 3 4\n",        // negative duration
      "tap 100 1 1\ntap 50 2 2\n",   // non-monotonic start times
      "tap abc 1 1\n",               // non-numeric field
  };
  for (const char* text : kBad) {
    std::string error;
    EXPECT_FALSE(input::script_from_string(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

// A scenario carrying every optional plane at once -- embedded script AND
// fault plan AND pressure episodes AND a scene override -- must survive the
// full write -> parse round-trip byte-exactly: the script and scene blocks
// are nested text formats inside the repro format, and this is where their
// markers could collide.
TEST(ScenarioIoFuzz, CombinedPlanesRoundTrip) {
  check::Scenario s;
  s.app = "Menu UI";
  s.mode = device::ControlMode::kSectionWithBoost;
  s.duration_ms = 4000;
  s.seed = 0xfeedULL;
  s.fault_scale = 1.25;
  s.fault_until_ms = 2000;
  s.fault_classes = {true, false, true, true, false};
  s.pressure_scale = 0.75;
  s.pressure_until_ms = 1500;
  s.pressure_classes = {true, false, true};
  s.fleet = true;
  s.scene =
      "schema = ccdem-scene-v1\n"
      "type = ui\n"
      "idle_timeout_ms = 2000\n"
      "marquee_px = 1\n"
      "state = marquee dwell_ms=800 fps=24 next=1 touch=-1\n"
      "state = dialog dwell_ms=600 fps=8 next=0 touch=0\n";
  sim::Rng rng(3);
  s.script = random_script(rng, 6);
  const std::string text = check::scenario_to_string(s);
  std::string error;
  const auto parsed = check::parse_scenario(text, &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(*parsed, s);
  EXPECT_EQ(check::scenario_to_string(*parsed), text);
}

// Generator-sampled scenarios (scene draws forced on) round-trip across
// seeds: whatever combination of planes the fuzzer can produce, the repro
// file preserves it.
TEST(ScenarioIoFuzz, SampledScenesRoundTripAcrossSeeds) {
  check::ScenarioGen::Options opt;
  opt.scene_p = 1.0;
  check::ScenarioGen gen(23, opt);
  int with_scene = 0;
  for (int i = 0; i < 60; ++i) {
    check::Scenario s = gen.next();
    if (i % 3 == 0) {
      sim::Rng rng(static_cast<std::uint64_t>(i) + 1);
      s.script = random_script(rng, static_cast<int>(rng.uniform_int(0, 8)));
    }
    with_scene += s.scene.empty() ? 0 : 1;
    std::string error;
    const auto parsed = check::parse_scenario(check::scenario_to_string(s),
                                              &error);
    ASSERT_TRUE(parsed) << "scenario " << i << ": " << error;
    EXPECT_EQ(*parsed, s) << "scenario " << i;
  }
  EXPECT_GT(with_scene, 10);  // the scene plane is actually exercised
}

TEST(ScenarioIoFuzz, MutatedScenarioTextErrorsNotCrashes) {
  check::ScenarioGen::Options opt;
  opt.scene_p = 1.0;
  check::ScenarioGen gen(29, opt);
  sim::Rng rng(31);
  for (int i = 0; i < 120; ++i) {
    std::string text = check::scenario_to_string(gen.next());
    const int flips = static_cast<int>(rng.uniform_int(1, 6));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
      text[pos] = static_cast<char>(rng.uniform_int(1, 127));
    }
    std::string error = "unset";
    const auto parsed = check::parse_scenario(text, &error);
    if (!parsed.has_value()) {
      EXPECT_NE(error, "unset") << "scenario " << i;
    }
  }
}

TEST(ScriptIoFuzz, AcceptsCommentsAndBlankLines) {
  const auto parsed = input::script_from_string(
      "# header\n\n   \ntap 10 1 2   # inline comment\n\nswipe 20 5 1 2 3 4\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 2u);
}

}  // namespace
