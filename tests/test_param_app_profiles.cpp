// Parameterized conformance of all 30 commercial-app profiles: at a fixed
// 60 Hz baseline, each app's measured behaviour must match its Fig. 2/3
// class (request rate honoured, content below frames, games busy, general
// apps mostly quiet).
#include <gtest/gtest.h>

#include "apps/app_profiles.h"
#include "harness/experiment.h"

namespace ccdem::harness {
namespace {

class AppProfileConformance : public ::testing::TestWithParam<int> {
 protected:
  [[nodiscard]] const apps::AppSpec& app() const {
    static const std::vector<apps::AppSpec> all = apps::all_apps();
    return all[static_cast<std::size_t>(GetParam())];
  }

  [[nodiscard]] ExperimentResult baseline_run() const {
    ExperimentConfig c;
    c.app = app();
    c.duration = sim::seconds(12);
    c.seed = 3;
    c.mode = ControlMode::kBaseline60;
    return run_experiment(c);
  }
};

TEST_P(AppProfileConformance, FrameRateTracksRequestRate) {
  const auto r = baseline_run();
  const double fps =
      static_cast<double>(r.frames_composed) / r.duration.seconds();
  // The burst behaviour can only raise the rate above the idle request.
  EXPECT_GT(fps, app().idle_request_fps * 0.7) << app().name;
  EXPECT_LE(fps, 61.0) << app().name;
}

TEST_P(AppProfileConformance, ContentNeverExceedsFrames) {
  const auto r = baseline_run();
  EXPECT_LE(r.content_frames, r.frames_composed) << app().name;
  EXPECT_GT(r.content_frames, 0u) << app().name;
}

TEST_P(AppProfileConformance, CategoryBehaviourHolds) {
  const auto r = baseline_run();
  const double fps =
      static_cast<double>(r.frames_composed) / r.duration.seconds();
  if (app().category == apps::AppSpec::Category::kGame) {
    EXPECT_GT(fps, 30.0) << app().name << " (Fig. 3: games above 30 fps)";
  } else {
    // General apps: the paper says "most" are below 30 fps; individual
    // profiles may burst, so only check the idle request configuration.
    EXPECT_LT(app().idle_request_fps, 30.0) << app().name;
  }
}

TEST_P(AppProfileConformance, ProposedSystemDoesNotRegress) {
  ExperimentConfig c;
  c.app = app();
  c.duration = sim::seconds(12);
  c.seed = 3;
  c.mode = ControlMode::kSectionWithBoost;
  const AbResult ab = run_ab(c);
  EXPECT_GT(ab.saved_power_mw, -20.0) << app().name;
  EXPECT_GT(ab.quality.display_quality_pct, 85.0) << app().name;
}

INSTANTIATE_TEST_SUITE_P(
    All30Apps, AppProfileConformance, ::testing::Range(0, 30),
    [](const ::testing::TestParamInfo<int>& info) {
      std::string name =
          apps::all_apps()[static_cast<std::size_t>(info.param)].name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ccdem::harness
