#include "harness/session.h"

#include <gtest/gtest.h>

namespace ccdem::harness {
namespace {

SessionConfig tiny_session(ControlMode mode) {
  SessionConfig c;
  c.mode = mode;
  c.seed = 5;
  c.segments = {
      {apps::app_by_name("Facebook"), sim::seconds(5)},
      {apps::app_by_name("Jelly Splash"), sim::seconds(5)},
  };
  return c;
}

TEST(Session, RunsAllSegments) {
  const SessionResult r = run_session(tiny_session(ControlMode::kBaseline60));
  ASSERT_EQ(r.segments.size(), 2u);
  EXPECT_EQ(r.segments[0].app_name, "Facebook");
  EXPECT_EQ(r.segments[1].app_name, "Jelly Splash");
  EXPECT_EQ(r.total_duration, sim::seconds(10));
}

TEST(Session, EnergyIsSumOfSegments) {
  const SessionResult r = run_session(tiny_session(ControlMode::kBaseline60));
  const double expected = r.segments[0].mean_power_mw * 5.0 +
                          r.segments[1].mean_power_mw * 5.0;
  EXPECT_NEAR(r.total_energy_mj, expected, 1e-6);
  EXPECT_NEAR(r.mean_power_mw, expected / 10.0, 1e-6);
}

TEST(Session, ControlledSessionUsesLessEnergy) {
  const SessionResult base =
      run_session(tiny_session(ControlMode::kBaseline60));
  const SessionResult ctl =
      run_session(tiny_session(ControlMode::kSectionWithBoost));
  EXPECT_LT(ctl.total_energy_mj, base.total_energy_mj);
}

TEST(Session, DeterministicAcrossModesPerSegmentScripts) {
  // Same seed => same scripts: the baseline and controlled arms see the
  // same touch event counts segment by segment.
  const SessionResult a =
      run_session(tiny_session(ControlMode::kBaseline60));
  const SessionResult b =
      run_session(tiny_session(ControlMode::kSectionWithBoost));
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].touch_events, b.segments[i].touch_events);
  }
}

TEST(Session, TypicalHourComposition) {
  const SessionConfig c = typical_hour(0.01, ControlMode::kBaseline60);
  ASSERT_GE(c.segments.size(), 5u);
  sim::Duration total{};
  for (const auto& s : c.segments) total = total + s.duration;
  // 60 minutes scaled by 0.01 = 36 s.
  EXPECT_NEAR(total.seconds(), 36.0, 0.5);
}

TEST(Session, TypicalHourRuns) {
  const SessionResult r =
      run_session(typical_hour(0.005, ControlMode::kSectionWithBoost));
  EXPECT_GT(r.mean_power_mw, 400.0);
  EXPECT_EQ(r.segments.size(),
            typical_hour(0.005, ControlMode::kSectionWithBoost)
                .segments.size());
}

}  // namespace
}  // namespace ccdem::harness
