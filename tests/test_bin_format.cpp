// ccdem-bin-v1 unit tests: canonical encoding, strict decoding, checksum
// verification, and the bounded-error contract (every failure names where
// it was detected; no read ever runs past the data).
#include "campaign/bin_format.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ccdem::campaign {
namespace {

ResultRecord sample_result() {
  ResultRecord r;
  r.scenario_index = 42;
  r.app = "Facebook";
  r.mode = "section+boost";
  r.seed = 7;
  r.duration_ms = 2000;
  r.mean_power_mw = 812.375;
  r.mean_refresh_hz = 31.25;
  r.meter_error_rate = 0.03125;
  r.response_mean_ms = 18.5;
  r.frames_composed = 123;
  r.content_frames = 90;
  r.frames_posted = 118;
  r.rate_switches = 11;
  r.final_frame_hash = 0xdeadbeefcafef00dULL;
  r.has_ab = true;
  r.saved_power_pct = 27.5;
  r.quality_pct = 96.875;
  r.residency = {{20, 0.5}, {40, 1.0}, {60, 0.5}};
  return r;
}

std::vector<Record> sample_records() {
  CountersRecord c;
  c.counters = {{"flinger.frames", 123}, {"meter.evals", 20}};
  SpansRecord sp;
  sp.spans = {
      obs::Span{sim::Time{100}, sim::Duration{16}, 1, 2048,
                obs::Phase::kCompose},
      obs::Span{sim::Time{116}, sim::Duration{0}, 1, 60,
                obs::Phase::kPanelPresent},
  };
  return {Record{sample_result()}, Record{sp}, Record{c},
          Record{AggregateRecord{std::string("opaque\x00\x01\x02", 9)}}};
}

TEST(BinFormat, PayloadScalarsRoundTrip) {
  std::string buf;
  PayloadWriter w(buf);
  w.put_u8(0xab);
  w.put_u32(0x01020304u);
  w.put_u64(0x1122334455667788ULL);
  w.put_i64(-5);
  w.put_f64(-0.1);
  w.put_str("hello");
  w.put_str("");

  PayloadReader r(buf);
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u32(), 0x01020304u);
  EXPECT_EQ(r.get_u64(), 0x1122334455667788ULL);
  EXPECT_EQ(r.get_i64(), -5);
  EXPECT_EQ(r.get_f64(), -0.1);  // bit-exact
  EXPECT_EQ(r.get_str(), "hello");
  EXPECT_EQ(r.get_str(), "");
  EXPECT_TRUE(r.done());
}

TEST(BinFormat, PayloadReaderLatchesFirstError) {
  std::string buf;
  PayloadWriter w(buf);
  w.put_u32(7);
  PayloadReader r(buf);
  EXPECT_EQ(r.get_u32(), 7u);
  EXPECT_EQ(r.get_u64(), 0u);  // truncated
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("truncated u64"), std::string::npos);
  EXPECT_NE(r.error().find("offset 4"), std::string::npos);
  // Later reads keep the first error and return zero values.
  EXPECT_EQ(r.get_str(), "");
  EXPECT_NE(r.error().find("u64"), std::string::npos);
  EXPECT_FALSE(r.done());
}

TEST(BinFormat, PayloadReaderEnforcesCaps) {
  std::string buf;
  PayloadWriter w(buf);
  w.put_u32(kMaxStringBytes + 1);
  PayloadReader r(buf);
  (void)r.get_str();
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("exceeds cap"), std::string::npos);

  std::string buf2;
  PayloadWriter w2(buf2);
  w2.put_u32(kMaxElementCount + 1);
  PayloadReader r2(buf2);
  (void)r2.get_count();
  EXPECT_FALSE(r2.ok());
  EXPECT_NE(r2.error().find("exceeds cap"), std::string::npos);
}

TEST(BinFormat, EveryRecordTypeRoundTrips) {
  const std::vector<Record> records = sample_records();
  const std::string bytes = encode_all(records);

  std::string error;
  const auto decoded = decode_all(bytes, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  // decode_all returns the payload records plus the end marker.
  ASSERT_EQ(decoded->size(), records.size() + 1);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*decoded)[i], records[i]) << "record " << i;
  }
  EXPECT_EQ(record_type(decoded->back()), RecordType::kShardEnd);
}

TEST(BinFormat, ReencodeIsByteIdentical) {
  const std::string bytes = encode_all(sample_records());
  std::string error;
  const auto decoded = decode_all(bytes, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(encode_all(*decoded), bytes);
}

TEST(BinFormat, WriterTracksCountsAndBytes) {
  std::ostringstream os(std::ios::binary);
  BinWriter w(os);
  w.write(Record{sample_result()});
  w.write(Record{CountersRecord{}});
  w.write_end();
  EXPECT_EQ(w.results_written(), 1u);
  EXPECT_EQ(w.records_written(), 2u);
  EXPECT_EQ(w.bytes_written(), os.str().size());
}

TEST(BinFormat, RejectsBadMagicAndVersion) {
  std::string bytes = encode_all(sample_records());
  {
    std::string bad = bytes;
    bad[0] = 'X';
    std::string error;
    EXPECT_FALSE(decode_all(bad, &error).has_value());
    EXPECT_NE(error.find("bad magic"), std::string::npos);
  }
  {
    std::string bad = bytes;
    bad[8] = 99;  // version little-endian low byte
    std::string error;
    EXPECT_FALSE(decode_all(bad, &error).has_value());
    EXPECT_NE(error.find("unsupported version"), std::string::npos);
  }
}

TEST(BinFormat, TruncationIsDetectedAtEveryLength) {
  const std::string bytes = encode_all(sample_records());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::string error;
    const auto decoded = decode_all(bytes.substr(0, len), &error);
    EXPECT_FALSE(decoded.has_value()) << "prefix length " << len;
    EXPECT_FALSE(error.empty()) << "prefix length " << len;
  }
}

TEST(BinFormat, ChecksumCatchesSingleByteFlips) {
  const std::string bytes = encode_all(sample_records());
  // Flip each byte after the file header; decode must fail every time
  // (structurally or via the end-marker checksum).
  for (std::size_t pos = 16; pos < bytes.size(); ++pos) {
    std::string bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x01);
    std::string error;
    const auto decoded = decode_all(bad, &error);
    EXPECT_FALSE(decoded.has_value()) << "flip at byte " << pos;
  }
}

TEST(BinFormat, TrailingDataAfterEndIsRejected) {
  std::string bytes = encode_all(sample_records());
  bytes.push_back('\x01');
  std::string error;
  EXPECT_FALSE(decode_all(bytes, &error).has_value());
  EXPECT_NE(error.find("trailing data"), std::string::npos);
}

TEST(BinFormat, ErrorsCarryByteOffsets) {
  const std::string bytes = encode_all(sample_records());
  std::string error;
  (void)decode_all(bytes.substr(0, bytes.size() - 3), &error);
  EXPECT_NE(error.find("at byte"), std::string::npos) << error;
}

TEST(BinFormat, StreamingReaderReportsProgress) {
  const std::string bytes = encode_all(sample_records());
  std::istringstream is(bytes, std::ios::binary);
  BinReader reader(is);
  std::size_t n = 0;
  while (auto rec = reader.next()) ++n;
  EXPECT_TRUE(reader.ok()) << reader.error();
  EXPECT_TRUE(reader.complete());
  EXPECT_EQ(n, sample_records().size() + 1);
  EXPECT_EQ(reader.results_seen(), 1u);
  EXPECT_EQ(reader.offset(), bytes.size());
}

TEST(BinFormat, FnvFoldsAcrossCalls) {
  const std::string data = "campaign";
  const std::uint64_t whole = fnv1a(data);
  const std::uint64_t split = fnv1a(data.substr(4), fnv1a(data.substr(0, 4)));
  EXPECT_EQ(whole, split);
}

}  // namespace
}  // namespace ccdem::campaign
