#include "harness/fleet.h"

#include <gtest/gtest.h>

#include "apps/app_profiles.h"

namespace ccdem::harness {
namespace {

ExperimentConfig cfg(const char* app, ControlMode mode, std::uint64_t seed) {
  ExperimentConfig c;
  c.app = apps::app_by_name(app);
  c.duration = sim::seconds(5);
  c.seed = seed;
  c.mode = mode;
  return c;
}

TEST(Fleet, EmptyInput) {
  FleetRunner fleet;
  EXPECT_TRUE(fleet.run({}).empty());
  EXPECT_EQ(fleet.stats().runs_completed, 0u);
}

TEST(Fleet, SingleConfig) {
  FleetRunner fleet;
  const auto results =
      fleet.run({cfg("Facebook", ControlMode::kBaseline60, 1)});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].app_name, "Facebook");
  EXPECT_EQ(fleet.stats().runs_completed, 1u);
  EXPECT_EQ(fleet.stats().workers, 1u);
}

TEST(Fleet, ResultsMatchSerialExactly) {
  std::vector<ExperimentConfig> configs = {
      cfg("Facebook", ControlMode::kBaseline60, 1),
      cfg("Facebook", ControlMode::kSectionWithBoost, 1),
      cfg("Jelly Splash", ControlMode::kSection, 2),
      cfg("MX Player", ControlMode::kSectionWithBoost, 3),
      cfg("Tiny Flashlight", ControlMode::kNaive, 4),
      cfg("Cookie Run", ControlMode::kSectionWithBoost, 5),
  };
  FleetRunner fleet(4);
  const auto parallel = fleet.run(configs);
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto serial = run_experiment(configs[i]);
    EXPECT_EQ(parallel[i].app_name, serial.app_name);
    EXPECT_DOUBLE_EQ(parallel[i].mean_power_mw, serial.mean_power_mw);
    EXPECT_EQ(parallel[i].frames_composed, serial.frames_composed);
    EXPECT_EQ(parallel[i].content_frames, serial.content_frames);
    EXPECT_DOUBLE_EQ(parallel[i].mean_refresh_hz, serial.mean_refresh_hz);
  }
  EXPECT_EQ(fleet.stats().runs_completed, configs.size());
}

TEST(Fleet, ResultsKeepInputOrder) {
  std::vector<ExperimentConfig> configs;
  const char* names[] = {"Facebook", "Jelly Splash", "MX Player", "Naver"};
  for (const char* n : names) {
    configs.push_back(cfg(n, ControlMode::kBaseline60, 7));
  }
  FleetRunner fleet(3);
  const auto results = fleet.run(configs);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(results[i].app_name, names[i]);
  }
}

TEST(Fleet, SingleThreadWorks) {
  FleetRunner fleet(1);
  const auto results = fleet.run({cfg("Facebook", ControlMode::kSection, 1),
                                  cfg("Naver", ControlMode::kSection, 2)});
  EXPECT_EQ(results.size(), 2u);
  EXPECT_GT(results[1].mean_power_mw, 0.0);
  EXPECT_EQ(fleet.stats().workers, 1u);
}

// A single worker serving several runs must recycle its device's buffers:
// the second run's swapchain, surface and meter storage all come from the
// pool the first run released into.
TEST(Fleet, ReusesBuffersAcrossRuns) {
  FleetRunner fleet(1);
  (void)fleet.run({cfg("Facebook", ControlMode::kSectionWithBoost, 1),
                   cfg("Facebook", ControlMode::kSectionWithBoost, 2),
                   cfg("Naver", ControlMode::kSectionWithBoost, 3)});
  const FleetStats& s = fleet.stats();
  EXPECT_EQ(s.runs_completed, 3u);
  EXPECT_GT(s.frames_composed, 0u);
  EXPECT_GT(s.buffer_acquires, 0u);
  EXPECT_GT(s.buffer_reuses, 0u);
  EXPECT_EQ(s.buffer_allocations, s.buffer_acquires - s.buffer_reuses);
  // Runs 2 and 3 re-acquire the same set of buffers run 1 allocated, so at
  // most one run's worth of storage is ever freshly allocated.
  EXPECT_LE(s.buffer_allocations, s.buffer_acquires / 3 + 1);
}

}  // namespace
}  // namespace ccdem::harness
