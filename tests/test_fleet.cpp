#include "harness/fleet.h"

#include <gtest/gtest.h>

#include "apps/app_profiles.h"

namespace ccdem::harness {
namespace {

ExperimentConfig cfg(const char* app, ControlMode mode, std::uint64_t seed) {
  ExperimentConfig c;
  c.app = apps::app_by_name(app);
  c.duration = sim::seconds(5);
  c.seed = seed;
  c.mode = mode;
  return c;
}

TEST(Fleet, EmptyInput) {
  FleetRunner fleet;
  EXPECT_TRUE(fleet.run({}).empty());
  EXPECT_EQ(fleet.stats().runs_completed, 0u);
}

TEST(Fleet, SingleConfig) {
  FleetRunner fleet;
  const auto results =
      fleet.run({cfg("Facebook", ControlMode::kBaseline60, 1)});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].app_name, "Facebook");
  EXPECT_EQ(fleet.stats().runs_completed, 1u);
  EXPECT_EQ(fleet.stats().workers, 1u);
}

TEST(Fleet, ResultsMatchSerialExactly) {
  std::vector<ExperimentConfig> configs = {
      cfg("Facebook", ControlMode::kBaseline60, 1),
      cfg("Facebook", ControlMode::kSectionWithBoost, 1),
      cfg("Jelly Splash", ControlMode::kSection, 2),
      cfg("MX Player", ControlMode::kSectionWithBoost, 3),
      cfg("Tiny Flashlight", ControlMode::kNaive, 4),
      cfg("Cookie Run", ControlMode::kSectionWithBoost, 5),
  };
  FleetRunner fleet(4);
  const auto parallel = fleet.run(configs);
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto serial = run_experiment(configs[i]);
    EXPECT_EQ(parallel[i].app_name, serial.app_name);
    EXPECT_DOUBLE_EQ(parallel[i].mean_power_mw, serial.mean_power_mw);
    EXPECT_EQ(parallel[i].frames_composed, serial.frames_composed);
    EXPECT_EQ(parallel[i].content_frames, serial.content_frames);
    EXPECT_DOUBLE_EQ(parallel[i].mean_refresh_hz, serial.mean_refresh_hz);
  }
  EXPECT_EQ(fleet.stats().runs_completed, configs.size());
}

TEST(Fleet, ResultsKeepInputOrder) {
  std::vector<ExperimentConfig> configs;
  const char* names[] = {"Facebook", "Jelly Splash", "MX Player", "Naver"};
  for (const char* n : names) {
    configs.push_back(cfg(n, ControlMode::kBaseline60, 7));
  }
  FleetRunner fleet(3);
  const auto results = fleet.run(configs);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(results[i].app_name, names[i]);
  }
}

TEST(Fleet, SingleThreadWorks) {
  FleetRunner fleet(1);
  const auto results = fleet.run({cfg("Facebook", ControlMode::kSection, 1),
                                  cfg("Naver", ControlMode::kSection, 2)});
  EXPECT_EQ(results.size(), 2u);
  EXPECT_GT(results[1].mean_power_mw, 0.0);
  EXPECT_EQ(fleet.stats().workers, 1u);
}

// A single worker serving several runs must recycle its device's buffers:
// the second run's swapchain, surface and meter storage all come from the
// pool the first run released into.
TEST(Fleet, ReusesBuffersAcrossRuns) {
  FleetRunner fleet(1);
  (void)fleet.run({cfg("Facebook", ControlMode::kSectionWithBoost, 1),
                   cfg("Facebook", ControlMode::kSectionWithBoost, 2),
                   cfg("Naver", ControlMode::kSectionWithBoost, 3)});
  const FleetStats& s = fleet.stats();
  EXPECT_EQ(s.runs_completed, 3u);
  EXPECT_GT(s.frames_composed, 0u);
  EXPECT_GT(s.buffer_acquires, 0u);
  EXPECT_GT(s.buffer_reuses, 0u);
  EXPECT_EQ(s.buffer_allocations, s.buffer_acquires - s.buffer_reuses);
  // Runs 2 and 3 re-acquire the same set of buffers run 1 allocated, so at
  // most one run's worth of storage is ever freshly allocated.
  EXPECT_LE(s.buffer_allocations, s.buffer_acquires / 3 + 1);
}

// --- degenerate fleet shapes ----------------------------------------------
// A fleet run must be bit-identical to serial whatever the thread/config
// ratio; these pin the edges (zero configs, more threads than configs, one
// thread) with full frame-stream hashing on.

ExperimentConfig hashed_cfg(const char* app, ControlMode mode,
                            std::uint64_t seed) {
  ExperimentConfig c = cfg(app, mode, seed);
  c.duration = sim::seconds(2);
  c.hash_frames = true;
  return c;
}

void expect_bit_identical(const ExperimentResult& a,
                          const ExperimentResult& b) {
  EXPECT_EQ(a.app_name, b.app_name);
  EXPECT_EQ(a.mean_power_mw, b.mean_power_mw);  // exact, not approximate
  EXPECT_EQ(a.mean_refresh_hz, b.mean_refresh_hz);
  EXPECT_EQ(a.meter_error_rate, b.meter_error_rate);
  EXPECT_EQ(a.frames_composed, b.frames_composed);
  EXPECT_EQ(a.content_frames, b.content_frames);
  EXPECT_EQ(a.frames_posted, b.frames_posted);
  EXPECT_EQ(a.rate_switches, b.rate_switches);
  EXPECT_EQ(a.final_frame_hash, b.final_frame_hash);
  EXPECT_EQ(a.frame_stream_hash, b.frame_stream_hash);
}

TEST(Fleet, ZeroScenariosResetsStats) {
  FleetRunner fleet(2);
  (void)fleet.run({cfg("Facebook", ControlMode::kBaseline60, 1)});
  EXPECT_EQ(fleet.stats().runs_completed, 1u);

  EXPECT_TRUE(fleet.run({}).empty());
  const FleetStats& s = fleet.stats();
  EXPECT_EQ(s.workers, 0u);
  EXPECT_EQ(s.runs_completed, 0u);
  EXPECT_EQ(s.frames_composed, 0u);
  EXPECT_EQ(s.buffer_acquires, 0u);
  EXPECT_EQ(s.counters.counter_count(), 0u);
}

TEST(Fleet, MoreThreadsThanConfigsBitIdenticalToSerial) {
  const std::vector<ExperimentConfig> configs = {
      hashed_cfg("Facebook", ControlMode::kSectionWithBoost, 11),
      hashed_cfg("Naver", ControlMode::kSection, 12),
  };
  FleetRunner fleet(16);
  const auto results = fleet.run(configs);
  ASSERT_EQ(results.size(), configs.size());
  EXPECT_EQ(fleet.stats().workers, 2u);  // capped at the config count
  for (std::size_t i = 0; i < configs.size(); ++i) {
    expect_bit_identical(results[i], run_experiment(configs[i]));
  }
}

TEST(Fleet, SingleThreadDegeneratesToSerial) {
  const std::vector<ExperimentConfig> configs = {
      hashed_cfg("Facebook", ControlMode::kSectionWithBoost, 21),
      hashed_cfg("Jelly Splash", ControlMode::kNaive, 22),
      hashed_cfg("MX Player", ControlMode::kSection, 23),
  };
  FleetRunner fleet(1);
  const auto results = fleet.run(configs);
  ASSERT_EQ(results.size(), configs.size());
  EXPECT_EQ(fleet.stats().workers, 1u);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    expect_bit_identical(results[i], run_experiment(configs[i]));
  }
}

}  // namespace
}  // namespace ccdem::harness
