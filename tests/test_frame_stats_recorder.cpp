#include "metrics/frame_stats_recorder.h"

#include <gtest/gtest.h>

namespace ccdem::metrics {
namespace {

gfx::FrameInfo frame_at(sim::Tick t, bool content) {
  gfx::FrameInfo info;
  info.composed_at = sim::Time{t};
  info.content_changed = content;
  return info;
}

TEST(FrameStatsRecorder, CountsTotals) {
  FrameStatsRecorder r;
  gfx::Framebuffer fb(1, 1);
  r.on_frame(frame_at(0, true), fb);
  r.on_frame(frame_at(10'000, false), fb);
  r.on_frame(frame_at(20'000, true), fb);
  EXPECT_EQ(r.total_frames(), 3u);
  EXPECT_EQ(r.total_content_frames(), 2u);
  EXPECT_EQ(r.total_redundant_frames(), 1u);
}

TEST(FrameStatsRecorder, PerSecondRates) {
  FrameStatsRecorder r;
  gfx::Framebuffer fb(1, 1);
  // 30 frames in second 0 (10 with content), 10 frames in second 1.
  for (int i = 0; i < 30; ++i) {
    r.on_frame(frame_at(i * 33'000, i % 3 == 0), fb);
  }
  for (int i = 0; i < 10; ++i) {
    r.on_frame(frame_at(1'000'000 + i * 100'000, true), fb);
  }
  r.finish(sim::Time{2'000'000});
  ASSERT_EQ(r.frame_rate().size(), 2u);
  EXPECT_DOUBLE_EQ(r.frame_rate().points()[0].value, 30.0);
  EXPECT_DOUBLE_EQ(r.content_rate().points()[0].value, 10.0);
  EXPECT_DOUBLE_EQ(r.frame_rate().points()[1].value, 10.0);
  EXPECT_DOUBLE_EQ(r.content_rate().points()[1].value, 10.0);
}

TEST(FrameStatsRecorder, SilentSecondsAreZero) {
  FrameStatsRecorder r;
  gfx::Framebuffer fb(1, 1);
  r.on_frame(frame_at(100'000, true), fb);
  // Next frame three seconds later.
  r.on_frame(frame_at(3'100'000, true), fb);
  r.finish(sim::Time{4'000'000});
  ASSERT_GE(r.frame_rate().size(), 3u);
  EXPECT_DOUBLE_EQ(r.frame_rate().points()[1].value, 0.0);
  EXPECT_DOUBLE_EQ(r.frame_rate().points()[2].value, 0.0);
}

TEST(FrameStatsRecorder, FinishScalesPartialBucket) {
  FrameStatsRecorder r;
  gfx::Framebuffer fb(1, 1);
  // 5 frames within the first 500 ms, run ends at 500 ms -> 10 fps.
  for (int i = 0; i < 5; ++i) {
    r.on_frame(frame_at(i * 100'000, true), fb);
  }
  r.finish(sim::Time{500'000});
  ASSERT_EQ(r.frame_rate().size(), 1u);
  EXPECT_DOUBLE_EQ(r.frame_rate().points()[0].value, 10.0);
}

TEST(FrameStatsRecorder, EmptyRunProducesNoTrace) {
  FrameStatsRecorder r;
  r.finish(sim::Time{5'000'000});
  EXPECT_TRUE(r.frame_rate().empty());
}

TEST(FrameStatsRecorder, CustomBucketSize) {
  FrameStatsRecorder r(sim::milliseconds(500));
  gfx::Framebuffer fb(1, 1);
  for (int i = 0; i < 10; ++i) {
    r.on_frame(frame_at(i * 100'000, true), fb);  // 10 fps for 1 s
  }
  r.finish(sim::Time{1'000'000});
  ASSERT_EQ(r.frame_rate().size(), 2u);
  // 5 frames per 0.5 s bucket -> 10 fps.
  EXPECT_DOUBLE_EQ(r.frame_rate().points()[0].value, 10.0);
}

}  // namespace
}  // namespace ccdem::metrics
