// Golden-master trace tests.
//
// Each checked-in config runs with the observability layer attached and its
// serialized trace (the CSV format: span stream + counter snapshot) is
// compared byte-for-byte against tests/golden/<config>.trace.  Any change to
// the simulation's event ordering, the metering math, the controller's
// decisions or the exporter's formatting shows up as a golden diff.
//
// Updating the goldens after an INTENTIONAL behaviour change:
//
//     CCDEM_UPDATE_GOLDEN=1 ./build/tests/test_golden_traces
//
// then review the diff of tests/golden/*.trace like any other code change.
//
// The runs override the configs' duration to kGoldenSeconds so the suite
// stays fast; everything else comes from the config file.  Span recording
// must be compiled in (CCDEM_OBS_SPANS=1, the default) for the byte
// comparison -- a spans-off build skips the golden diff but still checks
// counter determinism.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/config_io.h"
#include "harness/experiment.h"
#include "harness/fleet.h"
#include "obs/obs.h"
#include "obs/trace_export.h"

using namespace ccdem;

namespace {

constexpr int kGoldenSeconds = 10;

const char* const kConfigs[] = {
    "facebook_section_only",
    "jelly_splash",
};

std::string repo_path(const std::string& rel) {
  return std::string(CCDEM_REPO_DIR) + "/" + rel;
}

harness::ExperimentConfig load_config(const std::string& name) {
  std::ifstream file(repo_path("configs/" + name + ".conf"));
  EXPECT_TRUE(file.good()) << "missing config " << name;
  std::string error;
  auto config = harness::parse_experiment_config(file, &error);
  EXPECT_TRUE(config.has_value()) << error;
  config->duration = sim::seconds(kGoldenSeconds);
  return *config;
}

/// Runs `config` with a fresh sink and serializes the full trace.
std::string run_and_serialize(harness::ExperimentConfig config) {
  obs::ObsSink sink;
  config.obs = &sink;
  (void)harness::run_experiment(config);
  return obs::trace_csv_to_string(sink.spans.spans(),
                                  sink.counters.snapshot());
}

bool updating_goldens() {
  const char* env = std::getenv("CCDEM_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class GoldenTraces : public ::testing::TestWithParam<const char*> {};

}  // namespace

TEST_P(GoldenTraces, TraceMatchesGolden) {
  if (!obs::SpanRecorder::compiled_in()) {
    GTEST_SKIP() << "goldens cover the spans-on build";
  }
  const std::string name = GetParam();
  const std::string trace = run_and_serialize(load_config(name));
  const std::string golden_path = repo_path("tests/golden/" + name + ".trace");

  if (updating_goldens()) {
    // Write-then-rename so a parallel or interrupted update can never leave
    // a torn golden behind; the rename is atomic on POSIX filesystems.
    const std::string tmp_path =
        golden_path + ".tmp." + std::to_string(::getpid());
    {
      std::ofstream out(tmp_path);
      ASSERT_TRUE(out.good()) << "cannot write " << tmp_path;
      out << trace;
    }
    std::error_code ec;
    std::filesystem::rename(tmp_path, golden_path, ec);
    ASSERT_FALSE(ec) << "cannot move " << tmp_path << " over " << golden_path
                     << ": " << ec.message();
    std::cout << "[updated] " << golden_path << "\n";
    return;
  }

  const std::string golden = read_file(golden_path);
  ASSERT_FALSE(golden.empty())
      << golden_path
      << " missing; regenerate with CCDEM_UPDATE_GOLDEN=1 (see file header)";
  if (trace != golden) {
    // Byte-precise failure location beats dumping two ~100 KB blobs.
    std::size_t line = 1, col = 1, i = 0;
    while (i < trace.size() && i < golden.size() && trace[i] == golden[i]) {
      if (trace[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
    FAIL() << name << " trace diverges from golden at line " << line
           << ", column " << col << " (got "
           << (i < trace.size() ? "'" + trace.substr(i, 20) + "'" : "EOF")
           << ", want "
           << (i < golden.size() ? "'" + golden.substr(i, 20) + "'" : "EOF")
           << "); if intentional, regenerate with CCDEM_UPDATE_GOLDEN=1";
  }
}

TEST_P(GoldenTraces, TraceIsDeterministic) {
  const harness::ExperimentConfig config = load_config(GetParam());
  EXPECT_EQ(run_and_serialize(config), run_and_serialize(config));
}

TEST_P(GoldenTraces, GoldenRoundTripsThroughParser) {
  if (!obs::SpanRecorder::compiled_in()) {
    GTEST_SKIP() << "goldens cover the spans-on build";
  }
  if (updating_goldens()) GTEST_SKIP() << "goldens being regenerated";
  const std::string name = GetParam();
  const std::string golden = read_file(repo_path("tests/golden/" + name +
                                                 ".trace"));
  ASSERT_FALSE(golden.empty());
  std::string error;
  const auto parsed = obs::parse_trace_csv(golden, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_FALSE(parsed->spans.empty());
  EXPECT_FALSE(parsed->counters.empty());
}

TEST_P(GoldenTraces, FleetRunProducesSameCounters) {
  // The same config through FleetRunner (multiple workers forced, even on a
  // single-core machine) must land on the identical counter totals; only
  // pool.* is fleet-specific (workers reuse devices).
  harness::ExperimentConfig config = load_config(GetParam());
  obs::ObsSink serial;
  serial.spans.set_enabled(false);
  {
    harness::ExperimentConfig c = config;
    c.obs = &serial;
    (void)harness::run_experiment(c);
  }
  harness::FleetRunner fleet(/*max_threads=*/2);
  (void)fleet.run({config});
  for (const auto& [name, value] : fleet.stats().counters.snapshot().counters) {
    if (name.rfind("pool.", 0) == 0) continue;
    EXPECT_EQ(value, serial.counters.value(name)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, GoldenTraces, ::testing::ValuesIn(kConfigs));
