#include "sim/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ccdem::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent1(7);
  Rng parent2(7);
  parent2.next_u64();  // consuming the parent must not change forks
  Rng f1 = parent1.fork(3);
  Rng f2 = parent2.fork(3);
  EXPECT_EQ(f1.next_u64(), f2.next_u64());
}

TEST(Rng, ForkStreamsAreDecorrelated) {
  Rng parent(7);
  Rng f1 = parent.fork(1);
  Rng f2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.next_u64() == f2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 10'000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5'000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 5000 draws
}

TEST(Rng, UniformIntSingleValue) {
  Rng r(12);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, UniformRealRespectsBounds) {
  Rng r(13);
  for (int i = 0; i < 1'000; ++i) {
    const double v = r.uniform(2.5, 7.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(14);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
  EXPECT_FALSE(r.chance(-1.0));
  EXPECT_TRUE(r.chance(2.0));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(15);
  int hits = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(16);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng r(17);
  double sum = 0.0, sq = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng r(18);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(r.uniform_int(0, 9))];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

}  // namespace
}  // namespace ccdem::sim
