// The row-span kernels of gfx/compare.h are the single implementation of
// blit clipping, region equality, and change scanning on the hot path; these
// tests pin them against brute-force per-pixel references.
#include "gfx/compare.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "gfx/framebuffer.h"
#include "sim/rng.h"

namespace ccdem::gfx {
namespace {

Framebuffer random_fb(int w, int h, sim::Rng& rng) {
  Framebuffer fb(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      fb.set(x, y,
             Rgb888::from_packed(static_cast<std::uint32_t>(rng.next_u64())));
    }
  }
  return fb;
}

Rect random_rect(sim::Rng& rng, int max_coord, int max_extent) {
  return Rect{static_cast<int>(rng.uniform_int(-max_extent, max_coord)),
              static_cast<int>(rng.uniform_int(-max_extent, max_coord)),
              static_cast<int>(rng.uniform_int(0, max_extent)),
              static_cast<int>(rng.uniform_int(0, max_extent))};
}

TEST(ClipCopy, MatchesManualClipOnRandomRects) {
  sim::Rng rng(7);
  const Rect src_bounds{0, 0, 50, 40};
  const Rect dst_bounds{0, 0, 37, 61};
  for (int trial = 0; trial < 2000; ++trial) {
    const Rect src_rect = random_rect(rng, 60, 30);
    const Point dst{static_cast<int>(rng.uniform_int(-20, 60)),
                    static_cast<int>(rng.uniform_int(-20, 60))};
    const kernels::CopyWindow w =
        kernels::clip_copy(src_rect, src_bounds, dst, dst_bounds);
    // Reference: a (src, dst) pixel pair is copied iff the source pixel is
    // inside both the request and the source buffer, and its destination
    // lands inside the destination buffer.
    std::int64_t expected = 0;
    for (int y = src_rect.y; y < src_rect.bottom(); ++y) {
      for (int x = src_rect.x; x < src_rect.right(); ++x) {
        const Point d{dst.x + (x - src_rect.x), dst.y + (y - src_rect.y)};
        if (src_bounds.contains(Point{x, y}) && dst_bounds.contains(d)) {
          ++expected;
          ASSERT_FALSE(w.empty());
          const Rect src_win{w.src.x, w.src.y, w.size.width, w.size.height};
          const Rect dst_win{w.dst.x, w.dst.y, w.size.width, w.size.height};
          ASSERT_TRUE(src_win.contains(Point{x, y}));
          ASSERT_TRUE(dst_win.contains(d));
        }
      }
    }
    ASSERT_EQ(w.size.area(), expected) << "trial " << trial;
    if (!w.empty()) {
      // The window's src->dst offset must match the request's offset.
      ASSERT_EQ(w.dst.x - w.src.x, dst.x - src_rect.x);
      ASSERT_EQ(w.dst.y - w.src.y, dst.y - src_rect.y);
    }
  }
}

TEST(RowsEqual, DetectsEveryPixelPosition) {
  sim::Rng rng(11);
  const Framebuffer a = random_fb(33, 17, rng);
  Framebuffer b = a;
  const Rect r{5, 3, 20, 10};
  ASSERT_TRUE(
      kernels::rows_equal(a.pixels().data(), b.pixels().data(), a.width(), r));
  for (int trial = 0; trial < 200; ++trial) {
    const int x = static_cast<int>(rng.uniform_int(0, 32));
    const int y = static_cast<int>(rng.uniform_int(0, 16));
    Framebuffer c = a;
    c.set(x, y, Rgb888{1, 2, 3} == a.at(x, y) ? Rgb888{4, 5, 6}
                                              : Rgb888{1, 2, 3});
    const bool inside = r.contains(Point{x, y});
    ASSERT_EQ(kernels::rows_equal(a.pixels().data(), c.pixels().data(),
                                  a.width(), r),
              !inside)
        << "pixel (" << x << ", " << y << ")";
  }
}

TEST(RowsEqualOffset, MatchesTranslatedWindow) {
  sim::Rng rng(13);
  const Framebuffer big = random_fb(60, 50, rng);
  // Carve a window out of `big` into a smaller buffer, then compare the
  // small buffer against its source position (equal) and a shifted one.
  Framebuffer small(20, 15);
  small.blit(big, Rect{7, 9, 20, 15}, Point{0, 0});
  EXPECT_TRUE(kernels::rows_equal_offset(
      small.pixels().data(), small.width(), Rect{0, 0, 20, 15},
      big.pixels().data(), big.width(), Point{7, 9}));
  EXPECT_FALSE(kernels::rows_equal_offset(
      small.pixels().data(), small.width(), Rect{0, 0, 20, 15},
      big.pixels().data(), big.width(), Point{8, 9}));
  // Sub-rect of the window against the matching sub-position.
  EXPECT_TRUE(kernels::rows_equal_offset(
      small.pixels().data(), small.width(), Rect{4, 2, 10, 8},
      big.pixels().data(), big.width(), Point{11, 11}));
}

TEST(FirstDiff, FindsRowMajorFirstDifference) {
  sim::Rng rng(17);
  const Framebuffer a = random_fb(40, 30, rng);
  const Rect r{3, 2, 30, 25};
  Framebuffer b = a;
  EXPECT_FALSE(
      kernels::first_diff(a.pixels().data(), b.pixels().data(), a.width(), r)
          .found);
  // Two differences; the row-major earlier one must win.
  b.set(20, 10, Rgb888{9, 9, 9});
  b.set(5, 10, Rgb888{9, 9, 9});
  b.set(30, 20, Rgb888{9, 9, 9});
  const kernels::FirstDiff d =
      kernels::first_diff(a.pixels().data(), b.pixels().data(), a.width(), r);
  ASSERT_TRUE(d.found);
  EXPECT_EQ(d.at, (Point{5, 10}));
}

TEST(Gather, PullsScatteredIndices) {
  sim::Rng rng(19);
  const Framebuffer fb = random_fb(25, 25, rng);
  std::vector<std::size_t> idx;
  for (int trial = 0; trial < 64; ++trial) {
    idx.push_back(static_cast<std::size_t>(rng.uniform_int(0, 25 * 25 - 1)));
  }
  std::vector<Rgb888> out(idx.size());
  kernels::gather(fb.pixels(), idx, out.data());
  for (std::size_t k = 0; k < idx.size(); ++k) {
    EXPECT_EQ(out[k], fb.pixels()[idx[k]]);
  }
}

// ---------------------------------------------------------------------------
// Kernel-variant differential harness.
//
// Every dispatched table (SSE2, AVX2, and whatever a future port adds) must
// be byte-identical to the scalar reference.  The geometry sweep is chosen
// to hit every tail-handling path of a 16/32-byte-chunk kernel: widths 0-65
// pixels (= 0-195 bytes, crossing both vector widths several times),
// unaligned start offsets, odd strides that differ between the two buffers,
// and planted single-byte differences at the first, middle, and last pixel
// of a span -- in each of the three colour channels.
// ---------------------------------------------------------------------------

std::vector<Rgb888> random_pixels(std::size_t n, sim::Rng& rng) {
  std::vector<Rgb888> px(n);
  for (Rgb888& p : px) {
    p = Rgb888::from_packed(static_cast<std::uint32_t>(rng.next_u64()));
  }
  return px;
}

/// Flips one channel of one pixel; returns a restorer-friendly old value.
Rgb888 plant_diff(std::vector<Rgb888>& px, std::size_t at, int channel) {
  const Rgb888 old = px[at];
  Rgb888 changed = old;
  auto* bytes = reinterpret_cast<std::uint8_t*>(&changed);
  bytes[channel] = static_cast<std::uint8_t>(bytes[channel] ^ 0x80);
  px[at] = changed;
  return old;
}

TEST(KernelVariants, ScalarIsAlwaysAvailableAndLookupsWork) {
  const auto& variants = kernels::available_kernels();
  ASSERT_FALSE(variants.empty());
  EXPECT_STREQ(variants.front()->name, "scalar");
  EXPECT_EQ(kernels::find_kernels("scalar"), &kernels::scalar_kernels());
  EXPECT_EQ(kernels::find_kernels("not-a-kernel"), nullptr);
  // The active table is one of the available ones.
  bool found = false;
  for (const kernels::KernelOps* ops : variants) {
    if (ops == &kernels::active_kernels()) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(KernelVariants, ScopedOverrideSwapsAndRestores) {
  const kernels::KernelOps* before = &kernels::active_kernels();
  {
    kernels::ScopedKernelOverride force(kernels::scalar_kernels());
    EXPECT_EQ(&kernels::active_kernels(), &kernels::scalar_kernels());
  }
  EXPECT_EQ(&kernels::active_kernels(), before);
}

TEST(KernelVariants, RowsEqualAndFirstDiffMatchScalarExhaustively) {
  sim::Rng rng(29);
  const int stride = 71;  // odd on purpose: no span starts vector-aligned
  const int rows = 6;
  const std::vector<Rgb888> a =
      random_pixels(static_cast<std::size_t>(stride) * rows, rng);
  std::vector<Rgb888> b = a;

  for (const kernels::KernelOps* ops : kernels::available_kernels()) {
    SCOPED_TRACE(ops->name);
    for (int w = 0; w <= 65; ++w) {
      for (int x0 : {0, 1, 2, 3, 5}) {
        if (x0 + w > stride) continue;
        const Rect r{x0, 1, w, rows - 2};
        ASSERT_TRUE(ops->rows_equal(a.data(), b.data(), stride, r));
        ASSERT_FALSE(ops->first_diff(a.data(), b.data(), stride, r).found);
        if (w == 0) continue;
        // Plant a one-byte diff at the first, middle, and last pixel of the
        // middle row of the span, in every channel.
        const int y = r.y + r.height / 2;
        for (const int dx : {0, w / 2, w - 1}) {
          for (int channel = 0; channel < 3; ++channel) {
            const std::size_t at =
                static_cast<std::size_t>(y) * stride + x0 + dx;
            const Rgb888 old = plant_diff(b, at, channel);
            ASSERT_FALSE(ops->rows_equal(a.data(), b.data(), stride, r))
                << "w=" << w << " x0=" << x0 << " dx=" << dx;
            const kernels::FirstDiff got =
                ops->first_diff(a.data(), b.data(), stride, r);
            const kernels::FirstDiff want =
                kernels::scalar::first_diff(a.data(), b.data(), stride, r);
            ASSERT_TRUE(got.found);
            ASSERT_EQ(got.at, want.at) << "w=" << w << " x0=" << x0;
            b[at] = old;
          }
        }
      }
    }
  }
}

TEST(KernelVariants, RowsEqualOffsetMatchesScalarAcrossOddStrides) {
  sim::Rng rng(31);
  const int a_stride = 71, b_stride = 67, rows = 8;
  const std::vector<Rgb888> big =
      random_pixels(static_cast<std::size_t>(a_stride) * rows, rng);
  // Build `small` as a copy of a window of `big`, with its own odd stride.
  std::vector<Rgb888> small(static_cast<std::size_t>(b_stride) * rows);
  sim::Rng fill_rng(37);
  for (Rgb888& p : small) {
    p = Rgb888::from_packed(static_cast<std::uint32_t>(fill_rng.next_u64()));
  }
  const Point origin{3, 2};
  for (int w = 0; w <= 65; ++w) {
    for (int x0 : {0, 1, 3}) {
      if (x0 + w > b_stride || origin.x + w > a_stride) continue;
      const Rect win{x0, 1, w, rows - 3};
      for (int row = 0; row < win.height; ++row) {
        for (int col = 0; col < w; ++col) {
          small[static_cast<std::size_t>(win.y + row) * b_stride + x0 + col] =
              big[static_cast<std::size_t>(origin.y + row) * a_stride +
                  origin.x + col];
        }
      }
      for (const kernels::KernelOps* ops : kernels::available_kernels()) {
        SCOPED_TRACE(ops->name);
        ASSERT_TRUE(ops->rows_equal_offset(small.data(), b_stride, win,
                                           big.data(), a_stride, origin))
            << "w=" << w << " x0=" << x0;
        if (w == 0) continue;
        const std::size_t at =
            static_cast<std::size_t>(win.y) * b_stride + x0 + w - 1;
        const Rgb888 old = plant_diff(small, at, 2);
        ASSERT_FALSE(ops->rows_equal_offset(small.data(), b_stride, win,
                                            big.data(), a_stride, origin))
            << "w=" << w << " x0=" << x0;
        small[at] = old;
      }
    }
  }
}

TEST(KernelVariants, CopyRowsMatchesScalarByteForByte) {
  sim::Rng rng(41);
  const int src_stride = 69, dst_stride = 73, rows = 8;
  const std::vector<Rgb888> src =
      random_pixels(static_cast<std::size_t>(src_stride) * rows, rng);
  const std::vector<Rgb888> canvas =
      random_pixels(static_cast<std::size_t>(dst_stride) * rows, rng);

  for (const kernels::KernelOps* ops : kernels::available_kernels()) {
    SCOPED_TRACE(ops->name);
    for (int w = 0; w <= 65; ++w) {
      for (int x0 : {0, 1, 2, 5}) {
        if (x0 + w > src_stride || x0 + 1 + w > dst_stride) continue;
        const kernels::CopyWindow win{Point{x0, 1}, Point{x0 + 1, 2},
                                      Size{w, rows - 3}};
        std::vector<Rgb888> got = canvas;
        std::vector<Rgb888> want = canvas;
        ops->copy_rows(got.data(), dst_stride, src.data(), src_stride, win);
        kernels::scalar::copy_rows(want.data(), dst_stride, src.data(),
                                   src_stride, win);
        ASSERT_EQ(std::memcmp(got.data(), want.data(),
                              got.size() * sizeof(Rgb888)),
                  0)
            << "w=" << w << " x0=" << x0;
      }
    }
  }
}

TEST(KernelVariants, CopyRowsStreamingSpansMatchScalar) {
  // Wide rows take the SIMD kernels' non-temporal store path (spans past
  // ~2 KiB stream around the cache).  Sweep widths across that threshold
  // with every destination misalignment the head-fixup must handle, and
  // verify bytes outside the window are untouched.
  sim::Rng rng(47);
  const int src_stride = 1400, dst_stride = 1411, rows = 6;
  const std::vector<Rgb888> src =
      random_pixels(static_cast<std::size_t>(src_stride) * rows, rng);
  const std::vector<Rgb888> canvas =
      random_pixels(static_cast<std::size_t>(dst_stride) * rows, rng);

  for (const kernels::KernelOps* ops : kernels::available_kernels()) {
    SCOPED_TRACE(ops->name);
    for (int w : {640, 682, 683, 684, 700, 1365, 1366, 1389}) {
      for (int x0 : {0, 1, 2, 3, 7, 11, 16, 21}) {
        if (x0 + w > src_stride || x0 + 1 + w > dst_stride) continue;
        const kernels::CopyWindow win{Point{x0, 1}, Point{x0 + 1, 2},
                                      Size{w, rows - 3}};
        std::vector<Rgb888> got = canvas;
        std::vector<Rgb888> want = canvas;
        ops->copy_rows(got.data(), dst_stride, src.data(), src_stride, win);
        kernels::scalar::copy_rows(want.data(), dst_stride, src.data(),
                                   src_stride, win);
        ASSERT_EQ(std::memcmp(got.data(), want.data(),
                              got.size() * sizeof(Rgb888)),
                  0)
            << "w=" << w << " x0=" << x0;
      }
    }
  }
}

TEST(KernelVariants, GatherMatchesScalarIncludingLastPixel) {
  sim::Rng rng(43);
  const std::size_t n = 25 * 25;
  const std::vector<Rgb888> px = random_pixels(n, rng);
  std::vector<std::size_t> idx;
  for (int k = 0; k < 200; ++k) {
    idx.push_back(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
  }
  // The very last pixel is the overread trap: a 4-byte wide copy of a 3-byte
  // pixel would read one byte past the buffer (ASan runs this test too).
  idx.push_back(n - 1);
  for (const kernels::KernelOps* ops : kernels::available_kernels()) {
    SCOPED_TRACE(ops->name);
    std::vector<Rgb888> got(idx.size());
    std::vector<Rgb888> want(idx.size());
    ops->gather(px.data(), idx.data(), idx.size(), got.data());
    kernels::scalar::gather(px.data(), idx.data(), idx.size(), want.data());
    ASSERT_EQ(got, want);
  }
}

TEST(FramebufferBlit, StillClipsLikeTheReference) {
  // Framebuffer::blit now routes through clip_copy/copy_rows; pin the
  // clipped behaviour on awkward windows (negative dst, oversized src).
  sim::Rng rng(23);
  const Framebuffer src = random_fb(30, 20, rng);
  for (int trial = 0; trial < 500; ++trial) {
    Framebuffer dst(25, 25, colors::kGray);
    Framebuffer ref = dst;
    const Rect src_rect = random_rect(rng, 35, 25);
    const Point at{static_cast<int>(rng.uniform_int(-10, 30)),
                   static_cast<int>(rng.uniform_int(-10, 30))};
    dst.blit(src, src_rect, at);
    for (int y = src_rect.y; y < src_rect.bottom(); ++y) {
      for (int x = src_rect.x; x < src_rect.right(); ++x) {
        if (x < 0 || y < 0 || x >= src.width() || y >= src.height()) continue;
        const Point d{at.x + (x - src_rect.x), at.y + (y - src_rect.y)};
        if (d.x < 0 || d.y < 0 || d.x >= ref.width() || d.y >= ref.height()) {
          continue;
        }
        ref.set(d.x, d.y, src.at(x, y));
      }
    }
    ASSERT_TRUE(dst.equals(ref)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace ccdem::gfx
