// The row-span kernels of gfx/compare.h are the single implementation of
// blit clipping, region equality, and change scanning on the hot path; these
// tests pin them against brute-force per-pixel references.
#include "gfx/compare.h"

#include <gtest/gtest.h>

#include "gfx/framebuffer.h"
#include "sim/rng.h"

namespace ccdem::gfx {
namespace {

Framebuffer random_fb(int w, int h, sim::Rng& rng) {
  Framebuffer fb(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      fb.set(x, y,
             Rgb888::from_packed(static_cast<std::uint32_t>(rng.next_u64())));
    }
  }
  return fb;
}

Rect random_rect(sim::Rng& rng, int max_coord, int max_extent) {
  return Rect{static_cast<int>(rng.uniform_int(-max_extent, max_coord)),
              static_cast<int>(rng.uniform_int(-max_extent, max_coord)),
              static_cast<int>(rng.uniform_int(0, max_extent)),
              static_cast<int>(rng.uniform_int(0, max_extent))};
}

TEST(ClipCopy, MatchesManualClipOnRandomRects) {
  sim::Rng rng(7);
  const Rect src_bounds{0, 0, 50, 40};
  const Rect dst_bounds{0, 0, 37, 61};
  for (int trial = 0; trial < 2000; ++trial) {
    const Rect src_rect = random_rect(rng, 60, 30);
    const Point dst{static_cast<int>(rng.uniform_int(-20, 60)),
                    static_cast<int>(rng.uniform_int(-20, 60))};
    const kernels::CopyWindow w =
        kernels::clip_copy(src_rect, src_bounds, dst, dst_bounds);
    // Reference: a (src, dst) pixel pair is copied iff the source pixel is
    // inside both the request and the source buffer, and its destination
    // lands inside the destination buffer.
    std::int64_t expected = 0;
    for (int y = src_rect.y; y < src_rect.bottom(); ++y) {
      for (int x = src_rect.x; x < src_rect.right(); ++x) {
        const Point d{dst.x + (x - src_rect.x), dst.y + (y - src_rect.y)};
        if (src_bounds.contains(Point{x, y}) && dst_bounds.contains(d)) {
          ++expected;
          ASSERT_FALSE(w.empty());
          const Rect src_win{w.src.x, w.src.y, w.size.width, w.size.height};
          const Rect dst_win{w.dst.x, w.dst.y, w.size.width, w.size.height};
          ASSERT_TRUE(src_win.contains(Point{x, y}));
          ASSERT_TRUE(dst_win.contains(d));
        }
      }
    }
    ASSERT_EQ(w.size.area(), expected) << "trial " << trial;
    if (!w.empty()) {
      // The window's src->dst offset must match the request's offset.
      ASSERT_EQ(w.dst.x - w.src.x, dst.x - src_rect.x);
      ASSERT_EQ(w.dst.y - w.src.y, dst.y - src_rect.y);
    }
  }
}

TEST(RowsEqual, DetectsEveryPixelPosition) {
  sim::Rng rng(11);
  const Framebuffer a = random_fb(33, 17, rng);
  Framebuffer b = a;
  const Rect r{5, 3, 20, 10};
  ASSERT_TRUE(
      kernels::rows_equal(a.pixels().data(), b.pixels().data(), a.width(), r));
  for (int trial = 0; trial < 200; ++trial) {
    const int x = static_cast<int>(rng.uniform_int(0, 32));
    const int y = static_cast<int>(rng.uniform_int(0, 16));
    Framebuffer c = a;
    c.set(x, y, Rgb888{1, 2, 3} == a.at(x, y) ? Rgb888{4, 5, 6}
                                              : Rgb888{1, 2, 3});
    const bool inside = r.contains(Point{x, y});
    ASSERT_EQ(kernels::rows_equal(a.pixels().data(), c.pixels().data(),
                                  a.width(), r),
              !inside)
        << "pixel (" << x << ", " << y << ")";
  }
}

TEST(RowsEqualOffset, MatchesTranslatedWindow) {
  sim::Rng rng(13);
  const Framebuffer big = random_fb(60, 50, rng);
  // Carve a window out of `big` into a smaller buffer, then compare the
  // small buffer against its source position (equal) and a shifted one.
  Framebuffer small(20, 15);
  small.blit(big, Rect{7, 9, 20, 15}, Point{0, 0});
  EXPECT_TRUE(kernels::rows_equal_offset(
      small.pixels().data(), small.width(), Rect{0, 0, 20, 15},
      big.pixels().data(), big.width(), Point{7, 9}));
  EXPECT_FALSE(kernels::rows_equal_offset(
      small.pixels().data(), small.width(), Rect{0, 0, 20, 15},
      big.pixels().data(), big.width(), Point{8, 9}));
  // Sub-rect of the window against the matching sub-position.
  EXPECT_TRUE(kernels::rows_equal_offset(
      small.pixels().data(), small.width(), Rect{4, 2, 10, 8},
      big.pixels().data(), big.width(), Point{11, 11}));
}

TEST(FirstDiff, FindsRowMajorFirstDifference) {
  sim::Rng rng(17);
  const Framebuffer a = random_fb(40, 30, rng);
  const Rect r{3, 2, 30, 25};
  Framebuffer b = a;
  EXPECT_FALSE(
      kernels::first_diff(a.pixels().data(), b.pixels().data(), a.width(), r)
          .found);
  // Two differences; the row-major earlier one must win.
  b.set(20, 10, Rgb888{9, 9, 9});
  b.set(5, 10, Rgb888{9, 9, 9});
  b.set(30, 20, Rgb888{9, 9, 9});
  const kernels::FirstDiff d =
      kernels::first_diff(a.pixels().data(), b.pixels().data(), a.width(), r);
  ASSERT_TRUE(d.found);
  EXPECT_EQ(d.at, (Point{5, 10}));
}

TEST(Gather, PullsScatteredIndices) {
  sim::Rng rng(19);
  const Framebuffer fb = random_fb(25, 25, rng);
  std::vector<std::size_t> idx;
  for (int trial = 0; trial < 64; ++trial) {
    idx.push_back(static_cast<std::size_t>(rng.uniform_int(0, 25 * 25 - 1)));
  }
  std::vector<Rgb888> out(idx.size());
  kernels::gather(fb.pixels(), idx, out.data());
  for (std::size_t k = 0; k < idx.size(); ++k) {
    EXPECT_EQ(out[k], fb.pixels()[idx[k]]);
  }
}

TEST(FramebufferBlit, StillClipsLikeTheReference) {
  // Framebuffer::blit now routes through clip_copy/copy_rows; pin the
  // clipped behaviour on awkward windows (negative dst, oversized src).
  sim::Rng rng(23);
  const Framebuffer src = random_fb(30, 20, rng);
  for (int trial = 0; trial < 500; ++trial) {
    Framebuffer dst(25, 25, colors::kGray);
    Framebuffer ref = dst;
    const Rect src_rect = random_rect(rng, 35, 25);
    const Point at{static_cast<int>(rng.uniform_int(-10, 30)),
                   static_cast<int>(rng.uniform_int(-10, 30))};
    dst.blit(src, src_rect, at);
    for (int y = src_rect.y; y < src_rect.bottom(); ++y) {
      for (int x = src_rect.x; x < src_rect.right(); ++x) {
        if (x < 0 || y < 0 || x >= src.width() || y >= src.height()) continue;
        const Point d{at.x + (x - src_rect.x), at.y + (y - src_rect.y)};
        if (d.x < 0 || d.y < 0 || d.x >= ref.width() || d.y >= ref.height()) {
          continue;
        }
        ref.set(d.x, d.y, src.at(x, y));
      }
    }
    ASSERT_TRUE(dst.equals(ref)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace ccdem::gfx
