// Mutation smoke: with -DCCDEM_CANARY_BUG=ON the damage-cull path drops the
// rightmost pixel column of every damage rect, and the DST harness must
// (a) catch the divergence from the unculled reference and (b) minimize it
// to a small, replayable .repro.  In a normal build this whole file skips.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "apps/scene_dsl.h"
#include "check/dst.h"
#include "check/oracles.h"
#include "test_tmpdir.h"

namespace ccdem::check {
namespace {

#if !defined(CCDEM_CANARY_BUG)

TEST(DstCanary, SkippedInNormalBuilds) {
  GTEST_SKIP() << "canary disarmed; configure with -DCCDEM_CANARY_BUG=ON";
}

#else

// The live wallpaper pins the canary: its animation damages many small
// scattered rects, and on a sparse grid a single sample under a rect's
// rightmost column regularly decides the frame's classification.  This
// scenario (mirrored in tests/corpus/wallpaper_2k_canary_sentinel.repro)
// diverges from the unculled reference within the first 200 ms.
Scenario canary_scenario() {
  Scenario s;
  s.app = "Nexus Revampled";
  s.mode = device::ControlMode::kSection;
  s.grid = "2k";
  s.duration_ms = 800;
  s.seed = 11;
  return s;
}

TEST(DstCanary, UnculledOracleCatchesTheBug) {
  const CheckReport r = check_scenario(canary_scenario());
  ASSERT_FALSE(r.ok()) << "canary build but every oracle passed";
}

TEST(DstCanary, MinimizesToASmallReplayableRepro) {
  // Only the oracle that actually catches the bug runs during shrinking;
  // this keeps each predicate call to two experiment replays.
  CheckOptions unculled_only;
  unculled_only.oracle_determinism = false;
  unculled_only.oracle_spans_off = false;
  unculled_only.oracle_fleet = false;
  unculled_only.oracle_reference = false;
  unculled_only.invariants = false;
  unculled_only.quality_arm = false;

  const Scenario start = canary_scenario();
  const FailurePredicate predicate = make_failure_predicate(unculled_only);
  ASSERT_TRUE(predicate(start)) << "unculled oracle alone misses the canary";

  const MinimizeResult m = minimize_scenario(start, predicate);
  ASSERT_FALSE(m.failure.empty());
  const RunArtifacts replay =
      run_scenario_once(m.scenario.experiment_config());
  EXPECT_LT(replay.result.frames_composed, 50)
      << "minimized repro is not small";

  // The written .repro must parse back and still fail.
  testing::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const std::filesystem::path file = tmp.file("canary.repro");
  {
    std::ofstream os(file);
    os << repro_to_string(m.scenario, {m.failure});
  }
  std::ifstream in(file);
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  const auto parsed = parse_scenario(text.str(), &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(*parsed, m.scenario);
  EXPECT_TRUE(predicate(*parsed));
}

// The ladder canary: under system pressure the planted bug makes
// DegradationLadderStage jump straight to the target rung instead of
// stepping one rung per evaluation.  Thermal or brownout episodes carry
// severity 2, so the first shed from rung 0 skips rung 1 -- an I7
// violation.  Jitter alone (severity 1) never exposes it, which is what
// lets the minimizer isolate a guilty episode class.
Scenario ladder_canary_scenario() {
  Scenario s;
  s.app = "Facebook";
  s.mode = device::ControlMode::kSectionWithBoost;
  s.duration_ms = 4000;
  s.seed = 7;
  s.pressure_scale = 4.0;
  s.pressure_classes.thermal = true;
  s.pressure_classes.brownout = true;
  s.pressure_classes.jitter = true;
  return s;
}

/// I7/I8 run alone during ladder-canary shrinking: one replay per
/// predicate call, and the cull canary (also armed in this build) cannot
/// steal the failure.
CheckOptions invariants_only() {
  CheckOptions o;
  o.oracle_determinism = false;
  o.oracle_unculled = false;
  o.oracle_spans_off = false;
  o.oracle_fleet = false;
  o.oracle_kernel = false;
  o.oracle_tile_memo = false;
  o.oracle_reference = false;
  o.quality_arm = false;
  o.pressure_recovery_arm = false;
  return o;
}

TEST(DstCanary, LadderRungSkipCaughtByI7) {
  const CheckReport r = check_scenario(ladder_canary_scenario(),
                                       invariants_only());
  ASSERT_FALSE(r.ok()) << "canary build but the ladder invariants passed";
  bool i7 = false;
  for (const std::string& f : r.failures) {
    if (f.rfind("I7 ladder:", 0) == 0) i7 = true;
  }
  EXPECT_TRUE(i7) << "expected an I7 failure, got:\n" << r.to_string();
}

TEST(DstCanary, LadderCanaryMinimizesToOneEpisodeClass) {
  const Scenario start = ladder_canary_scenario();
  const FailurePredicate predicate =
      make_failure_predicate(invariants_only());
  ASSERT_TRUE(predicate(start)) << "invariants alone miss the ladder canary";

  const MinimizeResult m = minimize_scenario(start, predicate);
  ASSERT_FALSE(m.failure.empty());
  EXPECT_GT(m.scenario.pressure_scale, 0.0);
  const auto& pc = m.scenario.pressure_classes;
  const int classes = (pc.thermal ? 1 : 0) + (pc.brownout ? 1 : 0) +
                      (pc.jitter ? 1 : 0);
  EXPECT_EQ(classes, 1) << "minimizer kept more than the guilty class";
  EXPECT_FALSE(pc.jitter) << "jitter (severity 1) cannot skip a rung";

  // The written .repro must parse back and still fail.
  testing::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const std::filesystem::path file = tmp.file("ladder_canary.repro");
  {
    std::ofstream os(file);
    os << repro_to_string(m.scenario, {m.failure});
  }
  std::ifstream in(file);
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  const auto parsed = parse_scenario(text.str(), &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(*parsed, m.scenario);
  EXPECT_TRUE(predicate(*parsed));
}

// The UI-scene canary: dialog entries are seeded from a process-global
// session counter (apps/ui_scene.cpp), so the same scenario paints
// different dialog overlays on consecutive executions -- exactly what the
// determinism oracle exists to catch.  The scene arrives as an explicit
// DSL override on a non-scene app, so dropping the override makes the
// failure vanish and the minimizer must keep (and shrink) the state graph.
Scenario ui_scene_canary_scenario() {
  Scenario s;
  s.app = "Facebook";
  s.mode = device::ControlMode::kSectionWithBoost;
  s.duration_ms = 4000;
  s.seed = 5;
  s.scene =
      "schema = ccdem-scene-v1\n"
      "type = ui\n"
      "idle_timeout_ms = 0\n"
      "marquee_px = 6\n"
      "state = idle dwell_ms=300 fps=2 next=1 touch=-1\n"
      "state = menu dwell_ms=300 fps=6 next=2 touch=-1\n"
      "state = scroll dwell_ms=300 fps=12 next=3 touch=-1\n"
      "state = slide dwell_ms=300 fps=12 next=4 touch=-1\n"
      "state = dialog dwell_ms=400 fps=8 next=5 touch=-1\n"
      "state = marquee dwell_ms=400 fps=12 next=0 touch=-1\n";
  return s;
}

/// The determinism oracle runs alone while shrinking the UI canary: two
/// replays per predicate call, and the cull canary (also armed in this
/// build, but identical across replays) cannot steal the failure.
CheckOptions determinism_only() {
  CheckOptions o;
  o.oracle_unculled = false;
  o.oracle_spans_off = false;
  o.oracle_fleet = false;
  o.oracle_kernel = false;
  o.oracle_tile_memo = false;
  o.oracle_reference = false;
  o.invariants = false;
  o.quality_arm = false;
  o.pressure_recovery_arm = false;
  return o;
}

TEST(DstCanary, UiDialogLeakCaughtByDeterminism) {
  const CheckReport r =
      check_scenario(ui_scene_canary_scenario(), determinism_only());
  ASSERT_FALSE(r.ok()) << "canary build but the determinism oracle passed";
}

TEST(DstCanary, UiCanaryMinimizesToATinyStateGraph) {
  const Scenario start = ui_scene_canary_scenario();
  const FailurePredicate predicate =
      make_failure_predicate(determinism_only());
  ASSERT_TRUE(predicate(start)) << "determinism alone misses the UI canary";

  const MinimizeResult m = minimize_scenario(start, predicate);
  ASSERT_FALSE(m.failure.empty());
  // The scene override is load-bearing (Facebook's own scene is clean), and
  // the state graph must have shrunk to little more than the dialog state.
  ASSERT_FALSE(m.scenario.scene.empty()) << "minimizer dropped the scene";
  const auto spec = apps::scene_spec_from_string(m.scenario.scene);
  ASSERT_TRUE(spec);
  ASSERT_EQ(spec->type, apps::SceneSpec::Type::kUi);
  EXPECT_LE(spec->ui.states.size(), 3u)
      << "state graph did not shrink:\n" << m.scenario.scene;
  bool has_dialog = false;
  for (const auto& st : spec->ui.states) {
    has_dialog |= st.kind == apps::UiState::Kind::kDialog;
  }
  EXPECT_TRUE(has_dialog) << "the guilty dialog state was dropped";

  // The written .repro must parse back and still fail.
  testing::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const std::filesystem::path file = tmp.file("ui_canary.repro");
  {
    std::ofstream os(file);
    os << repro_to_string(m.scenario, {m.failure});
  }
  std::ifstream in(file);
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  const auto parsed = parse_scenario(text.str(), &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(*parsed, m.scenario);
  EXPECT_TRUE(predicate(*parsed));
}

#endif  // CCDEM_CANARY_BUG

}  // namespace
}  // namespace ccdem::check
