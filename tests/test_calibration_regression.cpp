// Calibration regression bands.
//
// The reproduction's headline numbers (EXPERIMENTS.md) depend on the power
// model constants, app profiles and Monkey density.  These tests pin them
// in generous bands around the paper's reported values so an innocent
// refactor cannot silently drift the reproduction out of its envelope.
// Short fixed-seed runs -> fast and deterministic.
#include <gtest/gtest.h>

#include "apps/app_profiles.h"
#include "harness/experiment.h"

namespace ccdem::harness {
namespace {

AbResult ab(const char* app, ControlMode mode, int seconds) {
  ExperimentConfig c;
  c.app = apps::app_by_name(app);
  c.duration = sim::seconds(seconds);
  c.seed = 6;
  c.mode = mode;
  return run_ab(c);
}

TEST(CalibrationRegression, JellySplashSectionSavings) {
  // Paper (reconstructed): ~500 mW.  Band: 350-600.
  const AbResult r = ab("Jelly Splash", ControlMode::kSection, 25);
  EXPECT_GT(r.saved_power_mw, 350.0);
  EXPECT_LT(r.saved_power_mw, 600.0);
}

TEST(CalibrationRegression, JellySplashBoostSavings) {
  // Paper: ~330 mW.  Band: 200-500.
  const AbResult r = ab("Jelly Splash", ControlMode::kSectionWithBoost, 25);
  EXPECT_GT(r.saved_power_mw, 200.0);
  EXPECT_LT(r.saved_power_mw, 500.0);
}

TEST(CalibrationRegression, FacebookSavings) {
  // Paper: ~135-150 mW.  Band: 80-250.
  const AbResult r = ab("Facebook", ControlMode::kSectionWithBoost, 25);
  EXPECT_GT(r.saved_power_mw, 80.0);
  EXPECT_LT(r.saved_power_mw, 250.0);
}

TEST(CalibrationRegression, BaselinePowersAreGalaxyS3Scale) {
  // A 2012 phone at 50 % brightness: idle-ish apps ~0.9-1.1 W, heavy games
  // ~1.3-1.7 W.
  const AbResult fb = ab("Facebook", ControlMode::kSection, 10);
  EXPECT_GT(fb.baseline.mean_power_mw, 800.0);
  EXPECT_LT(fb.baseline.mean_power_mw, 1200.0);
  const AbResult js = ab("Jelly Splash", ControlMode::kSection, 10);
  EXPECT_GT(js.baseline.mean_power_mw, 1200.0);
  EXPECT_LT(js.baseline.mean_power_mw, 1800.0);
}

TEST(CalibrationRegression, QualityWithBoostStaysHigh) {
  // Paper: > 90 % for all apps with boosting.
  for (const char* app : {"Facebook", "Jelly Splash", "Daum Maps",
                          "Cookie Run"}) {
    const AbResult r = ab(app, ControlMode::kSectionWithBoost, 20);
    EXPECT_GT(r.quality.display_quality_pct, 90.0) << app;
  }
}

TEST(CalibrationRegression, SectionOnlyQualityGapForGeneralApps) {
  // Table 1's qualitative core: general apps lose noticeable quality under
  // section-only control (paper 74 %) and recover with boost (paper 96 %).
  const AbResult section = ab("Facebook", ControlMode::kSection, 25);
  const AbResult boost = ab("Facebook", ControlMode::kSectionWithBoost, 25);
  EXPECT_LT(section.quality.display_quality_pct, 95.0);
  EXPECT_GT(boost.quality.display_quality_pct, 95.0);
}

TEST(CalibrationRegression, SavedPercentagesInTableOneBand) {
  // Paper Table 1 saved-power percentages are 13-28 %; allow 8-35 %.
  for (const char* app : {"Facebook", "Jelly Splash"}) {
    const AbResult r = ab(app, ControlMode::kSection, 20);
    EXPECT_GT(r.saved_power_pct, 8.0) << app;
    EXPECT_LT(r.saved_power_pct, 35.0) << app;
  }
}

}  // namespace
}  // namespace ccdem::harness
