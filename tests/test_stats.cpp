#include "metrics/stats.h"

#include <gtest/gtest.h>

namespace ccdem::metrics {
namespace {

TEST(StreamingStats, Empty) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(StreamingStats, MeanAndStddev) {
  StreamingStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, NegativeValues) {
  StreamingStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(Percentile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, SingleValue) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);
}

TEST(Percentile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Percentile, ExtremesClampToMinMax) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 9.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 9.0}, 100.0), 9.0);
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 9.0}, 150.0), 9.0);
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 9.0}, -10.0), 1.0);
}

TEST(Percentile, EightiethOfTenValues) {
  std::vector<double> v;
  for (int i = 1; i <= 10; ++i) v.push_back(static_cast<double>(i));
  EXPECT_NEAR(value_at_80th(v), 8.2, 1e-9);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({9.0, 2.0, 7.0, 4.0, 1.0}, 50.0), 4.0);
}

}  // namespace
}  // namespace ccdem::metrics
