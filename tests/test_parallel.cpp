#include "harness/parallel.h"

#include <gtest/gtest.h>

#include "apps/app_profiles.h"

namespace ccdem::harness {
namespace {

ExperimentConfig cfg(const char* app, ControlMode mode, std::uint64_t seed) {
  ExperimentConfig c;
  c.app = apps::app_by_name(app);
  c.duration = sim::seconds(5);
  c.seed = seed;
  c.mode = mode;
  return c;
}

TEST(Parallel, EmptyInput) {
  EXPECT_TRUE(run_experiments_parallel({}).empty());
}

TEST(Parallel, SingleConfig) {
  const auto results = run_experiments_parallel(
      {cfg("Facebook", ControlMode::kBaseline60, 1)});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].app_name, "Facebook");
}

TEST(Parallel, ResultsMatchSerialExactly) {
  std::vector<ExperimentConfig> configs = {
      cfg("Facebook", ControlMode::kBaseline60, 1),
      cfg("Facebook", ControlMode::kSectionWithBoost, 1),
      cfg("Jelly Splash", ControlMode::kSection, 2),
      cfg("MX Player", ControlMode::kSectionWithBoost, 3),
      cfg("Tiny Flashlight", ControlMode::kNaive, 4),
      cfg("Cookie Run", ControlMode::kSectionWithBoost, 5),
  };
  const auto parallel = run_experiments_parallel(configs, 4);
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto serial = run_experiment(configs[i]);
    EXPECT_EQ(parallel[i].app_name, serial.app_name);
    EXPECT_DOUBLE_EQ(parallel[i].mean_power_mw, serial.mean_power_mw);
    EXPECT_EQ(parallel[i].frames_composed, serial.frames_composed);
    EXPECT_EQ(parallel[i].content_frames, serial.content_frames);
    EXPECT_DOUBLE_EQ(parallel[i].mean_refresh_hz, serial.mean_refresh_hz);
  }
}

TEST(Parallel, ResultsKeepInputOrder) {
  std::vector<ExperimentConfig> configs;
  const char* names[] = {"Facebook", "Jelly Splash", "MX Player", "Naver"};
  for (const char* n : names) {
    configs.push_back(cfg(n, ControlMode::kBaseline60, 7));
  }
  const auto results = run_experiments_parallel(configs, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(results[i].app_name, names[i]);
  }
}

TEST(Parallel, SingleThreadWorks) {
  const auto results = run_experiments_parallel(
      {cfg("Facebook", ControlMode::kSection, 1),
       cfg("Naver", ControlMode::kSection, 2)},
      1);
  EXPECT_EQ(results.size(), 2u);
  EXPECT_GT(results[1].mean_power_mw, 0.0);
}

}  // namespace
}  // namespace ccdem::harness
