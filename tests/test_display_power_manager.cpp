#include "core/display_power_manager.h"

#include <gtest/gtest.h>

#include <memory>

#include "display/display_panel.h"
#include "gfx/surface_flinger.h"
#include "sim/simulator.h"

namespace ccdem::core {
namespace {

constexpr gfx::Size kScreen{100, 100};

/// A vsync-driven pixel toggler: posts a frame on every vsync and changes a
/// sampled pixel at `content_fps`.
class TogglerApp final : public display::VsyncObserver {
 public:
  TogglerApp(gfx::Surface* s, double content_fps)
      : surface_(s), content_fps_(content_fps) {}

  void on_vsync(sim::Time t, int) override {
    gfx::Canvas& c = surface_->begin_frame();
    const auto version = static_cast<std::int64_t>(t.seconds() * content_fps_);
    if (version != last_version_) {
      last_version_ = version;
      toggle_ = !toggle_;
      c.fill_rect(gfx::Rect{0, 0, 20, 20},
                  toggle_ ? gfx::colors::kRed : gfx::colors::kBlue);
    }
    surface_->post_frame();
  }

  void set_content_fps(double fps) { content_fps_ = fps; }

 private:
  gfx::Surface* surface_;
  double content_fps_;
  std::int64_t last_version_ = -1;
  bool toggle_ = false;
};

class ComposerHook final : public display::VsyncObserver {
 public:
  explicit ComposerHook(gfx::SurfaceFlinger& f) : f_(f) {}
  void on_vsync(sim::Time t, int) override { f_.on_vsync(t); }

 private:
  gfx::SurfaceFlinger& f_;
};

struct Rig {
  sim::Simulator sim;
  gfx::SurfaceFlinger flinger{kScreen};
  display::DisplayPanel panel{sim, display::RefreshRateSet::galaxy_s3(), 60};
  gfx::Surface* surface =
      flinger.create_surface("app", gfx::Rect::of(kScreen), 0);
  std::unique_ptr<TogglerApp> app;
  std::unique_ptr<ComposerHook> composer;
  std::unique_ptr<DisplayPowerManager> dpm;

  explicit Rig(double content_fps, DpmConfig config = {},
               PipelineSpec spec = {{StageId::kSection, StageId::kBoost}}) {
    config.meter.grid = GridSpec{10, 10};
    app = std::make_unique<TogglerApp>(surface, content_fps);
    composer = std::make_unique<ComposerHook>(flinger);
    panel.add_observer(display::VsyncPhase::kApp, app.get());
    panel.add_observer(display::VsyncPhase::kComposer, composer.get());
    dpm = std::make_unique<DisplayPowerManager>(
        sim, panel, flinger, build_pipeline(spec, panel.rates(), config),
        nullptr, config);
  }
};

TEST(DisplayPowerManager, LowContentDropsRefreshToMinimum) {
  Rig rig(/*content_fps=*/5.0);
  rig.sim.run_for(sim::seconds(3));
  EXPECT_EQ(rig.panel.refresh_hz(), 20);
}

TEST(DisplayPowerManager, HighContentKeepsMaximum) {
  Rig rig(/*content_fps=*/55.0);
  rig.sim.run_for(sim::seconds(3));
  EXPECT_EQ(rig.panel.refresh_hz(), 60);
}

TEST(DisplayPowerManager, MidContentPicksMatchingSection) {
  Rig rig(/*content_fps=*/15.0);
  rig.sim.run_for(sim::seconds(3));
  // 15 fps falls in [10, 22) -> 24 Hz.
  EXPECT_EQ(rig.panel.refresh_hz(), 24);
}

TEST(DisplayPowerManager, RampsBackUpWhenContentRises) {
  Rig rig(/*content_fps=*/5.0);
  rig.sim.run_for(sim::seconds(3));
  ASSERT_EQ(rig.panel.refresh_hz(), 20);
  rig.app->set_content_fps(55.0);
  rig.sim.run_for(sim::seconds(4));
  EXPECT_EQ(rig.panel.refresh_hz(), 60);
}

TEST(DisplayPowerManager, TouchBoostForcesMaxImmediately) {
  Rig rig(/*content_fps=*/5.0);
  rig.sim.run_for(sim::seconds(3));
  ASSERT_EQ(rig.panel.refresh_hz(), 20);
  input::TouchEvent e{rig.sim.now(), {10, 10},
                      input::TouchEvent::Action::kDown};
  rig.dpm->on_touch(e);
  // The very next vsync applies the boost (<= one 20 Hz period away).
  rig.sim.run_for(sim::milliseconds(60));
  EXPECT_EQ(rig.panel.refresh_hz(), 60);
}

TEST(DisplayPowerManager, BoostDecaysAfterHold) {
  DpmConfig config;
  config.boost_hold = sim::milliseconds(500);
  Rig rig(/*content_fps=*/5.0, config);
  rig.sim.run_for(sim::seconds(3));
  input::TouchEvent e{rig.sim.now(), {10, 10},
                      input::TouchEvent::Action::kDown};
  rig.dpm->on_touch(e);
  rig.sim.run_for(sim::milliseconds(100));
  EXPECT_EQ(rig.panel.refresh_hz(), 60);
  rig.sim.run_for(sim::seconds(3));
  EXPECT_EQ(rig.panel.refresh_hz(), 20);  // back to the content-rate section
}

TEST(DisplayPowerManager, BoostDisabledIgnoresTouch) {
  // No boost stage in the pipeline = the legacy touch_boost=false gate.
  Rig rig(/*content_fps=*/5.0, DpmConfig{}, PipelineSpec{{StageId::kSection}});
  rig.sim.run_for(sim::seconds(3));
  input::TouchEvent e{rig.sim.now(), {10, 10},
                      input::TouchEvent::Action::kDown};
  rig.dpm->on_touch(e);
  rig.sim.run_for(sim::milliseconds(300));
  EXPECT_EQ(rig.panel.refresh_hz(), 20);
}

TEST(DisplayPowerManager, RecordsTraces) {
  Rig rig(/*content_fps=*/5.0);
  rig.sim.run_for(sim::seconds(2));
  EXPECT_FALSE(rig.dpm->content_rate_trace().empty());
  EXPECT_FALSE(rig.dpm->refresh_rate_trace().empty());
  // The refresh trace starts at the initial rate and ends at 20 Hz.
  EXPECT_DOUBLE_EQ(rig.dpm->refresh_rate_trace().points().front().value, 60.0);
  EXPECT_DOUBLE_EQ(rig.dpm->refresh_rate_trace().points().back().value, 20.0);
}

TEST(DisplayPowerManager, MeterSeesCappedContentRate) {
  // With the panel at 20 Hz, a 30 fps content source is observed at ~20 fps
  // (the V-Sync cap) -- but the section for 20 fps is 24 Hz, so the
  // controller climbs instead of sticking (unlike the naive policy).
  Rig rig(/*content_fps=*/5.0);
  rig.sim.run_for(sim::seconds(3));
  ASSERT_EQ(rig.panel.refresh_hz(), 20);
  rig.app->set_content_fps(30.0);
  rig.sim.run_for(sim::seconds(5));
  EXPECT_EQ(rig.panel.refresh_hz(), 40);  // 30 fps -> [27, 35) -> 40 Hz
}

TEST(DisplayPowerManager, MinHzFloorsTheController) {
  DpmConfig config;
  config.min_hz = 30;
  Rig rig(/*content_fps=*/5.0, config);
  rig.sim.run_for(sim::seconds(3));
  // 5 fps content maps to 20 Hz, but the floor holds at 30 Hz.
  EXPECT_EQ(rig.panel.refresh_hz(), 30);
}

TEST(DisplayPowerManager, MinHzIgnoredWhenUnsupported) {
  DpmConfig config;
  config.min_hz = 25;  // not a Galaxy S3 level
  Rig rig(/*content_fps=*/5.0, config);
  rig.sim.run_for(sim::seconds(3));
  EXPECT_EQ(rig.panel.refresh_hz(), 20);
}

TEST(DisplayPowerManager, BoostHzCapsTheBoost) {
  DpmConfig config;
  config.boost_hz = 30;
  Rig rig(/*content_fps=*/5.0, config);
  rig.sim.run_for(sim::seconds(3));
  ASSERT_EQ(rig.panel.refresh_hz(), 20);
  input::TouchEvent e{rig.sim.now(), {10, 10},
                      input::TouchEvent::Action::kDown};
  rig.dpm->on_touch(e);
  rig.sim.run_for(sim::milliseconds(120));
  EXPECT_EQ(rig.panel.refresh_hz(), 30);  // capped, not 60
}

TEST(DisplayPowerManager, BoostNeverLowersThePolicyChoice) {
  DpmConfig config;
  config.boost_hz = 24;
  Rig rig(/*content_fps=*/55.0, config);  // policy wants 60 Hz
  rig.sim.run_for(sim::seconds(3));
  ASSERT_EQ(rig.panel.refresh_hz(), 60);
  input::TouchEvent e{rig.sim.now(), {10, 10},
                      input::TouchEvent::Action::kDown};
  rig.dpm->on_touch(e);
  rig.sim.run_for(sim::milliseconds(400));
  // The evaluation keeps max(boost cap, policy) = 60.
  EXPECT_EQ(rig.panel.refresh_hz(), 60);
}

TEST(DisplayPowerManager, StopFreezesEvaluation) {
  Rig rig(/*content_fps=*/5.0);
  rig.sim.run_for(sim::seconds(3));
  rig.dpm->stop();
  const auto n = rig.dpm->content_rate_trace().size();
  rig.sim.run_for(sim::seconds(1));
  EXPECT_EQ(rig.dpm->content_rate_trace().size(), n);
}

}  // namespace
}  // namespace ccdem::core
