#include "core/grid_sampler.h"

#include <gtest/gtest.h>

namespace ccdem::core {
namespace {

constexpr gfx::Size kScreen{720, 1280};

TEST(GridSpec, PaperConfigurations) {
  EXPECT_EQ(GridSpec::grid_2k().sample_count(), 36 * 64);
  EXPECT_EQ(GridSpec::grid_4k().sample_count(), 48 * 85);
  EXPECT_EQ(GridSpec::grid_9k().sample_count(), 72 * 128);
  EXPECT_EQ(GridSpec::grid_36k().sample_count(), 144 * 256);
  EXPECT_EQ(GridSpec::full_720p().sample_count(), 921'600);
  EXPECT_EQ(GridSpec::figure6_sweep().size(), 5u);
}

TEST(GridSpec, Label) {
  EXPECT_EQ(GridSpec::grid_9k().label(), "9K (72x128)");
}

TEST(GridSampler, SampleCountMatchesGrid) {
  const GridSampler s(kScreen, GridSpec::grid_9k());
  EXPECT_EQ(s.sample_count(), 72u * 128u);
}

TEST(GridSampler, PointsInsideScreen) {
  const GridSampler s(kScreen, GridSpec::grid_2k());
  for (const auto& p : s.points()) {
    EXPECT_TRUE(gfx::Rect::of(kScreen).contains(p));
  }
}

TEST(GridSampler, FullResolutionSamplesEveryPixel) {
  const gfx::Size small{8, 8};
  const GridSampler s(small, GridSpec{8, 8});
  EXPECT_EQ(s.sample_count(), 64u);
  // Every pixel is its own cell; the centre is the pixel itself.
  EXPECT_EQ(s.points()[0], (gfx::Point{0, 0}));
  EXPECT_EQ(s.points()[63], (gfx::Point{7, 7}));
}

TEST(GridSampler, CellCentersAreCentered) {
  const gfx::Size screen{100, 100};
  const GridSampler s(screen, GridSpec{10, 10});
  // First cell spans [0, 10); its centre pixel is (5, 5).
  EXPECT_EQ(s.points()[0], (gfx::Point{5, 5}));
  // Last cell spans [90, 100); centre (95, 95).
  EXPECT_EQ(s.points().back(), (gfx::Point{95, 95}));
}

TEST(GridSampler, SampleExtractsPixels) {
  gfx::Framebuffer fb(100, 100, gfx::colors::kBlack);
  fb.set(5, 5, gfx::colors::kRed);
  const GridSampler s(fb.size(), GridSpec{10, 10});
  std::vector<gfx::Rgb888> out;
  s.sample(fb, out);
  ASSERT_EQ(out.size(), 100u);
  EXPECT_EQ(out[0], gfx::colors::kRed);
  EXPECT_EQ(out[1], gfx::colors::kBlack);
}

TEST(GridSampler, DiffersDetectsSampledChange) {
  gfx::Framebuffer fb(100, 100);
  const GridSampler s(fb.size(), GridSpec{10, 10});
  std::vector<gfx::Rgb888> prev;
  s.sample(fb, prev);
  EXPECT_FALSE(s.differs(fb, prev));
  fb.set(5, 5, gfx::colors::kRed);  // a sampled pixel
  EXPECT_TRUE(s.differs(fb, prev));
}

TEST(GridSampler, MissesChangeBetweenSamplePoints) {
  gfx::Framebuffer fb(100, 100);
  const GridSampler s(fb.size(), GridSpec{10, 10});
  std::vector<gfx::Rgb888> prev;
  s.sample(fb, prev);
  fb.set(0, 0, gfx::colors::kRed);  // (0,0) is not a sampled centre
  EXPECT_FALSE(s.differs(fb, prev));
}

TEST(GridSampler, DenseGridCatchesWhatSparseMisses) {
  gfx::Framebuffer fb(720, 1280);
  const GridSampler sparse(fb.size(), GridSpec::grid_2k());
  const GridSampler dense(fb.size(), GridSpec::full_720p());
  std::vector<gfx::Rgb888> prev_sparse, prev_dense;
  sparse.sample(fb, prev_sparse);
  dense.sample(fb, prev_dense);
  // A 3x3 blob positioned to dodge the sparse grid's 20x20 cells.
  fb.fill_rect(gfx::Rect{0, 0, 3, 3}, gfx::colors::kWhite);
  EXPECT_FALSE(sparse.differs(fb, prev_sparse));
  EXPECT_TRUE(dense.differs(fb, prev_dense));
}

}  // namespace
}  // namespace ccdem::core
