#include "core/self_refresh_controller.h"

#include <gtest/gtest.h>

#include "display/display_panel.h"
#include "sim/simulator.h"

namespace ccdem::core {
namespace {

constexpr gfx::Size kScreen{64, 64};

struct Rig {
  sim::Simulator sim;
  gfx::SurfaceFlinger flinger{kScreen};
  power::DevicePowerModel power{
      power::DevicePowerParams::galaxy_s3_with_psr_link(), 60};
  SelfRefreshController psr;
  gfx::Surface* surface =
      flinger.create_surface("app", gfx::Rect::of(kScreen), 0);

  explicit Rig(SelfRefreshConfig config = {})
      : psr(sim, flinger, power, config) {}

  void compose_frame() {
    gfx::Canvas& c = surface->begin_frame();
    toggle_ = !toggle_;
    c.fill_rect(gfx::Rect{0, 0, 8, 8},
                toggle_ ? gfx::colors::kRed : gfx::colors::kBlue);
    surface->post_frame();
    flinger.on_vsync(sim.now());
  }

  bool toggle_ = false;
};

TEST(SelfRefresh, EntersAfterIdleThreshold) {
  Rig rig;
  rig.compose_frame();
  EXPECT_FALSE(rig.psr.in_self_refresh());
  rig.sim.run_for(sim::seconds(3));
  EXPECT_TRUE(rig.psr.in_self_refresh());
  EXPECT_FALSE(rig.power.link_active());
  EXPECT_EQ(rig.psr.entries(), 1u);
}

TEST(SelfRefresh, StaysActiveWhileFramesFlow) {
  Rig rig;
  for (int i = 0; i < 20; ++i) {
    rig.compose_frame();
    rig.sim.run_for(sim::milliseconds(500));
  }
  EXPECT_FALSE(rig.psr.in_self_refresh());
  EXPECT_EQ(rig.psr.entries(), 0u);
}

TEST(SelfRefresh, FrameExitsImmediately) {
  Rig rig;
  rig.compose_frame();
  rig.sim.run_for(sim::seconds(3));
  ASSERT_TRUE(rig.psr.in_self_refresh());
  rig.compose_frame();
  EXPECT_FALSE(rig.psr.in_self_refresh());
  EXPECT_TRUE(rig.power.link_active());
}

TEST(SelfRefresh, AccumulatesResidencyTime) {
  Rig rig;
  rig.compose_frame();
  rig.sim.run_for(sim::seconds(10));
  const double resident =
      rig.psr.time_in_self_refresh(rig.sim.now()).seconds();
  // Enters ~2 s after the frame; ~8 s resident by t = 10 s.
  EXPECT_NEAR(resident, 8.0, 0.5);
}

TEST(SelfRefresh, LinkPowerActuallyDrops) {
  Rig rig;
  rig.compose_frame();
  const double active = rig.power.continuous_power_mw(60);
  rig.sim.run_for(sim::seconds(3));
  ASSERT_TRUE(rig.psr.in_self_refresh());
  EXPECT_NEAR(active - rig.power.continuous_power_mw(60), 60.0, 1e-9);
}

TEST(SelfRefresh, TransitionsCostEnergy) {
  SelfRefreshConfig config;
  config.transition_mj = 5.0;
  Rig rig(config);
  rig.compose_frame();
  rig.sim.run_for(sim::seconds(3));   // enter: +5 mJ
  rig.compose_frame();                 // exit: +5 mJ
  // Verify by comparing against a pure continuous integration: hard to do
  // exactly (composition energy also lands), so assert entries counted.
  EXPECT_EQ(rig.psr.entries(), 1u);
}

TEST(SelfRefresh, ConfigurableThreshold) {
  SelfRefreshConfig config;
  config.enter_after = sim::milliseconds(500);
  Rig rig(config);
  rig.compose_frame();
  rig.sim.run_for(sim::seconds(1));
  EXPECT_TRUE(rig.psr.in_self_refresh());
}

TEST(SelfRefresh, StopFreezesController) {
  Rig rig;
  rig.compose_frame();
  rig.psr.stop();
  rig.sim.run_for(sim::seconds(5));
  EXPECT_FALSE(rig.psr.in_self_refresh());
}

// --- boundary conditions ----------------------------------------------------

TEST(SelfRefresh, EntryHappensExactlyAtTheIdleThreshold) {
  // enter_after = 1 s, evaluations every 250 ms: with no frame ever
  // composed, `t - last_frame >= enter_after` first holds at the t = 1 s
  // evaluation, not one tick earlier.
  SelfRefreshConfig config;
  config.enter_after = sim::seconds(1);
  Rig rig(config);
  rig.sim.run_for(sim::milliseconds(999));
  EXPECT_FALSE(rig.psr.in_self_refresh());
  rig.sim.run_for(sim::milliseconds(2));
  EXPECT_TRUE(rig.psr.in_self_refresh());
  EXPECT_EQ(rig.psr.entries(), 1u);
}

TEST(SelfRefresh, ZeroThresholdEntersAtTheFirstEvaluation) {
  // enter_after = 0 is the degenerate "always eligible" config: even a
  // frame composed right before the evaluation cannot hold the link up.
  SelfRefreshConfig config;
  config.enter_after = sim::Duration{};
  Rig rig(config);
  rig.compose_frame();
  rig.sim.run_for(sim::milliseconds(300));  // first eval at 250 ms
  EXPECT_TRUE(rig.psr.in_self_refresh());
}

TEST(SelfRefresh, CoarseEvalPeriodDelaysEntryToTheNextTick) {
  // The idle threshold is crossed at 300 ms but the controller only looks
  // every second, so entry lands on the t = 1 s evaluation.
  SelfRefreshConfig config;
  config.enter_after = sim::milliseconds(300);
  config.eval_period = sim::seconds(1);
  Rig rig(config);
  rig.sim.run_for(sim::milliseconds(900));
  EXPECT_FALSE(rig.psr.in_self_refresh());
  rig.sim.run_for(sim::milliseconds(200));
  EXPECT_TRUE(rig.psr.in_self_refresh());
}

TEST(SelfRefresh, ReEntryAfterAnInterveningFrameCountsTwice) {
  Rig rig;
  rig.sim.run_for(sim::seconds(3));
  ASSERT_TRUE(rig.psr.in_self_refresh());
  rig.compose_frame();  // exit
  ASSERT_FALSE(rig.psr.in_self_refresh());
  rig.sim.run_for(sim::seconds(3));
  EXPECT_TRUE(rig.psr.in_self_refresh());
  EXPECT_EQ(rig.psr.entries(), 2u);
}

TEST(SelfRefresh, ResidencyIsExactFromTheEntryEvaluation) {
  // Entry at exactly t = 2 s (default threshold, 250 ms eval grid, no
  // frames at all), so by t = 3.5 s residency is exactly 1.5 s.
  Rig rig;
  rig.sim.run_for(sim::milliseconds(3500));
  ASSERT_TRUE(rig.psr.in_self_refresh());
  EXPECT_DOUBLE_EQ(rig.psr.time_in_self_refresh(rig.sim.now()).seconds(),
                   1.5);
}

TEST(SelfRefresh, StopInsideSelfRefreshFreezesFurtherEntries) {
  Rig rig;
  rig.sim.run_for(sim::seconds(3));
  ASSERT_TRUE(rig.psr.in_self_refresh());
  rig.psr.stop();
  rig.compose_frame();  // the composed frame still exits PSR
  EXPECT_FALSE(rig.psr.in_self_refresh());
  EXPECT_TRUE(rig.power.link_active());
  rig.sim.run_for(sim::seconds(10));  // ...but the controller never re-enters
  EXPECT_FALSE(rig.psr.in_self_refresh());
  EXPECT_EQ(rig.psr.entries(), 1u);
}

TEST(SelfRefresh, TransitionEnergyIsTalliedPerEdge) {
  SelfRefreshConfig config;
  config.transition_mj = 5.0;
  Rig rig(config);
  const double before = rig.power.breakdown().rate_switch_mj;
  rig.sim.run_for(sim::seconds(3));  // enter: one impulse
  ASSERT_TRUE(rig.psr.in_self_refresh());
  rig.compose_frame();               // exit: second impulse
  EXPECT_DOUBLE_EQ(rig.power.breakdown().rate_switch_mj - before, 10.0);
}

TEST(SelfRefresh, PsrLinkParamsPreserveTotalIdlePower) {
  // Splitting the link out of the SoC base must not change the calibrated
  // total while the link is active.
  power::DevicePowerModel base(power::DevicePowerParams::galaxy_s3(), 60);
  power::DevicePowerModel split(
      power::DevicePowerParams::galaxy_s3_with_psr_link(), 60);
  EXPECT_DOUBLE_EQ(base.continuous_power_mw(60),
                   split.continuous_power_mw(60));
}

}  // namespace
}  // namespace ccdem::core
