#include "gfx/geometry.h"

#include <gtest/gtest.h>

namespace ccdem::gfx {
namespace {

TEST(Rect, EmptyAndArea) {
  EXPECT_TRUE(Rect{}.empty());
  EXPECT_TRUE((Rect{0, 0, 0, 5}).empty());
  EXPECT_TRUE((Rect{0, 0, 5, 0}).empty());
  EXPECT_FALSE((Rect{0, 0, 1, 1}).empty());
  EXPECT_EQ((Rect{0, 0, 3, 4}).area(), 12);
  EXPECT_EQ((Rect{0, 0, -3, 4}).area(), 0);
}

TEST(Rect, Edges) {
  const Rect r{10, 20, 30, 40};
  EXPECT_EQ(r.right(), 40);
  EXPECT_EQ(r.bottom(), 60);
}

TEST(Rect, ContainsIsHalfOpen) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({9, 9}));
  EXPECT_FALSE(r.contains({10, 9}));
  EXPECT_FALSE(r.contains({9, 10}));
  EXPECT_FALSE(r.contains({-1, 5}));
}

TEST(Rect, IntersectOverlapping) {
  const Rect a{0, 0, 10, 10};
  const Rect b{5, 5, 10, 10};
  EXPECT_EQ(a.intersect(b), (Rect{5, 5, 5, 5}));
}

TEST(Rect, IntersectDisjointIsEmpty) {
  const Rect a{0, 0, 10, 10};
  const Rect b{20, 20, 5, 5};
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(Rect, IntersectTouchingEdgesIsEmpty) {
  const Rect a{0, 0, 10, 10};
  const Rect b{10, 0, 10, 10};
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(Rect, IntersectContained) {
  const Rect a{0, 0, 10, 10};
  const Rect b{2, 2, 3, 3};
  EXPECT_EQ(a.intersect(b), b);
}

TEST(Rect, JoinBounds) {
  const Rect a{0, 0, 2, 2};
  const Rect b{8, 8, 2, 2};
  EXPECT_EQ(a.join(b), (Rect{0, 0, 10, 10}));
}

TEST(Rect, JoinWithEmptyReturnsOther) {
  const Rect a{3, 4, 5, 6};
  EXPECT_EQ(a.join(Rect{}), a);
  EXPECT_EQ(Rect{}.join(a), a);
  EXPECT_TRUE(Rect{}.join(Rect{}).empty());
}

TEST(Rect, Translated) {
  EXPECT_EQ((Rect{1, 2, 3, 4}).translated(10, 20), (Rect{11, 22, 3, 4}));
}

TEST(Rect, OfSize) {
  EXPECT_EQ(Rect::of(Size{7, 8}), (Rect{0, 0, 7, 8}));
}

TEST(Size, AreaAndEmpty) {
  EXPECT_EQ((Size{720, 1280}).area(), 921'600);
  EXPECT_TRUE((Size{0, 5}).empty());
  EXPECT_FALSE((Size{1, 1}).empty());
}

}  // namespace
}  // namespace ccdem::gfx
