#include "sim/time.h"

#include <gtest/gtest.h>

namespace ccdem::sim {
namespace {

TEST(Time, DefaultIsZero) {
  Time t;
  EXPECT_EQ(t.ticks, 0);
  EXPECT_DOUBLE_EQ(t.seconds(), 0.0);
}

TEST(Time, ConversionHelpers) {
  EXPECT_EQ(seconds(3).ticks, 3'000'000);
  EXPECT_EQ(milliseconds(5).ticks, 5'000);
  EXPECT_EQ(microseconds(7).ticks, 7);
}

TEST(Time, FractionalSecondsRoundToNearestTick) {
  EXPECT_EQ(seconds_f(0.5).ticks, 500'000);
  EXPECT_EQ(seconds_f(1.0 / 3.0).ticks, 333'333);
  EXPECT_EQ(seconds_f(-0.5).ticks, -500'000);
}

TEST(Time, PeriodOfHz) {
  EXPECT_EQ(period_of_hz(60.0).ticks, 16'667);
  EXPECT_EQ(period_of_hz(20.0).ticks, 50'000);
  EXPECT_EQ(period_of_hz(1.0).ticks, 1'000'000);
}

TEST(Time, Arithmetic) {
  const Time t = Time{1'000'000} + milliseconds(500);
  EXPECT_EQ(t.ticks, 1'500'000);
  EXPECT_EQ((t - Time{1'000'000}).ticks, 500'000);
  EXPECT_EQ((t - milliseconds(500)).ticks, 1'000'000);
  EXPECT_EQ((milliseconds(3) * 4).ticks, 12'000);
  EXPECT_EQ((milliseconds(12) / 4).ticks, 3'000);
}

TEST(Time, Comparisons) {
  EXPECT_LT(Time{1}, Time{2});
  EXPECT_GE(Time{2}, Time{2});
  EXPECT_LT(milliseconds(1), milliseconds(2));
}

TEST(Time, SecondsAndMilliseconds) {
  const Time t{2'500'000};
  EXPECT_DOUBLE_EQ(t.seconds(), 2.5);
  EXPECT_DOUBLE_EQ(t.milliseconds(), 2500.0);
  const Duration d{750};
  EXPECT_DOUBLE_EQ(d.milliseconds(), 0.75);
}

TEST(Time, CompoundAssign) {
  Time t{};
  t += seconds(2);
  t += milliseconds(1);
  EXPECT_EQ(t.ticks, 2'001'000);
}

}  // namespace
}  // namespace ccdem::sim
