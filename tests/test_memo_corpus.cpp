// Memoization property test over the seed corpus: for every checked-in
// scenario, running with tile-hash compose memoization ON must be
// observably identical to running with it OFF -- same result scalars, same
// per-frame framebuffer hash stream, same counters except the meter work
// and the flinger.memo.* accounting the skips exist to change.  A second
// pass forces every tile hash to collide (CCDEM_MEMO_COLLIDE=1), proving
// the byte-verify path alone carries correctness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "check/dst.h"
#include "check/oracles.h"

namespace ccdem::check {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<fs::path> corpus_files() {
  const fs::path dir = fs::path(CCDEM_REPO_DIR) / "tests" / "corpus";
  std::vector<fs::path> out;
  if (fs::exists(dir)) {
    for (const auto& e : fs::directory_iterator(dir)) {
      if (e.path().extension() == ".repro") out.push_back(e.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Counters memoization is allowed to change: how much work the meter did
/// (damage shrinks to the proven-changed tiles) and its own accounting.
const std::vector<std::string> kMemoExclusions = {"meter.pixels_",
                                                  "flinger.memo."};

TEST(MemoCorpus, MemoOnAndOffAreObservablyIdentical) {
  ASSERT_FALSE(corpus_files().empty());
  for (const fs::path& p : corpus_files()) {
    std::string error;
    const auto s = parse_scenario(read_file(p), &error);
    ASSERT_TRUE(s) << p.filename().string() << ": " << error;
    // Meter bit-flip faults legitimately split the legs (a corrupted
    // retained sample outside the shrunk damage region hits only the
    // unmemoized run) -- same carve-out as the unculled oracle.
    if (s->fault_scale > 0.0 && s->fault_classes.meter) continue;

    const RunArtifacts on = run_scenario_once(s->experiment_config());
    RunOptions off_opt;
    off_opt.tile_memo = false;
    const RunArtifacts off = run_scenario_once(s->experiment_config(), off_opt);

    const std::string what = "memo-corpus:" + p.filename().string();
    EXPECT_FALSE(diff_results(on.result, off.result, what))
        << *diff_results(on.result, off.result, what);
    EXPECT_FALSE(diff_counters(on.counters, off.counters, what,
                               kMemoExclusions))
        << *diff_counters(on.counters, off.counters, what, kMemoExclusions);
    // The memo accounting must be registered (zero is fine for scenarios
    // whose content never repeats) -- its absence would mean the memoized
    // compose path silently was not in play at all.
    const auto& ctrs = on.counters.counters;
    const auto skipped = std::find_if(
        ctrs.begin(), ctrs.end(), [](const auto& kv) {
          return kv.first == "flinger.memo.pixels_skipped";
        });
    ASSERT_NE(skipped, ctrs.end()) << what;
  }
}

TEST(MemoCorpus, ForcedHashCollisionsAreCorrectnessNeutral) {
  ASSERT_FALSE(corpus_files().empty());
  // Under CCDEM_MEMO_COLLIDE every tile lookup "hits" and must be saved by
  // the byte verify.  The observable run is still identical to memo-off.
  for (const fs::path& p : corpus_files()) {
    std::string error;
    const auto s = parse_scenario(read_file(p), &error);
    ASSERT_TRUE(s) << p.filename().string() << ": " << error;
    if (s->fault_scale > 0.0 && s->fault_classes.meter) continue;

    ::setenv("CCDEM_MEMO_COLLIDE", "1", 1);
    const RunArtifacts collide = run_scenario_once(s->experiment_config());
    ::unsetenv("CCDEM_MEMO_COLLIDE");

    RunOptions off_opt;
    off_opt.tile_memo = false;
    const RunArtifacts off = run_scenario_once(s->experiment_config(), off_opt);

    const std::string what = "memo-collide:" + p.filename().string();
    EXPECT_FALSE(diff_results(collide.result, off.result, what))
        << *diff_results(collide.result, off.result, what);
    EXPECT_FALSE(diff_counters(collide.counters, off.counters, what,
                               kMemoExclusions))
        << *diff_counters(collide.counters, off.counters, what,
                          kMemoExclusions);
  }
}

}  // namespace
}  // namespace ccdem::check
