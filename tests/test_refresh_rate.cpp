#include "display/refresh_rate.h"

#include <gtest/gtest.h>

namespace ccdem::display {
namespace {

TEST(RefreshRateSet, GalaxyS3Levels) {
  const RefreshRateSet r = RefreshRateSet::galaxy_s3();
  EXPECT_EQ(r.count(), 5u);
  EXPECT_EQ(r.min_hz(), 20);
  EXPECT_EQ(r.max_hz(), 60);
  EXPECT_EQ(r.rates(), (std::vector<int>{20, 24, 30, 40, 60}));
}

TEST(RefreshRateSet, NormalizesOrderAndDuplicates) {
  const RefreshRateSet r{60, 20, 40, 20, 30};
  EXPECT_EQ(r.rates(), (std::vector<int>{20, 30, 40, 60}));
}

TEST(RefreshRateSet, Supports) {
  const RefreshRateSet r = RefreshRateSet::galaxy_s3();
  EXPECT_TRUE(r.supports(24));
  EXPECT_FALSE(r.supports(25));
  EXPECT_FALSE(r.supports(0));
}

TEST(RefreshRateSet, CeilRate) {
  const RefreshRateSet r = RefreshRateSet::galaxy_s3();
  EXPECT_EQ(r.ceil_rate(0.0), 20);
  EXPECT_EQ(r.ceil_rate(20.0), 20);
  EXPECT_EQ(r.ceil_rate(20.1), 24);
  EXPECT_EQ(r.ceil_rate(29.9), 30);
  EXPECT_EQ(r.ceil_rate(45.0), 60);
  EXPECT_EQ(r.ceil_rate(100.0), 60);  // clamps to max
}

TEST(RefreshRateSet, IndexOf) {
  const RefreshRateSet r = RefreshRateSet::galaxy_s3();
  EXPECT_EQ(r.index_of(20), 0u);
  EXPECT_EQ(r.index_of(60), 4u);
}

TEST(RefreshRateSet, Ltpo120Preset) {
  const RefreshRateSet r = RefreshRateSet::ltpo_120();
  EXPECT_EQ(r.min_hz(), 1);
  EXPECT_EQ(r.max_hz(), 120);
  EXPECT_TRUE(r.supports(90));
}

}  // namespace
}  // namespace ccdem::display
