// Parameterized scene properties: every scene type, across seeds, must
// uphold the contracts the meter and power model rely on.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "apps/scene.h"
#include "gfx/framebuffer.h"

namespace ccdem::apps {
namespace {

constexpr gfx::Size kScreen{720, 1280};

struct SceneCase {
  std::string name;
  SceneSpec spec;
};

std::vector<SceneCase> scene_cases() {
  UiSceneSpec menu;
  menu.states = {
      {UiState::Kind::kIdle, 400, 2.0, 1, 1},
      {UiState::Kind::kMenu, 300, 12.0, 2, 3},
      {UiState::Kind::kScroll, 250, 24.0, 3, -1},
      {UiState::Kind::kSlide, 300, 24.0, 4, 0},
      {UiState::Kind::kDialog, 350, 8.0, 0, -1},
  };
  menu.idle_timeout_ms = 1500;
  UiSceneSpec marquee1;
  marquee1.states = {{UiState::Kind::kMarquee, 0, 24.0, 0, -1}};
  marquee1.marquee_px = 1;  // the 1-px blind-spot stressor
  marquee1.idle_timeout_ms = 0;
  return {
      {"feed", SceneSpec::static_ui(2.0)},
      {"static", SceneSpec::static_ui(0.0)},
      {"video24", SceneSpec::video(24.0)},
      {"game_slow", SceneSpec::game(10.0)},
      {"game_fast", SceneSpec::game(35.0)},
      {"wallpaper", SceneSpec::wallpaper(2, 8)},
      {"typing", SceneSpec::typing(2.0, 3.0)},
      {"map", SceneSpec::map(2.0)},
      {"ui_menu", SceneSpec::ui_machine(menu)},
      {"ui_marquee1", SceneSpec::ui_machine(marquee1)},
      {"burst", SceneSpec::burst_video({300, 8, 30.0, {1, 3, 0, 2}})},
  };
}

using Param = std::tuple<int /*case*/, std::uint64_t /*seed*/>;

class SceneProperty : public ::testing::TestWithParam<Param> {
 protected:
  [[nodiscard]] const SceneCase& scene_case() const {
    static const std::vector<SceneCase> all = scene_cases();
    return all[static_cast<std::size_t>(std::get<0>(GetParam()))];
  }
  [[nodiscard]] std::uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(SceneProperty, HonestChangeReporting) {
  gfx::Framebuffer fb(kScreen);
  gfx::Canvas canvas(fb);
  auto scene = make_scene(scene_case().spec, kScreen, sim::Rng(seed()));
  scene->init(canvas);
  canvas.take_dirty();
  for (int i = 1; i <= 90; ++i) {
    const auto before = fb.content_hash();
    const bool reported = scene->render(canvas, sim::at_seconds(i / 45.0));
    canvas.take_dirty();
    EXPECT_EQ(reported, before != fb.content_hash()) << "frame " << i;
  }
}

TEST_P(SceneProperty, DirtyRegionCoversAllChanges) {
  // Every pixel that changes must be inside the reported dirty region --
  // otherwise the compositor would miss it and the screen would corrupt.
  gfx::Framebuffer fb(kScreen);
  gfx::Canvas canvas(fb);
  auto scene = make_scene(scene_case().spec, kScreen, sim::Rng(seed()));
  scene->init(canvas);
  canvas.take_dirty();
  gfx::Framebuffer prev = fb;
  for (int i = 1; i <= 30; ++i) {
    scene->render(canvas, sim::at_seconds(i / 15.0));
    const gfx::Region dirty = canvas.take_dirty_region();
    // Verify on a coarse sample lattice (exhaustive would be slow).
    for (int y = 3; y < kScreen.height; y += 13) {
      for (int x = 3; x < kScreen.width; x += 13) {
        if (fb.at(x, y) != prev.at(x, y)) {
          ASSERT_TRUE(dirty.contains({x, y}))
              << "changed pixel (" << x << "," << y
              << ") outside dirty region at frame " << i;
        }
      }
    }
    prev.blit(fb, fb.bounds(), {0, 0});
  }
}

TEST_P(SceneProperty, DeterministicForSeed) {
  gfx::Framebuffer fb1(kScreen), fb2(kScreen);
  gfx::Canvas c1(fb1), c2(fb2);
  auto s1 = make_scene(scene_case().spec, kScreen, sim::Rng(seed()));
  auto s2 = make_scene(scene_case().spec, kScreen, sim::Rng(seed()));
  s1->init(c1);
  s2->init(c2);
  for (int i = 1; i <= 30; ++i) {
    s1->render(c1, sim::at_seconds(i / 30.0));
    s2->render(c2, sim::at_seconds(i / 30.0));
  }
  EXPECT_EQ(fb1.content_hash(), fb2.content_hash());
}

TEST_P(SceneProperty, NominalContentRateNonNegative) {
  gfx::Framebuffer fb(kScreen);
  gfx::Canvas canvas(fb);
  auto scene = make_scene(scene_case().spec, kScreen, sim::Rng(seed()));
  scene->init(canvas);
  for (int i = 0; i <= 10; ++i) {
    EXPECT_GE(scene->nominal_content_fps(sim::at_seconds(i)), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenes, SceneProperty,
    ::testing::Combine(::testing::Range(0, 11),
                       ::testing::Values<std::uint64_t>(1, 7, 42)),
    [](const ::testing::TestParamInfo<Param>& info) {
      const SceneCase c = scene_cases()[static_cast<std::size_t>(
          std::get<0>(info.param))];
      return c.name + "_s" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ccdem::apps
