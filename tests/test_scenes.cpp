#include "apps/scene.h"

#include <gtest/gtest.h>

#include "apps/game_scene.h"
#include "apps/map_scene.h"
#include "apps/static_ui_scene.h"
#include "apps/video_scene.h"
#include "apps/wallpaper_scene.h"
#include "gfx/framebuffer.h"

namespace ccdem::apps {
namespace {

constexpr gfx::Size kScreen{720, 1280};

struct SceneRig {
  explicit SceneRig(const SceneSpec& spec, std::uint64_t seed = 1)
      : fb(kScreen), canvas(fb), scene(make_scene(spec, kScreen,
                                                  sim::Rng(seed))) {
    scene->init(canvas);
    canvas.take_dirty();
  }

  /// Renders at `t`; returns (scene-reported change, pixels actually moved).
  std::pair<bool, bool> render_at(double t_s) {
    const auto before = fb.content_hash();
    const bool reported = scene->render(canvas, sim::at_seconds(t_s));
    canvas.take_dirty();
    return {reported, before != fb.content_hash()};
  }

  gfx::Framebuffer fb;
  gfx::Canvas canvas;
  std::unique_ptr<Scene> scene;
};

// --- factory -------------------------------------------------------------

TEST(SceneFactory, BuildsEveryType) {
  for (const SceneSpec& spec :
       {SceneSpec::static_ui(1.0), SceneSpec::video(24.0),
        SceneSpec::game(20.0), SceneSpec::wallpaper(3, 4),
        SceneSpec::typing(), SceneSpec::map()}) {
    EXPECT_NE(make_scene(spec, kScreen, sim::Rng(1)), nullptr);
  }
}

// --- honesty property: reported change == pixels changed ------------------

TEST(SceneHonesty, ReportedChangeMatchesPixels) {
  for (const SceneSpec& spec :
       {SceneSpec::static_ui(2.0), SceneSpec::video(24.0),
        SceneSpec::game(20.0), SceneSpec::wallpaper(5, 6),
        SceneSpec::typing(2.0, 1.5), SceneSpec::map(2.0)}) {
    SceneRig rig(spec);
    for (int i = 1; i <= 120; ++i) {
      const auto [reported, actual] = rig.render_at(i / 60.0);
      EXPECT_EQ(reported, actual)
          << "scene type " << static_cast<int>(spec.type) << " frame " << i;
    }
  }
}

// --- typing -----------------------------------------------------------------

TEST(TypingScene, CursorBlinksAtConfiguredRate) {
  SceneRig rig(SceneSpec::typing(/*cursor_blink_fps=*/2.0,
                                 /*incoming_msg_period_s=*/1e9));
  int changes = 0;
  for (int i = 1; i <= 100; ++i) {  // 10 s at 10 renders/s
    if (rig.render_at(i / 10.0).first) ++changes;
  }
  EXPECT_NEAR(changes, 20, 3);
}

TEST(TypingScene, KeystrokesProduceChanges) {
  SceneRig rig(SceneSpec::typing(/*cursor_blink_fps=*/0.0, 1e9));
  EXPECT_FALSE(rig.render_at(0.1).first);  // fully idle
  rig.scene->on_touch({sim::at_seconds(0.2), {360, 1100},
                       input::TouchEvent::Action::kDown});
  EXPECT_TRUE(rig.render_at(0.3).first);   // key highlight + text
  EXPECT_TRUE(rig.render_at(0.4).first);   // key un-highlight
  EXPECT_FALSE(rig.render_at(0.5).first);  // settled
}

TEST(TypingScene, IncomingMessagesScrollConversation) {
  SceneRig rig(SceneSpec::typing(/*cursor_blink_fps=*/0.0,
                                 /*incoming_msg_period_s=*/1.0));
  int changes = 0;
  for (int i = 1; i <= 50; ++i) {  // 5 s at 10 renders/s
    if (rig.render_at(i / 10.0).first) ++changes;
  }
  EXPECT_NEAR(changes, 5, 1);
}

// --- static UI -------------------------------------------------------------

TEST(StaticUiScene, IdleContentTicksAtConfiguredRate) {
  SceneRig rig(SceneSpec::static_ui(/*idle_content_fps=*/2.0));
  int changes = 0;
  // 60 renders over 10 s -> expect ~20 content changes.
  for (int i = 1; i <= 60; ++i) {
    if (rig.render_at(i / 6.0).first) ++changes;
  }
  EXPECT_NEAR(changes, 20, 3);
}

TEST(StaticUiScene, ZeroIdleContentIsFullyStatic) {
  SceneRig rig(SceneSpec::static_ui(0.0));
  for (int i = 1; i <= 30; ++i) {
    EXPECT_FALSE(rig.render_at(i / 10.0).first);
  }
}

TEST(StaticUiScene, TouchMovesQueueScroll) {
  SceneSpec spec = SceneSpec::static_ui(0.0);
  SceneRig rig(spec);
  auto* ui = dynamic_cast<StaticUiScene*>(rig.scene.get());
  ASSERT_NE(ui, nullptr);
  EXPECT_EQ(ui->pending_scroll_px(), 0);
  ui->on_touch({sim::at_seconds(0.1), {360, 640},
                input::TouchEvent::Action::kMove});
  EXPECT_EQ(ui->pending_scroll_px(), spec.scroll_px_per_move);
  ui->on_touch({sim::at_seconds(0.15), {360, 640},
                input::TouchEvent::Action::kUp});
  EXPECT_EQ(ui->pending_scroll_px(),
            spec.scroll_px_per_move + spec.fling_px);
}

TEST(StaticUiScene, ScrollMakesRendersMeaningfulUntilConsumed) {
  SceneSpec spec = SceneSpec::static_ui(0.0);
  spec.scroll_px_per_move = 40;
  spec.fling_px = 0;
  SceneRig rig(spec);
  auto* ui = dynamic_cast<StaticUiScene*>(rig.scene.get());
  // Queue exactly two frames' worth of scroll.
  ui->on_touch({sim::at_seconds(0.1), {1, 1},
                input::TouchEvent::Action::kMove});
  ui->on_touch({sim::at_seconds(0.1), {1, 1},
                input::TouchEvent::Action::kMove});
  EXPECT_TRUE(rig.render_at(0.2).first);
  EXPECT_TRUE(rig.render_at(0.3).first);
  EXPECT_FALSE(rig.render_at(0.4).first);  // queue drained
}

// --- video ----------------------------------------------------------------

TEST(VideoScene, ContentFollowsVideoFps) {
  SceneRig rig(SceneSpec::video(24.0));
  int changes = 0;
  for (int i = 1; i <= 120; ++i) {  // 2 s at 60 renders/s
    if (rig.render_at(i / 60.0).first) ++changes;
  }
  EXPECT_NEAR(changes, 48, 3);
}

TEST(VideoScene, RendersFasterThanVideoAreRedundant) {
  SceneRig rig(SceneSpec::video(1.0));
  EXPECT_TRUE(rig.render_at(1.01).first);   // new video frame
  EXPECT_FALSE(rig.render_at(1.02).first);  // same video frame
  EXPECT_FALSE(rig.render_at(1.50).first);
  EXPECT_TRUE(rig.render_at(2.01).first);
}

TEST(VideoScene, TouchRepaintsControls) {
  SceneRig rig(SceneSpec::video(1.0));
  rig.render_at(0.5);
  rig.scene->on_touch({sim::at_seconds(0.6), {360, 1200},
                       input::TouchEvent::Action::kDown});
  EXPECT_TRUE(rig.render_at(0.61).first);
}

// --- game -------------------------------------------------------------------

TEST(GameScene, LogicTicksAtContentFps) {
  SceneRig rig(SceneSpec::game(/*content_fps=*/20.0));
  int changes = 0;
  for (int i = 1; i <= 120; ++i) {
    if (rig.render_at(i / 60.0).first) ++changes;
  }
  EXPECT_NEAR(changes, 40, 4);
}

TEST(GameScene, TouchRaisesContentRate) {
  SceneSpec spec = SceneSpec::game(10.0, 8, /*touch_boost_fps=*/30.0);
  spec.touch_boost_hold_s = 10.0;  // keep boosted for the whole test
  SceneRig rig(spec);
  rig.scene->on_touch({sim::at_seconds(0.0), {360, 640},
                       input::TouchEvent::Action::kDown});
  int changes = 0;
  for (int i = 1; i <= 60; ++i) {
    if (rig.render_at(i / 60.0).first) ++changes;
  }
  EXPECT_NEAR(changes, 40, 5);  // 10 + 30 fps while boosted
  EXPECT_NEAR(rig.scene->nominal_content_fps(sim::at_seconds(0.5)), 40.0, 1e-9);
}

TEST(GameScene, SlowRendersStillAdvanceLogic) {
  // Rendering at 5 fps with 20 fps logic: every render shows new content.
  SceneRig rig(SceneSpec::game(20.0));
  for (int i = 1; i <= 10; ++i) {
    EXPECT_TRUE(rig.render_at(i / 5.0).first);
  }
}

// --- map --------------------------------------------------------------------

TEST(MapScene2D, MarkerPulsesAtConfiguredRate) {
  SceneRig rig(SceneSpec::map(/*marker_pulse_fps=*/2.0));
  int changes = 0;
  for (int i = 1; i <= 100; ++i) {  // 10 s at 10 renders/s
    if (rig.render_at(i / 10.0).first) ++changes;
  }
  EXPECT_NEAR(changes, 20, 3);
}

TEST(MapScene2D, DragPansInBothAxes) {
  SceneSpec spec = SceneSpec::map(0.0);  // no pulse: isolate panning
  SceneRig rig(spec);
  auto* map = dynamic_cast<MapScene*>(rig.scene.get());
  ASSERT_NE(map, nullptr);
  const gfx::Point before = map->viewport_origin();
  rig.scene->on_touch({sim::at_seconds(0.1), {400, 700},
                       input::TouchEvent::Action::kDown});
  rig.scene->on_touch({sim::at_seconds(0.12), {380, 660},
                       input::TouchEvent::Action::kMove});
  rig.scene->on_touch({sim::at_seconds(0.14), {380, 660},
                       input::TouchEvent::Action::kUp});
  EXPECT_TRUE(rig.render_at(0.2).first);
  const gfx::Point after = map->viewport_origin();
  // Finger moved left+up by (20, 40) => viewport moved right+down.
  EXPECT_EQ(after.x - before.x, 20);
  EXPECT_EQ(after.y - before.y, 40);
}

TEST(MapScene2D, LargeDragConsumedAcrossFrames) {
  SceneSpec spec = SceneSpec::map(0.0);
  spec.scroll_px_per_frame = 40;
  SceneRig rig(spec);
  rig.scene->on_touch({sim::at_seconds(0.1), {400, 700},
                       input::TouchEvent::Action::kDown});
  rig.scene->on_touch({sim::at_seconds(0.12), {400, 580},
                       input::TouchEvent::Action::kMove});  // 120 px drag
  rig.scene->on_touch({sim::at_seconds(0.14), {400, 580},
                       input::TouchEvent::Action::kUp});
  EXPECT_TRUE(rig.render_at(0.2).first);   // 40 px
  EXPECT_TRUE(rig.render_at(0.3).first);   // 40 px
  EXPECT_TRUE(rig.render_at(0.4).first);   // 40 px
  EXPECT_FALSE(rig.render_at(0.5).first);  // drained
}

TEST(MapScene2D, MovesWithoutDownAreIgnored) {
  SceneRig rig(SceneSpec::map(0.0));
  rig.scene->on_touch({sim::at_seconds(0.1), {100, 100},
                       input::TouchEvent::Action::kMove});
  EXPECT_FALSE(rig.render_at(0.2).first);
}

// --- wallpaper ----------------------------------------------------------------

TEST(WallpaperScene, ChangesAtConfiguredFps) {
  SceneRig rig(SceneSpec::wallpaper(3, 4, /*fps=*/20.0));
  int changes = 0;
  for (int i = 1; i <= 60; ++i) {
    if (rig.render_at(i / 30.0).first) ++changes;  // 2 s at 30 renders/s
  }
  EXPECT_NEAR(changes, 40, 3);
}

TEST(WallpaperScene, ChangesAreSmall) {
  // The adversarial property: each frame's changed area is tiny relative to
  // the screen (a few small dots), which is what starves sparse grids.
  SceneSpec spec = SceneSpec::wallpaper(3, 4, 20.0);
  gfx::Framebuffer fb(kScreen);
  gfx::Canvas canvas(fb);
  auto scene = make_scene(spec, kScreen, sim::Rng(7));
  scene->init(canvas);
  canvas.take_dirty();
  scene->render(canvas, sim::at_seconds(0.1));
  const gfx::Rect dirty = canvas.take_dirty();
  // Dirty bounding box exists but the changed pixels are dot-sized; the
  // per-dot area is (2r+1)^2 <= 81 px.
  EXPECT_FALSE(dirty.empty());
}

TEST(WallpaperScene, DotsStayOnScreen) {
  SceneRig rig(SceneSpec::wallpaper(6, 5, 20.0));
  for (int i = 1; i <= 400; ++i) {
    rig.render_at(i / 20.0);  // 20 s of bouncing
  }
  // If a dot escaped, draw_circle would have clipped and erase/redraw
  // accounting would diverge -- the honesty check covers that; here we just
  // assert rendering stayed alive and meaningful.
  EXPECT_TRUE(rig.render_at(21.0).first);
}

}  // namespace
}  // namespace ccdem::apps
