#include "harness/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ccdem::harness {
namespace {

sim::Trace per_second(const std::string& name,
                      std::initializer_list<double> values) {
  sim::Trace t(name);
  sim::Tick tick = 0;
  for (double v : values) {
    t.record(sim::Time{tick}, v);
    tick += sim::kTicksPerSecond;
  }
  return t;
}

TEST(Csv, HeaderUsesTraceNames) {
  const sim::Trace a = per_second("power_mw", {1, 2});
  const sim::Trace b = per_second("refresh_hz", {60, 20});
  const std::string csv =
      traces_to_csv({&a, &b}, sim::seconds(1), sim::Time{},
                    sim::Time{2 * sim::kTicksPerSecond});
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "time_s,power_mw,refresh_hz");
}

TEST(Csv, RowCountMatchesGrid) {
  const sim::Trace a = per_second("a", {1, 2, 3});
  std::istringstream is(traces_to_csv({&a}, sim::seconds(1), sim::Time{},
                                      sim::Time{3 * sim::kTicksPerSecond}));
  std::string line;
  int rows = 0;
  while (std::getline(is, line)) ++rows;
  EXPECT_EQ(rows, 4);  // header + 3 buckets
}

TEST(Csv, ValuesAreAligned) {
  const sim::Trace a = per_second("a", {1, 2});
  const sim::Trace b = per_second("b", {10, 20});
  std::istringstream is(traces_to_csv({&a, &b}, sim::seconds(1), sim::Time{},
                                      sim::Time{2 * sim::kTicksPerSecond}));
  std::string header, row0, row1;
  std::getline(is, header);
  std::getline(is, row0);
  std::getline(is, row1);
  EXPECT_EQ(row0, "0.000000,1.000000,10.000000");
  EXPECT_EQ(row1, "1.000000,2.000000,20.000000");
}

TEST(Csv, StepHoldFillsGaps) {
  sim::Trace a("a");
  a.record(sim::Time{0}, 5.0);
  std::istringstream is(traces_to_csv({&a}, sim::seconds(1), sim::Time{},
                                      sim::Time{3 * sim::kTicksPerSecond}));
  std::string line;
  std::getline(is, line);  // header
  int count = 0;
  while (std::getline(is, line)) {
    EXPECT_NE(line.find(",5.000000"), std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(Csv, UnnamedTraceGetsPlaceholder) {
  sim::Trace a;
  a.record(sim::Time{0}, 1.0);
  const std::string csv = traces_to_csv(
      {&a}, sim::seconds(1), sim::Time{}, sim::Time{sim::kTicksPerSecond});
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "time_s,value");
}

}  // namespace
}  // namespace ccdem::harness
