// Property tests: across randomized configurations the observability
// counters must agree with the simulation's own ground truth, with each
// other, across serial vs fleet execution, and regardless of whether span
// recording is enabled.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/app_profiles.h"
#include "core/section_table.h"
#include "device/simulated_device.h"
#include "harness/experiment.h"
#include "harness/fleet.h"
#include "obs/obs.h"

using namespace ccdem;

namespace {

harness::ExperimentConfig make_config(const apps::AppSpec& app,
                                      harness::ControlMode mode,
                                      std::uint64_t seed) {
  harness::ExperimentConfig c;
  c.app = app;
  c.duration = sim::seconds(8);
  c.seed = seed;
  c.mode = mode;
  return c;
}

/// A few structurally different workloads: static reader, animated game,
/// video-style app.
std::vector<apps::AppSpec> sample_apps() {
  const std::vector<apps::AppSpec> all = apps::all_apps();
  return {all[0], all[10], all[20]};
}

bool is_pool_counter(const std::string& name) {
  return name.rfind("pool.", 0) == 0;
}

}  // namespace

TEST(ObsProperties, FrameAccountingIsConsistent) {
  std::uint64_t seed = 1;
  for (const apps::AppSpec& app : sample_apps()) {
    for (const harness::ControlMode mode :
         {harness::ControlMode::kSection,
          harness::ControlMode::kSectionWithBoost}) {
      obs::ObsSink sink;
      harness::ExperimentConfig c = make_config(app, mode, seed++);
      c.obs = &sink;
      const harness::ExperimentResult r = harness::run_experiment(c);
      const obs::Counters& ctr = sink.counters;
      const std::string label = app.name + "/" +
                                std::string(harness::control_mode_name(mode));

      // Redundant + meaningful partition the composed frames.
      EXPECT_EQ(ctr.value("flinger.content_frames") +
                    ctr.value("flinger.redundant_frames"),
                ctr.value("flinger.frames_composed"))
          << label;
      // Every observer of the composition stream saw every frame.
      EXPECT_EQ(ctr.value("meter.frames"),
                ctr.value("flinger.frames_composed"))
          << label;
      EXPECT_EQ(ctr.value("recorder.frames"),
                ctr.value("flinger.frames_composed"))
          << label;
      EXPECT_EQ(ctr.value("recorder.content_frames"),
                ctr.value("flinger.content_frames"))
          << label;
      // Counters agree with the result scalars collected the classic way.
      EXPECT_EQ(ctr.value("flinger.frames_composed"), r.frames_composed)
          << label;
      EXPECT_EQ(ctr.value("flinger.content_frames"), r.content_frames)
          << label;
      // The panel ticked at least one V-Sync per composed frame.
      EXPECT_GE(ctr.value("panel.vsyncs"),
                ctr.value("flinger.frames_composed"))
          << label;
      EXPECT_GT(ctr.value("dpm.evaluations"), 0u) << label;
      EXPECT_GT(ctr.value("meter.pixels_compared"), 0u) << label;
    }
  }
}

TEST(ObsProperties, SectionTransitionsEqualRateChanges) {
  // For pure section control (no boost, no rate floor) the panel's pending
  // rate always equals the policy's previous decision, so every section
  // transition is exactly one accepted rate change -- and both replay from
  // the recorded content-rate trace through the same section table.
  std::uint64_t seed = 100;
  for (const apps::AppSpec& app : sample_apps()) {
    obs::ObsSink sink;
    harness::ExperimentConfig c =
        make_config(app, harness::ControlMode::kSection, seed++);
    c.obs = &sink;
    const harness::ExperimentResult r = harness::run_experiment(c);

    EXPECT_EQ(sink.counters.value("dpm.section_transitions"),
              sink.counters.value("dpm.rate_changes"))
        << app.name;

    const core::SectionTable table =
        core::SectionTable::build(c.rates, c.dpm.section_alpha);
    int prev_hz = c.rates.max_hz();
    std::uint64_t transitions = 0;
    for (const auto& p : r.measured_content_rate.points()) {
      const int hz = table.rate_for(p.value);
      if (hz != prev_hz) {
        ++transitions;
        prev_hz = hz;
      }
    }
    EXPECT_EQ(transitions, sink.counters.value("dpm.section_transitions"))
        << app.name;
    // Sanity: the sweep actually exercised the table.
    EXPECT_EQ(table.section_index_for(0.0), 0u);
    EXPECT_EQ(table.rate_for(1e9), c.rates.max_hz());
  }
}

TEST(ObsProperties, BoostActivationsMatchBooster) {
  std::uint64_t seed = 200;
  for (const apps::AppSpec& app : sample_apps()) {
    obs::ObsSink sink;
    harness::ExperimentConfig c =
        make_config(app, harness::ControlMode::kSectionWithBoost, seed++);
    device::DeviceConfig dc = c.device_config();
    dc.obs = &sink;

    device::SimulatedDevice dev;
    dev.configure(dc);
    dev.install_app(c.app);
    dev.start_control();
    dev.schedule_monkey_script(c.app.monkey, c.duration);
    dev.run_until(sim::Time{c.duration.ticks});
    dev.finish();

    ASSERT_NE(dev.dpm(), nullptr);
    EXPECT_EQ(sink.counters.value("dpm.boost_activations"),
              dev.dpm()->booster().activations())
        << app.name;
    if (dev.dispatcher().events_delivered() > 0) {
      EXPECT_GT(sink.counters.value("dpm.boost_activations"), 0u) << app.name;
    }
  }
}

TEST(ObsProperties, SerialCountersEqualFleetCountersModuloPool) {
  std::vector<harness::ExperimentConfig> configs;
  for (const apps::AppSpec& app : sample_apps()) {
    configs.push_back(make_config(app, harness::ControlMode::kSection, 7));
    configs.push_back(
        make_config(app, harness::ControlMode::kSectionWithBoost, 7));
  }

  // Serial reference: every run feeds one shared sink, which is the same
  // fold the fleet performs with per-worker sinks + merge.
  obs::ObsSink serial;
  serial.spans.set_enabled(false);
  for (harness::ExperimentConfig c : configs) {
    c.obs = &serial;
    (void)harness::run_experiment(c);
  }

  // Force multiple workers even on single-core CI machines.
  harness::FleetRunner fleet(/*max_threads=*/3);
  (void)fleet.run(configs);
  const obs::Counters& merged = fleet.stats().counters;

  const obs::Counters::Snapshot serial_snap = serial.counters.snapshot();
  const obs::Counters::Snapshot fleet_snap = merged.snapshot();
  for (const auto& [name, value] : fleet_snap.counters) {
    if (is_pool_counter(name)) continue;  // device reuse is per-worker
    EXPECT_EQ(value, serial.counters.value(name)) << name;
  }
  // Same counter vocabulary both ways (the fleet adds only pool.*).
  for (const auto& [name, value] : serial_snap.counters) {
    EXPECT_TRUE(merged.has_counter(name)) << name;
  }
  std::size_t fleet_named = 0;
  for (const auto& [name, value] : fleet_snap.counters) {
    if (!is_pool_counter(name)) ++fleet_named;
  }
  EXPECT_EQ(fleet_named, serial_snap.counters.size());
  EXPECT_GT(merged.value("flinger.frames_composed"), 0u);
}

TEST(ObsProperties, CountersUnchangedWhenSpansDisabled) {
  // Runtime-disabled spans stand in for the CCDEM_OBS_SPANS=0 build here
  // (the CI perf job builds that configuration for real); either way the
  // counter stream must be bit-identical to a spans-on run.
  const apps::AppSpec app = sample_apps()[1];
  obs::ObsSink with_spans;
  obs::ObsSink without_spans;
  without_spans.spans.set_enabled(false);

  for (obs::ObsSink* sink : {&with_spans, &without_spans}) {
    harness::ExperimentConfig c =
        make_config(app, harness::ControlMode::kSectionWithBoost, 5);
    c.obs = sink;
    (void)harness::run_experiment(c);
  }

  const obs::Counters::Snapshot a = with_spans.counters.snapshot();
  const obs::Counters::Snapshot b = without_spans.counters.snapshot();
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i], b.counters[i]);
  }
  if (obs::SpanRecorder::compiled_in()) {
    EXPECT_GT(with_spans.spans.recorded(), 0u);
  }
  EXPECT_EQ(without_spans.spans.recorded(), 0u);
}

TEST(ObsProperties, GovernorPublishesItsCounters) {
  const apps::AppSpec app = sample_apps()[2];
  obs::ObsSink sink;
  harness::ExperimentConfig c =
      make_config(app, harness::ControlMode::kE3FrameRate, 3);
  c.obs = &sink;
  (void)harness::run_experiment(c);

  const std::uint64_t evals = sink.counters.value("governor.evaluations");
  EXPECT_GT(evals, 0u);
  // One evaluation per eval_period tick, at most.
  const core::GovernorConfig gc;
  EXPECT_LE(evals, static_cast<std::uint64_t>(
                       c.duration.ticks / gc.meter.eval_period.ticks + 1));
  // The cap engages at least once (the first post-interaction evaluation
  // moves it off its initial 0 = uncapped).
  EXPECT_GT(sink.counters.value("governor.cap_changes"), 0u);
  EXPECT_EQ(sink.counters.value("meter.frames"),
            sink.counters.value("flinger.frames_composed"));
  // The E3 arm runs no DPM.
  EXPECT_FALSE(sink.counters.has_counter("dpm.evaluations"));
}
