#include "harness/experiment.h"

#include <gtest/gtest.h>

#include "apps/app_profiles.h"

namespace ccdem::harness {
namespace {

ExperimentConfig quick_config(const std::string& app, ControlMode mode,
                              int seconds = 10) {
  ExperimentConfig c;
  c.app = apps::app_by_name(app);
  c.duration = sim::seconds(seconds);
  c.seed = 42;
  c.mode = mode;
  return c;
}

TEST(Experiment, BaselineStaysAtSixtyHz) {
  const ExperimentResult r =
      run_experiment(quick_config("Facebook", ControlMode::kBaseline60));
  EXPECT_DOUBLE_EQ(r.mean_refresh_hz, 60.0);
  EXPECT_EQ(r.refresh_rate.size(), 1u);
  EXPECT_GT(r.mean_power_mw, 500.0);
}

TEST(Experiment, SectionControlLowersMeanRefresh) {
  const ExperimentResult base =
      run_experiment(quick_config("Jelly Splash", ControlMode::kBaseline60));
  const ExperimentResult ctl =
      run_experiment(quick_config("Jelly Splash", ControlMode::kSection));
  EXPECT_LT(ctl.mean_refresh_hz, 45.0);
  EXPECT_LT(ctl.mean_power_mw, base.mean_power_mw);
}

TEST(Experiment, SameSeedSameScript) {
  const auto a = run_experiment(quick_config("Facebook",
                                             ControlMode::kBaseline60));
  const auto b = run_experiment(quick_config("Facebook",
                                             ControlMode::kBaseline60));
  EXPECT_EQ(a.touch_events, b.touch_events);
  EXPECT_EQ(a.frames_composed, b.frames_composed);
  EXPECT_DOUBLE_EQ(a.mean_power_mw, b.mean_power_mw);
}

TEST(Experiment, DifferentSeedDifferentScript) {
  auto c1 = quick_config("Facebook", ControlMode::kBaseline60);
  auto c2 = c1;
  c2.seed = 43;
  const auto a = run_experiment(c1);
  const auto b = run_experiment(c2);
  EXPECT_NE(a.touch_events, b.touch_events);
}

TEST(Experiment, ResultCarriesTraces) {
  const auto r =
      run_experiment(quick_config("Jelly Splash", ControlMode::kSection));
  EXPECT_FALSE(r.power.empty());
  EXPECT_FALSE(r.frame_rate.empty());
  EXPECT_FALSE(r.content_rate.empty());
  EXPECT_FALSE(r.measured_content_rate.empty());
  EXPECT_FALSE(r.refresh_rate.empty());
  EXPECT_EQ(r.app_name, "Jelly Splash");
  EXPECT_EQ(r.mode, ControlMode::kSection);
}

TEST(Experiment, BaselineRunsNoMeterTrace) {
  const auto r =
      run_experiment(quick_config("Facebook", ControlMode::kBaseline60));
  EXPECT_TRUE(r.measured_content_rate.empty());
}

TEST(Experiment, AbSavesPowerOnRedundantApp) {
  const AbResult ab =
      run_ab(quick_config("Jelly Splash", ControlMode::kSection, 15));
  EXPECT_GT(ab.saved_power_mw, 100.0);
  EXPECT_GT(ab.saved_power_pct, 5.0);
  EXPECT_GT(ab.quality.display_quality_pct, 50.0);
}

TEST(Experiment, BoostCostsPowerButImprovesQuality) {
  const AbResult section =
      run_ab(quick_config("Jelly Splash", ControlMode::kSection, 20));
  const AbResult boost = run_ab(
      quick_config("Jelly Splash", ControlMode::kSectionWithBoost, 20));
  EXPECT_GE(boost.quality.display_quality_pct,
            section.quality.display_quality_pct);
  EXPECT_LE(boost.saved_power_mw, section.saved_power_mw + 10.0);
}

TEST(Experiment, NaiveModeRuns) {
  const auto r =
      run_experiment(quick_config("Jelly Splash", ControlMode::kNaive));
  // The naive controller ratchets down and sticks near the minimum rate.
  EXPECT_LT(r.mean_refresh_hz, 30.0);
}

TEST(Experiment, HysteresisModeRunsAndSwitchesLess) {
  const auto plain = run_experiment(
      quick_config("Jelly Splash", ControlMode::kSectionWithBoost, 15));
  const auto hyst = run_experiment(
      quick_config("Jelly Splash", ControlMode::kSectionHysteresis, 15));
  EXPECT_LE(hyst.rate_switches, plain.rate_switches);
  EXPECT_GT(hyst.rate_switches, 0u);
}

TEST(Experiment, E3ModeCapsAppNotPanel) {
  const auto r = run_experiment(
      quick_config("Jelly Splash", ControlMode::kE3FrameRate, 15));
  // Panel pinned at 60 Hz; the app's frame rate throttled well below it.
  EXPECT_DOUBLE_EQ(r.mean_refresh_hz, 60.0);
  const double fps =
      static_cast<double>(r.frames_composed) / r.duration.seconds();
  EXPECT_LT(fps, 40.0);
}

TEST(Experiment, E3ModeSavesLessThanRefreshControl) {
  const AbResult e3 =
      run_ab(quick_config("Jelly Splash", ControlMode::kE3FrameRate, 15));
  const AbResult ours = run_ab(
      quick_config("Jelly Splash", ControlMode::kSectionWithBoost, 15));
  EXPECT_GT(e3.saved_power_mw, 0.0);
  EXPECT_GT(ours.saved_power_mw, e3.saved_power_mw);
}

TEST(Experiment, RateSwitchCountConsistentWithTrace) {
  const auto r = run_experiment(
      quick_config("Jelly Splash", ControlMode::kSectionWithBoost, 10));
  EXPECT_EQ(r.rate_switches + 1, r.refresh_rate.size());
}

TEST(Experiment, ControlModeNames) {
  EXPECT_STREQ(control_mode_name(ControlMode::kBaseline60), "baseline-60Hz");
  EXPECT_STREQ(control_mode_name(ControlMode::kSection), "section");
  EXPECT_STREQ(control_mode_name(ControlMode::kSectionWithBoost),
               "section+boost");
  EXPECT_STREQ(control_mode_name(ControlMode::kNaive), "naive");
}

}  // namespace
}  // namespace ccdem::harness
