#include "power/oled_panel_model.h"

#include <gtest/gtest.h>

namespace ccdem::power {
namespace {

DevicePowerParams oled_base_params() {
  DevicePowerParams p = DevicePowerParams::galaxy_s3();
  p.panel_static_mw = 0.0;  // emission replaces the constant backlight term
  return p;
}

gfx::FrameInfo content_frame(sim::Tick t) {
  gfx::FrameInfo info;
  info.composed_at = sim::Time{t};
  info.content_changed = true;
  return info;
}

TEST(OledPanelModel, BlackScreenDrawsQuiescentPower) {
  DevicePowerModel power(oled_base_params(), 60);
  OledPanelModel oled(power, OledParams::galaxy_s3_amoled());
  gfx::Framebuffer fb(720, 1280, gfx::colors::kBlack);
  oled.on_frame(content_frame(0), fb);
  EXPECT_DOUBLE_EQ(oled.current_luma(), 0.0);
  EXPECT_DOUBLE_EQ(power.auxiliary_power_mw(),
                   OledParams::galaxy_s3_amoled().black_mw);
}

TEST(OledPanelModel, WhiteScreenDrawsFullEmission) {
  DevicePowerModel power(oled_base_params(), 60);
  OledPanelModel oled(power, OledParams::galaxy_s3_amoled());
  gfx::Framebuffer fb(720, 1280, gfx::colors::kWhite);
  oled.on_frame(content_frame(0), fb);
  EXPECT_DOUBLE_EQ(oled.current_luma(), 1.0);
  EXPECT_DOUBLE_EQ(power.auxiliary_power_mw(),
                   OledParams::galaxy_s3_amoled().full_white_mw);
}

TEST(OledPanelModel, GrayIsBetweenBlackAndWhite) {
  DevicePowerModel power(oled_base_params(), 60);
  OledPanelModel oled(power, OledParams::galaxy_s3_amoled());
  gfx::Framebuffer fb(720, 1280, gfx::colors::kGray);
  oled.on_frame(content_frame(0), fb);
  EXPECT_GT(oled.current_luma(), 0.4);
  EXPECT_LT(oled.current_luma(), 0.6);
  const double mw = power.auxiliary_power_mw();
  EXPECT_GT(mw, OledParams::galaxy_s3_amoled().black_mw);
  EXPECT_LT(mw, OledParams::galaxy_s3_amoled().full_white_mw);
}

TEST(OledPanelModel, RedundantFramesSkipResampling) {
  DevicePowerModel power(oled_base_params(), 60);
  OledPanelModel oled(power, OledParams::galaxy_s3_amoled());
  gfx::Framebuffer fb(720, 1280, gfx::colors::kWhite);
  oled.on_frame(content_frame(0), fb);
  // Screen mutated but frame flagged redundant: estimate must not move.
  fb.fill(gfx::colors::kBlack);
  gfx::FrameInfo redundant;
  redundant.composed_at = sim::Time{1000};
  redundant.content_changed = false;
  oled.on_frame(redundant, fb);
  EXPECT_DOUBLE_EQ(oled.current_luma(), 1.0);
}

TEST(OledPanelModel, EnergyIntegratesLumaSteps) {
  DevicePowerModel power(oled_base_params(), 60);
  OledParams params;
  params.full_white_mw = 400.0;
  params.black_mw = 0.0;
  OledPanelModel oled(power, params);
  gfx::Framebuffer fb(720, 1280, gfx::colors::kWhite);
  oled.on_frame(content_frame(0), fb);
  // One second of white adds 400 mJ over the LCD-free base.
  const double base = power.continuous_power_mw(60) - 400.0;
  const double e = power.energy_mj_at(sim::Time{sim::kTicksPerSecond});
  EXPECT_NEAR(e, base + 400.0, 1e-6);
}

TEST(OledPanelModel, EmissionPowerFormula) {
  DevicePowerModel power(oled_base_params(), 60);
  OledParams params;
  params.black_mw = 50.0;
  params.full_white_mw = 450.0;
  OledPanelModel oled(power, params);
  EXPECT_DOUBLE_EQ(oled.emission_power_mw(0.0), 50.0);
  EXPECT_DOUBLE_EQ(oled.emission_power_mw(0.5), 250.0);
  EXPECT_DOUBLE_EQ(oled.emission_power_mw(1.0), 450.0);
}

TEST(DevicePowerModel, AuxiliaryPowerIntegratesFromSetTime) {
  DevicePowerParams p;
  p.soc_base_mw = 100.0;
  p.panel_static_mw = 0.0;
  p.panel_per_hz_mw = 0.0;
  DevicePowerModel m(p, 60);
  m.set_auxiliary_power_mw(sim::Time{sim::kTicksPerSecond}, 50.0);
  // 1 s at 100 mW + 1 s at 150 mW.
  EXPECT_DOUBLE_EQ(m.energy_mj_at(sim::Time{2 * sim::kTicksPerSecond}),
                   250.0);
}

}  // namespace
}  // namespace ccdem::power
