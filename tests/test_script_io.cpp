#include "input/script_io.h"

#include <gtest/gtest.h>

#include "input/monkey.h"

namespace ccdem::input {
namespace {

TEST(ScriptIo, RoundTripsGeneratedScript) {
  sim::Rng rng(31);
  const auto script = generate_monkey_script(
      rng, MonkeyProfile::game_app(), sim::seconds(60), {720, 1280});
  ASSERT_FALSE(script.empty());
  const auto parsed = script_from_string(script_to_string(script));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    EXPECT_EQ((*parsed)[i].start, script[i].start);
    EXPECT_EQ((*parsed)[i].kind, script[i].kind);
    EXPECT_EQ((*parsed)[i].from, script[i].from);
    EXPECT_EQ((*parsed)[i].to, script[i].to);
    if (script[i].kind == TouchGesture::Kind::kSwipe) {
      EXPECT_EQ((*parsed)[i].duration, script[i].duration);
    }
  }
}

TEST(ScriptIo, ParsesHandWrittenScript) {
  const std::string text =
      "# my script\n"
      "tap 1000000 100 200\n"
      "\n"
      "swipe 2000000 300000 50 900 60 300   # scroll up\n";
  const auto parsed = script_from_string(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].kind, TouchGesture::Kind::kTap);
  EXPECT_EQ((*parsed)[0].start, sim::Time{1'000'000});
  EXPECT_EQ((*parsed)[0].from, (gfx::Point{100, 200}));
  EXPECT_EQ((*parsed)[1].kind, TouchGesture::Kind::kSwipe);
  EXPECT_EQ((*parsed)[1].duration, sim::Duration{300'000});
  EXPECT_EQ((*parsed)[1].to, (gfx::Point{60, 300}));
}

TEST(ScriptIo, RejectsUnknownGestureKind) {
  std::string error;
  EXPECT_FALSE(script_from_string("pinch 0 1 2\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(ScriptIo, RejectsTruncatedFields) {
  std::string error;
  EXPECT_FALSE(script_from_string("tap 100\n", &error).has_value());
  EXPECT_FALSE(script_from_string("swipe 100 200 1 2 3\n").has_value());
}

TEST(ScriptIo, RejectsNegativeDuration) {
  EXPECT_FALSE(
      script_from_string("swipe 100 -5 1 2 3 4\n").has_value());
}

TEST(ScriptIo, RejectsOutOfOrderGestures) {
  const std::string text =
      "tap 2000000 1 1\n"
      "tap 1000000 2 2\n";
  std::string error;
  EXPECT_FALSE(script_from_string(text, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(ScriptIo, EmptyInputIsEmptyScript) {
  const auto parsed = script_from_string("# nothing here\n\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

}  // namespace
}  // namespace ccdem::input
