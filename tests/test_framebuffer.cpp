#include "gfx/framebuffer.h"

#include <gtest/gtest.h>

namespace ccdem::gfx {
namespace {

TEST(Pixel, PackedRoundTrip) {
  const Rgb888 c{0x12, 0x34, 0x56};
  EXPECT_EQ(c.packed(), 0x123456u);
  EXPECT_EQ(Rgb888::from_packed(0x123456u), c);
}

TEST(Pixel, Luma) {
  EXPECT_EQ(colors::kBlack.luma(), 0);
  EXPECT_EQ(colors::kWhite.luma(), 255);
  EXPECT_GT(colors::kGreen.luma(), colors::kBlue.luma());
}

TEST(Framebuffer, ConstructedFilled) {
  const Framebuffer fb(4, 3, colors::kRed);
  EXPECT_EQ(fb.width(), 4);
  EXPECT_EQ(fb.height(), 3);
  EXPECT_EQ(fb.pixel_count(), 12);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 4; ++x) EXPECT_EQ(fb.at(x, y), colors::kRed);
  }
}

TEST(Framebuffer, SetAndGet) {
  Framebuffer fb(4, 4);
  fb.set(2, 3, colors::kGreen);
  EXPECT_EQ(fb.at(2, 3), colors::kGreen);
  EXPECT_EQ(fb.at(3, 2), colors::kBlack);
}

TEST(Framebuffer, AtClampedOutOfRangeIsBlack) {
  Framebuffer fb(2, 2, colors::kWhite);
  EXPECT_EQ(fb.at_clamped(-1, 0), colors::kBlack);
  EXPECT_EQ(fb.at_clamped(0, 2), colors::kBlack);
  EXPECT_EQ(fb.at_clamped(1, 1), colors::kWhite);
}

TEST(Framebuffer, FillRectClips) {
  Framebuffer fb(10, 10);
  fb.fill_rect(Rect{8, 8, 10, 10}, colors::kBlue);
  EXPECT_EQ(fb.at(9, 9), colors::kBlue);
  EXPECT_EQ(fb.at(7, 7), colors::kBlack);
}

TEST(Framebuffer, FillRectNegativeOriginClips) {
  Framebuffer fb(10, 10);
  fb.fill_rect(Rect{-5, -5, 7, 7}, colors::kBlue);
  EXPECT_EQ(fb.at(0, 0), colors::kBlue);
  EXPECT_EQ(fb.at(1, 1), colors::kBlue);
  EXPECT_EQ(fb.at(2, 2), colors::kBlack);
}

TEST(Framebuffer, BlitCopiesRegion) {
  Framebuffer src(4, 4, colors::kRed);
  Framebuffer dst(8, 8);
  dst.blit(src, Rect{0, 0, 4, 4}, Point{2, 2});
  EXPECT_EQ(dst.at(2, 2), colors::kRed);
  EXPECT_EQ(dst.at(5, 5), colors::kRed);
  EXPECT_EQ(dst.at(6, 6), colors::kBlack);
  EXPECT_EQ(dst.at(1, 1), colors::kBlack);
}

TEST(Framebuffer, BlitClipsAtDestinationEdge) {
  Framebuffer src(4, 4, colors::kRed);
  Framebuffer dst(8, 8);
  dst.blit(src, Rect{0, 0, 4, 4}, Point{6, 6});
  EXPECT_EQ(dst.at(7, 7), colors::kRed);
  EXPECT_EQ(dst.at(5, 5), colors::kBlack);
}

TEST(Framebuffer, BlitPartialSourceRect) {
  Framebuffer src(4, 4);
  src.set(3, 3, colors::kGreen);
  Framebuffer dst(8, 8);
  dst.blit(src, Rect{3, 3, 1, 1}, Point{0, 0});
  EXPECT_EQ(dst.at(0, 0), colors::kGreen);
}

TEST(Framebuffer, ScrollUpMovesContent) {
  Framebuffer fb(4, 8);
  fb.fill_rect(Rect{0, 4, 4, 1}, colors::kYellow);  // marker row at y=4
  fb.scroll_up(Rect{0, 0, 4, 8}, 2);
  EXPECT_EQ(fb.at(0, 2), colors::kYellow);
  EXPECT_EQ(fb.at(0, 4), colors::kBlack);
}

TEST(Framebuffer, ScrollUpByRegionHeightIsNoop) {
  Framebuffer fb(4, 4, colors::kRed);
  fb.scroll_up(Rect{0, 0, 4, 4}, 4);
  EXPECT_EQ(fb.at(0, 0), colors::kRed);
}

TEST(Framebuffer, ShiftMovesContentBothAxes) {
  Framebuffer fb(8, 8);
  fb.set(2, 2, colors::kYellow);
  fb.shift(Rect{0, 0, 8, 8}, 3, 4);
  EXPECT_EQ(fb.at(5, 6), colors::kYellow);
}

TEST(Framebuffer, ShiftNegativeOffsets) {
  Framebuffer fb(8, 8);
  fb.set(5, 6, colors::kRed);
  fb.shift(Rect{0, 0, 8, 8}, -3, -4);
  EXPECT_EQ(fb.at(2, 2), colors::kRed);
}

TEST(Framebuffer, ShiftLeavesVacatedBandsUntouched) {
  Framebuffer fb(8, 8, colors::kGray);
  fb.shift(Rect{0, 0, 8, 8}, 2, 0);
  // The left band keeps its old pixels (caller repaints it).
  EXPECT_EQ(fb.at(0, 0), colors::kGray);
  EXPECT_EQ(fb.at(7, 7), colors::kGray);
}

TEST(Framebuffer, ShiftMatchesCopyReference) {
  // Differential check against an out-of-place reference for all four
  // direction combinations.
  for (const auto& [dx, dy] : {std::pair{2, 3}, std::pair{-2, 3},
                              std::pair{2, -3}, std::pair{-2, -3}}) {
    Framebuffer fb(16, 16);
    for (int y = 0; y < 16; ++y) {
      for (int x = 0; x < 16; ++x) {
        fb.set(x, y, Rgb888{static_cast<std::uint8_t>(x * 16),
                            static_cast<std::uint8_t>(y * 16), 7});
      }
    }
    const Framebuffer before = fb;
    fb.shift(Rect{0, 0, 16, 16}, dx, dy);
    for (int y = 0; y < 16; ++y) {
      for (int x = 0; x < 16; ++x) {
        const int sx = x - dx, sy = y - dy;
        if (sx >= 0 && sx < 16 && sy >= 0 && sy < 16) {
          ASSERT_EQ(fb.at(x, y), before.at(sx, sy))
              << "dx=" << dx << " dy=" << dy << " at " << x << "," << y;
        }
      }
    }
  }
}

TEST(Framebuffer, ShiftByRegionSizeIsNoop) {
  Framebuffer fb(8, 8, colors::kBlue);
  fb.set(0, 0, colors::kRed);
  fb.shift(Rect{0, 0, 8, 8}, 8, 0);
  EXPECT_EQ(fb.at(0, 0), colors::kRed);  // untouched
}

TEST(Framebuffer, EqualsDetectsDifferences) {
  Framebuffer a(4, 4), b(4, 4);
  EXPECT_TRUE(a.equals(b));
  b.set(1, 1, colors::kRed);
  EXPECT_FALSE(a.equals(b));
}

TEST(Framebuffer, EqualsRequiresSameSize) {
  Framebuffer a(4, 4), b(4, 5);
  EXPECT_FALSE(a.equals(b));
}

TEST(Framebuffer, RegionEqualsIgnoresOutside) {
  Framebuffer a(8, 8), b(8, 8);
  b.set(7, 7, colors::kRed);
  EXPECT_TRUE(a.region_equals(b, Rect{0, 0, 4, 4}));
  EXPECT_FALSE(a.region_equals(b, Rect{4, 4, 4, 4}));
}

TEST(Framebuffer, ContentHashChangesWithContent) {
  Framebuffer a(16, 16), b(16, 16);
  EXPECT_EQ(a.content_hash(), b.content_hash());
  b.set(5, 5, Rgb888{1, 0, 0});
  EXPECT_NE(a.content_hash(), b.content_hash());
}

TEST(Framebuffer, RowSpanHasWidth) {
  Framebuffer fb(6, 2);
  EXPECT_EQ(fb.row(0).size(), 6u);
  EXPECT_EQ(fb.pixels().size(), 12u);
}

}  // namespace
}  // namespace ccdem::gfx
