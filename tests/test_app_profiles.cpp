#include "apps/app_profiles.h"

#include <gtest/gtest.h>

#include <set>

namespace ccdem::apps {
namespace {

TEST(AppProfiles, FifteenGeneralAndFifteenGames) {
  EXPECT_EQ(general_apps().size(), 15u);
  EXPECT_EQ(game_apps().size(), 15u);
  EXPECT_EQ(all_apps().size(), 30u);
}

TEST(AppProfiles, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& s : all_apps()) names.insert(s.name);
  EXPECT_EQ(names.size(), 30u);
}

TEST(AppProfiles, CategoriesMatchLists) {
  for (const auto& s : general_apps()) {
    EXPECT_EQ(s.category, AppSpec::Category::kGeneral) << s.name;
  }
  for (const auto& s : game_apps()) {
    EXPECT_EQ(s.category, AppSpec::Category::kGame) << s.name;
  }
}

TEST(AppProfiles, GamesAllRequestAboveThirtyFps) {
  // Fig. 3: "all the game applications update the display at more than
  // 30 fps".
  for (const auto& s : game_apps()) {
    EXPECT_GT(s.idle_request_fps, 30.0) << s.name;
  }
}

TEST(AppProfiles, MostGamesPostTwentyRedundantFps) {
  // Fig. 3(d): 80 % of games have more than 20 redundant frames per second.
  int heavy = 0;
  for (const auto& s : game_apps()) {
    const double redundant = s.idle_request_fps - s.scene.game_content_fps;
    if (redundant > 20.0) ++heavy;
  }
  EXPECT_GE(heavy, 12);  // >= 80 % of 15
}

TEST(AppProfiles, SomeGeneralAppsPostManyRedundantFrames) {
  // Fig. 3(d): ~40 % of general apps show ~20 redundant fps.
  int heavy = 0;
  for (const auto& s : general_apps()) {
    double content = s.scene.idle_content_fps;
    if (s.scene.type == SceneSpec::Type::kVideo) content = s.scene.video_fps;
    if (s.idle_request_fps - content >= 14.0) ++heavy;
  }
  EXPECT_GE(heavy, 4);
  EXPECT_LE(heavy, 8);
}

TEST(AppProfiles, MostGeneralAppsRequestUnderThirtyFps) {
  int low = 0;
  for (const auto& s : general_apps()) {
    if (s.idle_request_fps < 30.0) ++low;
  }
  EXPECT_EQ(low, 15);
}

TEST(AppProfiles, LookupByName) {
  const AppSpec fb = app_by_name("Facebook");
  EXPECT_EQ(fb.name, "Facebook");
  EXPECT_EQ(fb.category, AppSpec::Category::kGeneral);
  const AppSpec js = app_by_name("Jelly Splash");
  EXPECT_EQ(js.category, AppSpec::Category::kGame);
  // Jelly Splash requests ~60 fps but its content is an order of magnitude
  // slower (Fig. 2).
  EXPECT_GE(js.idle_request_fps, 55.0);
  EXPECT_LE(js.scene.game_content_fps, 15.0);
}

TEST(AppProfiles, PaperAppNamesPresent) {
  for (const char* name :
       {"Facebook", "KakaoTalk", "MX Player", "Daum Maps", "Cash Slide",
        "Tiny Flashlight", "Jelly Splash", "TempleRun", "Asphalt 8",
        "Cookie Run"}) {
    EXPECT_NO_FATAL_FAILURE(app_by_name(name));
  }
}

TEST(AppProfiles, WallpaperProfileForAccuracyStudy) {
  const AppSpec w = nexus_revampled_wallpaper();
  EXPECT_EQ(w.scene.type, SceneSpec::Type::kWallpaper);
  // Section 4.1: frame rate below 25 fps; small dots (tiny relative to the
  // 921K-pixel screen, sized to straddle the 9K grid stride).
  EXPECT_LT(w.idle_request_fps, 25.0);
  EXPECT_LE(w.scene.dot_radius, 8);
  EXPECT_LE(w.scene.dot_count, 6);
}

TEST(AppProfiles, RenderEnergyGamesAboveGeneral) {
  double game_sum = 0.0, general_sum = 0.0;
  for (const auto& s : game_apps()) game_sum += s.render_mj_per_frame;
  for (const auto& s : general_apps()) general_sum += s.render_mj_per_frame;
  EXPECT_GT(game_sum / 15.0, general_sum / 15.0);
}

TEST(AppProfiles, MonkeyProfilesMatchCategory) {
  const double general_gap = input::MonkeyProfile::general_app().mean_gap_s;
  for (const auto& s : game_apps()) {
    EXPECT_LT(s.monkey.mean_gap_s, general_gap) << s.name;
  }
}

}  // namespace
}  // namespace ccdem::apps
