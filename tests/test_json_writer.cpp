// JsonWriter unit tests: structure bookkeeping, escaping, and the
// round-trippable double formatting (shortest text that strtod's back to
// the exact value; NaN/inf rejected at the writer).
#include "harness/json_writer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace ccdem::harness {
namespace {

std::string emit_double(double d) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_array();
  w.value(d);
  w.end_array();
  const std::string text = os.str();
  // "[...]\n" -> the number between the brackets.
  const auto open = text.find('[');
  const auto close = text.rfind(']');
  return text.substr(open + 1, close - open - 1);
}

TEST(JsonWriter, EmitsNestedStructure) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.kv("name", "fleet");
  w.kv("runs", std::uint64_t{3});
  w.key("tags");
  w.begin_array();
  w.value("a");
  w.value("b");
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), "{\"name\":\"fleet\",\"runs\":3,\"tags\":[\"a\",\"b\"]}\n");
}

TEST(JsonWriter, EscapesControlBytesAndQuotes) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd\te\rf"),
            "a\\\"b\\\\c\\nd\\te\\rf");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, DoublesRoundTripBitExactly) {
  const double cases[] = {
      0.0,
      -0.0,
      1.0,
      1.0 / 3.0,
      0.1,
      2.0 / 7.0,
      6.02214076e23,
      -1.7976931348623157e308,  // DBL_MAX, negated
      4.9406564584124654e-324,  // denormal min
      1234.5678,
      1e-7,
      123456789012345.67,
  };
  for (const double d : cases) {
    const std::string text = emit_double(d);
    const double back = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(back, d) << "emitted '" << text << "'";
  }
  // Deterministic sweep over a few thousand synthesized bit patterns.
  std::uint64_t bits = 0x3ff123456789abcdULL;
  for (int i = 0; i < 4096; ++i) {
    bits = bits * 6364136223846793005ULL + 1442695040888963407ULL;
    double d;
    static_assert(sizeof d == sizeof bits);
    std::memcpy(&d, &bits, sizeof d);
    if (!std::isfinite(d)) continue;
    const std::string text = emit_double(d);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), d)
        << "bits=" << std::hex << bits << " emitted '" << text << "'";
  }
}

TEST(JsonWriter, ShortValuesStayShort) {
  // The escalation loop must not pad simple values to 17 digits.
  EXPECT_EQ(emit_double(0.0), "0");
  EXPECT_EQ(emit_double(1.0), "1");
  EXPECT_EQ(emit_double(0.5), "0.5");
  EXPECT_EQ(emit_double(100.0), "100");
  EXPECT_EQ(emit_double(0.25), "0.25");
}

TEST(JsonWriter, RejectsNonFiniteDoubles) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_array();
  EXPECT_THROW(w.value(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(w.value(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(w.value(-std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  // The writer is still usable after a rejected value.
  w.value(1.0);
  w.end_array();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), "[1]\n");
}

TEST(JsonWriter, IndentedOutputIsStable) {
  std::ostringstream os;
  JsonWriter w(os);  // default indent=2
  w.begin_object();
  w.kv("power_mw", 123.25);
  w.end_object();
  EXPECT_EQ(os.str(), "{\n  \"power_mw\": 123.25\n}\n");
}

}  // namespace
}  // namespace ccdem::harness
