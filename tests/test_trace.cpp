#include "sim/trace.h"

#include <gtest/gtest.h>

namespace ccdem::sim {
namespace {

Trace make_trace(std::initializer_list<std::pair<Tick, double>> pts) {
  Trace t("test");
  for (const auto& [tick, v] : pts) t.record(Time{tick}, v);
  return t;
}

TEST(Trace, EmptyStats) {
  Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
  EXPECT_DOUBLE_EQ(t.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(t.min(), 0.0);
  EXPECT_DOUBLE_EQ(t.max(), 0.0);
}

TEST(Trace, MeanMinMax) {
  const Trace t = make_trace({{0, 1.0}, {1, 2.0}, {2, 6.0}});
  EXPECT_DOUBLE_EQ(t.mean(), 3.0);
  EXPECT_DOUBLE_EQ(t.min(), 1.0);
  EXPECT_DOUBLE_EQ(t.max(), 6.0);
}

TEST(Trace, SampleStddev) {
  const Trace t = make_trace({{0, 2.0}, {1, 4.0}, {2, 4.0}, {3, 4.0},
                              {4, 5.0}, {5, 5.0}, {6, 7.0}, {7, 9.0}});
  EXPECT_NEAR(t.stddev(), 2.138, 0.001);
}

TEST(Trace, MeanBetween) {
  const Trace t = make_trace({{0, 1.0}, {100, 3.0}, {200, 5.0}, {300, 7.0}});
  EXPECT_DOUBLE_EQ(t.mean_between(Time{100}, Time{300}), 4.0);
}

TEST(Trace, ValueAtStepSemantics) {
  const Trace t = make_trace({{100, 60.0}, {200, 20.0}});
  EXPECT_DOUBLE_EQ(t.value_at(Time{50}, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(t.value_at(Time{100}), 60.0);
  EXPECT_DOUBLE_EQ(t.value_at(Time{150}), 60.0);
  EXPECT_DOUBLE_EQ(t.value_at(Time{200}), 20.0);
  EXPECT_DOUBLE_EQ(t.value_at(Time{10'000}), 20.0);
}

TEST(Trace, TimeWeightedMeanOfStepSignal) {
  // 60 for 1 s, then 20 for 1 s -> mean 40 over [0, 2 s).
  const Trace t = make_trace({{0, 60.0}, {kTicksPerSecond, 20.0}});
  EXPECT_DOUBLE_EQ(
      t.time_weighted_mean(Time{}, Time{2 * kTicksPerSecond}), 40.0);
}

TEST(Trace, TimeWeightedMeanUnevenDurations) {
  // 60 for 3 s, then 20 for 1 s -> (180 + 20) / 4 = 50.
  const Trace t = make_trace({{0, 60.0}, {3 * kTicksPerSecond, 20.0}});
  EXPECT_DOUBLE_EQ(
      t.time_weighted_mean(Time{}, Time{4 * kTicksPerSecond}), 50.0);
}

TEST(Trace, TimeWeightedMeanBeforeFirstPointUsesFirstValue) {
  const Trace t = make_trace({{kTicksPerSecond, 40.0}});
  EXPECT_DOUBLE_EQ(
      t.time_weighted_mean(Time{}, Time{2 * kTicksPerSecond}), 40.0);
}

TEST(Trace, ResampleAveragesWithinBuckets) {
  const Trace t = make_trace({{100'000, 2.0}, {200'000, 4.0}, {1'100'000, 10.0}});
  const Trace r = t.resample(seconds(1), Time{}, Time{2 * kTicksPerSecond});
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r.points()[0].value, 3.0);
  EXPECT_DOUBLE_EQ(r.points()[1].value, 10.0);
}

TEST(Trace, ResampleHoldsThroughEmptyBuckets) {
  const Trace t = make_trace({{0, 5.0}});
  const Trace r = t.resample(seconds(1), Time{}, Time{3 * kTicksPerSecond});
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r.points()[1].value, 5.0);
  EXPECT_DOUBLE_EQ(r.points()[2].value, 5.0);
}

TEST(Trace, ResampleUsesPriorValueBeforeWindow) {
  const Trace t = make_trace({{0, 7.0}});
  const Trace r = t.resample(seconds(1), Time{5 * kTicksPerSecond},
                             Time{6 * kTicksPerSecond});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r.points()[0].value, 7.0);
}

TEST(Trace, DifferenceIsPointwise) {
  const Trace a = make_trace({{0, 10.0}, {1, 20.0}});
  const Trace b = make_trace({{0, 4.0}, {1, 5.0}});
  const Trace d = Trace::difference(a, b);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.points()[0].value, 6.0);
  EXPECT_DOUBLE_EQ(d.points()[1].value, 15.0);
}

TEST(Trace, NamePropagates) {
  Trace t("refresh");
  EXPECT_EQ(t.name(), "refresh");
}

}  // namespace
}  // namespace ccdem::sim
