#include "metrics/quality.h"

#include <gtest/gtest.h>

namespace ccdem::metrics {
namespace {

sim::Trace per_second(std::initializer_list<double> values) {
  sim::Trace t("content");
  sim::Tick tick = 0;
  for (double v : values) {
    t.record(sim::Time{tick}, v);
    tick += sim::kTicksPerSecond;
  }
  return t;
}

TEST(Quality, PerfectDeliveryIsHundredPercent) {
  const auto actual = per_second({10, 10, 10, 10});
  const QualityReport r = compare_quality(actual, actual);
  EXPECT_DOUBLE_EQ(r.display_quality_pct, 100.0);
  EXPECT_DOUBLE_EQ(r.dropped_fps, 0.0);
  EXPECT_DOUBLE_EQ(r.actual_content_fps, 10.0);
}

TEST(Quality, HalfDeliveryIsFiftyPercent) {
  const QualityReport r = compare_quality(per_second({10, 10, 10, 10}),
                                          per_second({5, 5, 5, 5}));
  EXPECT_DOUBLE_EQ(r.display_quality_pct, 50.0);
  EXPECT_DOUBLE_EQ(r.dropped_fps, 5.0);
}

TEST(Quality, OverDeliveryCapsAtHundred) {
  const QualityReport r = compare_quality(per_second({10, 10}),
                                          per_second({12, 12}));
  EXPECT_DOUBLE_EQ(r.display_quality_pct, 100.0);
  EXPECT_DOUBLE_EQ(r.dropped_fps, 0.0);
}

TEST(Quality, DropsOnlyCountShortfallSeconds) {
  // Second 1 over-delivers, second 2 under-delivers; drops do not cancel.
  const QualityReport r = compare_quality(per_second({10, 10}),
                                          per_second({14, 6}));
  EXPECT_DOUBLE_EQ(r.dropped_fps, 2.0);
}

TEST(Quality, EmptyTracesGiveZeroReport) {
  const QualityReport r = compare_quality(sim::Trace{}, per_second({1}));
  EXPECT_DOUBLE_EQ(r.display_quality_pct, 0.0);
}

TEST(Quality, ZeroActualContentIsPerfectQuality) {
  // A fully static app loses nothing under rate control.
  const QualityReport r = compare_quality(per_second({0, 0, 0}),
                                          per_second({0, 0, 0}));
  EXPECT_DOUBLE_EQ(r.display_quality_pct, 100.0);
}

TEST(Quality, MisalignedTracesUseOverlap) {
  sim::Trace actual("a");
  actual.record(sim::Time{0}, 10.0);
  actual.record(sim::Time{sim::kTicksPerSecond}, 10.0);
  actual.record(sim::Time{2 * sim::kTicksPerSecond}, 10.0);
  sim::Trace delivered("d");
  delivered.record(sim::Time{sim::kTicksPerSecond}, 5.0);
  delivered.record(sim::Time{2 * sim::kTicksPerSecond}, 5.0);
  const QualityReport r = compare_quality(actual, delivered);
  EXPECT_DOUBLE_EQ(r.display_quality_pct, 50.0);
}

}  // namespace
}  // namespace ccdem::metrics
