#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ccdem::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(Time{30}, [&](Time) { order.push_back(3); });
  q.schedule_at(Time{10}, [&](Time) { order.push_back(1); });
  q.schedule_at(Time{20}, [&](Time) { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(Time{5}, [&](Time) { order.push_back(1); });
  q.schedule_at(Time{5}, [&](Time) { order.push_back(2); });
  q.schedule_at(Time{5}, [&](Time) { order.push_back(3); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ReportsNextTime) {
  EventQueue q;
  q.schedule_at(Time{42}, [](Time) {});
  EXPECT_EQ(q.next_time(), Time{42});
}

TEST(EventQueue, RunNextReturnsEventTime) {
  EventQueue q;
  q.schedule_at(Time{17}, [](Time) {});
  EXPECT_EQ(q.run_next(), Time{17});
}

TEST(EventQueue, CallbackReceivesEventTime) {
  EventQueue q;
  Time seen{};
  q.schedule_at(Time{99}, [&](Time t) { seen = t; });
  q.run_next();
  EXPECT_EQ(seen, Time{99});
}

TEST(EventQueue, PastEventsClampToLastPopped) {
  EventQueue q;
  std::vector<Tick> times;
  q.schedule_at(Time{100}, [&](Time t) {
    times.push_back(t.ticks);
    // Scheduling in the past must clamp to "now", not run before it.
    q.schedule_at(Time{50}, [&](Time t2) { times.push_back(t2.ticks); });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(times, (std::vector<Tick>{100, 100}));
}

TEST(EventQueue, CancelPendingEvent) {
  EventQueue q;
  bool ran = false;
  const EventHandle h = q.schedule_at(Time{10}, [&](Time) { ran = true; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventHandle h = q.schedule_at(Time{10}, [](Time) {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelFiredEventIsNoop) {
  EventQueue q;
  const EventHandle h = q.schedule_at(Time{10}, [](Time) {});
  q.run_next();
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelDefaultHandleIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventHandle{}));
}

TEST(EventQueue, CancelMiddleEventSkipsIt) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(Time{10}, [&](Time) { order.push_back(1); });
  const EventHandle h =
      q.schedule_at(Time{20}, [&](Time) { order.push_back(2); });
  q.schedule_at(Time{30}, [&](Time) { order.push_back(3); });
  q.cancel(h);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventHandle h = q.schedule_at(Time{10}, [](Time) {});
  q.schedule_at(Time{20}, [](Time) {});
  q.cancel(h);
  EXPECT_EQ(q.next_time(), Time{20});
}

TEST(EventQueue, EventsScheduledDuringRunAreProcessed) {
  EventQueue q;
  int count = 0;
  q.schedule_at(Time{10}, [&](Time t) {
    ++count;
    q.schedule_at(t + Duration{5}, [&](Time) { ++count; });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace ccdem::sim
