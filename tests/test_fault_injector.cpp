#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "display/display_panel.h"
#include "input/input_dispatcher.h"
#include "obs/obs.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ccdem::fault {
namespace {

using display::DisplayPanel;
using display::RefreshRateSet;

input::TouchEvent touch_at(sim::Tick t) {
  return input::TouchEvent{sim::Time{t}, {0, 0},
                           input::TouchEvent::Action::kDown};
}

TEST(FaultInjector, EmptyPlanInjectsNothing) {
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet::galaxy_s3(), 60);
  FaultInjector inj(sim, FaultPlan{}, sim::Rng(1));
  inj.attach_panel(&panel);
  sim.run_for(sim::seconds(5));
  EXPECT_TRUE(panel.set_refresh_rate(20).changed);
  sim.run_for(sim::seconds(5));
  EXPECT_EQ(inj.switch_naks(), 0u);
  EXPECT_EQ(inj.switch_delays(), 0u);
  EXPECT_EQ(inj.stuck_episodes(), 0u);
  EXPECT_EQ(inj.capability_losses(), 0u);
  EXPECT_EQ(panel.refresh_hz(), 20);
}

TEST(FaultInjector, DeterministicForSameSeedAndPlan) {
  const FaultPlan plan = FaultPlan::nominal().scaled(10.0);
  std::vector<bool> acks_a, acks_b;
  for (std::vector<bool>* acks : {&acks_a, &acks_b}) {
    sim::Simulator sim;
    FaultInjector inj(sim, plan, sim::Rng(99));
    for (int i = 0; i < 200; ++i) {
      acks->push_back(
          inj.on_switch_request(sim::Time{i * 1000}, 60, 30).ack);
    }
  }
  EXPECT_EQ(acks_a, acks_b);
}

TEST(FaultInjector, NakRateTracksProbability) {
  FaultPlan plan;
  plan.switch_nak_p = 0.3;
  sim::Simulator sim;
  FaultInjector inj(sim, plan, sim::Rng(7));
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    (void)inj.on_switch_request(sim::Time{i}, 60, 30);
  }
  const double rate =
      static_cast<double>(inj.switch_naks()) / static_cast<double>(kTrials);
  EXPECT_NEAR(rate, 0.3, 0.03);
}

TEST(FaultInjector, SettleDelaysStayInConfiguredBounds) {
  FaultPlan plan;
  plan.switch_delay_p = 1.0;
  plan.switch_delay_min = sim::milliseconds(4);
  plan.switch_delay_max = sim::milliseconds(40);
  sim::Simulator sim;
  FaultInjector inj(sim, plan, sim::Rng(5));
  for (int i = 0; i < 500; ++i) {
    const auto d = inj.on_switch_request(sim::Time{i}, 60, 30);
    ASSERT_TRUE(d.ack);
    EXPECT_GE(d.settle.ticks, plan.switch_delay_min.ticks);
    EXPECT_LT(d.settle.ticks, plan.switch_delay_max.ticks);
  }
  EXPECT_EQ(inj.switch_delays(), 500u);
}

TEST(FaultInjector, StuckEpisodesRefuseEverySwitch) {
  FaultPlan plan;
  plan.stuck_per_s = 5.0;  // several episodes over the run
  plan.stuck_duration = sim::milliseconds(300);
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet::galaxy_s3(), 60);
  FaultInjector inj(sim, plan, sim::Rng(3));
  inj.attach_panel(&panel);
  sim.run_for(sim::seconds(10));
  ASSERT_GT(inj.stuck_episodes(), 0u);
  // Synthesize a request during a live episode: force one by querying right
  // after an episode begins.  panel_stuck() exposes the live window.
  bool saw_stuck_nak = false;
  for (int i = 0; i < 20'000 && !saw_stuck_nak; ++i) {
    const sim::Time t = sim.now() + sim::Duration{i};
    if (inj.panel_stuck(t)) {
      EXPECT_FALSE(inj.on_switch_request(t, 60, 30).ack);
      saw_stuck_nak = true;
    }
  }
  // Episodes may all have drained by now; the counter check above is the
  // hard assertion, this one only fires when a window is live.
  SUCCEED();
}

TEST(FaultInjector, CapabilityLossNeverRevokesTheMaximum) {
  FaultPlan plan;
  plan.capability_loss_per_s = 10.0;
  plan.capability_loss_duration = sim::milliseconds(500);
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet::galaxy_s3(), 60);
  FaultInjector inj(sim, plan, sim::Rng(11));
  inj.attach_panel(&panel);
  bool saw_narrowed = false;
  for (int step = 0; step < 200; ++step) {
    sim.run_for(sim::milliseconds(100));
    EXPECT_TRUE(panel.advertised_rates().supports(60));
    EXPECT_FALSE(panel.advertised_rates().empty());
    if (panel.advertised_rates().count() < panel.rates().count()) {
      saw_narrowed = true;
    }
  }
  EXPECT_GT(inj.capability_losses(), 0u);
  EXPECT_TRUE(saw_narrowed);
}

TEST(FaultInjector, CapabilityLossesAreTransient) {
  FaultPlan plan;
  plan.capability_loss_per_s = 10.0;
  plan.capability_loss_duration = sim::milliseconds(200);
  plan.active_until = sim::Time{5'000'000};
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet::galaxy_s3(), 60);
  FaultInjector inj(sim, plan, sim::Rng(11));
  inj.attach_panel(&panel);
  sim.run_for(sim::seconds(5));
  ASSERT_GT(inj.capability_losses(), 0u);
  // After the plan window plus the longest episode tail, every revoked rate
  // must be re-advertised.
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(panel.advertised_rates().count(), panel.rates().count());
}

TEST(FaultInjector, TouchDropVerdicts) {
  FaultPlan plan;
  plan.touch_drop_p = 1.0;
  sim::Simulator sim;
  FaultInjector inj(sim, plan, sim::Rng(2));
  const auto v = inj.on_event(touch_at(1000));
  EXPECT_TRUE(v.drop);
  EXPECT_FALSE(v.duplicate);
  EXPECT_EQ(v.delay.ticks, 0);
  EXPECT_EQ(inj.touch_dropped(), 1u);
}

TEST(FaultInjector, TouchDelayBoundsRespected) {
  FaultPlan plan;
  plan.touch_delay_p = 1.0;
  plan.touch_delay_min = sim::milliseconds(8);
  plan.touch_delay_max = sim::milliseconds(60);
  sim::Simulator sim;
  FaultInjector inj(sim, plan, sim::Rng(2));
  for (int i = 0; i < 300; ++i) {
    const auto v = inj.on_event(touch_at(i));
    EXPECT_FALSE(v.drop);
    EXPECT_GE(v.delay.ticks, plan.touch_delay_min.ticks);
    EXPECT_LT(v.delay.ticks, plan.touch_delay_max.ticks);
  }
  EXPECT_EQ(inj.touch_delayed(), 300u);
}

TEST(FaultInjector, DispatcherDropsAndDuplicates) {
  // drop_p = 1: nothing is delivered.
  {
    sim::Simulator sim;
    input::InputDispatcher d(sim);
    FaultPlan plan;
    plan.touch_drop_p = 1.0;
    FaultInjector inj(sim, plan, sim::Rng(4));
    inj.attach_input(&d);
    input::TouchGesture g;
    g.start = sim::Time{0};
    g.duration = sim::milliseconds(60);
    d.schedule_script({g});
    sim.run_for(sim::seconds(1));
    EXPECT_EQ(d.events_delivered(), 0u);
    EXPECT_EQ(inj.touch_dropped(), 2u);  // down + up
  }
  // dup_p = 1: every event arrives twice.
  {
    sim::Simulator sim;
    input::InputDispatcher d(sim);
    FaultPlan plan;
    plan.touch_dup_p = 1.0;
    FaultInjector inj(sim, plan, sim::Rng(4));
    inj.attach_input(&d);
    input::TouchGesture g;
    g.start = sim::Time{0};
    g.duration = sim::milliseconds(60);
    d.schedule_script({g});
    sim.run_for(sim::seconds(1));
    EXPECT_EQ(d.events_delivered(), 4u);  // (down + up) x 2
  }
}

TEST(FaultInjector, DelayedEventsKeepOriginalTimestamps) {
  sim::Simulator sim;
  input::InputDispatcher d(sim);
  FaultPlan plan;
  plan.touch_delay_p = 1.0;
  plan.touch_delay_min = sim::milliseconds(10);
  plan.touch_delay_max = sim::milliseconds(20);
  FaultInjector inj(sim, plan, sim::Rng(4));
  inj.attach_input(&d);

  struct Probe final : input::TouchListener {
    std::vector<input::TouchEvent> events;
    sim::Simulator* sim;
    std::vector<sim::Time> delivered_at;
    void on_touch(const input::TouchEvent& e) override {
      events.push_back(e);
      delivered_at.push_back(sim->now());
    }
  } probe;
  probe.sim = &sim;
  d.add_listener(&probe);

  input::TouchGesture g;
  g.start = sim::Time{100'000};
  g.duration = sim::milliseconds(60);
  d.schedule_script({g});
  sim.run_for(sim::seconds(1));
  ASSERT_EQ(probe.events.size(), 2u);
  for (std::size_t i = 0; i < probe.events.size(); ++i) {
    // Late wall-clock delivery, but the event's own timestamp is original.
    EXPECT_GT(probe.delivered_at[i].ticks, probe.events[i].t.ticks);
  }
  EXPECT_EQ(inj.touch_delayed(), 2u);
}

TEST(FaultInjector, BitflipCorruptsExactlyOneBit) {
  FaultPlan plan;
  plan.meter_bitflip_p = 1.0;
  sim::Simulator sim;
  FaultInjector inj(sim, plan, sim::Rng(8));
  std::vector<gfx::Rgb888> samples(64);
  const std::vector<gfx::Rgb888> before = samples;
  inj.corrupt_samples(sim::Time{1}, samples);
  int bits_changed = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    bits_changed += __builtin_popcount(
        static_cast<unsigned>(samples[i].r ^ before[i].r) |
        static_cast<unsigned>(samples[i].g ^ before[i].g) << 8 |
        static_cast<unsigned>(samples[i].b ^ before[i].b) << 16);
  }
  EXPECT_EQ(bits_changed, 1);
  EXPECT_EQ(inj.meter_bitflips(), 1u);
}

TEST(FaultInjector, ActiveUntilCutsFaultsOff) {
  FaultPlan plan;
  plan.switch_nak_p = 1.0;
  plan.touch_drop_p = 1.0;
  plan.meter_bitflip_p = 1.0;
  plan.active_until = sim::Time{1'000'000};
  sim::Simulator sim;
  FaultInjector inj(sim, plan, sim::Rng(6));
  EXPECT_FALSE(inj.on_switch_request(sim::Time{999'999}, 60, 30).ack);
  EXPECT_TRUE(inj.on_switch_request(sim::Time{1'000'000}, 60, 30).ack);
  EXPECT_TRUE(inj.on_event(touch_at(999'999)).drop);
  EXPECT_FALSE(inj.on_event(touch_at(1'000'000)).drop);
  std::vector<gfx::Rgb888> samples(8);
  inj.corrupt_samples(sim::Time{2'000'000}, samples);
  EXPECT_EQ(inj.meter_bitflips(), 0u);
}

TEST(FaultInjector, RegistersFaultCountersOnlyWhenConstructed) {
  obs::ObsSink obs;
  sim::Simulator sim;
  EXPECT_FALSE(obs.counters.has_counter("fault.switch_naks"));
  FaultInjector inj(sim, FaultPlan::nominal(), sim::Rng(1), &obs);
  EXPECT_TRUE(obs.counters.has_counter("fault.switch_naks"));
  EXPECT_TRUE(obs.counters.has_counter("fault.meter_bitflips"));
  (void)inj.on_switch_request(sim::Time{0}, 60, 30);
  EXPECT_EQ(obs.counters.value("fault.switch_naks"), inj.switch_naks());
}

}  // namespace
}  // namespace ccdem::fault
