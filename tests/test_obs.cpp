// Unit tests for the observability primitives: the counter registry, the
// span ring buffer, and the two trace exporters (Chrome JSON + CSV).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "obs/trace_export.h"

using namespace ccdem;
using obs::Counters;
using obs::Phase;
using obs::Span;
using obs::SpanRecorder;

namespace {

Span make_span(std::int64_t ts, std::uint64_t frame, Phase phase,
               std::int64_t dur = 0, std::int64_t arg = 0) {
  return Span{sim::Time{ts}, sim::Duration{dur}, frame, arg, phase};
}

}  // namespace

// --- Counters ---------------------------------------------------------------

TEST(Counters, SlotRegistersAtZeroAndStaysStable) {
  Counters c;
  std::uint64_t& slot = c.counter("flinger.frames");
  EXPECT_EQ(slot, 0u);
  slot += 3;
  // Registering many more names must not move the first slot.
  for (int i = 0; i < 1000; ++i) {
    c.counter("pad." + std::to_string(i)) = static_cast<std::uint64_t>(i);
  }
  EXPECT_EQ(&slot, &c.counter("flinger.frames"));
  EXPECT_EQ(c.value("flinger.frames"), 3u);
  EXPECT_EQ(c.value("never.registered"), 0u);
  EXPECT_TRUE(c.has_counter("flinger.frames"));
  EXPECT_FALSE(c.has_counter("never.registered"));
}

TEST(Counters, GaugesAreIndependentOfCounters) {
  Counters c;
  c.set_gauge("refresh_hz", 48.0);
  c.add("refresh_hz", 2);  // a *counter* with the same name
  EXPECT_DOUBLE_EQ(c.gauge_value("refresh_hz"), 48.0);
  EXPECT_EQ(c.value("refresh_hz"), 2u);
}

TEST(Counters, SnapshotIsNameSorted) {
  Counters c;
  c.add("zeta", 1);
  c.add("alpha", 2);
  c.add("mid", 3);
  c.set_gauge("z_gauge", 1.0);
  c.set_gauge("a_gauge", 2.0);
  const Counters::Snapshot snap = c.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zeta");
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].first, "a_gauge");
  EXPECT_EQ(snap.gauges[1].first, "z_gauge");
}

TEST(Counters, MergeAddsCountersAndKeepsMaxGauge) {
  Counters a;
  a.add("shared", 10);
  a.add("only_a", 1);
  a.set_gauge("g", 5.0);
  Counters b;
  b.add("shared", 32);
  b.add("only_b", 2);
  b.set_gauge("g", 3.0);

  a.merge(b);
  EXPECT_EQ(a.value("shared"), 42u);
  EXPECT_EQ(a.value("only_a"), 1u);
  EXPECT_EQ(a.value("only_b"), 2u);
  EXPECT_DOUBLE_EQ(a.gauge_value("g"), 5.0);

  // Merge is commutative on counters: b + a gives the same totals.
  Counters b2;
  b2.add("shared", 32);
  b2.add("only_b", 2);
  Counters a2;
  a2.add("shared", 10);
  a2.add("only_a", 1);
  b2.merge(a2);
  EXPECT_EQ(b2.value("shared"), a.value("shared"));
  EXPECT_EQ(b2.value("only_a"), a.value("only_a"));
  EXPECT_EQ(b2.value("only_b"), a.value("only_b"));
}

TEST(Counters, CopyIsDeepAndIndependent) {
  Counters a;
  std::uint64_t& slot = a.counter("x");
  slot = 7;
  Counters b = a;
  b.counter("x") += 1;
  EXPECT_EQ(a.value("x"), 7u);
  EXPECT_EQ(b.value("x"), 8u);
  // The copy's slot must be its own storage, not an alias of the original.
  EXPECT_NE(&b.counter("x"), &slot);
}

TEST(Counters, ClearDropsEverything) {
  Counters c;
  c.add("x", 1);
  c.set_gauge("g", 1.0);
  c.clear();
  EXPECT_EQ(c.counter_count(), 0u);
  EXPECT_EQ(c.gauge_count(), 0u);
  EXPECT_FALSE(c.has_counter("x"));
}

// --- SpanRecorder -----------------------------------------------------------

TEST(SpanRecorder, RecordsInOrderBelowCapacity) {
  SpanRecorder rec(8);
  for (std::int64_t i = 0; i < 5; ++i) {
    rec.record(Phase::kCompose, sim::Time{i}, sim::Duration{1},
               static_cast<std::uint64_t>(i), i * 10);
  }
  const std::vector<Span> spans = rec.spans();
  if (!SpanRecorder::compiled_in()) {
    EXPECT_TRUE(spans.empty());
    return;
  }
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(rec.recorded(), 5u);
  EXPECT_EQ(rec.dropped(), 0u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].begin.ticks, static_cast<std::int64_t>(i));
    EXPECT_EQ(spans[i].frame, i);
  }
}

TEST(SpanRecorder, RingOverflowKeepsMostRecentWindow) {
  if (!SpanRecorder::compiled_in()) GTEST_SKIP() << "spans compiled out";
  SpanRecorder rec(4);
  for (std::int64_t i = 0; i < 11; ++i) {
    rec.record(Phase::kMeter, sim::Time{i}, sim::Duration{}, 0, 0);
  }
  EXPECT_EQ(rec.recorded(), 11u);
  EXPECT_EQ(rec.dropped(), 7u);
  const std::vector<Span> spans = rec.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first unwrap of the newest 4: ts 7, 8, 9, 10.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].begin.ticks, static_cast<std::int64_t>(7 + i));
  }
}

TEST(SpanRecorder, DisabledRecordsNothing) {
  SpanRecorder rec(4);
  rec.set_enabled(false);
  rec.record(Phase::kGovern, sim::Time{1}, sim::Duration{}, 1, 1);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.spans().empty());
  rec.set_enabled(true);
  rec.record(Phase::kGovern, sim::Time{2}, sim::Duration{}, 2, 2);
  EXPECT_EQ(rec.recorded(), SpanRecorder::compiled_in() ? 1u : 0u);
}

TEST(SpanRecorder, ClearResetsRingAndCounts) {
  if (!SpanRecorder::compiled_in()) GTEST_SKIP() << "spans compiled out";
  SpanRecorder rec(4);
  for (int i = 0; i < 9; ++i) {
    rec.record(Phase::kPanelPresent, sim::Time{i}, sim::Duration{}, 0, 0);
  }
  rec.clear();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.spans().empty());
  rec.record(Phase::kPanelPresent, sim::Time{42}, sim::Duration{}, 0, 0);
  ASSERT_EQ(rec.spans().size(), 1u);
  EXPECT_EQ(rec.spans()[0].begin.ticks, 42);
}

// --- exporters --------------------------------------------------------------

TEST(TraceExport, PhaseNamesRoundTrip) {
  for (int i = 0; i < obs::kPhaseCount; ++i) {
    const Phase p = static_cast<Phase>(i);
    const auto back = obs::phase_from_name(obs::phase_name(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(obs::phase_from_name("bogus").has_value());
}

TEST(TraceExport, ChromeJsonRoundTripsSpansAndCounters) {
  std::vector<Span> spans = {
      make_span(0, 1, Phase::kCompose, 16667, 921600),
      make_span(16667, 1, Phase::kMeter, 50, 9000),
      make_span(100000, 1, Phase::kGovern, 0, 48),
      make_span(-5, 2, Phase::kPanelPresent, 20833, -60),
  };
  Counters c;
  c.add("flinger.frames_composed", 1234);
  c.set_gauge("mean_hz", 47.25);
  const std::string text = obs::chrome_trace_to_string(spans, c.snapshot());

  std::string error;
  const auto parsed = obs::parse_chrome_trace(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->spans, spans);
  ASSERT_EQ(parsed->counters.size(), 1u);
  EXPECT_EQ(parsed->counters[0].first, "flinger.frames_composed");
  EXPECT_EQ(parsed->counters[0].second, 1234u);
  ASSERT_EQ(parsed->gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->gauges[0].second, 47.25);
}

TEST(TraceExport, CsvRoundTripsSpansAndCounters) {
  std::vector<Span> spans = {
      make_span(10, 7, Phase::kCompose, 3, 5),
      make_span(20, 8, Phase::kPanelPresent, 16667, 60),
  };
  Counters c;
  c.add("dpm.rate_changes", 17);
  c.set_gauge("g", -2.5);
  const std::string text = obs::trace_csv_to_string(spans, c.snapshot());

  std::string error;
  const auto parsed = obs::parse_trace_csv(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->spans, spans);
  ASSERT_EQ(parsed->counters.size(), 1u);
  EXPECT_EQ(parsed->counters[0].second, 17u);
  ASSERT_EQ(parsed->gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->gauges[0].second, -2.5);
}

TEST(TraceExport, JsonEscapesAwkwardCounterNames) {
  Counters c;
  const std::string name = "weird \"name\"\\with\nnewline\tand\x01control";
  c.add(name, 5);
  const std::string text = obs::chrome_trace_to_string({}, c.snapshot());
  std::string error;
  const auto parsed = obs::parse_chrome_trace(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->counters.size(), 1u);
  EXPECT_EQ(parsed->counters[0].first, name);
  EXPECT_EQ(parsed->counters[0].second, 5u);
}

TEST(TraceExport, ExtremeIntegersSurviveBothFormats) {
  // Above 2^53: a double-based JSON parser would corrupt these.
  std::vector<Span> spans = {make_span(
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::uint64_t>::max(), Phase::kMeter, 0,
      std::numeric_limits<std::int64_t>::min())};
  Counters c;
  c.add("big", std::numeric_limits<std::uint64_t>::max());
  const auto snap = c.snapshot();

  std::string error;
  const auto json = obs::parse_chrome_trace(
      obs::chrome_trace_to_string(spans, snap), &error);
  ASSERT_TRUE(json.has_value()) << error;
  EXPECT_EQ(json->spans, spans);
  EXPECT_EQ(json->counters[0].second,
            std::numeric_limits<std::uint64_t>::max());

  const auto csv =
      obs::parse_trace_csv(obs::trace_csv_to_string(spans, snap), &error);
  ASSERT_TRUE(csv.has_value()) << error;
  EXPECT_EQ(csv->spans, spans);
  EXPECT_EQ(csv->counters[0].second,
            std::numeric_limits<std::uint64_t>::max());
}

TEST(TraceExport, GaugeDoublesRoundTripExactly) {
  Counters c;
  c.set_gauge("tenth", 0.1);
  c.set_gauge("tiny", 4.9406564584124654e-324);  // denormal min
  c.set_gauge("huge", 1.7976931348623157e308);
  c.set_gauge("neg", -3.75);
  const auto snap = c.snapshot();

  std::string error;
  for (const std::string text :
       {obs::chrome_trace_to_string({}, snap),
        obs::trace_csv_to_string({}, snap)}) {
    const auto parsed = text[0] == '{' ? obs::parse_chrome_trace(text, &error)
                                       : obs::parse_trace_csv(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    ASSERT_EQ(parsed->gauges.size(), snap.gauges.size());
    for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
      EXPECT_EQ(parsed->gauges[i].second, snap.gauges[i].second)
          << snap.gauges[i].first;
    }
  }
}

TEST(TraceExport, ParseRejectsMalformedJson) {
  std::string error;
  EXPECT_FALSE(obs::parse_chrome_trace("", &error).has_value());
  EXPECT_FALSE(obs::parse_chrome_trace("[]", &error).has_value());
  EXPECT_FALSE(obs::parse_chrome_trace("{\"traceEvents\":[", &error));
  EXPECT_FALSE(obs::parse_chrome_trace("{}", &error).has_value());
  EXPECT_FALSE(obs::parse_chrome_trace(
      "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"bogus\",\"ts\":0,"
      "\"dur\":0,\"args\":{\"frame\":0,\"arg\":0}}]}", &error));
  EXPECT_FALSE(obs::parse_chrome_trace(
      "{\"traceEvents\":[],\"counters\":{\"x\":1.5}}", &error));
}

TEST(TraceExport, ParseToleratesForeignEvents) {
  // Metadata events ('M') from other producers are skipped, not errors.
  std::string error;
  const auto parsed = obs::parse_chrome_trace(
      "{\"traceEvents\":[{\"ph\":\"M\",\"name\":\"process_name\"}]}", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->spans.empty());
}

TEST(TraceExport, ParseRejectsMalformedCsv) {
  std::string error;
  EXPECT_FALSE(obs::parse_trace_csv("", &error).has_value());
  EXPECT_FALSE(
      obs::parse_trace_csv("frame,phase,ts_us,dur_us,arg\n", &error));
  EXPECT_FALSE(obs::parse_trace_csv(
      "# ccdem trace v1\nframe,phase,ts_us,dur_us,arg\n1,compose,0\n",
      &error));
  EXPECT_FALSE(obs::parse_trace_csv(
      "# ccdem trace v1\nframe,phase,ts_us,dur_us,arg\n"
      "x,compose,0,0,0\n", &error));
  EXPECT_FALSE(obs::parse_trace_csv(
      "# ccdem trace v1\nframe,phase,ts_us,dur_us,arg\n"
      "# counters\nnovalue\n", &error));
}

TEST(TraceExport, ObsSinkClearResetsBothSides) {
  obs::ObsSink sink;
  sink.counters.add("x", 3);
  sink.spans.record(Phase::kCompose, sim::Time{1}, sim::Duration{}, 1, 1);
  sink.clear();
  EXPECT_EQ(sink.counters.counter_count(), 0u);
  EXPECT_EQ(sink.spans.recorded(), 0u);
}
