// End-to-end properties of the full system, mirroring the paper's claims.
#include <gtest/gtest.h>

#include "apps/app_profiles.h"
#include "harness/experiment.h"

namespace ccdem::harness {
namespace {

ExperimentConfig config_for(const apps::AppSpec& app, ControlMode mode,
                            int seconds, std::uint64_t seed = 7) {
  ExperimentConfig c;
  c.app = app;
  c.duration = sim::seconds(seconds);
  c.seed = seed;
  c.mode = mode;
  return c;
}

TEST(SystemIntegration, ProposedSystemNeverUsesMorePowerThanBaselineByMuch) {
  // Worst case the controller sits at 60 Hz like the baseline; the only
  // overhead is the metering cost, which must stay small (paper: "almost no
  // cost").
  for (const char* name : {"Asphalt 8", "TempleRun"}) {  // high content rate
    const AbResult ab = run_ab(
        config_for(apps::app_by_name(name), ControlMode::kSectionWithBoost,
                   10));
    EXPECT_GT(ab.saved_power_mw, -15.0) << name;
  }
}

TEST(SystemIntegration, JellySplashSavesMuchMoreThanFacebook) {
  // Fig. 8's headline asymmetry: Jelly Splash (60 fps requests, ~10 fps
  // content) saves far more than Facebook (low idle frame rate).
  const AbResult js = run_ab(config_for(apps::app_by_name("Jelly Splash"),
                                        ControlMode::kSection, 20));
  const AbResult fb = run_ab(config_for(apps::app_by_name("Facebook"),
                                        ControlMode::kSection, 20));
  EXPECT_GT(js.saved_power_mw, fb.saved_power_mw * 1.5);
  EXPECT_GT(fb.saved_power_mw, 30.0);
}

TEST(SystemIntegration, TouchBoostingImprovesQualityAcrossCategories) {
  for (const char* name : {"Facebook", "Jelly Splash"}) {
    const auto app = apps::app_by_name(name);
    const AbResult section =
        run_ab(config_for(app, ControlMode::kSection, 20));
    const AbResult boost =
        run_ab(config_for(app, ControlMode::kSectionWithBoost, 20));
    EXPECT_GE(boost.quality.display_quality_pct + 1.0,
              section.quality.display_quality_pct)
        << name;
    // With boosting the paper reports >= 90 % quality for all apps.
    EXPECT_GT(boost.quality.display_quality_pct, 85.0) << name;
  }
}

TEST(SystemIntegration, NaiveControllerTrapsAndDegradesQuality) {
  // The paper's rejected design: mapping refresh to the measured content
  // rate directly sticks at a low rate and drops content.
  const auto app = apps::app_by_name("Jelly Splash");
  const AbResult naive = run_ab(config_for(app, ControlMode::kNaive, 20));
  const AbResult section = run_ab(config_for(app, ControlMode::kSection, 20));
  EXPECT_LT(naive.controlled.mean_refresh_hz,
            section.controlled.mean_refresh_hz);
  EXPECT_LE(naive.quality.display_quality_pct,
            section.quality.display_quality_pct + 1.0);
}

TEST(SystemIntegration, StaticAppDropsToMinimumRefresh) {
  const auto app = apps::app_by_name("Tiny Flashlight");
  const auto r = run_experiment(config_for(app, ControlMode::kSection, 10));
  EXPECT_LT(r.mean_refresh_hz, 25.0);
}

TEST(SystemIntegration, VideoAppLandsOnRateAboveVideoFps) {
  // MX Player plays 24 fps video: the section for 24 fps content is 30 Hz.
  const auto app = apps::app_by_name("MX Player");
  auto cfg = config_for(app, ControlMode::kSection, 12);
  const auto r = run_experiment(cfg);
  // Mean refresh should settle close to 30 Hz (between 24 and 40).
  EXPECT_GT(r.mean_refresh_hz, 24.0);
  EXPECT_LT(r.mean_refresh_hz, 45.0);
}

TEST(SystemIntegration, MeterAgreesWithGroundTruthOnNormalScenes) {
  // Section 4.1: accuracy is ~100 % on ordinary content; the 9K default
  // grid must misclassify (almost) nothing on a feed app and a game.
  for (const char* name : {"Facebook", "Jelly Splash"}) {
    const auto r = run_experiment(
        config_for(apps::app_by_name(name), ControlMode::kSection, 10));
    EXPECT_LT(r.meter_error_rate, 0.02) << name;
  }
}

TEST(SystemIntegration, RefreshRateOnlyTakesSupportedLevels) {
  const auto r = run_experiment(config_for(apps::app_by_name("Jelly Splash"),
                                           ControlMode::kSectionWithBoost,
                                           15));
  const display::RefreshRateSet rates = display::RefreshRateSet::galaxy_s3();
  for (const auto& p : r.refresh_rate.points()) {
    EXPECT_TRUE(rates.supports(static_cast<int>(p.value)))
        << "unsupported rate " << p.value;
  }
}

TEST(SystemIntegration, EnergyConservation) {
  // Mean power times duration equals sampled energy; the A/B bookkeeping
  // must not invent or lose energy.
  const auto r = run_experiment(config_for(apps::app_by_name("Facebook"),
                                           ControlMode::kSection, 10));
  double sum = 0.0;
  for (const auto& p : r.power.points()) sum += p.value;
  const double trace_mean = sum / static_cast<double>(r.power.size());
  EXPECT_NEAR(trace_mean, r.mean_power_mw, r.mean_power_mw * 0.01);
}

}  // namespace
}  // namespace ccdem::harness
