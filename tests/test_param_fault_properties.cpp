// Fault-envelope acceptance properties (ISSUE: robustness PR):
//
//  1. Under an active FaultPlan the device never presents below the meter's
//     content rate for longer than the documented recovery window, outside
//     live stuck episodes (during which the DDIC refuses even the fallback).
//  2. Safe mode always converges back to normal control after the cooldown
//     once the plan's active window closes.
//  3. Fault injection is deterministic under the fleet: fault.* counters
//     from a work-stealing FleetRunner sweep equal a serial run's exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "apps/app_profiles.h"
#include "device/simulated_device.h"
#include "harness/fleet.h"
#include "sim/simulator.h"

namespace ccdem {
namespace {

device::DeviceConfig faulted_config(std::uint64_t seed, double scale) {
  device::DeviceConfig dc;
  dc.mode = device::ControlMode::kSectionWithBoost;
  dc.seed = seed;
  dc.fault = fault::FaultPlan::nominal().scaled(scale);
  return dc;
}

/// The window the recovery plane documents (DESIGN.md section 9): a
/// delivered-quality collapse is detected within the watchdog grace (two
/// evaluation-observed periods or the configured window, whichever is
/// longer) and resolved by the fallback push within one more retry ladder.
sim::Duration documented_recovery_window(const core::RecoveryConfig& r) {
  return r.watchdog_window + r.switch_timeout + sim::milliseconds(300);
}

TEST(FaultProperties, NeverUnderservesLongerThanRecoveryWindow) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    device::SimulatedDevice dev;
    dev.configure(faulted_config(seed, /*scale=*/2.0));
    dev.install_app(apps::app_by_name("Jelly Splash"));
    dev.start_control();
    dev.schedule_monkey_script(input::MonkeyProfile::general_app(),
                               sim::seconds(30));

    core::DisplayPowerManager* dpm = dev.dpm();
    ASSERT_NE(dpm, nullptr);
    fault::FaultInjector* inj = dev.fault();
    ASSERT_NE(inj, nullptr);

    // Live probe: measure the longest contiguous stretch where the panel
    // presents below what the meter says the content needs, excluding live
    // stuck episodes plus one recovery window of tail after each.
    sim::Duration longest{};
    sim::Time under_since{};
    bool under = false;
    sim::Time excluded_until{};
    const sim::Duration window = documented_recovery_window(
        core::RecoveryConfig{});  // the auto-enabled defaults
    dev.sim().every(sim::milliseconds(10), [&](sim::Time t) {
      if (inj->panel_stuck(t)) {
        excluded_until = t + window;
        under = false;
        return true;
      }
      const double content = dpm->meter().content_rate(t);
      const bool violating =
          t >= excluded_until &&
          content > static_cast<double>(dev.panel().refresh_hz()) + 1.0;
      if (violating && !under) {
        under = true;
        under_since = t;
      } else if (!violating) {
        under = false;
      }
      if (under) longest = std::max(longest, t - under_since);
      return true;
    });

    dev.run_for(sim::seconds(30));
    dev.finish();
    EXPECT_LE(longest.ticks, window.ticks)
        << "seed=" << seed << " underserved for "
        << static_cast<double>(longest.ticks) / 1e3 << " ms";
  }
}

TEST(FaultProperties, SafeModeAlwaysConvergesAfterCooldown) {
  for (std::uint64_t seed : {3ULL, 11ULL, 29ULL}) {
    device::DeviceConfig dc = faulted_config(seed, /*scale=*/20.0);
    // Brutal plan for 10 s, then a clean tail: whatever state the fault
    // storm left behind, the controller must be back in normal content
    // control well before the run ends.
    dc.fault.active_until = sim::Time{sim::seconds(10).ticks};
    device::SimulatedDevice dev;
    dev.configure(dc);
    dev.install_app(apps::app_by_name("Facebook"));
    dev.start_control();
    dev.schedule_monkey_script(input::MonkeyProfile::general_app(),
                               sim::seconds(25));
    dev.run_for(sim::seconds(25));
    dev.finish();

    core::DisplayPowerManager* dpm = dev.dpm();
    ASSERT_NE(dpm, nullptr);
    EXPECT_EQ(dpm->degradation_state(), core::DegradationState::kNormal)
        << "seed=" << seed;
    EXPECT_EQ(dpm->consecutive_faults(), 0) << "seed=" << seed;
  }
}

TEST(FaultProperties, FaultsStopWhenPlanWindowCloses) {
  device::DeviceConfig dc = faulted_config(5, /*scale=*/4.0);
  dc.fault.active_until = sim::Time{sim::seconds(5).ticks};
  device::SimulatedDevice dev;
  dev.configure(dc);
  dev.install_app(apps::app_by_name("Jelly Splash"));
  dev.start_control();
  dev.schedule_monkey_script(input::MonkeyProfile::general_app(),
                             sim::seconds(20));
  dev.run_for(sim::seconds(10));
  const std::uint64_t naks_at_10s = dev.fault()->switch_naks();
  const std::uint64_t drops_at_10s = dev.fault()->touch_dropped();
  dev.run_for(sim::seconds(10));
  dev.finish();
  EXPECT_EQ(dev.fault()->switch_naks(), naks_at_10s);
  EXPECT_EQ(dev.fault()->touch_dropped(), drops_at_10s);
}

TEST(FaultProperties, FleetFaultCountersMatchSerialExactly) {
  std::vector<harness::ExperimentConfig> configs;
  const char* apps_used[] = {"Facebook", "Jelly Splash", "MX Player",
                             "Naver"};
  std::uint64_t seed = 1;
  for (const char* name : apps_used) {
    harness::ExperimentConfig c;
    c.app = apps::app_by_name(name);
    c.duration = sim::seconds(5);
    c.seed = seed++;
    c.mode = harness::ControlMode::kSectionWithBoost;
    c.fault = fault::FaultPlan::nominal().scaled(3.0);
    configs.push_back(c);
  }

  // Serial arm: one sink per run, summed (merge) into one registry.
  obs::Counters serial_totals;
  for (harness::ExperimentConfig c : configs) {
    obs::ObsSink sink;
    c.obs = &sink;
    (void)harness::run_experiment(c);
    serial_totals.merge(sink.counters);
  }

  harness::FleetRunner fleet(4);
  std::vector<harness::ExperimentConfig> fleet_configs = configs;
  (void)fleet.run(fleet_configs);
  const obs::Counters& fleet_totals = fleet.stats().counters;

  const char* kFaultCounters[] = {
      "fault.switch_naks",      "fault.switch_delays",
      "fault.stuck_episodes",   "fault.capability_losses",
      "fault.touch_dropped",    "fault.touch_duplicated",
      "fault.touch_delayed",    "fault.meter_bitflips",
      "dpm.retries",            "dpm.retry_giveups",
      "dpm.watchdog_fallbacks", "dpm.safe_mode_entries",
  };
  std::uint64_t total_faults = 0;
  for (const char* name : kFaultCounters) {
    EXPECT_EQ(fleet_totals.value(name), serial_totals.value(name)) << name;
    total_faults += serial_totals.value(name);
  }
  // The plan actually injected something, or this test proves nothing.
  EXPECT_GT(total_faults, 0u);
}

}  // namespace
}  // namespace ccdem
