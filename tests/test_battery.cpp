#include "power/battery.h"

#include <gtest/gtest.h>

namespace ccdem::power {
namespace {

TEST(Battery, GalaxyS3Capacity) {
  const Battery b(BatterySpec::galaxy_s3());
  // 2100 mAh * 3600 s/h * 3.8 V = 28.728 MJ (in mJ units).
  EXPECT_NEAR(b.capacity_mj(), 28'728'000.0, 1.0);
}

TEST(Battery, HoursAtConstantDrain) {
  const Battery b(BatterySpec{1000.0, 3.6});
  // 1000 mAh at 3.6 V = 12.96 MJ; at 3600 mW -> 3600 s = 1 h.
  EXPECT_NEAR(b.hours_at_mw(3600.0), 1.0, 1e-9);
  EXPECT_NEAR(b.hours_at_mw(1800.0), 2.0, 1e-9);
}

TEST(Battery, HoursGained) {
  const Battery b(BatterySpec{1000.0, 3.6});
  // 3600 mW -> 1 h; 1800 mW -> 2 h: saving half the drain gains 1 h.
  EXPECT_NEAR(b.hours_gained(3600.0, 1800.0), 1.0, 1e-9);
}

TEST(Battery, RelativeGainMatchesDrainRatio) {
  const Battery b(BatterySpec::galaxy_s3());
  // Runtime scales as 1/power: gain = P/(P-S) - 1.
  EXPECT_NEAR(b.relative_gain(1000.0, 200.0), 0.25, 1e-9);
}

TEST(Battery, PaperScaleSaving) {
  // The paper's ~230 mW average saving on a ~1.2 W screen-on load extends a
  // Galaxy S3's screen-on time by roughly a quarter.
  const Battery b(BatterySpec::galaxy_s3());
  const double gain = b.relative_gain(1200.0, 230.0);
  EXPECT_GT(gain, 0.20);
  EXPECT_LT(gain, 0.30);
}

}  // namespace
}  // namespace ccdem::power
