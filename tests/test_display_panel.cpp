#include "display/display_panel.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace ccdem::display {
namespace {

class RecordingObserver final : public VsyncObserver {
 public:
  void on_vsync(sim::Time t, int hz) override {
    times.push_back(t);
    rates.push_back(hz);
  }
  std::vector<sim::Time> times;
  std::vector<int> rates;
};

TEST(DisplayPanel, TicksAtRefreshRate) {
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet::galaxy_s3(), 60);
  RecordingObserver obs;
  panel.add_observer(VsyncPhase::kApp, &obs);
  sim.run_for(sim::seconds(1));
  // 60 Hz for one second: the tick at t=0 plus ~59 more.
  EXPECT_NEAR(static_cast<double>(obs.times.size()), 60.0, 1.0);
}

TEST(DisplayPanel, TwentyHzTicksFewer) {
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet::galaxy_s3(), 20);
  RecordingObserver obs;
  panel.add_observer(VsyncPhase::kApp, &obs);
  sim.run_for(sim::seconds(2));
  EXPECT_NEAR(static_cast<double>(obs.times.size()), 40.0, 1.0);
}

TEST(DisplayPanel, PhasesRunInOrderWithinTick) {
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet::galaxy_s3(), 60);
  std::vector<int> order;
  struct PhaseObs final : VsyncObserver {
    std::vector<int>* order;
    int id;
    PhaseObs(std::vector<int>* o, int i) : order(o), id(i) {}
    void on_vsync(sim::Time, int) override { order->push_back(id); }
  };
  PhaseObs scan(&order, 2), comp(&order, 1), app(&order, 0);
  // Register in reverse to prove phase order is not registration order.
  panel.add_observer(VsyncPhase::kScanout, &scan);
  panel.add_observer(VsyncPhase::kComposer, &comp);
  panel.add_observer(VsyncPhase::kApp, &app);
  sim.run_until(sim::Time{0});
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(DisplayPanel, RateChangeTakesEffectNextTick) {
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet::galaxy_s3(), 60);
  RecordingObserver obs;
  panel.add_observer(VsyncPhase::kApp, &obs);
  sim.run_until(sim::Time{1'000});  // first tick done at 60 Hz
  EXPECT_TRUE(panel.set_refresh_rate(20));
  EXPECT_EQ(panel.refresh_hz(), 60);  // not yet applied
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(panel.refresh_hz(), 20);
  // After the switch the cadence is 50 ms.
  const auto n = obs.times.size();
  ASSERT_GE(n, 3u);
  EXPECT_EQ((obs.times[n - 1] - obs.times[n - 2]).ticks, 50'000);
}

TEST(DisplayPanel, SetSameRateReturnsFalse) {
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet::galaxy_s3(), 60);
  EXPECT_FALSE(panel.set_refresh_rate(60));
  EXPECT_TRUE(panel.set_refresh_rate(30));
  EXPECT_FALSE(panel.set_refresh_rate(30));  // already pending
}

TEST(DisplayPanel, RateListenerSeesChange) {
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet::galaxy_s3(), 60);
  std::vector<int> seen;
  panel.add_rate_listener([&](sim::Time, int hz) { seen.push_back(hz); });
  panel.set_refresh_rate(24);
  sim.run_for(sim::seconds(1));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 24);
}

TEST(DisplayPanel, ObserverSeesEffectiveRate) {
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet::galaxy_s3(), 40);
  RecordingObserver obs;
  panel.add_observer(VsyncPhase::kApp, &obs);
  sim.run_for(sim::milliseconds(100));
  ASSERT_FALSE(obs.rates.empty());
  EXPECT_EQ(obs.rates.front(), 40);
}

TEST(DisplayPanel, StopHaltsTicks) {
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet::galaxy_s3(), 60);
  RecordingObserver obs;
  panel.add_observer(VsyncPhase::kApp, &obs);
  sim.run_for(sim::milliseconds(100));
  const auto count = obs.times.size();
  panel.stop();
  sim.run_for(sim::seconds(1));
  EXPECT_LE(obs.times.size(), count + 1);  // at most one in-flight tick
}

TEST(DisplayPanel, FastRateUpRetimesNextTick) {
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet{1, 60}, 1);
  panel.set_fast_rate_up(true);
  RecordingObserver obs;
  panel.add_observer(VsyncPhase::kApp, &obs);
  sim.run_until(sim::Time{10'000});  // first tick at t=0, next due t=1s
  ASSERT_EQ(obs.times.size(), 1u);
  panel.set_refresh_rate(60);
  // Without fast exit the next tick would wait until t=1s; with it the
  // tick lands one 60 Hz period after the last tick.
  sim.run_until(sim::Time{40'000});
  ASSERT_GE(obs.times.size(), 2u);
  EXPECT_EQ(obs.times[1].ticks, 16'667);
  EXPECT_EQ(obs.rates[1], 60);
}

TEST(DisplayPanel, FastRateUpNeverFiresInThePast) {
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet{1, 60}, 1);
  panel.set_fast_rate_up(true);
  RecordingObserver obs;
  panel.add_observer(VsyncPhase::kApp, &obs);
  sim.run_until(sim::Time{900'000});  // deep into the 1 Hz period
  panel.set_refresh_rate(60);
  sim.run_until(sim::Time{950'000});
  ASSERT_GE(obs.times.size(), 2u);
  EXPECT_GE(obs.times[1].ticks, 900'000);  // clamped to "now"
}

TEST(DisplayPanel, FastRateUpOffWaitsForBoundary) {
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet{1, 60}, 1);
  RecordingObserver obs;
  panel.add_observer(VsyncPhase::kApp, &obs);
  sim.run_until(sim::Time{10'000});
  panel.set_refresh_rate(60);
  sim.run_until(sim::Time{500'000});
  EXPECT_EQ(obs.times.size(), 1u);  // still waiting for the 1 Hz boundary
  sim.run_until(sim::Time{1'100'000});
  EXPECT_GT(obs.times.size(), 2u);  // switched at t=1s, now at 60 Hz
}

TEST(DisplayPanel, VsyncCountMatchesObserver) {
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet::galaxy_s3(), 60);
  RecordingObserver obs;
  panel.add_observer(VsyncPhase::kScanout, &obs);
  sim.run_for(sim::milliseconds(500));
  EXPECT_EQ(panel.vsync_count(), obs.times.size());
}

}  // namespace
}  // namespace ccdem::display
