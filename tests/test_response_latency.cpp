#include "metrics/response_latency.h"

#include <gtest/gtest.h>

namespace ccdem::metrics {
namespace {

input::TouchEvent down_at(sim::Tick t) {
  return {sim::Time{t}, {0, 0}, input::TouchEvent::Action::kDown};
}

gfx::FrameInfo frame_at(sim::Tick t, bool content) {
  gfx::FrameInfo info;
  info.composed_at = sim::Time{t};
  info.content_changed = content;
  return info;
}

TEST(ResponseLatency, PairsTouchWithNextContentFrame) {
  ResponseLatencyRecorder r;
  gfx::Framebuffer fb(1, 1);
  r.on_touch(down_at(1'000'000));
  r.on_frame(frame_at(1'016'667, true), fb);
  ASSERT_EQ(r.latencies_ms().size(), 1u);
  EXPECT_NEAR(r.latencies_ms()[0], 16.667, 0.01);
}

TEST(ResponseLatency, RedundantFramesDoNotResolveTouch) {
  ResponseLatencyRecorder r;
  gfx::Framebuffer fb(1, 1);
  r.on_touch(down_at(0));
  r.on_frame(frame_at(10'000, false), fb);
  r.on_frame(frame_at(20'000, false), fb);
  EXPECT_TRUE(r.latencies_ms().empty());
  r.on_frame(frame_at(50'000, true), fb);
  ASSERT_EQ(r.latencies_ms().size(), 1u);
  EXPECT_NEAR(r.latencies_ms()[0], 50.0, 0.01);
}

TEST(ResponseLatency, MoveAndUpEventsIgnored) {
  ResponseLatencyRecorder r;
  gfx::Framebuffer fb(1, 1);
  r.on_touch({sim::Time{0}, {0, 0}, input::TouchEvent::Action::kMove});
  r.on_touch({sim::Time{1}, {0, 0}, input::TouchEvent::Action::kUp});
  r.on_frame(frame_at(10'000, true), fb);
  EXPECT_EQ(r.interactions(), 0u);
  EXPECT_TRUE(r.latencies_ms().empty());
}

TEST(ResponseLatency, BurstCollapsesToOneInteraction) {
  ResponseLatencyRecorder r(sim::milliseconds(300));
  gfx::Framebuffer fb(1, 1);
  r.on_touch(down_at(0));
  r.on_touch(down_at(100'000));  // within the ignore window
  r.on_touch(down_at(250'000));  // chained: still the same burst
  EXPECT_EQ(r.interactions(), 1u);
  r.on_frame(frame_at(300'000, true), fb);
  ASSERT_EQ(r.latencies_ms().size(), 1u);
  EXPECT_NEAR(r.latencies_ms()[0], 300.0, 0.01);  // from the first down
}

TEST(ResponseLatency, SeparateInteractionsBothMeasured) {
  ResponseLatencyRecorder r(sim::milliseconds(300));
  gfx::Framebuffer fb(1, 1);
  r.on_touch(down_at(0));
  r.on_frame(frame_at(20'000, true), fb);
  r.on_touch(down_at(2'000'000));
  r.on_frame(frame_at(2'050'000, true), fb);
  EXPECT_EQ(r.interactions(), 2u);
  ASSERT_EQ(r.latencies_ms().size(), 2u);
  EXPECT_NEAR(r.latencies_ms()[1], 50.0, 0.01);
}

TEST(ResponseLatency, Statistics) {
  ResponseLatencyRecorder r(sim::milliseconds(1));
  gfx::Framebuffer fb(1, 1);
  const sim::Tick second = sim::kTicksPerSecond;
  for (int i = 0; i < 10; ++i) {
    r.on_touch(down_at(i * second));
    r.on_frame(frame_at(i * second + (i + 1) * 1'000, true), fb);  // 1..10 ms
  }
  EXPECT_NEAR(r.mean_ms(), 5.5, 0.01);
  EXPECT_NEAR(r.max_ms(), 10.0, 0.01);
  EXPECT_NEAR(r.percentile_ms(50.0), 5.5, 0.01);
}

TEST(ResponseLatency, EmptyStatsAreZero) {
  ResponseLatencyRecorder r;
  EXPECT_DOUBLE_EQ(r.mean_ms(), 0.0);
  EXPECT_DOUBLE_EQ(r.max_ms(), 0.0);
  EXPECT_DOUBLE_EQ(r.percentile_ms(95.0), 0.0);
}

}  // namespace
}  // namespace ccdem::metrics
