#include "input/input_dispatcher.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace ccdem::input {
namespace {

class Recorder final : public TouchListener {
 public:
  void on_touch(const TouchEvent& e) override { events.push_back(e); }
  std::vector<TouchEvent> events;
};

TouchGesture tap(sim::Tick at, gfx::Point p) {
  TouchGesture g;
  g.start = sim::Time{at};
  g.duration = sim::milliseconds(60);
  g.kind = TouchGesture::Kind::kTap;
  g.from = g.to = p;
  return g;
}

TouchGesture swipe(sim::Tick at, gfx::Point from, gfx::Point to,
                   sim::Duration dur) {
  TouchGesture g;
  g.start = sim::Time{at};
  g.duration = dur;
  g.kind = TouchGesture::Kind::kSwipe;
  g.from = from;
  g.to = to;
  return g;
}

TEST(InputDispatcher, TapDeliversDownAndUp) {
  sim::Simulator sim;
  InputDispatcher d(sim);
  Recorder rec;
  d.add_listener(&rec);
  d.schedule_script({tap(100'000, {10, 20})});
  sim.run_for(sim::seconds(1));
  ASSERT_EQ(rec.events.size(), 2u);
  EXPECT_EQ(rec.events[0].action, TouchEvent::Action::kDown);
  EXPECT_EQ(rec.events[0].t, sim::Time{100'000});
  EXPECT_EQ(rec.events[0].pos, (gfx::Point{10, 20}));
  EXPECT_EQ(rec.events[1].action, TouchEvent::Action::kUp);
  EXPECT_EQ(rec.events[1].t, sim::Time{160'000});
}

TEST(InputDispatcher, SwipeEmitsMoveTrain) {
  sim::Simulator sim;
  InputDispatcher d(sim, /*sample_rate_hz=*/100.0);
  Recorder rec;
  d.add_listener(&rec);
  d.schedule_script(
      {swipe(0, {0, 0}, {100, 200}, sim::milliseconds(100))});
  sim.run_for(sim::seconds(1));
  // down + 9 moves (10 ms apart, strictly inside (0, 100 ms)) + up.
  ASSERT_EQ(rec.events.size(), 11u);
  EXPECT_EQ(rec.events.front().action, TouchEvent::Action::kDown);
  EXPECT_EQ(rec.events.back().action, TouchEvent::Action::kUp);
  for (std::size_t i = 1; i + 1 < rec.events.size(); ++i) {
    EXPECT_EQ(rec.events[i].action, TouchEvent::Action::kMove);
  }
}

TEST(InputDispatcher, MovePositionsInterpolate) {
  sim::Simulator sim;
  InputDispatcher d(sim, 100.0);
  Recorder rec;
  d.add_listener(&rec);
  d.schedule_script({swipe(0, {0, 0}, {100, 100}, sim::milliseconds(100))});
  sim.run_for(sim::seconds(1));
  // The move at t = 50 ms sits halfway.
  bool found = false;
  for (const auto& e : rec.events) {
    if (e.action == TouchEvent::Action::kMove && e.t == sim::Time{50'000}) {
      EXPECT_EQ(e.pos, (gfx::Point{50, 50}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(rec.events.back().pos, (gfx::Point{100, 100}));
}

TEST(InputDispatcher, ListenersCalledInRegistrationOrder) {
  sim::Simulator sim;
  InputDispatcher d(sim);
  std::vector<int> order;
  struct Probe final : TouchListener {
    std::vector<int>* order;
    int id;
    Probe(std::vector<int>* o, int i) : order(o), id(i) {}
    void on_touch(const TouchEvent&) override { order->push_back(id); }
  };
  Probe a(&order, 1), b(&order, 2);
  d.add_listener(&a);
  d.add_listener(&b);
  d.schedule_script({tap(0, {1, 1})});
  sim.run_until(sim::Time{0});
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // the down event
}

TEST(InputDispatcher, ScriptIsRelativeToNow) {
  sim::Simulator sim;
  sim.run_until(sim::Time{500'000});
  InputDispatcher d(sim);
  Recorder rec;
  d.add_listener(&rec);
  d.schedule_script({tap(100'000, {0, 0})});
  sim.run_for(sim::seconds(1));
  ASSERT_FALSE(rec.events.empty());
  EXPECT_EQ(rec.events[0].t, sim::Time{600'000});
}

TEST(InputDispatcher, CountsDeliveredEvents) {
  sim::Simulator sim;
  InputDispatcher d(sim);
  Recorder rec;
  d.add_listener(&rec);
  d.schedule_script({tap(0, {0, 0}), tap(200'000, {5, 5})});
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(d.events_delivered(), 4u);
}

}  // namespace
}  // namespace ccdem::input
