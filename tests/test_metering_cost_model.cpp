#include "core/metering_cost_model.h"

#include <gtest/gtest.h>

#include "core/grid_sampler.h"

namespace ccdem::core {
namespace {

TEST(MeteringCostModel, MatchesCalibrationPoints) {
  const MeteringCostModel m;
  EXPECT_NEAR(m.duration_ms(9'216), 5.0, 1e-9);
  EXPECT_NEAR(m.duration_ms(36'864), 9.0, 1e-9);
  EXPECT_NEAR(m.duration_ms(921'600), 42.0, 1e-9);
}

TEST(MeteringCostModel, SmallGridsUnderOneMillisecond) {
  const MeteringCostModel m;
  // Paper: "metering with less than 9K pixels takes less than 1 ms".
  EXPECT_LT(m.duration_ms(GridSpec::grid_2k().sample_count()), 1.0);
  EXPECT_LT(m.duration_ms(GridSpec::grid_4k().sample_count()), 1.0);
}

TEST(MeteringCostModel, MonotonicInSampleCount) {
  const MeteringCostModel m;
  double prev = 0.0;
  for (std::int64_t n : {1'000, 2'304, 4'080, 9'216, 20'000, 36'864,
                         100'000, 921'600, 2'000'000}) {
    const double d = m.duration_ms(n);
    EXPECT_GT(d, prev) << "at n=" << n;
    prev = d;
  }
}

TEST(MeteringCostModel, FullResolutionBreaksSixtyHzBudget) {
  const MeteringCostModel m;
  // Section 4.1: examining all pixels cannot finish within 1/60 s = 16.67 ms.
  EXPECT_FALSE(m.fits_frame_budget(921'600, 60));
  // 36K and below fit.
  EXPECT_TRUE(m.fits_frame_budget(36'864, 60));
  EXPECT_TRUE(m.fits_frame_budget(9'216, 60));
}

TEST(MeteringCostModel, BudgetScalesWithRefreshRate) {
  const MeteringCostModel m;
  // At 20 Hz the budget is 50 ms, so even the full resolution fits.
  EXPECT_TRUE(m.fits_frame_budget(921'600, 20));
}

TEST(MeteringCostModel, EnergyProportionalToDuration) {
  const MeteringCostModel m;
  const double e = m.energy_mj(9'216, /*cpu_active_mw=*/200.0);
  EXPECT_NEAR(e, 5.0 / 1000.0 * 200.0, 1e-9);
}

TEST(MeteringCostModel, CustomCalibration) {
  const MeteringCostModel m({{100, 1.0}, {1'000, 10.0}});
  EXPECT_NEAR(m.duration_ms(100), 1.0, 1e-9);
  EXPECT_NEAR(m.duration_ms(1'000), 10.0, 1e-9);
  // Log-log interpolation of a linear relationship stays linear.
  EXPECT_NEAR(m.duration_ms(316), 3.16, 0.01);
  // Extrapolation below/above scales linearly with count.
  EXPECT_NEAR(m.duration_ms(50), 0.5, 1e-9);
  EXPECT_NEAR(m.duration_ms(2'000), 20.0, 1e-9);
}

}  // namespace
}  // namespace ccdem::core
