#include "power/device_power_model.h"

#include <gtest/gtest.h>

namespace ccdem::power {
namespace {

DevicePowerParams simple_params() {
  DevicePowerParams p;
  p.soc_base_mw = 100.0;
  p.panel_static_mw = 50.0;
  p.panel_per_hz_mw = 2.0;
  p.composition_base_mj = 1.0;
  p.composition_mj_per_mpixel = 10.0;
  p.touch_event_mj = 3.0;
  p.rate_switch_mj = 0.0;  // most tests want clean integration arithmetic
  return p;
}

TEST(DevicePowerModel, ContinuousPowerComposition) {
  DevicePowerModel m(simple_params(), 60);
  EXPECT_DOUBLE_EQ(m.continuous_power_mw(60), 100.0 + 50.0 + 120.0);
  EXPECT_DOUBLE_EQ(m.continuous_power_mw(20), 100.0 + 50.0 + 40.0);
}

TEST(DevicePowerModel, IntegratesContinuousPower) {
  DevicePowerModel m(simple_params(), 60);
  // 270 mW for 2 s = 540 mJ.
  EXPECT_DOUBLE_EQ(m.energy_mj_at(sim::Time{2 * sim::kTicksPerSecond}), 540.0);
}

TEST(DevicePowerModel, RateChangeSplitsIntegration) {
  DevicePowerModel m(simple_params(), 60);
  m.on_rate_change(sim::Time{sim::kTicksPerSecond}, 20);
  // 1 s at 270 mW + 1 s at 190 mW.
  EXPECT_DOUBLE_EQ(m.energy_mj_at(sim::Time{2 * sim::kTicksPerSecond}),
                   270.0 + 190.0);
  EXPECT_EQ(m.refresh_hz(), 20);
}

TEST(DevicePowerModel, ImpulseEnergyAdds) {
  DevicePowerModel m(simple_params(), 60);
  m.add_energy_mj(sim::Time{}, 5.0);
  EXPECT_DOUBLE_EQ(m.energy_mj_at(sim::Time{}), 5.0);
}

TEST(DevicePowerModel, FrameCompositionCharged) {
  DevicePowerModel m(simple_params(), 60);
  gfx::FrameInfo info;
  info.composed_at = sim::Time{};
  info.composed_pixels = 500'000;  // half a megapixel
  gfx::Framebuffer fb(1, 1);
  m.on_frame(info, fb);
  // base 1.0 + 10.0 * 0.5 = 6.0 mJ.
  EXPECT_DOUBLE_EQ(m.energy_mj_at(sim::Time{}), 6.0);
}

TEST(DevicePowerModel, TouchCharged) {
  DevicePowerModel m(simple_params(), 60);
  m.on_touch(sim::Time{});
  EXPECT_DOUBLE_EQ(m.energy_mj_at(sim::Time{}), 3.0);
}

TEST(DevicePowerModel, EnergyQueryDoesNotMutate) {
  DevicePowerModel m(simple_params(), 60);
  const double e1 = m.energy_mj_at(sim::Time{sim::kTicksPerSecond});
  const double e2 = m.energy_mj_at(sim::Time{sim::kTicksPerSecond});
  EXPECT_DOUBLE_EQ(e1, e2);
}

TEST(DevicePowerModel, RateSwitchPenaltyCharged) {
  DevicePowerParams p = simple_params();
  p.rate_switch_mj = 2.0;
  DevicePowerModel m(p, 60);
  m.on_rate_change(sim::Time{}, 20);
  EXPECT_DOUBLE_EQ(m.energy_mj_at(sim::Time{}), 2.0);
  // Re-announcing the same rate is free.
  m.on_rate_change(sim::Time{}, 20);
  EXPECT_DOUBLE_EQ(m.energy_mj_at(sim::Time{}), 2.0);
}

TEST(DevicePowerModel, BrightnessScalesPanelStatic) {
  DevicePowerParams p = simple_params();  // static 50 mW at 50 %
  DevicePowerModel m(p, 60);
  const double at_half = m.continuous_power_mw(60);
  m.set_brightness(sim::Time{}, 1.0);
  // floor 0.3 + slope 1.4: full brightness = 1.7x the static term.
  EXPECT_DOUBLE_EQ(m.continuous_power_mw(60), at_half + 50.0 * 0.7);
  m.set_brightness(sim::Time{}, 0.0);
  EXPECT_DOUBLE_EQ(m.continuous_power_mw(60), at_half - 50.0 * 0.7);
}

TEST(DevicePowerModel, BrightnessAtCalibrationPointIsNeutral) {
  DevicePowerModel m(simple_params(), 60);
  const double before = m.continuous_power_mw(60);
  m.set_brightness(sim::Time{}, 0.5);
  EXPECT_DOUBLE_EQ(m.continuous_power_mw(60), before);
}

TEST(DevicePowerModel, BrightnessChangeSplitsIntegration) {
  DevicePowerParams p = simple_params();
  DevicePowerModel m(p, 60);  // 270 mW at 50 %
  m.set_brightness(sim::Time{sim::kTicksPerSecond}, 1.0);  // +35 mW
  EXPECT_DOUBLE_EQ(m.energy_mj_at(sim::Time{2 * sim::kTicksPerSecond}),
                   270.0 + 305.0);
}

TEST(DevicePowerModel, BreakdownSumsToTotal) {
  DevicePowerParams p = simple_params();
  p.rate_switch_mj = 1.0;
  DevicePowerModel m(p, 60);
  m.add_energy_mj(sim::Time{500'000}, 5.0, EnergyTag::kRender);
  m.on_rate_change(sim::Time{sim::kTicksPerSecond}, 20);
  m.on_touch(sim::Time{1'500'000});
  m.add_energy_mj(sim::Time{2 * sim::kTicksPerSecond}, 2.0,
                  EnergyTag::kMeter);
  const double total = m.energy_mj_at(sim::Time{2 * sim::kTicksPerSecond});
  EXPECT_NEAR(m.breakdown().total_mj(), total, 1e-9);
  EXPECT_DOUBLE_EQ(m.breakdown().render_mj, 5.0);
  EXPECT_DOUBLE_EQ(m.breakdown().touch_mj, 3.0);
  EXPECT_DOUBLE_EQ(m.breakdown().meter_mj, 2.0);
  EXPECT_DOUBLE_EQ(m.breakdown().rate_switch_mj, 1.0);
  // 1 s at 120 mW of per-Hz power (60 Hz x 2 mW) + 1 s at 40 mW.
  EXPECT_DOUBLE_EQ(m.breakdown().refresh_mj, 160.0);
  EXPECT_DOUBLE_EQ(m.breakdown().soc_base_mj, 200.0);
}

TEST(DevicePowerModel, CompositionTagFromFrames) {
  DevicePowerModel m(simple_params(), 60);
  gfx::FrameInfo info;
  info.composed_at = sim::Time{};
  info.composed_pixels = 1'000'000;
  gfx::Framebuffer fb(1, 1);
  m.on_frame(info, fb);
  EXPECT_DOUBLE_EQ(m.breakdown().composition_mj, 11.0);
}

TEST(DevicePowerModel, GalaxyS3DefaultsAreReasonable) {
  const DevicePowerParams p = DevicePowerParams::galaxy_s3();
  DevicePowerModel m(p, 60);
  // A phone at 50 % brightness idling at 60 Hz: several hundred mW, < 2 W.
  const double idle = m.continuous_power_mw(60);
  EXPECT_GT(idle, 500.0);
  EXPECT_LT(idle, 2000.0);
  // Dropping 60 -> 20 Hz must save a three-digit mW figure (Fig. 8/9 scale).
  const double saved = idle - m.continuous_power_mw(20);
  EXPECT_GT(saved, 100.0);
  EXPECT_LT(saved, 400.0);
}

}  // namespace
}  // namespace ccdem::power
