#include "metrics/histogram.h"

#include <gtest/gtest.h>

namespace ccdem::metrics {
namespace {

TEST(Histogram, BucketEdges) {
  Histogram h(0.0, 100.0, 4);
  EXPECT_EQ(h.bucket_count(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 25.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 75.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 100.0);
}

TEST(Histogram, CountsIntoCorrectBuckets) {
  Histogram h(0.0, 100.0, 4);
  h.add(10.0);
  h.add(30.0);
  h.add(30.0);
  h.add(99.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBuckets) {
  Histogram h(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, BoundaryValueGoesToUpperBucket) {
  Histogram h(0.0, 10.0, 2);
  h.add(5.0);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, FractionBelow) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 8; ++i) h.add(5.0);   // bucket [0,10)
  for (int i = 0; i < 2; ++i) h.add(95.0);  // bucket [90,100)
  EXPECT_DOUBLE_EQ(h.fraction_below(10.0), 0.8);
  EXPECT_DOUBLE_EQ(h.fraction_below(90.0), 0.8);
  EXPECT_DOUBLE_EQ(h.fraction_below(100.0), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(0.0), 0.0);
}

TEST(Histogram, FractionBelowEmptyIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.fraction_below(1.0), 0.0);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.5);
  h.add(1.5);
  const std::string s = h.render(10);
  EXPECT_NE(s.find("##########"), std::string::npos);  // peak bucket
  EXPECT_NE(s.find("#####"), std::string::npos);       // half bucket
  EXPECT_NE(s.find("| 2"), std::string::npos);
}

}  // namespace
}  // namespace ccdem::metrics
