#include "harness/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ccdem::harness {
namespace {

TEST(TextTable, RendersHeadersAndRows) {
  TextTable t({"App", "Saved (mW)"});
  t.add_row({"Facebook", "150.0"});
  t.add_row({"Jelly Splash", "480.2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("App"), std::string::npos);
  EXPECT_NE(s.find("Jelly Splash"), std::string::npos);
  EXPECT_NE(s.find("480.2"), std::string::npos);
}

TEST(TextTable, ColumnsAlign) {
  TextTable t({"A", "B"});
  t.add_row({"x", "y"});
  t.add_row({"longer", "z"});
  std::istringstream is(t.to_string());
  std::string line;
  std::size_t width = 0;
  bool first = true;
  while (std::getline(is, line)) {
    if (first) {
      width = line.size();
      first = false;
    } else {
      EXPECT_EQ(line.size(), width);
    }
  }
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt(-1.25, 1), "-1.2");
}

TEST(Fmt, PlusMinusNotation) {
  EXPECT_EQ(fmt_pm(18.6, 2, 8.93), "18.60 (+-8.93)");
}

TEST(PrintSeries, EmitsResampledRows) {
  sim::Trace t("x");
  t.record(sim::Time{0}, 1.0);
  t.record(sim::Time{sim::kTicksPerSecond}, 2.0);
  std::ostringstream os;
  print_series(os, "demo", t, sim::seconds(1), sim::Time{},
               sim::Time{2 * sim::kTicksPerSecond});
  const std::string s = os.str();
  EXPECT_NE(s.find("# demo"), std::string::npos);
  EXPECT_NE(s.find("t=0.0s"), std::string::npos);
  EXPECT_NE(s.find("t=1.0s"), std::string::npos);
}

TEST(PrintAsciiChart, BarsScaleToMax) {
  sim::Trace t("x");
  t.record(sim::Time{0}, 30.0);
  t.record(sim::Time{sim::kTicksPerSecond}, 60.0);
  std::ostringstream os;
  print_ascii_chart(os, "chart", t, sim::seconds(1), sim::Time{},
                    sim::Time{2 * sim::kTicksPerSecond}, 60.0, 10);
  const std::string s = os.str();
  EXPECT_NE(s.find("#####"), std::string::npos);      // half bar
  EXPECT_NE(s.find("##########"), std::string::npos); // full bar
}

TEST(PrintAsciiChart, ClampsAboveMax) {
  sim::Trace t("x");
  t.record(sim::Time{0}, 1000.0);
  std::ostringstream os;
  print_ascii_chart(os, "chart", t, sim::seconds(1), sim::Time{},
                    sim::Time{sim::kTicksPerSecond}, 10.0, 5);
  EXPECT_NE(os.str().find("#####"), std::string::npos);
}

}  // namespace
}  // namespace ccdem::harness
