// Equivalence of the meter's two retention modes: sampled-snapshot (cheap,
// default) and full-frame (the paper's literal extra-buffer architecture).
// Both compare only grid points, so their classifications must be
// bit-identical on any frame sequence.
#include <gtest/gtest.h>

#include "core/content_rate_meter.h"
#include "sim/rng.h"

namespace ccdem::core {
namespace {

constexpr gfx::Size kScreen{100, 100};

gfx::FrameInfo frame_at(sim::Tick t, gfx::Region damage = {}) {
  gfx::FrameInfo info;
  info.composed_at = sim::Time{t};
  info.content_changed = true;  // ground truth not under test here
  info.dirty = damage.bounds();
  info.damage = std::move(damage);
  return info;
}

TEST(MeterModes, ClassificationsMatchOnRandomSequence) {
  ContentRateMeter sampled(kScreen, GridSpec{10, 10}, sim::seconds(1),
                           MeterMode::kSampledSnapshot);
  ContentRateMeter full(kScreen, GridSpec{10, 10}, sim::seconds(1),
                        MeterMode::kFullFrame);
  gfx::Framebuffer fb(kScreen);
  sim::Rng rng(41);
  for (int i = 0; i < 200; ++i) {
    // Randomly mutate 0-3 pixels anywhere (on or off grid), plus a direct
    // grid-centre hit every fifth frame so both hit and miss paths occur.
    // Every touched pixel is reported as damage (compositor contract).
    gfx::Region damage;
    const auto mutations = rng.uniform_int(0, 3);
    for (int m = 0; m < mutations; ++m) {
      const int x = static_cast<int>(rng.uniform_int(0, 99));
      const int y = static_cast<int>(rng.uniform_int(0, 99));
      fb.set(x, y, gfx::Rgb888::from_packed(
                       static_cast<std::uint32_t>(rng.next_u64())));
      damage.add(gfx::Rect{x, y, 1, 1});
    }
    if (i % 5 == 0) {
      fb.set(45, 45, gfx::Rgb888::from_packed(
                         static_cast<std::uint32_t>(rng.next_u64())));
      damage.add(gfx::Rect{45, 45, 1, 1});
    }
    sampled.on_frame(frame_at(i * 10'000, damage), fb);
    full.on_frame(frame_at(i * 10'000, damage), fb);
    ASSERT_EQ(sampled.meaningful_frames(), full.meaningful_frames())
        << "diverged at frame " << i;
  }
  EXPECT_EQ(sampled.total_frames(), full.total_frames());
  EXPECT_GT(sampled.meaningful_frames(), 30u);   // the grid hits registered
  EXPECT_LT(sampled.meaningful_frames(), 150u);  // and off-grid ones did not
}

TEST(MeterModes, FullFrameRetainsPreviousFrame) {
  ContentRateMeter full(kScreen, GridSpec{10, 10}, sim::seconds(1),
                        MeterMode::kFullFrame);
  gfx::Framebuffer fb(kScreen, gfx::colors::kRed);
  full.on_frame(frame_at(0), fb);
  EXPECT_EQ(full.previous_frame().at(50, 50), gfx::colors::kRed);
  fb.fill(gfx::colors::kBlue);
  full.on_frame(frame_at(10'000, gfx::Region(fb.bounds())), fb);
  EXPECT_EQ(full.previous_frame().at(50, 50), gfx::colors::kBlue);
}

TEST(MeterModes, FullFrameDetectsOnGridChange) {
  ContentRateMeter full(kScreen, GridSpec{10, 10}, sim::seconds(1),
                        MeterMode::kFullFrame);
  gfx::Framebuffer fb(kScreen);
  full.on_frame(frame_at(0), fb);
  fb.set(5, 5, gfx::colors::kWhite);  // grid cell centre
  full.on_frame(frame_at(10'000, gfx::Region(gfx::Rect{5, 5, 1, 1})), fb);
  EXPECT_EQ(full.meaningful_frames(), 2u);
  fb.set(0, 0, gfx::colors::kWhite);  // off grid
  full.on_frame(frame_at(20'000, gfx::Region(gfx::Rect{0, 0, 1, 1})), fb);
  EXPECT_EQ(full.meaningful_frames(), 2u);
}

TEST(MeterModes, DefaultModeIsSampled) {
  ContentRateMeter meter(kScreen, GridSpec{10, 10});
  EXPECT_EQ(meter.mode(), MeterMode::kSampledSnapshot);
}

}  // namespace
}  // namespace ccdem::core
