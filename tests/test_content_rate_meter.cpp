#include "core/content_rate_meter.h"

#include <gtest/gtest.h>

#include "gfx/surface_flinger.h"

namespace ccdem::core {
namespace {

constexpr gfx::Size kScreen{100, 100};

/// Feeds the meter a synthetic frame: optionally mutates a sampled pixel
/// first so the frame reads as meaningful.  Honours the compositor's damage
/// contract: every mutated pixel is covered by dirty/damage (a real
/// compositor cannot change the framebuffer without composing the change).
class MeterFeeder {
 public:
  MeterFeeder() : fb_(kScreen) {}

  void feed(ContentRateMeter& meter, sim::Time t, bool change,
            bool ground_truth_matches = true) {
    gfx::FrameInfo info;
    info.seq = ++seq_;
    info.composed_at = t;
    if (change) {
      // (5, 5) is the centre of the first cell of a 10x10 grid.
      toggle_ = !toggle_;
      fb_.set(5, 5, toggle_ ? gfx::colors::kRed : gfx::colors::kGreen);
      info.dirty = gfx::Rect{5, 5, 1, 1};
      info.damage = gfx::Region(info.dirty);
    }
    info.content_changed = ground_truth_matches ? change : !change;
    meter.on_frame(info, fb_);
  }

 private:
  gfx::Framebuffer fb_;
  std::uint64_t seq_ = 0;
  bool toggle_ = false;
};

ContentRateMeter make_meter() {
  return ContentRateMeter(kScreen, GridSpec{10, 10}, sim::seconds(1));
}

TEST(ContentRateMeter, FirstFrameIsMeaningful) {
  auto meter = make_meter();
  MeterFeeder f;
  f.feed(meter, sim::Time{}, /*change=*/false, /*gt=*/false);
  EXPECT_EQ(meter.total_frames(), 1u);
  EXPECT_EQ(meter.meaningful_frames(), 1u);
}

TEST(ContentRateMeter, DetectsRedundantFrames) {
  auto meter = make_meter();
  MeterFeeder f;
  f.feed(meter, sim::Time{0}, true);
  f.feed(meter, sim::Time{10'000}, false);
  f.feed(meter, sim::Time{20'000}, false);
  EXPECT_EQ(meter.total_frames(), 3u);
  EXPECT_EQ(meter.meaningful_frames(), 1u);
  EXPECT_EQ(meter.redundant_frames(), 2u);
}

TEST(ContentRateMeter, DetectsAlternatingContent) {
  auto meter = make_meter();
  MeterFeeder f;
  for (int i = 0; i < 10; ++i) {
    f.feed(meter, sim::Time{i * 10'000}, i % 2 == 0);
  }
  EXPECT_EQ(meter.meaningful_frames(), 5u);
}

TEST(ContentRateMeter, ContentRateCountsWindowOnly) {
  auto meter = make_meter();
  MeterFeeder f;
  // 10 meaningful frames in the first second.
  for (int i = 0; i < 10; ++i) {
    f.feed(meter, sim::Time{i * 100'000}, true);
  }
  EXPECT_DOUBLE_EQ(meter.content_rate(sim::Time{900'000}), 10.0);
  // Two seconds later the window is empty.
  EXPECT_DOUBLE_EQ(meter.content_rate(sim::Time{3'000'000}), 0.0);
}

TEST(ContentRateMeter, FrameRateIncludesRedundant) {
  auto meter = make_meter();
  MeterFeeder f;
  for (int i = 0; i < 20; ++i) {
    f.feed(meter, sim::Time{i * 50'000}, i % 2 == 0);
  }
  const sim::Time now{950'000};
  EXPECT_DOUBLE_EQ(meter.frame_rate(now), 20.0);
  EXPECT_DOUBLE_EQ(meter.content_rate(now), 10.0);
  EXPECT_DOUBLE_EQ(meter.redundant_rate(now), 10.0);
}

TEST(ContentRateMeter, ErrorRateZeroWhenAgreeingWithGroundTruth) {
  auto meter = make_meter();
  MeterFeeder f;
  for (int i = 0; i < 50; ++i) {
    f.feed(meter, sim::Time{i * 20'000}, i % 3 == 0);
  }
  EXPECT_EQ(meter.misclassified_frames(), 0u);
  EXPECT_DOUBLE_EQ(meter.error_rate(), 0.0);
}

TEST(ContentRateMeter, CountsMisclassification) {
  auto meter = make_meter();
  MeterFeeder f;
  f.feed(meter, sim::Time{0}, true);
  // Ground truth says "changed" but no sampled pixel moved: a miss.
  f.feed(meter, sim::Time{10'000}, /*change=*/false,
         /*ground_truth_matches=*/false);
  EXPECT_EQ(meter.misclassified_frames(), 1u);
}

TEST(ContentRateMeter, ChangeOffGridIsMissed) {
  ContentRateMeter meter(kScreen, GridSpec{10, 10});
  gfx::Framebuffer fb(kScreen);
  gfx::FrameInfo info;
  info.composed_at = sim::Time{};
  info.content_changed = true;
  meter.on_frame(info, fb);
  // Change a pixel no grid cell centre covers: the damage is real and
  // honestly reported, but its rect contains no centre, so the sparse grid
  // cannot see it.
  fb.set(0, 0, gfx::colors::kWhite);
  info.composed_at = sim::Time{10'000};
  info.dirty = gfx::Rect{0, 0, 1, 1};
  info.damage = gfx::Region(info.dirty);
  meter.on_frame(info, fb);
  EXPECT_EQ(meter.meaningful_frames(), 1u);       // missed
  EXPECT_EQ(meter.misclassified_frames(), 1u);    // and counted as an error
}

TEST(ContentRateMeter, CompareCostAccumulates) {
  auto meter = make_meter();
  MeterFeeder f;
  const double per_frame = meter.compare_cost_per_frame_ms();
  EXPECT_GT(per_frame, 0.0);
  f.feed(meter, sim::Time{0}, true);
  f.feed(meter, sim::Time{1}, true);
  EXPECT_NEAR(meter.total_compare_ms(), 2.0 * per_frame, 1e-12);
}

TEST(ContentRateMeter, WindowEdgeIsExclusive) {
  // expire() drops observations with t <= now - window; the rates must use
  // exactly the same edge.  An observation exactly one window ago is out;
  // one tick later it is still in.
  auto meter = make_meter();
  MeterFeeder f;
  f.feed(meter, sim::Time{0}, true);
  // One tick before the edge: the t=0 observation still counts.
  EXPECT_DOUBLE_EQ(meter.frame_rate(sim::Time{999'999}), 1.0);
  EXPECT_DOUBLE_EQ(meter.content_rate(sim::Time{999'999}), 1.0);
  // Exactly at the edge (cutoff == t): excluded.
  EXPECT_DOUBLE_EQ(meter.frame_rate(sim::Time{1'000'000}), 0.0);
  EXPECT_DOUBLE_EQ(meter.content_rate(sim::Time{1'000'000}), 0.0);
}

TEST(ContentRateMeter, RatesTolerateNonMonotonicQueries) {
  // The running-count implementation must match the old reverse-scan for a
  // query earlier than the latest one: nothing new expires, so the whole
  // retained window is counted.
  auto meter = make_meter();
  MeterFeeder f;
  for (int i = 0; i < 5; ++i) {
    f.feed(meter, sim::Time{i * 100'000}, i % 2 == 0);
  }
  EXPECT_DOUBLE_EQ(meter.frame_rate(sim::Time{400'000}), 5.0);
  // Earlier query after a later one: the deque only holds observations
  // newer than the last cutoff, so every one of them is in this window too.
  EXPECT_DOUBLE_EQ(meter.frame_rate(sim::Time{200'000}), 5.0);
  EXPECT_DOUBLE_EQ(meter.content_rate(sim::Time{200'000}), 3.0);
}

TEST(ContentRateMeter, WindowSlidesContinuously) {
  auto meter = make_meter();
  MeterFeeder f;
  // One meaningful frame every 100 ms for 3 s: rate stays ~10 fps.
  for (int i = 0; i < 30; ++i) {
    f.feed(meter, sim::Time{i * 100'000}, true);
    if (i >= 10) {
      EXPECT_NEAR(meter.content_rate(sim::Time{i * 100'000}), 10.0, 1.0);
    }
  }
}

}  // namespace
}  // namespace ccdem::core
