#include "gfx/buffer_pool.h"

#include <gtest/gtest.h>

#include "gfx/framebuffer.h"

namespace ccdem::gfx {
namespace {

TEST(BufferPool, FirstAcquireAllocates) {
  BufferPool pool;
  const auto v = pool.acquire(16, colors::kBlack);
  EXPECT_EQ(v.size(), 16u);
  EXPECT_EQ(pool.acquires(), 1u);
  EXPECT_EQ(pool.reuses(), 0u);
  EXPECT_EQ(pool.allocations(), 1u);
}

TEST(BufferPool, ReleaseThenAcquireReuses) {
  BufferPool pool;
  auto v = pool.acquire(64, colors::kWhite);
  const Rgb888* data = v.data();
  pool.release(std::move(v));
  EXPECT_EQ(pool.free_count(), 1u);

  const auto w = pool.acquire(64, colors::kBlack);
  EXPECT_EQ(w.data(), data);  // same storage came back
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(BufferPool, ReusedBufferIsFullyReinitialised) {
  BufferPool pool;
  auto v = pool.acquire(8, colors::kWhite);
  v[3] = Rgb888{1, 2, 3};
  pool.release(std::move(v));

  const auto w = pool.acquire(8, colors::kBlack);
  ASSERT_EQ(w.size(), 8u);
  for (const Rgb888& px : w) EXPECT_EQ(px, colors::kBlack);
}

TEST(BufferPool, PrefersBufferWithSufficientCapacity) {
  BufferPool pool;
  auto small = pool.acquire(4, colors::kBlack);
  auto big = pool.acquire(100, colors::kBlack);
  const Rgb888* big_data = big.data();
  pool.release(std::move(small));
  pool.release(std::move(big));

  // Needs 50: the 4-pixel buffer would regrow, the 100-pixel one fits.
  const auto v = pool.acquire(50, colors::kBlack);
  EXPECT_EQ(v.data(), big_data);
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST(BufferPool, AcquireReservedReturnsEmptyWithCapacity) {
  BufferPool pool;
  auto v = pool.acquire(32, colors::kWhite);
  pool.release(std::move(v));

  const auto w = pool.acquire_reserved(32);
  EXPECT_TRUE(w.empty());  // starts size-0, like a fresh vector
  EXPECT_GE(w.capacity(), 32u);
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST(BufferPool, MaxFreeBounded) {
  BufferPool pool(/*max_free=*/2);
  for (int i = 0; i < 5; ++i) {
    pool.release(pool.acquire(16, colors::kBlack));
  }
  EXPECT_LE(pool.free_count(), 2u);
}

TEST(BufferPool, PooledFramebufferReleasesOnDestruction) {
  BufferPool pool;
  {
    Framebuffer fb(4, 4, &pool, colors::kWhite);
    EXPECT_EQ(fb.width(), 4);
    EXPECT_EQ(pool.free_count(), 0u);
  }
  EXPECT_EQ(pool.free_count(), 1u);

  // A second framebuffer of the same shape recycles the first one's pixels.
  Framebuffer fb2(4, 4, &pool, colors::kBlack);
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(fb2.at(0, 0), colors::kBlack);
}

TEST(BufferPool, PooledAndFreshFramebuffersCompareEqual) {
  BufferPool pool;
  // Pollute the pool with a differently-sized dirty buffer first.
  {
    Framebuffer scratch(10, 3, &pool, Rgb888{9, 9, 9});
  }
  Framebuffer pooled(6, 5, &pool, colors::kWhite);
  Framebuffer fresh(6, 5, colors::kWhite);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 6; ++x) {
      EXPECT_EQ(pooled.at(x, y), fresh.at(x, y));
    }
  }
}

TEST(BufferPool, MoveTransfersPoolOwnership) {
  BufferPool pool;
  {
    Framebuffer a(4, 4, &pool, colors::kWhite);
    Framebuffer b = std::move(a);
    EXPECT_EQ(b.width(), 4);
  }  // only b releases; the moved-from a must not double-release
  EXPECT_EQ(pool.free_count(), 1u);
}

TEST(BufferPool, CopyIsNeverPoolBacked) {
  BufferPool pool;
  {
    Framebuffer a(4, 4, &pool, colors::kWhite);
    Framebuffer copy = a;
    EXPECT_EQ(copy.at(0, 0), colors::kWhite);
  }  // a releases once; the copy owns plain heap storage
  EXPECT_EQ(pool.free_count(), 1u);
}

}  // namespace
}  // namespace ccdem::gfx
