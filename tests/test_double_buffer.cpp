#include "gfx/double_buffer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gfx/framebuffer.h"

namespace ccdem::gfx {
namespace {

TEST(DoubleBuffer, DefaultConstructed) {
  DoubleBuffer<int> db;
  EXPECT_EQ(db.front(), 0);
  EXPECT_EQ(db.back(), 0);
  EXPECT_EQ(db.front_index(), 0);
}

TEST(DoubleBuffer, InitialFrontBack) {
  DoubleBuffer<std::string> db("front", "back");
  EXPECT_EQ(db.front(), "front");
  EXPECT_EQ(db.back(), "back");
}

TEST(DoubleBuffer, SwapExchangesRoles) {
  DoubleBuffer<int> db(1, 2);
  db.swap();
  EXPECT_EQ(db.front(), 2);
  EXPECT_EQ(db.back(), 1);
  db.swap();
  EXPECT_EQ(db.front(), 1);
  EXPECT_EQ(db.back(), 2);
}

TEST(DoubleBuffer, SwapIsConstantTimeNoDataMove) {
  // Swapping must not move buffer contents: pointers stay stable.
  DoubleBuffer<std::vector<int>> db(std::vector<int>(1000, 1),
                                    std::vector<int>(1000, 2));
  const int* front_data = db.front().data();
  const int* back_data = db.back().data();
  db.swap();
  EXPECT_EQ(db.front().data(), back_data);
  EXPECT_EQ(db.back().data(), front_data);
}

TEST(DoubleBuffer, MutationsSurviveSwap) {
  DoubleBuffer<int> db(0, 0);
  db.front() = 42;
  db.swap();
  EXPECT_EQ(db.back(), 42);
}

TEST(DoubleBuffer, MeterUsagePattern) {
  // The content-rate meter's cycle: capture into front, compare against
  // back, swap -- after the swap the fresh capture has become "previous".
  DoubleBuffer<std::vector<gfx::Rgb888>> db;
  db.front() = {colors::kRed};
  db.swap();
  db.front() = {colors::kBlue};
  EXPECT_EQ(db.back()[0], colors::kRed);   // previous frame
  EXPECT_EQ(db.front()[0], colors::kBlue); // current frame
  db.swap();
  EXPECT_EQ(db.back()[0], colors::kBlue);
}

TEST(DoubleBuffer, WorksWithFramebuffers) {
  DoubleBuffer<Framebuffer> db(Framebuffer(4, 4, colors::kRed),
                               Framebuffer(4, 4, colors::kBlue));
  EXPECT_EQ(db.front().at(0, 0), colors::kRed);
  db.swap();
  EXPECT_EQ(db.front().at(0, 0), colors::kBlue);
}

}  // namespace
}  // namespace ccdem::gfx
