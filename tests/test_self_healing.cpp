// Self-healing refresh control (DESIGN.md section 9): the DPM's recovery
// plane against a scripted flaky link -- retry/backoff on NAKs, watchdog
// fallback when the panel stops serving the target, safe mode after a fault
// streak, and re-arm after the cooldown.
#include <gtest/gtest.h>

#include <memory>

#include "core/display_power_manager.h"
#include "display/display_panel.h"
#include "gfx/surface_flinger.h"
#include "sim/simulator.h"

namespace ccdem::core {
namespace {

constexpr gfx::Size kScreen{100, 100};

/// Posts a frame every vsync, toggling a sampled pixel at `content_fps`
/// (same rig as test_display_power_manager).
class TogglerApp final : public display::VsyncObserver {
 public:
  TogglerApp(gfx::Surface* s, double content_fps)
      : surface_(s), content_fps_(content_fps) {}

  void on_vsync(sim::Time t, int) override {
    gfx::Canvas& c = surface_->begin_frame();
    const auto version = static_cast<std::int64_t>(t.seconds() * content_fps_);
    if (version != last_version_) {
      last_version_ = version;
      toggle_ = !toggle_;
      c.fill_rect(gfx::Rect{0, 0, 20, 20},
                  toggle_ ? gfx::colors::kRed : gfx::colors::kBlue);
    }
    surface_->post_frame();
  }

  void set_content_fps(double fps) { content_fps_ = fps; }

 private:
  gfx::Surface* surface_;
  double content_fps_;
  std::int64_t last_version_ = -1;
  bool toggle_ = false;
};

class ComposerHook final : public display::VsyncObserver {
 public:
  explicit ComposerHook(gfx::SurfaceFlinger& f) : f_(f) {}
  void on_vsync(sim::Time t, int) override { f_.on_vsync(t); }

 private:
  gfx::SurfaceFlinger& f_;
};

/// A deterministic DDIC stand-in: NAKs the next `nak_remaining` requests,
/// or every downward request while `nak_downward` holds.
class ScriptedLink final : public display::SwitchInterceptor {
 public:
  int nak_remaining = 0;
  bool nak_downward = false;
  bool nak_all = false;
  sim::Duration settle{};
  int requests = 0;
  int naks = 0;

  Decision on_switch_request(sim::Time, int from_hz, int to_hz) override {
    ++requests;
    Decision d;
    const bool scripted_nak =
        nak_all || nak_remaining > 0 || (nak_downward && to_hz < from_hz);
    if (scripted_nak) {
      if (nak_remaining > 0) --nak_remaining;
      ++naks;
      d.ack = false;
      return d;
    }
    d.settle = settle;
    return d;
  }
};

RecoveryConfig fast_recovery() {
  RecoveryConfig r;
  r.enabled = true;
  r.max_retries = 2;
  r.retry_backoff = sim::milliseconds(20);
  r.switch_timeout = sim::milliseconds(200);
  r.watchdog_window = sim::milliseconds(600);
  r.safe_mode_after = 2;
  r.safe_mode_cooldown = sim::seconds(1);
  return r;
}

struct Rig {
  sim::Simulator sim;
  gfx::SurfaceFlinger flinger{kScreen};
  display::DisplayPanel panel;
  ScriptedLink link;
  gfx::Surface* surface =
      flinger.create_surface("app", gfx::Rect::of(kScreen), 0);
  std::unique_ptr<TogglerApp> app;
  std::unique_ptr<ComposerHook> composer;
  std::unique_ptr<DisplayPowerManager> dpm;

  explicit Rig(double content_fps, DpmConfig config = {}, int start_hz = 60,
               bool recovery = true,
               display::RefreshRateSet rates =
                   display::RefreshRateSet::galaxy_s3())
      : panel(sim, rates, start_hz) {
    config.meter.grid = GridSpec{10, 10};
    if (recovery && !config.recovery.enabled) {
      config.recovery = fast_recovery();
    }
    panel.set_switch_interceptor(&link);
    app = std::make_unique<TogglerApp>(surface, content_fps);
    composer = std::make_unique<ComposerHook>(flinger);
    panel.add_observer(display::VsyncPhase::kApp, app.get());
    panel.add_observer(display::VsyncPhase::kComposer, composer.get());
    dpm = std::make_unique<DisplayPowerManager>(
        sim, panel, flinger,
        build_pipeline(PipelineSpec{{StageId::kSection, StageId::kBoost}},
                       panel.rates(), config),
        nullptr, config);
  }

  /// Steps until `pred` holds or `limit` elapses; true when it held.
  template <typename Pred>
  bool run_until_state(Pred pred, sim::Duration limit) {
    const sim::Time deadline = sim.now() + limit;
    while (sim.now() < deadline) {
      if (pred()) return true;
      sim.run_for(sim::milliseconds(50));
    }
    return pred();
  }
};

TEST(SelfHealing, TransientNakHealsThroughRetries) {
  Rig rig(/*content_fps=*/5.0);
  rig.link.nak_remaining = 2;  // first request + first retry refused
  rig.sim.run_for(sim::seconds(3));
  // The retry ladder pushed through once the link recovered.
  EXPECT_EQ(rig.panel.refresh_hz(), 20);
  EXPECT_EQ(rig.dpm->degradation_state(), DegradationState::kNormal);
  EXPECT_EQ(rig.dpm->consecutive_faults(), 0);
  EXPECT_GE(rig.link.naks, 2);
}

TEST(SelfHealing, PersistentNakGivesUpAndHoldsQualitySafeRate) {
  Rig rig(/*content_fps=*/5.0);
  rig.link.nak_downward = true;  // the panel refuses to slow down, forever
  const bool degraded = rig.run_until_state(
      [&] {
        return rig.dpm->degradation_state() != DegradationState::kNormal &&
               rig.dpm->degradation_state() != DegradationState::kRetrying;
      },
      sim::seconds(10));
  EXPECT_TRUE(degraded);
  // The quality-safe direction: the panel never left the maximum.
  EXPECT_EQ(rig.panel.refresh_hz(), 60);
  EXPECT_GT(rig.link.naks, 0);
}

TEST(SelfHealing, FaultStreakEntersSafeModeAndRearmsAfterHealing) {
  Rig rig(/*content_fps=*/5.0);
  rig.link.nak_downward = true;
  const bool safe = rig.run_until_state(
      [&] {
        return rig.dpm->degradation_state() == DegradationState::kSafeMode;
      },
      sim::seconds(20));
  ASSERT_TRUE(safe);
  EXPECT_EQ(rig.panel.refresh_hz(), 60);  // pinned to max while safe

  // The link heals; after the cooldown the controller re-arms and resumes
  // content-rate control.
  rig.link.nak_downward = false;
  const bool rearmed = rig.run_until_state(
      [&] {
        return rig.dpm->degradation_state() == DegradationState::kNormal &&
               rig.panel.refresh_hz() == 20;
      },
      sim::seconds(10));
  EXPECT_TRUE(rearmed);
  EXPECT_EQ(rig.dpm->consecutive_faults(), 0);
}

TEST(SelfHealing, WatchdogTripsWhenPanelUnderserves) {
  // Start low with demanding content and a link that refuses every switch:
  // the content rate wants 60 Hz, the panel is stuck at 20.  The watchdog
  // must detect sustained underserving and degrade (the fallback push is
  // also refused, but the state machine must not sit in kNormal).
  Rig rig(/*content_fps=*/55.0, {}, /*start_hz=*/20);
  rig.link.nak_all = true;
  const bool tripped = rig.run_until_state(
      [&] {
        return rig.dpm->degradation_state() == DegradationState::kFallback ||
               rig.dpm->degradation_state() == DegradationState::kSafeMode;
      },
      sim::seconds(15));
  EXPECT_TRUE(tripped);
  EXPECT_GT(rig.link.naks, 0);
}

TEST(SelfHealing, SettleDelayIsWaitedOutWithoutFaulting) {
  Rig rig(/*content_fps=*/5.0);
  rig.link.settle = sim::milliseconds(150);  // slow but honest DDIC
  rig.sim.run_for(sim::seconds(3));
  EXPECT_EQ(rig.panel.refresh_hz(), 20);
  EXPECT_EQ(rig.dpm->degradation_state(), DegradationState::kNormal);
  EXPECT_EQ(rig.dpm->consecutive_faults(), 0);
}

TEST(SelfHealing, CapabilityLossRevalidatesToNextRateUp) {
  Rig rig(/*content_fps=*/5.0);
  rig.sim.run_for(sim::seconds(3));
  ASSERT_EQ(rig.panel.refresh_hz(), 20);
  // The DDIC stops advertising the two lowest rungs mid-run.
  rig.panel.set_rate_advertised(20, false);
  rig.panel.set_rate_advertised(24, false);
  rig.sim.run_for(sim::seconds(2));
  // 5 fps still maps to 20 Hz, but the advertised ladder starts at 30 now.
  EXPECT_EQ(rig.panel.refresh_hz(), 30);
  // Capability returns; the controller settles back down.
  rig.panel.set_rate_advertised(20, true);
  rig.panel.set_rate_advertised(24, true);
  rig.sim.run_for(sim::seconds(2));
  EXPECT_EQ(rig.panel.refresh_hz(), 20);
  EXPECT_EQ(rig.dpm->degradation_state(), DegradationState::kNormal);
}

TEST(SelfHealing, RecoveryDisabledMatchesClassicBehaviour) {
  // With recovery off (the default), a NAK is simply dropped on the floor:
  // no retries, no state machine -- and the next evaluation re-requests.
  Rig rig(/*content_fps=*/5.0, {}, /*start_hz=*/60, /*recovery=*/false);
  rig.link.nak_remaining = 1;
  rig.sim.run_for(sim::seconds(3));
  // The evaluation cadence re-requested after the dropped NAK.
  EXPECT_EQ(rig.panel.refresh_hz(), 20);
  EXPECT_EQ(rig.dpm->degradation_state(), DegradationState::kNormal);
}

TEST(SelfHealing, SafeModeIgnoresTouchBoostRedundantly) {
  // In safe mode the panel is already pinned at max; a touch must not
  // reopen the retry ladder or perturb the state.
  Rig rig(/*content_fps=*/5.0);
  rig.link.nak_downward = true;
  ASSERT_TRUE(rig.run_until_state(
      [&] {
        return rig.dpm->degradation_state() == DegradationState::kSafeMode;
      },
      sim::seconds(20)));
  const int requests_before = rig.link.requests;
  input::TouchEvent e{rig.sim.now(), {10, 10},
                      input::TouchEvent::Action::kDown};
  rig.dpm->on_touch(e);
  EXPECT_EQ(rig.dpm->degradation_state(), DegradationState::kSafeMode);
  EXPECT_EQ(rig.link.requests, requests_before);
}

TEST(SelfHealing, BackoffShiftSaturatesAtDeepRetryCounts) {
  // schedule_retry computes `backoff << min(retries, 16)`.  With a retry
  // budget far past the clamp, an unclamped shift would be UB (shift >= 64)
  // or push the next retry days out; the clamp keeps the cadence at
  // backoff * 2^16 so a persistently refusing link still accumulates
  // retries and reaches the give-up path inside the run.
  DpmConfig config;
  config.recovery.enabled = true;
  config.recovery.max_retries = 100;
  config.recovery.retry_backoff = sim::Duration{1};  // 1 us base
  config.recovery.switch_timeout = sim::seconds(30);
  config.recovery.safe_mode_after = 1000;  // keep the ladder running
  Rig rig(/*content_fps=*/5.0, config);
  rig.link.nak_all = true;
  rig.sim.run_for(sim::seconds(10));
  // Saturated cadence is ~65 ms per attempt: the first ladder alone burns
  // its 100 retries in ~5.6 s of simulated time.
  EXPECT_GT(rig.link.naks, 80);
  EXPECT_NE(rig.dpm->degradation_state(), DegradationState::kNormal);
}

TEST(SelfHealing, SafeModeRearmsExactlyAtCooldownBoundary) {
  Rig rig(/*content_fps=*/5.0);
  rig.link.nak_downward = true;
  ASSERT_TRUE(rig.run_until_state(
      [&] {
        return rig.dpm->degradation_state() == DegradationState::kSafeMode;
      },
      sim::seconds(20)));
  rig.link.nak_downward = false;  // the link heals during the cooldown

  // One tick before the boundary the controller must still be in safe
  // mode (re-arm is `now >= safe_until`, never early) ...
  const sim::Time boundary = rig.dpm->safe_until();
  ASSERT_GT(boundary.ticks, rig.sim.now().ticks);
  rig.sim.run_until(sim::Time{boundary.ticks - 1});
  EXPECT_EQ(rig.dpm->degradation_state(), DegradationState::kSafeMode);

  // ... and the first evaluation tick at or past the boundary re-arms.
  rig.sim.run_for(sim::Duration{sim::milliseconds(100).ticks + 1});
  EXPECT_EQ(rig.dpm->degradation_state(), DegradationState::kNormal);
  EXPECT_EQ(rig.dpm->consecutive_faults(), 0);
}

TEST(SelfHealing, SafeModeEntryWithSingleRungLadder) {
  // A one-rate panel has no downward switch to fault on, so the fault
  // streak is injected straight through the RecoveryHost interface.  Entry
  // must pin the only rung (max == min == 60) without any rate motion, and
  // the cooldown must re-arm cleanly.
  Rig rig(/*content_fps=*/5.0, {}, /*start_hz=*/60, /*recovery=*/true,
          display::RefreshRateSet({60}));
  rig.sim.run_for(sim::seconds(1));
  rig.dpm->note_fault(rig.sim.now());
  rig.dpm->note_fault(rig.sim.now());  // fast_recovery: safe_mode_after = 2
  EXPECT_EQ(rig.dpm->degradation_state(), DegradationState::kSafeMode);
  EXPECT_EQ(rig.panel.refresh_hz(), 60);
  ASSERT_TRUE(rig.run_until_state(
      [&] {
        return rig.dpm->degradation_state() == DegradationState::kNormal;
      },
      sim::seconds(5)));
  EXPECT_EQ(rig.panel.refresh_hz(), 60);
  EXPECT_EQ(rig.dpm->consecutive_faults(), 0);
}

}  // namespace
}  // namespace ccdem::core
