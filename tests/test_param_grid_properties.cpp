// Parameterized property tests for grid sampling across every grid
// configuration of Fig. 6 and several screen geometries.
#include "core/grid_sampler.h"

#include <gtest/gtest.h>

#include "core/metering_cost_model.h"

#include <set>
#include <tuple>

#include "sim/rng.h"

namespace ccdem::core {
namespace {

using Param = std::tuple<int /*sweep index*/>;

class GridProperty : public ::testing::TestWithParam<int> {
 protected:
  [[nodiscard]] GridSpec grid() const {
    return GridSpec::figure6_sweep()[static_cast<std::size_t>(GetParam())];
  }
  static constexpr gfx::Size kScreen{720, 1280};
};

TEST_P(GridProperty, SampleCountMatchesSpec) {
  const GridSampler s(kScreen, grid());
  EXPECT_EQ(static_cast<std::int64_t>(s.sample_count()),
            grid().sample_count());
}

TEST_P(GridProperty, PointsAreUniqueAndInBounds) {
  const GridSampler s(kScreen, grid());
  std::set<std::pair<int, int>> seen;
  for (const auto& p : s.points()) {
    EXPECT_TRUE(gfx::Rect::of(kScreen).contains(p));
    EXPECT_TRUE(seen.insert({p.x, p.y}).second) << "duplicate sample point";
  }
}

TEST_P(GridProperty, SelfComparisonNeverDiffers) {
  const GridSampler s(kScreen, grid());
  gfx::Framebuffer fb(kScreen);
  sim::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    fb.set(static_cast<int>(rng.uniform_int(0, kScreen.width - 1)),
           static_cast<int>(rng.uniform_int(0, kScreen.height - 1)),
           gfx::Rgb888::from_packed(static_cast<std::uint32_t>(rng.next_u64())));
  }
  std::vector<gfx::Rgb888> snap;
  s.sample(fb, snap);
  EXPECT_FALSE(s.differs(fb, snap));
}

TEST_P(GridProperty, EverySampledPixelChangeIsDetected) {
  const GridSampler s(kScreen, grid());
  gfx::Framebuffer fb(kScreen);
  std::vector<gfx::Rgb888> snap;
  s.sample(fb, snap);
  sim::Rng rng(4);
  // Flip 32 randomly chosen sample points, one at a time.
  for (int i = 0; i < 32; ++i) {
    const auto k = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(s.sample_count()) - 1));
    const gfx::Point p = s.points()[k];
    const gfx::Rgb888 old = fb.at(p.x, p.y);
    fb.set(p.x, p.y, gfx::Rgb888{static_cast<std::uint8_t>(old.r + 1),
                                 old.g, old.b});
    EXPECT_TRUE(s.differs(fb, snap)) << "sample " << k;
    fb.set(p.x, p.y, old);
    EXPECT_FALSE(s.differs(fb, snap));
  }
}

TEST_P(GridProperty, SampleExtractionRoundTrips) {
  const GridSampler s(kScreen, grid());
  gfx::Framebuffer fb(kScreen);
  sim::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    fb.set(static_cast<int>(rng.uniform_int(0, kScreen.width - 1)),
           static_cast<int>(rng.uniform_int(0, kScreen.height - 1)),
           gfx::colors::kRed);
  }
  std::vector<gfx::Rgb888> snap;
  s.sample(fb, snap);
  ASSERT_EQ(snap.size(), s.sample_count());
  for (std::size_t k = 0; k < snap.size(); ++k) {
    const gfx::Point p = s.points()[k];
    EXPECT_EQ(snap[k], fb.at(p.x, p.y));
  }
}

TEST_P(GridProperty, CostIsMonotoneAcrossSweep) {
  const MeteringCostModel cost;
  const auto sweep = GridSpec::figure6_sweep();
  const int i = GetParam();
  if (i == 0) return;
  EXPECT_GT(cost.duration_ms(sweep[static_cast<std::size_t>(i)].sample_count()),
            cost.duration_ms(
                sweep[static_cast<std::size_t>(i - 1)].sample_count()));
}

INSTANTIATE_TEST_SUITE_P(Figure6Sweep, GridProperty, ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0: return std::string("grid2K");
                             case 1: return std::string("grid4K");
                             case 2: return std::string("grid9K");
                             case 3: return std::string("grid36K");
                             default: return std::string("full921K");
                           }
                         });

}  // namespace
}  // namespace ccdem::core
