// RAII per-test scratch directory.
//
// Tests that write files (repro dumps, golden regeneration, trace exports)
// get a private mkdtemp() directory instead of sharing a path in the source
// tree, which is what makes the suite safe under `ctest -j`.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <string>

namespace ccdem::testing {

class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "ccdem_test_XXXXXX")
            .string();
    if (mkdtemp(tmpl.data()) != nullptr) path_ = tmpl;
  }
  ~TempDir() {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] bool ok() const { return !path_.empty(); }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  [[nodiscard]] std::filesystem::path file(const std::string& name) const {
    return path_ / name;
  }

 private:
  std::filesystem::path path_;
};

}  // namespace ccdem::testing
