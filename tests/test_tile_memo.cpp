// Tile-hash compose memoization (gfx/tile_cache.h + SurfaceFlinger).
//
// The property under test is byte-identity: a flinger with memoization on
// must produce exactly the same framebuffer bytes and the same
// content_changed ground truth as one with it off, for any paint sequence --
// while actually skipping redundant pixel writes (the stats prove the skips
// happen).  A forced-hash-collision run (CCDEM_MEMO_COLLIDE=1) shows that
// correctness never rides on hash uniqueness: every colliding tile is still
// detected as changed through the byte-verify path.
#include "gfx/tile_cache.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "gfx/surface_flinger.h"
#include "sim/rng.h"

namespace ccdem::gfx {
namespace {

TEST(TileCache, GridGeometryClipsEdgeTiles) {
  const TileCache cache(Size{150, 100});  // 3x2 grid, both edges partial
  EXPECT_EQ(cache.tiles_x(), 3);
  EXPECT_EQ(cache.tiles_y(), 2);
  EXPECT_EQ(cache.tile_rect(0, 0), (Rect{0, 0, 64, 64}));
  EXPECT_EQ(cache.tile_rect(2, 0), (Rect{128, 0, 22, 64}));
  EXPECT_EQ(cache.tile_rect(0, 1), (Rect{0, 64, 64, 36}));
  EXPECT_EQ(cache.tile_rect(2, 1), (Rect{128, 64, 22, 36}));
}

TEST(TileCache, StoreInvalidateFold) {
  TileCache cache(Size{100, 60});  // 2x1 grid
  EXPECT_FALSE(cache.all_valid());
  cache.store(cache.index(0, 0), 111);
  EXPECT_FALSE(cache.all_valid());
  cache.store(cache.index(1, 0), 222);
  EXPECT_TRUE(cache.all_valid());
  const std::uint64_t fold_a = cache.fold();
  cache.store(cache.index(1, 0), 333);
  EXPECT_NE(cache.fold(), fold_a);
  cache.store(cache.index(1, 0), 222);
  EXPECT_EQ(cache.fold(), fold_a);  // fold is a pure function of the hashes
  cache.invalidate(cache.index(0, 0));
  EXPECT_FALSE(cache.all_valid());
  cache.reset();
  EXPECT_FALSE(cache.all_valid());
}

/// Applies one deterministic pseudo-random paint step to a surface.  Mixes
/// full repaints of identical content (memoizable), real changes, and
/// partial-tile touches, across tile boundaries.
void paint_step(Surface* s, int step, sim::Rng& rng) {
  Canvas& c = s->begin_frame();
  const int kind = step % 5;
  const auto color = [&](int salt) {
    return Rgb888{static_cast<std::uint8_t>(50 + (salt * 37) % 180),
                  static_cast<std::uint8_t>(30 + (salt * 53) % 200),
                  static_cast<std::uint8_t>(90 + (salt * 11) % 150)};
  };
  const Rect bounds = Rect::of(
      Size{s->buffer().width(), s->buffer().height()});
  switch (kind) {
    case 0:  // full repaint, content keyed to a slow epoch: often identical
      c.fill_rect(bounds, color(step / 10));
      break;
    case 1: {  // small change inside one tile
      const int x = static_cast<int>(rng.uniform_int(0, bounds.width - 9));
      const int y = static_cast<int>(rng.uniform_int(0, bounds.height - 9));
      c.fill_rect(Rect{x, y, 8, 8}, color(step));
      break;
    }
    case 2:  // band across several tiles, changing
      c.fill_rect(Rect{0, 10, bounds.width, 20}, color(step));
      break;
    case 3:  // band across several tiles, redrawn identical to case-2 epoch
      c.fill_rect(Rect{0, 10, bounds.width, 20}, color(step - 1));
      break;
    default:  // redundant post: dirty rect with unchanged pixels
      c.fill_rect(Rect{4, 40, 16, 16},
                  c.framebuffer().at(4, 40));
      break;
  }
  s->post_frame();
}

TEST(TileMemo, LockstepByteIdentityWithMemoOff) {
  SurfaceFlinger memo({200, 150});   // 4x3 tiles, right/bottom partial
  SurfaceFlinger plain({200, 150});
  plain.set_tile_memo(false);

  Surface* sm = memo.create_surface("app", Rect{0, 0, 200, 150}, 0);
  Surface* sp = plain.create_surface("app", Rect{0, 0, 200, 150}, 0);
  // An overlay surface with an offset, overlapping the app across a tile
  // boundary, exercises the translated compare/copy paths.
  Surface* om = memo.create_surface("overlay", Rect{40, 30, 80, 50}, 1);
  Surface* op = plain.create_surface("overlay", Rect{40, 30, 80, 50}, 1);

  class Probe final : public FrameListener {
   public:
    void on_frame(const FrameInfo& info, const Framebuffer&) override {
      last = info;
    }
    FrameInfo last;
  };
  Probe pm, pp;
  memo.add_listener(&pm);
  plain.add_listener(&pp);

  sim::Rng rng_m(7), rng_p(7), rng_overlay_m(9), rng_overlay_p(9);
  std::vector<Rgb888> prev(memo.framebuffer().pixels().begin(),
                           memo.framebuffer().pixels().end());
  for (int step = 0; step < 60; ++step) {
    paint_step(sm, step, rng_m);
    paint_step(sp, step, rng_p);
    if (step % 3 == 0) {
      paint_step(om, step / 3, rng_overlay_m);
      paint_step(op, step / 3, rng_overlay_p);
    }
    ASSERT_EQ(memo.on_vsync(sim::Time{step}), plain.on_vsync(sim::Time{step}));
    // Byte identity of the displayed frame is the whole claim.
    ASSERT_TRUE(memo.framebuffer().equals(plain.framebuffer()))
        << "step " << step;
    // And the ground truth the governor feeds on must agree exactly.
    ASSERT_EQ(pm.last.content_changed, pp.last.content_changed)
        << "step " << step;
    ASSERT_EQ(pm.last.composed_pixels, pp.last.composed_pixels)
        << "step " << step;
    // The meter contract: the shrunk damage still contains every pixel that
    // actually changed on screen this frame.
    const Framebuffer& fb = memo.framebuffer();
    for (int y = 0; y < fb.height(); ++y) {
      for (int x = 0; x < fb.width(); ++x) {
        const std::size_t i =
            static_cast<std::size_t>(y) * fb.width() + x;
        if (!(fb.pixels()[i] == prev[i])) {
          ASSERT_TRUE(pm.last.damage.contains(Point{x, y}))
              << "step " << step << " px " << x << "," << y;
        }
      }
    }
    prev.assign(fb.pixels().begin(), fb.pixels().end());
  }

  // The identical-content steps above must actually have been memoized.
  const SurfaceFlinger::MemoStats& stats = memo.memo_stats();
  EXPECT_GT(stats.pixels_skipped, 0u);
  EXPECT_GT(stats.tile_hits, 0u);
  EXPECT_EQ(stats.tile_collisions, 0u);
  EXPECT_LT(stats.pixels_written, plain.memo_stats().pixels_written);
  // Both modes account every composed pixel as written or skipped.
  EXPECT_EQ(stats.pixels_written + stats.pixels_skipped,
            plain.memo_stats().pixels_written);
}

TEST(TileMemo, FullyRedundantFrameIsMemoized) {
  SurfaceFlinger flinger({64, 64});
  Surface* s = flinger.create_surface("a", Rect{0, 0, 64, 64}, 0);
  s->begin_frame().fill_rect(Rect{0, 0, 64, 64}, colors::kRed);
  s->post_frame();
  flinger.on_vsync(sim::Time{0});
  EXPECT_EQ(flinger.memo_stats().frames_memoized, 0u);
  // Same bytes again: real dirty rect, zero writes.
  s->begin_frame().fill_rect(Rect{0, 0, 64, 64}, colors::kRed);
  s->post_frame();
  flinger.on_vsync(sim::Time{1});
  EXPECT_EQ(flinger.memo_stats().frames_memoized, 1u);
  EXPECT_EQ(flinger.content_frames(), 1u);
}

TEST(TileMemo, FrameRingSpotsLoopRepeats) {
  SurfaceFlinger flinger({64, 64});  // single tile: fold is warm after one
  Surface* s = flinger.create_surface("a", Rect{0, 0, 64, 64}, 0);
  const auto paint = [&](Rgb888 color, int t) {
    s->begin_frame().fill_rect(Rect{0, 0, 64, 64}, color);
    s->post_frame();
    flinger.on_vsync(sim::Time{t});
  };
  paint(colors::kRed, 0);
  paint(colors::kBlue, 1);
  EXPECT_EQ(flinger.memo_stats().frame_repeats, 0u);
  paint(colors::kRed, 2);  // exact repeat of frame 0 -> ring hit
  EXPECT_EQ(flinger.memo_stats().frame_repeats, 1u);
}

TEST(TileMemoCollision, ForcedCollisionsStillDetectEveryChange) {
  ::setenv("CCDEM_MEMO_COLLIDE", "1", 1);
  {
    SurfaceFlinger flinger({64, 64});
    Surface* s = flinger.create_surface("a", Rect{0, 0, 64, 64}, 0);
    const auto paint = [&](Rgb888 color, int t) {
      s->begin_frame().fill_rect(Rect{0, 0, 64, 64}, color);
      s->post_frame();
      flinger.on_vsync(sim::Time{t});
    };
    paint(colors::kRed, 0);
    ASSERT_EQ(flinger.framebuffer().at(5, 5), colors::kRed);
    // Changed bytes under a constant hash: the lookup "hits", the verify
    // must catch the difference and write anyway.
    paint(colors::kBlue, 1);
    EXPECT_EQ(flinger.framebuffer().at(5, 5), colors::kBlue);
    EXPECT_GE(flinger.memo_stats().tile_collisions, 1u);
    // Unchanged bytes still memoize (hit + verify-equal + skip).
    const std::uint64_t written_before = flinger.memo_stats().pixels_written;
    paint(colors::kBlue, 2);
    EXPECT_EQ(flinger.memo_stats().pixels_written, written_before);
    EXPECT_GT(flinger.memo_stats().tile_hits, 0u);
    EXPECT_EQ(flinger.framebuffer().at(5, 5), colors::kBlue);
  }
  ::unsetenv("CCDEM_MEMO_COLLIDE");
}

}  // namespace
}  // namespace ccdem::gfx
