#include "power/monsoon_meter.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace ccdem::power {
namespace {

DevicePowerParams flat_params(double total_mw) {
  DevicePowerParams p;
  p.soc_base_mw = total_mw;
  p.panel_static_mw = 0.0;
  p.panel_per_hz_mw = 0.0;
  return p;
}

TEST(MonsoonMeter, ConstantPowerSampledExactly) {
  sim::Simulator sim;
  DevicePowerModel model(flat_params(500.0), 60);
  MonsoonMeter meter(sim, model, sim::milliseconds(100));
  sim.run_for(sim::seconds(2));
  EXPECT_EQ(meter.trace().size(), 20u);
  for (const auto& p : meter.trace().points()) {
    EXPECT_NEAR(p.value, 500.0, 1e-9);
  }
  EXPECT_NEAR(meter.mean_power_mw(), 500.0, 1e-9);
}

TEST(MonsoonMeter, CapturesImpulseEnergyInInterval) {
  sim::Simulator sim;
  DevicePowerModel model(flat_params(100.0), 60);
  MonsoonMeter meter(sim, model, sim::milliseconds(100));
  // 10 mJ impulse at t = 150 ms lands in the second 100 ms sample:
  // 100 mW + 10 mJ / 0.1 s = 200 mW.
  sim.at(sim::Time{150'000},
         [&](sim::Time t) { model.add_energy_mj(t, 10.0); });
  sim.run_for(sim::seconds(1));
  ASSERT_GE(meter.trace().size(), 2u);
  EXPECT_NEAR(meter.trace().points()[0].value, 100.0, 1e-9);
  EXPECT_NEAR(meter.trace().points()[1].value, 200.0, 1e-9);
}

TEST(MonsoonMeter, StepChangeReflectedInMean) {
  sim::Simulator sim;
  DevicePowerModel model(flat_params(0.0), 60);
  // Use the per-Hz term to create a step: 2 mW/Hz * 60 -> 120 mW, then 20 Hz
  // -> 40 mW.
  DevicePowerParams p;
  p.soc_base_mw = 0.0;
  p.panel_static_mw = 0.0;
  p.panel_per_hz_mw = 2.0;
  DevicePowerModel stepped(p, 60);
  MonsoonMeter meter(sim, stepped, sim::milliseconds(50));
  sim.at(sim::Time{sim::kTicksPerSecond},
         [&](sim::Time t) { stepped.on_rate_change(t, 20); });
  sim.run_for(sim::seconds(2));
  EXPECT_NEAR(meter.mean_power_mw(), (120.0 + 40.0) / 2.0, 1.0);
}

TEST(MonsoonMeter, StopFreezesTrace) {
  sim::Simulator sim;
  DevicePowerModel model(flat_params(100.0), 60);
  MonsoonMeter meter(sim, model, sim::milliseconds(100));
  sim.run_for(sim::milliseconds(500));
  meter.stop();
  const auto n = meter.trace().size();
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(meter.trace().size(), n);
}

TEST(MonsoonMeter, TotalEnergyMatchesModel) {
  sim::Simulator sim;
  DevicePowerModel model(flat_params(250.0), 60);
  MonsoonMeter meter(sim, model, sim::milliseconds(100));
  sim.run_for(sim::seconds(4));
  EXPECT_NEAR(meter.total_energy_mj(), 1000.0, 1e-6);
}

}  // namespace
}  // namespace ccdem::power
