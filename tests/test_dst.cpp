// DST front door: generator determinism, repro round-trips, the
// embedded-script == Monkey equivalence, and a small always-on fuzz pass.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/app_profiles.h"
#include "check/dst.h"
#include "check/oracles.h"
#include "device/simulated_device.h"
#include "input/monkey.h"

namespace ccdem::check {
namespace {

TEST(ScenarioGen, DeterministicInSeed) {
  ScenarioGen a(7);
  ScenarioGen b(7);
  bool any_fault = false;
  bool any_fleet = false;
  for (int i = 0; i < 30; ++i) {
    const Scenario sa = a.next();
    const Scenario sb = b.next();
    EXPECT_EQ(sa, sb) << "scenario " << i << " diverged";
    any_fault |= sa.fault_scale > 0.0;
    any_fleet |= sa.fleet;
  }
  EXPECT_TRUE(any_fault);
  EXPECT_TRUE(any_fleet);
  EXPECT_EQ(a.generated(), 30u);
}

TEST(ScenarioGen, DifferentSeedsDiverge) {
  ScenarioGen a(7);
  ScenarioGen b(8);
  bool diverged = false;
  for (int i = 0; i < 10 && !diverged; ++i) diverged = !(a.next() == b.next());
  EXPECT_TRUE(diverged);
}

TEST(ScenarioGen, SamplesAreValid) {
  ScenarioGen gen(11);
  for (int i = 0; i < 50; ++i) {
    const Scenario s = gen.next();
    EXPECT_TRUE(find_app(s.app)) << s.app;
    EXPECT_GE(s.duration_ms, 1500);
    EXPECT_LE(s.duration_ms, 5000);
    EXPECT_FALSE(s.rates.empty());
    // Every sample must expand without tripping any config validation.
    const harness::ExperimentConfig cfg = s.experiment_config();
    EXPECT_EQ(cfg.duration.ticks, s.duration().ticks);
  }
}

TEST(ScenarioIo, DefaultRoundTrips) {
  const Scenario s;
  const std::string text = scenario_to_string(s);
  std::string error;
  const auto parsed = parse_scenario(text, &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(*parsed, s);
}

TEST(ScenarioIo, EveryFieldRoundTrips) {
  Scenario s;
  s.app = "TempleRun";
  s.mode = device::ControlMode::kSectionHysteresis;
  s.duration_ms = 4321;
  s.seed = 0xdeadbeefULL;
  s.grid = "36k";
  s.eval_ms = 150;
  s.boost_hold_ms = 750;
  s.meter_window_ms = 500;
  s.alpha = 0.25;
  s.rates = {24, 48, 96};
  s.baseline_hz = 96;
  s.min_hz = 24;
  s.boost_hz = 96;
  s.fast_rate_up = true;
  s.fault_scale = 1.5;
  s.fault_until_ms = 2000;
  s.fault_classes = {true, false, true, false, true};
  s.fleet = true;
  s.script = std::vector<input::TouchGesture>{
      // Taps serialize without a duration and parse back with the canonical
      // 60 ms dwell, so only that dwell round-trips exactly.
      {sim::Time{} + sim::milliseconds(100), sim::milliseconds(60),
       input::TouchGesture::Kind::kTap, {360, 640}, {360, 640}},
      {sim::Time{} + sim::milliseconds(900), sim::milliseconds(240),
       input::TouchGesture::Kind::kSwipe, {100, 1000}, {600, 300}},
  };
  const std::string text = scenario_to_string(s);
  std::string error;
  const auto parsed = parse_scenario(text, &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(*parsed, s);
  // Serialization is canonical: re-serializing the parse is byte-identical.
  EXPECT_EQ(scenario_to_string(*parsed), text);
}

TEST(ScenarioIo, GeneratedScenariosRoundTrip) {
  ScenarioGen gen(3);
  for (int i = 0; i < 50; ++i) {
    const Scenario s = gen.next();
    std::string error;
    const auto parsed = parse_scenario(scenario_to_string(s), &error);
    ASSERT_TRUE(parsed) << "scenario " << i << ": " << error;
    EXPECT_EQ(*parsed, s) << "scenario " << i;
  }
}

TEST(ScenarioIo, ReproFileParsesThroughHeader) {
  Scenario s;
  s.duration_ms = 777;
  const std::string repro =
      repro_to_string(s, {"I6 span: something", "unculled: other"});
  std::string error;
  const auto parsed = parse_scenario(repro, &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(*parsed, s);
}

TEST(ScenarioIo, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_scenario("", &error));
  EXPECT_FALSE(parse_scenario("schema = wrong-schema\n", &error));
  EXPECT_FALSE(
      parse_scenario("schema = ccdem-repro-v1\nnot_a_key = 1\n", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(
      parse_scenario("schema = ccdem-repro-v1\nduration_ms = 12abc\n", &error));
  EXPECT_FALSE(
      parse_scenario("schema = ccdem-repro-v1\nalpha = nan\n", &error));
  EXPECT_FALSE(
      parse_scenario("schema = ccdem-repro-v1\nmode = warp-drive\n", &error));
  EXPECT_FALSE(parse_scenario(
      "schema = ccdem-repro-v1\nbegin_script\ngarbage\nend_script\n", &error));
}

TEST(ScenarioIo, UnknownAppIsReportedByCheck) {
  Scenario s;
  s.app = "No Such App";
  const CheckReport r = check_scenario(s);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.failures.front().find("unknown app"), std::string::npos);
}

// Embedding the seed's own Monkey script must replay bit-identically to
// leaving the script implicit -- this is what lets the minimizer materialize
// and then delta-debug the gesture list without changing behaviour.
TEST(Dst, EmbeddedMonkeyScriptReplaysIdentically) {
  Scenario implicit;
  implicit.app = "Anipang";
  implicit.duration_ms = 3000;
  implicit.seed = 2;  // this seed's Monkey stream emits several gestures

  Scenario embedded = implicit;
  const auto app = find_app(implicit.app);
  ASSERT_TRUE(app);
  sim::Rng root(implicit.seed);
  sim::Rng monkey = root.fork(device::SimulatedDevice::kMonkeyRngStream);
  embedded.script = input::generate_monkey_script(
      monkey, app->monkey, implicit.duration(), apps::kGalaxyS3Screen);
  ASSERT_FALSE(embedded.script->empty());

  const RunArtifacts a = run_scenario_once(implicit.experiment_config());
  const RunArtifacts b = run_scenario_once(embedded.experiment_config());
  EXPECT_EQ(a.trace_csv, b.trace_csv);
  EXPECT_FALSE(diff_results(a.result, b.result, "embedded-script"))
      << *diff_results(a.result, b.result, "embedded-script");
}

TEST(Dst, DefaultScenarioPassesAllOracles) {
  const CheckReport r = check_scenario(Scenario{});
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(Dst, FaultedScenarioPassesAllOracles) {
  Scenario s;
  s.app = "Geometry Dash";
  s.duration_ms = 2000;
  s.fault_scale = 1.5;
  s.seed = 9;
  const CheckReport r = check_scenario(s);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(Dst, SmallFuzzCampaignIsClean) {
  FuzzOptions options;
  options.seed = 20260805;
  options.scenarios = 12;
  options.gen.max_duration_ms = 2500;
  std::ostringstream log;
  const FuzzReport report = run_fuzz(options);
  ASSERT_TRUE(report.ok()) << [&] {
    std::string all;
    for (const FuzzFailure& f : report.failures) {
      for (const std::string& m : f.failures) all += m + "\n";
    }
    return all;
  }();
  EXPECT_EQ(report.scenarios_run, 12);
}

}  // namespace
}  // namespace ccdem::check
