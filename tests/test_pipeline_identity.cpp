// Golden-identity property: every legacy ControlMode arm is *defined* as a
// canonical policy-pipeline composition (device::canonical_pipeline_spec),
// so replaying a scenario with `mode = pipeline` + that spec spelled out
// must be byte-identical to the legacy-mode run -- traces, counters (the
// policy.* set included: both arms build the same stages), spans, scalars.
//
// The property runs over the whole DST seed corpus in tests/corpus/ plus a
// couple of targeted scenarios (faulted recovery, explicit floor/boost
// rungs), which is how the multi-layer refactor stays honest: any drift
// between the mode table and the spec plumbing shows up as a byte diff.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "check/oracles.h"
#include "check/scenario.h"
#include "device/device_config.h"

namespace ccdem::check {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<fs::path> corpus_files() {
  const fs::path dir = fs::path(CCDEM_REPO_DIR) / "tests" / "corpus";
  std::vector<fs::path> out;
  if (fs::exists(dir)) {
    for (const auto& e : fs::directory_iterator(dir)) {
      if (e.path().extension() == ".repro") out.push_back(e.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool dpm_family(device::ControlMode m) {
  return !device::canonical_pipeline_spec(m).empty();
}

/// Runs `s` as-is and as `mode = pipeline` + the canonical spec, and
/// demands full byte equality.
void expect_identity(const Scenario& s, const std::string& what) {
  ASSERT_TRUE(dpm_family(s.mode)) << what;
  ASSERT_TRUE(find_app(s.app).has_value()) << what << ": unknown app " << s.app;
  Scenario explicit_arm = s;
  explicit_arm.mode = device::ControlMode::kPipeline;
  explicit_arm.pipeline = device::canonical_pipeline_spec(s.mode).to_string();

  const RunArtifacts legacy = run_scenario_once(s.experiment_config());
  const RunArtifacts via_spec =
      run_scenario_once(explicit_arm.experiment_config());

  EXPECT_EQ(legacy.trace_csv, via_spec.trace_csv) << what;
  EXPECT_EQ(diff_results(legacy.result, via_spec.result, what).value_or(""),
            "");
  EXPECT_EQ(diff_counters(legacy.counters, via_spec.counters, what).value_or(""),
            "");
}

TEST(PipelineIdentity, CanonicalSpecsMatchTheModeTable) {
  using device::ControlMode;
  EXPECT_EQ(device::canonical_pipeline_spec(ControlMode::kSection).to_string(),
            "section");
  EXPECT_EQ(
      device::canonical_pipeline_spec(ControlMode::kSectionWithBoost)
          .to_string(),
      "section,boost");
  EXPECT_EQ(
      device::canonical_pipeline_spec(ControlMode::kSectionHysteresis)
          .to_string(),
      "section,hysteresis,boost");
  EXPECT_EQ(device::canonical_pipeline_spec(ControlMode::kNaive).to_string(),
            "naive");
  EXPECT_TRUE(
      device::canonical_pipeline_spec(ControlMode::kBaseline60).empty());
  EXPECT_TRUE(
      device::canonical_pipeline_spec(ControlMode::kE3FrameRate).empty());
}

TEST(PipelineIdentity, EveryDpmCorpusScenarioReplaysByteIdentically) {
  int covered = 0;
  for (const fs::path& p : corpus_files()) {
    std::string error;
    const auto s = parse_scenario(read_file(p), &error);
    ASSERT_TRUE(s) << p.filename().string() << ": " << error;
    if (!dpm_family(s->mode)) continue;  // baseline / e3 run no pipeline
    ++covered;
    expect_identity(*s, p.filename().string());
  }
  EXPECT_GE(covered, 4) << "the corpus lost its DPM-family scenarios";
}

TEST(PipelineIdentity, FloorAndBoostRungsSurviveTheSpecPath) {
  Scenario s;
  s.app = "Jelly Splash";
  s.mode = device::ControlMode::kSectionHysteresis;
  s.duration_ms = 2000;
  s.seed = 97;
  s.min_hz = 24;
  s.boost_hz = 40;
  expect_identity(s, "floor+boost rungs");
}

TEST(PipelineIdentity, FaultedRecoveryPlaneSurvivesTheSpecPath) {
  Scenario s;
  s.app = "TempleRun";
  s.mode = device::ControlMode::kSectionWithBoost;
  s.duration_ms = 2500;
  s.seed = 11;
  s.fault_scale = 1.5;
  expect_identity(s, "faulted recovery");
}

}  // namespace
}  // namespace ccdem::check
