#include "gfx/swapchain.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace ccdem::gfx {
namespace {

TEST(Swapchain, StartsBlank) {
  Swapchain chain({8, 8});
  EXPECT_EQ(chain.front().at(0, 0), colors::kBlack);
  EXPECT_EQ(chain.presents(), 0u);
}

TEST(Swapchain, PresentFlipsNewFrameToFront) {
  Swapchain chain({8, 8});
  Framebuffer& target = chain.begin_frame();
  target.fill_rect(Rect{0, 0, 4, 4}, colors::kRed);
  chain.present(Region(Rect{0, 0, 4, 4}));
  EXPECT_EQ(chain.front().at(2, 2), colors::kRed);
  EXPECT_EQ(chain.previous().at(2, 2), colors::kBlack);
  EXPECT_EQ(chain.presents(), 1u);
}

TEST(Swapchain, ReconciliationKeepsBackBufferCurrent) {
  Swapchain chain({8, 8});
  // Frame 1: red square top-left.
  chain.begin_frame().fill_rect(Rect{0, 0, 4, 4}, colors::kRed);
  chain.present(Region(Rect{0, 0, 4, 4}));
  // Frame 2: blue square bottom-right; the back buffer (frame 0, blank)
  // must first receive frame 1's red square via reconciliation.
  Framebuffer& t2 = chain.begin_frame();
  EXPECT_EQ(t2.at(2, 2), colors::kRed) << "reconciliation missing";
  t2.fill_rect(Rect{4, 4, 4, 4}, colors::kBlue);
  chain.present(Region(Rect{4, 4, 4, 4}));
  // Front shows both squares.
  EXPECT_EQ(chain.front().at(2, 2), colors::kRed);
  EXPECT_EQ(chain.front().at(6, 6), colors::kBlue);
  // Previous shows only frame 1.
  EXPECT_EQ(chain.previous().at(2, 2), colors::kRed);
  EXPECT_EQ(chain.previous().at(6, 6), colors::kBlack);
}

TEST(Swapchain, ReconciledPixelsTracked) {
  Swapchain chain({8, 8});
  chain.begin_frame().fill_rect(Rect{0, 0, 4, 4}, colors::kRed);
  chain.present(Region(Rect{0, 0, 4, 4}));
  chain.begin_frame();
  EXPECT_EQ(chain.last_reconciled_pixels(), 16);
  chain.present(Region{});
  chain.begin_frame();
  EXPECT_EQ(chain.last_reconciled_pixels(), 0);  // empty damage last frame
  chain.present(Region{});
}

TEST(Swapchain, LongChainStaysConsistent) {
  // Property: after any damage sequence, front() equals a single-buffer
  // reference that applied every draw in order.
  Swapchain chain({32, 32});
  Framebuffer reference(32, 32);
  sim::Rng rng(9);
  for (int frame = 0; frame < 50; ++frame) {
    Region damage;
    Framebuffer& target = chain.begin_frame();
    const auto rects = rng.uniform_int(0, 3);
    for (int k = 0; k < rects; ++k) {
      const Rect r{static_cast<int>(rng.uniform_int(0, 24)),
                   static_cast<int>(rng.uniform_int(0, 24)),
                   static_cast<int>(rng.uniform_int(1, 8)),
                   static_cast<int>(rng.uniform_int(1, 8))};
      const Rgb888 c = Rgb888::from_packed(
          static_cast<std::uint32_t>(rng.next_u64()));
      target.fill_rect(r, c);
      reference.fill_rect(r, c);
      damage.add(r);
    }
    chain.present(damage);
    ASSERT_TRUE(chain.front().equals(reference)) << "frame " << frame;
  }
}

TEST(Swapchain, EmptyFramePreservesDisplay) {
  Swapchain chain({8, 8});
  chain.begin_frame().fill_rect(Rect{0, 0, 8, 8}, colors::kGreen);
  chain.present(Region(Rect{0, 0, 8, 8}));
  // A frame with no drawing at all (pure redundant request).
  chain.begin_frame();
  chain.present(Region{});
  EXPECT_EQ(chain.front().at(4, 4), colors::kGreen);
  EXPECT_EQ(chain.previous().at(4, 4), colors::kGreen);
}

}  // namespace
}  // namespace ccdem::gfx
