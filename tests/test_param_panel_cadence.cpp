// Parameterized panel cadence: at every supported rate the V-Sync count
// over a long window must match rate * time within rounding, and the
// pacing must hold after arbitrary switch sequences.
#include <gtest/gtest.h>

#include <vector>

#include "display/display_panel.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ccdem::display {
namespace {

class Counter final : public VsyncObserver {
 public:
  void on_vsync(sim::Time t, int) override {
    ++count;
    last = t;
  }
  std::uint64_t count = 0;
  sim::Time last{};
};

class PanelCadence : public ::testing::TestWithParam<int> {};

TEST_P(PanelCadence, TickCountMatchesRate) {
  const int hz = GetParam();
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet::galaxy_s3(), hz);
  Counter counter;
  panel.add_observer(VsyncPhase::kScanout, &counter);
  const int seconds = 20;
  sim.run_for(sim::seconds(seconds));
  const double expected = static_cast<double>(hz) * seconds;
  // Tick at t=0 plus rounding slack; period rounding drifts < 0.5 %.
  EXPECT_NEAR(static_cast<double>(counter.count), expected,
              expected * 0.005 + 1.0)
      << hz << " Hz";
}

TEST_P(PanelCadence, PeriodIsExactBetweenTicks) {
  const int hz = GetParam();
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet::galaxy_s3(), hz);
  std::vector<sim::Time> times;
  struct Rec final : VsyncObserver {
    std::vector<sim::Time>* out;
    explicit Rec(std::vector<sim::Time>* o) : out(o) {}
    void on_vsync(sim::Time t, int) override { out->push_back(t); }
  } rec(&times);
  panel.add_observer(VsyncPhase::kScanout, &rec);
  sim.run_for(sim::seconds(1));
  const sim::Tick period = sim::period_of_hz(hz).ticks;
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_EQ((times[i] - times[i - 1]).ticks, period);
  }
}

INSTANTIATE_TEST_SUITE_P(GalaxyS3Rates, PanelCadence,
                         ::testing::Values(20, 24, 30, 40, 60),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "hz" + std::to_string(info.param);
                         });

TEST(PanelCadenceSwitching, RandomSwitchSequenceKeepsPacing) {
  sim::Simulator sim;
  DisplayPanel panel(sim, RefreshRateSet::galaxy_s3(), 60);
  Counter counter;
  panel.add_observer(VsyncPhase::kScanout, &counter);
  sim::Rng rng(77);
  const auto& rates = panel.rates().rates();
  double expected_ticks = 0.0;
  int current = 60;
  for (int seg = 0; seg < 30; ++seg) {
    const int next =
        rates[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(rates.size()) - 1))];
    panel.set_refresh_rate(next);
    const double seg_s = rng.uniform(0.3, 1.5);
    // The switch applies at the next boundary of the *old* rate: within one
    // old-period the new cadence starts; accounting tolerance covers it.
    sim.run_for(sim::seconds_f(seg_s));
    expected_ticks += seg_s * next;
    current = next;
  }
  (void)current;
  // Generous 5 % tolerance: each segment start straddles one period of the
  // previous rate.
  EXPECT_NEAR(static_cast<double>(counter.count), expected_ticks,
              expected_ticks * 0.05 + 30.0);
}

}  // namespace
}  // namespace ccdem::display
