// Parameterized end-to-end properties: for a sweep of (app, control mode,
// seed), the assembled system must uphold the invariants the paper's design
// arguments rest on.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "apps/app_profiles.h"
#include "harness/experiment.h"

namespace ccdem::harness {
namespace {

using Param = std::tuple<std::string, ControlMode, std::uint64_t>;

class SystemProperty : public ::testing::TestWithParam<Param> {
 protected:
  [[nodiscard]] ExperimentConfig config() const {
    ExperimentConfig c;
    c.app = apps::app_by_name(std::get<0>(GetParam()));
    c.duration = sim::seconds(8);
    c.seed = std::get<2>(GetParam());
    c.mode = std::get<1>(GetParam());
    return c;
  }
};

TEST_P(SystemProperty, RefreshRateStaysWithinPanelLevels) {
  const auto r = run_experiment(config());
  const auto rates = display::RefreshRateSet::galaxy_s3();
  for (const auto& p : r.refresh_rate.points()) {
    EXPECT_TRUE(rates.supports(static_cast<int>(p.value)));
  }
  EXPECT_GE(r.mean_refresh_hz, rates.min_hz());
  EXPECT_LE(r.mean_refresh_hz, rates.max_hz());
}

TEST_P(SystemProperty, ContentNeverExceedsFrameRate) {
  const auto r = run_experiment(config());
  EXPECT_LE(r.content_frames, r.frames_composed);
  const sim::Time end{r.duration.ticks};
  const auto f = r.frame_rate.resample(sim::seconds(1), sim::Time{}, end);
  const auto c = r.content_rate.resample(sim::seconds(1), sim::Time{}, end);
  for (std::size_t i = 0; i < std::min(f.size(), c.size()); ++i) {
    EXPECT_LE(c.points()[i].value, f.points()[i].value + 1e-9);
  }
}

TEST_P(SystemProperty, FrameRateNeverExceedsRefreshRate) {
  // V-Sync: the composed frame rate in any second is bounded by the refresh
  // rate in effect (+1 frame of boundary slack at rate switches).
  const auto r = run_experiment(config());
  for (const auto& p : r.frame_rate.points()) {
    // Bound: the highest refresh rate in effect at any moment of the
    // bucket (the rate at bucket start plus any switch inside it).
    double bound = r.refresh_rate.value_at(p.t, 60.0);
    for (const auto& sw : r.refresh_rate.points()) {
      if (sw.t >= p.t && sw.t < p.t + sim::seconds(1)) {
        bound = std::max(bound, sw.value);
      }
    }
    EXPECT_LE(p.value, bound + 1.0) << "at t=" << p.t.seconds();
  }
}

TEST_P(SystemProperty, DeterministicAcrossReruns) {
  const auto a = run_experiment(config());
  const auto b = run_experiment(config());
  EXPECT_EQ(a.frames_composed, b.frames_composed);
  EXPECT_EQ(a.content_frames, b.content_frames);
  EXPECT_EQ(a.touch_events, b.touch_events);
  EXPECT_DOUBLE_EQ(a.mean_power_mw, b.mean_power_mw);
  EXPECT_DOUBLE_EQ(a.mean_refresh_hz, b.mean_refresh_hz);
}

TEST_P(SystemProperty, PowerIsPositiveAndBounded) {
  const auto r = run_experiment(config());
  EXPECT_GT(r.mean_power_mw, 400.0);   // SoC + panel floor
  EXPECT_LT(r.mean_power_mw, 3000.0);  // sane phone-class ceiling
  for (const auto& p : r.power.points()) {
    EXPECT_GT(p.value, 0.0);
  }
}

TEST_P(SystemProperty, ControlledPowerNeverFarAboveBaseline) {
  if (std::get<1>(GetParam()) == ControlMode::kBaseline60) GTEST_SKIP();
  ExperimentConfig c = config();
  const auto controlled = run_experiment(c);
  c.mode = ControlMode::kBaseline60;
  const auto baseline = run_experiment(c);
  // Metering overhead is the only possible regression; it must stay small.
  EXPECT_LT(controlled.mean_power_mw,
            baseline.mean_power_mw + 40.0);
}

INSTANTIATE_TEST_SUITE_P(
    AppsModesSeeds, SystemProperty,
    ::testing::Combine(
        ::testing::Values("Facebook", "Jelly Splash", "MX Player",
                          "Tiny Flashlight", "Cookie Run"),
        ::testing::Values(ControlMode::kBaseline60, ControlMode::kSection,
                          ControlMode::kSectionWithBoost,
                          ControlMode::kNaive,
                          ControlMode::kSectionHysteresis,
                          ControlMode::kE3FrameRate),
        ::testing::Values<std::uint64_t>(1, 99)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string app = std::get<0>(info.param);
      for (char& ch : app) {
        if (ch == ' ') ch = '_';
      }
      std::string mode = control_mode_name(std::get<1>(info.param));
      for (char& ch : mode) {
        if (ch == '-' || ch == '+') ch = '_';
      }
      return app + "_" + mode + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace ccdem::harness
