// Randomized round-trip test for the trace exporters: arbitrary span and
// counter streams must survive write -> parse through BOTH formats without
// loss, and the parsers must never crash on what the writers emit.
//
// Counter/gauge names are drawn from the exporters' full supported alphabet:
// the CSV format permits any byte except '\n' (values split at the LAST
// comma), the JSON escaper handles quotes, backslashes and control bytes.
// CSV name rows that would collide with the section markers ('#'-prefixed)
// are avoided, as the real registry's dotted lowercase names always are.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/span_recorder.h"
#include "obs/trace_export.h"
#include "sim/rng.h"

using namespace ccdem;
using obs::Counters;
using obs::Phase;
using obs::Span;

namespace {

std::int64_t random_i64(sim::Rng& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0: return rng.uniform_int(-100, 100);
    case 1: return static_cast<std::int64_t>(rng.next_u64());
    case 2: return std::numeric_limits<std::int64_t>::max();
    default: return std::numeric_limits<std::int64_t>::min();
  }
}

std::vector<Span> random_spans(sim::Rng& rng, int count) {
  std::vector<Span> spans;
  spans.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Span s;
    s.begin = sim::Time{random_i64(rng)};
    s.dur = sim::Duration{random_i64(rng)};
    s.frame = rng.next_u64();
    s.arg = random_i64(rng);
    s.phase = static_cast<Phase>(rng.uniform_int(0, obs::kPhaseCount - 1));
    spans.push_back(s);
  }
  return spans;
}

std::string random_name(sim::Rng& rng, bool csv_safe) {
  static const char kTame[] = "abcdefghijklmnopqrstuvwxyz0123456789._";
  std::string name;
  const int len = static_cast<int>(rng.uniform_int(1, 24));
  for (int i = 0; i < len; ++i) {
    if (csv_safe || rng.chance(0.8)) {
      name += kTame[rng.uniform_int(0, sizeof(kTame) - 2)];
    } else {
      // Exercise the JSON escaper: quotes, backslashes, control bytes,
      // commas, high bytes.
      name += static_cast<char>(rng.uniform_int(1, 255));
      if (name.back() == '\n') name.back() = 'n';  // CSV rows are lines
    }
  }
  if (name[0] == '#') name[0] = 'x';  // '#' opens CSV section markers
  return name;
}

Counters random_counters(sim::Rng& rng, bool csv_safe) {
  Counters c;
  const int n = static_cast<int>(rng.uniform_int(0, 12));
  for (int i = 0; i < n; ++i) {
    c.add(random_name(rng, csv_safe), rng.next_u64());
  }
  const int g = static_cast<int>(rng.uniform_int(0, 6));
  for (int i = 0; i < g; ++i) {
    double v;
    switch (rng.uniform_int(0, 3)) {
      case 0: v = rng.uniform(-1e6, 1e6); break;
      case 1: v = rng.uniform(-1.0, 1.0) * 1e-300; break;
      case 2: v = 0.0; break;
      default: v = rng.uniform(-1.0, 1.0) * 1e300; break;
    }
    c.set_gauge(random_name(rng, csv_safe), v);
  }
  return c;
}

void expect_equal(const obs::ParsedTrace& parsed,
                  const std::vector<Span>& spans,
                  const Counters::Snapshot& snap, const char* format,
                  std::uint64_t seed) {
  ASSERT_EQ(parsed.spans, spans) << format << " seed=" << seed;
  ASSERT_EQ(parsed.counters.size(), snap.counters.size())
      << format << " seed=" << seed;
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    EXPECT_EQ(parsed.counters[i].first, snap.counters[i].first)
        << format << " seed=" << seed;
    EXPECT_EQ(parsed.counters[i].second, snap.counters[i].second)
        << format << " seed=" << seed;
  }
  ASSERT_EQ(parsed.gauges.size(), snap.gauges.size())
      << format << " seed=" << seed;
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    EXPECT_EQ(parsed.gauges[i].first, snap.gauges[i].first)
        << format << " seed=" << seed;
    // Bit-exact: %.17g + strtod round-trips every finite double.
    EXPECT_EQ(parsed.gauges[i].second, snap.gauges[i].second)
        << format << " seed=" << seed << " name=" << snap.gauges[i].first;
  }
}

TEST(TraceExportFuzz, ChromeJsonRoundTripsArbitraryStreams) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    sim::Rng rng(seed);
    const std::vector<Span> spans =
        random_spans(rng, static_cast<int>(rng.uniform_int(0, 40)));
    const Counters counters = random_counters(rng, /*csv_safe=*/false);
    const Counters::Snapshot snap = counters.snapshot();

    std::string error;
    const auto parsed = obs::parse_chrome_trace(
        obs::chrome_trace_to_string(spans, snap), &error);
    ASSERT_TRUE(parsed.has_value()) << "seed=" << seed << ": " << error;
    expect_equal(*parsed, spans, snap, "json", seed);
  }
}

TEST(TraceExportFuzz, CsvRoundTripsArbitraryStreams) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    sim::Rng rng(seed);
    const std::vector<Span> spans =
        random_spans(rng, static_cast<int>(rng.uniform_int(0, 40)));
    const Counters counters = random_counters(rng, /*csv_safe=*/true);
    const Counters::Snapshot snap = counters.snapshot();

    std::string error;
    const auto parsed =
        obs::parse_trace_csv(obs::trace_csv_to_string(spans, snap), &error);
    ASSERT_TRUE(parsed.has_value()) << "seed=" << seed << ": " << error;
    expect_equal(*parsed, spans, snap, "csv", seed);
  }
}

TEST(TraceExportFuzz, ParsersNeverCrashOnMutatedInput) {
  // Flip random bytes in valid output; the parsers must reject or accept
  // without crashing (gtest catches crashes as test failures), and the
  // error string must be set on rejection.
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    sim::Rng rng(seed);
    const std::vector<Span> spans = random_spans(rng, 8);
    const Counters counters = random_counters(rng, /*csv_safe=*/true);
    std::string json = obs::chrome_trace_to_string(spans, counters.snapshot());
    std::string csv = obs::trace_csv_to_string(spans, counters.snapshot());
    for (std::string* text : {&json, &csv}) {
      const int flips = static_cast<int>(rng.uniform_int(1, 6));
      for (int i = 0; i < flips; ++i) {
        const auto pos = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(text->size()) - 1));
        (*text)[pos] = static_cast<char>(rng.uniform_int(1, 127));
      }
      std::string error = "unset";
      const auto parsed = text == &json ? obs::parse_chrome_trace(*text, &error)
                                        : obs::parse_trace_csv(*text, &error);
      if (!parsed.has_value()) {
        EXPECT_NE(error, "unset") << "seed=" << seed;
      }
    }
  }
}

}  // namespace
