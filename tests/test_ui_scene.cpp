// UiScene: state-machine semantics, the ccdem-scene-v1 DSL round-trip, the
// 1-px marquee blind-spot regression, and the scene plane's integration
// with check_scenario (determinism, fleet identity, spans-off identity).
#include <gtest/gtest.h>

#include <string>

#include "apps/app_profiles.h"
#include "apps/scene_dsl.h"
#include "apps/ui_scene.h"
#include "check/dst.h"
#include "gfx/framebuffer.h"

namespace ccdem::apps {
namespace {

constexpr gfx::Size kScreen{720, 1280};

UiSceneSpec two_state_spec() {
  UiSceneSpec ui;
  ui.states = {
      {UiState::Kind::kIdle, 500, 2.0, 1, 1},
      {UiState::Kind::kMenu, 0, 8.0, 1, 0},
  };
  ui.idle_timeout_ms = 2000;
  return ui;
}

input::TouchEvent tap_down(sim::Time t) {
  return {t, {100, 100}, input::TouchEvent::Action::kDown};
}

TEST(UiScene, TimedTransitionFiresAfterDwell) {
  gfx::Framebuffer fb(kScreen);
  gfx::Canvas canvas(fb);
  UiScene scene(SceneSpec::ui_machine(two_state_spec()), kScreen, sim::Rng(1));
  scene.init(canvas);
  EXPECT_EQ(scene.state(), 0);
  scene.render(canvas, sim::at_seconds(0.3));
  EXPECT_EQ(scene.state(), 0) << "dwell (500 ms) has not expired";
  scene.render(canvas, sim::at_seconds(0.6));
  EXPECT_EQ(scene.state(), 1);
  // State 1 has dwell 0: the timed transition is disabled and (with no
  // touches) only the idle timeout can move the machine.
  scene.render(canvas, sim::at_seconds(1.8));
  EXPECT_EQ(scene.state(), 1);
}

TEST(UiScene, TouchTransitionAndIdleTimeout) {
  gfx::Framebuffer fb(kScreen);
  gfx::Canvas canvas(fb);
  UiScene scene(SceneSpec::ui_machine(two_state_spec()), kScreen, sim::Rng(1));
  scene.init(canvas);
  // Touch-down in state 0 requests its touch_next (state 1); the transition
  // lands at the next render.
  scene.on_touch(tap_down(sim::at_seconds(0.1)));
  EXPECT_EQ(scene.state(), 0);
  scene.render(canvas, sim::at_seconds(0.15));
  EXPECT_EQ(scene.state(), 1);
  // 2 s of no interaction: the idle timeout returns the machine to state 0.
  scene.render(canvas, sim::at_seconds(0.5));
  EXPECT_EQ(scene.state(), 1);
  scene.render(canvas, sim::at_seconds(2.3));
  EXPECT_EQ(scene.state(), 0);
}

TEST(UiScene, TouchResetsIdleTimeout) {
  gfx::Framebuffer fb(kScreen);
  gfx::Canvas canvas(fb);
  UiSceneSpec ui = two_state_spec();
  // Disable touch transitions everywhere: the touch should only refresh the
  // interaction clock, and the machine moves 0 -> 1 via dwell alone.
  ui.states[0].touch_next = -1;
  ui.states[1].touch_next = -1;
  UiScene scene(SceneSpec::ui_machine(ui), kScreen, sim::Rng(1));
  scene.init(canvas);
  scene.render(canvas, sim::at_seconds(0.6));
  ASSERT_EQ(scene.state(), 1);
  // A touch at 2.0 s refreshes the interaction clock, so at 3.5 s the 2 s
  // timeout (measured from the touch) has not expired yet.
  scene.on_touch(tap_down(sim::at_seconds(2.0)));
  scene.render(canvas, sim::at_seconds(3.5));
  EXPECT_EQ(scene.state(), 1);
  scene.render(canvas, sim::at_seconds(4.1));
  EXPECT_EQ(scene.state(), 0);
}

TEST(UiScene, SameSpecSameInputsByteIdentical) {
  gfx::Framebuffer fb1(kScreen), fb2(kScreen);
  gfx::Canvas c1(fb1), c2(fb2);
  const SceneSpec spec = SceneSpec::ui_machine(two_state_spec());
  UiScene s1(spec, kScreen, sim::Rng(1));
  UiScene s2(spec, kScreen, sim::Rng(999));  // RNG must not matter
  s1.init(c1);
  s2.init(c2);
  for (int i = 1; i <= 120; ++i) {
    const sim::Time t = sim::at_seconds(i / 30.0);
    if (i % 25 == 0) {
      s1.on_touch(tap_down(t));
      s2.on_touch(tap_down(t));
    }
    s1.render(c1, t);
    s2.render(c2, t);
    ASSERT_EQ(fb1.content_hash(), fb2.content_hash()) << "frame " << i;
  }
}

TEST(UiScene, NominalFpsFollowsState) {
  gfx::Framebuffer fb(kScreen);
  gfx::Canvas canvas(fb);
  UiScene scene(SceneSpec::ui_machine(two_state_spec()), kScreen, sim::Rng(1));
  scene.init(canvas);
  EXPECT_DOUBLE_EQ(scene.nominal_content_fps(sim::at_seconds(0.1)), 2.0);
  scene.render(canvas, sim::at_seconds(0.6));
  ASSERT_EQ(scene.state(), 1);
  EXPECT_DOUBLE_EQ(scene.nominal_content_fps(sim::at_seconds(0.7)), 8.0);
}

// --- DSL ------------------------------------------------------------------

TEST(SceneDsl, UiRoundTripsCanonically) {
  UiSceneSpec ui;
  ui.states = {
      {UiState::Kind::kMenu, 900, 6.0, 2, 3},
      {UiState::Kind::kScroll, 700, 24.0, 0, -1},
      {UiState::Kind::kDialog, 600, 12.0, 1, 0},
      {UiState::Kind::kMarquee, 0, 24.0, 2, -1},
  };
  ui.idle_timeout_ms = 2500;
  ui.marquee_px = 1;
  const SceneSpec spec = SceneSpec::ui_machine(ui);
  const std::string text = scene_spec_to_string(spec);
  std::string error;
  const auto parsed = scene_spec_from_string(text, &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(parsed->type, SceneSpec::Type::kUi);
  EXPECT_EQ(parsed->ui, ui);
  EXPECT_EQ(scene_spec_to_string(*parsed), text);
}

TEST(SceneDsl, BurstRoundTripsCanonically) {
  const SceneSpec spec = SceneSpec::burst_video({700, 12, 30.0, {1, 3, 0, 2}});
  const std::string text = scene_spec_to_string(spec);
  std::string error;
  const auto parsed = scene_spec_from_string(text, &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(parsed->type, SceneSpec::Type::kBurstVideo);
  EXPECT_EQ(parsed->burst, spec.burst);
  EXPECT_EQ(scene_spec_to_string(*parsed), text);
}

TEST(SceneDsl, AttributeOrderIsFreeButCanonicalized) {
  const std::string text =
      "schema = ccdem-scene-v1\n"
      "type = ui\n"
      "idle_timeout_ms = 3000\n"
      "marquee_px = 6\n"
      "state = menu touch=0 next=0 fps=6 dwell_ms=900\n";
  const auto parsed = scene_spec_from_string(text);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->ui.states[0].kind, UiState::Kind::kMenu);
  EXPECT_EQ(parsed->ui.states[0].dwell_ms, 900);
}

TEST(SceneDsl, RejectsMalformedInput) {
  const char* bad[] = {
      // missing schema line
      "type = ui\nstate = idle dwell_ms=0 fps=1 next=0 touch=-1\n",
      // unknown type
      "schema = ccdem-scene-v1\ntype = movie\n",
      // ui without states
      "schema = ccdem-scene-v1\ntype = ui\n",
      // out-of-range transition target
      "schema = ccdem-scene-v1\ntype = ui\n"
      "state = idle dwell_ms=0 fps=1 next=7 touch=-1\n",
      // missing state attribute
      "schema = ccdem-scene-v1\ntype = ui\n"
      "state = idle dwell_ms=0 fps=1 next=0\n",
      // duplicate state attribute
      "schema = ccdem-scene-v1\ntype = ui\n"
      "state = idle dwell_ms=0 dwell_ms=1 fps=1 next=0 touch=-1\n",
      // burst key inside a ui scene
      "schema = ccdem-scene-v1\ntype = ui\ngap_ms = 100\n"
      "state = idle dwell_ms=0 fps=1 next=0 touch=-1\n",
      // ui key inside a burst scene
      "schema = ccdem-scene-v1\ntype = burst_video\nmarquee_px = 3\n",
      // non-numeric value
      "schema = ccdem-scene-v1\ntype = burst_video\ngap_ms = soon\n",
      // motion level out of range
      "schema = ccdem-scene-v1\ntype = burst_video\nmotion = 1,9\n",
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(scene_spec_from_string(text, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(SceneDsl, NonDslTypesHaveNoTextForm) {
  EXPECT_EQ(scene_spec_to_string(SceneSpec::video(24.0)), "");
}

// --- whole-system checks ---------------------------------------------------

check::Scenario scene_scenario(const std::string& app) {
  check::Scenario s;
  s.app = app;
  s.duration_ms = 3000;
  s.seed = 77;
  return s;
}

// The 1-px marquee is the Fig. 6 blind-spot shape: a band thinner than the
// sampling grid stride can slip between sampled rows.  The drifting band
// plus the damage-scoped meter must keep the run above the quality gate and
// byte-identical to the unculled-scan arm.
TEST(UiSceneCheck, OnePxMarqueeSurvivesAllOracles) {
  check::Scenario s = scene_scenario("Facebook");
  UiSceneSpec ui;
  ui.states = {{UiState::Kind::kMarquee, 0, 24.0, 0, -1}};
  ui.idle_timeout_ms = 0;
  ui.marquee_px = 1;
  s.scene = scene_spec_to_string(SceneSpec::ui_machine(ui));
  s.grid = "9k";
  const check::CheckReport report = check::check_scenario(s);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(UiSceneCheck, MenuDemoPassesAllOracles) {
  const check::CheckReport report =
      check::check_scenario(scene_scenario("Menu UI"));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(UiSceneCheck, OverlaySuiteFleetIdentity) {
  check::Scenario s = scene_scenario("Overlay Suite");
  s.duration_ms = 2500;
  s.fleet = true;  // serial == fleet across all three surfaces
  const check::CheckReport report = check::check_scenario(s);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(UiSceneCheck, ScenarioSceneBlockRoundTrips) {
  check::Scenario s = scene_scenario("Menu UI");
  UiSceneSpec ui = two_state_spec();
  s.scene = scene_spec_to_string(SceneSpec::ui_machine(ui));
  const std::string text = check::scenario_to_string(s);
  std::string error;
  const auto parsed = check::parse_scenario(text, &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(*parsed, s);
  EXPECT_EQ(check::scenario_to_string(*parsed), text);
  // The override reaches the expanded config.
  EXPECT_EQ(parsed->experiment_config().app.scene.ui, ui);
}

TEST(UiSceneCheck, SceneDemoProfilesResolve) {
  for (const AppSpec& spec : scene_demo_apps()) {
    EXPECT_TRUE(check::find_app(spec.name)) << spec.name;
  }
  EXPECT_FALSE(check::find_app("No Such App"));
}

}  // namespace
}  // namespace ccdem::apps
