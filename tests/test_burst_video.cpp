// BurstVideoScene: burst/gap timeline, per-segment motion levels,
// determinism, and the whole-system check on the Burst Video demo profile.
#include <gtest/gtest.h>

#include "apps/app_profiles.h"
#include "apps/scene_dsl.h"
#include "apps/ui_scene.h"
#include "check/dst.h"
#include "gfx/framebuffer.h"

namespace ccdem::apps {
namespace {

constexpr gfx::Size kScreen{720, 1280};

// 10 frames at 20 fps = 500 ms burst, then a 500 ms gap: 1 s period.
SceneSpec burst_spec() {
  return SceneSpec::burst_video({500, 10, 20.0, {2, 0, 3}});
}

TEST(BurstVideoScene, GapFramesChangeNothing) {
  gfx::Framebuffer fb(kScreen);
  gfx::Canvas canvas(fb);
  BurstVideoScene scene(burst_spec(), kScreen, sim::Rng(1));
  scene.init(canvas);
  // Render through the first burst so the scene is mid-timeline.
  for (int i = 1; i <= 10; ++i) scene.render(canvas, sim::at_seconds(i / 20.0));
  // The gap [0.5 s, 1.0 s): every render reports no change.
  const auto gap_hash = fb.content_hash();
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(scene.render(canvas, sim::at_seconds(0.52 + i * 0.05)));
  }
  EXPECT_EQ(fb.content_hash(), gap_hash);
  EXPECT_DOUBLE_EQ(scene.nominal_content_fps(sim::at_seconds(0.7)), 0.0);
  // The next burst starts at 1.0 s and changes pixels again.  (Its nominal
  // rate is still 0: segment 1 has motion level 0, one backdrop change per
  // segment; segment 2 at level 3 decodes at the full burst rate.)
  EXPECT_TRUE(scene.render(canvas, sim::at_seconds(1.01)));
  EXPECT_DOUBLE_EQ(scene.nominal_content_fps(sim::at_seconds(1.1)), 0.0);
  EXPECT_DOUBLE_EQ(scene.nominal_content_fps(sim::at_seconds(2.1)), 20.0);
}

TEST(BurstVideoScene, MotionLevelZeroSegmentChangesOnce) {
  gfx::Framebuffer fb(kScreen);
  gfx::Canvas canvas(fb);
  BurstVideoScene scene(burst_spec(), kScreen, sim::Rng(1));
  scene.init(canvas);
  for (int i = 1; i <= 10; ++i) scene.render(canvas, sim::at_seconds(i / 20.0));
  // Segment 1 (t in [1.0 s, 1.5 s)) has motion level 0: its first frame
  // paints the new backdrop, every later frame is a no-op.
  EXPECT_TRUE(scene.render(canvas, sim::at_seconds(1.01)));
  int changes = 0;
  for (int i = 2; i <= 10; ++i) {
    changes += scene.render(canvas, sim::at_seconds(1.0 + i / 20.0)) ? 1 : 0;
  }
  EXPECT_EQ(changes, 0);
  // Segment 2 (level 3) changes on every burst frame.
  for (int i = 1; i <= 10; ++i) {
    EXPECT_TRUE(scene.render(canvas, sim::at_seconds(2.0 + i / 20.0 - 0.01)))
        << "burst frame " << i;
  }
}

TEST(BurstVideoScene, DeterministicAcrossRngSeeds) {
  gfx::Framebuffer fb1(kScreen), fb2(kScreen);
  gfx::Canvas c1(fb1), c2(fb2);
  BurstVideoScene s1(burst_spec(), kScreen, sim::Rng(1));
  BurstVideoScene s2(burst_spec(), kScreen, sim::Rng(31337));
  s1.init(c1);
  s2.init(c2);
  for (int i = 1; i <= 90; ++i) {
    const sim::Time t = sim::at_seconds(i / 30.0);
    s1.render(c1, t);
    s2.render(c2, t);
    ASSERT_EQ(fb1.content_hash(), fb2.content_hash()) << "frame " << i;
  }
}

TEST(BurstVideoScene, SkippedRendersCatchUpToSameFrame) {
  // A renderer that misses most of a burst (a throttled panel) still lands
  // on the same final pixels as one that rendered every frame: frames are a
  // pure function of the timeline position, not of the render history.
  gfx::Framebuffer fb1(kScreen), fb2(kScreen);
  gfx::Canvas c1(fb1), c2(fb2);
  BurstVideoScene dense(burst_spec(), kScreen, sim::Rng(1));
  BurstVideoScene sparse(burst_spec(), kScreen, sim::Rng(1));
  dense.init(c1);
  sparse.init(c2);
  for (int i = 1; i <= 40; ++i) dense.render(c1, sim::at_seconds(i / 20.0));
  sparse.render(c2, sim::at_seconds(40 / 20.0));
  EXPECT_EQ(fb1.content_hash(), fb2.content_hash());
}

TEST(BurstVideoCheck, DemoProfilePassesAllOracles) {
  check::Scenario s;
  s.app = "Burst Video";
  s.duration_ms = 3000;
  s.seed = 99;
  const check::CheckReport report = check::check_scenario(s);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(BurstVideoCheck, DslOverrideReachesConfig) {
  check::Scenario s;
  s.app = "Burst Video";
  s.scene = scene_spec_to_string(burst_spec());
  const auto cfg = s.experiment_config();
  ASSERT_EQ(cfg.app.scene.type, SceneSpec::Type::kBurstVideo);
  EXPECT_EQ(cfg.app.scene.burst, burst_spec().burst);
}

}  // namespace
}  // namespace ccdem::apps
