// Parameterized property tests for the section table (Equation (1)) across
// panels and threshold placements.
#include "core/section_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

namespace ccdem::core {
namespace {

struct PanelCase {
  std::string name;
  display::RefreshRateSet rates;
};

std::vector<PanelCase> panels() {
  return {
      {"galaxy_s3", display::RefreshRateSet::galaxy_s3()},
      {"ltpo", display::RefreshRateSet::ltpo_120()},
      {"three_level", display::RefreshRateSet{30, 48, 60}},
      {"two_level", display::RefreshRateSet{30, 60}},
      {"single", display::RefreshRateSet{60}},
      {"dense", display::RefreshRateSet{10, 20, 30, 40, 50, 60, 70, 80, 90}},
  };
}

using Param = std::tuple<int /*panel index*/, double /*alpha*/>;

class SectionTableProperty : public ::testing::TestWithParam<Param> {
 protected:
  [[nodiscard]] const PanelCase& panel() const {
    static const std::vector<PanelCase> all = panels();
    return all[static_cast<std::size_t>(std::get<0>(GetParam()))];
  }
  [[nodiscard]] double alpha() const { return std::get<1>(GetParam()); }
};

TEST_P(SectionTableProperty, SectionsPartitionTheAxis) {
  const SectionTable t = SectionTable::build(panel().rates, alpha());
  ASSERT_EQ(t.sections().size(), panel().rates.count());
  double prev_hi = 0.0;
  for (const auto& s : t.sections()) {
    EXPECT_DOUBLE_EQ(s.lo_fps, prev_hi);
    EXPECT_GE(s.hi_fps, s.lo_fps);
    prev_hi = s.hi_fps;
  }
  EXPECT_TRUE(std::isinf(t.sections().back().hi_fps));
}

TEST_P(SectionTableProperty, ChosenRateIsAlwaysSupported) {
  const SectionTable t = SectionTable::build(panel().rates, alpha());
  for (double c = 0.0; c <= 130.0; c += 0.7) {
    EXPECT_TRUE(panel().rates.supports(t.rate_for(c)))
        << "content " << c << " alpha " << alpha();
  }
}

TEST_P(SectionTableProperty, RateIsMonotoneInContentRate) {
  const SectionTable t = SectionTable::build(panel().rates, alpha());
  int prev = 0;
  for (double c = 0.0; c <= 130.0; c += 0.25) {
    const int r = t.rate_for(c);
    EXPECT_GE(r, prev) << "content " << c;
    prev = r;
  }
}

TEST_P(SectionTableProperty, TopSectionIsMaxRate) {
  const SectionTable t = SectionTable::build(panel().rates, alpha());
  EXPECT_EQ(t.rate_for(1e9), panel().rates.max_hz());
}

TEST_P(SectionTableProperty, HeadroomInvariantBelowMaxRate) {
  // For alpha <= 0.5 (median or looser) the chosen rate strictly exceeds
  // the content rate whenever a higher level exists -- the property that
  // makes the controller escape the V-Sync trap.
  if (alpha() > 0.5) GTEST_SKIP() << "tight placements trade headroom away";
  const SectionTable t = SectionTable::build(panel().rates, alpha());
  const double top = static_cast<double>(panel().rates.max_hz());
  for (double c = 0.0; c < top - 1.0; c += 0.5) {
    EXPECT_GT(static_cast<double>(t.rate_for(c)), c) << "content " << c;
  }
}

TEST_P(SectionTableProperty, LargerAlphaNeverPicksHigherRate) {
  const SectionTable loose = SectionTable::build(panel().rates, alpha());
  const SectionTable tight =
      SectionTable::build(panel().rates, std::min(1.0, alpha() + 0.25));
  for (double c = 0.0; c <= 130.0; c += 1.1) {
    EXPECT_LE(tight.rate_for(c), loose.rate_for(c)) << "content " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PanelsAndAlphas, SectionTableProperty,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0)),
    [](const ::testing::TestParamInfo<Param>& info) {
      const PanelCase p = panels()[static_cast<std::size_t>(
          std::get<0>(info.param))];
      const int alpha_pct =
          static_cast<int>(std::get<1>(info.param) * 100.0);
      return p.name + "_alpha" + std::to_string(alpha_pct);
    });

}  // namespace
}  // namespace ccdem::core
