// Integration: multiple surfaces (status bar overlay + app) composing into
// one framebuffer, with the meter seeing the union of their content.
//
// Android always composes a status bar above the app; its clock tick sets a
// floor on the device's content rate even when the app is fully static --
// a realistic detail that bounds how low the controller can park the panel.
#include <gtest/gtest.h>

#include <memory>

#include "core/display_power_manager.h"
#include "display/display_panel.h"
#include "gfx/surface_flinger.h"
#include "sim/simulator.h"

namespace ccdem {
namespace {

constexpr gfx::Size kScreen{720, 1280};
constexpr int kBarHeight = 50;

/// A status bar that repaints its clock area once per second.
class StatusBar final : public display::VsyncObserver {
 public:
  explicit StatusBar(gfx::Surface* s) : surface_(s) {}

  void on_vsync(sim::Time t, int) override {
    const auto minute_tick = static_cast<std::int64_t>(t.seconds());
    if (minute_tick == last_tick_) return;
    last_tick_ = minute_tick;
    gfx::Canvas& c = surface_->begin_frame();
    if (first_) {
      c.fill(gfx::colors::kDarkGray);
      first_ = false;
    }
    c.draw_text_block(gfx::Rect{8, 8, 200, kBarHeight - 16},
                      gfx::colors::kWhite, gfx::colors::kDarkGray,
                      static_cast<std::uint32_t>(minute_tick));
    surface_->post_frame();
  }

 private:
  gfx::Surface* surface_;
  std::int64_t last_tick_ = -1;
  bool first_ = true;
};

/// A fully static app that never posts after its first frame.
class StaticApp final : public display::VsyncObserver {
 public:
  explicit StaticApp(gfx::Surface* s) : surface_(s) {}

  void on_vsync(sim::Time, int) override {
    if (posted_) return;
    posted_ = true;
    gfx::Canvas& c = surface_->begin_frame();
    c.fill(gfx::Rgb888{200, 220, 240});
    surface_->post_frame();
  }

 private:
  gfx::Surface* surface_;
  bool posted_ = false;
};

struct Rig {
  sim::Simulator sim;
  gfx::SurfaceFlinger flinger{kScreen};
  display::DisplayPanel panel{sim, display::RefreshRateSet::galaxy_s3(), 60};
  gfx::Surface* app_surface = flinger.create_surface(
      "app", gfx::Rect{0, kBarHeight, kScreen.width,
                       kScreen.height - kBarHeight}, 0);
  gfx::Surface* bar_surface = flinger.create_surface(
      "statusbar", gfx::Rect{0, 0, kScreen.width, kBarHeight}, 10);
  StaticApp app{app_surface};
  StatusBar bar{bar_surface};

  struct Composer final : display::VsyncObserver {
    explicit Composer(gfx::SurfaceFlinger& f) : f_(f) {}
    void on_vsync(sim::Time t, int) override { f_.on_vsync(t); }
    gfx::SurfaceFlinger& f_;
  } composer{flinger};

  Rig() {
    panel.add_observer(display::VsyncPhase::kApp, &app);
    panel.add_observer(display::VsyncPhase::kApp, &bar);
    panel.add_observer(display::VsyncPhase::kComposer, &composer);
  }
};

TEST(MultiSurface, StatusBarSetsContentFloor) {
  Rig rig;
  rig.sim.run_for(sim::seconds(10));
  // The app posts once; the bar posts ~once per second afterwards.
  EXPECT_GE(rig.flinger.content_frames(), 9u);
  EXPECT_LE(rig.flinger.content_frames(), 12u);
}

TEST(MultiSurface, BarPixelsLandAboveApp) {
  Rig rig;
  rig.sim.run_for(sim::seconds(2));
  // Status bar region shows bar background, not app colour.
  EXPECT_EQ(rig.flinger.framebuffer().at(400, 10), gfx::colors::kDarkGray);
  // App region shows app colour.
  EXPECT_EQ(rig.flinger.framebuffer().at(400, 600),
            (gfx::Rgb888{200, 220, 240}));
}

TEST(MultiSurface, ControllerParksAtMinimumDespiteBarTicks) {
  Rig rig;
  core::DpmConfig config;
  config.meter.grid = core::GridSpec::grid_9k();
  core::DisplayPowerManager dpm(
      rig.sim, rig.panel, rig.flinger,
      core::build_pipeline(core::PipelineSpec{{core::StageId::kSection}},
                           rig.panel.rates(), config),
      nullptr, config);
  rig.sim.run_for(sim::seconds(5));
  // ~1 fps of bar content keeps the device in the lowest section.
  EXPECT_EQ(rig.panel.refresh_hz(), 20);
}

TEST(MultiSurface, MeterCountsBarContent) {
  Rig rig;
  core::ContentRateMeter meter(kScreen, core::GridSpec::grid_36k());
  rig.flinger.add_listener(&meter);
  rig.sim.run_for(sim::seconds(10));
  const double rate = meter.content_rate(rig.sim.now());
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 3.0);
  // Over the run, roughly one meaningful frame per second.
  EXPECT_NEAR(static_cast<double>(meter.meaningful_frames()), 10.0, 2.0);
}

}  // namespace
}  // namespace ccdem
