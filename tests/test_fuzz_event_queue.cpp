// Randomized differential test: EventQueue against a trivially correct
// reference (sorted vector scan).  Random interleavings of schedule, cancel
// and run must produce identical execution orders.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"

namespace ccdem::sim {
namespace {

/// Reference model: ids with (time, seq); runnable = min (time, seq).
class ReferenceQueue {
 public:
  int schedule(Tick at, Tick now) {
    const int id = next_id_++;
    pending_[id] = {std::max(at, now), id};
    return id;
  }
  bool cancel(int id) { return pending_.erase(id) > 0; }
  [[nodiscard]] bool empty() const { return pending_.empty(); }
  /// Pops the (time, seq)-minimal entry; returns its id.
  int run_next(Tick* time_out) {
    auto best = pending_.begin();
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->second < best->second) best = it;
    }
    const int id = best->first;
    *time_out = best->second.first;
    pending_.erase(best);
    return id;
  }

 private:
  std::map<int, std::pair<Tick, int>> pending_;
  int next_id_ = 0;
};

TEST(EventQueueFuzz, MatchesReferenceModel) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    EventQueue queue;
    ReferenceQueue ref;
    std::vector<int> executed;            // ids in real execution order
    std::vector<int> ref_executed;        // ids in reference order
    std::map<int, EventHandle> handles;   // ref id -> real handle
    std::vector<int> live_ids;
    Tick now = 0;

    for (int step = 0; step < 2'000; ++step) {
      const auto action = rng.uniform_int(0, 9);
      if (action <= 5) {
        // Schedule at a random (possibly past) time.
        const Tick at = now + rng.uniform_int(-50, 500);
        const int id = ref.schedule(at, now);
        handles[id] = queue.schedule_at(
            Time{at}, [id, &executed](Time) { executed.push_back(id); });
        live_ids.push_back(id);
      } else if (action <= 7 && !live_ids.empty()) {
        // Cancel a random known id (may already have run).
        const auto k = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(live_ids.size()) - 1));
        const int id = live_ids[k];
        const bool ref_cancelled = ref.cancel(id);
        const bool real_cancelled = queue.cancel(handles[id]);
        ASSERT_EQ(real_cancelled, ref_cancelled) << "id " << id;
      } else if (!queue.empty()) {
        ASSERT_FALSE(ref.empty());
        Tick ref_time = 0;
        ref_executed.push_back(ref.run_next(&ref_time));
        const Time t = queue.run_next();
        ASSERT_EQ(t.ticks, std::max(ref_time, now));
        now = t.ticks;
      }
    }
    // Drain.
    while (!queue.empty()) {
      Tick ref_time = 0;
      ref_executed.push_back(ref.run_next(&ref_time));
      queue.run_next();
    }
    ASSERT_TRUE(ref.empty());
    EXPECT_EQ(executed, ref_executed) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ccdem::sim
