// The composable policy pipeline: stage semantics (ported from the
// monolithic SectionPolicy / NaivePolicy / HysteresisPolicy tests), the
// arbiter's deterministic resolution rules, strict PipelineSpec parsing,
// and the two new stages (predictive governor, DVFS co-control).
#include "core/policy_pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "core/policy_stages.h"
#include "core/section_table.h"
#include "obs/obs.h"

namespace ccdem::core {
namespace {

const display::RefreshRateSet kS3 = display::RefreshRateSet::galaxy_s3();

PolicyInput make_input(double fps, int current_hz,
                       const display::RefreshRateSet& rates = kS3,
                       sim::Time t = sim::Time{}, bool boost = false) {
  PolicyInput in;
  in.now = t;
  in.content_fps = fps;
  in.current_hz = current_hz;
  in.rates = &rates;
  in.advertised = &rates;
  in.boost_active = boost;
  return in;
}

/// The legacy RefreshPolicy::decide() shape over a pipeline.
int decide(PolicyPipeline& p, double fps, int current_hz,
           const display::RefreshRateSet& rates = kS3) {
  return p.evaluate(make_input(fps, current_hz, rates)).target_hz;
}

int section_decide(double fps, double alpha = 0.5,
                   const display::RefreshRateSet& rates = kS3) {
  SectionStage s(SectionTable::build(rates, alpha));
  const PolicyInput in = make_input(fps, 60, rates);
  return s.propose(in)->target_hz;
}

std::unique_ptr<PolicyPipeline> make_section_hysteresis(
    int confirmations, const display::RefreshRateSet& rates = kS3) {
  DpmConfig config;
  config.hysteresis_down_confirmations = confirmations;
  return build_pipeline(
      PipelineSpec{{StageId::kSection, StageId::kHysteresis}}, rates, config);
}

// --- rate sources (ported) --------------------------------------------------

TEST(SectionStage, FollowsSectionTable) {
  EXPECT_EQ(section_decide(8.0), 20);
  EXPECT_EQ(section_decide(33.0), 40);
  EXPECT_EQ(section_decide(50.0), 60);
  SectionStage s(SectionTable::build(kS3, 0.5));
  EXPECT_EQ(s.name(), "section");
}

TEST(SectionStage, AlwaysAboveContentRate) {
  for (double c = 0.0; c < 59.0; c += 0.5) {
    EXPECT_GT(section_decide(c), c);
  }
}

TEST(NaiveStage, MapsToCeilRate) {
  NaiveStage s(kS3);
  EXPECT_EQ(s.propose(make_input(8.0, 60))->target_hz, 20);
  EXPECT_EQ(s.propose(make_input(21.0, 60))->target_hz, 24);
  EXPECT_EQ(s.propose(make_input(59.0, 60))->target_hz, 60);
  EXPECT_EQ(s.name(), "naive");
}

TEST(NaiveStage, ExhibitsVsyncTrap) {
  // The paper's failed first attempt: once at 20 Hz, the measured content
  // rate can never exceed 20 fps (V-Sync caps it), so the decision never
  // leaves 20 Hz even though the app wants 45 fps of content.
  NaiveStage s(kS3);
  int hz = s.propose(make_input(8.0, 60))->target_hz;  // idle dip
  EXPECT_EQ(hz, 20);
  const double true_content = 45.0;
  for (int step = 0; step < 10; ++step) {
    const double observed = std::min(true_content, static_cast<double>(hz));
    hz = s.propose(make_input(observed, hz))->target_hz;
  }
  EXPECT_EQ(hz, 20) << "naive control escaped the trap it is known for";
}

TEST(SectionStage, EscapesVsyncTrap) {
  // Same scenario: the section table keeps headroom above the observed
  // rate, so the observation can climb and the controller ramps up.
  int hz = section_decide(8.0);
  EXPECT_EQ(hz, 20);
  const double true_content = 45.0;
  for (int step = 0; step < 10; ++step) {
    const double observed = std::min(true_content, static_cast<double>(hz));
    hz = section_decide(observed);
  }
  EXPECT_EQ(hz, 60);
}

// --- Equation (1) boundary conditions ---------------------------------------

TEST(SectionBoundaries, ThresholdExactRatesMapToTheUpperSection) {
  // Galaxy S3, alpha = 0.5: thresholds at the medians 10/22/27/35, and each
  // section is half-open [lo, hi) -- landing exactly on a threshold selects
  // the higher rate.
  const struct {
    double threshold;
    int below_hz;
    int at_hz;
  } cases[] = {{10.0, 20, 24}, {22.0, 24, 30}, {27.0, 30, 40}, {35.0, 40, 60}};
  for (const auto& c : cases) {
    EXPECT_EQ(section_decide(std::nextafter(c.threshold, 0.0)), c.below_hz)
        << "just below " << c.threshold;
    EXPECT_EQ(section_decide(c.threshold), c.at_hz)
        << "exactly " << c.threshold;
  }
}

TEST(SectionBoundaries, AlphaZeroCollapsesTheBottomSection) {
  EXPECT_EQ(section_decide(0.0, 0.0), 24);
  EXPECT_EQ(section_decide(19.9, 0.0), 24);
  EXPECT_EQ(section_decide(20.0, 0.0), 30);
}

TEST(SectionBoundaries, AlphaOneIsTheTightMapping) {
  EXPECT_EQ(section_decide(19.9, 1.0), 20);
  EXPECT_EQ(section_decide(20.0, 1.0), 24);  // exactly 20 rounds up
  EXPECT_EQ(section_decide(59.9, 1.0), 60);
}

TEST(SectionBoundaries, SingleRateLadderAlwaysPicksThatRate) {
  const display::RefreshRateSet one{60};
  for (double c : {0.0, 10.0, 60.0, 500.0}) {
    EXPECT_EQ(section_decide(c, 0.5, one), 60);
  }
}

// --- hysteresis as a stage (ported) -----------------------------------------

TEST(HysteresisStage, IncreasesApplyImmediately) {
  auto p = make_section_hysteresis(3);
  EXPECT_EQ(decide(*p, 50.0, 20), 60);
}

TEST(HysteresisStage, HoldsSameRate) {
  auto p = make_section_hysteresis(3);
  EXPECT_EQ(decide(*p, 5.0, 20), 20);
  EXPECT_EQ(decide(*p, 5.0, 20), 20);
}

TEST(HysteresisStage, DecreaseNeedsConfirmations) {
  auto p = make_section_hysteresis(3);
  EXPECT_EQ(decide(*p, 5.0, 60), 60);  // 1st ask: held
  EXPECT_EQ(decide(*p, 5.0, 60), 60);  // 2nd ask: held
  EXPECT_EQ(decide(*p, 5.0, 60), 20);  // 3rd ask: applied
}

TEST(HysteresisStage, IncreaseResetsDownCounter) {
  auto p = make_section_hysteresis(2);
  EXPECT_EQ(decide(*p, 5.0, 60), 60);   // pending down = 1
  EXPECT_EQ(decide(*p, 55.0, 60), 60);  // hold/up: counter resets
  EXPECT_EQ(decide(*p, 5.0, 60), 60);   // pending down = 1 again
  EXPECT_EQ(decide(*p, 5.0, 60), 20);   // confirmed
}

TEST(HysteresisStage, CounterResetsAfterApplying) {
  auto p = make_section_hysteresis(2);
  (void)decide(*p, 5.0, 60);
  EXPECT_EQ(decide(*p, 5.0, 60), 20);
  // Now at 20 Hz; a fresh decrease opportunity needs confirmations again.
  EXPECT_EQ(decide(*p, 15.0, 30), 30);
  EXPECT_EQ(decide(*p, 15.0, 30), 24);
}

TEST(HysteresisStage, SingleConfirmationBehavesLikeSection) {
  auto p = make_section_hysteresis(1);
  for (double c : {5.0, 15.0, 25.0, 33.0, 50.0}) {
    EXPECT_EQ(decide(*p, c, 60), section_decide(c));
  }
}

TEST(HysteresisStage, ZeroConfirmationsAppliesDecreasesImmediately) {
  auto p = make_section_hysteresis(0);
  EXPECT_EQ(decide(*p, 5.0, 60), 20);
}

TEST(HysteresisStage, OscillatingInputProducesFewerSwitches) {
  // Content rate flapping across the 10 fps threshold: the raw section
  // stage flips 24<->20 every step; hysteresis holds the higher rate.
  auto hyst = make_section_hysteresis(3);
  int hyst_hz = 60, raw_hz = 60;
  int hyst_switches = 0, raw_switches = 0;
  for (int i = 0; i < 100; ++i) {
    const double c = (i % 2 == 0) ? 9.0 : 11.0;
    const int h = decide(*hyst, c, hyst_hz);
    if (h != hyst_hz) ++hyst_switches;
    hyst_hz = h;
    const int r = section_decide(c);
    if (r != raw_hz) ++raw_switches;
    raw_hz = r;
  }
  EXPECT_LT(hyst_switches, raw_switches / 4);
}

TEST(HysteresisStage, SingleRateLadderNeverSwitches) {
  const display::RefreshRateSet one{30};
  auto p = make_section_hysteresis(3, one);
  for (double c : {0.0, 100.0, 0.0, 100.0}) {
    EXPECT_EQ(decide(*p, c, 30, one), 30);
  }
}

TEST(HysteresisStage, HoldAtSameRateDoesNotCountAsDecrease) {
  auto p = make_section_hysteresis(2);
  EXPECT_EQ(decide(*p, 5.0, 60), 60);   // pending = 1
  EXPECT_EQ(decide(*p, 50.0, 60), 60);  // source wants 60: reset
  EXPECT_EQ(decide(*p, 5.0, 60), 60);   // pending = 1 again
  EXPECT_EQ(decide(*p, 5.0, 60), 20);
}

TEST(HysteresisStage, ThresholdExactDecreasePathIsConfirmedToo) {
  auto p = make_section_hysteresis(2);
  EXPECT_EQ(decide(*p, 22.0, 60), 60);
  EXPECT_EQ(decide(*p, 22.0, 60), 30);
  EXPECT_EQ(decide(*p, 22.0, 30), 30);
}

// --- arbiter ----------------------------------------------------------------

/// A stage with a canned preempt/proposal, for arbiter tests.
class StubStage final : public PolicyStage {
 public:
  StubStage(std::string name, std::optional<RateProposal> proposal,
            std::optional<int> pin = std::nullopt)
      : name_(std::move(name)), proposal_(proposal), pin_(pin) {}
  [[nodiscard]] std::string_view name() const override { return name_; }
  std::optional<int> preempt(const PolicyInput&) override { return pin_; }
  std::optional<RateProposal> propose(const PolicyInput&) override {
    ++proposals_asked;
    return proposal_;
  }

  int proposals_asked = 0;

 private:
  std::string name_;
  std::optional<RateProposal> proposal_;
  std::optional<int> pin_;
};

RateProposal proposal(int hz, int priority = kPriorityNormal,
                      bool policy = true) {
  RateProposal p;
  p.target_hz = hz;
  p.priority = priority;
  p.policy = policy;
  return p;
}

TEST(Arbiter, MaxRateWinsAtSamePriority) {
  PolicyPipeline p;
  p.add_stage(std::make_unique<StubStage>("a", proposal(40)));
  p.add_stage(std::make_unique<StubStage>("b", proposal(60)));
  const auto d = p.evaluate(make_input(10.0, 30));
  EXPECT_EQ(d.target_hz, 60);
  EXPECT_FALSE(d.preempted);
}

TEST(Arbiter, PriorityBeatsRate) {
  PolicyPipeline p;
  p.add_stage(std::make_unique<StubStage>("a", proposal(60)));
  p.add_stage(std::make_unique<StubStage>("b", proposal(20, kPriorityPin)));
  EXPECT_EQ(p.evaluate(make_input(10.0, 30)).target_hz, 20);
}

TEST(Arbiter, EarliestStageWinsExactTies) {
  obs::ObsSink sink;
  PolicyPipeline p;
  p.add_stage(std::make_unique<StubStage>("a", proposal(40)));
  p.add_stage(std::make_unique<StubStage>("b", proposal(40)));
  p.set_obs(&sink);
  EXPECT_EQ(p.evaluate(make_input(10.0, 30)).target_hz, 40);
  const auto value = [&](std::string_view name) {
    return sink.counters.value(name);
  };
  EXPECT_EQ(value("policy.a.wins"), 1u);
  EXPECT_EQ(value("policy.b.wins"), 0u);
  EXPECT_EQ(value("policy.a.proposals"), 1u);
  EXPECT_EQ(value("policy.b.proposals"), 1u);
}

TEST(Arbiter, NoProposalsHoldsCurrentRate) {
  PolicyPipeline p;
  p.add_stage(std::make_unique<StubStage>("a", std::nullopt));
  const auto d = p.evaluate(make_input(10.0, 30));
  EXPECT_EQ(d.target_hz, 30);
  EXPECT_EQ(d.policy_hz, 30);
}

TEST(Arbiter, PreemptSuspendsTheProposeRound) {
  PolicyPipeline p;
  auto stub = std::make_unique<StubStage>("a", proposal(20));
  StubStage* source = stub.get();
  p.add_stage(std::move(stub));
  p.add_stage(
      std::make_unique<StubStage>("pin", std::nullopt, std::optional<int>{60}));
  const auto d = p.evaluate(make_input(10.0, 30));
  EXPECT_TRUE(d.preempted);
  EXPECT_EQ(d.target_hz, 60);
  // The policy round never ran: stage state freezes, exactly like the
  // monolithic controller's suspended policy in safe mode.
  EXPECT_EQ(source->proposals_asked, 0);
}

TEST(Arbiter, PolicyHzIgnoresNonPolicyOverlays) {
  PolicyPipeline p;
  p.add_stage(std::make_unique<StubStage>("section", proposal(24)));
  p.add_stage(std::make_unique<StubStage>(
      "boost", proposal(60, kPriorityNormal, /*policy=*/false)));
  const auto d = p.evaluate(make_input(10.0, 24));
  EXPECT_EQ(d.target_hz, 60);   // the overlay wins the actuated rate
  EXPECT_EQ(d.policy_hz, 24);   // ...but not the policy decision
}

// --- boost + floor stages ---------------------------------------------------

TEST(BoostStage, ProposesOnlyWhileBoostWindowIsOpen) {
  BoostStage s(0);
  EXPECT_FALSE(s.propose(make_input(5.0, 20)).has_value());
  const auto p =
      s.propose(make_input(5.0, 20, kS3, sim::Time{}, /*boost=*/true));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->target_hz, 60);
  EXPECT_FALSE(p->policy);
}

TEST(BoostStage, ConfiguredCapFallsBackWhenNotAdvertised) {
  EXPECT_EQ(resolve_boost_hz(kS3, 30), 30);
  EXPECT_EQ(resolve_boost_hz(kS3, 25), 60);  // not a ladder level
  EXPECT_EQ(resolve_boost_hz(kS3, 0), 60);
}

TEST(FloorStage, UnsupportedFloorProposesNothing) {
  FloorStage supported(30);
  EXPECT_EQ(supported.propose(make_input(5.0, 20))->target_hz, 30);
  FloorStage unsupported(25);
  EXPECT_FALSE(unsupported.propose(make_input(5.0, 20)).has_value());
}

// --- pipeline specs ---------------------------------------------------------

TEST(PipelineSpec, ParsesAndRendersCanonically) {
  std::string error;
  const auto spec = PipelineSpec::parse("section, hysteresis ,boost", &error);
  ASSERT_TRUE(spec) << error;
  EXPECT_EQ(spec->stages,
            (std::vector<StageId>{StageId::kSection, StageId::kHysteresis,
                                  StageId::kBoost}));
  EXPECT_EQ(spec->to_string(), "section,hysteresis,boost");
  const auto again = PipelineSpec::parse(spec->to_string(), &error);
  ASSERT_TRUE(again);
  EXPECT_EQ(*again, *spec);
}

TEST(PipelineSpec, StageKeywordsRoundTrip) {
  for (StageId id : {StageId::kSection, StageId::kNaive, StageId::kHysteresis,
                     StageId::kBoost, StageId::kPredictive, StageId::kDvfs}) {
    const auto back = stage_from_keyword(stage_keyword(id));
    ASSERT_TRUE(back.has_value()) << stage_keyword(id);
    EXPECT_EQ(*back, id);
  }
  EXPECT_FALSE(stage_from_keyword("florp").has_value());
}

TEST(PipelineSpec, RejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(PipelineSpec::parse("", &error));
  EXPECT_NE(error.find("empty"), std::string::npos) << error;
  EXPECT_FALSE(PipelineSpec::parse("section,florp", &error));
  EXPECT_NE(error.find("florp"), std::string::npos) << error;
  EXPECT_FALSE(PipelineSpec::parse("section,section", &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  EXPECT_FALSE(PipelineSpec::parse("boost", &error));  // no rate source
  EXPECT_FALSE(PipelineSpec::parse("hysteresis,section", &error));
  EXPECT_FALSE(PipelineSpec::parse("section,,boost", &error));
}

TEST(PipelineSpec, BuildAppendsFloorAndRecoveryFromConfig) {
  DpmConfig config;
  config.min_hz = 30;
  config.recovery.enabled = true;
  auto p = build_pipeline(PipelineSpec{{StageId::kSection}}, kS3, config);
  EXPECT_TRUE(p->has_stage("section"));
  EXPECT_TRUE(p->has_stage("floor"));
  EXPECT_TRUE(p->has_stage("recovery"));
  EXPECT_EQ(p->size(), 3u);

  auto bare = build_pipeline(PipelineSpec{{StageId::kSection}}, kS3, {});
  EXPECT_FALSE(bare->has_stage("floor"));
  EXPECT_FALSE(bare->has_stage("recovery"));
  EXPECT_EQ(bare->size(), 1u);
}

// --- predictive governor ----------------------------------------------------

PredictiveConfig fast_predictive() {
  PredictiveConfig c;
  c.window = 4;
  c.lead = 2.0;
  // Stability is residual spread around the window's trend line: a clean
  // ramp fits exactly (residual 0), while the 30<->10 oscillation leaves
  // ~10 fps of residual and stays gated.
  c.stability_threshold = 3.0;
  c.down_confirmations = 1;
  c.down_cooldown = sim::Duration{};
  return c;
}

TEST(PredictiveRateStage, UpStepsAreInstant) {
  PredictiveRateStage s(SectionTable::build(kS3, 0.5), fast_predictive());
  (void)s.propose(make_input(5.0, 60));
  EXPECT_EQ(s.target_hz(), 20);
  const auto p = s.propose(make_input(50.0, 20));
  EXPECT_EQ(p->target_hz, 60);
}

TEST(PredictiveRateStage, DownStepsNeedConfirmations) {
  PredictiveConfig c = fast_predictive();
  c.down_confirmations = 2;
  PredictiveRateStage s(SectionTable::build(kS3, 0.5), c);
  (void)s.propose(make_input(50.0, 60));  // seeds target at 60
  EXPECT_EQ(s.propose(make_input(5.0, 60))->target_hz, 60);  // 1st: held
  EXPECT_EQ(s.propose(make_input(5.0, 60))->target_hz, 20);  // 2nd: applied
}

TEST(PredictiveRateStage, StableDowntrendStepsBelowTheReactiveTable) {
  obs::ObsSink sink;
  PredictiveRateStage s(SectionTable::build(kS3, 0.5), fast_predictive());
  s.register_obs(&sink);
  // A clean -2 fps/tick ramp: once the window fills, the extrapolation
  // (lead = 2) puts the predicted rate a section below the reactive one.
  sim::Time t{};
  bool prestepped = false;
  double fps = 40.0;
  for (int i = 0; i < 12; ++i, fps -= 2.0, t = t + sim::milliseconds(100)) {
    const auto p = s.propose(make_input(fps, 60, kS3, t));
    const int reactive = SectionTable::build(kS3, 0.5).rate_for(fps);
    if (p->target_hz < reactive) prestepped = true;
  }
  EXPECT_TRUE(prestepped);
  EXPECT_GT(sink.counters.value("policy.predictive.presteps"), 0u);
}

TEST(PredictiveRateStage, UnstableContentFallsBackToReactive) {
  PredictiveRateStage s(SectionTable::build(kS3, 0.5), fast_predictive());
  // Noisy oscillation (stddev >> threshold): prediction is gated off, so
  // the stage tracks the reactive table exactly (confirmations = 1).
  const SectionTable table = SectionTable::build(kS3, 0.5);
  sim::Time t{};
  for (int i = 0; i < 20; ++i, t = t + sim::milliseconds(100)) {
    const double fps = (i % 2 == 0) ? 30.0 : 10.0;
    const auto p = s.propose(make_input(fps, 60, kS3, t));
    EXPECT_EQ(p->target_hz, table.rate_for(fps)) << "tick " << i;
  }
}

TEST(PredictiveRateStage, DownCooldownLimitsStepRate) {
  PredictiveConfig c = fast_predictive();
  c.down_cooldown = sim::seconds(10);
  PredictiveRateStage s(SectionTable::build(kS3, 0.5), c);
  sim::Time t{};
  (void)s.propose(make_input(50.0, 60, kS3, t));
  t = t + sim::milliseconds(100);
  EXPECT_EQ(s.propose(make_input(25.0, 60, kS3, t))->target_hz, 30);
  // Within the cooldown, a further drop is not actuated.
  t = t + sim::milliseconds(100);
  EXPECT_EQ(s.propose(make_input(5.0, 60, kS3, t))->target_hz, 30);
  // After the cooldown it lands.
  t = t + sim::seconds(11);
  EXPECT_EQ(s.propose(make_input(5.0, 60, kS3, t))->target_hz, 20);
}

// --- DVFS co-control --------------------------------------------------------

DvfsConfig fast_dvfs() {
  DvfsConfig c;
  c.rungs = 5;
  c.headroom = 1.25;
  c.instability_fps = 8.0;
  c.stable_ticks = 2;
  return c;
}

TEST(DvfsCoControlStage, StableLowContentDownRungsAndCapsTheTarget) {
  DvfsCoControlStage s(fast_dvfs(), /*min_hz=*/0);
  EXPECT_EQ(s.rung(), 4);  // starts at the top
  int target = 60;
  for (int i = 0; i < 20; ++i) {
    target = 60;
    s.adjust(make_input(10.0, 60), /*preempted=*/false, target);
  }
  // Capacity ladder is 12/24/36/48/60 fps; 10 fps * 1.25 headroom stops the
  // descent at rung 1 (24 fps), and the display cap follows: ceil(24) = 24.
  EXPECT_EQ(s.rung(), 1);
  EXPECT_EQ(target, 24);
}

TEST(DvfsCoControlStage, InstabilityRungsBackUp) {
  DvfsCoControlStage s(fast_dvfs(), 0);
  int target = 60;
  for (int i = 0; i < 20; ++i) {
    target = 60;
    s.adjust(make_input(10.0, 60), false, target);
  }
  ASSERT_EQ(s.rung(), 1);
  // A >8 fps jump is frametime instability: the GPU gets headroom now.
  target = 60;
  s.adjust(make_input(40.0, 60), false, target);
  EXPECT_EQ(s.rung(), 2);
}

TEST(DvfsCoControlStage, BoostAndPreemptionSuspendTheCap) {
  DvfsCoControlStage s(fast_dvfs(), 0);
  for (int i = 0; i < 20; ++i) {
    int t = 60;
    s.adjust(make_input(10.0, 60), false, t);
  }
  int target = 60;
  s.adjust(make_input(10.0, 60, kS3, sim::Time{}, /*boost=*/true), false,
           target);
  EXPECT_EQ(target, 60) << "boost window must not be capped";
  target = 60;
  s.adjust(make_input(10.0, 60), /*preempted=*/true, target);
  EXPECT_EQ(target, 60) << "recovery pin must not be capped";
}

TEST(DvfsCoControlStage, FloorBoundsTheCap) {
  DvfsCoControlStage s(fast_dvfs(), /*min_hz=*/40);
  int target = 60;
  for (int i = 0; i < 20; ++i) {
    target = 60;
    s.adjust(make_input(5.0, 60), false, target);
  }
  EXPECT_EQ(target, 40);  // capped, but never below the configured floor
}

// --- pipeline evaluation accounting -----------------------------------------

TEST(PolicyPipeline, CountsEvaluations) {
  auto p = make_section_hysteresis(1);
  EXPECT_EQ(p->evaluations(), 0u);
  (void)decide(*p, 5.0, 60);
  (void)decide(*p, 5.0, 60);
  EXPECT_EQ(p->evaluations(), 2u);
}

TEST(PolicyPipeline, StageLookupFindsStagesByName) {
  auto p = make_section_hysteresis(3);
  EXPECT_TRUE(p->has_stage("section"));
  EXPECT_TRUE(p->has_stage("hysteresis"));
  EXPECT_FALSE(p->has_stage("boost"));
  auto* h = static_cast<HysteresisStage*>(p->stage("hysteresis"));
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->down_confirmations(), 3);
  EXPECT_EQ(p->stage("florp"), nullptr);
}

}  // namespace
}  // namespace ccdem::core
