#include "harness/config_io.h"

#include <gtest/gtest.h>

namespace ccdem::harness {
namespace {

TEST(ConfigIo, ParsesFullConfig) {
  const std::string text =
      "# demo config\n"
      "app = Jelly Splash\n"
      "mode = section+boost\n"
      "seconds = 42\n"
      "seed = 99\n"
      "grid = 36k\n"
      "eval_ms = 250\n"
      "boost_hold_ms = 750\n"
      "alpha = 0.75\n";
  std::string error;
  const auto config = parse_experiment_config_string(text, &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->app.name, "Jelly Splash");
  EXPECT_EQ(config->mode, ControlMode::kSectionWithBoost);
  EXPECT_EQ(config->duration, sim::seconds(42));
  EXPECT_EQ(config->seed, 99u);
  EXPECT_EQ(config->dpm.meter.grid.sample_count(),
            core::GridSpec::grid_36k().sample_count());
  EXPECT_EQ(config->dpm.meter.eval_period, sim::milliseconds(250));
  EXPECT_EQ(config->dpm.boost_hold, sim::milliseconds(750));
  EXPECT_DOUBLE_EQ(config->dpm.section_alpha, 0.75);
}

TEST(ConfigIo, DefaultsApplyForOmittedKeys) {
  const auto config = parse_experiment_config_string("app = Facebook\n");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->mode, ControlMode::kBaseline60);
  EXPECT_EQ(config->duration, sim::seconds(60));
}

TEST(ConfigIo, AllModesParse) {
  for (const char* mode :
       {"baseline", "section", "section+boost", "naive", "hysteresis",
        "e3"}) {
    const auto config = parse_experiment_config_string(
        std::string("app = Facebook\nmode = ") + mode + "\n");
    EXPECT_TRUE(config.has_value()) << mode;
  }
}

// --- pipeline mode: the spec key is mandatory, strict, and paired -------

TEST(ConfigIo, ParsesPipelineModeWithSpec) {
  const auto config = parse_experiment_config_string(
      "app = Facebook\nmode = pipeline\n"
      "pipeline = section, hysteresis ,boost\n");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->mode, ControlMode::kPipeline);
  EXPECT_EQ(config->pipeline.to_string(), "section,hysteresis,boost");
}

TEST(ConfigIo, PipelineModeRoundTrips) {
  ExperimentConfig config;
  config.app = apps::app_by_name("Facebook");
  config.mode = ControlMode::kPipeline;
  const auto spec = core::PipelineSpec::parse("predictive,boost,dvfs", nullptr);
  ASSERT_TRUE(spec.has_value());
  config.pipeline = *spec;
  const auto back =
      parse_experiment_config_string(experiment_config_to_string(config));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->mode, ControlMode::kPipeline);
  EXPECT_EQ(back->pipeline.to_string(), "predictive,boost,dvfs");
}

TEST(ConfigIo, RejectsBadPipelineSpecs) {
  const char* bad[] = {
      "pipeline = section,florp\n",       // unknown stage
      "pipeline = section,section\n",     // duplicate stage
      "pipeline = \n",                    // empty spec
      "pipeline = boost\n",               // no rate source
      "pipeline = hysteresis,section\n",  // hysteresis before its source
  };
  for (const char* line : bad) {
    std::string error;
    EXPECT_FALSE(parse_experiment_config_string(
        std::string("app = Facebook\nmode = pipeline\n") + line, &error))
        << line;
    EXPECT_NE(error.find("pipeline"), std::string::npos) << line;
  }
}

TEST(ConfigIo, RejectsPipelineKeyModePairingViolations) {
  std::string error;
  // mode = pipeline without the spec key...
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nmode = pipeline\n", &error));
  EXPECT_NE(error.find("pipeline"), std::string::npos);
  // ...and a spec key under a legacy mode (key order must not matter).
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\npipeline = section\nmode = section\n", &error));
  EXPECT_NE(error.find("pipeline"), std::string::npos);
  // Duplicate spec keys are a conflict, not last-wins.
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nmode = pipeline\npipeline = section\n"
      "pipeline = naive\n",
      &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(ConfigIo, RejectsUnknownApp) {
  std::string error;
  EXPECT_FALSE(
      parse_experiment_config_string("app = Nonexistent\n", &error));
  EXPECT_NE(error.find("Nonexistent"), std::string::npos);
}

TEST(ConfigIo, RejectsUnknownKey) {
  std::string error;
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nbrightnes = 50\n", &error));
  EXPECT_NE(error.find("brightnes"), std::string::npos);
}

TEST(ConfigIo, RejectsMissingApp) {
  std::string error;
  EXPECT_FALSE(parse_experiment_config_string("mode = section\n", &error));
  EXPECT_NE(error.find("app"), std::string::npos);
}

TEST(ConfigIo, RejectsMalformedLine) {
  std::string error;
  EXPECT_FALSE(
      parse_experiment_config_string("app = Facebook\nnonsense\n", &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(ConfigIo, RejectsBadValues) {
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nseconds = -3\n"));
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nalpha = 1.5\n"));
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\ngrid = 17k\n"));
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nmode = turbo\n"));
}

// --- strict numeric parsing: each rejection carries a descriptive error ---

TEST(ConfigIo, RejectsNanAndInf) {
  for (const char* bad :
       {"alpha = nan\n", "alpha = inf\n", "alpha = -inf\n",
        "fault_scale = nan\n", "fault_scale = inf\n"}) {
    std::string error;
    EXPECT_FALSE(parse_experiment_config_string(
        std::string("app = Facebook\n") + bad, &error))
        << bad;
    EXPECT_NE(error.find("bad value"), std::string::npos) << bad;
  }
}

TEST(ConfigIo, RejectsTrailingGarbageOnNumbers) {
  for (const char* bad :
       {"seconds = 12abc\n", "seed = 7seven\n", "eval_ms = 100ms\n",
        "boost_hold_ms = 1e2x\n", "alpha = 0.5!\n", "baseline_hz = 60Hz\n"}) {
    std::string error;
    EXPECT_FALSE(parse_experiment_config_string(
        std::string("app = Facebook\n") + bad, &error))
        << bad;
    EXPECT_NE(error.find("bad value"), std::string::npos) << bad;
  }
}

TEST(ConfigIo, RejectsNegativeThresholds) {
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nboost_hold_ms = -1\n"));
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\neval_ms = 0\n"));
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nalpha = -0.1\n"));
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nfault_scale = -1\n"));
}

TEST(ConfigIo, RejectsNonPositiveRefreshRates) {
  std::string error;
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nrates = 20,0,60\n", &error));
  EXPECT_NE(error.find("rates"), std::string::npos);
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nrates = -30\n"));
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nrates = \n"));
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nbaseline_hz = 0\n"));
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nmin_hz = -24\n"));
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nboost_hz = 0\n"));
}

TEST(ConfigIo, RejectsRatesOutsideTheLadder) {
  // Membership is checked after the whole file parses, so key order must
  // not matter.
  std::string error;
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nbaseline_hz = 45\n", &error));
  EXPECT_NE(error.find("baseline_hz"), std::string::npos);
  EXPECT_NE(error.find("45"), std::string::npos);
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nmin_hz = 25\nrates = 20,24,30,40,60\n"));
  EXPECT_FALSE(parse_experiment_config_string(
      "app = Facebook\nrates = 30,60\nboost_hz = 40\n"));
  EXPECT_TRUE(parse_experiment_config_string(
      "app = Facebook\nbaseline_hz = 40\nrates = 20,40\n"));
}

TEST(ConfigIo, ParsesRatesAndHzKeys) {
  const auto config = parse_experiment_config_string(
      "app = Facebook\nrates = 30, 60, 90\nbaseline_hz = 60\n"
      "min_hz = 30\nboost_hz = 90\n");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->rates.count(), 3u);
  EXPECT_EQ(config->rates.max_hz(), 90);
  EXPECT_EQ(config->baseline_hz, 60);
  EXPECT_EQ(config->dpm.min_hz, 30);
  EXPECT_EQ(config->dpm.boost_hz, 90);
}

TEST(ConfigIo, FaultScaleBuildsAPlan) {
  const auto clean = parse_experiment_config_string(
      "app = Facebook\nfault_scale = 0\n");
  ASSERT_TRUE(clean.has_value());
  EXPECT_TRUE(clean->fault.empty());

  const auto faulted = parse_experiment_config_string(
      "app = Facebook\nfault_scale = 2.0\n");
  ASSERT_TRUE(faulted.has_value());
  EXPECT_FALSE(faulted->fault.empty());
  EXPECT_DOUBLE_EQ(faulted->fault.switch_nak_p,
                   fault::FaultPlan::nominal().switch_nak_p * 2.0);
}

TEST(ConfigIo, RoundTrips) {
  ExperimentConfig config;
  config.app = apps::app_by_name("Daum Maps");
  config.mode = ControlMode::kSectionHysteresis;
  config.duration = sim::seconds(17);
  config.seed = 1234;
  config.dpm.meter.grid = core::GridSpec::grid_2k();
  config.dpm.meter.eval_period = sim::milliseconds(150);
  config.dpm.boost_hold = sim::milliseconds(400);
  config.dpm.section_alpha = 0.25;
  config.rates = display::RefreshRateSet{30, 60, 90};
  config.baseline_hz = 60;
  config.dpm.min_hz = 30;
  config.dpm.boost_hz = 90;

  const auto back =
      parse_experiment_config_string(experiment_config_to_string(config));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->app.name, config.app.name);
  EXPECT_EQ(back->mode, config.mode);
  EXPECT_EQ(back->duration, config.duration);
  EXPECT_EQ(back->seed, config.seed);
  EXPECT_EQ(back->dpm.meter.grid.sample_count(),
            config.dpm.meter.grid.sample_count());
  EXPECT_EQ(back->dpm.meter.eval_period, config.dpm.meter.eval_period);
  EXPECT_EQ(back->dpm.boost_hold, config.dpm.boost_hold);
  EXPECT_DOUBLE_EQ(back->dpm.section_alpha, config.dpm.section_alpha);
  EXPECT_EQ(back->rates.rates(), config.rates.rates());
  EXPECT_EQ(back->baseline_hz, config.baseline_hz);
  EXPECT_EQ(back->dpm.min_hz, config.dpm.min_hz);
  EXPECT_EQ(back->dpm.boost_hz, config.dpm.boost_hz);
}

TEST(ConfigIo, CommentsAndBlankLinesIgnored) {
  const auto config = parse_experiment_config_string(
      "\n# leading comment\napp = Naver   # trailing comment\n\n");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->app.name, "Naver");
}

}  // namespace
}  // namespace ccdem::harness
