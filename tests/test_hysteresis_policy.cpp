#include "core/hysteresis_policy.h"

#include <gtest/gtest.h>

#include <memory>

namespace ccdem::core {
namespace {

const display::RefreshRateSet kS3 = display::RefreshRateSet::galaxy_s3();

HysteresisPolicy make(int confirmations = 3) {
  return HysteresisPolicy(std::make_unique<SectionPolicy>(kS3, 0.5),
                          confirmations);
}

TEST(HysteresisPolicy, IncreasesApplyImmediately) {
  auto p = make();
  EXPECT_EQ(p.decide(sim::Time{}, 50.0, 20), 60);
}

TEST(HysteresisPolicy, HoldsSameRate) {
  auto p = make();
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 20), 20);
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 20), 20);
}

TEST(HysteresisPolicy, DecreaseNeedsConfirmations) {
  auto p = make(3);
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 60);  // 1st ask: held
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 60);  // 2nd ask: held
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 20);  // 3rd ask: applied
}

TEST(HysteresisPolicy, IncreaseResetsDownCounter) {
  auto p = make(2);
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 60);   // pending down = 1
  EXPECT_EQ(p.decide(sim::Time{}, 55.0, 60), 60);  // hold/up: counter resets
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 60);   // pending down = 1 again
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 20);   // confirmed
}

TEST(HysteresisPolicy, CounterResetsAfterApplying) {
  auto p = make(2);
  (void)p.decide(sim::Time{}, 5.0, 60);
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 20);
  // Now at 20 Hz; a fresh decrease opportunity needs confirmations again.
  EXPECT_EQ(p.decide(sim::Time{}, 15.0, 30), 30);
  EXPECT_EQ(p.decide(sim::Time{}, 15.0, 30), 24);
}

TEST(HysteresisPolicy, SingleConfirmationBehavesLikeInner) {
  auto p = make(1);
  SectionPolicy inner(kS3, 0.5);
  for (double c : {5.0, 15.0, 25.0, 33.0, 50.0}) {
    EXPECT_EQ(p.decide(sim::Time{}, c, 60),
              inner.decide(sim::Time{}, c, 60));
  }
}

TEST(HysteresisPolicy, ExposesInnerAndName) {
  auto p = make();
  EXPECT_STREQ(p.name(), "hysteresis");
  EXPECT_STREQ(p.inner().name(), "section");
  EXPECT_EQ(p.down_confirmations(), 3);
}

TEST(HysteresisPolicy, OscillatingInputProducesFewerSwitches) {
  // Content rate flapping across the 10 fps threshold: the raw section
  // policy flips 24<->20 every step; hysteresis holds the higher rate.
  auto hyst = make(3);
  SectionPolicy raw(kS3, 0.5);
  int hyst_hz = 60, raw_hz = 60;
  int hyst_switches = 0, raw_switches = 0;
  for (int i = 0; i < 100; ++i) {
    const double c = (i % 2 == 0) ? 9.0 : 11.0;
    const int h = hyst.decide(sim::Time{}, c, hyst_hz);
    if (h != hyst_hz) ++hyst_switches;
    hyst_hz = h;
    const int r = raw.decide(sim::Time{}, c, raw_hz);
    if (r != raw_hz) ++raw_switches;
    raw_hz = r;
  }
  EXPECT_LT(hyst_switches, raw_switches / 4);
}

}  // namespace
}  // namespace ccdem::core
