#include "core/hysteresis_policy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace ccdem::core {
namespace {

const display::RefreshRateSet kS3 = display::RefreshRateSet::galaxy_s3();

HysteresisPolicy make(int confirmations = 3) {
  return HysteresisPolicy(std::make_unique<SectionPolicy>(kS3, 0.5),
                          confirmations);
}

TEST(HysteresisPolicy, IncreasesApplyImmediately) {
  auto p = make();
  EXPECT_EQ(p.decide(sim::Time{}, 50.0, 20), 60);
}

TEST(HysteresisPolicy, HoldsSameRate) {
  auto p = make();
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 20), 20);
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 20), 20);
}

TEST(HysteresisPolicy, DecreaseNeedsConfirmations) {
  auto p = make(3);
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 60);  // 1st ask: held
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 60);  // 2nd ask: held
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 20);  // 3rd ask: applied
}

TEST(HysteresisPolicy, IncreaseResetsDownCounter) {
  auto p = make(2);
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 60);   // pending down = 1
  EXPECT_EQ(p.decide(sim::Time{}, 55.0, 60), 60);  // hold/up: counter resets
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 60);   // pending down = 1 again
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 20);   // confirmed
}

TEST(HysteresisPolicy, CounterResetsAfterApplying) {
  auto p = make(2);
  (void)p.decide(sim::Time{}, 5.0, 60);
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 20);
  // Now at 20 Hz; a fresh decrease opportunity needs confirmations again.
  EXPECT_EQ(p.decide(sim::Time{}, 15.0, 30), 30);
  EXPECT_EQ(p.decide(sim::Time{}, 15.0, 30), 24);
}

TEST(HysteresisPolicy, SingleConfirmationBehavesLikeInner) {
  auto p = make(1);
  SectionPolicy inner(kS3, 0.5);
  for (double c : {5.0, 15.0, 25.0, 33.0, 50.0}) {
    EXPECT_EQ(p.decide(sim::Time{}, c, 60),
              inner.decide(sim::Time{}, c, 60));
  }
}

TEST(HysteresisPolicy, ExposesInnerAndName) {
  auto p = make();
  EXPECT_STREQ(p.name(), "hysteresis");
  EXPECT_STREQ(p.inner().name(), "section");
  EXPECT_EQ(p.down_confirmations(), 3);
}

TEST(HysteresisPolicy, OscillatingInputProducesFewerSwitches) {
  // Content rate flapping across the 10 fps threshold: the raw section
  // policy flips 24<->20 every step; hysteresis holds the higher rate.
  auto hyst = make(3);
  SectionPolicy raw(kS3, 0.5);
  int hyst_hz = 60, raw_hz = 60;
  int hyst_switches = 0, raw_switches = 0;
  for (int i = 0; i < 100; ++i) {
    const double c = (i % 2 == 0) ? 9.0 : 11.0;
    const int h = hyst.decide(sim::Time{}, c, hyst_hz);
    if (h != hyst_hz) ++hyst_switches;
    hyst_hz = h;
    const int r = raw.decide(sim::Time{}, c, raw_hz);
    if (r != raw_hz) ++raw_switches;
    raw_hz = r;
  }
  EXPECT_LT(hyst_switches, raw_switches / 4);
}

// --- Equation (1) boundary conditions ---------------------------------------

TEST(SectionBoundaries, ThresholdExactRatesMapToTheUpperSection) {
  // Galaxy S3, alpha = 0.5: thresholds at the medians 10/22/27/35, and each
  // section is half-open [lo, hi) -- landing exactly on a threshold selects
  // the higher rate.
  SectionPolicy p(kS3, 0.5);
  const struct {
    double threshold;
    int below_hz;
    int at_hz;
  } cases[] = {{10.0, 20, 24}, {22.0, 24, 30}, {27.0, 30, 40}, {35.0, 40, 60}};
  for (const auto& c : cases) {
    EXPECT_EQ(p.decide(sim::Time{}, std::nextafter(c.threshold, 0.0), 60),
              c.below_hz)
        << "just below " << c.threshold;
    EXPECT_EQ(p.decide(sim::Time{}, c.threshold, 60), c.at_hz)
        << "exactly " << c.threshold;
  }
}

TEST(SectionBoundaries, MediansMatchEquationOne) {
  const SectionTable t = SectionTable::build(kS3, 0.5);
  ASSERT_EQ(t.sections().size(), 5u);
  const double expected_hi[] = {10.0, 22.0, 27.0, 35.0};
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(t.sections()[i].hi_fps, expected_hi[i]) << "section " << i;
    // Contiguity: each section starts where the previous one ends.
    EXPECT_DOUBLE_EQ(t.sections()[i + 1].lo_fps, t.sections()[i].hi_fps);
  }
  EXPECT_TRUE(std::isinf(t.sections().back().hi_fps));
}

TEST(SectionBoundaries, AlphaZeroCollapsesTheBottomSection) {
  // alpha = 0 puts every threshold at the lower neighbour, so section 0 is
  // the empty [0, 0) and even a fully static screen gets the second rung:
  // maximal headroom, minimal savings.
  SectionPolicy p(kS3, 0.0);
  EXPECT_EQ(p.decide(sim::Time{}, 0.0, 60), 24);
  EXPECT_EQ(p.decide(sim::Time{}, 19.9, 60), 24);
  EXPECT_EQ(p.decide(sim::Time{}, 20.0, 60), 30);
}

TEST(SectionBoundaries, AlphaOneIsTheTightMapping) {
  // alpha = 1 puts every threshold at the upper neighbour: the chosen rate
  // is the smallest rung strictly above the content rate.
  SectionPolicy p(kS3, 1.0);
  EXPECT_EQ(p.decide(sim::Time{}, 19.9, 60), 20);
  EXPECT_EQ(p.decide(sim::Time{}, 20.0, 60), 24);  // exactly 20 rounds up
  EXPECT_EQ(p.decide(sim::Time{}, 59.9, 20), 60);
}

TEST(SectionBoundaries, SingleRateLadderAlwaysPicksThatRate) {
  const display::RefreshRateSet one{60};
  SectionPolicy p(one, 0.5);
  for (double c : {0.0, 10.0, 60.0, 500.0}) {
    EXPECT_EQ(p.decide(sim::Time{}, c, 60), 60);
  }
  const SectionTable t = SectionTable::build(one, 0.5);
  ASSERT_EQ(t.sections().size(), 1u);
  EXPECT_TRUE(std::isinf(t.sections().front().hi_fps));
}

TEST(HysteresisPolicy, SingleRateLadderNeverSwitches) {
  HysteresisPolicy p(
      std::make_unique<SectionPolicy>(display::RefreshRateSet{30}, 0.5), 3);
  for (double c : {0.0, 100.0, 0.0, 100.0}) {
    EXPECT_EQ(p.decide(sim::Time{}, c, 30), 30);
  }
}

TEST(HysteresisPolicy, ZeroConfirmationsAppliesDecreasesImmediately) {
  auto p = HysteresisPolicy(std::make_unique<SectionPolicy>(kS3, 0.5), 0);
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 20);
}

TEST(HysteresisPolicy, HoldAtSameRateDoesNotCountAsDecrease) {
  // The inner policy asking for the *current* rate must reset the pending
  // decrease counter, not advance it.
  auto p = make(2);
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 60);   // pending = 1
  EXPECT_EQ(p.decide(sim::Time{}, 50.0, 60), 60);  // inner wants 60: reset
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 60);   // pending = 1 again
  EXPECT_EQ(p.decide(sim::Time{}, 5.0, 60), 20);
}

TEST(HysteresisPolicy, ThresholdExactDecreasePathIsConfirmedToo) {
  // Content parked exactly on a threshold: the inner decision is stable
  // (upper section), so hysteresis converges to it and stays.
  auto p = make(2);
  EXPECT_EQ(p.decide(sim::Time{}, 22.0, 60), 60);
  EXPECT_EQ(p.decide(sim::Time{}, 22.0, 60), 30);
  EXPECT_EQ(p.decide(sim::Time{}, 22.0, 30), 30);
}

}  // namespace
}  // namespace ccdem::core
