#include "device/simulated_device.h"

#include <gtest/gtest.h>

#include "apps/app_profiles.h"
#include "harness/experiment.h"

namespace ccdem::device {
namespace {

harness::ExperimentConfig experiment(const char* app, ControlMode mode,
                                     std::uint64_t seed) {
  harness::ExperimentConfig c;
  c.app = apps::app_by_name(app);
  c.duration = sim::seconds(5);
  c.seed = seed;
  c.mode = mode;
  return c;
}

TEST(SimulatedDevice, ControllerFollowsMode) {
  SimulatedDevice dev;

  DeviceConfig dc;
  dc.mode = ControlMode::kBaseline60;
  dev.configure(dc);
  dev.install_app(apps::app_by_name("Facebook"));
  dev.start_control();
  EXPECT_EQ(dev.dpm(), nullptr);
  EXPECT_EQ(dev.governor(), nullptr);

  dc.mode = ControlMode::kSectionWithBoost;
  dev.configure(dc);
  dev.install_app(apps::app_by_name("Facebook"));
  dev.start_control();
  ASSERT_NE(dev.dpm(), nullptr);
  EXPECT_EQ(dev.governor(), nullptr);

  dc.mode = ControlMode::kE3FrameRate;
  dev.configure(dc);
  dev.install_app(apps::app_by_name("Facebook"));
  dev.start_control();
  EXPECT_EQ(dev.dpm(), nullptr);
  EXPECT_NE(dev.governor(), nullptr);
}

TEST(SimulatedDevice, MeterAttachesLazilyOnFirstRun) {
  SimulatedDevice dev;
  dev.configure(DeviceConfig{});
  dev.install_app(apps::app_by_name("Facebook"));
  dev.start_control();
  EXPECT_EQ(dev.meter(), nullptr);
  dev.run_for(sim::seconds(1));
  ASSERT_NE(dev.meter(), nullptr);
  EXPECT_GT(dev.meter()->mean_power_mw(), 0.0);
}

TEST(SimulatedDevice, PanelStartsAtModeRate) {
  SimulatedDevice dev;
  DeviceConfig dc;
  dc.mode = ControlMode::kBaseline60;
  dc.baseline_hz = 40;
  dev.configure(dc);
  EXPECT_EQ(dev.panel().refresh_hz(), 40);

  dc.mode = ControlMode::kSection;
  dev.configure(dc);
  EXPECT_EQ(dev.panel().refresh_hz(), dc.rates.max_hz());
}

TEST(SimulatedDevice, FocusAppSwitchesForeground) {
  SimulatedDevice dev;
  dev.configure(DeviceConfig{});
  dev.start_control();
  dev.install_app(apps::app_by_name("Facebook"), 100, /*foreground=*/false);
  dev.install_app(apps::app_by_name("Naver"), 101, /*foreground=*/false);
  EXPECT_FALSE(dev.app(0).foreground());
  EXPECT_FALSE(dev.app(1).foreground());

  dev.focus_app(0);
  EXPECT_TRUE(dev.app(0).foreground());
  EXPECT_FALSE(dev.app(1).foreground());

  dev.focus_app(1);
  EXPECT_FALSE(dev.app(0).foreground());
  EXPECT_TRUE(dev.app(1).foreground());
}

// The reuse contract: a reconfigured device replays a config bit-identically
// -- pooled storage carries over, but its contents never do.
TEST(SimulatedDevice, ReconfiguredDeviceReplaysIdentically) {
  const harness::ExperimentConfig config =
      experiment("Jelly Splash", ControlMode::kSectionWithBoost, 11);

  SimulatedDevice dev(/*use_buffer_pool=*/true);
  const harness::ExperimentResult first =
      harness::run_experiment_on(dev, config);
  const harness::ExperimentResult second =
      harness::run_experiment_on(dev, config);

  EXPECT_DOUBLE_EQ(first.mean_power_mw, second.mean_power_mw);
  EXPECT_DOUBLE_EQ(first.mean_refresh_hz, second.mean_refresh_hz);
  EXPECT_EQ(first.frames_composed, second.frames_composed);
  EXPECT_EQ(first.content_frames, second.content_frames);
  EXPECT_EQ(first.frames_posted, second.frames_posted);
  EXPECT_EQ(first.touch_events, second.touch_events);
  EXPECT_EQ(first.rate_switches, second.rate_switches);
}

TEST(SimulatedDevice, PooledRunsMatchFreshDevice) {
  const harness::ExperimentConfig config =
      experiment("Facebook", ControlMode::kSection, 3);

  SimulatedDevice pooled(/*use_buffer_pool=*/true);
  // Warm the pool with a different workload first, so the measured run
  // really executes on recycled storage.
  (void)harness::run_experiment_on(
      pooled, experiment("Cookie Run", ControlMode::kBaseline60, 9));
  const harness::ExperimentResult reused =
      harness::run_experiment_on(pooled, config);
  const harness::ExperimentResult fresh = harness::run_experiment(config);

  EXPECT_DOUBLE_EQ(reused.mean_power_mw, fresh.mean_power_mw);
  EXPECT_DOUBLE_EQ(reused.mean_refresh_hz, fresh.mean_refresh_hz);
  EXPECT_EQ(reused.frames_composed, fresh.frames_composed);
  EXPECT_EQ(reused.content_frames, fresh.content_frames);
  EXPECT_EQ(reused.frames_posted, fresh.frames_posted);
  EXPECT_EQ(reused.meter_error_rate, fresh.meter_error_rate);
}

TEST(SimulatedDevice, BufferPoolRecyclesAcrossConfigures) {
  SimulatedDevice dev(/*use_buffer_pool=*/true);
  ASSERT_NE(dev.buffer_pool(), nullptr);

  (void)harness::run_experiment_on(
      dev, experiment("Facebook", ControlMode::kSectionWithBoost, 1));
  const std::uint64_t after_first = dev.buffer_pool()->reuses();

  (void)harness::run_experiment_on(
      dev, experiment("Facebook", ControlMode::kSectionWithBoost, 2));
  // The second assembly's swapchain, surface and meter snapshots all come
  // out of the pool the first run released into.
  EXPECT_GT(dev.buffer_pool()->reuses(), after_first);
  EXPECT_GT(dev.buffer_pool()->reuses(), 0u);
}

TEST(SimulatedDevice, NoPoolByDefault) {
  SimulatedDevice dev;
  EXPECT_EQ(dev.buffer_pool(), nullptr);
}

}  // namespace
}  // namespace ccdem::device
