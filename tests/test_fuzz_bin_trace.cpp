// Randomized round-trip test for the ccdem-bin-v1 record stream, mirroring
// test_fuzz_trace_export for the binary hot path: arbitrary record streams
// must encode -> decode -> re-encode byte-identically, truncations must be
// rejected at every cut point, and mutated streams must be rejected with a
// bounded error (an offset-bearing message, never a crash or a giant
// allocation).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/bin_format.h"
#include "sim/rng.h"

namespace ccdem::campaign {
namespace {

std::string random_text(sim::Rng& rng, int max_len) {
  std::string s;
  const int len = static_cast<int>(rng.uniform_int(0, max_len));
  for (int i = 0; i < len; ++i) {
    // Any byte: the format length-prefixes strings, nothing is reserved.
    s += static_cast<char>(rng.uniform_int(0, 255));
  }
  return s;
}

double random_double(sim::Rng& rng) {
  switch (rng.uniform_int(0, 4)) {
    case 0: return 0.0;
    case 1: return rng.uniform(-1e6, 1e6);
    case 2: return rng.uniform(-1.0, 1.0) * 1e-300;
    case 3: return rng.uniform(-1.0, 1.0) * 1e300;
    // NaN payloads must survive bit-exactly, too.
    default: return std::bit_cast<double>(rng.next_u64());
  }
}

Record random_record(sim::Rng& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0: {
      ResultRecord r;
      r.scenario_index = rng.next_u64();
      r.app = random_text(rng, 24);
      r.mode = random_text(rng, 24);
      r.seed = rng.next_u64();
      r.duration_ms = static_cast<std::int64_t>(rng.next_u64());
      r.mean_power_mw = random_double(rng);
      r.mean_refresh_hz = random_double(rng);
      r.meter_error_rate = random_double(rng);
      r.response_mean_ms = random_double(rng);
      r.frames_composed = rng.next_u64();
      r.content_frames = rng.next_u64();
      r.frames_posted = rng.next_u64();
      r.rate_switches = rng.next_u64();
      r.final_frame_hash = rng.next_u64();
      r.has_ab = rng.chance(0.5);
      r.saved_power_pct = random_double(rng);
      r.quality_pct = random_double(rng);
      const int rungs = static_cast<int>(rng.uniform_int(0, 6));
      for (int i = 0; i < rungs; ++i) {
        r.residency.push_back(RungResidency{
            static_cast<int>(rng.uniform_int(0, 240)), random_double(rng)});
      }
      return Record{r};
    }
    case 1: {
      CountersRecord c;
      const int n = static_cast<int>(rng.uniform_int(0, 12));
      for (int i = 0; i < n; ++i) {
        c.counters.emplace_back(random_text(rng, 32), rng.next_u64());
      }
      return Record{c};
    }
    case 2: {
      SpansRecord sp;
      const int n = static_cast<int>(rng.uniform_int(0, 20));
      for (int i = 0; i < n; ++i) {
        obs::Span s;
        s.begin = sim::Time{static_cast<std::int64_t>(rng.next_u64())};
        s.dur = sim::Duration{static_cast<std::int64_t>(rng.next_u64())};
        s.frame = rng.next_u64();
        s.arg = static_cast<std::int64_t>(rng.next_u64());
        s.phase =
            static_cast<obs::Phase>(rng.uniform_int(0, obs::kPhaseCount - 1));
        sp.spans.push_back(s);
      }
      return Record{sp};
    }
    default:
      return Record{AggregateRecord{random_text(rng, 200)}};
  }
}

std::vector<Record> random_stream(sim::Rng& rng) {
  std::vector<Record> records;
  const int n = static_cast<int>(rng.uniform_int(0, 16));
  records.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) records.push_back(random_record(rng));
  return records;
}

TEST(BinTraceFuzz, ArbitraryStreamsRoundTripByteIdentically) {
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    sim::Rng rng(seed);
    const std::vector<Record> records = random_stream(rng);
    const std::string bytes = encode_all(records);

    std::string error;
    const auto decoded = decode_all(bytes, &error);
    ASSERT_TRUE(decoded.has_value()) << "seed=" << seed << ": " << error;
    ASSERT_EQ(decoded->size(), records.size() + 1) << "seed=" << seed;
    for (std::size_t i = 0; i < records.size(); ++i) {
      // NaN != NaN under operator==, so compare the canonical encodings.
      EXPECT_EQ(encode_record((*decoded)[i]), encode_record(records[i]))
          << "seed=" << seed << " record=" << i;
    }
    // Re-encoding the decoded stream reproduces the input byte-for-byte
    // (the end marker is derived state and regenerates identically).
    EXPECT_EQ(encode_all(*decoded), bytes) << "seed=" << seed;
  }
}

TEST(BinTraceFuzz, TruncationsAreAlwaysRejected) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    sim::Rng rng(seed);
    const std::string bytes = encode_all(random_stream(rng));
    // Every proper prefix must fail with a non-empty, offset-bounded error.
    const std::size_t step = std::max<std::size_t>(1, bytes.size() / 64);
    for (std::size_t len = 0; len < bytes.size(); len += step) {
      std::string error;
      const auto decoded = decode_all(bytes.substr(0, len), &error);
      EXPECT_FALSE(decoded.has_value())
          << "seed=" << seed << " prefix=" << len;
      EXPECT_FALSE(error.empty()) << "seed=" << seed << " prefix=" << len;
    }
  }
}

TEST(BinTraceFuzz, MutatedStreamsAreRejectedWithBoundedError) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    sim::Rng rng(seed);
    std::vector<Record> records = random_stream(rng);
    if (records.empty()) records.push_back(random_record(rng));
    std::string bytes = encode_all(records);

    const int flips = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < flips; ++i) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
      const auto bit = static_cast<unsigned>(rng.uniform_int(0, 7));
      bytes[pos] = static_cast<char>(static_cast<unsigned char>(bytes[pos]) ^
                                     (1u << bit));
    }

    std::string error = "unset";
    const auto decoded = decode_all(bytes, &error);
    // The FNV fold over every record byte means any in-place flip is
    // caught -- structurally, or at the end-marker checksum.
    EXPECT_FALSE(decoded.has_value()) << "seed=" << seed;
    EXPECT_NE(error, "unset") << "seed=" << seed;
    EXPECT_FALSE(error.empty()) << "seed=" << seed;
  }
}

TEST(BinTraceFuzz, HostileLengthPrefixesCannotForceHugeAllocations) {
  // A record header claiming a payload over the cap must be rejected before
  // any allocation of that size.
  std::string bytes;
  bytes.append(kBinMagic, sizeof kBinMagic);
  PayloadWriter w(bytes);
  w.put_u32(kBinVersion);
  w.put_u32(0);
  bytes.push_back(static_cast<char>(RecordType::kResult));
  w.put_u32(kMaxPayloadBytes + 1);
  std::string error;
  EXPECT_FALSE(decode_all(bytes, &error).has_value());
  EXPECT_NE(error.find("exceeds cap"), std::string::npos) << error;
}

}  // namespace
}  // namespace ccdem::campaign
