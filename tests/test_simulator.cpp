#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace ccdem::sim {
namespace {

TEST(Simulator, NowStartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), Time{});
}

TEST(Simulator, RunUntilAdvancesNowToHorizon) {
  Simulator s;
  s.run_until(Time{1'000});
  EXPECT_EQ(s.now(), Time{1'000});
}

TEST(Simulator, AtSchedulesAbsolute) {
  Simulator s;
  Time seen{};
  s.at(Time{500}, [&](Time t) { seen = t; });
  s.run_until(Time{1'000});
  EXPECT_EQ(seen, Time{500});
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator s;
  s.run_until(Time{100});
  Time seen{};
  s.after(Duration{50}, [&](Time t) { seen = t; });
  s.run_until(Time{1'000});
  EXPECT_EQ(seen, Time{150});
}

TEST(Simulator, EventsBeyondHorizonDoNotRun) {
  Simulator s;
  bool ran = false;
  s.at(Time{2'000}, [&](Time) { ran = true; });
  s.run_until(Time{1'000});
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run_until(Time{3'000});
  EXPECT_TRUE(ran);
}

TEST(Simulator, EventExactlyAtHorizonRuns) {
  Simulator s;
  bool ran = false;
  s.at(Time{1'000}, [&](Time) { ran = true; });
  s.run_until(Time{1'000});
  EXPECT_TRUE(ran);
}

TEST(Simulator, EveryRepeatsUntilCallbackStops) {
  Simulator s;
  std::vector<Tick> fires;
  s.every(Duration{100}, [&](Time t) {
    fires.push_back(t.ticks);
    return fires.size() < 3;
  });
  s.run_until(Time{10'000});
  EXPECT_EQ(fires, (std::vector<Tick>{100, 200, 300}));
}

TEST(Simulator, EveryRunsForever) {
  Simulator s;
  int count = 0;
  s.every(Duration{100}, [&](Time) {
    ++count;
    return true;
  });
  s.run_until(Time{1'000});
  EXPECT_EQ(count, 10);
}

TEST(Simulator, CancelStopsScheduledEvent) {
  Simulator s;
  bool ran = false;
  const EventHandle h = s.at(Time{100}, [&](Time) { ran = true; });
  EXPECT_TRUE(s.cancel(h));
  s.run_until(Time{1'000});
  EXPECT_FALSE(ran);
}

TEST(Simulator, RunForIsRelative) {
  Simulator s;
  s.run_until(Time{250});
  s.run_for(Duration{250});
  EXPECT_EQ(s.now(), Time{500});
}

TEST(Simulator, NowTracksLastEventDuringRun) {
  Simulator s;
  Time observed{};
  s.at(Time{100}, [&](Time) { observed = s.now(); });
  s.run_until(Time{1'000});
  EXPECT_EQ(observed, Time{100});
}

}  // namespace
}  // namespace ccdem::sim
