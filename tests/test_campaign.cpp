// Campaign engine tests: spec/manifest round-trips, shard math, the worker
// contract (streamed shard files that verify against their embedded
// aggregates), and the coordinator's crash story -- a worker killed
// mid-shard costs only its shard, a resumed campaign's merged aggregates
// are byte-identical to an uninterrupted run's, and a scenario that kills
// its process wherever it runs is quarantined with a .repro.
#include "campaign/campaign.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <variant>

#include "campaign/aggregates.h"
#include "campaign/bin_format.h"
#include "campaign/convert.h"
#include "campaign/coordinator.h"
#include "campaign/worker.h"
#include "check/scenario.h"
#include "test_tmpdir.h"

namespace ccdem::campaign {
namespace {

CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.apps = {"Facebook"};
  spec.modes = {"section+boost", "naive"};
  spec.grids = {"9k"};
  spec.fault_scales = {0.0};
  spec.seeds = {1, 2, 3};
  spec.duration_ms = 400;
  spec.shards = 3;
  return spec;
}

std::string read_file(const std::filesystem::path& p) {
  const auto text = load_file(p);
  return text ? *text : std::string();
}

// --- spec ----------------------------------------------------------------

TEST(CampaignSpec, RoundTripsThroughText) {
  CampaignSpec spec = tiny_spec();
  spec.fault_scales = {0.0, 0.1, 1.5};
  spec.ab = true;
  const auto parsed = CampaignSpec::parse(spec.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, spec);
  EXPECT_EQ(parsed->to_string(), spec.to_string());
}

TEST(CampaignSpec, ParseIsStrict) {
  const CampaignSpec spec = tiny_spec();
  std::string error;
  EXPECT_FALSE(CampaignSpec::parse(spec.to_string() + "bogus = 1\n", &error)
                   .has_value());
  EXPECT_NE(error.find("unknown key"), std::string::npos);
  EXPECT_FALSE(CampaignSpec::parse(spec.to_string() + "shards = 2\n", &error)
                   .has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
  EXPECT_FALSE(CampaignSpec::parse("apps = Facebook\n", &error).has_value());
  EXPECT_NE(error.find("schema"), std::string::npos);
}

TEST(CampaignSpec, ListElementsAreTrimmedButKeepInteriorSpaces) {
  const std::string text =
      "schema = ccdem-campaign-v1\n"
      "apps = Facebook, Jelly Splash\n"
      "modes = section+boost\n"
      "grids = 9k\n"
      "fault_scales = 0, 1.5\n"
      "seeds = 1, 2\n"
      "duration_ms = 400\n"
      "shards = 2\n";
  std::string error;
  const auto spec = CampaignSpec::parse(text, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->apps,
            (std::vector<std::string>{"Facebook", "Jelly Splash"}));
  EXPECT_EQ(spec->fault_scales, (std::vector<double>{0.0, 1.5}));
  EXPECT_EQ(spec->seeds, (std::vector<std::uint64_t>{1, 2}));
}

TEST(CampaignSpec, ValidateRejectsBadAxes) {
  CampaignSpec spec = tiny_spec();
  spec.apps = {"NoSuchApp"};
  EXPECT_TRUE(spec.validate().has_value());
  spec = tiny_spec();
  spec.modes = {"pipeline"};
  EXPECT_TRUE(spec.validate().has_value());
  spec = tiny_spec();
  spec.modes = {"baseline"};
  spec.ab = true;
  EXPECT_TRUE(spec.validate().has_value());
  spec = tiny_spec();
  spec.grids = {"1k"};
  EXPECT_TRUE(spec.validate().has_value());
  spec = tiny_spec();
  spec.fault_scales = {-1.0};
  EXPECT_TRUE(spec.validate().has_value());
  spec = tiny_spec();
  spec.seeds.clear();
  EXPECT_TRUE(spec.validate().has_value());
  EXPECT_FALSE(tiny_spec().validate().has_value());
}

TEST(CampaignSpec, ScenarioIndexingIsSeedFastestMixedRadix) {
  CampaignSpec spec = tiny_spec();  // 1 app x 2 modes x 1 grid x 1 scale x 3 seeds
  ASSERT_EQ(spec.size(), 6u);
  EXPECT_EQ(spec.scenario_at(0).seed, 1u);
  EXPECT_EQ(spec.scenario_at(1).seed, 2u);
  EXPECT_EQ(spec.scenario_at(2).seed, 3u);
  EXPECT_EQ(spec.scenario_at(0).mode, device::ControlMode::kSectionWithBoost);
  EXPECT_EQ(spec.scenario_at(3).mode, device::ControlMode::kNaive);
  EXPECT_EQ(spec.scenario_at(3).seed, 1u);
  EXPECT_EQ(spec.scenario_at(5).duration_ms, 400);
}

TEST(CampaignSpec, PressureAxisDefaultKeepsCanonicalTextStable) {
  // The single-0 default must not appear in the canonical text: old specs
  // keep their fingerprints, old campaign directories stay resumable.
  const CampaignSpec spec = tiny_spec();
  EXPECT_EQ(spec.to_string().find("pressure_scales"), std::string::npos);
  const auto parsed = CampaignSpec::parse(spec.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->pressure_scales, (std::vector<double>{0.0}));
  EXPECT_EQ(parsed->fingerprint(), spec.fingerprint());
}

TEST(CampaignSpec, PressureAxisRoundTripsAndExpandsTheMatrix) {
  CampaignSpec spec = tiny_spec();  // 6 scenarios without the pressure axis
  spec.pressure_scales = {0.0, 2.0};
  EXPECT_EQ(spec.size(), 12u);
  EXPECT_FALSE(spec.validate().has_value());
  EXPECT_NE(spec.to_string().find("pressure_scales = 0,2"),
            std::string::npos);
  const auto parsed = CampaignSpec::parse(spec.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, spec);
  // Pressure varies after fault-scale (both trivial here), before grid: the
  // two halves of each seed-block differ only in pressure_scale.
  EXPECT_DOUBLE_EQ(spec.scenario_at(0).pressure_scale, 0.0);
  EXPECT_DOUBLE_EQ(spec.scenario_at(3).pressure_scale, 2.0);
  EXPECT_EQ(spec.scenario_at(0).seed, spec.scenario_at(3).seed);
  EXPECT_EQ(spec.scenario_at(0).mode, spec.scenario_at(3).mode);

  spec.pressure_scales = {-0.5};
  EXPECT_TRUE(spec.validate().has_value());
  spec.pressure_scales = {};
  EXPECT_TRUE(spec.validate().has_value());
}

TEST(CampaignSpec, ShardRangesPartitionTheMatrix) {
  CampaignSpec spec = tiny_spec();
  spec.seeds = {1, 2, 3, 4, 5, 6, 7};  // 14 scenarios over 3 shards
  std::uint64_t covered = 0;
  std::uint64_t prev_end = 0;
  for (int s = 0; s < spec.shards; ++s) {
    const ShardRange r = shard_range(spec, s);
    EXPECT_EQ(r.begin, prev_end);
    prev_end = r.end;
    covered += r.size();
  }
  EXPECT_EQ(prev_end, spec.size());
  EXPECT_EQ(covered, spec.size());
}

TEST(CampaignSpec, FingerprintTracksTheMatrix) {
  CampaignSpec a = tiny_spec();
  CampaignSpec b = tiny_spec();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.seeds.push_back(99);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// --- manifest and sidecars -----------------------------------------------

TEST(Manifest, RoundTripsThroughText) {
  Manifest m = Manifest::fresh(tiny_spec());
  m.shard_rows[1].done = true;
  m.shard_rows[1].file = shard_file_name(1);
  m.shard_rows[1].results = 2;
  m.shard_rows[1].bytes = 321;
  m.shard_rows[1].attempts = 2;
  m.shard_rows[0].attempts = 1;
  m.quarantined.push_back(Manifest::Quarantine{4, "crashed (signal 6)"});

  std::string error;
  const auto parsed = Manifest::parse(m.to_string(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, m);
  EXPECT_FALSE(m.all_done());
  EXPECT_TRUE(m.is_quarantined(4));
  EXPECT_FALSE(m.is_quarantined(3));
  const auto in_range = m.quarantined_in(ShardRange{4, 6});
  ASSERT_EQ(in_range.size(), 1u);
  EXPECT_EQ(in_range[0], 4u);
}

TEST(Manifest, EmbeddedSpecSurvives) {
  const CampaignSpec spec = tiny_spec();
  const Manifest m = Manifest::fresh(spec);
  const auto parsed = Manifest::parse(m.to_string());
  ASSERT_TRUE(parsed.has_value());
  const auto spec_back = CampaignSpec::parse(parsed->spec_text);
  ASSERT_TRUE(spec_back.has_value());
  EXPECT_EQ(*spec_back, spec);
  EXPECT_EQ(spec_back->fingerprint(), parsed->fingerprint);
}

TEST(Sidecars, ProgressAndFailRoundTrip) {
  const std::vector<std::uint64_t> inflight = {5, 6, 7};
  const auto parsed = parse_progress(progress_to_string(2, inflight));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, inflight);
  EXPECT_TRUE(parse_progress(progress_to_string(0, {})) ->empty());
  EXPECT_FALSE(parse_progress("junk\n").has_value());

  FailSidecar f{17, "oracle: determinism diverged"};
  const auto fback = parse_fail(fail_to_string(f));
  ASSERT_TRUE(fback.has_value());
  EXPECT_EQ(fback->index, 17u);
  EXPECT_EQ(fback->reason, f.reason);
}

TEST(Files, AtomicSaveAndLoad) {
  testing::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const auto path = tmp.file("state.txt");
  ASSERT_TRUE(save_file_atomic(path, "hello\n"));
  EXPECT_EQ(read_file(path), "hello\n");
  ASSERT_TRUE(save_file_atomic(path, "world\n"));  // overwrite via rename
  EXPECT_EQ(read_file(path), "world\n");
  EXPECT_FALSE(load_file(tmp.file("missing")).has_value());
}

TEST(Files, FormatDoubleRoundTrips) {
  for (const double v : {0.0, 0.1, 1.0 / 3.0, -2.5e-10, 6.02214076e23}) {
    EXPECT_EQ(std::strtod(format_double(v).c_str(), nullptr), v);
  }
  EXPECT_EQ(format_double(0.5), "0.5");
}

// --- residency ------------------------------------------------------------

TEST(Residency, StepHoldOverTheRunDuration) {
  sim::Trace t("refresh_hz");
  t.record(sim::Time{0}, 60.0);
  t.record(sim::at_seconds(0.25), 20.0);
  t.record(sim::at_seconds(0.75), 40.0);
  const auto res = compute_residency(t, sim::milliseconds(1000));
  ASSERT_EQ(res.size(), 3u);  // ascending hz
  EXPECT_EQ(res[0].hz, 20);
  EXPECT_DOUBLE_EQ(res[0].seconds, 0.5);
  EXPECT_EQ(res[1].hz, 40);
  EXPECT_DOUBLE_EQ(res[1].seconds, 0.25);
  EXPECT_EQ(res[2].hz, 60);
  EXPECT_DOUBLE_EQ(res[2].seconds, 0.25);
}

TEST(Residency, FirstPointValueCoversTheStart) {
  sim::Trace t("refresh_hz");
  t.record(sim::at_seconds(0.5), 30.0);  // nothing recorded before 0.5 s
  const auto res = compute_residency(t, sim::milliseconds(1000));
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].hz, 30);
  EXPECT_DOUBLE_EQ(res[0].seconds, 1.0);
  EXPECT_TRUE(compute_residency(sim::Trace("x"), sim::milliseconds(100)).empty());
}

// --- worker ---------------------------------------------------------------

TEST(Worker, WritesAVerifiableShardFile) {
  testing::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const CampaignSpec spec = tiny_spec();
  WorkerOptions w;
  w.threads = 2;
  const ShardOutcome out = run_shard(spec, 0, tmp.path(), w);
  ASSERT_TRUE(out.ok) << out.error;
  const ShardRange range = shard_range(spec, 0);
  EXPECT_EQ(out.results, range.size());

  const std::string bytes = read_file(tmp.file(shard_file_name(0)));
  EXPECT_EQ(bytes.size(), out.bytes);
  std::string error;
  const auto records = decode_all(bytes, &error);
  ASSERT_TRUE(records.has_value()) << error;

  // Recompute the aggregate from the records; it must equal the embedded one.
  Aggregates recomputed;
  std::optional<Aggregates> embedded;
  for (const Record& r : *records) {
    if (const auto* res = std::get_if<ResultRecord>(&r)) {
      recomputed.add(*res);
      EXPECT_GE(res->scenario_index, range.begin);
      EXPECT_LT(res->scenario_index, range.end);
      EXPECT_GT(res->mean_power_mw, 0.0);
      EXPECT_FALSE(res->residency.empty());
    } else if (const auto* c = std::get_if<CountersRecord>(&r)) {
      recomputed.add_counters(*c);
      EXPECT_FALSE(c->counters.empty());
    } else if (const auto* a = std::get_if<AggregateRecord>(&r)) {
      embedded = Aggregates::decode(a->payload);
    }
  }
  ASSERT_TRUE(embedded.has_value());
  EXPECT_EQ(*embedded, recomputed);
  // The progress sidecar is cleaned up on success.
  EXPECT_FALSE(std::filesystem::exists(tmp.file(shard_progress_name(0))));
}

TEST(Worker, SkipsQuarantinedIndices) {
  testing::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const CampaignSpec spec = tiny_spec();
  const ShardRange range = shard_range(spec, 0);
  ASSERT_GE(range.size(), 2u);
  WorkerOptions w;
  w.threads = 1;
  w.skip = {range.begin};
  const ShardOutcome out = run_shard(spec, 0, tmp.path(), w);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.results, range.size() - 1);
}

TEST(Worker, SigtermDrainsGracefullyAndLeavesAResumableShard) {
  testing::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const CampaignSpec spec = tiny_spec();
  const ShardRange range = shard_range(spec, 0);
  ASSERT_GE(range.size(), 2u);

  // SIGTERM arrives while the first scenario is in flight (run_shard runs
  // in-process here, so the raise hits its own ScopedSigterm handler).
  WorkerOptions w;
  w.threads = 1;
  w.chunk = 1;
  w.run_hook = [&](std::uint64_t index) {
    if (index == range.begin) std::raise(SIGTERM);
  };
  const ShardOutcome out = run_shard(spec, 0, tmp.path(), w);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(out.interrupted);
  EXPECT_EQ(out.results, 1u);  // the in-flight record was finished, not cut

  // The drained file is complete-decodable (counters, aggregate, checksummed
  // end marker) but was NOT renamed -- the shard is not done.
  EXPECT_FALSE(std::filesystem::exists(tmp.file(shard_file_name(0))));
  const std::string bytes =
      read_file(tmp.file(shard_file_name(0) + std::string(".tmp")));
  EXPECT_EQ(bytes.size(), out.bytes);
  std::string error;
  ASSERT_TRUE(decode_all(bytes, &error).has_value()) << error;

  // The progress sidecar names exactly the indices that never ran.
  const auto remaining =
      parse_progress(read_file(tmp.file(shard_progress_name(0))));
  ASSERT_TRUE(remaining.has_value());
  std::vector<std::uint64_t> expected;
  for (std::uint64_t i = range.begin + 1; i < range.end; ++i) {
    expected.push_back(i);
  }
  EXPECT_EQ(*remaining, expected);

  // A relaunch starts clean (the handler and flag were restored on return)
  // and completes the shard normally.
  const ShardOutcome again = run_shard(spec, 0, tmp.path(), {});
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_FALSE(again.interrupted);
  EXPECT_EQ(again.results, range.size());
  EXPECT_TRUE(std::filesystem::exists(tmp.file(shard_file_name(0))));
}

// --- coordinator ----------------------------------------------------------

TEST(Campaign, RunsToCompletionAndWritesArtifacts) {
  testing::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const CampaignSpec spec = tiny_spec();
  CampaignOptions opts;
  opts.workers = 2;
  opts.worker.threads = 1;
  const CampaignResult result = run_campaign(spec, tmp.path(), opts);
  ASSERT_TRUE(result.complete) << result.error;
  EXPECT_EQ(result.runs, spec.size());
  EXPECT_TRUE(result.quarantined.empty());
  EXPECT_EQ(result.aggregates.runs, spec.size());
  EXPECT_GT(result.aggregates.power.mean(), 0.0);
#if defined(__linux__)
  EXPECT_GT(result.peak_rss_kb, 0);
#endif

  // manifest: all shards done, counts filled in.
  const auto manifest = Manifest::parse(read_file(tmp.file(manifest_file_name())));
  ASSERT_TRUE(manifest.has_value());
  EXPECT_TRUE(manifest->all_done());

  // aggregates.bin: one aggregate record equal to the returned aggregates.
  const auto records = decode_all(read_file(tmp.file(aggregates_file_name())));
  ASSERT_TRUE(records.has_value());
  ASSERT_EQ(records->size(), 2u);
  const auto decoded =
      Aggregates::decode(std::get<AggregateRecord>((*records)[0]).payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, result.aggregates);

  const std::string summary = read_file(tmp.file(summary_file_name()));
  EXPECT_NE(summary.find("ccdem-campaign-summary-v1"), std::string::npos);

  // The results CSV converter reads the shard files it left behind.
  std::ostringstream csv;
  EXPECT_FALSE(bin_to_results_csv(tmp.file(shard_file_name(0)), csv).has_value());
  EXPECT_NE(csv.str().find("scenario_index,app,mode"), std::string::npos);
}

TEST(Campaign, KilledWorkerResumesByteIdentically) {
  testing::TempDir killed_dir, clean_dir;
  ASSERT_TRUE(killed_dir.ok() && clean_dir.ok());
  const CampaignSpec spec = tiny_spec();

  // Arm 1: kill shard 1's worker after its first result, no retries -- the
  // campaign must come back incomplete with shard 1 pending.
  CampaignOptions opts;
  opts.workers = 1;
  opts.worker.threads = 1;
  opts.worker.chunk = 1;
  opts.worker.kill_after_runs = 1;
  opts.kill_shard = 1;
  opts.max_shard_retries = 0;
  opts.isolate_crashes = false;
  const CampaignResult interrupted = run_campaign(spec, killed_dir.path(), opts);
  EXPECT_FALSE(interrupted.complete);
  EXPECT_NE(interrupted.error.find("resume"), std::string::npos);
  EXPECT_FALSE(
      std::filesystem::exists(killed_dir.file(aggregates_file_name())));

  // Arm 2: resume from the manifest; only shard 1 re-runs.
  CampaignOptions resume_opts;
  resume_opts.workers = 1;
  resume_opts.worker.threads = 1;
  resume_opts.resume = true;
  const CampaignResult resumed =
      run_campaign(spec, killed_dir.path(), resume_opts);
  ASSERT_TRUE(resumed.complete) << resumed.error;
  EXPECT_EQ(resumed.runs, spec.size());

  // Reference: the same campaign uninterrupted.
  CampaignOptions clean_opts;
  clean_opts.workers = 2;
  clean_opts.worker.threads = 1;
  const CampaignResult clean = run_campaign(spec, clean_dir.path(), clean_opts);
  ASSERT_TRUE(clean.complete) << clean.error;

  EXPECT_EQ(resumed.aggregates, clean.aggregates);
  EXPECT_EQ(read_file(killed_dir.file(aggregates_file_name())),
            read_file(clean_dir.file(aggregates_file_name())));
  EXPECT_EQ(read_file(killed_dir.file(summary_file_name())),
            read_file(clean_dir.file(summary_file_name())));
}

TEST(Campaign, ResumeRefusesADifferentMatrix) {
  testing::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const CampaignSpec spec = tiny_spec();
  ASSERT_TRUE(save_file_atomic(tmp.file(manifest_file_name()),
                               Manifest::fresh(spec).to_string()));
  CampaignSpec other = spec;
  other.seeds = {42};
  CampaignOptions opts;
  opts.resume = true;
  const CampaignResult result = run_campaign(other, tmp.path(), opts);
  EXPECT_FALSE(result.complete);
  EXPECT_NE(result.error.find("fingerprint"), std::string::npos);
}

TEST(Campaign, CrashingScenarioIsQuarantinedWithARepro) {
  testing::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  CampaignSpec spec = tiny_spec();
  spec.seeds = {1, 2};  // 4 scenarios over 2 shards
  spec.shards = 2;
  const std::uint64_t guilty = 2;

  CampaignOptions opts;
  opts.workers = 1;
  opts.worker.threads = 1;
  opts.worker.chunk = 1;
  // Simulates a scenario that kills its process wherever it executes --
  // the worker, the isolation child, the minimizer's children.
  opts.worker.run_hook = [guilty](std::uint64_t index) {
    if (index == guilty) std::raise(SIGKILL);
  };
  opts.max_shard_retries = 2;
  opts.minimize = true;
  const CampaignResult result = run_campaign(spec, tmp.path(), opts);
  ASSERT_TRUE(result.complete) << result.error;
  EXPECT_EQ(result.runs, spec.size() - 1);
  ASSERT_EQ(result.quarantined.size(), 1u);
  EXPECT_EQ(result.quarantined[0], guilty);

  // The quarantine landed in the manifest and produced a parseable repro.
  const auto manifest = Manifest::parse(read_file(tmp.file(manifest_file_name())));
  ASSERT_TRUE(manifest.has_value());
  EXPECT_TRUE(manifest->is_quarantined(guilty));
  ASSERT_EQ(result.repro_files.size(), 1u);
  const std::string repro = read_file(result.repro_files[0]);
  EXPECT_NE(repro.find("# failure:"), std::string::npos);
  std::string error;
  EXPECT_TRUE(check::parse_scenario(repro, &error).has_value()) << error;
}

}  // namespace
}  // namespace ccdem::campaign
