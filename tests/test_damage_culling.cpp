// Property tests for the meter's damage-scoped classification: culling may
// only change how much work the host does, never a verdict.
//
// The compositor's contract (FrameInfo::damage covers every pixel that
// differs from the previous frame) makes grid points outside the damage
// provably redundant to compare.  These tests drive randomized scenes and
// damage patterns through paired meters -- one culled, one running the full
// pre-culling scan -- across both retention modes and the paper's grid
// sweep, and require bit-identical classifications, misclassification
// counts, and a work ledger that accounts for every grid point.
#include <gtest/gtest.h>

#include "core/content_rate_meter.h"
#include "gfx/region.h"
#include "obs/obs.h"
#include "sim/rng.h"

namespace ccdem::core {
namespace {

// Large enough for the 144x256 grid; a quarter of the paper's 720x1280
// panel keeps the full-frame mode's copies cheap.
constexpr gfx::Size kScreen{360, 640};

gfx::Rect random_rect_on_screen(sim::Rng& rng) {
  const int w = static_cast<int>(rng.uniform_int(1, 120));
  const int h = static_cast<int>(rng.uniform_int(1, 120));
  const int x = static_cast<int>(rng.uniform_int(0, kScreen.width - 1));
  const int y = static_cast<int>(rng.uniform_int(0, kScreen.height - 1));
  return gfx::Rect{x, y, w, h}.intersect(gfx::Rect::of(kScreen));
}

/// One randomized frame: mutates `fb` inside rects it reports as damage.
/// Roughly a third of frames are redundant re-posts (empty damage), a few
/// repaint a full-width band (scroll-like), the rest scatter small patches.
gfx::Region mutate_scene(gfx::Framebuffer& fb, sim::Rng& rng) {
  gfx::Region damage;
  const auto kind = rng.uniform_int(0, 8);
  if (kind <= 2) return damage;  // redundant frame: nothing painted
  if (kind == 3) {
    // Full-width band, like a feed scroll repaint.
    const int y = static_cast<int>(rng.uniform_int(0, kScreen.height - 1));
    const int h = static_cast<int>(rng.uniform_int(20, 200));
    const gfx::Rect band =
        gfx::Rect{0, y, kScreen.width, h}.intersect(gfx::Rect::of(kScreen));
    fb.fill_rect(band, gfx::Rgb888::from_packed(
                           static_cast<std::uint32_t>(rng.next_u64())));
    damage.add(band);
    return damage;
  }
  const auto patches = rng.uniform_int(1, 4);
  for (int p = 0; p < patches; ++p) {
    const gfx::Rect r = random_rect_on_screen(rng);
    // Half the patches repaint with the colour already there (damage that
    // changes nothing -- posted but visually redundant), half with a fresh
    // colour; both must be inside the reported damage.
    const gfx::Rgb888 c =
        rng.uniform_int(0, 1) == 0
            ? fb.at(r.x, r.y)
            : gfx::Rgb888::from_packed(
                  static_cast<std::uint32_t>(rng.next_u64()));
    fb.fill_rect(r, c);
    damage.add(r);
  }
  return damage;
}

struct MeterUnderTest {
  obs::ObsSink sink;
  ContentRateMeter meter;

  MeterUnderTest(GridSpec grid, MeterMode mode, bool culling)
      : meter(kScreen, grid, sim::seconds(1), mode) {
    meter.set_damage_culling(culling);
    meter.set_obs(&sink);
  }

  [[nodiscard]] std::uint64_t counter(const char* name) {
    return sink.counters.value(name);
  }
};

void run_equivalence(GridSpec grid, MeterMode mode, std::uint64_t seed) {
  MeterUnderTest culled(grid, mode, /*culling=*/true);
  MeterUnderTest reference(grid, mode, /*culling=*/false);
  ASSERT_TRUE(culled.meter.damage_culling());
  ASSERT_FALSE(reference.meter.damage_culling());

  gfx::Framebuffer fb(kScreen);
  gfx::Framebuffer prev = fb;
  sim::Rng rng(seed);
  const int frames = 120;
  for (int i = 0; i < frames; ++i) {
    gfx::FrameInfo info;
    info.seq = static_cast<std::uint64_t>(i) + 1;
    info.composed_at = sim::Time{i * 16'667};
    info.damage = mutate_scene(fb, rng);
    info.dirty = info.damage.bounds();
    info.content_changed = !fb.equals(prev);  // exact ground truth
    prev = fb;

    culled.meter.on_frame(info, fb);
    reference.meter.on_frame(info, fb);
    ASSERT_EQ(culled.meter.meaningful_frames(),
              reference.meter.meaningful_frames())
        << grid.label() << " diverged at frame " << i;
    ASSERT_EQ(culled.meter.misclassified_frames(),
              reference.meter.misclassified_frames())
        << grid.label() << " misclassification diverged at frame " << i;
  }

  EXPECT_EQ(culled.meter.total_frames(), reference.meter.total_frames());
  // Work ledger: after the priming frame, every grid point of every frame is
  // either compared or provably skipped; the reference path never skips.
  const std::uint64_t per_frame =
      static_cast<std::uint64_t>(grid.sample_count());
  EXPECT_EQ(culled.counter("meter.pixels_compared") +
                culled.counter("meter.pixels_compare_skipped"),
            per_frame * (frames - 1))
      << grid.label();
  EXPECT_EQ(reference.counter("meter.pixels_compare_skipped"), 0u);
  // Culling must actually cull on this workload (a third of the frames are
  // empty-damage alone).
  EXPECT_LT(culled.counter("meter.pixels_compared"),
            reference.counter("meter.pixels_compared"))
      << grid.label();
}

TEST(DamageCulling, SampledModeMatchesReferenceAcrossGrids) {
  for (const GridSpec grid :
       {GridSpec::grid_2k(), GridSpec::grid_4k(), GridSpec::grid_9k(),
        GridSpec::grid_36k()}) {
    run_equivalence(grid, MeterMode::kSampledSnapshot, 1000 + grid.cols);
  }
}

TEST(DamageCulling, FullFrameModeMatchesReferenceAcrossGrids) {
  for (const GridSpec grid :
       {GridSpec::grid_2k(), GridSpec::grid_4k(), GridSpec::grid_9k(),
        GridSpec::grid_36k()}) {
    run_equivalence(grid, MeterMode::kFullFrame, 2000 + grid.cols);
  }
}

TEST(DamageCulling, EmptyDamageTouchesNoPixels) {
  MeterUnderTest m(GridSpec::grid_9k(), MeterMode::kSampledSnapshot, true);
  gfx::Framebuffer fb(kScreen, gfx::colors::kGray);
  gfx::FrameInfo info;
  info.seq = 1;
  info.composed_at = sim::Time{0};
  info.content_changed = true;
  info.dirty = gfx::Rect::of(kScreen);
  info.damage = gfx::Region(info.dirty);
  m.meter.on_frame(info, fb);  // priming
  for (int i = 0; i < 10; ++i) {
    info.seq = static_cast<std::uint64_t>(i) + 2;
    info.composed_at = sim::Time{(i + 1) * 16'667};
    info.content_changed = false;
    info.dirty = {};
    info.damage = {};
    m.meter.on_frame(info, fb);
  }
  EXPECT_EQ(m.meter.meaningful_frames(), 1u);
  EXPECT_EQ(m.counter("meter.pixels_compared"), 0u);
  EXPECT_EQ(m.counter("meter.pixels_compare_skipped"),
            10u * static_cast<std::uint64_t>(
                      GridSpec::grid_9k().sample_count()));
}

TEST(GridSampler, IndexRangeMatchesBruteForceScan) {
  // index_range() is the geometric core of culling: for random rects it
  // must select exactly the grid points whose centre the rect contains.
  const GridSampler sampler(kScreen, GridSpec::grid_4k());
  sim::Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    const gfx::Rect r = trial == 0 ? gfx::Rect::of(kScreen)
                                   : random_rect_on_screen(rng);
    const GridSampler::IndexRange range = sampler.index_range(r);
    std::int64_t expected = 0;
    const int cols = sampler.grid().cols;
    for (std::size_t k = 0; k < sampler.points().size(); ++k) {
      const bool inside = r.contains(sampler.points()[k]);
      if (inside) ++expected;
      const int col = static_cast<int>(k) % cols;
      const int row = static_cast<int>(k) / cols;
      ASSERT_EQ(inside, col >= range.col_begin && col < range.col_end &&
                            row >= range.row_begin && row < range.row_end)
          << "trial " << trial << " point " << k;
    }
    ASSERT_EQ(range.count(), expected) << "trial " << trial;
  }
}

}  // namespace
}  // namespace ccdem::core
