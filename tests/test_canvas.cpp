#include "gfx/canvas.h"

#include <gtest/gtest.h>

namespace ccdem::gfx {
namespace {

class CanvasTest : public ::testing::Test {
 protected:
  Framebuffer fb_{32, 32};
  Canvas canvas_{fb_};
};

TEST_F(CanvasTest, StartsClean) {
  EXPECT_TRUE(canvas_.dirty().empty());
}

TEST_F(CanvasTest, FillMarksWholeBufferDirty) {
  canvas_.fill(colors::kRed);
  EXPECT_EQ(canvas_.dirty(), fb_.bounds());
  EXPECT_EQ(fb_.at(31, 31), colors::kRed);
}

TEST_F(CanvasTest, FillRectMarksDirty) {
  canvas_.fill_rect(Rect{4, 4, 8, 8}, colors::kBlue);
  EXPECT_EQ(canvas_.dirty(), (Rect{4, 4, 8, 8}));
}

TEST_F(CanvasTest, DirtyAccumulatesAcrossCalls) {
  canvas_.fill_rect(Rect{0, 0, 2, 2}, colors::kBlue);
  canvas_.fill_rect(Rect{10, 10, 2, 2}, colors::kRed);
  EXPECT_EQ(canvas_.dirty(), (Rect{0, 0, 12, 12}));
}

TEST_F(CanvasTest, TakeDirtyResets) {
  canvas_.fill_rect(Rect{1, 1, 2, 2}, colors::kBlue);
  EXPECT_EQ(canvas_.take_dirty(), (Rect{1, 1, 2, 2}));
  EXPECT_TRUE(canvas_.dirty().empty());
}

TEST_F(CanvasTest, DirtyClipsToBounds) {
  canvas_.fill_rect(Rect{30, 30, 10, 10}, colors::kBlue);
  EXPECT_EQ(canvas_.dirty(), (Rect{30, 30, 2, 2}));
}

TEST_F(CanvasTest, DrawCirclePaintsInterior) {
  canvas_.draw_circle({16, 16}, 5, colors::kGreen);
  EXPECT_EQ(fb_.at(16, 16), colors::kGreen);
  EXPECT_EQ(fb_.at(16, 20), colors::kGreen);   // inside, at edge
  EXPECT_EQ(fb_.at(16 + 4, 16 + 4), colors::kBlack);  // corner outside
  EXPECT_FALSE(canvas_.dirty().empty());
}

TEST_F(CanvasTest, DrawCircleClipsAtEdge) {
  canvas_.draw_circle({0, 0}, 5, colors::kGreen);
  EXPECT_EQ(fb_.at(0, 0), colors::kGreen);
}

TEST_F(CanvasTest, DrawCircleZeroRadiusIsNoop) {
  canvas_.draw_circle({5, 5}, 0, colors::kGreen);
  EXPECT_TRUE(canvas_.dirty().empty());
}

TEST_F(CanvasTest, GradientEndpointsMatch) {
  canvas_.fill_gradient(Rect{0, 0, 32, 32}, colors::kBlack, colors::kWhite);
  EXPECT_EQ(fb_.at(0, 0), colors::kBlack);
  EXPECT_EQ(fb_.at(0, 31), colors::kWhite);
  EXPECT_GT(fb_.at(0, 16).luma(), fb_.at(0, 4).luma());
}

TEST_F(CanvasTest, TextBlockVariesWithSeed) {
  canvas_.draw_text_block(Rect{0, 0, 32, 32}, colors::kWhite,
                          colors::kBlack, 1u);
  const auto hash1 = fb_.content_hash();
  canvas_.draw_text_block(Rect{0, 0, 32, 32}, colors::kWhite,
                          colors::kBlack, 2u);
  EXPECT_NE(hash1, fb_.content_hash());
}

TEST_F(CanvasTest, TextBlockDeterministicForSeed) {
  canvas_.draw_text_block(Rect{0, 0, 32, 32}, colors::kWhite,
                          colors::kBlack, 7u);
  const auto hash1 = fb_.content_hash();
  canvas_.fill(colors::kRed);
  canvas_.draw_text_block(Rect{0, 0, 32, 32}, colors::kWhite,
                          colors::kBlack, 7u);
  EXPECT_EQ(hash1, fb_.content_hash());
}

TEST_F(CanvasTest, Lines) {
  canvas_.draw_hline(2, 10, 5, colors::kRed);
  canvas_.draw_vline(3, 2, 10, colors::kBlue);
  EXPECT_EQ(fb_.at(7, 5), colors::kRed);
  EXPECT_EQ(fb_.at(3, 7), colors::kBlue);
}

TEST_F(CanvasTest, FrameLeavesInteriorUntouched) {
  canvas_.draw_frame(Rect{4, 4, 10, 10}, 2, colors::kYellow);
  EXPECT_EQ(fb_.at(4, 4), colors::kYellow);
  EXPECT_EQ(fb_.at(9, 9), colors::kBlack);
}

TEST_F(CanvasTest, ScrollUpTracksDirty) {
  fb_.fill_rect(Rect{0, 10, 32, 1}, colors::kRed);
  canvas_.scroll_up(Rect{0, 0, 32, 32}, 4);
  EXPECT_EQ(fb_.at(0, 6), colors::kRed);
  EXPECT_EQ(canvas_.dirty(), fb_.bounds());
}

TEST_F(CanvasTest, BlitMarksDestination) {
  Framebuffer src(8, 8, colors::kGreen);
  canvas_.blit(src, Rect{0, 0, 8, 8}, Point{10, 10});
  EXPECT_EQ(fb_.at(12, 12), colors::kGreen);
  EXPECT_EQ(canvas_.dirty(), (Rect{10, 10, 8, 8}));
}

}  // namespace
}  // namespace ccdem::gfx
