// Merge-law tests for the streaming aggregates (DESIGN.md section 13):
// identity, associativity, order-independence of every integral field, and
// byte-identical encodes under the fixed fold order -- the properties that
// make a resumed campaign's merged output equal an uninterrupted one.
#include "campaign/aggregates.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "harness/json_writer.h"
#include "sim/rng.h"

namespace ccdem::campaign {
namespace {

ResultRecord random_result(sim::Rng& rng, std::uint64_t index) {
  ResultRecord r;
  r.scenario_index = index;
  r.app = "Facebook";
  r.mode = "section+boost";
  r.seed = rng.next_u64();
  r.duration_ms = static_cast<std::int64_t>(rng.uniform_int(500, 5000));
  r.mean_power_mw = rng.uniform(100.0, 1500.0);
  r.frames_composed = static_cast<std::uint64_t>(rng.uniform_int(10, 500));
  r.content_frames = static_cast<std::uint64_t>(rng.uniform_int(5, 400));
  r.rate_switches = static_cast<std::uint64_t>(rng.uniform_int(0, 40));
  if (rng.chance(0.5)) {
    r.has_ab = true;
    r.saved_power_pct = rng.uniform(-10.0, 60.0);
    r.quality_pct = rng.uniform(40.0, 100.0);
  }
  r.residency = {{20, rng.uniform(0.0, 1.0)},
                 {40, rng.uniform(0.0, 1.0)},
                 {60, rng.uniform(0.0, 1.0)}};
  return r;
}

std::vector<ResultRecord> random_results(std::uint64_t seed, int n) {
  sim::Rng rng(seed);
  std::vector<ResultRecord> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(random_result(rng, static_cast<std::uint64_t>(i)));
  }
  return out;
}

TEST(MergeHistogram, ClampsIntoEdgeBuckets) {
  MergeHistogram h(0.0, 10.0, 10);
  h.add(-5.0);   // below lo -> first bucket
  h.add(15.0);   // above hi -> last bucket
  h.add(10.0);   // == hi -> last bucket (not one past)
  h.add(5.0);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[9], 2u);
  EXPECT_EQ(h.counts[5], 1u);
  EXPECT_EQ(h.total, 4u);
  EXPECT_EQ(h.min_value, -5.0);
  EXPECT_EQ(h.max_value, 15.0);
}

TEST(MergeHistogram, FractionBelowIsBucketResolutionCdf) {
  MergeHistogram h(0.0, 100.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) * 10.0 + 5.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(50.0), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_below(100.0), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(0.0), 0.0);
}

TEST(Aggregates, MergeWithDefaultIsIdentity) {
  Aggregates a;
  for (const ResultRecord& r : random_results(1, 40)) a.add(r);
  Aggregates b = a;
  b.merge(Aggregates{});
  EXPECT_EQ(a, b);
  Aggregates c;
  c.merge(a);
  EXPECT_EQ(a, c);
}

TEST(Aggregates, MergeIsAssociativeOnIntegralState) {
  // (a+b)+c vs a+(b+c): every integral field must agree exactly.  Double
  // accumulators only agree to rounding under re-association -- which is
  // why the campaign pins a fixed fold order for byte identity
  // (FixedFoldOrderGivesByteIdenticalEncodes below).
  const auto runs = random_results(2, 60);
  Aggregates a, b, c;
  for (int i = 0; i < 20; ++i) a.add(runs[static_cast<std::size_t>(i)]);
  for (int i = 20; i < 40; ++i) b.add(runs[static_cast<std::size_t>(i)]);
  for (int i = 40; i < 60; ++i) c.add(runs[static_cast<std::size_t>(i)]);

  Aggregates ab = a;
  ab.merge(b);
  Aggregates left = ab;
  left.merge(c);

  Aggregates bc = b;
  bc.merge(c);
  Aggregates right = a;
  right.merge(bc);

  EXPECT_EQ(left.runs, right.runs);
  EXPECT_EQ(left.ab_runs, right.ab_runs);
  EXPECT_EQ(left.frames_composed, right.frames_composed);
  EXPECT_EQ(left.content_frames, right.content_frames);
  EXPECT_EQ(left.rate_switches, right.rate_switches);
  EXPECT_EQ(left.counter_sums, right.counter_sums);
  EXPECT_EQ(left.power.counts, right.power.counts);
  EXPECT_EQ(left.quality.counts, right.quality.counts);
  EXPECT_EQ(left.savings.counts, right.savings.counts);
  // min/max are associative even over doubles.
  EXPECT_EQ(left.power.min_value, right.power.min_value);
  EXPECT_EQ(left.power.max_value, right.power.max_value);
  // Double sums agree to rounding only.
  EXPECT_NEAR(left.power.sum, right.power.sum,
              1e-9 * std::fabs(left.power.sum));
  EXPECT_NEAR(left.sim_seconds, right.sim_seconds,
              1e-9 * left.sim_seconds);
}

TEST(Aggregates, IntegralFieldsAreOrderIndependent) {
  const auto runs = random_results(3, 50);
  Aggregates forward, backward;
  for (const ResultRecord& r : runs) forward.add(r);
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) backward.add(*it);
  EXPECT_EQ(forward.runs, backward.runs);
  EXPECT_EQ(forward.ab_runs, backward.ab_runs);
  EXPECT_EQ(forward.frames_composed, backward.frames_composed);
  EXPECT_EQ(forward.rate_switches, backward.rate_switches);
  EXPECT_EQ(forward.power.counts, backward.power.counts);
  EXPECT_EQ(forward.power.total, backward.power.total);
  EXPECT_EQ(forward.quality.counts, backward.quality.counts);
  EXPECT_EQ(forward.power.min_value, backward.power.min_value);
  EXPECT_EQ(forward.power.max_value, backward.power.max_value);
}

TEST(Aggregates, FixedFoldOrderGivesByteIdenticalEncodes) {
  // For a given shard layout, folding runs in scenario-index order within
  // each shard and merging shards in shard-index order yields a
  // byte-identical encode no matter when or in what temporal order the
  // shards were computed -- the resume-equals-uninterrupted law (double
  // sums are order-sensitive, so the fold order has to be pinned; the
  // campaign end-to-end version lives in test_campaign.cpp).
  const auto runs = random_results(4, 48);
  auto shard_agg = [&](std::size_t begin, std::size_t end) {
    Aggregates s;
    for (std::size_t i = begin; i < end; ++i) s.add(runs[i]);
    return s;
  };

  Aggregates uninterrupted;
  uninterrupted.merge(shard_agg(0, 16));
  uninterrupted.merge(shard_agg(16, 32));
  uninterrupted.merge(shard_agg(32, 48));

  // "Resumed": shard 1's worker died, so shard 1 is recomputed after the
  // others -- but the coordinator still merges in shard-index order.
  const Aggregates s2 = shard_agg(32, 48);
  const Aggregates s0 = shard_agg(0, 16);
  const Aggregates s1 = shard_agg(16, 32);  // the re-run
  Aggregates resumed;
  resumed.merge(s0);
  resumed.merge(s1);
  resumed.merge(s2);

  EXPECT_EQ(resumed, uninterrupted);
  EXPECT_EQ(resumed.encode(), uninterrupted.encode());

  // A different shard layout re-associates the double sums, so its encode
  // is NOT required (or expected) to match -- resume only guarantees byte
  // identity for the same spec, which pins the shard count.
  Aggregates other_layout;
  other_layout.merge(shard_agg(0, 24));
  other_layout.merge(shard_agg(24, 48));
  EXPECT_EQ(other_layout.runs, uninterrupted.runs);
}

TEST(Aggregates, EncodeDecodeRoundTrips) {
  Aggregates a;
  for (const ResultRecord& r : random_results(5, 30)) a.add(r);
  CountersRecord c;
  c.counters = {{"flinger.frames", 999}, {"meter.evals", 55}};
  a.add_counters(c);

  std::string error;
  const auto decoded = Aggregates::decode(a.encode(), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(*decoded, a);
  EXPECT_EQ(decoded->encode(), a.encode());
}

TEST(Aggregates, DecodeRejectsTruncatedAndTrailing) {
  Aggregates a;
  for (const ResultRecord& r : random_results(6, 10)) a.add(r);
  const std::string bytes = a.encode();
  std::string error;
  EXPECT_FALSE(
      Aggregates::decode(std::string_view(bytes).substr(0, bytes.size() - 1),
                         &error)
          .has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(Aggregates::decode(bytes + "x", &error).has_value());
}

TEST(Aggregates, PoolCountersAreExcluded) {
  EXPECT_TRUE(counter_excluded_from_aggregates("pool.acquires"));
  EXPECT_TRUE(counter_excluded_from_aggregates("pool.reuses"));
  EXPECT_FALSE(counter_excluded_from_aggregates("flinger.frames"));
  EXPECT_FALSE(counter_excluded_from_aggregates("meter.pool.x"));

  Aggregates a;
  CountersRecord c;
  c.counters = {{"flinger.frames", 10}, {"pool.acquires", 99}};
  a.add_counters(c);
  EXPECT_EQ(a.counter_sums.count("pool.acquires"), 0u);
  EXPECT_EQ(a.counter_sums.at("flinger.frames"), 10u);
}

TEST(Aggregates, ResidencyAndAbFoldIn) {
  ResultRecord r;
  r.duration_ms = 1000;
  r.mean_power_mw = 500.0;
  r.has_ab = true;
  r.quality_pct = 90.0;
  r.saved_power_pct = 25.0;
  r.residency = {{20, 0.25}, {60, 0.75}};
  Aggregates a;
  a.add(r);
  a.add(r);
  EXPECT_EQ(a.runs, 2u);
  EXPECT_EQ(a.ab_runs, 2u);
  EXPECT_DOUBLE_EQ(a.rung_seconds.at(20), 0.5);
  EXPECT_DOUBLE_EQ(a.rung_seconds.at(60), 1.5);
  EXPECT_DOUBLE_EQ(a.quality.mean(), 90.0);
  EXPECT_DOUBLE_EQ(a.savings.mean(), 25.0);
  EXPECT_DOUBLE_EQ(a.sim_seconds, 2.0);
}

TEST(Aggregates, WritesWellFormedJson) {
  Aggregates a;
  for (const ResultRecord& r : random_results(7, 20)) a.add(r);
  std::ostringstream os;
  harness::JsonWriter w(os);
  a.write_json(w);
  EXPECT_TRUE(w.complete());
  const std::string text = os.str();
  EXPECT_NE(text.find("\"power_mw\""), std::string::npos);
  EXPECT_NE(text.find("\"cdf\""), std::string::npos);
  EXPECT_NE(text.find("\"rung_seconds\""), std::string::npos);
}

}  // namespace
}  // namespace ccdem::campaign
