// Seed-corpus registry: every tests/corpus/*.repro must parse, round-trip
// canonically, and replay green through every oracle; plus the repro
// write -> read -> byte-identical-replay loop through a scratch directory.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "check/dst.h"
#include "check/oracles.h"
#include "test_tmpdir.h"

namespace ccdem::check {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<fs::path> corpus_files() {
  const fs::path dir = fs::path(CCDEM_REPO_DIR) / "tests" / "corpus";
  std::vector<fs::path> out;
  if (fs::exists(dir)) {
    for (const auto& e : fs::directory_iterator(dir)) {
      if (e.path().extension() == ".repro") out.push_back(e.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(DstReplay, CorpusIsPresent) {
  EXPECT_GE(corpus_files().size(), 14u)
      << "seed corpus under tests/corpus/ went missing";
}

TEST(DstReplay, EveryCorpusFileParsesAndRoundTrips) {
  for (const fs::path& p : corpus_files()) {
    std::string error;
    const auto s = parse_scenario(read_file(p), &error);
    ASSERT_TRUE(s) << p.filename().string() << ": " << error;
    const auto again = parse_scenario(scenario_to_string(*s), &error);
    ASSERT_TRUE(again) << p.filename().string() << ": " << error;
    EXPECT_EQ(*again, *s) << p.filename().string();
  }
}

TEST(DstReplay, EveryCorpusFileReplaysGreen) {
  for (const fs::path& p : corpus_files()) {
    std::string error;
    const auto s = parse_scenario(read_file(p), &error);
    ASSERT_TRUE(s) << p.filename().string() << ": " << error;
    const CheckReport r = check_scenario(*s);
    EXPECT_TRUE(r.ok()) << p.filename().string() << ":\n" << r.to_string();
  }
}

// The full failure loop a developer follows: a repro written to disk parses
// back to the same scenario and re-executes byte-identically.
TEST(DstReplay, WrittenReproReplaysByteIdentically) {
  testing::TempDir tmp;
  ASSERT_TRUE(tmp.ok());

  Scenario s;
  s.app = "Cookie Run";
  s.duration_ms = 1700;
  s.seed = 31337;
  s.mode = device::ControlMode::kSectionHysteresis;
  const RunArtifacts before = run_scenario_once(s.experiment_config());

  const fs::path file = tmp.file("case.repro");
  {
    std::ofstream os(file);
    os << repro_to_string(s, {"synthetic failure for the round-trip test"});
  }
  std::string error;
  const auto parsed = parse_scenario(read_file(file), &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(*parsed, s);

  const RunArtifacts after = run_scenario_once(parsed->experiment_config());
  EXPECT_EQ(before.trace_csv, after.trace_csv);
  EXPECT_FALSE(diff_results(before.result, after.result, "repro-replay"));
  EXPECT_FALSE(
      diff_counters(before.counters, after.counters, "repro-replay"));
}

}  // namespace
}  // namespace ccdem::check
