// Trace explorer: prints the Fig. 2 / Fig. 7-style time series for one app
// as ASCII charts -- frame rate, content rate, refresh rate and power --
// so the control loop's behaviour can be eyeballed.
//
//   ./trace_explorer [app-name] [mode] [seconds]
//     mode: baseline | section | boost | naive
#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/app_profiles.h"
#include "harness/experiment.h"
#include "harness/report.h"

int main(int argc, char** argv) {
  using namespace ccdem;

  const std::string app_name = argc > 1 ? argv[1] : "Facebook";
  const std::string mode_str = argc > 2 ? argv[2] : "boost";
  const int seconds = argc > 3 ? std::atoi(argv[3]) : 30;

  harness::ControlMode mode = harness::ControlMode::kSectionWithBoost;
  if (mode_str == "baseline") mode = harness::ControlMode::kBaseline60;
  if (mode_str == "section") mode = harness::ControlMode::kSection;
  if (mode_str == "naive") mode = harness::ControlMode::kNaive;

  harness::ExperimentConfig config;
  config.app = apps::app_by_name(app_name);
  config.duration = sim::seconds(seconds);
  config.seed = 5;
  config.mode = mode;
  const harness::ExperimentResult r = harness::run_experiment(config);

  const sim::Time begin{};
  const sim::Time end{config.duration.ticks};
  std::cout << "App: " << app_name
            << "  mode: " << harness::control_mode_name(mode) << "\n\n";
  harness::print_ascii_chart(std::cout, "frame rate (fps)", r.frame_rate,
                             sim::seconds(1), begin, end, 60.0);
  std::cout << "\n";
  harness::print_ascii_chart(std::cout, "content rate (fps)", r.content_rate,
                             sim::seconds(1), begin, end, 60.0);
  std::cout << "\n";
  harness::print_ascii_chart(std::cout, "refresh rate (Hz)", r.refresh_rate,
                             sim::seconds(1), begin, end, 60.0);
  std::cout << "\n";
  harness::print_ascii_chart(std::cout, "device power (mW)", r.power,
                             sim::seconds(1), begin, end, 2000.0);
  std::cout << "\nMean power " << harness::fmt(r.mean_power_mw)
            << " mW, mean refresh " << harness::fmt(r.mean_refresh_hz)
            << " Hz, meter error "
            << harness::fmt(r.meter_error_rate * 100.0, 2) << " %\n";
  return 0;
}
