// Custom panel: the paper notes "the thresholds should be redefined when
// the available refresh rates are changed".  This example builds section
// tables for three different panels -- the paper's Galaxy S3, a hypothetical
// 3-level panel, and a modern LTPO 1-120 Hz stack -- and runs the same
// workload on each to show the scheme generalises beyond one device.
//
//   ./custom_panel [seconds]
#include <cstdlib>
#include <iostream>

#include "apps/app_profiles.h"
#include "core/section_table.h"
#include "harness/experiment.h"
#include "harness/report.h"

int main(int argc, char** argv) {
  using namespace ccdem;

  const int seconds = argc > 1 ? std::atoi(argv[1]) : 20;

  struct Panel {
    const char* name;
    display::RefreshRateSet rates;
  };
  const Panel panels[] = {
      {"Galaxy S3 (paper)", display::RefreshRateSet::galaxy_s3()},
      {"3-level panel", display::RefreshRateSet{30, 48, 60}},
      {"LTPO 1-120 Hz", display::RefreshRateSet::ltpo_120()},
  };

  for (const Panel& p : panels) {
    std::cout << "=== " << p.name << " ===\n";
    std::cout << "Section table (Equation (1)):\n"
              << core::SectionTable::build(p.rates, 0.5).to_string();

    harness::ExperimentConfig config;
    config.app = apps::app_by_name("Jelly Splash");
    config.duration = sim::seconds(seconds);
    config.seed = 21;
    config.mode = harness::ControlMode::kSectionWithBoost;
    config.rates = p.rates;
    // Fair comparison across panels: every baseline is a stock 60 Hz
    // device, boosts target 60 Hz, and LTPO-class floors get the guards
    // the bench_ext_ltpo study motivates.
    config.baseline_hz = 60;
    config.dpm.boost_hz = 60;
    if (p.rates.min_hz() < 20) {
      config.fast_rate_up = true;
      config.dpm.min_hz = 10;
    }
    const harness::AbResult ab = harness::run_ab(config);

    std::cout << "Jelly Splash: saved " << harness::fmt(ab.saved_power_mw)
              << " mW (" << harness::fmt(ab.saved_power_pct)
              << " %), quality "
              << harness::fmt(ab.quality.display_quality_pct)
              << " %, mean refresh "
              << harness::fmt(ab.controlled.mean_refresh_hz) << " Hz\n\n";
  }
  std::cout << "Finer-grained rate ladders harvest more idle headroom: the "
               "LTPO panel\ncan park near the content rate where the S3's "
               "coarse 20 Hz floor cannot.\n";
  return 0;
}
