// Run an experiment described by a config file and optionally dump the
// traces as CSV for plotting.
//
//   ./run_config <config-file> [csv-output-file]
//
// Example config (see harness/config_io.h for the full key list):
//
//   app = Jelly Splash
//   mode = section+boost
//   seconds = 30
//   seed = 7
#include <fstream>
#include <iostream>

#include "harness/config_io.h"
#include "harness/csv.h"
#include "harness/experiment.h"
#include "harness/report.h"

int main(int argc, char** argv) {
  using namespace ccdem;

  if (argc < 2) {
    std::cerr << "usage: run_config <config-file> [csv-output-file]\n";
    return 2;
  }
  std::ifstream file(argv[1]);
  if (!file) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 1;
  }
  std::string error;
  const auto config = harness::parse_experiment_config(file, &error);
  if (!config) {
    std::cerr << "config error: " << error << "\n";
    return 1;
  }

  std::cout << "Running:\n"
            << harness::experiment_config_to_string(*config) << "\n";
  const harness::ExperimentResult r = harness::run_experiment(*config);

  harness::TextTable t({"Metric", "Value"});
  t.add_row({"mean power (mW)", harness::fmt(r.mean_power_mw)});
  t.add_row({"mean refresh (Hz)", harness::fmt(r.mean_refresh_hz)});
  t.add_row({"frames composed", std::to_string(r.frames_composed)});
  t.add_row({"content frames", std::to_string(r.content_frames)});
  t.add_row({"rate switches", std::to_string(r.rate_switches)});
  t.add_row({"meter error (%)", harness::fmt(r.meter_error_rate * 100, 2)});
  t.add_row({"touch response p95 (ms)", harness::fmt(r.response_p95_ms)});
  t.print(std::cout);

  if (argc > 2) {
    std::ofstream csv(argv[2]);
    if (!csv) {
      std::cerr << "cannot open " << argv[2] << "\n";
      return 1;
    }
    harness::write_traces_csv(
        csv, {&r.power, &r.frame_rate, &r.content_rate, &r.refresh_rate},
        sim::seconds(1), sim::Time{}, sim::Time{r.duration.ticks});
    std::cout << "\ntraces written to " << argv[2] << "\n";
  }
  return 0;
}
