// Quickstart: run one app with and without the proposed system and print
// the power saving and display quality -- the paper's core result in ~40
// lines of API use.
//
//   ./quickstart [app-name] [seconds]
//
// Defaults to Jelly Splash (the paper's poster-child workload) for 30 s.
#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/app_profiles.h"
#include "device/simulated_device.h"
#include "harness/experiment.h"
#include "harness/report.h"

int main(int argc, char** argv) {
  using namespace ccdem;

  const std::string app_name = argc > 1 ? argv[1] : "Jelly Splash";
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 30;

  // 1. Pick a workload (one of the paper's 30 commercial apps).
  harness::ExperimentConfig config;
  config.app = apps::app_by_name(app_name);
  config.duration = sim::seconds(seconds);
  config.seed = 1;

  // 2. Choose the control mode: the full proposed system is section-based
  //    refresh control plus touch boosting.
  config.mode = harness::ControlMode::kSectionWithBoost;

  // The harness sits on the device layer: a DeviceConfig declares the
  // hardware + control mode and SimulatedDevice assembles the whole stack.
  // The same five calls drive every experiment, bench, and test rig:
  //
  //   device::SimulatedDevice dev;
  //   dev.configure(config.device_config());
  //   dev.install_app(config.app);
  //   dev.start_control();
  //   dev.schedule_monkey_script(config.app.monkey, config.duration);
  //   dev.run_until(...); dev.finish();

  // 3. Run the A/B experiment: the same Monkey script is replayed against
  //    the stock fixed-60 Hz device and the controlled device.
  const harness::AbResult ab = harness::run_ab(config);

  std::cout << "App: " << app_name << "  (" << seconds << " s, "
            << ab.baseline.touch_events << " touch events)\n\n";

  harness::TextTable table(
      {"Arm", "Mean power (mW)", "Mean refresh (Hz)", "Content fps"});
  table.add_row({"baseline 60 Hz", harness::fmt(ab.baseline.mean_power_mw),
                 harness::fmt(ab.baseline.mean_refresh_hz),
                 harness::fmt(ab.quality.actual_content_fps)});
  table.add_row({"proposed", harness::fmt(ab.controlled.mean_power_mw),
                 harness::fmt(ab.controlled.mean_refresh_hz),
                 harness::fmt(ab.quality.delivered_content_fps)});
  table.print(std::cout);

  std::cout << "\nSaved power:     " << harness::fmt(ab.saved_power_mw)
            << " mW (" << harness::fmt(ab.saved_power_pct) << " %)\n"
            << "Display quality: "
            << harness::fmt(ab.quality.display_quality_pct) << " %\n"
            << "Dropped frames:  " << harness::fmt(ab.quality.dropped_fps, 2)
            << " fps\n";
  return 0;
}
