// Screenshot: render each scene type at a few timestamps and dump PPM
// images -- the quickest way to see what the simulated workloads look like.
//
//   ./screenshot [output-dir]
#include <iostream>
#include <string>

#include "apps/app_profiles.h"
#include "apps/scene.h"
#include "gfx/ppm.h"

int main(int argc, char** argv) {
  using namespace ccdem;

  const std::string dir = argc > 1 ? argv[1] : ".";

  struct Shot {
    const char* name;
    apps::SceneSpec spec;
  };
  const Shot shots[] = {
      {"feed_ui", apps::SceneSpec::static_ui(2.0)},
      {"video_player", apps::SceneSpec::video(24.0)},
      {"game", apps::SceneSpec::game(20.0)},
      {"live_wallpaper", apps::SceneSpec::wallpaper(2, 8)},
      {"messenger", apps::SceneSpec::typing()},
      {"map", apps::SceneSpec::map()},
  };

  for (const Shot& shot : shots) {
    gfx::Framebuffer fb(apps::kGalaxyS3Screen);
    gfx::Canvas canvas(fb);
    auto scene = apps::make_scene(shot.spec, fb.size(), sim::Rng(7));
    scene->init(canvas);
    // Let the scene animate for two seconds of 30 fps renders so the image
    // shows it mid-motion, not the initial state.
    for (int i = 1; i <= 60; ++i) {
      scene->render(canvas, sim::at_seconds(i / 30.0));
    }
    const std::string path = dir + "/scene_" + shot.name + ".ppm";
    if (gfx::write_ppm_file(path, fb)) {
      std::cout << "wrote " << path << " (" << fb.width() << "x"
                << fb.height() << ")\n";
    } else {
      std::cerr << "failed to write " << path << "\n";
      return 1;
    }
  }
  return 0;
}
