// Campaign driver: run a sharded scenario-matrix campaign from a spec
// file, resume one after a crash, or convert its binary shard files into
// the human formats.
//
//   campaign_report run    <spec.campaign> <dir> [workers]
//   campaign_report resume <spec.campaign> <dir> [workers]
//   campaign_report convert <shard.bin> {results-csv|trace-csv|chrome-trace}
//
// `run` executes the matrix with worker processes and leaves
// `<dir>/manifest.txt` (the checkpoint), one `shard_NNNN.bin` per shard,
// `aggregates.bin` (merged streaming aggregates) and `summary.json`.
// Kill it -- or any worker -- and `resume` continues from the manifest;
// the merged output is byte-identical to an uninterrupted run.
// `convert` decodes a shard file to stdout, so the JSON/CSV cost is paid
// only when a human asks.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "campaign/campaign.h"
#include "campaign/convert.h"
#include "campaign/coordinator.h"

namespace {

int usage() {
  std::cerr
      << "usage:\n"
         "  campaign_report run    <spec.campaign> <dir> [workers]\n"
         "  campaign_report resume <spec.campaign> <dir> [workers]\n"
         "  campaign_report convert <shard.bin> "
         "{results-csv|trace-csv|chrome-trace}\n";
  return 2;
}

int run(const std::string& spec_path, const std::string& dir, int workers,
        bool resume) {
  const auto text = ccdem::campaign::load_file(spec_path);
  if (!text) {
    std::cerr << "campaign: cannot read " << spec_path << "\n";
    return 1;
  }
  std::string error;
  const auto spec = ccdem::campaign::CampaignSpec::parse(*text, &error);
  if (!spec) {
    std::cerr << "campaign: " << spec_path << ": " << error << "\n";
    return 1;
  }

  ccdem::campaign::CampaignOptions options;
  options.workers = workers;
  options.resume = resume;
  options.log = &std::cerr;
  const ccdem::campaign::CampaignResult result =
      ccdem::campaign::run_campaign(*spec, dir, options);
  for (const std::string& repro : result.repro_files) {
    std::cerr << "campaign: wrote " << repro << "\n";
  }
  if (!result.complete) {
    std::cerr << "campaign: " << result.error << "\n";
    return 1;
  }
  std::cerr << "campaign: " << result.runs << " runs, "
            << result.quarantined.size() << " quarantined, mean power "
            << result.aggregates.power.mean() << " mW; see " << dir << "/"
            << ccdem::campaign::summary_file_name() << "\n";
  return 0;
}

int convert(const std::string& bin_path, const std::string& format) {
  std::optional<std::string> error;
  if (format == "results-csv") {
    error = ccdem::campaign::bin_to_results_csv(bin_path, std::cout);
  } else if (format == "trace-csv") {
    error = ccdem::campaign::bin_to_trace_csv(bin_path, std::cout);
  } else if (format == "chrome-trace") {
    error = ccdem::campaign::bin_to_chrome_trace(bin_path, std::cout);
  } else {
    return usage();
  }
  if (error) {
    std::cerr << "campaign: " << bin_path << ": " << *error << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if ((cmd == "run" || cmd == "resume") && argc >= 4) {
    const int workers = argc > 4 ? std::atoi(argv[4]) : 2;
    if (workers <= 0) return usage();
    return run(argv[2], argv[3], workers, cmd == "resume");
  }
  if (cmd == "convert" && argc == 4) return convert(argv[2], argv[3]);
  return usage();
}
