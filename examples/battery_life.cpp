// Battery life: translate the paper's milliwatt savings into screen-on
// hours on a Galaxy S3-class 2100 mAh pack.
//
//   ./battery_life [seconds-per-run]
#include <cstdlib>
#include <iostream>

#include "apps/app_profiles.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "power/battery.h"

int main(int argc, char** argv) {
  using namespace ccdem;

  const int seconds = argc > 1 ? std::atoi(argv[1]) : 30;
  const power::Battery battery(power::BatterySpec::galaxy_s3());

  harness::TextTable t({"App", "Baseline (mW)", "Saved (mW)",
                        "Screen-on h (before)", "Screen-on h (after)",
                        "Gain"});
  for (const char* name :
       {"Facebook", "MX Player", "Jelly Splash", "Cookie Run"}) {
    harness::ExperimentConfig config;
    config.app = apps::app_by_name(name);
    config.duration = sim::seconds(seconds);
    config.seed = 17;
    config.mode = harness::ControlMode::kSectionWithBoost;
    const harness::AbResult ab = harness::run_ab(config);

    const double before = battery.hours_at_mw(ab.baseline.mean_power_mw);
    const double after = battery.hours_at_mw(ab.controlled.mean_power_mw);
    t.add_row({name, harness::fmt(ab.baseline.mean_power_mw, 0),
               harness::fmt(ab.saved_power_mw, 0), harness::fmt(before, 1),
               harness::fmt(after, 1),
               "+" + harness::fmt(
                         battery.relative_gain(ab.baseline.mean_power_mw,
                                               ab.saved_power_mw) * 100.0,
                         0) + " %"});
  }
  t.print(std::cout);
  std::cout << "\nBattery: " << battery.spec().capacity_mah << " mAh @ "
            << battery.spec().nominal_voltage_v
            << " V (Galaxy S3 class). Screen-on time assumes the app runs "
               "continuously.\n";
  return 0;
}
