// Run a config with the observability layer attached and export the result
// as a Chrome trace_event JSON (load it in chrome://tracing or
// https://ui.perfetto.dev) plus the per-frame CSV the golden tests lock.
//
//   ./trace_viewer [config-file] [output-basename]
//
// Defaults: configs/jelly_splash.conf and "trace" (writes trace.json +
// trace.csv).  Both outputs are re-parsed after writing, so a zero exit
// status certifies they are well-formed round-trippable trace files.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "harness/config_io.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "obs/obs.h"
#include "obs/trace_export.h"

int main(int argc, char** argv) {
  using namespace ccdem;

  const std::string config_path =
      argc > 1 ? argv[1] : "configs/jelly_splash.conf";
  const std::string base = argc > 2 ? argv[2] : "trace";

  std::ifstream file(config_path);
  if (!file) {
    std::cerr << "cannot open " << config_path << "\n";
    return 1;
  }
  std::string error;
  auto config = harness::parse_experiment_config(file, &error);
  if (!config) {
    std::cerr << "config error: " << error << "\n";
    return 1;
  }

  obs::ObsSink sink;
  config->obs = &sink;
  std::cout << "Running " << config_path << " with spans "
            << (sink.spans.enabled() ? "on" : "off (compiled out)") << "\n\n";
  const harness::ExperimentResult r = harness::run_experiment(*config);

  const std::vector<obs::Span> spans = sink.spans.spans();
  const obs::Counters::Snapshot snap = sink.counters.snapshot();
  std::cout << r.app_name << ": " << r.frames_composed << " frames, "
            << spans.size() << " spans buffered (" << sink.spans.recorded()
            << " recorded, " << sink.spans.dropped() << " dropped)\n\n";
  harness::print_counters(std::cout, sink.counters);

  const std::string json_path = base + ".json";
  const std::string csv_path = base + ".csv";
  {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot open " << json_path << "\n";
      return 1;
    }
    obs::write_chrome_trace(out, spans, snap);
  }
  {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "cannot open " << csv_path << "\n";
      return 1;
    }
    obs::write_trace_csv(out, spans, snap);
  }

  // Certify both exports by re-reading them with the bundled parsers.
  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const auto json = obs::parse_chrome_trace(slurp(json_path), &error);
  if (!json || json->spans.size() != spans.size()) {
    std::cerr << "JSON round-trip failed: " << error << "\n";
    return 1;
  }
  const auto csv = obs::parse_trace_csv(slurp(csv_path), &error);
  if (!csv || csv->spans.size() != spans.size()) {
    std::cerr << "CSV round-trip failed: " << error << "\n";
    return 1;
  }

  std::cout << "\nwrote " << json_path << " (" << json->spans.size()
            << " events; open in chrome://tracing) and " << csv_path << "\n";
  return 0;
}
