// App survey: the Fig. 3-style redundancy census over all 30 commercial
// app profiles -- meaningful vs redundant frame rate per app at a fixed
// 60 Hz, the observation that motivates the whole system.
//
//   ./app_survey [seconds-per-app]
#include <cstdlib>
#include <iostream>

#include "apps/app_profiles.h"
#include "harness/experiment.h"
#include "harness/report.h"

int main(int argc, char** argv) {
  using namespace ccdem;

  const int seconds = argc > 1 ? std::atoi(argv[1]) : 20;

  harness::TextTable table({"App", "Category", "Frame rate (fps)",
                            "Content rate (fps)", "Redundant (fps)"});
  for (const apps::AppSpec& app : apps::all_apps()) {
    harness::ExperimentConfig config;
    config.app = app;
    config.duration = sim::seconds(seconds);
    config.seed = 11;
    config.mode = harness::ControlMode::kBaseline60;
    const harness::ExperimentResult r = harness::run_experiment(config);

    const double run_s = r.duration.seconds();
    const double frame_fps = static_cast<double>(r.frames_composed) / run_s;
    const double content_fps = static_cast<double>(r.content_frames) / run_s;
    table.add_row({app.name,
                   app.category == apps::AppSpec::Category::kGame
                       ? "game"
                       : "general",
                   harness::fmt(frame_fps), harness::fmt(content_fps),
                   harness::fmt(frame_fps - content_fps)});
  }
  table.print(std::cout);
  std::cout << "\nApps whose redundant rate exceeds 20 fps waste most of "
               "their frame updates;\nthe proposed system eliminates that "
               "waste by lowering the refresh rate.\n";
  return 0;
}
