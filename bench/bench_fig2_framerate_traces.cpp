// Figure 2: frame rate and refresh rate traces of Facebook and Jelly Splash
// on the stock device (fixed 60 Hz refresh).
//
// The paper's observations this bench regenerates:
//  * Facebook's frame rate is low most of the time, except when user
//    requests (touches) occur;
//  * Jelly Splash remains at about 60 fps most of the time even when the
//    frame content does not change (redundant updates).
#include <iostream>

#include "bench_common.h"

using namespace ccdem;

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 30);
  harness::print_bench_header(std::cout,
                              "Figure 2: frame rate traces at fixed 60 Hz",
                              seconds, "s runs");

  for (const char* name : {"Facebook", "Jelly Splash"}) {
    const auto r = harness::run_experiment(bench::make_config(
        apps::app_by_name(name), harness::ControlMode::kBaseline60, seconds,
        /*seed=*/2));
    std::cout << "--- " << name << " ---\n";
    harness::print_ascii_chart(std::cout, "frame rate (fps)", r.frame_rate,
                               sim::seconds(1), sim::Time{},
                               sim::Time{r.duration.ticks}, 60.0);
    harness::print_ascii_chart(std::cout, "content rate (fps)",
                               r.content_rate, sim::seconds(1), sim::Time{},
                               sim::Time{r.duration.ticks}, 60.0);
    const double frame_fps =
        static_cast<double>(r.frames_composed) / r.duration.seconds();
    const double content_fps =
        static_cast<double>(r.content_frames) / r.duration.seconds();
    std::cout << "mean frame rate " << harness::fmt(frame_fps)
              << " fps, mean content rate " << harness::fmt(content_fps)
              << " fps, refresh fixed at 60 Hz\n\n";
  }

  // The claims, checked numerically.
  const auto fb = harness::run_experiment(bench::make_config(
      apps::app_by_name("Facebook"), harness::ControlMode::kBaseline60,
      seconds, 2));
  const auto js = harness::run_experiment(bench::make_config(
      apps::app_by_name("Jelly Splash"), harness::ControlMode::kBaseline60,
      seconds, 2));
  // "low most of the time": judge the median per-second frame rate, not the
  // mean (interaction bursts dominate the mean by design).
  std::vector<double> fb_seconds;
  for (const auto& p : fb.frame_rate.points()) fb_seconds.push_back(p.value);
  const double fb_median = metrics::percentile(fb_seconds, 50.0);
  const double js_fps =
      static_cast<double>(js.frames_composed) / js.duration.seconds();
  const double js_content =
      static_cast<double>(js.content_frames) / js.duration.seconds();
  std::cout << "[check] Facebook frame rate is low most of the time "
               "(median): "
            << harness::fmt(fb_median) << " fps ("
            << (fb_median < 20.0 ? "OK" : "UNEXPECTED") << ")\n";
  std::cout << "[check] Jelly Splash pins near 60 fps: "
            << harness::fmt(js_fps) << " fps ("
            << (js_fps > 50.0 ? "OK" : "UNEXPECTED") << ")\n";
  std::cout << "[check] Jelly Splash content far below its frame rate: "
            << harness::fmt(js_content) << " fps ("
            << (js_content < js_fps / 2.0 ? "OK" : "UNEXPECTED") << ")\n";
  return 0;
}
