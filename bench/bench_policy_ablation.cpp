// Policy-pipeline ablation: reactive vs predictive vs DVFS co-control.
//
// The composable control plane (DESIGN.md section 11) turns "which policy?"
// into "which stage composition?".  This bench runs the interesting arms of
// that space over a feed and a game workload and checks the claims the
// predictive governor makes:
//   * the predictive arm spends no more energy than the reactive ladder
//     (pre-emptive down-steps only ever remove refresh work), and
//   * both the predictive and the DVFS co-control arm keep delivered
//     quality at >= 95 % of the fixed-60 Hz baseline.
//
// Writes BENCH_policy_ablation.json (schema ccdem-bench-policy-v1) and
// exits non-zero when a gate fails.
//
// Usage:  bench_policy_ablation [sim_seconds_per_run] [output.json]
//         CCDEM_BENCH_SECONDS / CCDEM_BENCH_OUT override the defaults
//         (20 s per run, ./BENCH_policy_ablation.json).
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "apps/app_profiles.h"
#include "bench_common.h"
#include "core/policy_pipeline.h"
#include "harness/json_writer.h"
#include "metrics/quality.h"
#include "obs/obs.h"

using namespace ccdem;

namespace {

constexpr double kQualityGatePct = 95.0;

struct Arm {
  std::string name;
  std::string spec;  ///< empty = the fixed-60 Hz baseline
};

/// The ablation ladder: each arm adds one idea on top of the previous.
std::vector<Arm> arms() {
  return {
      {"baseline60", ""},
      {"reactive", "section,hysteresis,boost"},
      {"predictive", "predictive,boost"},
      {"co-control", "predictive,boost,dvfs"},
  };
}

struct Workload {
  std::string name;
  apps::AppSpec app;
};

/// A feed (bursty content, long quiet stretches the predictor can claim
/// early) and a game (sustained 60 fps requests; the arm must not regress
/// delivered quality to save power).
std::vector<Workload> workloads() {
  std::vector<Workload> v;
  v.push_back({"feed", apps::app_by_name("Facebook")});
  v.push_back({"game", apps::app_by_name("Jelly Splash")});
  return v;
}

struct Cell {
  double power_mw = 0.0;
  double energy_mj = 0.0;
  double quality_pct = 0.0;
  double mean_refresh_hz = 0.0;
  std::uint64_t rate_switches = 0;
  std::uint64_t presteps = 0;
  std::uint64_t dvfs_caps = 0;
};

std::string out_path(int argc, char** argv) {
  if (argc > 2) return argv[2];
  if (const char* env = std::getenv("CCDEM_BENCH_OUT")) return env;
  return "BENCH_policy_ablation.json";
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 20);
  const std::string path = out_path(argc, argv);
  const std::vector<Arm> all_arms = arms();
  const std::vector<Workload> loads = workloads();

  harness::print_bench_header(
      std::cout, "Policy-pipeline ablation: reactive / predictive / DVFS",
      std::to_string(seconds) + " s per run");

  // cells[workload][arm]; arm 0 is the baseline and quality reference.
  std::vector<std::vector<Cell>> cells(loads.size());
  for (std::size_t wi = 0; wi < loads.size(); ++wi) {
    harness::ExperimentResult reference;
    for (std::size_t ai = 0; ai < all_arms.size(); ++ai) {
      const Arm& arm = all_arms[ai];
      harness::ExperimentConfig c = bench::make_config(
          loads[wi].app, harness::ControlMode::kBaseline60, seconds,
          /*seed=*/1);
      if (!arm.spec.empty()) {
        c.mode = harness::ControlMode::kPipeline;
        const auto spec = core::PipelineSpec::parse(arm.spec, nullptr);
        if (!spec) {
          std::cerr << "bad arm spec: " << arm.spec << "\n";
          return 1;
        }
        c.pipeline = *spec;
      }
      obs::ObsSink sink;
      sink.spans.set_enabled(false);
      c.obs = &sink;
      const harness::ExperimentResult r = harness::run_experiment(c);
      if (ai == 0) reference = r;

      Cell cell;
      cell.power_mw = r.mean_power_mw;
      cell.energy_mj = r.energy.total_mj();
      cell.quality_pct =
          ai == 0 ? 100.0
                  : metrics::compare_quality(reference.content_rate,
                                             r.content_rate)
                        .display_quality_pct;
      cell.mean_refresh_hz = r.mean_refresh_hz;
      cell.rate_switches = r.rate_switches;
      cell.presteps = sink.counters.value("policy.predictive.presteps");
      cell.dvfs_caps = sink.counters.value("policy.dvfs.caps");
      cells[wi].push_back(cell);
    }
  }

  harness::TextTable table({"workload", "arm", "power (mW)", "quality (%)",
                            "mean Hz", "switches", "presteps", "dvfs caps"});
  for (std::size_t wi = 0; wi < loads.size(); ++wi) {
    for (std::size_t ai = 0; ai < all_arms.size(); ++ai) {
      const Cell& c = cells[wi][ai];
      table.add_row({loads[wi].name, all_arms[ai].name,
                     harness::fmt(c.power_mw, 1),
                     harness::fmt(c.quality_pct, 1),
                     harness::fmt(c.mean_refresh_hz, 1),
                     std::to_string(c.rate_switches),
                     std::to_string(c.presteps),
                     std::to_string(c.dvfs_caps)});
    }
  }
  table.print(std::cout);

  // Gates.  Arm indices: 1 = reactive, 2 = predictive, 3 = co-control.
  bool energy_ok = true, quality_ok = true;
  for (std::size_t wi = 0; wi < loads.size(); ++wi) {
    energy_ok =
        energy_ok && cells[wi][2].energy_mj <= cells[wi][1].energy_mj;
    for (const std::size_t ai : {std::size_t{2}, std::size_t{3}}) {
      quality_ok = quality_ok && cells[wi][ai].quality_pct >= kQualityGatePct;
    }
  }
  const bool gate_passed = energy_ok && quality_ok;

  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  harness::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "ccdem-bench-policy-v1");
  w.kv("generated_by", "bench_policy_ablation");
  w.kv("sim_seconds_per_run", seconds);
  w.kv("quality_gate_pct", kQualityGatePct);
  w.key("workloads");
  w.begin_array();
  for (std::size_t wi = 0; wi < loads.size(); ++wi) {
    w.begin_object();
    w.kv("name", loads[wi].name);
    w.kv("app", loads[wi].app.name);
    w.key("arms");
    w.begin_array();
    for (std::size_t ai = 0; ai < all_arms.size(); ++ai) {
      const Cell& c = cells[wi][ai];
      w.begin_object();
      w.kv("name", all_arms[ai].name);
      w.kv("pipeline", all_arms[ai].spec);
      w.kv("power_mw", c.power_mw);
      w.kv("energy_mj", c.energy_mj);
      w.kv("quality_pct", c.quality_pct);
      w.kv("mean_refresh_hz", c.mean_refresh_hz);
      w.kv("rate_switches", c.rate_switches);
      w.kv("policy.predictive.presteps", c.presteps);
      w.kv("policy.dvfs.caps", c.dvfs_caps);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.kv("predictive_energy_le_reactive", energy_ok);
  w.kv("quality_gate_ok", quality_ok);
  w.kv("gate_passed", gate_passed);
  w.end_object();

  std::cout << "\npredictive <= reactive energy: "
            << (energy_ok ? "yes" : "NO")
            << ", quality >= " << harness::fmt(kQualityGatePct, 0)
            << " %: " << (quality_ok ? "yes" : "NO") << " (gate "
            << (gate_passed ? "PASSED" : "FAILED") << ")\nwrote " << path
            << "\n";
  return gate_passed ? 0 : 1;
}
