// Ablation C: rate-switch hysteresis (an extension beyond the paper).
//
// The paper's section controller re-decides every evaluation with no
// memory; content rates hovering near a threshold make the panel flip
// between adjacent rates.  Real panels pay for every mode switch (timing
// reprogram, visible cadence change).  This bench counts switches and the
// power/quality cost of suppressing them with asymmetric hysteresis
// (core::HysteresisStage: up immediately, down after 3 confirmations).
#include <iostream>

#include "bench_common.h"

using namespace ccdem;

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 40);
  harness::print_bench_header(
      std::cout, "Ablation: refresh-rate switch hysteresis", seconds);

  harness::TextTable t({"App", "Controller", "Rate switches", "Saved (mW)",
                        "Quality (%)"});
  struct Row {
    const char* app;
    std::uint64_t plain_switches = 0, hyst_switches = 0;
    double plain_quality = 0, hyst_quality = 0;
  };
  std::vector<Row> rows;

  for (const char* name :
       {"Facebook", "Jelly Splash", "Weather", "Everypong"}) {
    Row row;
    row.app = name;
    const apps::AppSpec app = apps::app_by_name(name);
    const auto base = harness::run_experiment(bench::make_config(
        app, harness::ControlMode::kBaseline60, seconds, /*seed=*/14));
    for (const auto mode : {harness::ControlMode::kSectionWithBoost,
                            harness::ControlMode::kSectionHysteresis}) {
      const auto r = harness::run_experiment(
          bench::make_config(app, mode, seconds, /*seed=*/14));
      const auto q =
          metrics::compare_quality(base.content_rate, r.content_rate);
      t.add_row({name, harness::control_mode_name(mode),
                 std::to_string(r.rate_switches),
                 harness::fmt(base.mean_power_mw - r.mean_power_mw, 1),
                 harness::fmt(q.display_quality_pct)});
      if (mode == harness::ControlMode::kSectionWithBoost) {
        row.plain_switches = r.rate_switches;
        row.plain_quality = q.display_quality_pct;
      } else {
        row.hyst_switches = r.rate_switches;
        row.hyst_quality = q.display_quality_pct;
      }
    }
    rows.push_back(row);
  }
  t.print(std::cout);
  std::cout << "\n";

  for (const Row& r : rows) {
    std::cout << "[check] " << r.app << ": hysteresis reduces switches ("
              << r.plain_switches << " -> " << r.hyst_switches << ", "
              << (r.hyst_switches <= r.plain_switches ? "OK" : "UNEXPECTED")
              << ") without hurting quality ("
              << harness::fmt(r.plain_quality) << " -> "
              << harness::fmt(r.hyst_quality) << " %, "
              << (r.hyst_quality + 2.0 >= r.plain_quality ? "OK"
                                                          : "UNEXPECTED")
              << ")\n";
  }
  return 0;
}
