// Campaign engine benchmark: the sharded binary-results path vs the same
// matrix driven through the DST/JSON path, plus the kill/resume smoke.
//
//   bench_campaign [seconds_per_run] [out.json]   perf mode (default)
//   bench_campaign --smoke [dir]                  kill/resume byte-identity
//
// Perf mode runs one scenario matrix twice on the same machine:
//   * campaign arm -- worker processes + ccdem-bin-v1 shard files +
//     streaming aggregates (one experiment per scenario);
//   * dst/json arm -- bench_dst_corpus's path: check_scenario serially
//     (its oracle arms re-run each scenario several times) with a JSON
//     summary per run.
// It also times pure result serialization (binary encode vs JsonWriter)
// over synthetic records, and runs the campaign arm again with twice the
// seeds to show coordinator RSS is O(shards), not O(runs).  The report
// (schema `ccdem-bench-campaign-v1`) gates on campaign runs/wall-second
// >= 5x the dst/json arm.
//
// Smoke mode is the CI crash drill: run the matrix with one worker
// SIGKILLed mid-shard (no retry budget), resume from the manifest, run the
// same matrix uninterrupted in a second directory, and require the merged
// aggregates.bin files to be byte-identical.  Exits nonzero on any
// mismatch.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/aggregates.h"
#include "campaign/bin_format.h"
#include "campaign/campaign.h"
#include "campaign/coordinator.h"
#include "check/dst.h"
#include "harness/json_writer.h"
#include "sim/rng.h"

namespace {

namespace fs = std::filesystem;
using namespace ccdem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

campaign::CampaignSpec matrix(int seconds, int seeds) {
  campaign::CampaignSpec spec;
  spec.apps = {"Facebook"};
  spec.modes = {"section+boost", "naive"};
  spec.grids = {"9k"};
  spec.fault_scales = {0.0};
  spec.seeds.clear();
  for (int s = 1; s <= seeds; ++s) {
    spec.seeds.push_back(static_cast<std::uint64_t>(s));
  }
  spec.duration_ms = std::int64_t{1000} * seconds;
  spec.shards = 4;
  return spec;
}

std::uint64_t shard_bytes_on_disk(const campaign::CampaignSpec& spec,
                                  const fs::path& dir) {
  std::uint64_t total = 0;
  for (int s = 0; s < spec.shards; ++s) {
    std::error_code ec;
    const auto n = fs::file_size(dir / campaign::shard_file_name(s), ec);
    if (!ec) total += n;
  }
  return total;
}

// The old results path: one JSON object per run, like bench_dst_corpus's
// summary rows.
void write_result_json(harness::JsonWriter& w,
                       const campaign::ResultRecord& r) {
  w.begin_object();
  w.kv("scenario_index", r.scenario_index);
  w.kv("app", r.app);
  w.kv("mode", r.mode);
  w.kv("seed", r.seed);
  w.kv("duration_ms", r.duration_ms);
  w.kv("mean_power_mw", r.mean_power_mw);
  w.kv("mean_refresh_hz", r.mean_refresh_hz);
  w.kv("meter_error_rate", r.meter_error_rate);
  w.kv("response_mean_ms", r.response_mean_ms);
  w.kv("frames_composed", r.frames_composed);
  w.kv("content_frames", r.content_frames);
  w.kv("frames_posted", r.frames_posted);
  w.kv("rate_switches", r.rate_switches);
  w.kv("final_frame_hash", r.final_frame_hash);
  w.key("residency");
  w.begin_array();
  for (const campaign::RungResidency& rr : r.residency) {
    w.begin_array();
    w.value(std::int64_t{rr.hz});
    w.value(rr.seconds);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

campaign::ResultRecord synthetic_result(sim::Rng& rng, std::uint64_t i) {
  campaign::ResultRecord r;
  r.scenario_index = i;
  r.app = "Facebook";
  r.mode = "section+boost";
  r.seed = rng.next_u64();
  r.duration_ms = 2000;
  r.mean_power_mw = rng.uniform(100.0, 1500.0);
  r.mean_refresh_hz = rng.uniform(20.0, 60.0);
  r.meter_error_rate = rng.uniform(0.0, 0.1);
  r.response_mean_ms = rng.uniform(5.0, 40.0);
  r.frames_composed = rng.next_u64() % 1000;
  r.content_frames = rng.next_u64() % 1000;
  r.frames_posted = rng.next_u64() % 1000;
  r.rate_switches = rng.next_u64() % 100;
  r.final_frame_hash = rng.next_u64();
  r.residency = {{20, rng.uniform(0.0, 1.0)},
                 {40, rng.uniform(0.0, 1.0)},
                 {60, rng.uniform(0.0, 1.0)}};
  return r;
}

struct SerializationArm {
  double seconds = 0;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  [[nodiscard]] double records_per_second() const {
    return seconds > 0 ? static_cast<double>(records) / seconds : 0;
  }
};

// Repeats each serializer over the same record set until the measurement
// is comfortably above clock resolution.
void measure_serialization(SerializationArm& bin, SerializationArm& json) {
  sim::Rng rng(7);
  std::vector<campaign::Record> records;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    records.push_back(campaign::Record{synthetic_result(rng, i)});
  }
  const auto t_bin = Clock::now();
  while ((bin.seconds = seconds_since(t_bin)) < 0.2) {
    const std::string bytes = campaign::encode_all(records);
    bin.bytes += bytes.size();
    bin.records += records.size();
  }
  const auto t_json = Clock::now();
  while ((json.seconds = seconds_since(t_json)) < 0.2) {
    std::ostringstream os;
    harness::JsonWriter w(os, /*indent=*/0);
    w.begin_array();
    for (const campaign::Record& r : records) {
      write_result_json(w, std::get<campaign::ResultRecord>(r));
    }
    w.end_array();
    json.bytes += os.str().size();
    json.records += records.size();
  }
}

int run_smoke(const fs::path& dir) {
  const campaign::CampaignSpec spec = matrix(/*seconds=*/1, /*seeds=*/10);
  std::cerr << "smoke: " << spec.size() << " scenarios over " << spec.shards
            << " shards, killing shard 1's worker mid-shard\n";
  fs::remove_all(dir);

  campaign::CampaignOptions killed;
  killed.workers = 2;
  killed.worker.threads = 2;
  killed.worker.chunk = 2;
  killed.worker.kill_after_runs = 1;  // raise(SIGKILL) after one result
  killed.kill_shard = 1;
  killed.max_shard_retries = 0;
  killed.isolate_crashes = false;
  killed.log = &std::cerr;
  const auto interrupted = campaign::run_campaign(spec, dir / "killed", killed);
  if (interrupted.complete) {
    std::cerr << "smoke: FAIL -- campaign completed despite the kill\n";
    return 1;
  }

  campaign::CampaignOptions resume;
  resume.workers = 2;
  resume.worker.threads = 2;
  resume.resume = true;
  resume.log = &std::cerr;
  const auto resumed = campaign::run_campaign(spec, dir / "killed", resume);
  if (!resumed.complete) {
    std::cerr << "smoke: FAIL -- resume did not complete: " << resumed.error
              << "\n";
    return 1;
  }

  campaign::CampaignOptions clean;
  clean.workers = 2;
  clean.worker.threads = 2;
  clean.log = &std::cerr;
  const auto uninterrupted =
      campaign::run_campaign(spec, dir / "clean", clean);
  if (!uninterrupted.complete) {
    std::cerr << "smoke: FAIL -- clean run did not complete: "
              << uninterrupted.error << "\n";
    return 1;
  }

  const auto killed_bytes =
      campaign::load_file(dir / "killed" / campaign::aggregates_file_name());
  const auto clean_bytes =
      campaign::load_file(dir / "clean" / campaign::aggregates_file_name());
  if (!killed_bytes || !clean_bytes || *killed_bytes != *clean_bytes) {
    std::cerr << "smoke: FAIL -- resumed aggregates.bin differs from the "
                 "uninterrupted run\n";
    return 1;
  }
  std::cerr << "smoke: OK -- " << resumed.runs << " runs, aggregates.bin "
            << "byte-identical (" << killed_bytes->size() << " bytes)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--smoke") {
    return run_smoke(argc > 2 ? fs::path(argv[2]) : fs::path("campaign_smoke"));
  }

  int seconds = 2;
  if (argc > 1 && std::atoi(argv[1]) > 0) seconds = std::atoi(argv[1]);
  if (const char* env = std::getenv("CCDEM_BENCH_SECONDS")) {
    if (std::atoi(env) > 0) seconds = std::atoi(env);
  }
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_campaign.json";

  const campaign::CampaignSpec spec = matrix(seconds, /*seeds=*/6);
  const fs::path dir = "bench_campaign_dir";
  fs::remove_all(dir);

  // Arm 1: the campaign engine (worker processes, binary shard files).
  campaign::CampaignOptions options;
  options.workers = 2;
  options.worker.threads = 2;
  const auto t_campaign = Clock::now();
  const auto result = campaign::run_campaign(spec, dir / "small", options);
  const double campaign_s = seconds_since(t_campaign);
  if (!result.complete) {
    std::cerr << "bench_campaign: campaign failed: " << result.error << "\n";
    return 1;
  }
  const std::uint64_t bin_bytes = shard_bytes_on_disk(spec, dir / "small");

  // Arm 2: double the seeds, same shard count -- coordinator RSS must stay
  // flat (streaming aggregates are O(shards), nothing per-run survives).
  // Runs before the in-process DST arm so its simulations cannot pollute
  // the coordinator's VmHWM reading.
  campaign::CampaignSpec big = spec;
  for (int s = 7; s <= 12; ++s) {
    big.seeds.push_back(static_cast<std::uint64_t>(s));
  }
  const auto big_result = campaign::run_campaign(big, dir / "big", options);
  if (!big_result.complete) {
    std::cerr << "bench_campaign: 2x campaign failed: " << big_result.error
              << "\n";
    return 1;
  }

  // Arm 3: the same matrix through the DST path with per-run JSON, as
  // bench_dst_corpus drives it (its oracles re-run each scenario; that
  // serial redundancy is exactly what the campaign engine removes).
  check::CheckOptions check_options;
  std::uint64_t json_bytes = 0;
  std::uint64_t dst_failures = 0;
  const auto t_dst = Clock::now();
  for (std::uint64_t i = 0; i < spec.size(); ++i) {
    const check::CheckReport report =
        check::check_scenario(spec.scenario_at(i), check_options);
    if (!report.ok()) ++dst_failures;
    std::ostringstream os;
    harness::JsonWriter w(os, /*indent=*/0);
    w.begin_object();
    w.kv("scenario", static_cast<std::uint64_t>(i));
    w.kv("ok", report.ok());
    w.key("failures");
    w.begin_array();
    for (const std::string& f : report.failures) w.value(f);
    w.end_array();
    w.end_object();
    json_bytes += os.str().size();
  }
  const double dst_s = seconds_since(t_dst);

  SerializationArm ser_bin, ser_json;
  measure_serialization(ser_bin, ser_json);

  const double campaign_rps =
      campaign_s > 0 ? static_cast<double>(result.runs) / campaign_s : 0;
  const double dst_rps =
      dst_s > 0 ? static_cast<double>(spec.size()) / dst_s : 0;
  const double speedup = dst_rps > 0 ? campaign_rps / dst_rps : 0;
  // VmHWM is a process-lifetime high-water mark, so arm 3's reading
  // includes arm 1; flatness shows as a small ratio, not equality.
  const double rss_growth =
      result.peak_rss_kb > 0
          ? static_cast<double>(big_result.peak_rss_kb) /
                static_cast<double>(result.peak_rss_kb)
          : 0;
  const bool speedup_ok = speedup >= 5.0;
  const bool serialization_ok =
      ser_bin.records_per_second() >= 5.0 * ser_json.records_per_second();
  const bool gate_passed = speedup_ok && serialization_ok && dst_failures == 0;

  std::ofstream out(out_path);
  harness::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "ccdem-bench-campaign-v1");
  w.kv("seconds_per_run", std::int64_t{seconds});
  w.key("matrix");
  w.begin_object();
  w.kv("scenarios", spec.size());
  w.kv("shards", std::int64_t{spec.shards});
  w.kv("workers", std::int64_t{options.workers});
  w.end_object();
  w.key("campaign");
  w.begin_object();
  w.kv("wall_s", campaign_s);
  w.kv("runs", result.runs);
  w.kv("runs_per_wall_s", campaign_rps);
  w.kv("shard_bytes", bin_bytes);
  w.kv("bytes_per_run",
       static_cast<double>(bin_bytes) / static_cast<double>(result.runs));
  w.kv("peak_rss_kb", std::int64_t{result.peak_rss_kb});
  w.end_object();
  w.key("dst_json_path");
  w.begin_object();
  w.kv("wall_s", dst_s);
  w.kv("runs", spec.size());
  w.kv("runs_per_wall_s", dst_rps);
  w.kv("json_bytes_per_run",
       static_cast<double>(json_bytes) / static_cast<double>(spec.size()));
  w.kv("failures", dst_failures);
  w.end_object();
  w.key("rss_scaling");
  w.begin_object();
  w.kv("runs_1x", result.runs);
  w.kv("runs_2x", big_result.runs);
  w.kv("peak_rss_kb_1x", std::int64_t{result.peak_rss_kb});
  w.kv("peak_rss_kb_2x", std::int64_t{big_result.peak_rss_kb});
  w.kv("growth", rss_growth);
  w.end_object();
  w.key("serialization");
  w.begin_object();
  w.kv("bin_records_per_s", ser_bin.records_per_second());
  w.kv("json_records_per_s", ser_json.records_per_second());
  w.kv("bin_bytes_per_record", static_cast<double>(ser_bin.bytes) /
                                   static_cast<double>(ser_bin.records));
  w.kv("json_bytes_per_record", static_cast<double>(ser_json.bytes) /
                                    static_cast<double>(ser_json.records));
  w.end_object();
  w.kv("speedup_vs_dst_json", speedup);
  w.kv("speedup_gate", 5.0);
  w.kv("speedup_ok", speedup_ok);
  w.kv("serialization_ok", serialization_ok);
  w.kv("gate_passed", gate_passed);
  w.end_object();

  std::cerr << "bench_campaign: campaign " << campaign_rps
            << " runs/s vs dst/json " << dst_rps << " runs/s ("
            << speedup << "x), bin " << ser_bin.records_per_second()
            << " rec/s vs json " << ser_json.records_per_second()
            << " rec/s, rss " << result.peak_rss_kb << " -> "
            << big_result.peak_rss_kb << " kB; wrote " << out_path << "\n";
  fs::remove_all(dir);
  return gate_passed ? 0 : 1;
}
