// Fault-envelope sweep: power and delivered quality vs injected fault rate.
//
// The robustness layer (src/fault/, DESIGN.md section 9) promises that the
// self-healing control plane keeps the content-centric policy's quality
// intact across a realistic envelope of panel/input faults.  This bench
// measures that promise: it sweeps scaled multiples of the nominal
// FaultPlan over two representative workloads, records mean power, the
// display quality vs a clean fixed-60 Hz baseline, and every fault/recovery
// counter -- for a serial arm AND a work-stealing fleet arm, which must
// agree bit-exactly (fault injection is part of the reproducible contract).
//
// Writes BENCH_faults.json (schema ccdem-bench-faults-v1) and exits
// non-zero when the gate fails: serial/fleet counters diverging, or display
// quality at the nominal (1x) fault rate dropping below 95 %.
//
// Usage:  bench_fault_envelope [sim_seconds_per_run] [output.json]
//         CCDEM_BENCH_SECONDS / CCDEM_BENCH_OUT override the defaults
//         (20 s per run, ./BENCH_faults.json).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "apps/app_profiles.h"
#include "bench_common.h"
#include "fault/fault_plan.h"
#include "harness/json_writer.h"
#include "metrics/quality.h"
#include "obs/obs.h"

using namespace ccdem;

namespace {

/// Multiples of FaultPlan::nominal(); 0 is the clean control arm.
constexpr double kScales[] = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0};
constexpr double kNominalScale = 1.0;
constexpr double kQualityGatePct = 95.0;

/// Counters that must be scheduling-independent between the serial and
/// fleet arms (everything is, except pool.* which tracks worker reuse).
bool counters_identical(const obs::Counters& serial,
                        const obs::Counters& fleet) {
  for (const auto& [name, value] : fleet.snapshot().counters) {
    if (name.rfind("pool.", 0) == 0) continue;
    if (serial.value(name) != value) return false;
  }
  for (const auto& [name, value] : serial.snapshot().counters) {
    if (name.rfind("pool.", 0) == 0) continue;
    if (fleet.value(name) != value) return false;
  }
  return true;
}

struct Workload {
  std::string name;
  apps::AppSpec app;
};

/// A feed app (touch-driven bursts, long idle stretches where a stuck
/// panel is cheap to hide) and a game (sustained 30+ fps content where
/// every lost switch shows up in delivered quality immediately).
std::vector<Workload> workloads() {
  std::vector<Workload> v;
  v.push_back({"feed", apps::app_by_name("Facebook")});
  v.push_back({"game", apps::app_by_name("Jelly Splash")});
  return v;
}

harness::ExperimentConfig faulted_config(const Workload& w, int seconds,
                                         double scale) {
  harness::ExperimentConfig c = bench::make_config(
      w.app, harness::ControlMode::kSectionWithBoost, seconds, /*seed=*/1);
  if (scale > 0.0) c.fault = fault::FaultPlan::nominal().scaled(scale);
  return c;
}

struct AppCell {
  std::string name;
  double power_mw = 0.0;
  double quality_pct = 0.0;
  std::uint64_t rate_switches = 0;
};

struct ScaleRow {
  double scale = 0.0;
  std::vector<AppCell> apps;
  obs::Counters serial_counters;
  bool identical = false;

  [[nodiscard]] double min_quality_pct() const {
    double q = 100.0;
    for (const AppCell& a : apps) q = std::min(q, a.quality_pct);
    return q;
  }
};

const char* kReportedCounters[] = {
    "fault.switch_naks",      "fault.switch_delays",
    "fault.stuck_episodes",   "fault.capability_losses",
    "fault.touch_dropped",    "fault.touch_duplicated",
    "fault.touch_delayed",    "fault.meter_bitflips",
    "dpm.retries",            "dpm.retry_giveups",
    "dpm.watchdog_fallbacks", "dpm.safe_mode_entries",
};

std::string out_path(int argc, char** argv) {
  if (argc > 2) return argv[2];
  if (const char* env = std::getenv("CCDEM_BENCH_OUT")) return env;
  return "BENCH_faults.json";
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 20);
  const std::string path = out_path(argc, argv);
  const std::vector<Workload> loads = workloads();

  harness::print_bench_header(
      std::cout, "Fault envelope: power / quality vs injected fault rate",
      std::to_string(seconds) + " s per run, scales 0x-4x nominal");

  // Quality reference: a clean fixed-60 Hz run per workload.  The faulted
  // arms are judged against the content the app would have shown with no
  // rate control and no faults at all.
  std::vector<harness::ExperimentResult> ideal;
  for (const Workload& w : loads) {
    ideal.push_back(harness::run_experiment(bench::make_config(
        w.app, harness::ControlMode::kBaseline60, seconds, /*seed=*/1)));
  }

  std::vector<ScaleRow> rows;
  for (const double scale : kScales) {
    ScaleRow row;
    row.scale = scale;

    std::vector<harness::ExperimentConfig> configs;
    for (const Workload& w : loads) {
      configs.push_back(faulted_config(w, seconds, scale));
    }

    // Serial arm: one private sink per run, merged -- the ground truth.
    std::vector<harness::ExperimentResult> serial_results;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      harness::ExperimentConfig c = configs[i];
      obs::ObsSink sink;
      sink.spans.set_enabled(false);
      c.obs = &sink;
      serial_results.push_back(harness::run_experiment(c));
      row.serial_counters.merge(sink.counters);
    }

    // Fleet arm: same configs through the work-stealing runner; the
    // merged counters must match the serial totals exactly.
    harness::FleetRunner fleet;
    (void)fleet.run(configs);
    row.identical =
        counters_identical(row.serial_counters, fleet.stats().counters);

    for (std::size_t i = 0; i < loads.size(); ++i) {
      AppCell cell;
      cell.name = loads[i].name;
      cell.power_mw = serial_results[i].mean_power_mw;
      cell.quality_pct =
          metrics::compare_quality(ideal[i].content_rate,
                                   serial_results[i].content_rate)
              .display_quality_pct;
      cell.rate_switches = serial_results[i].rate_switches;
      row.apps.push_back(std::move(cell));
    }
    rows.push_back(std::move(row));
  }

  harness::TextTable table({"scale", "min quality %", "naks", "stuck",
                            "touch drops", "retries", "safe modes",
                            "counters"});
  for (const ScaleRow& r : rows) {
    table.add_row(
        {harness::fmt(r.scale, 2), harness::fmt(r.min_quality_pct(), 1),
         std::to_string(r.serial_counters.value("fault.switch_naks")),
         std::to_string(r.serial_counters.value("fault.stuck_episodes")),
         std::to_string(r.serial_counters.value("fault.touch_dropped")),
         std::to_string(r.serial_counters.value("dpm.retries")),
         std::to_string(r.serial_counters.value("dpm.safe_mode_entries")),
         r.identical ? "identical" : "DIVERGED"});
  }
  table.print(std::cout);

  bool all_identical = true;
  double quality_at_nominal = 100.0;
  std::uint64_t faults_at_nominal = 0;
  for (const ScaleRow& r : rows) {
    all_identical = all_identical && r.identical;
    if (r.scale == kNominalScale) {
      quality_at_nominal = r.min_quality_pct();
      for (const char* name : kReportedCounters) {
        faults_at_nominal += r.serial_counters.value(name);
      }
    }
  }
  const bool gate_passed = all_identical &&
                           quality_at_nominal >= kQualityGatePct &&
                           faults_at_nominal > 0;

  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  harness::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "ccdem-bench-faults-v1");
  w.kv("generated_by", "bench_fault_envelope");
  w.kv("sim_seconds_per_run", seconds);
  w.kv("quality_gate_pct", kQualityGatePct);
  w.key("scales");
  w.begin_array();
  for (const ScaleRow& r : rows) {
    w.begin_object();
    w.kv("scale", r.scale);
    w.kv("counters_identical", r.identical);
    w.kv("min_quality_pct", r.min_quality_pct());
    w.key("apps");
    w.begin_array();
    for (const AppCell& a : r.apps) {
      w.begin_object();
      w.kv("name", a.name);
      w.kv("power_mw", a.power_mw);
      w.kv("quality_pct", a.quality_pct);
      w.kv("rate_switches", a.rate_switches);
      w.end_object();
    }
    w.end_array();
    w.key("counters");
    w.begin_object();
    for (const char* name : kReportedCounters) {
      w.kv(name, r.serial_counters.value(name));
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.kv("all_counters_identical", all_identical);
  w.kv("quality_at_nominal_pct", quality_at_nominal);
  w.kv("faults_at_nominal", faults_at_nominal);
  w.kv("gate_passed", gate_passed);
  w.end_object();

  std::cout << "\nquality at nominal fault rate: "
            << harness::fmt(quality_at_nominal, 1) << " % (gate "
            << (gate_passed ? "PASSED" : "FAILED") << ")\nwrote " << path
            << "\n";
  return gate_passed ? 0 : 1;
}
