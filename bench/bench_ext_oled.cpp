// Extension: content-dependent OLED emission power.
//
// The Galaxy S3's panel is an AMOLED, where emission power tracks frame
// luminance (the axis explored by the paper's related work: Chameleon,
// FOCUS, OLED DVS).  This bench swaps the LCD-style constant panel term for
// the luma-proportional OLED model and verifies that the paper's refresh
// savings are orthogonal: the scheme saves a similar amount on dark and
// bright workloads, because it acts on the refresh/render path, not on
// emission.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "power/oled_panel_model.h"

// Run one A/B with the OLED emission model attached to both arms.
// The harness does not know about the OLED extension, so this bench wires
// the experiment manually through the substrate APIs.
#include "core/display_power_manager.h"
#include "display/display_panel.h"
#include "gfx/surface_flinger.h"
#include "input/input_dispatcher.h"
#include "input/monkey.h"
#include "metrics/frame_stats_recorder.h"
#include "power/monsoon_meter.h"
#include "sim/simulator.h"

using namespace ccdem;

namespace {

struct OledRun {
  double mean_power_mw = 0.0;
  double mean_luma = 0.0;
  std::uint64_t content_frames = 0;
};

OledRun run_oled(const apps::AppSpec& app, bool controlled, int seconds,
                 std::uint64_t seed) {
  sim::Simulator sim;
  sim::Rng root(seed);
  gfx::SurfaceFlinger flinger(apps::kGalaxyS3Screen);

  power::DevicePowerParams params = power::DevicePowerParams::galaxy_s3();
  params.panel_static_mw = 0.0;  // replaced by the emission model
  power::DevicePowerModel power(params, 60);
  power::OledPanelModel oled(power, power::OledParams::galaxy_s3_amoled());
  flinger.add_listener(&power);
  flinger.add_listener(&oled);

  metrics::FrameStatsRecorder recorder;
  flinger.add_listener(&recorder);

  display::DisplayPanel panel(sim, display::RefreshRateSet::galaxy_s3(), 60);
  panel.add_rate_listener(
      [&power](sim::Time t, int hz) { power.on_rate_change(t, hz); });

  gfx::Surface* surface = flinger.create_surface(
      app.name, gfx::Rect::of(apps::kGalaxyS3Screen), 0);
  apps::AppModel model(app, surface, &power, root.fork(1));
  panel.add_observer(display::VsyncPhase::kApp, &model);

  struct Composer final : display::VsyncObserver {
    explicit Composer(gfx::SurfaceFlinger& f) : f_(f) {}
    void on_vsync(sim::Time t, int) override { f_.on_vsync(t); }
    gfx::SurfaceFlinger& f_;
  } composer(flinger);
  panel.add_observer(display::VsyncPhase::kComposer, &composer);

  std::unique_ptr<core::DisplayPowerManager> dpm;
  if (controlled) {
    dpm = std::make_unique<core::DisplayPowerManager>(
        sim, panel, flinger,
        std::make_unique<core::SectionPolicy>(panel.rates()), &power);
  }

  input::InputDispatcher dispatcher(sim);
  if (dpm) dispatcher.add_listener(dpm.get());
  dispatcher.add_listener(&model);
  sim::Rng monkey_rng = root.fork(2);
  dispatcher.schedule_script(input::generate_monkey_script(
      monkey_rng, app.monkey, sim::seconds(seconds),
      apps::kGalaxyS3Screen));

  power::MonsoonMeter meter(sim, power);
  sim.run_for(sim::seconds(seconds));
  panel.stop();
  if (dpm) dpm->stop();
  meter.stop();

  return OledRun{meter.mean_power_mw(), oled.current_luma(),
                 flinger.content_frames()};
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 30);
  std::cout << "=== Extension: OLED content-dependent emission ("
            << seconds << " s per run) ===\n\n";

  harness::TextTable t({"App", "Scene brightness", "Baseline (mW)",
                        "Controlled (mW)", "Saved (mW)"});
  struct Entry {
    const char* app;
    double saved = 0;
  };
  std::vector<Entry> entries;

  // Dark game (GameScene's night background) vs bright feed UI.
  for (const char* name : {"Jelly Splash", "Cash Slide"}) {
    const apps::AppSpec app = apps::app_by_name(name);
    const OledRun base = run_oled(app, /*controlled=*/false, seconds, 15);
    const OledRun ctl = run_oled(app, /*controlled=*/true, seconds, 15);
    const double saved = base.mean_power_mw - ctl.mean_power_mw;
    t.add_row({name, base.mean_luma > 0.5 ? "bright" : "dark",
               harness::fmt(base.mean_power_mw, 0),
               harness::fmt(ctl.mean_power_mw, 0), harness::fmt(saved, 1)});
    entries.push_back({name, saved});
  }
  t.print(std::cout);

  std::cout << "\n[check] refresh-rate savings survive on an OLED panel: ";
  bool ok = true;
  for (const Entry& e : entries) ok = ok && e.saved > 50.0;
  std::cout << (ok ? "OK" : "UNEXPECTED") << "\n";
  std::cout << "\nEmission power follows content brightness; the proposed "
               "scheme's savings come\nfrom the refresh/render path and are "
               "additive with colour-domain schemes\n(Chameleon, FOCUS) -- "
               "the orthogonality the paper claims over its related work.\n";
  return 0;
}
