// Extension: content-dependent OLED emission power.
//
// The Galaxy S3's panel is an AMOLED, where emission power tracks frame
// luminance (the axis explored by the paper's related work: Chameleon,
// FOCUS, OLED DVS).  This bench swaps the LCD-style constant panel term for
// the luma-proportional OLED model and verifies that the paper's refresh
// savings are orthogonal: the scheme saves a similar amount on dark and
// bright workloads, because it acts on the refresh/render path, not on
// emission.
#include <iostream>

#include "bench_common.h"
#include "device/simulated_device.h"
#include "power/oled_panel_model.h"

using namespace ccdem;

namespace {

struct OledRun {
  double mean_power_mw = 0.0;
  double mean_luma = 0.0;
  std::uint64_t content_frames = 0;
};

OledRun run_oled(const apps::AppSpec& app, bool controlled, int seconds,
                 std::uint64_t seed) {
  device::DeviceConfig dc;
  dc.mode = controlled ? device::ControlMode::kSectionWithBoost
                       : device::ControlMode::kBaseline60;
  dc.seed = seed;
  dc.power.panel_static_mw = 0.0;  // replaced by the emission model
  dc.oled = power::OledParams::galaxy_s3_amoled();

  device::SimulatedDevice dev;
  dev.configure(dc);
  dev.install_app(app);
  dev.start_control();
  dev.schedule_monkey_script(app.monkey, sim::seconds(seconds));
  dev.run_for(sim::seconds(seconds));
  dev.finish();

  return OledRun{dev.meter()->mean_power_mw(),
                 dev.oled_model()->current_luma(),
                 dev.flinger().content_frames()};
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 30);
  harness::print_bench_header(
      std::cout, "Extension: OLED content-dependent emission", seconds);

  harness::TextTable t({"App", "Scene brightness", "Baseline (mW)",
                        "Controlled (mW)", "Saved (mW)"});
  struct Entry {
    const char* app;
    double saved = 0;
  };
  std::vector<Entry> entries;

  // Dark game (GameScene's night background) vs bright feed UI.
  for (const char* name : {"Jelly Splash", "Cash Slide"}) {
    const apps::AppSpec app = apps::app_by_name(name);
    const OledRun base = run_oled(app, /*controlled=*/false, seconds, 15);
    const OledRun ctl = run_oled(app, /*controlled=*/true, seconds, 15);
    const double saved = base.mean_power_mw - ctl.mean_power_mw;
    t.add_row({name, base.mean_luma > 0.5 ? "bright" : "dark",
               harness::fmt(base.mean_power_mw, 0),
               harness::fmt(ctl.mean_power_mw, 0), harness::fmt(saved, 1)});
    entries.push_back({name, saved});
  }
  t.print(std::cout);

  std::cout << "\n[check] refresh-rate savings survive on an OLED panel: ";
  bool ok = true;
  for (const Entry& e : entries) ok = ok && e.saved > 50.0;
  std::cout << (ok ? "OK" : "UNEXPECTED") << "\n";
  std::cout << "\nEmission power follows content brightness; the proposed "
               "scheme's savings come\nfrom the refresh/render path and are "
               "additive with colour-domain schemes\n(Chameleon, FOCUS) -- "
               "the orthogonality the paper claims over its related work.\n";
  return 0;
}
