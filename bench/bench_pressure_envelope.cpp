// Pressure-envelope sweep: power, quality and ladder behaviour vs system
// pressure (thermal throttling, battery brownout, vsync jitter storms).
//
// The degradation ladder (src/core/policy_stages.h, DESIGN.md section 14)
// promises deterministic, rung-ordered shedding under pressure and a
// bounded-time return to rung 0 once the last episode clears.  This bench
// measures both halves: it sweeps scaled multiples of the nominal pressure
// plan over three representative workloads (a feed, a game and a video
// player), records power / delivered quality / every pressure and ladder
// counter for a serial arm AND a work-stealing fleet arm (which must agree
// bit-exactly), then runs a recovery leg per workload where the pressure
// horizon ends mid-run and the ladder must be back on rung 0 within the
// I8 recovery window.
//
// Writes BENCH_pressure.json (schema ccdem-bench-pressure-v1) and exits
// non-zero when the gate fails: serial/fleet counters diverging, display
// quality at the nominal (1x) pressure rate dropping below 95 %, no
// pressure activity at nominal, or a recovery leg that does not return to
// rung 0 inside the window.
//
// Usage:  bench_pressure_envelope [sim_seconds_per_run] [output.json]
//         CCDEM_BENCH_SECONDS / CCDEM_BENCH_OUT override the defaults
//         (20 s per run, ./BENCH_pressure.json).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "apps/app_profiles.h"
#include "bench_common.h"
#include "fault/fault_plan.h"
#include "harness/json_writer.h"
#include "metrics/quality.h"
#include "obs/obs.h"

using namespace ccdem;

namespace {

/// Multiples of FaultPlan::pressure_nominal(); 0 is the clean control arm.
constexpr double kScales[] = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0};
constexpr double kNominalScale = 1.0;
/// Recovery legs run at the stress end of the sweep so the ladder actually
/// climbs before the horizon -- recovery from rung 0 proves nothing.
constexpr double kRecoveryScale = 4.0;
constexpr double kQualityGatePct = 95.0;

/// Counters that must be scheduling-independent between the serial and
/// fleet arms (everything is, except pool.* which tracks worker reuse).
bool counters_identical(const obs::Counters& serial,
                        const obs::Counters& fleet) {
  for (const auto& [name, value] : fleet.snapshot().counters) {
    if (name.rfind("pool.", 0) == 0) continue;
    if (serial.value(name) != value) return false;
  }
  for (const auto& [name, value] : serial.snapshot().counters) {
    if (name.rfind("pool.", 0) == 0) continue;
    if (fleet.value(name) != value) return false;
  }
  return true;
}

struct Workload {
  std::string name;
  apps::AppSpec app;
};

/// A feed (bursty, mostly idle -- shedding boost is nearly free), a game
/// (sustained high content rate -- every capped rung costs quality) and a
/// video player (fixed cadence -- jitter storms hit delivered frames
/// directly).
std::vector<Workload> workloads() {
  std::vector<Workload> v;
  v.push_back({"feed", apps::app_by_name("Facebook")});
  v.push_back({"game", apps::app_by_name("Jelly Splash")});
  v.push_back({"video", apps::app_by_name("MX Player")});
  return v;
}

harness::ExperimentConfig pressured_config(const Workload& w, int seconds,
                                           double scale) {
  harness::ExperimentConfig c = bench::make_config(
      w.app, harness::ControlMode::kSectionWithBoost, seconds, /*seed=*/1);
  if (scale > 0.0) {
    c.fault = fault::FaultPlan::pressure_nominal().scaled(scale);
  }
  return c;
}

struct AppCell {
  std::string name;
  double power_mw = 0.0;
  double quality_pct = 0.0;
  std::uint64_t rate_switches = 0;
};

struct ScaleRow {
  double scale = 0.0;
  std::vector<AppCell> apps;
  obs::Counters serial_counters;
  bool identical = false;

  [[nodiscard]] double min_quality_pct() const {
    double q = 100.0;
    for (const AppCell& a : apps) q = std::min(q, a.quality_pct);
    return q;
  }
};

const char* kReportedCounters[] = {
    "pressure.thermal_episodes", "pressure.brownouts",
    "pressure.jitter_storms",    "pressure.vsync_dropped",
    "pressure.vsync_delayed",    "degrade.sheds",
    "degrade.recoveries",        "degrade.caps",
    "degrade.safe_modes",
};

/// Recovery leg result: pressure ends mid-run; I8 demands rung 0 again
/// within the bounded window and no further ladder motion after it.
struct RecoveryLeg {
  std::string name;
  std::int64_t deadline_ms = 0;        ///< pressure end + recovery window
  std::int64_t last_change_ms = -1;    ///< begin of the last kDegrade span
  double final_rung = 0.0;
  bool recovered = false;
};

/// Mirrors the I8 window: the longest residual episode plus a few full
/// hysteresis/cooldown rounds of slack.
std::int64_t recovery_window_ms(const harness::ExperimentConfig& c) {
  const std::int64_t eval_ms =
      c.dpm.meter.eval_period.ticks / sim::kTicksPerMillisecond;
  const std::int64_t cooldown_ms =
      c.dpm.ladder.recovery_cooldown.ticks / sim::kTicksPerMillisecond;
  return 1500 + 4 * (cooldown_ms + eval_ms) + 500;
}

RecoveryLeg run_recovery_leg(const Workload& w, int seconds) {
  harness::ExperimentConfig c = pressured_config(w, seconds, kRecoveryScale);
  const std::int64_t half_ticks = sim::seconds(seconds).ticks / 2;
  c.fault.pressure_until = sim::Time{half_ticks};

  obs::ObsSink sink;
  c.obs = &sink;
  (void)harness::run_experiment(c);

  RecoveryLeg leg;
  leg.name = w.name;
  leg.deadline_ms =
      half_ticks / sim::kTicksPerMillisecond + recovery_window_ms(c);
  for (const obs::Span& s : sink.spans.spans()) {
    if (s.phase != obs::Phase::kDegrade) continue;
    leg.last_change_ms = s.begin.ticks / sim::kTicksPerMillisecond;
  }
  leg.final_rung = sink.counters.gauge_value("degrade.rung");
  leg.recovered =
      leg.final_rung == 0.0 &&
      (leg.last_change_ms < 0 || leg.last_change_ms <= leg.deadline_ms);
  return leg;
}

std::string out_path(int argc, char** argv) {
  if (argc > 2) return argv[2];
  if (const char* env = std::getenv("CCDEM_BENCH_OUT")) return env;
  return "BENCH_pressure.json";
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 20);
  const std::string path = out_path(argc, argv);
  const std::vector<Workload> loads = workloads();

  harness::print_bench_header(
      std::cout, "Pressure envelope: power / quality vs system pressure",
      std::to_string(seconds) + " s per run, scales 0x-4x nominal");

  // Quality reference: a clean fixed-60 Hz run per workload.  The
  // pressured arms are judged against the content the app would have shown
  // with no rate control and no pressure at all.
  std::vector<harness::ExperimentResult> ideal;
  for (const Workload& w : loads) {
    ideal.push_back(harness::run_experiment(bench::make_config(
        w.app, harness::ControlMode::kBaseline60, seconds, /*seed=*/1)));
  }

  std::vector<ScaleRow> rows;
  for (const double scale : kScales) {
    ScaleRow row;
    row.scale = scale;

    std::vector<harness::ExperimentConfig> configs;
    for (const Workload& w : loads) {
      configs.push_back(pressured_config(w, seconds, scale));
    }

    // Serial arm: one private sink per run, merged -- the ground truth.
    std::vector<harness::ExperimentResult> serial_results;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      harness::ExperimentConfig c = configs[i];
      obs::ObsSink sink;
      sink.spans.set_enabled(false);
      c.obs = &sink;
      serial_results.push_back(harness::run_experiment(c));
      row.serial_counters.merge(sink.counters);
    }

    // Fleet arm: same configs through the work-stealing runner; the
    // merged counters must match the serial totals exactly.
    harness::FleetRunner fleet;
    (void)fleet.run(configs);
    row.identical =
        counters_identical(row.serial_counters, fleet.stats().counters);

    for (std::size_t i = 0; i < loads.size(); ++i) {
      AppCell cell;
      cell.name = loads[i].name;
      cell.power_mw = serial_results[i].mean_power_mw;
      cell.quality_pct =
          metrics::compare_quality(ideal[i].content_rate,
                                   serial_results[i].content_rate)
              .display_quality_pct;
      cell.rate_switches = serial_results[i].rate_switches;
      row.apps.push_back(std::move(cell));
    }
    rows.push_back(std::move(row));
  }

  harness::TextTable table({"scale", "min quality %", "thermal", "brownout",
                            "jitter", "sheds", "safe modes", "counters"});
  for (const ScaleRow& r : rows) {
    table.add_row(
        {harness::fmt(r.scale, 2), harness::fmt(r.min_quality_pct(), 1),
         std::to_string(r.serial_counters.value("pressure.thermal_episodes")),
         std::to_string(r.serial_counters.value("pressure.brownouts")),
         std::to_string(r.serial_counters.value("pressure.jitter_storms")),
         std::to_string(r.serial_counters.value("degrade.sheds")),
         std::to_string(r.serial_counters.value("degrade.safe_modes")),
         r.identical ? "identical" : "DIVERGED"});
  }
  table.print(std::cout);

  // Recovery legs: pressure horizon at mid-run, nominal scale.
  std::vector<RecoveryLeg> legs;
  bool all_recovered = true;
  for (const Workload& w : loads) {
    legs.push_back(run_recovery_leg(w, seconds));
    all_recovered = all_recovered && legs.back().recovered;
  }
  std::cout << "\nrecovery legs (pressure ends at " << seconds / 2 << " s):\n";
  for (const RecoveryLeg& l : legs) {
    std::cout << "  " << l.name << ": last rung change "
              << (l.last_change_ms < 0 ? std::string("none")
                                       : std::to_string(l.last_change_ms) +
                                             " ms")
              << ", deadline " << l.deadline_ms << " ms, final rung "
              << harness::fmt(l.final_rung, 0) << " -> "
              << (l.recovered ? "recovered" : "STUCK") << "\n";
  }

  bool all_identical = true;
  double quality_at_nominal = 100.0;
  std::uint64_t pressure_at_nominal = 0;
  for (const ScaleRow& r : rows) {
    all_identical = all_identical && r.identical;
    if (r.scale == kNominalScale) {
      quality_at_nominal = r.min_quality_pct();
      for (const char* name : kReportedCounters) {
        pressure_at_nominal += r.serial_counters.value(name);
      }
    }
  }
  const bool gate_passed = all_identical &&
                           quality_at_nominal >= kQualityGatePct &&
                           pressure_at_nominal > 0 && all_recovered;

  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  harness::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "ccdem-bench-pressure-v1");
  w.kv("generated_by", "bench_pressure_envelope");
  w.kv("sim_seconds_per_run", seconds);
  w.kv("quality_gate_pct", kQualityGatePct);
  w.key("scales");
  w.begin_array();
  for (const ScaleRow& r : rows) {
    w.begin_object();
    w.kv("scale", r.scale);
    w.kv("counters_identical", r.identical);
    w.kv("min_quality_pct", r.min_quality_pct());
    w.key("apps");
    w.begin_array();
    for (const AppCell& a : r.apps) {
      w.begin_object();
      w.kv("name", a.name);
      w.kv("power_mw", a.power_mw);
      w.kv("quality_pct", a.quality_pct);
      w.kv("rate_switches", a.rate_switches);
      w.end_object();
    }
    w.end_array();
    w.key("counters");
    w.begin_object();
    for (const char* name : kReportedCounters) {
      w.kv(name, r.serial_counters.value(name));
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("recovery");
  w.begin_array();
  for (const RecoveryLeg& l : legs) {
    w.begin_object();
    w.kv("name", l.name);
    w.kv("deadline_ms", l.deadline_ms);
    w.kv("last_rung_change_ms", l.last_change_ms);
    w.kv("final_rung", l.final_rung);
    w.kv("recovered", l.recovered);
    w.end_object();
  }
  w.end_array();
  w.kv("all_counters_identical", all_identical);
  w.kv("quality_at_nominal_pct", quality_at_nominal);
  w.kv("pressure_at_nominal", pressure_at_nominal);
  w.kv("all_recovered", all_recovered);
  w.kv("gate_passed", gate_passed);
  w.end_object();

  std::cout << "\nquality at nominal pressure: "
            << harness::fmt(quality_at_nominal, 1) << " % (gate "
            << (gate_passed ? "PASSED" : "FAILED") << ")\nwrote " << path
            << "\n";
  return gate_passed ? 0 : 1;
}
