// Extension: touch-response latency.
//
// Dropped frames and content-rate ratios (Figs. 10-11) measure steady-state
// quality; this bench measures the *first-reaction* delay users feel: the
// time from a touch-down to the first content frame on screen.  A panel
// parked at 20 Hz bounds that delay at up to 50 ms plus the controller's
// ramp lag; touch boosting collapses it back toward the 60 Hz baseline.
#include <iostream>

#include "bench_common.h"

using namespace ccdem;

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 60);
  harness::print_bench_header(std::cout, "Extension: touch-response latency",
                              seconds);

  harness::TextTable t({"App", "Mode", "Mean (ms)", "p95 (ms)", "Max (ms)",
                        "Interactions"});
  struct Probe {
    const char* app;
    double base_p95 = 0, section_p95 = 0, boost_p95 = 0, fast_p95 = 0;
  };
  std::vector<Probe> probes;

  for (const char* name : {"Facebook", "Jelly Splash", "KakaoTalk"}) {
    Probe probe;
    probe.app = name;
    const apps::AppSpec app = apps::app_by_name(name);
    for (const auto mode : {harness::ControlMode::kBaseline60,
                            harness::ControlMode::kSection,
                            harness::ControlMode::kSectionWithBoost}) {
      const auto r = harness::run_experiment(
          bench::make_config(app, mode, seconds, /*seed=*/23));
      t.add_row({name, harness::control_mode_name(mode),
                 harness::fmt(r.response_mean_ms),
                 harness::fmt(r.response_p95_ms),
                 harness::fmt(r.response_max_ms),
                 std::to_string(r.response_interactions)});
      switch (mode) {
        case harness::ControlMode::kBaseline60:
          probe.base_p95 = r.response_p95_ms;
          break;
        case harness::ControlMode::kSection:
          probe.section_p95 = r.response_p95_ms;
          break;
        default:
          probe.boost_p95 = r.response_p95_ms;
          break;
      }
    }
    // Fourth arm: boosting on a fast-exit panel (a rate increase retimes
    // the next V-Sync instead of waiting out the old period).
    auto fast_cfg = bench::make_config(
        app, harness::ControlMode::kSectionWithBoost, seconds, /*seed=*/23);
    fast_cfg.fast_rate_up = true;
    const auto rf = harness::run_experiment(fast_cfg);
    t.add_row({name, "boost+fast-exit", harness::fmt(rf.response_mean_ms),
               harness::fmt(rf.response_p95_ms),
               harness::fmt(rf.response_max_ms),
               std::to_string(rf.response_interactions)});
    probe.fast_p95 = rf.response_p95_ms;
    probes.push_back(probe);
  }
  t.print(std::cout);
  std::cout << "\n";

  // Per-app p95 is noisy (for games the first reaction frame waits on the
  // *logic* tick, not the panel), so judge with a tolerance and also pool.
  // Key physical fact this bench demonstrates: on a boundary-switching
  // panel (the paper's S3), the boost cannot accelerate the FIRST frame
  // after a touch -- the rate change itself waits for the old period to
  // finish.  Boosting protects the frames after it (Figs. 7/10); only a
  // fast-exit panel pulls the first-frame latency down as well.
  double section_sum = 0.0, boost_sum = 0.0, fast_sum = 0.0;
  for (const Probe& p : probes) {
    section_sum += p.section_p95;
    boost_sum += p.boost_p95;
    fast_sum += p.fast_p95;
    std::cout << "[check] " << p.app
              << ": boosted first-frame latency near section's ("
              << harness::fmt(p.base_p95) << " / "
              << harness::fmt(p.section_p95) << " / "
              << harness::fmt(p.boost_p95) << " / "
              << harness::fmt(p.fast_p95)
              << " ms base/section/boost/boost+fast, "
              << (p.boost_p95 <= p.section_p95 + 15.0 ? "OK" : "UNEXPECTED")
              << ")\n";
  }
  std::cout << "[check] fast-exit panel restores first-frame latency "
               "(pooled p95 vs section): "
            << harness::fmt(fast_sum / probes.size()) << " vs "
            << harness::fmt(section_sum / probes.size()) << " ms ("
            << (fast_sum <= section_sum + 5.0 * probes.size()
                    ? "OK"
                    : "UNEXPECTED")
            << ")\n";
  std::cout << "\nOn the S3's boundary-switching panel the booster's value "
               "is sustained burst\ndelivery (dropped frames, Figs. 7/10), "
               "not the first frame; pair it with\nfast-exit hardware and "
               "the first frame recovers too.\n";
  return 0;
}
