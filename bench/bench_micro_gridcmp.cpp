// Micro-benchmark (google-benchmark): raw cost of the grid comparison on
// this host, for each of Fig. 6's grid configurations, and of the
// row-span compare/copy kernels for every runtime-dispatchable variant
// (scalar / sse2 / avx2 / neon as available on the host).
//
// The absolute times on a desktop CPU are far below the Galaxy S3's (the
// device-side curve lives in core::MeteringCostModel); what this bench
// validates is the *shape*: cost grows monotonically with the sampled pixel
// count, full-resolution comparison costs orders of magnitude more than the
// sparse grids, and the wider SIMD variants dominate scalar on contiguous
// spans while producing (by the kernel oracle) byte-identical results.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/grid_sampler.h"
#include "gfx/compare.h"
#include "gfx/framebuffer.h"
#include "sim/rng.h"

namespace {

using namespace ccdem;

constexpr gfx::Size kScreen{720, 1280};

gfx::Framebuffer make_noise_frame(std::uint64_t seed) {
  gfx::Framebuffer fb(kScreen);
  sim::Rng rng(seed);
  for (int y = 0; y < fb.height(); ++y) {
    for (auto& px : fb.row(y)) {
      px = gfx::Rgb888::from_packed(
          static_cast<std::uint32_t>(rng.next_u64()));
    }
  }
  return fb;
}

core::GridSpec spec_for(int idx) {
  const auto sweep = core::GridSpec::figure6_sweep();
  return sweep[static_cast<std::size_t>(idx)];
}

/// Worst case for `differs`: identical frames force a full scan.
void BM_GridCompare_Identical(benchmark::State& state) {
  const core::GridSampler sampler(kScreen, spec_for(static_cast<int>(state.range(0))));
  const gfx::Framebuffer fb = make_noise_frame(1);
  std::vector<gfx::Rgb888> prev;
  sampler.sample(fb, prev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.differs(fb, prev));
  }
  state.SetLabel(sampler.grid().label());
  state.counters["pixels"] =
      static_cast<double>(sampler.sample_count());
}
BENCHMARK(BM_GridCompare_Identical)->DenseRange(0, 4);

/// Typical case: frames differ somewhere, allowing early exit.
void BM_GridCompare_Different(benchmark::State& state) {
  const core::GridSampler sampler(kScreen, spec_for(static_cast<int>(state.range(0))));
  const gfx::Framebuffer fb = make_noise_frame(1);
  const gfx::Framebuffer fb2 = make_noise_frame(2);
  std::vector<gfx::Rgb888> prev;
  sampler.sample(fb2, prev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.differs(fb, prev));
  }
  state.SetLabel(sampler.grid().label());
}
BENCHMARK(BM_GridCompare_Different)->DenseRange(0, 4);

/// Cost of extracting the samples (the capture half of the double buffer).
void BM_GridSample(benchmark::State& state) {
  const core::GridSampler sampler(kScreen, spec_for(static_cast<int>(state.range(0))));
  const gfx::Framebuffer fb = make_noise_frame(1);
  std::vector<gfx::Rgb888> out;
  for (auto _ : state) {
    sampler.sample(fb, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(sampler.grid().label());
}
BENCHMARK(BM_GridSample)->DenseRange(0, 4);

// --- per-kernel-variant sweep ----------------------------------------------
// Registered once per entry of available_kernels(), so the reported names
// (e.g. BM_RowsEqual/avx2) directly compare the dispatch table's options on
// this host.  Each benchmark pins the variant with ScopedKernelOverride for
// its duration; everything else (buffers, rects) is identical.

/// Full-frame equality through the dispatched rows_equal -- the worst case
/// (equal buffers, no early-out) and the memoization verify's hot loop.
void BM_RowsEqual(benchmark::State& state, const gfx::kernels::KernelOps& ops) {
  const gfx::kernels::ScopedKernelOverride pin(ops);
  const gfx::Framebuffer a = make_noise_frame(1);
  const gfx::Framebuffer b = a;
  const gfx::Rect full = gfx::Rect::of(kScreen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gfx::kernels::rows_equal(
        a.pixels().data(), b.pixels().data(), a.width(), full));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          full.area() * 3);
}

/// A 64x64 tile compare at an unaligned offset -- the tile cache's verify
/// granule, exercising the offset/stride path rather than one flat span.
void BM_TileVerify(benchmark::State& state,
                   const gfx::kernels::KernelOps& ops) {
  const gfx::kernels::ScopedKernelOverride pin(ops);
  const gfx::Framebuffer a = make_noise_frame(1);
  const gfx::Framebuffer b = a;
  const gfx::Rect tile{131, 257, 64, 64};
  for (auto _ : state) {
    benchmark::DoNotOptimize(gfx::kernels::rows_equal_offset(
        a.pixels().data(), a.width(), tile, b.pixels().data(), b.width(),
        gfx::Point{tile.x, tile.y}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          tile.area() * 3);
}

/// The compose copy: a half-screen window blit through copy_rows.
void BM_CopyRows(benchmark::State& state, const gfx::kernels::KernelOps& ops) {
  const gfx::kernels::ScopedKernelOverride pin(ops);
  const gfx::Framebuffer src = make_noise_frame(1);
  gfx::Framebuffer dst(kScreen);
  const gfx::kernels::CopyWindow w{gfx::Point{7, 11}, gfx::Point{13, 5},
                                   gfx::Size{kScreen.width - 20,
                                             kScreen.height / 2}};
  for (auto _ : state) {
    gfx::kernels::copy_rows(dst.pixels_mut().data(), dst.width(),
                            src.pixels().data(), src.width(), w);
    benchmark::DoNotOptimize(dst.pixels_mut().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          w.size.area() * 3);
}

/// Baseline the paper rejects: full-framebuffer equality (identical frames,
/// no early exit) through Framebuffer::equals, which dispatches too.
void BM_FullFrameEquals(benchmark::State& state,
                        const gfx::kernels::KernelOps& ops) {
  const gfx::kernels::ScopedKernelOverride pin(ops);
  const gfx::Framebuffer a = make_noise_frame(1);
  const gfx::Framebuffer b = a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.equals(b));
  }
}

void register_variant_benchmarks() {
  for (const gfx::kernels::KernelOps* ops :
       gfx::kernels::available_kernels()) {
    const std::string suffix = std::string("/") + ops->name;
    benchmark::RegisterBenchmark(("BM_RowsEqual" + suffix).c_str(),
                                 BM_RowsEqual, *ops);
    benchmark::RegisterBenchmark(("BM_TileVerify" + suffix).c_str(),
                                 BM_TileVerify, *ops);
    benchmark::RegisterBenchmark(("BM_CopyRows" + suffix).c_str(),
                                 BM_CopyRows, *ops);
    benchmark::RegisterBenchmark(("BM_FullFrameEquals" + suffix).c_str(),
                                 BM_FullFrameEquals, *ops);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_variant_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
