// Micro-benchmark (google-benchmark): raw cost of the grid comparison on
// this host, for each of Fig. 6's grid configurations.
//
// The absolute times on a desktop CPU are far below the Galaxy S3's (the
// device-side curve lives in core::MeteringCostModel); what this bench
// validates is the *shape*: cost grows monotonically with the sampled pixel
// count, and the full-resolution comparison costs orders of magnitude more
// than the sparse grids.
#include <benchmark/benchmark.h>

#include "core/grid_sampler.h"
#include "gfx/framebuffer.h"
#include "sim/rng.h"

namespace {

using namespace ccdem;

constexpr gfx::Size kScreen{720, 1280};

gfx::Framebuffer make_noise_frame(std::uint64_t seed) {
  gfx::Framebuffer fb(kScreen);
  sim::Rng rng(seed);
  for (int y = 0; y < fb.height(); ++y) {
    for (auto& px : fb.row(y)) {
      px = gfx::Rgb888::from_packed(
          static_cast<std::uint32_t>(rng.next_u64()));
    }
  }
  return fb;
}

core::GridSpec spec_for(int idx) {
  const auto sweep = core::GridSpec::figure6_sweep();
  return sweep[static_cast<std::size_t>(idx)];
}

/// Worst case for `differs`: identical frames force a full scan.
void BM_GridCompare_Identical(benchmark::State& state) {
  const core::GridSampler sampler(kScreen, spec_for(static_cast<int>(state.range(0))));
  const gfx::Framebuffer fb = make_noise_frame(1);
  std::vector<gfx::Rgb888> prev;
  sampler.sample(fb, prev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.differs(fb, prev));
  }
  state.SetLabel(sampler.grid().label());
  state.counters["pixels"] =
      static_cast<double>(sampler.sample_count());
}
BENCHMARK(BM_GridCompare_Identical)->DenseRange(0, 4);

/// Typical case: frames differ somewhere, allowing early exit.
void BM_GridCompare_Different(benchmark::State& state) {
  const core::GridSampler sampler(kScreen, spec_for(static_cast<int>(state.range(0))));
  const gfx::Framebuffer fb = make_noise_frame(1);
  const gfx::Framebuffer fb2 = make_noise_frame(2);
  std::vector<gfx::Rgb888> prev;
  sampler.sample(fb2, prev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.differs(fb, prev));
  }
  state.SetLabel(sampler.grid().label());
}
BENCHMARK(BM_GridCompare_Different)->DenseRange(0, 4);

/// Cost of extracting the samples (the capture half of the double buffer).
void BM_GridSample(benchmark::State& state) {
  const core::GridSampler sampler(kScreen, spec_for(static_cast<int>(state.range(0))));
  const gfx::Framebuffer fb = make_noise_frame(1);
  std::vector<gfx::Rgb888> out;
  for (auto _ : state) {
    sampler.sample(fb, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(sampler.grid().label());
}
BENCHMARK(BM_GridSample)->DenseRange(0, 4);

/// Baseline the paper rejects: full-framebuffer memcmp.
void BM_FullFrameEquals(benchmark::State& state) {
  const gfx::Framebuffer a = make_noise_frame(1);
  const gfx::Framebuffer b = a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.equals(b));
  }
}
BENCHMARK(BM_FullFrameEquals);

}  // namespace

BENCHMARK_MAIN();
