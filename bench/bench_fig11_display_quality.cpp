// Figure 11: display quality -- the delivered content rate divided by the
// actual content rate, per app, with and without touch boosting.
//
// Paper claims regenerated here:
//  * with section control only, quality at the 80th percentile is > 55 %
//    (general) / > 85 % (games);
//  * with touch boosting, quality is > 95 % for 80 % of both categories and
//    > 90 % for all applications.
#include <iostream>

#include "bench_common.h"

using namespace ccdem;

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 40);
  harness::print_bench_header(std::cout, "Figure 11: display quality",
                              seconds);

  const std::vector<bench::AppEval> evals = bench::evaluate_all(seconds, 9);

  for (const bool games : {false, true}) {
    std::cout << (games ? "--- Game applications (Fig. 11b) ---\n"
                        : "--- General applications (Fig. 11a) ---\n");
    harness::TextTable t(
        {"App", "Section quality (%)", "+Boost quality (%)"});
    for (const auto& e : evals) {
      if (e.is_game() != games) continue;
      t.add_row({e.app.name,
                 harness::fmt(e.q_section.display_quality_pct),
                 harness::fmt(e.q_boost.display_quality_pct)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  double min_boost_quality = 100.0;
  for (const bool games : {false, true}) {
    std::vector<double> q_section, q_boost;
    for (const auto& e : evals) {
      if (e.is_game() != games) continue;
      q_section.push_back(e.q_section.display_quality_pct);
      q_boost.push_back(e.q_boost.display_quality_pct);
      min_boost_quality =
          std::min(min_boost_quality, e.q_boost.display_quality_pct);
    }
    // "maintained in more than X % for 80 % of apps" = 20th percentile.
    const double p20_section = metrics::percentile(q_section, 20.0);
    const double p20_boost = metrics::percentile(q_boost, 20.0);
    const char* label = games ? "games" : "general";
    std::cout << "[" << label << "] quality at 80 % of apps: section "
              << harness::fmt(p20_section) << " % (paper: > "
              << (games ? 85 : 55) << " %), +boost "
              << harness::fmt(p20_boost) << " % (paper: > 95 %)\n";
  }
  std::cout << "[check] minimum quality with boosting across all 30 apps: "
            << harness::fmt(min_boost_quality) << " % (paper: > 90 %, "
            << (min_boost_quality > 90.0 ? "OK" : "UNEXPECTED") << ")\n";
  return 0;
}
