// Extension: panel self-refresh (PSR) on top of the proposed system.
//
// The section table bottoms out at 20 Hz; with PSR the device powers the
// SoC-panel link down entirely once the content is fully static.  This
// bench runs static-heavy and animated workloads with the full system, with
// and without PSR, and reports the extra saving and the self-refresh
// residency.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/self_refresh_controller.h"
#include "display/display_panel.h"
#include "gfx/surface_flinger.h"
#include "input/input_dispatcher.h"
#include "input/monkey.h"
#include "power/monsoon_meter.h"
#include "sim/simulator.h"

using namespace ccdem;

namespace {

struct PsrRun {
  double mean_power_mw = 0.0;
  double residency_pct = 0.0;
  std::uint64_t entries = 0;
};

PsrRun run_one(const apps::AppSpec& app, bool with_psr, int seconds,
               std::uint64_t seed) {
  sim::Simulator sim;
  sim::Rng root(seed);
  gfx::SurfaceFlinger flinger(apps::kGalaxyS3Screen);
  power::DevicePowerModel power(
      power::DevicePowerParams::galaxy_s3_with_psr_link(), 60);
  flinger.add_listener(&power);

  display::DisplayPanel panel(sim, display::RefreshRateSet::galaxy_s3(), 60);
  panel.add_rate_listener(
      [&power](sim::Time t, int hz) { power.on_rate_change(t, hz); });

  gfx::Surface* surface = flinger.create_surface(
      app.name, gfx::Rect::of(apps::kGalaxyS3Screen), 0);
  apps::AppModel model(app, surface, &power, root.fork(1));
  panel.add_observer(display::VsyncPhase::kApp, &model);

  struct Composer final : display::VsyncObserver {
    explicit Composer(gfx::SurfaceFlinger& f) : f_(f) {}
    void on_vsync(sim::Time t, int) override { f_.on_vsync(t); }
    gfx::SurfaceFlinger& f_;
  } composer(flinger);
  panel.add_observer(display::VsyncPhase::kComposer, &composer);

  core::DisplayPowerManager dpm(
      sim, panel, flinger,
      std::make_unique<core::SectionPolicy>(panel.rates()), &power);

  std::unique_ptr<core::SelfRefreshController> psr;
  if (with_psr) {
    psr = std::make_unique<core::SelfRefreshController>(sim, flinger, power);
  }

  input::InputDispatcher dispatcher(sim);
  dispatcher.add_listener(&dpm);
  dispatcher.add_listener(&model);
  sim::Rng monkey_rng = root.fork(2);
  dispatcher.schedule_script(input::generate_monkey_script(
      monkey_rng, app.monkey, sim::seconds(seconds),
      apps::kGalaxyS3Screen));

  power::MonsoonMeter meter(sim, power);
  sim.run_for(sim::seconds(seconds));
  panel.stop();
  dpm.stop();
  if (psr) psr->stop();
  meter.stop();

  PsrRun r;
  r.mean_power_mw = meter.mean_power_mw();
  if (psr) {
    r.residency_pct = psr->time_in_self_refresh(sim.now()).seconds() /
                      static_cast<double>(seconds) * 100.0;
    r.entries = psr->entries();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 40);
  std::cout << "=== Extension: panel self-refresh (" << seconds
            << " s per run) ===\n\n";

  harness::TextTable t({"App", "No PSR (mW)", "With PSR (mW)",
                        "Extra saved (mW)", "PSR residency (%)", "Entries"});
  double static_extra = 0.0, game_extra = 0.0;
  for (const char* name :
       {"Tiny Flashlight", "PhotoWonder", "Facebook", "Jelly Splash"}) {
    apps::AppSpec app = apps::app_by_name(name);
    if (std::string(name) == "Tiny Flashlight") {
      // A flashlight left on: paints once, then never invalidates and is
      // never touched -- the ideal self-refresh resident.
      app.monkey.mean_gap_s = 1e9;
      app.idle_request_fps = 0.0;
      app.scene.idle_content_fps = 0.0;
    }
    const PsrRun off = run_one(app, false, seconds, 27);
    const PsrRun on = run_one(app, true, seconds, 27);
    const double extra = off.mean_power_mw - on.mean_power_mw;
    t.add_row({name, harness::fmt(off.mean_power_mw, 0),
               harness::fmt(on.mean_power_mw, 0), harness::fmt(extra, 1),
               harness::fmt(on.residency_pct, 1),
               std::to_string(on.entries)});
    if (std::string(name) == "Tiny Flashlight") static_extra = extra;
    if (std::string(name) == "Jelly Splash") game_extra = extra;
  }
  t.print(std::cout);

  std::cout << "\n[check] static content gains the most from PSR: "
            << harness::fmt(static_extra, 0) << " mW extra ("
            << (static_extra > 40.0 ? "OK" : "UNEXPECTED") << ")\n";
  std::cout << "[check] animated content is unaffected: "
            << harness::fmt(game_extra, 1) << " mW ("
            << (std::abs(game_extra) < 15.0 ? "OK" : "UNEXPECTED") << ")\n";
  std::cout << "\nPSR composes with the paper's scheme: the section table "
               "already parked the\npanel at 20 Hz; self-refresh removes "
               "the remaining link power whenever the\ncontent rate is "
               "exactly zero.\n";
  return 0;
}
