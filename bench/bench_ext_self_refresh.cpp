// Extension: panel self-refresh (PSR) on top of the proposed system.
//
// The section table bottoms out at 20 Hz; with PSR the device powers the
// SoC-panel link down entirely once the content is fully static.  This
// bench runs static-heavy and animated workloads with the full system, with
// and without PSR, and reports the extra saving and the self-refresh
// residency.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/self_refresh_controller.h"
#include "device/simulated_device.h"

using namespace ccdem;

namespace {

struct PsrRun {
  double mean_power_mw = 0.0;
  double residency_pct = 0.0;
  std::uint64_t entries = 0;
};

PsrRun run_one(const apps::AppSpec& app, bool with_psr, int seconds,
               std::uint64_t seed) {
  device::DeviceConfig dc;
  dc.mode = device::ControlMode::kSectionWithBoost;
  dc.seed = seed;
  dc.power = power::DevicePowerParams::galaxy_s3_with_psr_link();
  if (with_psr) dc.self_refresh = core::SelfRefreshConfig{};

  device::SimulatedDevice dev;
  dev.configure(dc);
  dev.install_app(app);
  dev.start_control();
  dev.schedule_monkey_script(app.monkey, sim::seconds(seconds));
  dev.run_for(sim::seconds(seconds));
  dev.finish();

  PsrRun r;
  r.mean_power_mw = dev.meter()->mean_power_mw();
  if (core::SelfRefreshController* psr = dev.psr()) {
    r.residency_pct = psr->time_in_self_refresh(dev.sim().now()).seconds() /
                      static_cast<double>(seconds) * 100.0;
    r.entries = psr->entries();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 40);
  harness::print_bench_header(std::cout, "Extension: panel self-refresh",
                              seconds);

  harness::TextTable t({"App", "No PSR (mW)", "With PSR (mW)",
                        "Extra saved (mW)", "PSR residency (%)", "Entries"});
  double static_extra = 0.0, game_extra = 0.0;
  for (const char* name :
       {"Tiny Flashlight", "PhotoWonder", "Facebook", "Jelly Splash"}) {
    apps::AppSpec app = apps::app_by_name(name);
    if (std::string(name) == "Tiny Flashlight") {
      // A flashlight left on: paints once, then never invalidates and is
      // never touched -- the ideal self-refresh resident.
      app.monkey.mean_gap_s = 1e9;
      app.idle_request_fps = 0.0;
      app.scene.idle_content_fps = 0.0;
    }
    const PsrRun off = run_one(app, false, seconds, 27);
    const PsrRun on = run_one(app, true, seconds, 27);
    const double extra = off.mean_power_mw - on.mean_power_mw;
    t.add_row({name, harness::fmt(off.mean_power_mw, 0),
               harness::fmt(on.mean_power_mw, 0), harness::fmt(extra, 1),
               harness::fmt(on.residency_pct, 1),
               std::to_string(on.entries)});
    if (std::string(name) == "Tiny Flashlight") static_extra = extra;
    if (std::string(name) == "Jelly Splash") game_extra = extra;
  }
  t.print(std::cout);

  std::cout << "\n[check] static content gains the most from PSR: "
            << harness::fmt(static_extra, 0) << " mW extra ("
            << (static_extra > 40.0 ? "OK" : "UNEXPECTED") << ")\n";
  std::cout << "[check] animated content is unaffected: "
            << harness::fmt(game_extra, 1) << " mW ("
            << (std::abs(game_extra) < 15.0 ? "OK" : "UNEXPECTED") << ")\n";
  std::cout << "\nPSR composes with the paper's scheme: the section table "
               "already parked the\npanel at 20 Hz; self-refresh removes "
               "the remaining link power whenever the\ncontent rate is "
               "exactly zero.\n";
  return 0;
}
