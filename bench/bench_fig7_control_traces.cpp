// Figure 7: content-rate and refresh-rate traces under (a/c) section-based
// control only and (b/d) section-based control plus touch boosting, for
// Facebook and Jelly Splash.
//
// Paper claims regenerated here:
//  * with section control only, the refresh rate tracks the content rate
//    but lags touch bursts, dropping frames;
//  * with touch boosting, large refresh-rate fluctuations appear (boost to
//    60 Hz on every touch) and frame dropping is significantly reduced.
#include <iostream>

#include "bench_common.h"

using namespace ccdem;

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 30);
  harness::print_bench_header(std::cout, "Figure 7: control traces", seconds,
                              "s runs");

  struct Drops {
    double section = 0.0;
    double boost = 0.0;
  };
  std::vector<std::pair<std::string, Drops>> summary;

  for (const char* name : {"Facebook", "Jelly Splash"}) {
    const apps::AppSpec app = apps::app_by_name(name);
    const auto base = harness::run_experiment(bench::make_config(
        app, harness::ControlMode::kBaseline60, seconds, /*seed=*/5));
    Drops drops;
    for (const auto mode : {harness::ControlMode::kSection,
                            harness::ControlMode::kSectionWithBoost}) {
      const auto r = harness::run_experiment(
          bench::make_config(app, mode, seconds, /*seed=*/5));
      std::cout << "--- " << name << ", "
                << harness::control_mode_name(mode) << " ---\n";
      harness::print_ascii_chart(std::cout, "content rate (fps, delivered)",
                                 r.content_rate, sim::seconds(1), sim::Time{},
                                 sim::Time{r.duration.ticks}, 60.0);
      harness::print_ascii_chart(std::cout, "refresh rate (Hz)",
                                 r.refresh_rate, sim::seconds(1), sim::Time{},
                                 sim::Time{r.duration.ticks}, 60.0);
      const auto q = metrics::compare_quality(base.content_rate,
                                              r.content_rate);
      std::cout << "dropped frames: " << harness::fmt(q.dropped_fps, 2)
                << " fps, quality " << harness::fmt(q.display_quality_pct, 1)
                << " %, mean refresh " << harness::fmt(r.mean_refresh_hz)
                << " Hz\n\n";
      if (mode == harness::ControlMode::kSection) {
        drops.section = q.dropped_fps;
      } else {
        drops.boost = q.dropped_fps;
      }
    }
    summary.emplace_back(name, drops);
  }

  for (const auto& [name, d] : summary) {
    std::cout << "[check] " << name
              << ": touch boosting reduces frame dropping ("
              << harness::fmt(d.section, 2) << " -> "
              << harness::fmt(d.boost, 2) << " fps, "
              << (d.boost <= d.section ? "OK" : "UNEXPECTED") << ")\n";
  }
  return 0;
}
