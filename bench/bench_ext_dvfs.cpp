// Extension: DVFS coupling between frame rate and per-frame render energy.
//
// The paper measures a real Galaxy S3, where lowering the frame rate also
// lets the CPU/GPU governor drop frequency -- per-frame energy falls with
// the rate.  Our default power model charges a constant energy per frame,
// which *understates* savings for redundancy-heavy apps.  This bench
// enables the coupling (AppSpec::dvfs_coupling) and shows per-app savings
// moving toward the paper's larger absolute numbers while all quality
// results hold.
#include <iostream>

#include "bench_common.h"

using namespace ccdem;

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 40);
  harness::print_bench_header(
      std::cout, "Extension: DVFS-coupled render energy", seconds);

  harness::TextTable t({"App", "Saved, flat energy (mW)",
                        "Saved, DVFS-coupled (mW)", "Quality (%)"});
  double flat_sum = 0.0, dvfs_sum = 0.0;
  int n = 0;
  for (const char* name :
       {"Cash Slide", "Daum Maps", "Jelly Splash", "Cookie Run",
        "PokoPang"}) {
    apps::AppSpec app = apps::app_by_name(name);

    auto cfg = bench::make_config(
        app, harness::ControlMode::kSectionWithBoost, seconds, /*seed=*/19);
    const harness::AbResult flat = harness::run_ab(cfg);

    app.dvfs_coupling = true;
    cfg.app = app;
    const harness::AbResult dvfs = harness::run_ab(cfg);

    t.add_row({name, harness::fmt(flat.saved_power_mw, 1),
               harness::fmt(dvfs.saved_power_mw, 1),
               harness::fmt(dvfs.quality.display_quality_pct)});
    flat_sum += flat.saved_power_mw;
    dvfs_sum += dvfs.saved_power_mw;
    ++n;
  }
  t.print(std::cout);

  std::cout << "\nMean saving: flat "
            << harness::fmt(flat_sum / n, 0) << " mW, DVFS-coupled "
            << harness::fmt(dvfs_sum / n, 0) << " mW\n";
  std::cout << "[check] DVFS coupling increases measured savings: "
            << (dvfs_sum > flat_sum ? "OK" : "UNEXPECTED") << "\n";
  std::cout << "\nThe paper's testbed includes this effect implicitly; with "
               "it enabled the\nabsolute per-app savings move toward the "
               "paper's larger figures (up to\n~440/530 mW maxima) while "
               "the ordering and quality results are unchanged.\n";
  return 0;
}
