// Extension: energy breakdown -- where do the savings come from?
//
// The paper reports total milliwatts; this bench decomposes them.  For each
// workload it prints per-component energy (SoC base, panel static, refresh
// scan-out, app render, composition, metering, ...) for the 60 Hz baseline
// and the full proposed system, showing that the savings come from exactly
// two places -- the refresh-proportional panel term and the V-Sync-capped
// app render term -- while the metering overhead stays negligible.
#include <iostream>

#include "bench_common.h"

using namespace ccdem;

namespace {

double to_mw(double mj, int seconds) {
  return mj / static_cast<double>(seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 40);
  harness::print_bench_header(std::cout, "Extension: energy breakdown",
                              seconds);

  for (const char* name : {"Jelly Splash", "Facebook"}) {
    const apps::AppSpec app = apps::app_by_name(name);
    const auto base = harness::run_experiment(bench::make_config(
        app, harness::ControlMode::kBaseline60, seconds, /*seed=*/37));
    const auto ctl = harness::run_experiment(bench::make_config(
        app, harness::ControlMode::kSectionWithBoost, seconds, /*seed=*/37));

    std::cout << "--- " << name << " (mW averaged over the run) ---\n";
    harness::TextTable t({"Component", "Baseline 60 Hz", "Proposed",
                          "Delta"});
    struct RowDef {
      const char* label;
      double base_mj;
      double ctl_mj;
    };
    const RowDef rows[] = {
        {"SoC base", base.energy.soc_base_mj, ctl.energy.soc_base_mj},
        {"panel static", base.energy.panel_static_mj,
         ctl.energy.panel_static_mj},
        {"refresh scan-out", base.energy.refresh_mj, ctl.energy.refresh_mj},
        {"app render", base.energy.render_mj, ctl.energy.render_mj},
        {"composition", base.energy.composition_mj,
         ctl.energy.composition_mj},
        {"touch handling", base.energy.touch_mj, ctl.energy.touch_mj},
        {"content metering", base.energy.meter_mj, ctl.energy.meter_mj},
        {"rate switches", base.energy.rate_switch_mj,
         ctl.energy.rate_switch_mj},
    };
    for (const RowDef& r : rows) {
      t.add_row({r.label, harness::fmt(to_mw(r.base_mj, seconds), 1),
                 harness::fmt(to_mw(r.ctl_mj, seconds), 1),
                 harness::fmt(to_mw(r.ctl_mj - r.base_mj, seconds), 1)});
    }
    t.add_row({"TOTAL", harness::fmt(to_mw(base.energy.total_mj(), seconds), 1),
               harness::fmt(to_mw(ctl.energy.total_mj(), seconds), 1),
               harness::fmt(to_mw(ctl.energy.total_mj() -
                                      base.energy.total_mj(),
                                  seconds),
                            1)});
    t.print(std::cout);

    const double refresh_saved =
        to_mw(base.energy.refresh_mj - ctl.energy.refresh_mj, seconds);
    const double render_saved =
        to_mw(base.energy.render_mj - ctl.energy.render_mj, seconds);
    const double meter_cost = to_mw(ctl.energy.meter_mj, seconds);
    std::cout << "[check] savings split between scan-out ("
              << harness::fmt(refresh_saved, 0) << " mW) and render ("
              << harness::fmt(render_saved, 0) << " mW): "
              << (refresh_saved > 20.0 && render_saved >= -1.0 ? "OK"
                                                               : "UNEXPECTED")
              << "\n";
    std::cout << "[check] metering overhead is small: "
              << harness::fmt(meter_cost, 1) << " mW ("
              << (meter_cost < 30.0 ? "OK" : "UNEXPECTED") << ")\n\n";
  }
  std::cout << "The SoC base and panel static terms cancel in the A/B "
               "difference -- every\nsaved milliwatt is attributable to the "
               "refresh and render paths, which is the\npaper's causal "
               "claim (\"eliminating redundant frames\") made visible.\n";
  return 0;
}
