// Wall-clock throughput baseline: how fast the simulator itself runs.
//
// Every other bench in this directory reproduces a *paper* result measured
// in simulated time; this one measures the host-side cost of simulating --
// simulated frames per wall-clock second, pixels composed/compared per
// second, and the per-stage pixel-traffic split -- across three
// representative workloads (static UI, feed scroll, game) for both serial
// execution and the FleetRunner.  It writes BENCH_throughput.json (schema
// below, versioned) so the perf trajectory of the repo is machine-readable
// and CI can fail on regressions; see DESIGN.md section 8.
//
// Usage:  bench_throughput [sim_seconds_per_run] [output.json]
//         CCDEM_BENCH_SECONDS / CCDEM_BENCH_OUT override the defaults
//         (30 s per run, ./BENCH_throughput.json).
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "apps/app_profiles.h"
#include "bench_common.h"
#include "harness/json_writer.h"
#include "obs/obs.h"

using namespace ccdem;

namespace {

/// Seeds per profile: enough runs to steady the wall-clock numbers and to
/// give the FleetRunner real work to spread across cores.
constexpr int kRunsPerProfile = 4;

struct Profile {
  std::string name;
  apps::AppSpec app;
  harness::ControlMode mode;
};

/// The three workload classes the hot path must serve: an almost-idle UI
/// (frames are mostly redundant -- the paper's motivating case), a
/// scroll-heavy feed (large vertical damage bands), and a sprite game
/// (scattered small damage at 60 Hz).
std::vector<Profile> profiles() {
  std::vector<Profile> v;
  v.push_back({"static_ui", apps::app_by_name("Auction"),
               harness::ControlMode::kSection});
  {
    apps::AppSpec feed = apps::app_by_name("Facebook");
    feed.monkey.swipe_probability = 0.9;  // drive the feed: swipes, not taps
    v.push_back({"feed_scroll", std::move(feed),
                 harness::ControlMode::kSection});
  }
  v.push_back({"game", apps::app_by_name("Jelly Splash"),
               harness::ControlMode::kSectionWithBoost});
  return v;
}

std::vector<harness::ExperimentConfig> make_configs(const Profile& p,
                                                    int seconds) {
  std::vector<harness::ExperimentConfig> configs;
  for (int i = 0; i < kRunsPerProfile; ++i) {
    configs.push_back(
        bench::make_config(p.app, p.mode, seconds, /*seed=*/1 + i));
  }
  return configs;
}

/// One measured arm (serial or fleet) over a profile's config set.
struct ArmResult {
  double wall_ms = 0.0;
  std::uint64_t sim_frames = 0;
  double sim_seconds = 0.0;
  obs::Counters counters;

  [[nodiscard]] double per_wall_s(double count) const {
    return wall_ms <= 0.0 ? 0.0 : count / (wall_ms / 1000.0);
  }
  [[nodiscard]] double frames_per_wall_s() const {
    return per_wall_s(static_cast<double>(sim_frames));
  }
};

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

ArmResult run_serial(const std::vector<harness::ExperimentConfig>& configs) {
  ArmResult r;
  obs::ObsSink sink;
  sink.spans.set_enabled(false);  // counters only; spans would skew timing
  const auto t0 = std::chrono::steady_clock::now();
  for (harness::ExperimentConfig c : configs) {
    c.obs = &sink;
    const harness::ExperimentResult res = harness::run_experiment(c);
    r.sim_frames += res.frames_composed;
    r.sim_seconds += res.duration.seconds();
  }
  r.wall_ms = elapsed_ms(t0);
  r.counters = sink.counters;
  return r;
}

ArmResult run_fleet(const std::vector<harness::ExperimentConfig>& configs) {
  ArmResult r;
  harness::FleetRunner fleet;
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<harness::ExperimentResult> results = fleet.run(configs);
  r.wall_ms = elapsed_ms(t0);
  for (const harness::ExperimentResult& res : results) {
    r.sim_frames += res.frames_composed;
    r.sim_seconds += res.duration.seconds();
  }
  r.counters = fleet.stats().counters;
  return r;
}

/// Counter totals must be scheduling-independent; only pool.* counters
/// legitimately differ (fleet workers share one device per thread).
bool counters_identical(const obs::Counters& serial,
                        const obs::Counters& fleet) {
  for (const auto& [name, value] : fleet.snapshot().counters) {
    if (name.rfind("pool.", 0) == 0) continue;
    if (serial.value(name) != value) return false;
  }
  for (const auto& [name, value] : serial.snapshot().counters) {
    if (name.rfind("pool.", 0) == 0) continue;
    if (fleet.value(name) != value) return false;
  }
  return true;
}

void write_arm(harness::JsonWriter& w, const ArmResult& r) {
  const std::uint64_t composed = r.counters.value("flinger.pixels_composed");
  const std::uint64_t compared = r.counters.value("meter.pixels_compared");
  const std::uint64_t skipped =
      r.counters.value("meter.pixels_compare_skipped");
  w.begin_object();
  w.kv("wall_ms", r.wall_ms);
  w.kv("sim_frames", r.sim_frames);
  w.kv("sim_seconds", r.sim_seconds);
  w.kv("frames_per_wall_s", r.frames_per_wall_s());
  w.kv("sim_seconds_per_wall_s", r.per_wall_s(r.sim_seconds));
  w.kv("pixels_composed_per_s", r.per_wall_s(static_cast<double>(composed)));
  w.kv("pixels_compared_per_s", r.per_wall_s(static_cast<double>(compared)));
  w.kv("pixels_compare_skipped_per_s",
       r.per_wall_s(static_cast<double>(skipped)));
  // Per-stage share of total pixel traffic (composed + compared); skipped
  // comparisons are work *avoided*, reported for the culling trend line.
  const double traffic = static_cast<double>(composed + compared);
  w.key("stage_shares");
  w.begin_object();
  w.kv("compose", traffic <= 0.0 ? 0.0 : static_cast<double>(composed) / traffic);
  w.kv("meter", traffic <= 0.0 ? 0.0 : static_cast<double>(compared) / traffic);
  w.end_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : r.counters.snapshot().counters) {
    if (name.rfind("flinger.", 0) == 0 || name.rfind("meter.", 0) == 0 ||
        name.rfind("panel.", 0) == 0) {
      w.kv(name, value);
    }
  }
  w.end_object();
  w.end_object();
}

std::string out_path(int argc, char** argv) {
  if (argc > 2) return argv[2];
  if (const char* env = std::getenv("CCDEM_BENCH_OUT")) return env;
  return "BENCH_throughput.json";
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 30);
  const std::string path = out_path(argc, argv);

  harness::print_bench_header(
      std::cout, "Wall-clock throughput baseline",
      std::to_string(seconds) + " s per run, " +
          std::to_string(kRunsPerProfile) + " runs per profile");

  struct Row {
    Profile profile;
    ArmResult serial;
    ArmResult fleet;
    bool identical = false;
  };
  std::vector<Row> rows;

  for (const Profile& p : profiles()) {
    // Untimed warm-up run: touches every allocation path once so the timed
    // arms measure steady state, not first-touch page faults.
    (void)harness::run_experiment(
        bench::make_config(p.app, p.mode, /*seconds=*/1));

    Row row;
    row.profile = p;
    row.serial = run_serial(make_configs(p, seconds));
    row.fleet = run_fleet(make_configs(p, seconds));
    row.identical = counters_identical(row.serial.counters,
                                       row.fleet.counters);
    rows.push_back(std::move(row));
  }

  harness::TextTable table({"profile", "app", "serial fps", "fleet fps",
                            "sim x realtime", "Mpx composed/s",
                            "Mpx compared/s", "counters"});
  for (const Row& r : rows) {
    table.add_row(
        {r.profile.name, r.profile.app.name,
         harness::fmt(r.serial.frames_per_wall_s(), 0),
         harness::fmt(r.fleet.frames_per_wall_s(), 0),
         harness::fmt(r.serial.per_wall_s(r.serial.sim_seconds), 1),
         harness::fmt(r.serial.per_wall_s(static_cast<double>(
                          r.serial.counters.value(
                              "flinger.pixels_composed"))) /
                          1e6,
                      1),
         harness::fmt(r.serial.per_wall_s(static_cast<double>(
                          r.serial.counters.value("meter.pixels_compared"))) /
                          1e6,
                      1),
         r.identical ? "identical" : "DIVERGED"});
  }
  table.print(std::cout);

  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  harness::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "ccdem-bench-throughput-v1");
  w.kv("generated_by", "bench_throughput");
  w.kv("sim_seconds_per_run", seconds);
  w.kv("runs_per_profile", kRunsPerProfile);
  w.key("profiles");
  w.begin_array();
  bool all_identical = true;
  for (const Row& r : rows) {
    all_identical = all_identical && r.identical;
    w.begin_object();
    w.kv("name", r.profile.name);
    w.kv("app", r.profile.app.name);
    w.kv("mode", harness::control_mode_name(r.profile.mode));
    w.key("serial");
    write_arm(w, r.serial);
    w.key("fleet");
    write_arm(w, r.fleet);
    w.kv("counters_identical", r.identical);
    w.kv("speedup_fleet_over_serial",
         r.serial.wall_ms <= 0.0 || r.fleet.wall_ms <= 0.0
             ? 0.0
             : r.serial.wall_ms / r.fleet.wall_ms);
    w.end_object();
  }
  w.end_array();
  w.kv("all_counters_identical", all_identical);
  w.end_object();

  std::cout << "\nwrote " << path << "\n";
  return all_identical ? 0 : 1;
}
