// Wall-clock throughput baseline: how fast the simulator itself runs.
//
// Every other bench in this directory reproduces a *paper* result measured
// in simulated time; this one measures the host-side cost of simulating --
// simulated frames per wall-clock second, pixels composed/compared per
// second, and the per-stage pixel-traffic split -- across four
// representative workloads (static UI, feed scroll, game, video) for
// serial execution, the FleetRunner, every runtime-dispatchable kernel
// variant, and a `reference` arm (scalar kernels, tile memoization off)
// equivalent to the pre-memoization hot path.  It writes
// BENCH_throughput.json (schema below, versioned) so the perf trajectory of
// the repo is machine-readable and CI can fail on regressions; see
// DESIGN.md sections 8 and 12.
//
// Usage:  bench_throughput [sim_seconds_per_run] [output.json]
//         CCDEM_BENCH_SECONDS / CCDEM_BENCH_OUT override the defaults
//         (30 s per run, ./BENCH_throughput.json).
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "apps/app_profiles.h"
#include "bench_common.h"
#include "gfx/compare.h"
#include "harness/json_writer.h"
#include "obs/obs.h"

using namespace ccdem;

namespace {

/// Seeds per profile: enough runs to steady the wall-clock numbers and to
/// give the FleetRunner real work to spread across cores.
constexpr int kRunsPerProfile = 4;

struct Profile {
  std::string name;
  apps::AppSpec app;
  harness::ControlMode mode;
};

/// The four workload classes the hot path must serve: an almost-idle UI
/// (frames are mostly redundant -- the paper's motivating case), a
/// scroll-heavy feed (large vertical damage bands), a sprite game
/// (scattered small damage at 60 Hz), and video playback (a full-width band
/// redrawn every decoded frame with high inter-frame coherence -- the tile
/// cache's showcase).
std::vector<Profile> profiles() {
  std::vector<Profile> v;
  v.push_back({"static_ui", apps::app_by_name("Auction"),
               harness::ControlMode::kSection});
  {
    apps::AppSpec feed = apps::app_by_name("Facebook");
    feed.monkey.swipe_probability = 0.9;  // drive the feed: swipes, not taps
    v.push_back({"feed_scroll", std::move(feed),
                 harness::ControlMode::kSection});
  }
  v.push_back({"game", apps::app_by_name("Jelly Splash"),
               harness::ControlMode::kSectionWithBoost});
  v.push_back({"video", apps::app_by_name("MX Player"),
               harness::ControlMode::kSection});
  return v;
}

/// Serial frames-per-wall-second of the immediate pre-PR tree, measured by
/// replaying this bench's exact workload recipe against a worktree checked
/// out just before the kernel-dispatch/memoization PR (same machine, same
/// default-configure build, 30 s per run, best of 3).  Kept in the source so
/// regeneration reproduces the comparison instead of losing it.
struct PrePrBaseline {
  const char* profile;
  double frames_per_wall_s;
};
constexpr PrePrBaseline kPrePr[] = {
    {"static_ui", 11333.0},
    {"feed_scroll", 9679.0},
    {"game", 18267.0},
    {"video", 3477.0},
};
constexpr const char* kPrePrNote =
    "serial throughput of the immediate pre-PR tree, replayed with this "
    "bench's recipe (same machine, default-configure build, 30 s runs, best "
    "of 3).  The pre-PR hot path was already damage-scoped and memcpy-bound, "
    "so the kernel/memoization work shifts per-stage pixel traffic (see "
    "pixels_written_per_s / pixels_compared_per_s) more than end-to-end "
    "frames/s -- see DESIGN.md section 12 for the bandwidth analysis.";

double pre_pr_fps(const std::string& profile) {
  for (const PrePrBaseline& b : kPrePr) {
    if (profile == b.profile) return b.frames_per_wall_s;
  }
  return 0.0;
}

/// 1 s smoke numbers for the CI regression gate (best of 3 on the recording
/// machine).  Short runs are setup-dominated, so CI compares equal-length
/// runs against this block, never against the 30 s numbers above.
struct SmokeBaseline {
  const char* profile;
  double frames_per_wall_s;
  double pixels_compared_per_frame;
};
constexpr SmokeBaseline kSmoke[] = {
    {"static_ui", 1166.49, 1813.091},
    {"feed_scroll", 1319.30, 2046.316},
    {"game", 5483.28, 293.425},
    {"video", 2449.57, 468.500},
};

std::vector<harness::ExperimentConfig> make_configs(const Profile& p,
                                                    int seconds,
                                                    bool tile_memo = true) {
  std::vector<harness::ExperimentConfig> configs;
  for (int i = 0; i < kRunsPerProfile; ++i) {
    harness::ExperimentConfig c =
        bench::make_config(p.app, p.mode, seconds, /*seed=*/1 + i);
    c.tile_memo = tile_memo;
    configs.push_back(std::move(c));
  }
  return configs;
}

/// One measured arm (serial, fleet, one kernel variant, or reference) over a
/// profile's config set.
struct ArmResult {
  double wall_ms = 0.0;
  std::uint64_t sim_frames = 0;
  double sim_seconds = 0.0;
  obs::Counters counters;

  [[nodiscard]] double per_wall_s(double count) const {
    return wall_ms <= 0.0 ? 0.0 : count / (wall_ms / 1000.0);
  }
  [[nodiscard]] double frames_per_wall_s() const {
    return per_wall_s(static_cast<double>(sim_frames));
  }
};

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

ArmResult run_serial(const std::vector<harness::ExperimentConfig>& configs,
                     const gfx::kernels::KernelOps* pin = nullptr) {
  ArmResult r;
  obs::ObsSink sink;
  sink.spans.set_enabled(false);  // counters only; spans would skew timing
  std::optional<gfx::kernels::ScopedKernelOverride> override_;
  if (pin != nullptr) override_.emplace(*pin);
  const auto t0 = std::chrono::steady_clock::now();
  for (harness::ExperimentConfig c : configs) {
    c.obs = &sink;
    const harness::ExperimentResult res = harness::run_experiment(c);
    r.sim_frames += res.frames_composed;
    r.sim_seconds += res.duration.seconds();
  }
  r.wall_ms = elapsed_ms(t0);
  r.counters = sink.counters;
  return r;
}

ArmResult run_fleet(const std::vector<harness::ExperimentConfig>& configs) {
  ArmResult r;
  harness::FleetRunner fleet;
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<harness::ExperimentResult> results = fleet.run(configs);
  r.wall_ms = elapsed_ms(t0);
  for (const harness::ExperimentResult& res : results) {
    r.sim_frames += res.frames_composed;
    r.sim_seconds += res.duration.seconds();
  }
  r.counters = fleet.stats().counters;
  return r;
}

/// Counter totals must be scheduling- and kernel-independent; only pool.*
/// counters legitimately differ (fleet workers share one device per
/// thread), and the reference arm additionally differs in the memo/meter
/// work counters the memoization exists to change.
bool counters_identical(const obs::Counters& a, const obs::Counters& b,
                        bool ignore_memo_work = false) {
  const auto ignored = [&](const std::string& name) {
    if (name.rfind("pool.", 0) == 0) return true;
    if (ignore_memo_work &&
        (name.rfind("flinger.memo.", 0) == 0 ||
         name.rfind("meter.pixels_", 0) == 0)) {
      return true;
    }
    return false;
  };
  for (const auto& [name, value] : b.snapshot().counters) {
    if (!ignored(name) && a.value(name) != value) return false;
  }
  for (const auto& [name, value] : a.snapshot().counters) {
    if (!ignored(name) && b.value(name) != value) return false;
  }
  return true;
}

void write_arm(harness::JsonWriter& w, const ArmResult& r) {
  const std::uint64_t composed = r.counters.value("flinger.pixels_composed");
  const std::uint64_t written =
      r.counters.value("flinger.memo.pixels_written");
  const std::uint64_t memo_skipped =
      r.counters.value("flinger.memo.pixels_skipped");
  const std::uint64_t compared = r.counters.value("meter.pixels_compared");
  const std::uint64_t skipped =
      r.counters.value("meter.pixels_compare_skipped");
  w.begin_object();
  w.kv("wall_ms", r.wall_ms);
  w.kv("sim_frames", r.sim_frames);
  w.kv("sim_seconds", r.sim_seconds);
  w.kv("frames_per_wall_s", r.frames_per_wall_s());
  w.kv("sim_seconds_per_wall_s", r.per_wall_s(r.sim_seconds));
  w.kv("pixels_composed_per_s", r.per_wall_s(static_cast<double>(composed)));
  w.kv("pixels_written_per_s", r.per_wall_s(static_cast<double>(written)));
  w.kv("pixels_memo_skipped_per_s",
       r.per_wall_s(static_cast<double>(memo_skipped)));
  w.kv("pixels_compared_per_s", r.per_wall_s(static_cast<double>(compared)));
  w.kv("pixels_compare_skipped_per_s",
       r.per_wall_s(static_cast<double>(skipped)));
  // Per-stage share of total pixel traffic (composed + compared); skipped
  // comparisons are work *avoided*, reported for the culling trend line.
  const double traffic = static_cast<double>(composed + compared);
  w.key("stage_shares");
  w.begin_object();
  w.kv("compose", traffic <= 0.0 ? 0.0 : static_cast<double>(composed) / traffic);
  w.kv("meter", traffic <= 0.0 ? 0.0 : static_cast<double>(compared) / traffic);
  w.end_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : r.counters.snapshot().counters) {
    if (name.rfind("flinger.", 0) == 0 || name.rfind("meter.", 0) == 0 ||
        name.rfind("panel.", 0) == 0) {
      w.kv(name, value);
    }
  }
  w.end_object();
  w.end_object();
}

std::string out_path(int argc, char** argv) {
  if (argc > 2) return argv[2];
  if (const char* env = std::getenv("CCDEM_BENCH_OUT")) return env;
  return "BENCH_throughput.json";
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 30);
  const std::string path = out_path(argc, argv);
  const auto& variants = gfx::kernels::available_kernels();

  harness::print_bench_header(
      std::cout, "Wall-clock throughput baseline",
      std::to_string(seconds) + " s per run, " +
          std::to_string(kRunsPerProfile) + " runs per profile, kernel " +
          gfx::kernels::active_kernels().name);

  struct Row {
    Profile profile;
    ArmResult serial;  // active kernel, memoization on
    ArmResult fleet;
    ArmResult reference;  // scalar kernels, memoization off (pre-PR path)
    std::vector<std::pair<std::string, ArmResult>> variant_arms;
    bool identical = false;           // serial vs fleet
    bool variants_identical = false;  // every variant vs serial, all counters
    bool reference_identical = false;  // reference vs serial, modulo memo work
  };
  std::vector<Row> rows;

  for (const Profile& p : profiles()) {
    // Untimed warm-up run: touches every allocation path once so the timed
    // arms measure steady state, not first-touch page faults.
    (void)harness::run_experiment(
        bench::make_config(p.app, p.mode, /*seconds=*/1));

    Row row;
    row.profile = p;
    row.serial = run_serial(make_configs(p, seconds));
    row.fleet = run_fleet(make_configs(p, seconds));
    row.reference = run_serial(make_configs(p, seconds, /*tile_memo=*/false),
                               &gfx::kernels::scalar_kernels());
    row.identical = counters_identical(row.serial.counters,
                                       row.fleet.counters);
    row.reference_identical =
        counters_identical(row.serial.counters, row.reference.counters,
                           /*ignore_memo_work=*/true);
    row.variants_identical = true;
    for (const gfx::kernels::KernelOps* ops : variants) {
      ArmResult arm = run_serial(make_configs(p, seconds), ops);
      row.variants_identical =
          row.variants_identical &&
          counters_identical(row.serial.counters, arm.counters);
      row.variant_arms.emplace_back(ops->name, std::move(arm));
    }
    rows.push_back(std::move(row));
  }

  harness::TextTable table({"profile", "app", "serial fps", "fleet fps",
                            "ref fps", "speedup", "Mpx written/s",
                            "Mpx compared/s", "counters"});
  for (const Row& r : rows) {
    const double ref_fps = r.reference.frames_per_wall_s();
    table.add_row(
        {r.profile.name, r.profile.app.name,
         harness::fmt(r.serial.frames_per_wall_s(), 0),
         harness::fmt(r.fleet.frames_per_wall_s(), 0),
         harness::fmt(ref_fps, 0),
         harness::fmt(
             ref_fps <= 0.0 ? 0.0 : r.serial.frames_per_wall_s() / ref_fps,
             2),
         harness::fmt(r.serial.per_wall_s(static_cast<double>(
                          r.serial.counters.value(
                              "flinger.memo.pixels_written"))) /
                          1e6,
                      1),
         harness::fmt(r.serial.per_wall_s(static_cast<double>(
                          r.serial.counters.value("meter.pixels_compared"))) /
                          1e6,
                      1),
         r.identical && r.variants_identical && r.reference_identical
             ? "identical"
             : "DIVERGED"});
  }
  table.print(std::cout);
  std::cout << "kernel variants:";
  for (const gfx::kernels::KernelOps* ops : variants) {
    std::cout << " " << ops->name;
  }
  std::cout << " (active: " << gfx::kernels::active_kernels().name << ")\n";

  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  harness::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "ccdem-bench-throughput-v2");
  w.kv("generated_by", "bench_throughput");
  w.kv("sim_seconds_per_run", seconds);
  w.kv("runs_per_profile", kRunsPerProfile);
  w.kv("active_kernel", gfx::kernels::active_kernels().name);
  w.key("kernel_variants");
  w.begin_array();
  for (const gfx::kernels::KernelOps* ops : variants) w.value(ops->name);
  w.end_array();
  w.key("profiles");
  w.begin_array();
  bool all_identical = true;
  for (const Row& r : rows) {
    all_identical = all_identical && r.identical && r.variants_identical &&
                    r.reference_identical;
    w.begin_object();
    w.kv("name", r.profile.name);
    w.kv("app", r.profile.app.name);
    w.kv("mode", harness::control_mode_name(r.profile.mode));
    w.key("serial");
    write_arm(w, r.serial);
    w.key("fleet");
    write_arm(w, r.fleet);
    w.key("reference");
    write_arm(w, r.reference);
    w.key("variants");
    w.begin_object();
    for (const auto& [name, arm] : r.variant_arms) {
      w.key(name);
      write_arm(w, arm);
    }
    w.end_object();
    w.kv("counters_identical", r.identical);
    w.kv("variants_identical", r.variants_identical);
    w.kv("reference_identical", r.reference_identical);
    w.kv("speedup_fleet_over_serial",
         r.serial.wall_ms <= 0.0 || r.fleet.wall_ms <= 0.0
             ? 0.0
             : r.serial.wall_ms / r.fleet.wall_ms);
    w.kv("speedup_vs_reference",
         r.reference.frames_per_wall_s() <= 0.0
             ? 0.0
             : r.serial.frames_per_wall_s() /
                   r.reference.frames_per_wall_s());
    const double pre = pre_pr_fps(r.profile.name);
    w.kv("speedup_vs_pre_pr",
         pre <= 0.0 ? 0.0 : r.serial.frames_per_wall_s() / pre);
    w.end_object();
  }
  w.end_array();
  w.kv("all_counters_identical", all_identical);
  w.key("pre_pr_baseline");
  w.begin_object();
  w.kv("note", kPrePrNote);
  w.key("profiles");
  w.begin_object();
  for (const PrePrBaseline& b : kPrePr) {
    w.key(b.profile);
    w.begin_object();
    w.kv("frames_per_wall_s", b.frames_per_wall_s);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  w.key("smoke_baseline");
  w.begin_object();
  w.kv("note",
       "same bench at 1 simulated second per run (the CI perf-smoke cap); "
       "setup cost dominates short runs, so the CI gate compares "
       "equal-length runs against this block, not the 30 s numbers");
  w.kv("sim_seconds_per_run", 1);
  w.key("profiles");
  w.begin_object();
  for (const SmokeBaseline& b : kSmoke) {
    w.key(b.profile);
    w.begin_object();
    w.kv("frames_per_wall_s", b.frames_per_wall_s);
    w.kv("pixels_compared_per_frame", b.pixels_compared_per_frame);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  w.end_object();

  std::cout << "\nwrote " << path << "\n";
  return all_identical ? 0 : 1;
}
