// Extension: brightness sweep.
//
// The paper measures everything at 50 % brightness.  Backlight/emission
// power scales with brightness while the refresh/render path does not, so
// the proposed system's *absolute* saving should be nearly brightness-
// independent even though the *relative* saving shrinks on a bright screen.
// This bench sweeps brightness and reports both, plus seed-robustness
// statistics at the paper's measurement point.
#include <iostream>

#include "bench_common.h"

using namespace ccdem;

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 30);
  harness::print_bench_header(
      std::cout, "Extension: brightness sweep and seed robustness", seconds);

  const apps::AppSpec app = apps::app_by_name("Jelly Splash");

  harness::TextTable t({"Brightness (%)", "Baseline (mW)", "Saved (mW)",
                        "Saved (%)"});
  double saved_min = 1e9, saved_max = 0.0;
  for (const double b : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    auto cfg = bench::make_config(
        app, harness::ControlMode::kSectionWithBoost, seconds, /*seed=*/31);
    cfg.brightness = b;
    const harness::AbResult ab = harness::run_ab(cfg);
    t.add_row({harness::fmt(b * 100.0, 0),
               harness::fmt(ab.baseline.mean_power_mw, 0),
               harness::fmt(ab.saved_power_mw, 1),
               harness::fmt(ab.saved_power_pct, 1)});
    saved_min = std::min(saved_min, ab.saved_power_mw);
    saved_max = std::max(saved_max, ab.saved_power_mw);
  }
  t.print(std::cout);
  std::cout << "\n[check] absolute saving is brightness-independent "
               "(spread < 15 %): "
            << harness::fmt(saved_min, 0) << " .. "
            << harness::fmt(saved_max, 0) << " mW ("
            << ((saved_max - saved_min) / saved_max < 0.15 ? "OK"
                                                           : "UNEXPECTED")
            << ")\n\n";

  // Seed robustness at the paper's 50 % point.
  std::cout << "--- seed robustness (8 Monkey sessions) ---\n";
  harness::TextTable rt({"App", "Saved (mW, mean+-std)",
                         "Quality (%, mean+-std)"});
  for (const char* name : {"Facebook", "Jelly Splash"}) {
    auto cfg = bench::make_config(apps::app_by_name(name),
                                  harness::ControlMode::kSectionWithBoost,
                                  seconds, /*seed=*/100);
    const harness::RepeatedAbResult r = harness::run_ab_repeated(cfg, 8);
    rt.add_row({name, harness::fmt_pm(r.saved_mean_mw, 0, r.saved_std_mw),
                harness::fmt_pm(r.quality_mean_pct, 1, r.quality_std_pct)});
  }
  rt.print(std::cout);
  std::cout << "\nThe per-seed spread mirrors the paper's +- figures: the "
               "saving depends on\nhow often the random script interacts, "
               "the quality barely varies.\n";
  return 0;
}
