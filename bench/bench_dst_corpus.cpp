// DST campaign runner: replay the seed corpus, then fuzz fresh scenarios
// until the time budget runs out.
//
//   bench_dst_corpus [budget_seconds]
//
// Environment:
//   CCDEM_DST_SECONDS   fuzzing budget in wall seconds (default 45)
//   CCDEM_DST_SEED      campaign seed (default 1; CI passes the run id so
//                       nightly campaigns explore different scenarios)
//   CCDEM_DST_MAX       hard cap on fuzzed scenarios (default unlimited)
//   CCDEM_DST_CHAOS     1 enables chaos-soak mode: nearly every scenario
//                       carries a fault plan AND pressure episodes, runs
//                       are longer, and the process gates on flat RSS --
//                       the peak (VmHWM) measured after the warm-up
//                       quarter of the budget must not grow by more than
//                       20 % by the end (a leak under sustained
//                       fault/pressure churn fails the soak even when
//                       every oracle stays green)
//   CCDEM_DST_SCENES    probability a scenario targets the scene-DSL space
//                       (UI state machines, burst video, multi-surface
//                       demos; default 0.25 -- nightly CI raises it)
//
// Every tests/corpus/*.repro must replay green first -- the corpus is the
// regression suite distilled from past campaigns.  Failures (corpus or
// fuzzed) are minimized and written as self-contained .repro files under
// ./dst_failures/, and the process exits nonzero.  A JSON summary (schema
// ccdem-dst-corpus-v1) goes to stdout.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/dst.h"
#include "harness/json_writer.h"

namespace {

namespace fs = std::filesystem;
using ccdem::check::CheckOptions;
using ccdem::check::CheckReport;
using ccdem::check::Scenario;

double env_or(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double d = std::atof(v);
    if (d > 0) return d;
  }
  return fallback;
}

/// Peak resident set (kB) from /proc/self/status; -1 when unavailable
/// (non-Linux), which disables the RSS gate rather than failing the soak.
long read_vm_hwm_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) return std::atol(line.c_str() + 6);
  }
  return -1;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct Failure {
  std::string origin;  // corpus file name or "fuzz:<index>"
  Scenario minimized;
  std::vector<std::string> messages;
};

void write_failure(const fs::path& dir, std::size_t n, const Failure& f) {
  fs::create_directories(dir);
  const fs::path out = dir / ("failure_" + std::to_string(n) + ".repro");
  std::ofstream os(out);
  os << "# origin: " << f.origin << "\n"
     << ccdem::check::repro_to_string(f.minimized, f.messages);
  std::cerr << "dst: wrote " << out.string() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const double budget_s = argc > 1 && std::atof(argv[1]) > 0
                              ? std::atof(argv[1])
                              : env_or("CCDEM_DST_SECONDS", 45.0);
  const auto seed =
      static_cast<std::uint64_t>(env_or("CCDEM_DST_SEED", 1.0));
  const auto max_scenarios =
      static_cast<std::uint64_t>(env_or("CCDEM_DST_MAX", 1e12));
  const bool chaos = env_or("CCDEM_DST_CHAOS", 0.0) > 0;

  CheckOptions options;
  const ccdem::check::FailurePredicate predicate =
      ccdem::check::make_failure_predicate(options);
  std::vector<Failure> failures;

  // --- corpus replay ------------------------------------------------------
  const fs::path corpus = fs::path(CCDEM_REPO_DIR) / "tests" / "corpus";
  std::vector<fs::path> repros;
  if (fs::exists(corpus)) {
    for (const auto& e : fs::directory_iterator(corpus)) {
      if (e.path().extension() == ".repro") repros.push_back(e.path());
    }
  }
  std::sort(repros.begin(), repros.end());
  int corpus_ok = 0;
  for (const fs::path& p : repros) {
    std::string error;
    const auto s = ccdem::check::parse_scenario(read_file(p), &error);
    if (!s) {
      failures.push_back({p.filename().string(), Scenario{},
                          {"unparseable corpus file: " + error}});
      continue;
    }
    const CheckReport r = ccdem::check::check_scenario(*s, options);
    if (r.ok()) {
      ++corpus_ok;
    } else {
      failures.push_back({p.filename().string(), *s, r.failures});
    }
    std::cerr << "dst: corpus " << p.filename().string() << " "
              << (r.ok() ? "ok" : "FAILED") << "\n";
  }

  // --- fuzz until the budget runs out ------------------------------------
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_s = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  ccdem::check::ScenarioGen::Options gen_options;
  if (chaos) {
    // Soak profile: long runs where faults and pressure almost always
    // coincide, so the self-healing plane and the degradation ladder churn
    // against each other for the whole budget.
    gen_options.min_duration_ms = 4000;
    gen_options.max_duration_ms = 12000;
    gen_options.fault_p = 0.9;
    gen_options.pressure_p = 0.9;
  }
  // Scene draws come last in the generator, so overriding the weight never
  // perturbs the pre-scene prefix of a seed's sequence.
  gen_options.scene_p = env_or("CCDEM_DST_SCENES", gen_options.scene_p);
  ccdem::check::ScenarioGen gen(seed, gen_options);
  std::uint64_t fuzzed = 0;
  long rss_baseline_kb = -1;
  long rss_final_kb = -1;
  while (elapsed_s() < budget_s && fuzzed < max_scenarios &&
         failures.size() < 8) {
    if (chaos && rss_baseline_kb < 0 && elapsed_s() >= budget_s / 4) {
      rss_baseline_kb = read_vm_hwm_kb();
    }
    const Scenario s = gen.next();
    const CheckReport r = ccdem::check::check_scenario(s, options);
    ++fuzzed;
    if (r.ok()) continue;
    std::cerr << "dst: fuzz scenario " << fuzzed - 1 << " FAILED:\n"
              << r.to_string();
    const ccdem::check::MinimizeResult m =
        ccdem::check::minimize_scenario(s, predicate);
    std::vector<std::string> messages = r.failures;
    if (!m.failure.empty() && m.failure != messages.front()) {
      messages.insert(messages.begin(), m.failure);
    }
    failures.push_back(
        {"fuzz:" + std::to_string(fuzzed - 1), m.scenario, messages});
  }

  // RSS-flatness gate: the allocator should reach steady state within the
  // warm-up quarter; any later VmHWM growth is churn-driven accumulation.
  bool rss_flat = true;
  double rss_growth_pct = 0.0;
  if (chaos) {
    rss_final_kb = read_vm_hwm_kb();
    if (rss_baseline_kb < 0) rss_baseline_kb = rss_final_kb;  // short budget
    if (rss_baseline_kb > 0 && rss_final_kb > 0) {
      rss_growth_pct = 100.0 *
                       static_cast<double>(rss_final_kb - rss_baseline_kb) /
                       static_cast<double>(rss_baseline_kb);
      rss_flat = rss_growth_pct <= 20.0;
    }
    std::cerr << "dst: chaos soak RSS " << rss_baseline_kb << " kB -> "
              << rss_final_kb << " kB (" << (rss_flat ? "flat" : "GROWING")
              << ")\n";
  }

  for (std::size_t i = 0; i < failures.size(); ++i) {
    write_failure("dst_failures", i, failures[i]);
  }

  ccdem::harness::JsonWriter w(std::cout);
  w.begin_object();
  w.kv("schema", "ccdem-dst-corpus-v1");
  w.kv("budget_seconds", budget_s);
  w.kv("seed", seed);
  w.kv("corpus_total", static_cast<std::int64_t>(repros.size()));
  w.kv("corpus_ok", corpus_ok);
  w.kv("fuzzed", fuzzed);
  w.kv("elapsed_seconds", elapsed_s());
  w.kv("chaos", chaos);
  if (chaos) {
    w.kv("rss_baseline_kb", static_cast<std::int64_t>(rss_baseline_kb));
    w.kv("rss_final_kb", static_cast<std::int64_t>(rss_final_kb));
    w.kv("rss_growth_pct", rss_growth_pct);
    w.kv("rss_flat", rss_flat);
  }
  w.key("failures");
  w.begin_array();
  for (const Failure& f : failures) {
    w.begin_object();
    w.kv("origin", f.origin);
    w.kv("message", f.messages.empty() ? "" : f.messages.front());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::cout << "\n";
  return failures.empty() && rss_flat ? 0 : 1;
}
