// Figure 9: per-application power saving for all 30 apps, section-based
// control with and without touch boosting.
//
// Paper claims regenerated here:
//  * average power reduction ~120 mW for general apps and ~290 mW for games;
//  * maxima around 440 mW (general) and 530 mW (game);
//  * for 80 % of apps the reduction exceeds ~110 mW (general) / ~220 mW
//    (game);
//  * touch boosting gives back ~16 mW (general) / ~30 mW (game) on average.
#include <iostream>

#include "bench_common.h"

using namespace ccdem;

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 40);
  harness::print_bench_header(std::cout, "Figure 9: per-app power savings",
                              seconds);

  harness::FleetStats fleet;
  const std::vector<bench::AppEval> evals =
      bench::evaluate_all(seconds, 7, &fleet);

  for (const bool games : {false, true}) {
    std::cout << (games ? "--- Game applications (Fig. 9b) ---\n"
                        : "--- General applications (Fig. 9a) ---\n");
    harness::TextTable t({"App", "Baseline (mW)", "Section saved (mW)",
                          "+Boost saved (mW)", "Boost cost (mW)"});
    for (const auto& e : evals) {
      if (e.is_game() != games) continue;
      t.add_row({e.app.name, harness::fmt(e.baseline.mean_power_mw, 0),
                 harness::fmt(e.saved_section_mw(), 1),
                 harness::fmt(e.saved_boost_mw(), 1),
                 harness::fmt(e.saved_section_mw() - e.saved_boost_mw(), 1)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  for (const bool games : {false, true}) {
    metrics::StreamingStats boost_saved, section_saved, boost_cost;
    std::vector<double> boosted;
    for (const auto& e : evals) {
      if (e.is_game() != games) continue;
      section_saved.add(e.saved_section_mw());
      boost_saved.add(e.saved_boost_mw());
      boost_cost.add(e.saved_section_mw() - e.saved_boost_mw());
      boosted.push_back(e.saved_boost_mw());
    }
    // "for 80 % of apps the reduction is more than X" = 20th percentile.
    const double p20 = metrics::percentile(boosted, 20.0);
    const char* label = games ? "games" : "general";
    std::cout << "[" << label << "] mean saved: section "
              << harness::fmt(section_saved.mean(), 0) << " mW, +boost "
              << harness::fmt(boost_saved.mean(), 0) << " mW (paper: ~"
              << (games ? 290 : 120) << " mW)\n";
    std::cout << "[" << label << "] max saved (+boost): "
              << harness::fmt(boost_saved.max(), 0) << " mW (paper: ~"
              << (games ? 530 : 440) << " mW)\n";
    std::cout << "[" << label << "] 80 % of apps save more than "
              << harness::fmt(p20, 0) << " mW (paper: > "
              << (games ? 220 : 110) << " mW)\n";
    std::cout << "[" << label << "] mean boost cost: "
              << harness::fmt(boost_cost.mean(), 0) << " mW (paper: ~"
              << (games ? 30 : 16) << " mW)\n\n";
  }

  int negative = 0;
  for (const auto& e : evals) {
    if (e.saved_boost_mw() < 0.0) ++negative;
  }
  std::cout << "[check] apps where the proposed system costs power: "
            << negative << "/30 (paper: none)\n";

  std::cout << "\n";
  harness::print_fleet_summary(std::cout, fleet);
  std::cout << "\n[fleet] merged observability counters:\n";
  harness::print_counters(std::cout, fleet.counters);
  return 0;
}
