// Figure 8: saved-power traces for Facebook and Jelly Splash -- the power of
// the proposed system subtracted from the stock 60 Hz run, second by second,
// for section-based control alone and with touch boosting.
//
// Paper numbers (reconstructed from the damaged text; see EXPERIMENTS.md):
//  * Facebook saves ~150 mW with section control, ~135 mW with boosting;
//  * Jelly Splash saves much more (~500 mW section, ~330 mW with boosting)
//    because it keeps a ~60 fps frame rate regardless of content;
//  * touch boosting trades back some saving for quality.
#include <iostream>

#include "bench_common.h"

using namespace ccdem;

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 40);
  harness::print_bench_header(std::cout, "Figure 8: saved power traces",
                              seconds, "s runs");

  struct Saved {
    double section_mean = 0, section_std = 0;
    double boost_mean = 0, boost_std = 0;
  };
  std::vector<std::pair<std::string, Saved>> summary;

  for (const char* name : {"Facebook", "Jelly Splash"}) {
    const apps::AppSpec app = apps::app_by_name(name);
    const auto base = harness::run_experiment(bench::make_config(
        app, harness::ControlMode::kBaseline60, seconds, /*seed=*/6));
    Saved saved;
    for (const auto mode : {harness::ControlMode::kSection,
                            harness::ControlMode::kSectionWithBoost}) {
      const auto r = harness::run_experiment(
          bench::make_config(app, mode, seconds, /*seed=*/6));
      // Per-second saved power = baseline power minus controlled power at
      // matching seconds (same Monkey script on both arms).
      const sim::Time begin{};
      const sim::Time end{r.duration.ticks};
      const sim::Trace base_1s = base.power.resample(sim::seconds(1), begin, end);
      const sim::Trace ctl_1s = r.power.resample(sim::seconds(1), begin, end);
      const sim::Trace diff =
          sim::Trace::difference(base_1s, ctl_1s, "saved_mw");
      std::cout << "--- " << name << ", "
                << harness::control_mode_name(mode) << " ---\n";
      harness::print_ascii_chart(std::cout, "saved power (mW)", diff,
                                 sim::seconds(1), begin, end, 800.0);
      std::cout << "average saved: "
                << harness::fmt_pm(diff.mean(), 1, diff.stddev())
                << " mW\n\n";
      if (mode == harness::ControlMode::kSection) {
        saved.section_mean = diff.mean();
        saved.section_std = diff.stddev();
      } else {
        saved.boost_mean = diff.mean();
        saved.boost_std = diff.stddev();
      }
    }
    summary.emplace_back(name, saved);
  }

  harness::TextTable t({"App", "Section saved (mW)", "+Boost saved (mW)",
                        "Paper (section)", "Paper (+boost)"});
  t.add_row({"Facebook", harness::fmt_pm(summary[0].second.section_mean, 0,
                                         summary[0].second.section_std),
             harness::fmt_pm(summary[0].second.boost_mean, 0,
                             summary[0].second.boost_std),
             "~150 mW", "~135 mW"});
  t.add_row({"Jelly Splash",
             harness::fmt_pm(summary[1].second.section_mean, 0,
                             summary[1].second.section_std),
             harness::fmt_pm(summary[1].second.boost_mean, 0,
                             summary[1].second.boost_std),
             "~500 mW", "~330 mW"});
  t.print(std::cout);

  const auto& fb = summary[0].second;
  const auto& js = summary[1].second;
  std::cout << "\n[check] Jelly Splash saves much more than Facebook: "
            << harness::fmt(js.section_mean, 0) << " vs "
            << harness::fmt(fb.section_mean, 0) << " mW ("
            << (js.section_mean > fb.section_mean * 1.5 ? "OK" : "UNEXPECTED")
            << ")\n";
  std::cout << "[check] boosting costs some of the saving: "
            << (js.boost_mean <= js.section_mean ? "OK" : "UNEXPECTED")
            << "\n";
  return 0;
}
