// Extension: mixed-usage sessions and what the battery feels.
//
// The paper evaluates per-app savings; this bench composes them into a
// typical mixed hour of usage (social, messaging, games, video, idle),
// replays the identical session under stock 60 Hz and under the full
// proposed system, and converts the delta into Galaxy S3 screen-on time.
#include <iostream>

#include "bench_common.h"
#include "harness/session.h"
#include "power/battery.h"

using namespace ccdem;

int main(int argc, char** argv) {
  // `seconds` here scales the one-hour session: 36 s of simulated time per
  // 3600 s of modelled usage at the default.
  const int seconds = bench::run_seconds(argc, argv, 36);
  const double scale = static_cast<double>(seconds) / 3600.0;
  harness::print_bench_header(
      std::cout, "Extension: mixed-usage session",
      harness::fmt(scale * 60.0, 1) + " min simulated per modelled hour");

  const harness::SessionResult base = harness::run_session(
      harness::typical_hour(scale, harness::ControlMode::kBaseline60));
  const harness::SessionResult ctl = harness::run_session(
      harness::typical_hour(scale, harness::ControlMode::kSectionWithBoost));

  harness::TextTable t({"Segment", "Baseline (mW)", "Proposed (mW)",
                        "Saved (mW)"});
  for (std::size_t i = 0; i < base.segments.size(); ++i) {
    t.add_row({base.segments[i].app_name,
               harness::fmt(base.segments[i].mean_power_mw, 0),
               harness::fmt(ctl.segments[i].mean_power_mw, 0),
               harness::fmt(base.segments[i].mean_power_mw -
                                ctl.segments[i].mean_power_mw,
                            0)});
  }
  t.print(std::cout);

  const double saved = base.mean_power_mw - ctl.mean_power_mw;
  const power::Battery battery(power::BatterySpec::galaxy_s3());
  std::cout << "\nSession mean power: "
            << harness::fmt(base.mean_power_mw, 0) << " mW -> "
            << harness::fmt(ctl.mean_power_mw, 0) << " mW (saved "
            << harness::fmt(saved, 0) << " mW, "
            << harness::fmt(saved / base.mean_power_mw * 100.0, 1)
            << " %)\n";
  std::cout << "Screen-on time at this mix: "
            << harness::fmt(battery.hours_at_mw(base.mean_power_mw), 1)
            << " h -> "
            << harness::fmt(battery.hours_at_mw(ctl.mean_power_mw), 1)
            << " h (+"
            << harness::fmt(
                   battery.relative_gain(base.mean_power_mw, saved) * 100.0,
                   0)
            << " %)\n";

  std::cout << "\n[check] mixed usage saves power overall: "
            << (saved > 50.0 ? "OK" : "UNEXPECTED") << "\n";
  std::cout << "[check] every segment is non-regressive: ";
  bool ok = true;
  for (std::size_t i = 0; i < base.segments.size(); ++i) {
    if (ctl.segments[i].mean_power_mw >
        base.segments[i].mean_power_mw + 20.0) {
      ok = false;
    }
  }
  std::cout << (ok ? "OK" : "UNEXPECTED") << "\n";
  return 0;
}
