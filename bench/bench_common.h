// Shared plumbing for the figure/table reproduction binaries.
//
// Every bench accepts an optional first argument (seconds of simulated time
// per run) and honours the CCDEM_BENCH_SECONDS environment variable, so the
// full suite can be shortened for smoke runs.  Paper runs are ~3 minutes per
// app; the defaults here are shorter because the statistics stabilise well
// before that in simulation.
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/app_profiles.h"
#include "harness/experiment.h"
#include "harness/fleet.h"
#include "harness/report.h"
#include "metrics/stats.h"

namespace ccdem::bench {

inline int run_seconds(int argc, char** argv, int fallback = 30) {
  if (argc > 1) {
    const int v = std::atoi(argv[1]);
    if (v > 0) return v;
  }
  if (const char* env = std::getenv("CCDEM_BENCH_SECONDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

inline harness::ExperimentConfig make_config(const apps::AppSpec& app,
                                             harness::ControlMode mode,
                                             int seconds,
                                             std::uint64_t seed = 1) {
  harness::ExperimentConfig c;
  c.app = app;
  c.duration = sim::seconds(seconds);
  c.seed = seed;
  c.mode = mode;
  return c;
}

/// Full evaluation of one app: baseline, section-only and section+boost
/// under the same Monkey script.
struct AppEval {
  apps::AppSpec app;
  harness::ExperimentResult baseline;
  harness::ExperimentResult section;
  harness::ExperimentResult boost;
  metrics::QualityReport q_section;
  metrics::QualityReport q_boost;

  [[nodiscard]] double saved_section_mw() const {
    return baseline.mean_power_mw - section.mean_power_mw;
  }
  [[nodiscard]] double saved_boost_mw() const {
    return baseline.mean_power_mw - boost.mean_power_mw;
  }
  [[nodiscard]] double saved_section_pct() const {
    return saved_section_mw() / baseline.mean_power_mw * 100.0;
  }
  [[nodiscard]] double saved_boost_pct() const {
    return saved_boost_mw() / baseline.mean_power_mw * 100.0;
  }
  [[nodiscard]] bool is_game() const {
    return app.category == apps::AppSpec::Category::kGame;
  }
};

inline AppEval evaluate_app(const apps::AppSpec& app, int seconds,
                            std::uint64_t seed = 1) {
  AppEval e;
  e.app = app;
  e.baseline = harness::run_experiment(
      make_config(app, harness::ControlMode::kBaseline60, seconds, seed));
  e.section = harness::run_experiment(
      make_config(app, harness::ControlMode::kSection, seconds, seed));
  e.boost = harness::run_experiment(make_config(
      app, harness::ControlMode::kSectionWithBoost, seconds, seed));
  e.q_section =
      metrics::compare_quality(e.baseline.content_rate, e.section.content_rate);
  e.q_boost =
      metrics::compare_quality(e.baseline.content_rate, e.boost.content_rate);
  return e;
}

/// Evaluates the full 30-app fleet (3 runs per app) on all cores; results
/// are bit-identical to the serial evaluate_app loop.  Pass `stats` to
/// receive the fleet's run/buffer-reuse counters.
inline std::vector<AppEval> evaluate_all(int seconds, std::uint64_t seed = 1,
                                         harness::FleetStats* stats = nullptr) {
  const std::vector<apps::AppSpec> apps_list = apps::all_apps();
  std::vector<harness::ExperimentConfig> configs;
  configs.reserve(apps_list.size() * 3);
  for (const apps::AppSpec& app : apps_list) {
    configs.push_back(
        make_config(app, harness::ControlMode::kBaseline60, seconds, seed));
    configs.push_back(
        make_config(app, harness::ControlMode::kSection, seconds, seed));
    configs.push_back(make_config(
        app, harness::ControlMode::kSectionWithBoost, seconds, seed));
  }
  harness::FleetRunner fleet;
  std::vector<harness::ExperimentResult> results = fleet.run(configs);
  if (stats != nullptr) *stats = fleet.stats();

  std::vector<AppEval> out;
  out.reserve(apps_list.size());
  for (std::size_t i = 0; i < apps_list.size(); ++i) {
    AppEval e;
    e.app = apps_list[i];
    e.baseline = std::move(results[i * 3]);
    e.section = std::move(results[i * 3 + 1]);
    e.boost = std::move(results[i * 3 + 2]);
    e.q_section = metrics::compare_quality(e.baseline.content_rate,
                                           e.section.content_rate);
    e.q_boost = metrics::compare_quality(e.baseline.content_rate,
                                         e.boost.content_rate);
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace ccdem::bench
