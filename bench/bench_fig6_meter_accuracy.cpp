// Figure 6: accuracy and cost of content-rate metering vs the number of
// compared pixels (2K / 4K / 9K / 36K / 921K on the 720x1280 panel).
//
// Workload: the Nexus Revampled live wallpaper -- small dots drifting across
// the screen below 25 fps, the paper's adversarial case where a coarse grid
// misses content changes entirely.
//
// Paper claims regenerated here:
//  * estimation is accurate with >= 9K pixels (error ~0 %);
//  * sparse grids (2K/4K) miss changes on this workload;
//  * the device-side comparison takes >40 ms at full resolution (cannot
//    finish within the 60 Hz budget of 16.67 ms), ~9 ms at 36K, and <1 ms
//    below 9K.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/content_rate_meter.h"
#include "device/simulated_device.h"

using namespace ccdem;

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 30);
  harness::print_bench_header(
      std::cout, "Figure 6: metering accuracy vs sampled pixels", seconds,
      "s, Nexus Revampled wallpaper");

  // One baseline run with every grid's meter attached simultaneously, so
  // all configurations judge the exact same frame sequence.  No Monkey
  // script: the wallpaper animates on its own.
  device::DeviceConfig dc;
  dc.seed = 4;

  device::SimulatedDevice dev;
  dev.configure(dc);

  std::vector<std::unique_ptr<core::ContentRateMeter>> meters;
  for (const core::GridSpec& grid : core::GridSpec::figure6_sweep()) {
    meters.push_back(
        std::make_unique<core::ContentRateMeter>(dc.screen, grid));
    dev.add_frame_listener(meters.back().get());
  }

  dev.install_app(apps::nexus_revampled_wallpaper());
  dev.start_control();
  dev.run_for(sim::seconds(seconds));
  dev.finish();

  const auto actual_content = dev.flinger().content_frames();
  const auto total = dev.flinger().frames_composed();
  std::cout << "composed " << total << " frames, " << actual_content
            << " with real content changes\n\n";

  harness::TextTable t({"Pixels", "Error rate (%)", "Missed content (%)",
                        "Duration (ms)", "Fits 60 Hz budget"});
  const core::MeteringCostModel cost;
  for (const auto& meter : meters) {
    const auto n =
        static_cast<std::int64_t>(meter->sampler().sample_count());
    const double missed_pct =
        actual_content == 0
            ? 0.0
            : (1.0 - static_cast<double>(meter->meaningful_frames()) /
                         static_cast<double>(actual_content)) *
                  100.0;
    t.add_row({meter->sampler().grid().label(),
               harness::fmt(meter->error_rate() * 100.0, 2),
               harness::fmt(missed_pct, 2),
               harness::fmt(cost.duration_ms(n), 2),
               cost.fits_frame_budget(n, 60) ? "yes" : "NO"});
  }
  t.print(std::cout);

  const double err_9k = meters[2]->error_rate();
  const double err_2k = meters[0]->error_rate();
  std::cout << "\n[check] 9K grid is accurate: "
            << harness::fmt(err_9k * 100.0, 2) << " % error ("
            << (err_9k < 0.02 ? "OK" : "UNEXPECTED") << ")\n";
  std::cout << "[check] 2K grid misses small-dot content: "
            << harness::fmt(err_2k * 100.0, 2) << " % error ("
            << (err_2k > err_9k ? "OK" : "UNEXPECTED") << ")\n";
  std::cout << "[check] full resolution misses the 60 Hz deadline: "
            << harness::fmt(cost.duration_ms(921'600), 1) << " ms > 16.67 ms ("
            << (!cost.fits_frame_budget(921'600, 60) ? "OK" : "UNEXPECTED")
            << ")\n";
  return 0;
}
