// Figure 3: meaningful vs redundant frame rate for the 30 commercial
// applications (15 general + 15 games) at a fixed 60 Hz refresh.
//
// Paper claims regenerated here:
//  (a/c) most general applications require less than 30 fps;
//  (d)   ~40 % of general apps exhibit ~20 fps of redundant frames
//        (e.g. Cash Slide, Daum Maps);
//  (b)   all game applications update the display at more than 30 fps;
//  (d)   80 % of games have more than 20 redundant frames per second.
#include <iostream>

#include "bench_common.h"

using namespace ccdem;

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 30);
  harness::print_bench_header(std::cout, "Figure 3: frame redundancy census",
                              seconds, "s per app, fixed 60 Hz");

  struct Row {
    std::string name;
    bool game;
    double frame_fps;
    double content_fps;
    double redundant_fps;
  };
  std::vector<Row> rows;
  for (const apps::AppSpec& app : apps::all_apps()) {
    const auto r = harness::run_experiment(bench::make_config(
        app, harness::ControlMode::kBaseline60, seconds, /*seed=*/3));
    const double run_s = r.duration.seconds();
    const double f = static_cast<double>(r.frames_composed) / run_s;
    const double c = static_cast<double>(r.content_frames) / run_s;
    rows.push_back({app.name, app.category == apps::AppSpec::Category::kGame,
                    f, c, f - c});
  }

  for (const bool games : {false, true}) {
    std::cout << (games ? "--- Game applications (Fig. 3b/3d) ---\n"
                        : "--- General applications (Fig. 3a/3c/3d) ---\n");
    harness::TextTable t({"App", "Frame rate (fps)", "Meaningful (fps)",
                          "Redundant (fps)"});
    for (const Row& r : rows) {
      if (r.game != games) continue;
      t.add_row({r.name, harness::fmt(r.frame_fps),
                 harness::fmt(r.content_fps), harness::fmt(r.redundant_fps)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  // Aggregate claims.
  int general_low_fps = 0, general_heavy_redundant = 0;
  int games_above_30 = 0, games_heavy_redundant = 0, n_general = 0, n_games = 0;
  for (const Row& r : rows) {
    if (r.game) {
      ++n_games;
      if (r.frame_fps > 30.0) ++games_above_30;
      if (r.redundant_fps > 20.0) ++games_heavy_redundant;
    } else {
      ++n_general;
      if (r.frame_fps < 30.0) ++general_low_fps;
      if (r.redundant_fps >= 14.0) ++general_heavy_redundant;
    }
  }
  std::cout << "[check] general apps below 30 fps: " << general_low_fps << "/"
            << n_general << " (paper: most)\n";
  std::cout << "[check] general apps with heavy redundancy (~20 fps): "
            << general_heavy_redundant << "/" << n_general
            << " (paper: ~40 %)\n";
  std::cout << "[check] games above 30 fps: " << games_above_30 << "/"
            << n_games << " (paper: all)\n";
  std::cout << "[check] games with > 20 redundant fps: "
            << games_heavy_redundant << "/" << n_games << " (paper: 80 %)\n";
  return 0;
}
