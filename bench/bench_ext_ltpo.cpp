// Extension: the scheme on a modern LTPO-class panel (1-120 Hz ladder).
//
// The paper notes the section table must be rebuilt when the available
// refresh rates change.  This bench runs a representative app set on the
// Galaxy S3's coarse 5-level ladder and on an LTPO-style 8-level ladder
// whose floor is 1 Hz, showing how much more idle headroom a fine ladder
// harvests with the *same* controller -- essentially what shipped years
// later as Android's adaptive refresh rate.
#include <iostream>

#include "bench_common.h"
#include "core/section_table.h"

using namespace ccdem;

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 30);
  harness::print_bench_header(
      std::cout, "Extension: LTPO 1-120 Hz ladder vs Galaxy S3 ladder",
      seconds);

  const display::RefreshRateSet s3 = display::RefreshRateSet::galaxy_s3();
  const display::RefreshRateSet ltpo = display::RefreshRateSet::ltpo_120();
  std::cout << "LTPO section table (Equation (1) rebuilt):\n"
            << core::SectionTable::build(ltpo, 0.5).to_string() << "\n";

  harness::TextTable t({"App", "S3 saved (mW)", "LTPO saved (mW)",
                        "S3 mean Hz", "LTPO mean Hz", "LTPO quality (%)"});
  double s3_sum = 0.0, ltpo_sum = 0.0;
  int n = 0;
  for (const char* name :
       {"Tiny Flashlight", "Facebook", "KakaoTalk", "Jelly Splash",
        "MX Player"}) {
    const apps::AppSpec app = apps::app_by_name(name);
    auto cfg_s3 = bench::make_config(
        app, harness::ControlMode::kSectionWithBoost, seconds, /*seed=*/33);
    cfg_s3.rates = s3;
    cfg_s3.baseline_hz = 60;  // stock phone baseline on both panels
    const harness::AbResult r_s3 = harness::run_ab(cfg_s3);

    auto cfg_ltpo = cfg_s3;
    cfg_ltpo.rates = ltpo;
    cfg_ltpo.fast_rate_up = true;  // LTPO hardware exits low rates early
    cfg_ltpo.dpm.boost_hz = 60;    // boost to the app-relevant max, not 120
    cfg_ltpo.dpm.min_hz = 10;      // safety floor against metering misses
    const harness::AbResult r_ltpo = harness::run_ab(cfg_ltpo);

    t.add_row({name, harness::fmt(r_s3.saved_power_mw, 1),
               harness::fmt(r_ltpo.saved_power_mw, 1),
               harness::fmt(r_s3.controlled.mean_refresh_hz),
               harness::fmt(r_ltpo.controlled.mean_refresh_hz),
               harness::fmt(r_ltpo.quality.display_quality_pct)});
    s3_sum += r_s3.saved_power_mw;
    ltpo_sum += r_ltpo.saved_power_mw;
    ++n;
  }
  t.print(std::cout);

  std::cout << "\nMean saving: S3 ladder " << harness::fmt(s3_sum / n, 0)
            << " mW, LTPO ladder " << harness::fmt(ltpo_sum / n, 0)
            << " mW\n";
  std::cout << "[check] the finer ladder saves at least as much: "
            << (ltpo_sum >= s3_sum - 10.0 * n ? "OK" : "UNEXPECTED") << "\n";
  std::cout << "\nNote: both arms are measured against the SAME fixed-60 Hz "
               "baseline device.\nThe LTPO panel's low floor lets "
               "near-static apps park far below the S3's\n20 Hz minimum -- "
               "the content-centric controller needs no change, only a "
               "rebuilt\nsection table, plus two deployment guards this "
               "study surfaced:\n"
               "  * fast rate-up: at a 1 Hz floor a boundary-only switch "
               "waits up to 1 s,\n    wrecking touch response;\n"
               "  * a safety floor (min 10 Hz here): sub-grid content the "
               "meter cannot see\n    (KakaoTalk's 3 px cursor slips between "
               "the 9K grid's 10 px sample\n    stride) freezes if the panel "
               "parks at 1 Hz.\n";
  return 0;
}
