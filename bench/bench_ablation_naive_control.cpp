// Ablation A: the paper's rejected first design (section 3.2).
//
// "In our initial attempt, we first tried to adjust the refresh rate to the
// current content rate. [...] this algorithm did not work adequately, since
// the content rate cannot exceed the refresh rate due to the V-Sync
// mechanism."
//
// This bench runs the naive direct mapping against the section-based
// controller and shows the V-Sync trap: the naive controller ratchets down
// during an idle moment and can never observe the content rate rising above
// the low refresh rate, so it sticks there and drops content.
#include <iostream>

#include "bench_common.h"

using namespace ccdem;

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 40);
  harness::print_bench_header(
      std::cout, "Ablation: naive direct mapping vs section-based control",
      seconds);

  harness::TextTable t({"App", "Policy", "Mean refresh (Hz)",
                        "Saved power (mW)", "Quality (%)",
                        "Dropped (fps)"});
  struct Probe {
    const char* app;
    double naive_hz = 0, section_hz = 0;
    double naive_q = 0, section_q = 0;
  };
  std::vector<Probe> probes;

  for (const char* name : {"Jelly Splash", "Cookie Run", "Facebook"}) {
    Probe probe;
    probe.app = name;
    const apps::AppSpec app = apps::app_by_name(name);
    const auto base = harness::run_experiment(bench::make_config(
        app, harness::ControlMode::kBaseline60, seconds, /*seed=*/11));
    for (const auto mode :
         {harness::ControlMode::kNaive, harness::ControlMode::kSection}) {
      const auto r = harness::run_experiment(
          bench::make_config(app, mode, seconds, /*seed=*/11));
      const auto q =
          metrics::compare_quality(base.content_rate, r.content_rate);
      t.add_row({name, harness::control_mode_name(mode),
                 harness::fmt(r.mean_refresh_hz),
                 harness::fmt(base.mean_power_mw - r.mean_power_mw, 1),
                 harness::fmt(q.display_quality_pct),
                 harness::fmt(q.dropped_fps, 2)});
      if (mode == harness::ControlMode::kNaive) {
        probe.naive_hz = r.mean_refresh_hz;
        probe.naive_q = q.display_quality_pct;
      } else {
        probe.section_hz = r.mean_refresh_hz;
        probe.section_q = q.display_quality_pct;
      }
    }
    probes.push_back(probe);
  }
  t.print(std::cout);
  std::cout << "\n";

  for (const Probe& p : probes) {
    std::cout << "[check] " << p.app
              << ": naive sticks lower and delivers less content ("
              << harness::fmt(p.naive_hz) << " Hz / "
              << harness::fmt(p.naive_q) << " % vs "
              << harness::fmt(p.section_hz) << " Hz / "
              << harness::fmt(p.section_q) << " %, "
              << (p.naive_hz <= p.section_hz + 1.0 &&
                          p.naive_q <= p.section_q + 1.0
                      ? "OK"
                      : "UNEXPECTED")
              << ")\n";
  }
  std::cout << "\nThe naive mapping saves more raw power than the section "
               "table, but only by\nfreezing the content it was supposed to "
               "display -- the paper rejects it for\nexactly this quality "
               "collapse.\n";
  return 0;
}
