// Table 1: the paper's summary -- power saved (%) and display quality (%)
// per application category and control method, as mean (+-std) across apps.
//
// Paper values (std in parentheses; a few digits are damaged in the
// available text and reconstructed -- see EXPERIMENTS.md):
//
//   General, section:        saved 18.6 % (+-8.93),  quality 74.1 % (+-15.6)
//   General, section+boost:  saved ~17 % (+-8.74),   quality 95.7 % (+-2.7)
//   Games,   section:        saved ~27 % (+-12.36),  quality 88.5 % (+-6.0)
//   Games,   section+boost:  saved ~24 % (+-10.7),   quality 96.0 % (+-1.4)
//
// Overall the paper reports ~230 mW average reduction and ~95 % quality.
#include <iostream>

#include "bench_common.h"

using namespace ccdem;

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 40);
  harness::print_bench_header(
      std::cout, "Table 1: power saving and display quality summary", seconds);

  const std::vector<bench::AppEval> evals = bench::evaluate_all(seconds, 10);

  harness::TextTable t({"Application type", "Method", "Saved power (%)",
                        "Display quality (%)", "Paper saved", "Paper quality"});
  struct PaperRow {
    const char* saved;
    const char* quality;
  };
  const PaperRow paper[4] = {{"18.6 (+-8.93)", "74.1 (+-15.6)"},
                             {"~17 (+-8.74)", "95.7 (+-2.7)"},
                             {"~27 (+-12.36)", "88.5 (+-6.0)"},
                             {"~24 (+-10.7)", "96.0 (+-1.4)"}};
  int row = 0;
  metrics::StreamingStats all_saved_mw, all_quality;
  for (const bool games : {false, true}) {
    for (const bool boost : {false, true}) {
      metrics::StreamingStats saved_pct, quality;
      for (const auto& e : evals) {
        if (e.is_game() != games) continue;
        saved_pct.add(boost ? e.saved_boost_pct() : e.saved_section_pct());
        const auto& q = boost ? e.q_boost : e.q_section;
        quality.add(q.display_quality_pct);
        if (boost) {
          all_saved_mw.add(e.saved_boost_mw());
          all_quality.add(q.display_quality_pct);
        }
      }
      t.add_row({games ? "Game applications" : "General applications",
                 boost ? "Section-based control + Touch boosting"
                       : "Section-based control",
                 harness::fmt_pm(saved_pct.mean(), 1, saved_pct.stddev()),
                 harness::fmt_pm(quality.mean(), 1, quality.stddev()),
                 paper[row].saved, paper[row].quality});
      ++row;
    }
  }
  t.print(std::cout);

  std::cout << "\nOverall (full system, all 30 apps): "
            << harness::fmt(all_saved_mw.mean(), 0)
            << " mW average reduction (paper: ~230 mW), "
            << harness::fmt(all_quality.mean(), 1)
            << " % average quality (paper: ~95 %)\n";

  // Shape checks mirroring the table's qualitative content.
  metrics::StreamingStats gq_sec, gq_boost;
  for (const auto& e : evals) {
    if (!e.is_game()) {
      gq_sec.add(e.q_section.display_quality_pct);
      gq_boost.add(e.q_boost.display_quality_pct);
    }
  }
  std::cout << "[check] boosting lifts general-app quality substantially: "
            << harness::fmt(gq_sec.mean()) << " % -> "
            << harness::fmt(gq_boost.mean()) << " % ("
            << (gq_boost.mean() > gq_sec.mean() ? "OK" : "UNEXPECTED")
            << ")\n";
  return 0;
}
