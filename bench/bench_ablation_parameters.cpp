// Ablation B: the design parameters the paper fixes without sweeping.
//
//  1. Section-table threshold placement (Equation (1) uses the median,
//     alpha = 0.5): sweep alpha from 0 (maximal headroom, conservative) to
//     1 (minimal sufficient rate, aggressive).
//  2. Touch-boost hold time (unspecified in the paper; this reproduction
//     defaults to 1 s): sweep 0.25-4 s.
//
// Both sweeps report the power/quality trade-off on a mixed workload so the
// default choices can be judged.
#include <iostream>

#include "bench_common.h"

using namespace ccdem;

namespace {

struct SweepPoint {
  double saved_mw = 0.0;
  double quality_pct = 0.0;
};

SweepPoint run_point(const std::vector<apps::AppSpec>& mix, int seconds,
                     double alpha, sim::Duration boost_hold) {
  SweepPoint p;
  int n = 0;
  for (const apps::AppSpec& app : mix) {
    auto cfg = bench::make_config(
        app, harness::ControlMode::kSectionWithBoost, seconds, /*seed=*/12);
    cfg.dpm.section_alpha = alpha;
    cfg.dpm.boost_hold = boost_hold;
    const auto ab = harness::run_ab(cfg);
    p.saved_mw += ab.saved_power_mw;
    p.quality_pct += ab.quality.display_quality_pct;
    ++n;
  }
  p.saved_mw /= n;
  p.quality_pct /= n;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 30);
  harness::print_bench_header(
      std::cout, "Ablation: section thresholds and boost hold time", seconds);

  const std::vector<apps::AppSpec> mix = {
      apps::app_by_name("Facebook"), apps::app_by_name("Daum Maps"),
      apps::app_by_name("Jelly Splash"), apps::app_by_name("Cookie Run")};

  std::cout << "--- threshold placement alpha (0.5 = paper's Eq. (1)) ---\n";
  harness::TextTable ta({"alpha", "Mean saved (mW)", "Mean quality (%)"});
  for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const SweepPoint p = run_point(mix, seconds, alpha, sim::seconds(1));
    ta.add_row({harness::fmt(alpha, 2), harness::fmt(p.saved_mw, 1),
                harness::fmt(p.quality_pct, 1)});
  }
  ta.print(std::cout);
  std::cout << "Higher alpha picks tighter rates (more saving, more risk of "
               "capping content);\nlower alpha keeps headroom (less saving, "
               "higher quality).\n\n";

  std::cout << "--- touch-boost hold time (default 1 s) ---\n";
  harness::TextTable tb({"hold (s)", "Mean saved (mW)", "Mean quality (%)"});
  for (const double hold_s : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const SweepPoint p =
        run_point(mix, seconds, 0.5, sim::seconds_f(hold_s));
    tb.add_row({harness::fmt(hold_s, 2), harness::fmt(p.saved_mw, 1),
                harness::fmt(p.quality_pct, 1)});
  }
  tb.print(std::cout);
  std::cout << "Longer holds keep the panel at 60 Hz after interaction: "
               "quality saturates\nwhile savings keep shrinking -- the knee "
               "sits near the paper-era ~1 s touch\nboost windows.\n\n";

  std::cout << "--- meter window (content rate is per second; default 1 s) "
               "---\n";
  harness::TextTable tc({"window (s)", "Mean saved (mW)",
                         "Mean quality (%)"});
  for (const double win_s : {0.25, 0.5, 1.0, 2.0}) {
    SweepPoint p{};
    int n = 0;
    for (const apps::AppSpec& app : mix) {
      auto cfg = bench::make_config(
          app, harness::ControlMode::kSectionWithBoost, seconds, 12);
      cfg.dpm.meter.window = sim::seconds_f(win_s);
      const auto ab = harness::run_ab(cfg);
      p.saved_mw += ab.saved_power_mw;
      p.quality_pct += ab.quality.display_quality_pct;
      ++n;
    }
    tc.add_row({harness::fmt(win_s, 2), harness::fmt(p.saved_mw / n, 1),
                harness::fmt(p.quality_pct / n, 1)});
  }
  tc.print(std::cout);
  std::cout << "Short windows react faster but jitter between sections; "
               "long windows smooth\nthe estimate and slow the ramp-down "
               "after bursts.\n";
  return 0;
}
