// Figure 10: effect of refresh-rate control on the content rate -- actual
// (fixed 60 Hz) vs delivered content rate per app, with and without touch
// boosting, plus the dropped-frame statistics of section 4.4.
//
// Paper claims regenerated here:
//  * with touch boosting the delivered content rate approximately equals
//    the actual content rate; without it the content rate is underestimated
//    because touch bursts exceed the lagging refresh rate;
//  * dropped frames at the 80th percentile: < 2.9 fps (general) / 3.8 fps
//    (game) with section control, < 0.7 / 1.3 fps with boosting.
#include <iostream>

#include "bench_common.h"

using namespace ccdem;

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 40);
  harness::print_bench_header(std::cout, "Figure 10: content-rate effect",
                              seconds);

  const std::vector<bench::AppEval> evals = bench::evaluate_all(seconds, 8);

  for (const bool games : {false, true}) {
    std::cout << (games ? "--- Game applications ---\n"
                        : "--- General applications ---\n");
    harness::TextTable t({"App", "Actual (fps)", "Section (fps)",
                          "+Boost (fps)", "Drop sec (fps)",
                          "Drop boost (fps)"});
    for (const auto& e : evals) {
      if (e.is_game() != games) continue;
      t.add_row({e.app.name, harness::fmt(e.q_section.actual_content_fps),
                 harness::fmt(e.q_section.delivered_content_fps),
                 harness::fmt(e.q_boost.delivered_content_fps),
                 harness::fmt(e.q_section.dropped_fps, 2),
                 harness::fmt(e.q_boost.dropped_fps, 2)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  for (const bool games : {false, true}) {
    std::vector<double> drop_section, drop_boost;
    for (const auto& e : evals) {
      if (e.is_game() != games) continue;
      drop_section.push_back(e.q_section.dropped_fps);
      drop_boost.push_back(e.q_boost.dropped_fps);
    }
    const double p80_section = metrics::value_at_80th(drop_section);
    const double p80_boost = metrics::value_at_80th(drop_boost);
    const char* label = games ? "games" : "general";
    std::cout << "[" << label
              << "] dropped frames, 80th percentile: section "
              << harness::fmt(p80_section, 2) << " fps (paper: < "
              << (games ? "3.8" : "2.9") << "), +boost "
              << harness::fmt(p80_boost, 2) << " fps (paper: < "
              << (games ? "1.3" : "0.7") << ")\n";
    std::cout << "[check] boosting reduces dropping: "
              << (p80_boost <= p80_section ? "OK" : "UNEXPECTED") << "\n";
  }
  return 0;
}
