// Comparison baseline: E3-style frame-rate adaptation (Han et al.,
// SenSys'13 -- the paper's reference [16]).
//
// E3-class schemes throttle the application's frame rate to the content
// demand while the panel keeps refreshing at 60 Hz.  The paper positions
// its contribution against this family: refresh-rate control harvests the
// render savings *and* the refresh-proportional panel power.  This bench
// quantifies the split on redundancy-heavy workloads.
#include <iostream>

#include "bench_common.h"

using namespace ccdem;

int main(int argc, char** argv) {
  const int seconds = bench::run_seconds(argc, argv, 40);
  harness::print_bench_header(
      std::cout,
      "Baseline comparison: frame-rate cap (E3-style) vs refresh control",
      seconds);

  harness::TextTable t({"App", "Scheme", "Saved (mW)", "Quality (%)",
                        "Mean refresh (Hz)"});
  struct Pair {
    const char* app;
    double e3_saved = 0, ours_saved = 0;
  };
  std::vector<Pair> pairs;

  for (const char* name :
       {"Jelly Splash", "Cash Slide", "Cookie Run", "Daum Maps"}) {
    Pair pair;
    pair.app = name;
    const apps::AppSpec app = apps::app_by_name(name);
    const auto base = harness::run_experiment(bench::make_config(
        app, harness::ControlMode::kBaseline60, seconds, /*seed=*/13));
    for (const auto mode : {harness::ControlMode::kE3FrameRate,
                            harness::ControlMode::kSectionWithBoost}) {
      const auto r = harness::run_experiment(
          bench::make_config(app, mode, seconds, /*seed=*/13));
      const auto q =
          metrics::compare_quality(base.content_rate, r.content_rate);
      const double saved = base.mean_power_mw - r.mean_power_mw;
      t.add_row({name, harness::control_mode_name(mode),
                 harness::fmt(saved, 1),
                 harness::fmt(q.display_quality_pct),
                 harness::fmt(r.mean_refresh_hz)});
      if (mode == harness::ControlMode::kE3FrameRate) {
        pair.e3_saved = saved;
      } else {
        pair.ours_saved = saved;
      }
    }
    pairs.push_back(pair);
  }
  t.print(std::cout);
  std::cout << "\n";

  for (const Pair& p : pairs) {
    std::cout << "[check] " << p.app
              << ": refresh control beats the frame-rate-only baseline ("
              << harness::fmt(p.ours_saved, 0) << " vs "
              << harness::fmt(p.e3_saved, 0) << " mW, "
              << (p.ours_saved > p.e3_saved ? "OK" : "UNEXPECTED") << ")\n";
  }
  std::cout << "\nThe gap is the refresh-proportional panel power (~4 mW/Hz "
               "on the modelled\npanel): a frame-rate governor cannot touch "
               "it because the panel still scans\nat 60 Hz.\n";
  return 0;
}
