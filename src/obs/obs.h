// ObsSink: the one observability handle components share.
//
// A sink bundles the counter registry and the span ring buffer.  It is
// owned OUTSIDE the device (by a test, a bench, a fleet worker) and plugged
// in via DeviceConfig::obs, so it survives reconfigure() and accumulates
// across runs -- exactly what a sweep wants for its fleet summary, and what
// a golden-trace test wants to clear() between runs.
//
// Call sites emit spans through CCDEM_OBS_SPAN so that a build with
// -DCCDEM_OBS_SPANS=OFF removes the call (and its argument evaluation)
// entirely; counters stay on in every build, they are the always-available
// near-zero-cost tier.
#pragma once

#include "obs/counters.h"
#include "obs/span_recorder.h"

namespace ccdem::obs {

struct ObsSink {
  Counters counters;
  SpanRecorder spans;

  void clear() {
    counters.clear();
    spans.clear();
  }
};

}  // namespace ccdem::obs

/// Records a span on a nullable ObsSink*.  Arguments are NOT evaluated when
/// spans are compiled out, so modeled-duration math vanishes with them.
#if CCDEM_OBS_SPANS
#define CCDEM_OBS_SPAN(sink, phase, begin, dur, frame, arg)               \
  do {                                                                    \
    if ((sink) != nullptr) {                                              \
      (sink)->spans.record((phase), (begin), (dur), (frame), (arg));      \
    }                                                                     \
  } while (false)
#else
#define CCDEM_OBS_SPAN(sink, phase, begin, dur, frame, arg) \
  do {                                                      \
    (void)sizeof(sink);                                     \
  } while (false)
#endif
