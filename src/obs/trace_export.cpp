#include "obs/trace_export.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace ccdem::obs {
namespace {

// --- shared formatting helpers ---------------------------------------------

/// Shortest-exact double rendering: %.17g round-trips every finite double
/// through strtod.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- a minimal JSON reader for our own writer's output ----------------------
//
// Numbers are kept as raw token text so 64-bit integers survive exactly
// (a double would mangle frame sequence numbers above 2^53).

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string raw;     // number token or decoded string
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue v;
    if (!parse_value(v)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      if (error != nullptr) *error = "trailing data after JSON value";
      return std::nullopt;
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool fail(const char* msg) {
    error_ = msg;
    return false;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.raw);
    }
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    return parse_number(out);
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"' || !parse_string(key)) {
        return fail("expected object key");
      }
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      JsonValue v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape digit");
          }
          if (code > 0x7f) return fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_bool(JsonValue& out) {
    out.kind = JsonValue::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(JsonValue& out) {
    out.kind = JsonValue::Kind::kNull;
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(JsonValue& out) {
    out.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a number");
    out.raw = s_.substr(start, pos_ - start);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool to_u64(const JsonValue& v, std::uint64_t* out) {
  if (v.kind != JsonValue::Kind::kNumber) return false;
  errno = 0;
  char* end = nullptr;
  *out = std::strtoull(v.raw.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

bool to_i64(const JsonValue& v, std::int64_t* out) {
  if (v.kind != JsonValue::Kind::kNumber) return false;
  errno = 0;
  char* end = nullptr;
  *out = std::strtoll(v.raw.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

bool to_double(const JsonValue& v, double* out) {
  if (v.kind != JsonValue::Kind::kNumber) return false;
  char* end = nullptr;
  *out = std::strtod(v.raw.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool parse_fail(std::string* error, const char* msg) {
  if (error != nullptr) *error = msg;
  return false;
}

}  // namespace

// --- Chrome trace_event JSON ------------------------------------------------

void write_chrome_trace(std::ostream& os, const std::vector<Span>& spans,
                        const Counters::Snapshot& counters) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << phase_name(s.phase)
       << "\",\"cat\":\"ccdem\",\"ph\":\"X\",\"ts\":" << s.begin.ticks
       << ",\"dur\":" << s.dur.ticks
       << ",\"pid\":1,\"tid\":" << (static_cast<int>(s.phase) + 1)
       << ",\"args\":{\"frame\":" << s.frame << ",\"arg\":" << s.arg << "}}";
  }
  os << "\n],\n\"counters\":{";
  first = true;
  for (const auto& [name, value] : counters.counters) {
    if (!first) os << ",";
    first = false;
    os << "\n\"" << escape_json(name) << "\":" << value;
  }
  os << "\n},\n\"gauges\":{";
  first = true;
  for (const auto& [name, value] : counters.gauges) {
    if (!first) os << ",";
    first = false;
    os << "\n\"" << escape_json(name) << "\":" << fmt_double(value);
  }
  os << "\n},\n\"displayTimeUnit\":\"ms\"}\n";
}

std::string chrome_trace_to_string(const std::vector<Span>& spans,
                                   const Counters::Snapshot& counters) {
  std::ostringstream os;
  write_chrome_trace(os, spans, counters);
  return os.str();
}

std::optional<ParsedTrace> parse_chrome_trace(const std::string& text,
                                              std::string* error) {
  JsonParser parser(text);
  const std::optional<JsonValue> root = parser.parse(error);
  if (!root) return std::nullopt;
  if (root->kind != JsonValue::Kind::kObject) {
    parse_fail(error, "top level is not an object");
    return std::nullopt;
  }

  ParsedTrace out;
  const JsonValue* events = root->find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    parse_fail(error, "missing traceEvents array");
    return std::nullopt;
  }
  for (const JsonValue& ev : events->array) {
    if (ev.kind != JsonValue::Kind::kObject) {
      parse_fail(error, "trace event is not an object");
      return std::nullopt;
    }
    const JsonValue* ph = ev.find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString ||
        ph->raw != "X") {
      continue;  // tolerate metadata events from other producers
    }
    Span s;
    const JsonValue* name = ev.find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString) {
      parse_fail(error, "event without a name");
      return std::nullopt;
    }
    const std::optional<Phase> phase = phase_from_name(name->raw);
    if (!phase) {
      parse_fail(error, "unknown span phase");
      return std::nullopt;
    }
    s.phase = *phase;
    const JsonValue* ts = ev.find("ts");
    const JsonValue* dur = ev.find("dur");
    const JsonValue* args = ev.find("args");
    if (ts == nullptr || !to_i64(*ts, &s.begin.ticks) || dur == nullptr ||
        !to_i64(*dur, &s.dur.ticks) || args == nullptr ||
        args->kind != JsonValue::Kind::kObject) {
      parse_fail(error, "event with malformed ts/dur/args");
      return std::nullopt;
    }
    const JsonValue* frame = args->find("frame");
    const JsonValue* arg = args->find("arg");
    if (frame == nullptr || !to_u64(*frame, &s.frame) || arg == nullptr ||
        !to_i64(*arg, &s.arg)) {
      parse_fail(error, "event with malformed frame/arg");
      return std::nullopt;
    }
    out.spans.push_back(s);
  }

  if (const JsonValue* counters = root->find("counters")) {
    if (counters->kind != JsonValue::Kind::kObject) {
      parse_fail(error, "counters is not an object");
      return std::nullopt;
    }
    for (const auto& [name, v] : counters->object) {
      std::uint64_t value = 0;
      if (!to_u64(v, &value)) {
        parse_fail(error, "counter with a non-integer value");
        return std::nullopt;
      }
      out.counters.emplace_back(name, value);
    }
  }
  if (const JsonValue* gauges = root->find("gauges")) {
    if (gauges->kind != JsonValue::Kind::kObject) {
      parse_fail(error, "gauges is not an object");
      return std::nullopt;
    }
    for (const auto& [name, v] : gauges->object) {
      double value = 0.0;
      if (!to_double(v, &value)) {
        parse_fail(error, "gauge with a non-numeric value");
        return std::nullopt;
      }
      out.gauges.emplace_back(name, value);
    }
  }
  return out;
}

// --- per-frame CSV -----------------------------------------------------------

void write_trace_csv(std::ostream& os, const std::vector<Span>& spans,
                     const Counters::Snapshot& counters) {
  os << "# ccdem trace v1\n";
  os << "frame,phase,ts_us,dur_us,arg\n";
  for (const Span& s : spans) {
    os << s.frame << ',' << phase_name(s.phase) << ',' << s.begin.ticks << ','
       << s.dur.ticks << ',' << s.arg << '\n';
  }
  os << "# counters\n";
  for (const auto& [name, value] : counters.counters) {
    os << name << ',' << value << '\n';
  }
  os << "# gauges\n";
  for (const auto& [name, value] : counters.gauges) {
    os << name << ',' << fmt_double(value) << '\n';
  }
}

std::string trace_csv_to_string(const std::vector<Span>& spans,
                                const Counters::Snapshot& counters) {
  std::ostringstream os;
  write_trace_csv(os, spans, counters);
  return os.str();
}

std::optional<ParsedTrace> parse_trace_csv(const std::string& text,
                                           std::string* error) {
  ParsedTrace out;
  enum class Section { kSpans, kCounters, kGauges };
  Section section = Section::kSpans;
  bool saw_magic = false;
  bool saw_span_header = false;

  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line == "# ccdem trace v1") {
      saw_magic = true;
      continue;
    }
    if (line == "# counters") {
      section = Section::kCounters;
      continue;
    }
    if (line == "# gauges") {
      section = Section::kGauges;
      continue;
    }
    if (line.empty()) continue;

    if (section == Section::kSpans) {
      if (!saw_span_header) {
        if (line != "frame,phase,ts_us,dur_us,arg") {
          parse_fail(error, "missing span header row");
          return std::nullopt;
        }
        saw_span_header = true;
        continue;
      }
      // frame,phase,ts,dur,arg -- five fields, none of which contain commas.
      std::size_t field_start = 0;
      std::string fields[5];
      int n = 0;
      for (; n < 5; ++n) {
        const std::size_t comma = line.find(',', field_start);
        if (comma == std::string::npos) {
          fields[n] = line.substr(field_start);
          ++n;
          break;
        }
        fields[n] = line.substr(field_start, comma - field_start);
        field_start = comma + 1;
      }
      if (n != 5) {
        parse_fail(error, "span row with wrong field count");
        return std::nullopt;
      }
      Span s;
      const std::optional<Phase> phase = phase_from_name(fields[1]);
      errno = 0;
      char* end = nullptr;
      s.frame = std::strtoull(fields[0].c_str(), &end, 10);
      bool ok = errno == 0 && end != nullptr && *end == '\0' && phase;
      s.begin.ticks = std::strtoll(fields[2].c_str(), &end, 10);
      ok = ok && errno == 0 && *end == '\0';
      s.dur.ticks = std::strtoll(fields[3].c_str(), &end, 10);
      ok = ok && errno == 0 && *end == '\0';
      s.arg = std::strtoll(fields[4].c_str(), &end, 10);
      ok = ok && errno == 0 && *end == '\0';
      if (!ok) {
        parse_fail(error, "span row with a malformed field");
        return std::nullopt;
      }
      s.phase = *phase;
      out.spans.push_back(s);
    } else {
      // name,value -- split at the LAST comma so dotted/odd names survive.
      const std::size_t comma = line.rfind(',');
      if (comma == std::string::npos) {
        parse_fail(error, "counter row without a value");
        return std::nullopt;
      }
      const std::string name = line.substr(0, comma);
      const std::string value = line.substr(comma + 1);
      errno = 0;
      char* end = nullptr;
      if (section == Section::kCounters) {
        const std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
        if (errno != 0 || end == nullptr || *end != '\0') {
          parse_fail(error, "counter row with a malformed value");
          return std::nullopt;
        }
        out.counters.emplace_back(name, v);
      } else {
        const double v = std::strtod(value.c_str(), &end);
        if (end == nullptr || *end != '\0') {
          parse_fail(error, "gauge row with a malformed value");
          return std::nullopt;
        }
        out.gauges.emplace_back(name, v);
      }
    }
  }
  if (!saw_magic) {
    parse_fail(error, "missing trace magic line");
    return std::nullopt;
  }
  return out;
}

}  // namespace ccdem::obs
