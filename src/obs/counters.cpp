#include "obs/counters.h"

#include <algorithm>

namespace ccdem::obs {

std::uint64_t& Counters::counter(std::string_view name) {
  if (auto it = counter_index_.find(name); it != counter_index_.end()) {
    return it->second->value;
  }
  counters_.push_back(CounterEntry{std::string(name), 0});
  CounterEntry* entry = &counters_.back();
  counter_index_.emplace(std::string_view(entry->name), entry);
  return entry->value;
}

double& Counters::gauge(std::string_view name) {
  if (auto it = gauge_index_.find(name); it != gauge_index_.end()) {
    return it->second->value;
  }
  gauges_.push_back(GaugeEntry{std::string(name), 0.0});
  GaugeEntry* entry = &gauges_.back();
  gauge_index_.emplace(std::string_view(entry->name), entry);
  return entry->value;
}

std::uint64_t Counters::value(std::string_view name) const {
  const auto it = counter_index_.find(name);
  return it == counter_index_.end() ? 0 : it->second->value;
}

double Counters::gauge_value(std::string_view name) const {
  const auto it = gauge_index_.find(name);
  return it == gauge_index_.end() ? 0.0 : it->second->value;
}

bool Counters::has_counter(std::string_view name) const {
  return counter_index_.find(name) != counter_index_.end();
}

Counters::Snapshot Counters::snapshot() const {
  Snapshot s;
  s.counters.reserve(counters_.size());
  for (const CounterEntry& e : counters_) s.counters.emplace_back(e.name, e.value);
  s.gauges.reserve(gauges_.size());
  for (const GaugeEntry& e : gauges_) s.gauges.emplace_back(e.name, e.value);
  std::sort(s.counters.begin(), s.counters.end());
  std::sort(s.gauges.begin(), s.gauges.end());
  return s;
}

void Counters::merge(const Counters& other) {
  for (const CounterEntry& e : other.counters_) counter(e.name) += e.value;
  for (const GaugeEntry& e : other.gauges_) {
    double& g = gauge(e.name);
    g = std::max(g, e.value);
  }
}

void Counters::clear() {
  counter_index_.clear();
  gauge_index_.clear();
  counters_.clear();
  gauges_.clear();
}

void Counters::assign(const Counters& other) {
  for (const CounterEntry& e : other.counters_) counter(e.name) = e.value;
  for (const GaugeEntry& e : other.gauges_) gauge(e.name) = e.value;
}

}  // namespace ccdem::obs
