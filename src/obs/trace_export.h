// Trace exporters: Chrome trace_event JSON and per-frame CSV.
//
// Both formats serialize the same data -- a span stream plus a counter
// snapshot -- and both round-trip: the parsers below re-read exactly what
// the writers emit, which the fuzz harness uses to prove the exporters are
// lossless and crash-free on arbitrary streams, and the golden-trace test
// uses to lock the CSV byte stream down.
//
// The JSON is a standard Trace Event File ("traceEvents" with complete 'X'
// events, ts/dur in microseconds = simulation ticks), loadable directly in
// chrome://tracing or https://ui.perfetto.dev.  Counters and gauges ride in
// top-level "counters"/"gauges" objects, which trace viewers ignore.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "obs/span_recorder.h"

namespace ccdem::obs {

/// What a parser recovered from an exported trace.
struct ParsedTrace {
  std::vector<Span> spans;
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, double>> gauges;           // name-sorted
};

/// Chrome trace_event JSON ('X' complete events, one per span).
void write_chrome_trace(std::ostream& os, const std::vector<Span>& spans,
                        const Counters::Snapshot& counters);
[[nodiscard]] std::string chrome_trace_to_string(
    const std::vector<Span>& spans, const Counters::Snapshot& counters);

/// Re-parses write_chrome_trace() output; std::nullopt on malformed input
/// with a message in `error`.
[[nodiscard]] std::optional<ParsedTrace> parse_chrome_trace(
    const std::string& text, std::string* error = nullptr);

/// Per-frame CSV: a `frame,phase,ts_us,dur_us,arg` span section followed by
/// `# counters` / `# gauges` name,value sections.  This is also the golden
/// trace format.
void write_trace_csv(std::ostream& os, const std::vector<Span>& spans,
                     const Counters::Snapshot& counters);
[[nodiscard]] std::string trace_csv_to_string(
    const std::vector<Span>& spans, const Counters::Snapshot& counters);

/// Re-parses write_trace_csv() output.
[[nodiscard]] std::optional<ParsedTrace> parse_trace_csv(
    const std::string& text, std::string* error = nullptr);

}  // namespace ccdem::obs
