// Counters: named monotonic counters and gauges for the observability layer.
//
// Components register the counters they own once (at construction) and get
// back a stable `std::uint64_t*` slot, so the per-frame hot path is a single
// pointer increment -- no string hashing per event.  Slots stay valid for
// the registry's lifetime (deque-backed storage never reallocates entries).
//
// Counters are monotonic by convention: components only ever add.  Gauges
// are last-value doubles (current refresh rate, current section index).
// merge() folds another registry in -- counters add, gauges take the max --
// which is how FleetRunner combines its per-worker registries into one
// fleet summary with totals identical to a serial run.
//
// NOT thread-safe by design: each fleet worker owns its own ObsSink, like
// it owns its own device and buffer pool; merging happens under the fleet's
// lock after a worker drains.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ccdem::obs {

class Counters {
 public:
  Counters() = default;
  Counters(const Counters& other) { assign(other); }
  Counters& operator=(const Counters& other) {
    if (this != &other) {
      clear();
      assign(other);
    }
    return *this;
  }

  /// Returns the slot for `name`, registering it (at zero) on first use.
  /// The reference is stable for this registry's lifetime.
  std::uint64_t& counter(std::string_view name);

  /// Returns the gauge slot for `name`, registering it (at zero) on first
  /// use.  Same stability guarantee as counter().
  double& gauge(std::string_view name);

  void add(std::string_view name, std::uint64_t delta) {
    counter(name) += delta;
  }
  void set_gauge(std::string_view name, double v) { gauge(name) = v; }

  /// Current value of a counter; 0 if it was never registered.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;
  /// Current value of a gauge; 0.0 if it was never registered.
  [[nodiscard]] double gauge_value(std::string_view name) const;
  [[nodiscard]] bool has_counter(std::string_view name) const;

  /// Deterministic (name-sorted) copies of the current values.
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Folds `other` in: counters add, gauges keep the maximum.  Registers
  /// names this registry has not seen.
  void merge(const Counters& other);

  /// Drops every registered counter and gauge (slots are invalidated).
  void clear();

  [[nodiscard]] std::size_t counter_count() const { return counters_.size(); }
  [[nodiscard]] std::size_t gauge_count() const { return gauges_.size(); }

 private:
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };

  void assign(const Counters& other);

  // Deques keep entry addresses stable as new names register.
  std::deque<CounterEntry> counters_;
  std::deque<GaugeEntry> gauges_;
  std::unordered_map<std::string_view, CounterEntry*> counter_index_;
  std::unordered_map<std::string_view, GaugeEntry*> gauge_index_;
};

}  // namespace ccdem::obs
