// SpanRecorder: per-frame phase spans on the simulated timeline.
//
// A span is one phase of one frame -- compose, meter, govern, panel-present
// -- stamped with its simulation begin time and modeled duration plus a
// free-form integer argument (pixels composed, samples compared, target Hz).
// Spans land in a fixed-capacity ring buffer: steady-state recording never
// allocates, and a long run simply keeps the most recent window (dropped()
// says how much history fell off the front).
//
// Recording compiles out entirely when CCDEM_OBS_SPANS=0 (see obs/obs.h for
// the call-site macro): record() becomes an empty inline and enabled() is a
// compile-time false, so the disabled build carries no branch, no store and
// no ring buffer traffic.  With spans compiled in, a recorder can still be
// disabled at runtime (set_enabled(false)) -- FleetRunner does this for its
// workers, whose span streams nobody reads.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "sim/time.h"

#ifndef CCDEM_OBS_SPANS
#define CCDEM_OBS_SPANS 1
#endif

namespace ccdem::obs {

/// The per-frame phases the simulated device stamps.
enum class Phase : std::uint8_t {
  kCompose = 0,       ///< SurfaceFlinger latches + composes at V-Sync
  kMeter = 1,         ///< content-rate meter grid comparison
  kGovern = 2,        ///< controller evaluation tick (DPM or governor)
  kPanelPresent = 3,  ///< panel scans out a composed frame
  kRecover = 4,       ///< self-healing action (retry, fallback, safe mode)
  kArbiter = 5,       ///< policy-pipeline arbitration (one per evaluation)
  kDegrade = 6,       ///< degradation-ladder rung change (arg = new rung)
};
inline constexpr int kPhaseCount = 7;

[[nodiscard]] const char* phase_name(Phase p);
[[nodiscard]] std::optional<Phase> phase_from_name(std::string_view name);

struct Span {
  sim::Time begin{};       ///< simulation time the phase started
  sim::Duration dur{};     ///< modeled duration (0 for instantaneous phases)
  std::uint64_t frame = 0; ///< frame sequence number (or evaluation index)
  std::int64_t arg = 0;    ///< phase-specific payload (pixels, Hz, ...)
  Phase phase = Phase::kCompose;

  [[nodiscard]] bool operator==(const Span&) const = default;
};

class SpanRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit SpanRecorder(std::size_t capacity = kDefaultCapacity);

  /// True when span support is compiled into this build at all.
  [[nodiscard]] static constexpr bool compiled_in() {
    return CCDEM_OBS_SPANS != 0;
  }

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return compiled_in() && enabled_; }

#if CCDEM_OBS_SPANS
  void record(Phase phase, sim::Time begin, sim::Duration dur,
              std::uint64_t frame, std::int64_t arg) {
    if (!enabled_) return;
    ring_[head_] = Span{begin, dur, frame, arg, phase};
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    ++recorded_;
  }
#else
  void record(Phase, sim::Time, sim::Duration, std::uint64_t, std::int64_t) {}
#endif

  /// The retained spans, oldest first (at most capacity() of them).
  [[nodiscard]] std::vector<Span> spans() const;

  /// Spans ever recorded / spans that fell off the ring.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return recorded_ <= ring_.size() ? 0 : recorded_ - ring_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  void clear();

 private:
  std::vector<Span> ring_;
  std::size_t head_ = 0;       // next write position
  std::uint64_t recorded_ = 0;
  bool enabled_ = true;
};

}  // namespace ccdem::obs
