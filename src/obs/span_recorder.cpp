#include "obs/span_recorder.h"

#include <cassert>

namespace ccdem::obs {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kCompose: return "compose";
    case Phase::kMeter: return "meter";
    case Phase::kGovern: return "govern";
    case Phase::kPanelPresent: return "panel_present";
    case Phase::kRecover: return "recover";
    case Phase::kArbiter: return "arbiter";
    case Phase::kDegrade: return "degrade";
  }
  return "unknown";
}

std::optional<Phase> phase_from_name(std::string_view name) {
  for (int i = 0; i < kPhaseCount; ++i) {
    const Phase p = static_cast<Phase>(i);
    if (name == phase_name(p)) return p;
  }
  return std::nullopt;
}

SpanRecorder::SpanRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

std::vector<Span> SpanRecorder::spans() const {
  std::vector<Span> out;
  const std::uint64_t kept =
      recorded_ < ring_.size() ? recorded_ : ring_.size();
  out.reserve(static_cast<std::size_t>(kept));
  // Oldest retained span sits at head_ once the ring has wrapped, at 0
  // before that.
  std::size_t pos = recorded_ < ring_.size() ? 0 : head_;
  for (std::uint64_t i = 0; i < kept; ++i) {
    out.push_back(ring_[pos]);
    pos = pos + 1 == ring_.size() ? 0 : pos + 1;
  }
  return out;
}

void SpanRecorder::clear() {
  head_ = 0;
  recorded_ = 0;
}

}  // namespace ccdem::obs
