#include "campaign/campaign.h"

#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "campaign/bin_format.h"
#include "campaign/io_util.h"
#include "device/control_mode.h"

namespace ccdem::campaign {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSpecSchema = "ccdem-campaign-v1";
constexpr const char* kManifestSchema = "ccdem-campaign-manifest-v1";
constexpr const char* kGrids[] = {"2k", "4k", "9k", "36k", "full"};

bool known_grid(const std::string& g) {
  for (const char* k : kGrids) {
    if (g == k) return true;
  }
  return false;
}

std::optional<std::uint64_t> parse_u64_strict(const std::string& v) {
  if (v.empty() || v[0] == '-' || v[0] == '+') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
  if (errno != 0 || end != v.c_str() + v.size()) return std::nullopt;
  return x;
}

std::optional<std::int64_t> parse_i64_strict(const std::string& v) {
  if (v.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long x = std::strtoll(v.c_str(), &end, 10);
  if (errno != 0 || end != v.c_str() + v.size()) return std::nullopt;
  return x;
}

std::optional<double> parse_double_strict(const std::string& v) {
  if (v.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  if (errno == ERANGE || end != v.c_str() + v.size()) return std::nullopt;
  if (!std::isfinite(x)) return std::nullopt;
  return x;
}

std::optional<bool> parse_bool_strict(const std::string& v) {
  if (v == "0" || v == "false") return false;
  if (v == "1" || v == "true") return true;
  return std::nullopt;
}

std::string trim_ws(const std::string& s) {
  const std::size_t a = s.find_first_not_of(" \t");
  if (a == std::string::npos) return std::string();
  const std::size_t b = s.find_last_not_of(" \t");
  return s.substr(a, b - a + 1);
}

// Comma list; elements are trimmed ("a, b" == "a,b") but may contain
// interior spaces (app names like "Jelly Splash").
std::vector<std::string> split_list(const std::string& v) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= v.size()) {
    const std::size_t comma = v.find(',', start);
    const std::size_t end = comma == std::string::npos ? v.size() : comma;
    out.push_back(trim_ws(v.substr(start, end - start)));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ',';
    out += items[i];
  }
  return out;
}

/// Splits "key = value"; false when the line is not of that shape.
bool split_kv(const std::string& line, std::string* key, std::string* value) {
  const std::size_t eq = line.find('=');
  if (eq == std::string::npos) return false;
  *key = trim_ws(line.substr(0, eq));
  *value = trim_ws(line.substr(eq + 1));
  return !key->empty();
}

}  // namespace

std::string format_double(double v) {
  assert(std::isfinite(v));
  char buf[64];
  for (int prec = 1; prec <= std::numeric_limits<double>::max_digits10;
       ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::uint64_t CampaignSpec::size() const {
  return static_cast<std::uint64_t>(apps.size()) * modes.size() *
         grids.size() * fault_scales.size() * pressure_scales.size() *
         seeds.size();
}

check::Scenario CampaignSpec::scenario_at(std::uint64_t i) const {
  assert(i < size());
  const std::uint64_t s = i % seeds.size();
  i /= seeds.size();
  const std::uint64_t f = i % fault_scales.size();
  i /= fault_scales.size();
  const std::uint64_t p = i % pressure_scales.size();
  i /= pressure_scales.size();
  const std::uint64_t g = i % grids.size();
  i /= grids.size();
  const std::uint64_t m = i % modes.size();
  i /= modes.size();
  const std::uint64_t a = i;
  assert(a < apps.size());

  check::Scenario sc;
  sc.app = apps[a];
  const auto mode = device::control_mode_from_keyword(modes[m]);
  assert(mode && "validate() admits known mode keywords only");
  sc.mode = *mode;
  sc.grid = grids[g];
  sc.fault_scale = fault_scales[f];
  sc.pressure_scale = pressure_scales[p];
  sc.seed = seeds[s];
  sc.duration_ms = duration_ms;
  return sc;
}

std::string CampaignSpec::to_string() const {
  std::ostringstream os;
  os << "schema = " << kSpecSchema << "\n";
  os << "apps = " << join(apps) << "\n";
  os << "modes = " << join(modes) << "\n";
  os << "grids = " << join(grids) << "\n";
  std::vector<std::string> scales;
  scales.reserve(fault_scales.size());
  for (const double f : fault_scales) scales.push_back(format_double(f));
  os << "fault_scales = " << join(scales) << "\n";
  // Only emitted when non-trivial so pre-existing specs keep their
  // canonical text (and thus fingerprint) unchanged.
  if (!(pressure_scales.size() == 1 && pressure_scales[0] == 0.0)) {
    std::vector<std::string> pressures;
    pressures.reserve(pressure_scales.size());
    for (const double p : pressure_scales) {
      pressures.push_back(format_double(p));
    }
    os << "pressure_scales = " << join(pressures) << "\n";
  }
  std::vector<std::string> seed_texts;
  seed_texts.reserve(seeds.size());
  for (const std::uint64_t s : seeds) seed_texts.push_back(std::to_string(s));
  os << "seeds = " << join(seed_texts) << "\n";
  os << "duration_ms = " << duration_ms << "\n";
  os << "ab = " << (ab ? 1 : 0) << "\n";
  os << "record_spans = " << (record_spans ? 1 : 0) << "\n";
  os << "oracles = " << (oracles ? 1 : 0) << "\n";
  os << "shards = " << shards << "\n";
  return os.str();
}

std::optional<CampaignSpec> CampaignSpec::parse(const std::string& text,
                                                std::string* error) {
  auto fail = [&](int line_no, const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return std::nullopt;
  };

  CampaignSpec spec;
  bool saw_schema = false;
  std::vector<std::string> seen;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::string key, value;
    if (!split_kv(line, &key, &value)) {
      return fail(line_no, "expected 'key = value'");
    }
    for (const std::string& s : seen) {
      if (s == key) return fail(line_no, "duplicate key '" + key + "'");
    }
    seen.push_back(key);

    if (key == "schema") {
      if (value != kSpecSchema) {
        return fail(line_no, "unsupported schema '" + value + "'");
      }
      saw_schema = true;
    } else if (key == "apps") {
      spec.apps = split_list(value);
    } else if (key == "modes") {
      spec.modes = split_list(value);
    } else if (key == "grids") {
      spec.grids = split_list(value);
    } else if (key == "fault_scales") {
      spec.fault_scales.clear();
      for (const std::string& item : split_list(value)) {
        const auto d = parse_double_strict(item);
        if (!d) return fail(line_no, "bad fault scale '" + item + "'");
        spec.fault_scales.push_back(*d);
      }
    } else if (key == "pressure_scales") {
      spec.pressure_scales.clear();
      for (const std::string& item : split_list(value)) {
        const auto d = parse_double_strict(item);
        if (!d) return fail(line_no, "bad pressure scale '" + item + "'");
        spec.pressure_scales.push_back(*d);
      }
    } else if (key == "seeds") {
      spec.seeds.clear();
      for (const std::string& item : split_list(value)) {
        const auto s = parse_u64_strict(item);
        if (!s) return fail(line_no, "bad seed '" + item + "'");
        spec.seeds.push_back(*s);
      }
    } else if (key == "duration_ms") {
      const auto d = parse_i64_strict(value);
      if (!d) return fail(line_no, "bad duration_ms '" + value + "'");
      spec.duration_ms = *d;
    } else if (key == "ab" || key == "record_spans" || key == "oracles") {
      const auto b = parse_bool_strict(value);
      if (!b) return fail(line_no, "bad flag '" + value + "'");
      (key == "ab" ? spec.ab
                   : key == "record_spans" ? spec.record_spans
                                           : spec.oracles) = *b;
    } else if (key == "shards") {
      const auto s = parse_i64_strict(value);
      if (!s || *s < 1 || *s > 100000) {
        return fail(line_no, "bad shards '" + value + "'");
      }
      spec.shards = static_cast<int>(*s);
    } else {
      return fail(line_no, "unknown key '" + key + "'");
    }
  }
  if (!saw_schema) return fail(line_no, "missing 'schema' line");
  if (const auto why = spec.validate()) return fail(line_no, *why);
  return spec;
}

std::optional<std::string> CampaignSpec::validate() const {
  if (apps.empty()) return "apps must not be empty";
  for (const std::string& a : apps) {
    if (!check::find_app(a)) return "unknown app '" + a + "'";
  }
  if (modes.empty()) return "modes must not be empty";
  for (const std::string& m : modes) {
    const auto mode = device::control_mode_from_keyword(m);
    if (!mode) return "unknown mode '" + m + "'";
    if (*mode == device::ControlMode::kPipeline) {
      return "mode 'pipeline' is not a campaign axis (no stage spec)";
    }
    if (ab && *mode == device::ControlMode::kBaseline60) {
      return "mode 'baseline' cannot be an A/B controlled arm";
    }
  }
  if (grids.empty()) return "grids must not be empty";
  for (const std::string& g : grids) {
    if (!known_grid(g)) return "unknown grid '" + g + "'";
  }
  if (fault_scales.empty()) return "fault_scales must not be empty";
  for (const double f : fault_scales) {
    if (f < 0.0) return "fault scale must be >= 0";
  }
  if (pressure_scales.empty()) return "pressure_scales must not be empty";
  for (const double p : pressure_scales) {
    if (p < 0.0) return "pressure scale must be >= 0";
  }
  if (seeds.empty()) return "seeds must not be empty";
  if (duration_ms <= 0) return "duration_ms must be positive";
  if (shards < 1) return "shards must be >= 1";
  if (record_spans && oracles) {
    return "record_spans and oracles are mutually exclusive";
  }
  return std::nullopt;
}

std::uint64_t CampaignSpec::fingerprint() const { return fnv1a(to_string()); }

ShardRange shard_range(const CampaignSpec& spec, int shard) {
  assert(shard >= 0 && shard < spec.shards);
  const std::uint64_t n = spec.size();
  const auto s = static_cast<std::uint64_t>(spec.shards);
  const auto i = static_cast<std::uint64_t>(shard);
  return ShardRange{n * i / s, n * (i + 1) / s};
}

std::string shard_file_name(int shard) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "shard_%04d.bin", shard);
  return buf;
}

std::string shard_progress_name(int shard) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "shard_%04d.progress", shard);
  return buf;
}

Manifest Manifest::fresh(const CampaignSpec& spec) {
  Manifest m;
  m.fingerprint = spec.fingerprint();
  m.scenarios = spec.size();
  m.shards = spec.shards;
  m.shard_rows.assign(static_cast<std::size_t>(spec.shards), Shard{});
  m.spec_text = spec.to_string();
  return m;
}

bool Manifest::all_done() const {
  for (const Shard& s : shard_rows) {
    if (!s.done) return false;
  }
  return true;
}

bool Manifest::is_quarantined(std::uint64_t index) const {
  for (const Quarantine& q : quarantined) {
    if (q.index == index) return true;
  }
  return false;
}

std::vector<std::uint64_t> Manifest::quarantined_in(ShardRange range) const {
  std::vector<std::uint64_t> out;
  for (const Quarantine& q : quarantined) {
    if (q.index >= range.begin && q.index < range.end) out.push_back(q.index);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Manifest::to_string() const {
  std::ostringstream os;
  os << "schema = " << kManifestSchema << "\n";
  os << "fingerprint = " << fingerprint << "\n";
  os << "scenarios = " << scenarios << "\n";
  os << "shards = " << shards << "\n";
  os << "begin_spec\n" << spec_text;
  if (!spec_text.empty() && spec_text.back() != '\n') os << "\n";
  os << "end_spec\n";
  for (std::size_t i = 0; i < shard_rows.size(); ++i) {
    const Shard& s = shard_rows[i];
    os << "shard " << i << " = ";
    if (s.done) {
      os << "done file=" << s.file << " results=" << s.results
         << " bytes=" << s.bytes;
    } else {
      os << "pending";
    }
    os << " attempts=" << s.attempts << "\n";
  }
  for (const Quarantine& q : quarantined) {
    os << "quarantine " << q.index << " = " << q.reason << "\n";
  }
  return os.str();
}

std::optional<Manifest> Manifest::parse(const std::string& text,
                                        std::string* error) {
  auto fail = [&](int line_no, const std::string& why) {
    if (error != nullptr) {
      *error = "manifest line " + std::to_string(line_no) + ": " + why;
    }
    return std::nullopt;
  };

  Manifest m;
  bool saw_schema = false, in_spec = false;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (in_spec) {
      if (line == "end_spec") {
        in_spec = false;
      } else {
        m.spec_text += line;
        m.spec_text += '\n';
      }
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    if (line == "begin_spec") {
      in_spec = true;
      continue;
    }
    std::string key, value;
    if (!split_kv(line, &key, &value)) {
      return fail(line_no, "expected 'key = value'");
    }
    if (key == "schema") {
      if (value != kManifestSchema) {
        return fail(line_no, "unsupported schema '" + value + "'");
      }
      saw_schema = true;
    } else if (key == "fingerprint") {
      const auto f = parse_u64_strict(value);
      if (!f) return fail(line_no, "bad fingerprint");
      m.fingerprint = *f;
    } else if (key == "scenarios") {
      const auto n = parse_u64_strict(value);
      if (!n) return fail(line_no, "bad scenario count");
      m.scenarios = *n;
    } else if (key == "shards") {
      const auto n = parse_i64_strict(value);
      if (!n || *n < 1) return fail(line_no, "bad shard count");
      m.shards = static_cast<int>(*n);
      m.shard_rows.assign(static_cast<std::size_t>(m.shards), Shard{});
    } else if (key.rfind("shard ", 0) == 0) {
      const auto idx = parse_u64_strict(key.substr(6));
      if (!idx || *idx >= m.shard_rows.size()) {
        return fail(line_no, "bad shard index in '" + key + "'");
      }
      Shard s;
      std::istringstream vs(value);
      std::string token;
      bool first = true;
      while (vs >> token) {
        if (first) {
          if (token == "done") {
            s.done = true;
          } else if (token == "pending") {
            s.done = false;
          } else {
            return fail(line_no, "bad shard state '" + token + "'");
          }
          first = false;
          continue;
        }
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos) {
          return fail(line_no, "bad shard field '" + token + "'");
        }
        const std::string k = token.substr(0, eq);
        const std::string v = token.substr(eq + 1);
        if (k == "file") {
          s.file = v;
        } else if (k == "results") {
          const auto n = parse_u64_strict(v);
          if (!n) return fail(line_no, "bad results count");
          s.results = *n;
        } else if (k == "bytes") {
          const auto n = parse_u64_strict(v);
          if (!n) return fail(line_no, "bad byte count");
          s.bytes = *n;
        } else if (k == "attempts") {
          const auto n = parse_u64_strict(v);
          if (!n) return fail(line_no, "bad attempts count");
          s.attempts = static_cast<int>(*n);
        } else {
          return fail(line_no, "unknown shard field '" + k + "'");
        }
      }
      if (first) return fail(line_no, "empty shard row");
      m.shard_rows[static_cast<std::size_t>(*idx)] = s;
    } else if (key.rfind("quarantine ", 0) == 0) {
      const auto idx = parse_u64_strict(key.substr(11));
      if (!idx) return fail(line_no, "bad quarantine index");
      m.quarantined.push_back(Quarantine{*idx, value});
    } else {
      return fail(line_no, "unknown key '" + key + "'");
    }
  }
  if (in_spec) return fail(line_no, "unterminated begin_spec block");
  if (!saw_schema) return fail(line_no, "missing 'schema' line");
  if (m.shards == 0) return fail(line_no, "missing 'shards' line");
  return m;
}

bool save_file_atomic(const fs::path& path, const std::string& content,
                      std::string* error) {
  const fs::path tmp = path.string() + ".tmp";
  {
    io::FdOStream os(tmp);
    if (!os) {
      if (error != nullptr) *error = "cannot open " + tmp.string();
      return false;
    }
    os.write(content.data(), static_cast<std::streamsize>(content.size()));
    os.close();
    if (!os) {
      if (error != nullptr) *error = "write failed for " + tmp.string();
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "rename to " + path.string() + " failed: " + ec.message();
    }
    return false;
  }
  return true;
}

std::optional<std::string> load_file(const fs::path& path) {
  return io::read_file(path);
}

}  // namespace ccdem::campaign
