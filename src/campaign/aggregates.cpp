#include "campaign/aggregates.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "harness/json_writer.h"

namespace ccdem::campaign {

MergeHistogram::MergeHistogram(double lo_in, double hi_in, std::size_t buckets)
    : lo(lo_in), hi(hi_in), counts(buckets, 0) {
  assert(hi > lo && buckets >= 1);
}

void MergeHistogram::add(double v) {
  assert(!counts.empty());
  const double span = hi - lo;
  auto idx = static_cast<std::int64_t>((v - lo) / span *
                                       static_cast<double>(counts.size()));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts.size()) - 1);
  ++counts[static_cast<std::size_t>(idx)];
  if (total == 0) {
    min_value = v;
    max_value = v;
  } else {
    min_value = std::min(min_value, v);
    max_value = std::max(max_value, v);
  }
  ++total;
  sum += v;
}

void MergeHistogram::merge(const MergeHistogram& other) {
  assert(lo == other.lo && hi == other.hi &&
         counts.size() == other.counts.size() && "histogram shapes differ");
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  if (other.total > 0) {
    if (total == 0) {
      min_value = other.min_value;
      max_value = other.max_value;
    } else {
      min_value = std::min(min_value, other.min_value);
      max_value = std::max(max_value, other.max_value);
    }
  }
  total += other.total;
  sum += other.sum;
}

double MergeHistogram::mean() const {
  return total == 0 ? 0.0 : sum / static_cast<double>(total);
}

double MergeHistogram::fraction_below(double v) const {
  if (total == 0) return 0.0;
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (bucket_hi(i) <= v) below += counts[i];
  }
  return static_cast<double>(below) / static_cast<double>(total);
}

double MergeHistogram::bucket_lo(std::size_t i) const {
  return lo + (hi - lo) * static_cast<double>(i) /
                  static_cast<double>(counts.size());
}

double MergeHistogram::bucket_hi(std::size_t i) const {
  return lo + (hi - lo) * static_cast<double>(i + 1) /
                  static_cast<double>(counts.size());
}

bool counter_excluded_from_aggregates(std::string_view name) {
  return name.rfind("pool.", 0) == 0;
}

void Aggregates::add(const ResultRecord& r) {
  ++runs;
  frames_composed += r.frames_composed;
  content_frames += r.content_frames;
  rate_switches += r.rate_switches;
  sim_seconds += static_cast<double>(r.duration_ms) / 1000.0;
  power.add(r.mean_power_mw);
  if (r.has_ab) {
    ++ab_runs;
    quality.add(r.quality_pct);
    savings.add(r.saved_power_pct);
  }
  for (const RungResidency& rr : r.residency) {
    rung_seconds[rr.hz] += rr.seconds;
  }
}

void Aggregates::add_counters(const CountersRecord& c) {
  for (const auto& [name, value] : c.counters) {
    if (counter_excluded_from_aggregates(name)) continue;
    counter_sums[name] += value;
  }
}

void Aggregates::merge(const Aggregates& other) {
  runs += other.runs;
  ab_runs += other.ab_runs;
  frames_composed += other.frames_composed;
  content_frames += other.content_frames;
  rate_switches += other.rate_switches;
  sim_seconds += other.sim_seconds;
  power.merge(other.power);
  quality.merge(other.quality);
  savings.merge(other.savings);
  for (const auto& [hz, secs] : other.rung_seconds) rung_seconds[hz] += secs;
  for (const auto& [name, value] : other.counter_sums) {
    counter_sums[name] += value;
  }
}

namespace {

void encode_histogram(const MergeHistogram& h, PayloadWriter& w) {
  w.put_f64(h.lo);
  w.put_f64(h.hi);
  w.put_u32(static_cast<std::uint32_t>(h.counts.size()));
  for (const std::uint64_t c : h.counts) w.put_u64(c);
  w.put_u64(h.total);
  w.put_f64(h.sum);
  w.put_f64(h.min_value);
  w.put_f64(h.max_value);
}

MergeHistogram decode_histogram(PayloadReader& r) {
  MergeHistogram h;
  h.lo = r.get_f64();
  h.hi = r.get_f64();
  const std::uint32_t n = r.get_count();
  if (r.ok() && (n == 0 || !(h.hi > h.lo))) {
    r.fail("malformed histogram shape");
    return h;
  }
  h.counts.assign(r.ok() ? n : 0, 0);
  for (std::uint32_t i = 0; r.ok() && i < n; ++i) h.counts[i] = r.get_u64();
  h.total = r.get_u64();
  h.sum = r.get_f64();
  h.min_value = r.get_f64();
  h.max_value = r.get_f64();
  return h;
}

void write_histogram_json(harness::JsonWriter& w, const MergeHistogram& h,
                          bool with_cdf) {
  w.begin_object();
  w.kv("lo", h.lo);
  w.kv("hi", h.hi);
  w.kv("total", h.total);
  w.kv("mean", h.mean());
  w.kv("min", h.total > 0 ? h.min_value : 0.0);
  w.kv("max", h.total > 0 ? h.max_value : 0.0);
  w.key("counts");
  w.begin_array();
  for (const std::uint64_t c : h.counts) w.value(c);
  w.end_array();
  if (with_cdf) {
    // Bucket-edge CDF, skipping empty leading/trailing stretches.
    w.key("cdf");
    w.begin_array();
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      below += h.counts[i];
      if (h.counts[i] == 0) continue;
      w.begin_object();
      w.kv("le", h.bucket_hi(i));
      w.kv("p", h.total == 0 ? 0.0
                             : static_cast<double>(below) /
                                   static_cast<double>(h.total));
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

}  // namespace

std::string Aggregates::encode() const {
  std::string out;
  PayloadWriter w(out);
  w.put_u64(runs);
  w.put_u64(ab_runs);
  w.put_u64(frames_composed);
  w.put_u64(content_frames);
  w.put_u64(rate_switches);
  w.put_f64(sim_seconds);
  encode_histogram(power, w);
  encode_histogram(quality, w);
  encode_histogram(savings, w);
  w.put_u32(static_cast<std::uint32_t>(rung_seconds.size()));
  for (const auto& [hz, secs] : rung_seconds) {  // std::map: ascending hz
    w.put_u32(static_cast<std::uint32_t>(hz));
    w.put_f64(secs);
  }
  w.put_u32(static_cast<std::uint32_t>(counter_sums.size()));
  for (const auto& [name, value] : counter_sums) {  // ascending name
    w.put_str(name);
    w.put_u64(value);
  }
  return out;
}

std::optional<Aggregates> Aggregates::decode(std::string_view payload,
                                             std::string* error) {
  PayloadReader r(payload);
  Aggregates a;
  a.runs = r.get_u64();
  a.ab_runs = r.get_u64();
  a.frames_composed = r.get_u64();
  a.content_frames = r.get_u64();
  a.rate_switches = r.get_u64();
  a.sim_seconds = r.get_f64();
  a.power = decode_histogram(r);
  a.quality = decode_histogram(r);
  a.savings = decode_histogram(r);
  const std::uint32_t rungs = r.get_count();
  a.rung_seconds.clear();
  for (std::uint32_t i = 0; r.ok() && i < rungs; ++i) {
    const int hz = static_cast<int>(r.get_u32());
    const double secs = r.get_f64();
    a.rung_seconds[hz] = secs;
  }
  const std::uint32_t ncounters = r.get_count();
  for (std::uint32_t i = 0; r.ok() && i < ncounters; ++i) {
    std::string name = r.get_str();
    const std::uint64_t value = r.get_u64();
    a.counter_sums[std::move(name)] = value;
  }
  if (!r.done()) {
    if (error != nullptr) {
      *error = r.ok() ? "trailing bytes in aggregate payload" : r.error();
    }
    return std::nullopt;
  }
  return a;
}

void Aggregates::write_json(harness::JsonWriter& w) const {
  w.begin_object();
  w.kv("runs", runs);
  w.kv("ab_runs", ab_runs);
  w.kv("frames_composed", frames_composed);
  w.kv("content_frames", content_frames);
  w.kv("rate_switches", rate_switches);
  w.kv("sim_seconds", sim_seconds);
  w.kv("mean_power_mw", power.mean());
  w.kv("mean_quality_pct", quality.mean());
  w.kv("mean_saved_pct", savings.mean());
  w.key("power_mw");
  write_histogram_json(w, power, /*with_cdf=*/true);
  w.key("quality_pct");
  write_histogram_json(w, quality, /*with_cdf=*/false);
  w.key("saved_pct");
  write_histogram_json(w, savings, /*with_cdf=*/false);
  w.key("rung_seconds");
  w.begin_object();
  for (const auto& [hz, secs] : rung_seconds) {
    w.kv(std::to_string(hz), secs);
  }
  w.end_object();
  w.key("counter_sums");
  w.begin_object();
  for (const auto& [name, value] : counter_sums) {
    w.kv(name, value);
  }
  w.end_object();
  w.end_object();
}

}  // namespace ccdem::campaign
