// ccdem-bin-v1: the compact binary span/counter/result format the campaign
// engine writes on its hot results path.
//
// At campaign scale (millions of runs) the JSON results path is the
// bottleneck -- quoting, escaping and float re-parsing cost more than the
// simulation work they describe.  This format is the opposite trade: fixed
// little-endian scalars (doubles as IEEE-754 bit patterns, so round-trips
// are bit-exact), length-prefixed strings, and length-prefixed records that
// a reader can stream one at a time in O(1) memory.  The JSON Chrome-trace
// and CSV exporters remain available as *converters* over this format
// (campaign/convert.h), off the hot path.
//
// File layout:
//   8-byte magic "CCDMBIN1", u32 version (=1), u32 flags (=0)
//   record*: u8 type, u32 payload_len, payload bytes
//   final record: kShardEnd carrying the result/record counts and an FNV-1a
//   checksum folded over every preceding record's bytes.
//
// Error handling is strict and bounded: every decode error names the byte
// offset it was detected at, a truncated stream is reported (never read
// past), trailing bytes inside a payload are rejected, and the end-record
// checksum catches any in-place mutation.  Encoding is canonical -- every
// payload byte is a pure function of the record struct -- so
// decode(encode(r)) == r and re-encoding a decoded stream reproduces the
// input byte-for-byte (the fuzz harness proves both).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "obs/span_recorder.h"

namespace ccdem::campaign {

inline constexpr char kBinMagic[8] = {'C', 'C', 'D', 'M', 'B', 'I', 'N', '1'};
inline constexpr std::uint32_t kBinVersion = 1;

/// Sanity caps, enforced by the decoder so a mutated length prefix cannot
/// trigger a huge allocation.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 28;
inline constexpr std::uint32_t kMaxStringBytes = 1u << 20;
inline constexpr std::uint32_t kMaxElementCount = 1u << 24;

enum class RecordType : std::uint8_t {
  kResult = 1,     ///< one experiment run's scalar results
  kCounters = 2,   ///< a counter snapshot (order-preserving)
  kSpans = 3,      ///< an obs span stream (for the trace converters)
  kAggregate = 4,  ///< serialized streaming aggregates (aggregates.h)
  kShardEnd = 5,   ///< end marker: counts + checksum over prior records
};

/// Time the panel spent at one ladder rung during a run.
struct RungResidency {
  int hz = 0;
  double seconds = 0.0;
  [[nodiscard]] bool operator==(const RungResidency&) const = default;
};

/// The per-run scalars the streaming aggregates and summary converters
/// consume.  A subset of harness::ExperimentResult (traces stay with the
/// worker; fleet dashboards aggregate, they do not replot single runs).
struct ResultRecord {
  std::uint64_t scenario_index = 0;  ///< position in the campaign matrix
  std::string app;
  std::string mode;  ///< control-mode keyword ("section+boost", ...)
  std::uint64_t seed = 1;
  std::int64_t duration_ms = 0;
  double mean_power_mw = 0.0;
  double mean_refresh_hz = 0.0;
  double meter_error_rate = 0.0;
  double response_mean_ms = 0.0;
  std::uint64_t frames_composed = 0;
  std::uint64_t content_frames = 0;
  std::uint64_t frames_posted = 0;
  std::uint64_t rate_switches = 0;
  std::uint64_t final_frame_hash = 0;
  /// True when the scenario ran an A/B pair (baseline-60 arm with the same
  /// seed); the two fields below are meaningful only then.
  bool has_ab = false;
  double saved_power_pct = 0.0;
  double quality_pct = 0.0;
  /// Ascending-hz per-rung panel residency for this run.
  std::vector<RungResidency> residency;

  [[nodiscard]] bool operator==(const ResultRecord&) const = default;
};

struct CountersRecord {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  [[nodiscard]] bool operator==(const CountersRecord&) const = default;
};

struct SpansRecord {
  std::vector<obs::Span> spans;
  [[nodiscard]] bool operator==(const SpansRecord&) const = default;
};

/// Opaque aggregate payload; campaign/aggregates.h encodes and decodes it.
/// Kept opaque here so the record layer has no dependency on the aggregate
/// schema (and an old reader can still skip/copy the record).
struct AggregateRecord {
  std::string payload;
  [[nodiscard]] bool operator==(const AggregateRecord&) const = default;
};

struct ShardEndRecord {
  std::uint64_t results = 0;   ///< kResult records before this marker
  std::uint64_t records = 0;   ///< all records before this marker
  std::uint64_t checksum = 0;  ///< FNV-1a over their encoded bytes
  [[nodiscard]] bool operator==(const ShardEndRecord&) const = default;
};

using Record = std::variant<ResultRecord, CountersRecord, SpansRecord,
                            AggregateRecord, ShardEndRecord>;

[[nodiscard]] RecordType record_type(const Record& r);

// --- payload scalar encoding (shared with aggregates.cpp) -----------------

/// Appends little-endian scalars / length-prefixed strings to a buffer.
class PayloadWriter {
 public:
  explicit PayloadWriter(std::string& out) : out_(out) {}

  void put_u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v);  // IEEE-754 bit pattern; NaN payloads survive
  void put_str(std::string_view s);

 private:
  std::string& out_;
};

/// Strict, bounds-checked reads over one record payload.  The first failed
/// read latches an error (with the offset it happened at) and every later
/// read returns zero values, so decoders can parse straight-line and check
/// ok() once at the end.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64();
  std::string get_str();

  /// A count prefix for a repeated group; fails if it exceeds `cap` or if
  /// even zero-byte elements could not fit the remaining payload.
  std::uint32_t get_count(std::uint32_t cap = kMaxElementCount);

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// All bytes consumed and no error -- what a complete decode requires.
  [[nodiscard]] bool done() const { return ok() && pos_ == data_.size(); }
  void fail(const std::string& why);

 private:
  [[nodiscard]] bool need(std::size_t n, const char* what);

  std::string_view data_;
  std::size_t pos_ = 0;
  std::string error_;
};

// --- record stream I/O ----------------------------------------------------

/// Encodes one record (type byte + u32 length + payload) to a buffer.
[[nodiscard]] std::string encode_record(const Record& r);

/// FNV-1a 64 over a byte range, seeded with `h` so it folds across records.
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes,
                                  std::uint64_t h = 0xcbf29ce484222325ULL);

/// Streams records to `os`.  write_end() emits the kShardEnd marker with
/// the running counts/checksum; a file without it is detectably truncated.
class BinWriter {
 public:
  explicit BinWriter(std::ostream& os);

  void write(const Record& r);
  void write_end();

  [[nodiscard]] std::uint64_t records_written() const { return records_; }
  [[nodiscard]] std::uint64_t results_written() const { return results_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_; }

 private:
  std::ostream& os_;
  std::uint64_t records_ = 0;
  std::uint64_t results_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t checksum_ = 0xcbf29ce484222325ULL;
  bool ended_ = false;
};

/// Streams records from `is` in O(max-record) memory.  Usage:
///   BinReader r(is);
///   while (auto rec = r.next()) { ... }
///   if (!r.ok()) -> malformed (error() has offset + reason)
///   else if (!r.complete()) -> truncated (no verified end marker)
class BinReader {
 public:
  explicit BinReader(std::istream& is);

  /// The next record, or std::nullopt at end-of-stream / error.  The
  /// kShardEnd record is returned too (after verification); reads past it
  /// fail with "trailing data".
  [[nodiscard]] std::optional<Record> next();

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }
  /// True once a kShardEnd with matching counts and checksum was read.
  [[nodiscard]] bool complete() const { return saw_end_ && ok(); }
  [[nodiscard]] std::uint64_t offset() const { return offset_; }
  [[nodiscard]] std::uint64_t results_seen() const { return results_; }

 private:
  void fail(const std::string& why);

  std::istream& is_;
  std::string buf_;  // reused payload buffer
  std::uint64_t offset_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t results_ = 0;
  std::uint64_t checksum_ = 0xcbf29ce484222325ULL;
  std::string error_;
  bool saw_end_ = false;
  bool header_read_ = false;
};

/// Convenience: decode every record of `data`; std::nullopt + error on any
/// malformed/truncated input.  Tests and small converters use this; the
/// coordinator streams with BinReader instead.
[[nodiscard]] std::optional<std::vector<Record>> decode_all(
    std::string_view data, std::string* error = nullptr);

/// Convenience: header + each record + end marker, as one buffer.
[[nodiscard]] std::string encode_all(const std::vector<Record>& records);

}  // namespace ccdem::campaign
