#include "campaign/io_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ccdem::campaign::io {

namespace {

constexpr std::size_t kBufSize = 64 * 1024;

int open_retry(const char* path, int flags, mode_t mode = 0) {
  int fd = -1;
  do {
    fd = ::open(path, flags, mode);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  } while (fd < 0 && errno == EINTR);
  return fd;
}

}  // namespace

bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    // A short write is not an error; just keep going with the rest.
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

long read_all(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, p + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;  // EOF
    got += static_cast<std::size_t>(n);
  }
  return static_cast<long>(got);
}

std::optional<std::string> read_file(const std::filesystem::path& path) {
  const int fd = open_retry(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  std::string out;
  char chunk[kBufSize];
  for (;;) {
    const long n = read_all(fd, chunk, sizeof chunk);
    if (n < 0) {
      ::close(fd);
      return std::nullopt;
    }
    out.append(chunk, static_cast<std::size_t>(n));
    if (static_cast<std::size_t>(n) < sizeof chunk) break;  // EOF reached
  }
  ::close(fd);
  return out;
}

FdStreamBuf::~FdStreamBuf() { (void)close(); }

bool FdStreamBuf::open_write(const std::filesystem::path& path) {
  if (fd_ >= 0) return false;
  fd_ = open_retry(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return false;
  writing_ = true;
  buf_.resize(kBufSize);
  setp(buf_.data(), buf_.data() + buf_.size());
  return true;
}

bool FdStreamBuf::open_read(const std::filesystem::path& path) {
  if (fd_ >= 0) return false;
  fd_ = open_retry(path.c_str(), O_RDONLY);
  if (fd_ < 0) return false;
  writing_ = false;
  buf_.resize(kBufSize);
  setg(buf_.data(), buf_.data(), buf_.data());  // empty: first read fills
  return true;
}

bool FdStreamBuf::close() {
  if (fd_ < 0) return true;
  bool ok = true;
  if (writing_) ok = flush_buffer();
  int rc = -1;
  do {
    rc = ::close(fd_);
  } while (rc < 0 && errno == EINTR);
  fd_ = -1;
  return ok && rc == 0;
}

bool FdStreamBuf::flush_buffer() {
  const std::size_t n = static_cast<std::size_t>(pptr() - pbase());
  if (n > 0 && !write_all(fd_, pbase(), n)) return false;
  setp(buf_.data(), buf_.data() + buf_.size());
  return true;
}

int FdStreamBuf::overflow(int ch) {
  if (fd_ < 0 || !writing_ || !flush_buffer()) return traits_type::eof();
  if (ch != traits_type::eof()) {
    *pptr() = static_cast<char>(ch);
    pbump(1);
  }
  return ch == traits_type::eof() ? 0 : ch;
}

std::streamsize FdStreamBuf::xsputn(const char* s, std::streamsize n) {
  if (fd_ < 0 || !writing_) return 0;
  // Large writes bypass the buffer entirely (after draining it).
  if (static_cast<std::size_t>(n) >= buf_.size()) {
    if (!flush_buffer()) return 0;
    return write_all(fd_, s, static_cast<std::size_t>(n)) ? n : 0;
  }
  if (pptr() + n > epptr() && !flush_buffer()) return 0;
  std::memcpy(pptr(), s, static_cast<std::size_t>(n));
  pbump(static_cast<int>(n));
  return n;
}

int FdStreamBuf::sync() {
  if (fd_ < 0 || !writing_) return 0;
  return flush_buffer() ? 0 : -1;
}

int FdStreamBuf::underflow() {
  if (fd_ < 0 || writing_) return traits_type::eof();
  const long n = read_all(fd_, buf_.data(), buf_.size());
  if (n <= 0) return traits_type::eof();
  setg(buf_.data(), buf_.data(), buf_.data() + n);
  return traits_type::to_int_type(buf_[0]);
}

FdOStream::FdOStream(const std::filesystem::path& path) : std::ostream(&buf_) {
  if (!buf_.open_write(path)) setstate(failbit);
}

void FdOStream::close() {
  if (!buf_.close()) setstate(failbit);
}

FdIStream::FdIStream(const std::filesystem::path& path) : std::istream(&buf_) {
  if (!buf_.open_read(path)) setstate(failbit);
}

}  // namespace ccdem::campaign::io
