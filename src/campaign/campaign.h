// Campaign description and checkpoint manifest.
//
// A campaign is a scenario matrix -- the cartesian product
// app x mode x grid x fault-scale x pressure-scale x seed -- plus
// per-run settings, sharded
// into contiguous index ranges that worker processes execute independently.
// Everything is pure data in the repo's strict key=value dialect, so a
// campaign can be described, resumed and audited without recompiling.
//
// The manifest (`ccdem-campaign-manifest-v1`) is the coordinator's
// checkpoint: it embeds the canonical spec (resume refuses a different
// matrix via the fingerprint), one row per shard (pending/done + the shard
// file's result/byte counts), and the quarantine list of scenario indices
// that crashed or tripped an oracle and were excluded after minimization.
// The coordinator rewrites it atomically (tmp + rename) after every state
// change, so a killed coordinator or worker costs at most the shards that
// were in flight.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "check/scenario.h"

namespace ccdem::campaign {

struct CampaignSpec {
  std::vector<std::string> apps = {"Facebook"};
  /// Control-mode keywords ("section+boost", "naive", ...).  "pipeline"
  /// is rejected (explicit stage specs have no campaign axis yet) and
  /// "baseline" is rejected when `ab` is set (run_ab supplies that arm).
  std::vector<std::string> modes = {"section+boost"};
  std::vector<std::string> grids = {"9k"};
  std::vector<double> fault_scales = {0.0};
  /// Pressure-episode scales (check::Scenario::pressure_scale axis).  The
  /// default single 0 keeps every existing spec's canonical text -- and so
  /// its fingerprint -- unchanged: the key is only serialized when the axis
  /// is non-trivial.
  std::vector<double> pressure_scales = {0.0};
  std::vector<std::uint64_t> seeds = {1};
  std::int64_t duration_ms = 2000;
  /// Run a baseline-60 A/B arm per scenario (adds quality/savings to the
  /// aggregates at the cost of a second run per scenario).
  bool ab = false;
  /// Record per-run span streams into the shard files (serial workers
  /// only; spans are scheduling-agnostic but heavy, default off).
  bool record_spans = false;
  /// Additionally run every scenario through the DST oracles; failures are
  /// excluded from the aggregates and land as quarantined `.repro`s.
  bool oracles = false;
  int shards = 4;

  /// Matrix size (product of the axes).
  [[nodiscard]] std::uint64_t size() const;
  /// The scenario at matrix index `i` (seed varies fastest, then
  /// fault-scale, pressure-scale, grid, mode; app varies slowest).
  [[nodiscard]] check::Scenario scenario_at(std::uint64_t i) const;

  /// Canonical `ccdem-campaign-v1` text; parse(to_string()) == *this.
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::optional<CampaignSpec> parse(
      const std::string& text, std::string* error = nullptr);
  /// Rejects empty axes, unknown apps/modes/grids, negative scales, ...
  [[nodiscard]] std::optional<std::string> validate() const;
  /// FNV-1a of the canonical text; the resume compatibility check.
  [[nodiscard]] std::uint64_t fingerprint() const;

  [[nodiscard]] bool operator==(const CampaignSpec&) const = default;
};

/// Contiguous scenario-index range [begin, end) owned by one shard.
struct ShardRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  [[nodiscard]] std::uint64_t size() const { return end - begin; }
};

[[nodiscard]] ShardRange shard_range(const CampaignSpec& spec, int shard);
[[nodiscard]] std::string shard_file_name(int shard);      // shard_0007.bin
[[nodiscard]] std::string shard_progress_name(int shard);  // shard_0007.progress

struct Manifest {
  std::uint64_t fingerprint = 0;
  std::uint64_t scenarios = 0;
  int shards = 0;

  struct Shard {
    bool done = false;
    std::string file;  ///< set when done
    std::uint64_t results = 0;
    std::uint64_t bytes = 0;
    int attempts = 0;  ///< worker launches so far
    [[nodiscard]] bool operator==(const Shard&) const = default;
  };
  std::vector<Shard> shard_rows;

  struct Quarantine {
    std::uint64_t index = 0;
    std::string reason;  ///< single line ("worker crashed (signal 6)", ...)
    [[nodiscard]] bool operator==(const Quarantine&) const = default;
  };
  std::vector<Quarantine> quarantined;

  /// The campaign's canonical spec text, embedded verbatim.
  std::string spec_text;

  [[nodiscard]] static Manifest fresh(const CampaignSpec& spec);
  [[nodiscard]] bool all_done() const;
  [[nodiscard]] bool is_quarantined(std::uint64_t index) const;
  /// Quarantined indices inside `range`, ascending.
  [[nodiscard]] std::vector<std::uint64_t> quarantined_in(
      ShardRange range) const;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::optional<Manifest> parse(
      const std::string& text, std::string* error = nullptr);

  [[nodiscard]] bool operator==(const Manifest&) const = default;
};

/// Write-then-rename, so readers never observe a half-written file.
[[nodiscard]] bool save_file_atomic(const std::filesystem::path& path,
                                    const std::string& content,
                                    std::string* error = nullptr);
[[nodiscard]] std::optional<std::string> load_file(
    const std::filesystem::path& path);

/// Shortest decimal text that strtod's back to exactly `v` (bounded by
/// max_digits10); the canonical double rendering for spec/manifest files.
[[nodiscard]] std::string format_double(double v);

}  // namespace ccdem::campaign
