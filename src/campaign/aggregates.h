// Streaming mergeable aggregates: campaign-wide statistics in O(1) memory
// per shard.
//
// A fleet dashboard wants distributions (quality histogram, power CDF,
// per-rung residency) and totals (counter sums, frames) over millions of
// runs; holding per-run results to compute them would make the coordinator
// O(runs).  Instead each worker folds its runs into a fixed-size Aggregates
// as it goes, the shard file carries the folded value, and the coordinator
// merges one Aggregates per shard -- O(shards) state, independent of how
// many runs each shard held.
//
// Merge laws (DESIGN.md section 13, proven by tests/test_aggregates.cpp):
//   * a merge with a default-constructed Aggregates is the identity, and
//     merge is associative on all integral state (double sums re-associate
//     only to rounding, hence the fixed fold order below);
//   * every integral field (bucket counts, totals, counter sums, run
//     counts) is fully order-independent: any merge tree over the same
//     runs yields the same value;
//   * double accumulators (sums, residency seconds) are reduced in a FIXED
//     fold order -- runs in scenario-index order within a shard, shards in
//     shard-index order at the coordinator -- which is what makes a resumed
//     campaign's merged output byte-identical to an uninterrupted run of
//     the same spec (the spec pins the shard layout; a different layout
//     re-associates the sums and may differ in the last ulp).
//
// Scheduling-dependent counters (the pool.* family, whose values depend on
// how runs share a fleet worker's device) are excluded from counter sums,
// mirroring the fleet-vs-serial oracle's "identical modulo pool.*" law.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/bin_format.h"

namespace ccdem::harness {
class JsonWriter;
}

namespace ccdem::campaign {

/// Fixed-bucket histogram with mergeable moments.  Values clamp into the
/// edge buckets, so the shape is total over any input.
struct MergeHistogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::uint64_t> counts;  // size = bucket count
  std::uint64_t total = 0;
  double sum = 0.0;
  double min_value = 0.0;  // valid iff total > 0
  double max_value = 0.0;  // valid iff total > 0

  MergeHistogram() = default;
  MergeHistogram(double lo, double hi, std::size_t buckets);

  void add(double v);
  /// Requires identical lo/hi/bucket-count shape.
  void merge(const MergeHistogram& other);

  [[nodiscard]] double mean() const;
  /// Fraction of samples at or below `v` (bucket-resolution CDF).
  [[nodiscard]] double fraction_below(double v) const;
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;

  [[nodiscard]] bool operator==(const MergeHistogram&) const = default;
};

struct Aggregates {
  std::uint64_t runs = 0;
  std::uint64_t ab_runs = 0;  ///< runs that carried an A/B quality arm
  std::uint64_t frames_composed = 0;
  std::uint64_t content_frames = 0;
  std::uint64_t rate_switches = 0;
  double sim_seconds = 0.0;

  /// Per-run mean power, mW.  fraction_below() is the fleet power CDF.
  MergeHistogram power{0.0, 2000.0, 200};
  /// Display quality %, A/B runs only.
  MergeHistogram quality{0.0, 100.0, 100};
  /// Saved power %, A/B runs only (negative = regression).
  MergeHistogram savings{-50.0, 100.0, 150};
  /// Panel residency: simulated seconds spent at each ladder rung.
  std::map<int, double> rung_seconds;
  /// Summed obs counters (pool.* excluded -- scheduling-dependent).
  std::map<std::string, std::uint64_t> counter_sums;

  void add(const ResultRecord& r);
  void add_counters(const CountersRecord& c);
  void merge(const Aggregates& other);

  /// Canonical binary payload for an AggregateRecord (maps serialize in
  /// key order, so encode() is deterministic).
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static std::optional<Aggregates> decode(
      std::string_view payload, std::string* error = nullptr);

  /// Writes the aggregate as a JSON object (summary scalars, histogram
  /// buckets, CDF points, residency, counter sums) via the given writer.
  void write_json(harness::JsonWriter& w) const;

  [[nodiscard]] bool operator==(const Aggregates&) const = default;
};

/// True for counters excluded from aggregation (currently the pool.*
/// family, whose values depend on fleet scheduling, not on the runs).
[[nodiscard]] bool counter_excluded_from_aggregates(std::string_view name);

}  // namespace ccdem::campaign
