// EINTR-safe file I/O for the campaign layer.
//
// Campaign workers run for minutes under a coordinator that signals them
// (SIGTERM drain, SIGKILL crash tests) and under CI runners that deliver
// timer/profiling signals; an unretried read(2)/write(2) can fail with
// EINTR or return a short transfer at exactly the wrong moment and corrupt
// a shard mid-record.  write_all/read_all retry both cases, and
// FdOStream/FdIStream adapt them to std::ostream/std::istream so
// BinWriter/BinReader (which speak iostreams) and the sidecar writers get
// the retry behaviour without changing their interfaces.
#pragma once

#include <cstddef>
#include <filesystem>
#include <istream>
#include <optional>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

namespace ccdem::campaign::io {

/// Writes all `size` bytes to `fd`, retrying EINTR and short writes.
[[nodiscard]] bool write_all(int fd, const void* data, std::size_t size);

/// Reads up to `size` bytes from `fd`, retrying EINTR and short reads;
/// stops early only at EOF.  Returns bytes read, or -1 on error.
[[nodiscard]] long read_all(int fd, void* data, std::size_t size);

/// Whole-file read through read_all; std::nullopt when the file cannot be
/// opened or a read fails.
[[nodiscard]] std::optional<std::string> read_file(
    const std::filesystem::path& path);

/// Buffered std::streambuf over an owned fd; every flush goes through
/// write_all and every fill through read_all.  One direction per instance
/// (decided by the open mode).
class FdStreamBuf final : public std::streambuf {
 public:
  FdStreamBuf() = default;
  ~FdStreamBuf() override;
  FdStreamBuf(const FdStreamBuf&) = delete;
  FdStreamBuf& operator=(const FdStreamBuf&) = delete;

  /// Opens for writing (O_WRONLY|O_CREAT|O_TRUNC).  False on failure.
  bool open_write(const std::filesystem::path& path);
  /// Opens for reading.  False on failure.
  bool open_read(const std::filesystem::path& path);
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  /// Flushes (write side) and closes; false when either step failed.
  bool close();

 protected:
  int overflow(int ch) override;
  std::streamsize xsputn(const char* s, std::streamsize n) override;
  int sync() override;
  int underflow() override;

 private:
  bool flush_buffer();

  int fd_ = -1;
  bool writing_ = false;
  std::vector<char> buf_;
};

/// std::ostream writing through an EINTR-safe FdStreamBuf.  Failbit is set
/// on open failure, so the `if (!os)` idiom works unchanged.
class FdOStream final : public std::ostream {
 public:
  explicit FdOStream(const std::filesystem::path& path);
  /// Flushes and closes; sets failbit if anything failed.
  void close();

 private:
  FdStreamBuf buf_;
};

/// std::istream reading through an EINTR-safe FdStreamBuf.
class FdIStream final : public std::istream {
 public:
  explicit FdIStream(const std::filesystem::path& path);

 private:
  FdStreamBuf buf_;
};

}  // namespace ccdem::campaign::io
