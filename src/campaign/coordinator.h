// Campaign coordinator: shard the matrix across worker processes, survive
// their deaths, merge their shard files into streaming aggregates.
//
// The coordinator fork()s one process per in-flight shard (no exec, so the
// test hooks in WorkerOptions survive into the child) and trusts only what
// lands on disk: a worker that exits cleanly must leave a shard file whose
// streamed records reproduce its embedded aggregate, or the shard is
// re-run.  After every state change the manifest is rewritten atomically,
// so killing the coordinator *or* any worker costs at most the shards that
// were in flight -- a later invocation with `resume` picks up from the
// manifest (the embedded fingerprint refuses a different matrix).
//
// Crash isolation reuses src/check: when a worker dies, the scenarios named
// by its `.progress` sidecar are re-run one-by-one in isolated forked
// children; the one that dies again is minimized (fork-per-candidate
// predicate, so even a crashing candidate only costs a child) and written
// as a self-contained `.repro`, then quarantined in the manifest so the
// re-run skips it.  A scenario that trips a DST oracle (spec.oracles)
// takes the same path without the process archaeology.
//
// Memory stays O(shards): results stream through BinReader record-by-record
// and fold into one Aggregates per shard; nothing per-run is retained.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/aggregates.h"
#include "campaign/campaign.h"
#include "campaign/worker.h"

namespace ccdem::campaign {

struct CampaignOptions {
  /// Concurrent worker processes.
  int workers = 2;
  /// Per-shard worker settings (threads, chunk, test hooks).
  WorkerOptions worker{};
  /// Resume from `dir`'s manifest instead of starting fresh; refuses a
  /// manifest whose fingerprint does not match `spec`.
  bool resume = false;
  /// Extra launches a shard gets after a crash before the campaign gives
  /// up and returns incomplete (per invocation, not persisted).
  int max_shard_retries = 2;
  /// Test hook: apply worker.kill_after_runs only to this shard's first
  /// launch (-1 = no shard is killed).
  int kill_shard = -1;
  /// Re-run a dead worker's in-flight scenarios in isolated children to
  /// find the guilty one.
  bool isolate_crashes = true;
  /// Minimize a guilty/oracle-failing scenario before quarantining it.
  bool minimize = true;
  /// Optional progress stream (one line per shard event).
  std::ostream* log = nullptr;
};

struct CampaignResult {
  /// True when every shard is done (quarantined scenarios excluded).
  bool complete = false;
  std::string error;  ///< why the campaign stopped early, when !complete
  std::uint64_t runs = 0;
  Aggregates aggregates;
  std::vector<std::uint64_t> quarantined;
  std::vector<std::string> repro_files;  ///< .repro paths written this run
  /// Coordinator peak RSS (VmHWM) in kB; 0 where unsupported.
  long peak_rss_kb = 0;
};

/// File names the coordinator writes into the campaign directory.
[[nodiscard]] std::string manifest_file_name();    // manifest.txt
[[nodiscard]] std::string aggregates_file_name();  // aggregates.bin
[[nodiscard]] std::string summary_file_name();     // summary.json

/// Runs (or resumes) the campaign in `dir`.  On success the directory
/// holds the done shard files, `aggregates.bin` (a one-record ccdem-bin-v1
/// file with the merged aggregate -- byte-identical however the campaign
/// was interrupted and resumed) and `summary.json` (its JSON rendering).
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& spec,
                                          const std::filesystem::path& dir,
                                          const CampaignOptions& options = {});

/// Current process peak RSS in kB (Linux VmHWM; 0 elsewhere).
[[nodiscard]] long peak_rss_kb();

}  // namespace ccdem::campaign
