#include "campaign/worker.h"

#include <signal.h>  // NOLINT(modernize-deprecated-headers): sigaction

#include <algorithm>
#include <cassert>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <sstream>

#include "campaign/aggregates.h"
#include "campaign/io_util.h"
#include "check/dst.h"
#include "device/control_mode.h"
#include "harness/experiment.h"
#include "harness/fleet.h"
#include "obs/obs.h"

namespace ccdem::campaign {

namespace fs = std::filesystem;

namespace {

constexpr const char* kProgressSchema = "ccdem-campaign-progress-v1";
constexpr const char* kFailSchema = "ccdem-campaign-fail-v1";

ShardOutcome fail_outcome(std::string why) {
  ShardOutcome out;
  out.error = std::move(why);
  return out;
}

volatile std::sig_atomic_t g_drain_requested = 0;

void request_drain(int) { g_drain_requested = 1; }

/// Installs the drain handler for SIGTERM and restores the previous
/// disposition on scope exit, so run_shard can be called in-process (tests)
/// without leaking handler state.
class ScopedSigterm {
 public:
  ScopedSigterm() {
    g_drain_requested = 0;
    struct sigaction sa = {};
    sa.sa_handler = request_drain;
    sigemptyset(&sa.sa_mask);
    installed_ = sigaction(SIGTERM, &sa, &prev_) == 0;
  }
  ~ScopedSigterm() {
    if (installed_) sigaction(SIGTERM, &prev_, nullptr);
  }
  ScopedSigterm(const ScopedSigterm&) = delete;
  ScopedSigterm& operator=(const ScopedSigterm&) = delete;

 private:
  struct sigaction prev_ = {};
  bool installed_ = false;
};

}  // namespace

std::string shard_fail_name(int shard) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "shard_%04d.fail", shard);
  return buf;
}

std::string progress_to_string(int shard,
                               const std::vector<std::uint64_t>& inflight) {
  std::ostringstream os;
  os << "schema = " << kProgressSchema << "\n";
  os << "shard = " << shard << "\n";
  os << "inflight =";
  for (std::size_t i = 0; i < inflight.size(); ++i) {
    os << (i == 0 ? " " : ",") << inflight[i];
  }
  os << "\n";
  return os.str();
}

std::optional<std::vector<std::uint64_t>> parse_progress(
    const std::string& text) {
  std::istringstream is(text);
  std::string line;
  bool saw_schema = false;
  std::optional<std::vector<std::uint64_t>> inflight;
  while (std::getline(is, line)) {
    if (line.rfind("schema = ", 0) == 0) {
      if (line.substr(9) != kProgressSchema) return std::nullopt;
      saw_schema = true;
    } else if (line.rfind("inflight =", 0) == 0) {
      std::vector<std::uint64_t> out;
      std::string rest = line.substr(10);
      std::istringstream vs(rest);
      std::string item;
      while (std::getline(vs, item, ',')) {
        const std::size_t a = item.find_first_not_of(' ');
        if (a == std::string::npos) continue;
        errno = 0;
        char* end = nullptr;
        const unsigned long long v =
            std::strtoull(item.c_str() + a, &end, 10);
        if (errno != 0 || end != item.c_str() + item.size()) {
          return std::nullopt;
        }
        out.push_back(v);
      }
      inflight = std::move(out);
    }
  }
  if (!saw_schema || !inflight) return std::nullopt;
  return inflight;
}

std::string fail_to_string(const FailSidecar& f) {
  std::ostringstream os;
  os << "schema = " << kFailSchema << "\n";
  os << "index = " << f.index << "\n";
  os << "reason = " << f.reason << "\n";
  return os.str();
}

std::optional<FailSidecar> parse_fail(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  bool saw_schema = false, saw_index = false;
  FailSidecar f;
  while (std::getline(is, line)) {
    if (line.rfind("schema = ", 0) == 0) {
      if (line.substr(9) != kFailSchema) return std::nullopt;
      saw_schema = true;
    } else if (line.rfind("index = ", 0) == 0) {
      errno = 0;
      char* end = nullptr;
      const std::string v = line.substr(8);
      f.index = std::strtoull(v.c_str(), &end, 10);
      if (errno != 0 || end != v.c_str() + v.size()) return std::nullopt;
      saw_index = true;
    } else if (line.rfind("reason = ", 0) == 0) {
      f.reason = line.substr(9);
    }
  }
  if (!saw_schema || !saw_index) return std::nullopt;
  return f;
}

std::vector<RungResidency> compute_residency(const sim::Trace& refresh,
                                             sim::Duration duration) {
  std::vector<RungResidency> out;
  const auto& pts = refresh.points();
  if (pts.empty() || duration.ticks <= 0) return out;
  const sim::Time end{duration.ticks};
  // Step-hold semantics matching Trace::time_weighted_mean: time before the
  // first point is weighted with the first point's value.
  std::map<int, double> secs;
  sim::Time cursor{0};
  double value = pts.front().value;
  for (const sim::TracePoint& p : pts) {
    if (p.t >= end) break;
    if (p.t > cursor) {
      secs[static_cast<int>(std::lround(value))] += (p.t - cursor).seconds();
      cursor = p.t;
    }
    value = p.value;  // same-timestamp points: last one wins
  }
  if (cursor < end) {
    secs[static_cast<int>(std::lround(value))] += (end - cursor).seconds();
  }
  out.reserve(secs.size());
  for (const auto& [hz, s] : secs) out.push_back(RungResidency{hz, s});
  return out;
}

ResultRecord make_result_record(std::uint64_t index,
                                const check::Scenario& sc,
                                const harness::ExperimentResult& r) {
  ResultRecord rec;
  rec.scenario_index = index;
  rec.app = sc.app;
  rec.mode = device::control_mode_keyword(sc.mode);
  rec.seed = sc.seed;
  rec.duration_ms = sc.duration_ms;
  rec.mean_power_mw = r.mean_power_mw;
  rec.mean_refresh_hz = r.mean_refresh_hz;
  rec.meter_error_rate = r.meter_error_rate;
  rec.response_mean_ms = r.response_mean_ms;
  rec.frames_composed = r.frames_composed;
  rec.content_frames = r.content_frames;
  rec.frames_posted = r.frames_posted;
  rec.rate_switches = r.rate_switches;
  rec.final_frame_hash = r.final_frame_hash;
  rec.residency = compute_residency(r.refresh_rate, sc.duration());
  return rec;
}

ShardOutcome run_shard(const CampaignSpec& spec, int shard,
                       const fs::path& dir, const WorkerOptions& options) {
  const ShardRange range = shard_range(spec, shard);
  const fs::path final_path = dir / shard_file_name(shard);
  const fs::path tmp_path = final_path.string() + ".tmp";
  const fs::path progress_path = dir / shard_progress_name(shard);
  const fs::path fail_path = dir / shard_fail_name(shard);

  // The scenario indices this invocation actually runs.
  std::vector<std::uint64_t> pending;
  pending.reserve(range.size());
  for (std::uint64_t i = range.begin; i < range.end; ++i) {
    if (!std::binary_search(options.skip.begin(), options.skip.end(), i)) {
      pending.push_back(i);
    }
  }

  ScopedSigterm sigterm_guard;

  io::FdOStream os(tmp_path);
  if (!os) return fail_outcome("cannot open " + tmp_path.string());
  BinWriter writer(os);

  Aggregates agg;
  obs::Counters total_counters;
  const std::uint64_t chunk = std::max<std::uint64_t>(1, options.chunk);

  // Finishes the `.tmp` file (counters, aggregate, checksummed end marker)
  // without renaming it, and records `remaining` -- the indices this
  // invocation never ran -- in the `.progress` sidecar.  Shared by the
  // normal completion path (remaining empty, file renamed by the caller
  // below) and the SIGTERM drain.
  const auto finalize = [&]() -> std::optional<ShardOutcome> {
    CountersRecord counters;
    counters.counters = total_counters.snapshot().counters;
    writer.write(counters);
    agg.add_counters(counters);
    writer.write(AggregateRecord{agg.encode()});
    writer.write_end();
    os.flush();
    if (!os) {
      return fail_outcome("write failed for " + tmp_path.string());
    }
    os.close();
    return std::nullopt;
  };

  const auto drain = [&](std::vector<std::uint64_t> remaining)
      -> ShardOutcome {
    if (auto failed = finalize()) return *failed;
    if (std::string err;
        !save_file_atomic(progress_path, progress_to_string(shard, remaining),
                          &err)) {
      return fail_outcome(err);
    }
    ShardOutcome out;
    out.ok = true;
    out.interrupted = true;
    out.results = writer.results_written();
    out.bytes = writer.bytes_written();
    return out;
  };
  const auto remaining_from = [&](std::uint64_t next) {
    return std::vector<std::uint64_t>(
        pending.begin() + static_cast<std::ptrdiff_t>(next), pending.end());
  };

  for (std::uint64_t off = 0; off < pending.size(); off += chunk) {
    if (g_drain_requested) return drain(remaining_from(off));
    const std::uint64_t n =
        std::min<std::uint64_t>(chunk, pending.size() - off);
    const std::vector<std::uint64_t> inflight(
        pending.begin() + static_cast<std::ptrdiff_t>(off),
        pending.begin() + static_cast<std::ptrdiff_t>(off + n));
    if (std::string err;
        !save_file_atomic(progress_path, progress_to_string(shard, inflight),
                          &err)) {
      return fail_outcome(err);
    }

    std::vector<check::Scenario> scenarios;
    scenarios.reserve(inflight.size());
    for (const std::uint64_t idx : inflight) {
      if (options.run_hook) options.run_hook(idx);
      scenarios.push_back(spec.scenario_at(idx));
    }

    if (spec.oracles) {
      for (std::size_t j = 0; j < scenarios.size(); ++j) {
        const check::CheckReport report =
            check::check_scenario(scenarios[j]);
        if (!report.ok()) {
          FailSidecar f;
          f.index = inflight[j];
          f.reason = report.failures.front();
          std::string err;
          if (!save_file_atomic(fail_path, fail_to_string(f), &err)) {
            return fail_outcome(err);
          }
          ShardOutcome out;
          out.error = "oracle failure at scenario " + std::to_string(f.index);
          out.failed_index = f.index;
          out.failure = f.reason;
          return out;
        }
      }
    }

    if (spec.record_spans) {
      // Serial, one sink per run, spans on.
      for (std::size_t j = 0; j < scenarios.size(); ++j) {
        obs::ObsSink sink;
        harness::ExperimentConfig cfg = scenarios[j].experiment_config();
        cfg.obs = &sink;
        const harness::ExperimentResult res = harness::run_experiment(cfg);
        ResultRecord rec =
            make_result_record(inflight[j], scenarios[j], res);
        if (spec.ab) {
          obs::ObsSink bsink;
          harness::ExperimentConfig bcfg = cfg;
          bcfg.mode = device::ControlMode::kBaseline60;
          bcfg.obs = &bsink;
          const harness::ExperimentResult base = harness::run_experiment(bcfg);
          rec.has_ab = true;
          rec.saved_power_pct =
              base.mean_power_mw > 0.0
                  ? (base.mean_power_mw - res.mean_power_mw) /
                        base.mean_power_mw * 100.0
                  : 0.0;
          rec.quality_pct =
              metrics::compare_quality(base.content_rate, res.content_rate)
                  .display_quality_pct;
          total_counters.merge(bsink.counters);
        }
        writer.write(rec);
        agg.add(rec);
        writer.write(SpansRecord{sink.spans.spans()});
        total_counters.merge(sink.counters);
        if (options.kill_after_runs != 0 &&
            writer.results_written() >= options.kill_after_runs) {
          os.flush();
          std::raise(SIGKILL);
        }
        // The in-flight record is on disk; a requested drain stops here
        // (unless it was the last record anyway -- then finish normally).
        if (g_drain_requested && off + j + 1 < pending.size()) {
          return drain(remaining_from(off + j + 1));
        }
      }
      continue;
    }

    // Fleet path: one sweep per chunk; with A/B, the baseline arm rides in
    // the same sweep (configs [c0, b0, c1, b1, ...], results in order).
    std::vector<harness::ExperimentConfig> configs;
    configs.reserve(scenarios.size() * (spec.ab ? 2 : 1));
    for (const check::Scenario& sc : scenarios) {
      harness::ExperimentConfig cfg = sc.experiment_config();
      configs.push_back(cfg);
      if (spec.ab) {
        cfg.mode = device::ControlMode::kBaseline60;
        configs.push_back(cfg);
      }
    }
    harness::FleetRunner fleet(options.threads);
    const std::vector<harness::ExperimentResult> results = fleet.run(configs);
    total_counters.merge(fleet.stats().counters);

    for (std::size_t j = 0; j < scenarios.size(); ++j) {
      const std::size_t stride = spec.ab ? 2 : 1;
      const harness::ExperimentResult& res = results[j * stride];
      ResultRecord rec = make_result_record(inflight[j], scenarios[j], res);
      if (spec.ab) {
        const harness::ExperimentResult& base = results[j * stride + 1];
        rec.has_ab = true;
        rec.saved_power_pct =
            base.mean_power_mw > 0.0
                ? (base.mean_power_mw - res.mean_power_mw) /
                      base.mean_power_mw * 100.0
                : 0.0;
        rec.quality_pct =
            metrics::compare_quality(base.content_rate, res.content_rate)
                .display_quality_pct;
      }
      writer.write(rec);
      agg.add(rec);
      if (options.kill_after_runs != 0 &&
          writer.results_written() >= options.kill_after_runs) {
        os.flush();
        std::raise(SIGKILL);
      }
    }
    // The whole chunk's records are on disk; a drain stops before the next
    // fleet sweep starts.
    if (g_drain_requested && off + chunk < pending.size()) {
      return drain(remaining_from(off + chunk));
    }
  }

  if (auto failed = finalize()) return *failed;

  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return fail_outcome("rename to " + final_path.string() +
                        " failed: " + ec.message());
  }
  fs::remove(progress_path, ec);  // best-effort

  ShardOutcome out;
  out.ok = true;
  out.results = writer.results_written();
  out.bytes = writer.bytes_written();
  return out;
}

}  // namespace ccdem::campaign
