// Converters over the ccdem-bin-v1 hot path: the JSON/CSV exporters,
// demoted from the results path to offline tools.
//
// A shard file carries everything the old exporters consumed -- span
// streams, counter snapshots, per-run results -- so Chrome-trace JSON,
// trace CSV and a per-run results CSV are now *derived* artifacts: decode
// the records you need, hand them to the existing obs exporters.  Nothing
// on the campaign hot path pays for quoting or float printing.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <optional>
#include <string>

#include "campaign/bin_format.h"

namespace ccdem::campaign {

/// Chrome trace_event JSON of every SpansRecord in the shard file (the
/// counter snapshot rides along, as in obs::write_chrome_trace).  Returns
/// an error string on malformed input, std::nullopt on success.
[[nodiscard]] std::optional<std::string> bin_to_chrome_trace(
    const std::filesystem::path& bin_path, std::ostream& os);

/// obs trace CSV (spans + counters), same contract.
[[nodiscard]] std::optional<std::string> bin_to_trace_csv(
    const std::filesystem::path& bin_path, std::ostream& os);

/// Per-run results CSV: one row per ResultRecord, header first, scenario
/// index order as stored.  Numeric columns use the shortest round-trip
/// rendering (campaign::format_double).
[[nodiscard]] std::optional<std::string> bin_to_results_csv(
    const std::filesystem::path& bin_path, std::ostream& os);

}  // namespace ccdem::campaign
