// Campaign shard worker: run one contiguous scenario range, stream results
// into a `ccdem-bin-v1` shard file.
//
// A worker is a pure function of (spec, shard index) -- the coordinator
// forks one process per in-flight shard and trusts nothing but the shard
// file it leaves behind.  The worker runs its range in chunks through a
// FleetRunner (one chunk = one fleet sweep), folds every result into the
// shard's streaming Aggregates in scenario-index order, and finishes the
// file with the merged counter snapshot, the encoded aggregate and the
// checksummed end marker.  The file is written to a `.tmp` name and renamed
// only after the end marker, so a crashed worker leaves either nothing or a
// file that fails BinReader::complete() -- never a silently short result
// set.
//
// Crash forensics: before each chunk the worker atomically rewrites a
// `.progress` sidecar naming the in-flight scenario indices.  When a worker
// dies, the coordinator re-runs exactly those scenarios in isolation to
// find the guilty one (coordinator.h).
//
// Graceful termination: run_shard installs a SIGTERM handler (restored on
// return) that requests a drain.  At the next record/chunk boundary the
// worker finishes the in-flight record, writes the counters/aggregate/end
// marker onto the `.tmp` file (decodable, but never renamed -- the shard is
// not done), rewrites `.progress` with the unfinished indices, and returns
// ok so the process exits 0 instead of dying mid-record.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "campaign/bin_format.h"
#include "campaign/campaign.h"
#include "sim/trace.h"

namespace ccdem::harness {
struct ExperimentResult;
}

namespace ccdem::campaign {

/// Worker process exit codes the coordinator distinguishes.
inline constexpr int kWorkerExitOk = 0;
inline constexpr int kWorkerExitError = 1;   ///< I/O or internal failure
inline constexpr int kWorkerExitOracle = 3;  ///< a scenario tripped an oracle

struct WorkerOptions {
  /// Fleet threads per worker process (0 = one per hardware core).
  unsigned threads = 0;
  /// Scenarios per fleet sweep; also the crash-isolation window (a dead
  /// worker costs at most one chunk of re-runs).
  std::uint64_t chunk = 16;
  /// Quarantined scenario indices to skip (from the manifest).
  std::vector<std::uint64_t> skip;
  /// Test hook: raise(SIGKILL) after this many results are written
  /// (0 = never).  Exercises the mid-shard-death resume path in CI.
  std::uint64_t kill_after_runs = 0;
  /// Test hook: called with each scenario index before it runs, in the
  /// worker AND in the coordinator's isolation/minimization children -- a
  /// hook that aborts on index k simulates a scenario that kills its
  /// process wherever it executes.
  std::function<void(std::uint64_t)> run_hook;
};

struct ShardOutcome {
  bool ok = false;
  std::string error;  ///< single line when !ok
  /// SIGTERM drain: the worker finished its in-flight record, closed the
  /// `.tmp` file with the checksummed end marker (complete-decodable but
  /// NOT renamed), and listed the unfinished indices in the `.progress`
  /// sidecar.  `ok` is true -- the worker exits 0 -- and a relaunch
  /// re-runs the shard.
  bool interrupted = false;
  std::uint64_t results = 0;
  std::uint64_t bytes = 0;
  /// Set when a scenario tripped an oracle (spec.oracles): its matrix index
  /// and first failure line.  run_shard also persists these in the shard's
  /// `.fail` sidecar so the (likely forked) worker can just exit.
  std::optional<std::uint64_t> failed_index;
  std::string failure;
};

/// Runs shard `shard` of `spec` and writes `dir/shard_NNNN.bin`.
[[nodiscard]] ShardOutcome run_shard(const CampaignSpec& spec, int shard,
                                     const std::filesystem::path& dir,
                                     const WorkerOptions& options = {});

/// The scenario indices named by a `.progress` sidecar, or std::nullopt on
/// malformed text.
[[nodiscard]] std::optional<std::vector<std::uint64_t>> parse_progress(
    const std::string& text);
[[nodiscard]] std::string progress_to_string(
    int shard, const std::vector<std::uint64_t>& inflight);

/// `.fail` sidecar round-trip (oracle failures).
struct FailSidecar {
  std::uint64_t index = 0;
  std::string reason;
};
[[nodiscard]] std::optional<FailSidecar> parse_fail(const std::string& text);
[[nodiscard]] std::string fail_to_string(const FailSidecar& f);
[[nodiscard]] std::string shard_fail_name(int shard);  // shard_0007.fail

/// Ascending-hz per-rung residency of a refresh-rate step trace over
/// [0, duration) -- the same step-hold reading as Trace::time_weighted_mean.
[[nodiscard]] std::vector<RungResidency> compute_residency(
    const sim::Trace& refresh, sim::Duration duration);

/// The per-run record the shard file carries for matrix index `index`.
[[nodiscard]] ResultRecord make_result_record(
    std::uint64_t index, const check::Scenario& sc,
    const harness::ExperimentResult& r);

}  // namespace ccdem::campaign
