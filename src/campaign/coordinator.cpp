#include "campaign/coordinator.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <variant>

#include "check/dst.h"
#include "check/minimizer.h"
#include "harness/experiment.h"
#include "harness/json_writer.h"

namespace ccdem::campaign {

namespace fs = std::filesystem;

namespace {

void log_line(std::ostream* log, const std::string& s) {
  if (log != nullptr) *log << s << "\n";
}

std::string crash_reason(int status) {
  if (WIFSIGNALED(status)) {
    return "crashed (signal " + std::to_string(WTERMSIG(status)) + ")";
  }
  return "worker exited with code " +
         std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1);
}

struct ShardVerify {
  bool ok = false;
  std::string error;
  Aggregates agg;
  std::uint64_t results = 0;
  std::uint64_t bytes = 0;
};

/// Streams a shard file in O(1) memory: recompute the aggregate from the
/// records, demand the verified end marker, and cross-check the recomputed
/// aggregate against the one the worker embedded.
ShardVerify verify_shard_file(const fs::path& path) {
  ShardVerify v;
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    v.error = "cannot open " + path.string();
    return v;
  }
  BinReader reader(is);
  Aggregates recomputed;
  std::optional<Aggregates> embedded;
  while (auto rec = reader.next()) {
    if (const auto* r = std::get_if<ResultRecord>(&*rec)) {
      recomputed.add(*r);
    } else if (const auto* c = std::get_if<CountersRecord>(&*rec)) {
      recomputed.add_counters(*c);
    } else if (const auto* a = std::get_if<AggregateRecord>(&*rec)) {
      std::string err;
      embedded = Aggregates::decode(a->payload, &err);
      if (!embedded) {
        v.error = path.string() + ": bad aggregate record: " + err;
        return v;
      }
    }
  }
  if (!reader.ok()) {
    v.error = path.string() + ": " + reader.error();
    return v;
  }
  if (!reader.complete()) {
    v.error = path.string() + ": truncated (no verified end marker)";
    return v;
  }
  if (!embedded) {
    v.error = path.string() + ": missing aggregate record";
    return v;
  }
  if (!(*embedded == recomputed)) {
    v.error = path.string() + ": embedded aggregate disagrees with records";
    return v;
  }
  v.ok = true;
  v.agg = std::move(recomputed);
  v.results = reader.results_seen();
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  v.bytes = ec ? 0 : static_cast<std::uint64_t>(size);
  return v;
}

pid_t fork_worker(const CampaignSpec& spec, int shard, const fs::path& dir,
                  const WorkerOptions& wopts) {
  std::fflush(nullptr);  // no double-flush of buffered output in the child
  const pid_t pid = fork();
  if (pid != 0) return pid;
  const ShardOutcome out = run_shard(spec, shard, dir, wopts);
  if (out.ok) _exit(kWorkerExitOk);
  _exit(out.failed_index ? kWorkerExitOracle : kWorkerExitError);
}

/// Re-runs one scenario in a forked child; false = it killed the child.
bool survives_in_isolation(const CampaignSpec& spec, std::uint64_t index,
                           const WorkerOptions& wopts) {
  std::fflush(nullptr);
  const pid_t pid = fork();
  if (pid < 0) return true;  // cannot isolate; presume innocent
  if (pid == 0) {
    if (wopts.run_hook) wopts.run_hook(index);
    const check::Scenario sc = spec.scenario_at(index);
    (void)harness::run_experiment(sc.experiment_config());
    _exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

/// Minimizer predicate for crashing scenarios: every candidate runs in its
/// own forked child (with the original index's run_hook, so hook-simulated
/// crashes reproduce), and an abnormal exit counts as "still fails".
check::FailurePredicate fork_crash_predicate(std::uint64_t index,
                                             const WorkerOptions& wopts) {
  return [index, hook = wopts.run_hook](
             const check::Scenario& sc) -> std::optional<std::string> {
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid < 0) return std::nullopt;
    if (pid == 0) {
      if (hook) hook(index);
      (void)harness::run_experiment(sc.experiment_config());
      _exit(0);
    }
    int status = 0;
    waitpid(pid, &status, 0);
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) return std::nullopt;
    return crash_reason(status);
  };
}

void quarantine_scenario(const CampaignSpec& spec, Manifest& manifest,
                         std::uint64_t index, const std::string& reason,
                         bool is_crash, const fs::path& dir,
                         const CampaignOptions& options,
                         CampaignResult& result) {
  const check::Scenario sc = spec.scenario_at(index);
  check::Scenario min_sc = sc;
  std::vector<std::string> failures = {reason};
  if (options.minimize) {
    const check::FailurePredicate pred =
        is_crash ? fork_crash_predicate(index, options.worker)
                 : check::make_failure_predicate({});
    check::MinimizeOptions mo;
    mo.max_attempts = 60;  // a campaign should not stall on one repro
    const check::MinimizeResult mr = check::minimize_scenario(sc, pred, mo);
    if (!mr.failure.empty()) {
      min_sc = mr.scenario;
      failures.push_back(mr.failure);
    }
  }
  const fs::path repro = dir / ("scenario_" + std::to_string(index) + ".repro");
  if (std::string err; save_file_atomic(
          repro, check::repro_to_string(min_sc, failures), &err)) {
    result.repro_files.push_back(repro.string());
  } else {
    log_line(options.log, "repro write failed: " + err);
  }
  manifest.quarantined.push_back(Manifest::Quarantine{index, reason});
  log_line(options.log, "quarantined scenario " + std::to_string(index) +
                            ": " + reason);
}

}  // namespace

std::string manifest_file_name() { return "manifest.txt"; }
std::string aggregates_file_name() { return "aggregates.bin"; }
std::string summary_file_name() { return "summary.json"; }

long peak_rss_kb() {
#if defined(__linux__)
  std::ifstream is("/proc/self/status");
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
#endif
  return 0;
}

CampaignResult run_campaign(const CampaignSpec& spec, const fs::path& dir,
                            const CampaignOptions& options) {
  CampaignResult result;
  if (const auto why = spec.validate()) {
    result.error = "invalid campaign: " + *why;
    return result;
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  const fs::path manifest_path = dir / manifest_file_name();

  Manifest manifest;
  if (options.resume) {
    const auto text = load_file(manifest_path);
    if (!text) {
      result.error = "resume: no manifest at " + manifest_path.string();
      return result;
    }
    std::string err;
    auto m = Manifest::parse(*text, &err);
    if (!m) {
      result.error = "resume: " + err;
      return result;
    }
    if (m->fingerprint != spec.fingerprint()) {
      result.error = "resume: manifest fingerprint mismatch (different "
                     "campaign matrix)";
      return result;
    }
    manifest = std::move(*m);
  } else {
    manifest = Manifest::fresh(spec);
  }

  auto save_manifest = [&]() -> bool {
    std::string err;
    if (!save_file_atomic(manifest_path, manifest.to_string(), &err)) {
      result.error = err;
      return false;
    }
    return true;
  };
  if (!save_manifest()) return result;

  struct Running {
    pid_t pid;
    int shard;
  };
  std::vector<Running> running;
  // Per-invocation launch counts: the persisted attempts survive resume for
  // audit, but the retry budget resets with each invocation.
  std::vector<int> launches(static_cast<std::size_t>(manifest.shards), 0);
  const int max_workers = std::max(1, options.workers);

  auto next_pending = [&]() -> int {
    for (int s = 0; s < manifest.shards; ++s) {
      if (manifest.shard_rows[static_cast<std::size_t>(s)].done) continue;
      if (launches[static_cast<std::size_t>(s)] >
          options.max_shard_retries) {
        continue;  // budget spent this invocation
      }
      bool in_flight = false;
      for (const Running& r : running) in_flight |= r.shard == s;
      if (!in_flight) return s;
    }
    return -1;
  };

  while (true) {
    while (static_cast<int>(running.size()) < max_workers) {
      const int s = next_pending();
      if (s < 0) break;
      auto& row = manifest.shard_rows[static_cast<std::size_t>(s)];
      WorkerOptions w = options.worker;
      w.skip = manifest.quarantined_in(shard_range(spec, s));
      if (options.kill_shard != s || row.attempts > 0) w.kill_after_runs = 0;
      ++row.attempts;
      ++launches[static_cast<std::size_t>(s)];
      if (!save_manifest()) return result;
      const pid_t pid = fork_worker(spec, s, dir, w);
      if (pid < 0) {
        result.error = "fork failed";
        return result;
      }
      running.push_back(Running{pid, s});
      log_line(options.log, "shard " + std::to_string(s) + " launched (pid " +
                                std::to_string(pid) + ", attempt " +
                                std::to_string(row.attempts) + ")");
    }
    if (running.empty()) break;

    int status = 0;
    const pid_t pid = waitpid(-1, &status, 0);
    if (pid < 0) {
      result.error = "waitpid failed";
      return result;
    }
    const auto it = std::find_if(running.begin(), running.end(),
                                 [&](const Running& r) { return r.pid == pid; });
    if (it == running.end()) continue;  // not one of ours
    const int s = it->shard;
    running.erase(it);
    auto& row = manifest.shard_rows[static_cast<std::size_t>(s)];

    if (WIFEXITED(status) && WEXITSTATUS(status) == kWorkerExitOk) {
      ShardVerify v = verify_shard_file(dir / shard_file_name(s));
      if (v.ok) {
        row.done = true;
        row.file = shard_file_name(s);
        row.results = v.results;
        row.bytes = v.bytes;
        if (!save_manifest()) return result;
        log_line(options.log, "shard " + std::to_string(s) + " done (" +
                                  std::to_string(v.results) + " results, " +
                                  std::to_string(v.bytes) + " bytes)");
      } else {
        log_line(options.log,
                 "shard " + std::to_string(s) + " verify failed: " + v.error);
      }
      continue;
    }

    if (WIFEXITED(status) && WEXITSTATUS(status) == kWorkerExitOracle) {
      const fs::path fail_path = dir / shard_fail_name(s);
      const auto text = load_file(fail_path);
      const auto f = text ? parse_fail(*text) : std::nullopt;
      fs::remove(fail_path, ec);
      if (f && !manifest.is_quarantined(f->index)) {
        quarantine_scenario(spec, manifest, f->index, "oracle: " + f->reason,
                            /*is_crash=*/false, dir, options, result);
        launches[static_cast<std::size_t>(s)] = 0;  // progress was made
        if (!save_manifest()) return result;
      }
      continue;
    }

    // The worker died (signal) or failed internally.
    log_line(options.log,
             "shard " + std::to_string(s) + " " + crash_reason(status));
    if (options.isolate_crashes) {
      const auto text = load_file(dir / shard_progress_name(s));
      const auto inflight = text ? parse_progress(*text) : std::nullopt;
      if (inflight) {
        for (const std::uint64_t idx : *inflight) {
          if (manifest.is_quarantined(idx)) continue;
          if (!survives_in_isolation(spec, idx, options.worker)) {
            quarantine_scenario(spec, manifest, idx, crash_reason(status),
                                /*is_crash=*/true, dir, options, result);
            launches[static_cast<std::size_t>(s)] = 0;
            if (!save_manifest()) return result;
            break;  // one culprit per death; a re-run flushes out the rest
          }
        }
      }
    }
  }

  for (const Manifest::Quarantine& q : manifest.quarantined) {
    result.quarantined.push_back(q.index);
  }
  std::sort(result.quarantined.begin(), result.quarantined.end());

  if (!manifest.all_done()) {
    int first_pending = -1;
    for (int s = 0; s < manifest.shards; ++s) {
      if (!manifest.shard_rows[static_cast<std::size_t>(s)].done) {
        first_pending = s;
        break;
      }
    }
    result.error = "shard " + std::to_string(first_pending) +
                   " exhausted its retry budget; resume to continue";
    result.peak_rss_kb = peak_rss_kb();
    return result;
  }

  // Merge: stream the shard files in shard-index order (the fixed fold
  // order the merge laws require) -- O(shards) coordinator state.
  Aggregates merged;
  for (int s = 0; s < manifest.shards; ++s) {
    const auto& row = manifest.shard_rows[static_cast<std::size_t>(s)];
    ShardVerify v = verify_shard_file(dir / row.file);
    if (!v.ok) {
      result.error = v.error;
      return result;
    }
    merged.merge(v.agg);
  }

  const std::string bin =
      encode_all({Record{AggregateRecord{merged.encode()}}});
  if (std::string err;
      !save_file_atomic(dir / aggregates_file_name(), bin, &err)) {
    result.error = err;
    return result;
  }

  std::ostringstream js;
  {
    harness::JsonWriter w(js);
    w.begin_object();
    w.kv("schema", "ccdem-campaign-summary-v1");
    w.kv("scenarios", manifest.scenarios);
    w.kv("quarantined",
         static_cast<std::uint64_t>(manifest.quarantined.size()));
    w.key("aggregates");
    merged.write_json(w);
    w.end_object();
    js << "\n";
  }
  if (std::string err;
      !save_file_atomic(dir / summary_file_name(), js.str(), &err)) {
    result.error = err;
    return result;
  }

  result.complete = true;
  result.runs = merged.runs;
  result.aggregates = std::move(merged);
  result.peak_rss_kb = peak_rss_kb();
  return result;
}

}  // namespace ccdem::campaign
