#include "campaign/bin_format.h"

#include <bit>
#include <cassert>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

namespace ccdem::campaign {

namespace {

std::string offset_msg(std::uint64_t offset, const std::string& why) {
  return "ccdem-bin-v1: " + why + " at byte " + std::to_string(offset);
}

// --- per-type payload codecs ---------------------------------------------

void encode_payload(const ResultRecord& r, PayloadWriter& w) {
  w.put_u64(r.scenario_index);
  w.put_str(r.app);
  w.put_str(r.mode);
  w.put_u64(r.seed);
  w.put_i64(r.duration_ms);
  w.put_f64(r.mean_power_mw);
  w.put_f64(r.mean_refresh_hz);
  w.put_f64(r.meter_error_rate);
  w.put_f64(r.response_mean_ms);
  w.put_u64(r.frames_composed);
  w.put_u64(r.content_frames);
  w.put_u64(r.frames_posted);
  w.put_u64(r.rate_switches);
  w.put_u64(r.final_frame_hash);
  w.put_u8(r.has_ab ? 1 : 0);
  w.put_f64(r.saved_power_pct);
  w.put_f64(r.quality_pct);
  w.put_u32(static_cast<std::uint32_t>(r.residency.size()));
  for (const RungResidency& rr : r.residency) {
    w.put_u32(static_cast<std::uint32_t>(rr.hz));
    w.put_f64(rr.seconds);
  }
}

ResultRecord decode_result(PayloadReader& r) {
  ResultRecord out;
  out.scenario_index = r.get_u64();
  out.app = r.get_str();
  out.mode = r.get_str();
  out.seed = r.get_u64();
  out.duration_ms = r.get_i64();
  out.mean_power_mw = r.get_f64();
  out.mean_refresh_hz = r.get_f64();
  out.meter_error_rate = r.get_f64();
  out.response_mean_ms = r.get_f64();
  out.frames_composed = r.get_u64();
  out.content_frames = r.get_u64();
  out.frames_posted = r.get_u64();
  out.rate_switches = r.get_u64();
  out.final_frame_hash = r.get_u64();
  const std::uint8_t ab = r.get_u8();
  if (r.ok() && ab > 1) r.fail("has_ab flag out of range");
  out.has_ab = ab == 1;
  out.saved_power_pct = r.get_f64();
  out.quality_pct = r.get_f64();
  const std::uint32_t n = r.get_count();
  out.residency.reserve(r.ok() ? n : 0);
  for (std::uint32_t i = 0; r.ok() && i < n; ++i) {
    RungResidency rr;
    rr.hz = static_cast<int>(r.get_u32());
    rr.seconds = r.get_f64();
    out.residency.push_back(rr);
  }
  return out;
}

void encode_payload(const CountersRecord& r, PayloadWriter& w) {
  w.put_u32(static_cast<std::uint32_t>(r.counters.size()));
  for (const auto& [name, value] : r.counters) {
    w.put_str(name);
    w.put_u64(value);
  }
}

CountersRecord decode_counters(PayloadReader& r) {
  CountersRecord out;
  const std::uint32_t n = r.get_count();
  out.counters.reserve(r.ok() ? n : 0);
  for (std::uint32_t i = 0; r.ok() && i < n; ++i) {
    std::string name = r.get_str();
    const std::uint64_t value = r.get_u64();
    out.counters.emplace_back(std::move(name), value);
  }
  return out;
}

void encode_payload(const SpansRecord& r, PayloadWriter& w) {
  w.put_u32(static_cast<std::uint32_t>(r.spans.size()));
  for (const obs::Span& s : r.spans) {
    w.put_i64(s.begin.ticks);
    w.put_i64(s.dur.ticks);
    w.put_u64(s.frame);
    w.put_i64(s.arg);
    w.put_u8(static_cast<std::uint8_t>(s.phase));
  }
}

SpansRecord decode_spans(PayloadReader& r) {
  SpansRecord out;
  const std::uint32_t n = r.get_count();
  out.spans.reserve(r.ok() ? n : 0);
  for (std::uint32_t i = 0; r.ok() && i < n; ++i) {
    obs::Span s;
    s.begin = sim::Time{r.get_i64()};
    s.dur = sim::Duration{r.get_i64()};
    s.frame = r.get_u64();
    s.arg = r.get_i64();
    const std::uint8_t phase = r.get_u8();
    if (r.ok() && phase >= obs::kPhaseCount) {
      r.fail("span phase out of range");
      break;
    }
    s.phase = static_cast<obs::Phase>(phase);
    out.spans.push_back(s);
  }
  return out;
}

void encode_payload(const AggregateRecord& r, PayloadWriter& w) {
  w.put_str(r.payload);
}

AggregateRecord decode_aggregate(PayloadReader& r) {
  AggregateRecord out;
  out.payload = r.get_str();
  return out;
}

void encode_payload(const ShardEndRecord& r, PayloadWriter& w) {
  w.put_u64(r.results);
  w.put_u64(r.records);
  w.put_u64(r.checksum);
}

ShardEndRecord decode_end(PayloadReader& r) {
  ShardEndRecord out;
  out.results = r.get_u64();
  out.records = r.get_u64();
  out.checksum = r.get_u64();
  return out;
}

std::optional<Record> decode_payload(RecordType type, std::string_view payload,
                                     std::string* error) {
  PayloadReader r(payload);
  Record out;
  switch (type) {
    case RecordType::kResult: out = decode_result(r); break;
    case RecordType::kCounters: out = decode_counters(r); break;
    case RecordType::kSpans: out = decode_spans(r); break;
    case RecordType::kAggregate: out = decode_aggregate(r); break;
    case RecordType::kShardEnd: out = decode_end(r); break;
  }
  if (!r.ok()) {
    if (error != nullptr) *error = r.error();
    return std::nullopt;
  }
  if (r.remaining() != 0) {
    if (error != nullptr) {
      *error = std::to_string(r.remaining()) + " trailing bytes in payload";
    }
    return std::nullopt;
  }
  return out;
}

}  // namespace

RecordType record_type(const Record& r) {
  struct Visitor {
    RecordType operator()(const ResultRecord&) { return RecordType::kResult; }
    RecordType operator()(const CountersRecord&) {
      return RecordType::kCounters;
    }
    RecordType operator()(const SpansRecord&) { return RecordType::kSpans; }
    RecordType operator()(const AggregateRecord&) {
      return RecordType::kAggregate;
    }
    RecordType operator()(const ShardEndRecord&) {
      return RecordType::kShardEnd;
    }
  };
  return std::visit(Visitor{}, r);
}

// --- PayloadWriter / PayloadReader ---------------------------------------

void PayloadWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PayloadWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PayloadWriter::put_f64(double v) {
  put_u64(std::bit_cast<std::uint64_t>(v));
}

void PayloadWriter::put_str(std::string_view s) {
  assert(s.size() <= kMaxStringBytes && "string exceeds format cap");
  put_u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s);
}

void PayloadReader::fail(const std::string& why) {
  if (error_.empty()) {
    error_ = why + " at payload offset " + std::to_string(pos_);
  }
}

bool PayloadReader::need(std::size_t n, const char* what) {
  if (!ok()) return false;
  if (data_.size() - pos_ < n) {
    fail(std::string("truncated ") + what);
    return false;
  }
  return true;
}

std::uint8_t PayloadReader::get_u8() {
  if (!need(1, "u8")) return 0;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t PayloadReader::get_u32() {
  if (!need(4, "u32")) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t PayloadReader::get_u64() {
  if (!need(8, "u64")) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double PayloadReader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string PayloadReader::get_str() {
  const std::uint32_t len = get_u32();
  if (!ok()) return {};
  if (len > kMaxStringBytes) {
    fail("string length " + std::to_string(len) + " exceeds cap");
    return {};
  }
  if (!need(len, "string body")) return {};
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

std::uint32_t PayloadReader::get_count(std::uint32_t cap) {
  const std::uint32_t n = get_u32();
  if (!ok()) return 0;
  if (n > cap) {
    fail("element count " + std::to_string(n) + " exceeds cap");
    return 0;
  }
  return n;
}

// --- record stream --------------------------------------------------------

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t h) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string encode_record(const Record& r) {
  std::string payload;
  PayloadWriter w(payload);
  std::visit([&w](const auto& rec) { encode_payload(rec, w); }, r);
  assert(payload.size() <= kMaxPayloadBytes);
  std::string out;
  out.reserve(payload.size() + 5);
  out.push_back(static_cast<char>(record_type(r)));
  PayloadWriter header(out);
  header.put_u32(static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

BinWriter::BinWriter(std::ostream& os) : os_(os) {
  os_.write(kBinMagic, sizeof kBinMagic);
  std::string header;
  PayloadWriter w(header);
  w.put_u32(kBinVersion);
  w.put_u32(0);  // flags, reserved
  os_.write(header.data(), static_cast<std::streamsize>(header.size()));
  bytes_ = sizeof kBinMagic + header.size();
}

void BinWriter::write(const Record& r) {
  assert(!ended_ && "write after write_end()");
  assert(record_type(r) != RecordType::kShardEnd &&
         "end markers are emitted by write_end() only");
  const std::string bytes = encode_record(r);
  os_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  checksum_ = fnv1a(bytes, checksum_);
  ++records_;
  if (record_type(r) == RecordType::kResult) ++results_;
  bytes_ += bytes.size();
}

void BinWriter::write_end() {
  assert(!ended_);
  ended_ = true;
  ShardEndRecord end;
  end.results = results_;
  end.records = records_;
  end.checksum = checksum_;
  const std::string bytes = encode_record(Record{end});
  os_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  bytes_ += bytes.size();
  os_.flush();
}

BinReader::BinReader(std::istream& is) : is_(is) {}

void BinReader::fail(const std::string& why) {
  if (error_.empty()) error_ = offset_msg(offset_, why);
}

std::optional<Record> BinReader::next() {
  if (!ok()) return std::nullopt;
  if (!header_read_) {
    char magic[sizeof kBinMagic];
    is_.read(magic, sizeof magic);
    if (is_.gcount() != static_cast<std::streamsize>(sizeof magic) ||
        std::memcmp(magic, kBinMagic, sizeof magic) != 0) {
      fail("bad magic");
      return std::nullopt;
    }
    char version_flags[8];
    is_.read(version_flags, sizeof version_flags);
    if (is_.gcount() != static_cast<std::streamsize>(sizeof version_flags)) {
      fail("truncated file header");
      return std::nullopt;
    }
    PayloadReader r(std::string_view(version_flags, sizeof version_flags));
    const std::uint32_t version = r.get_u32();
    if (version != kBinVersion) {
      fail("unsupported version " + std::to_string(version));
      return std::nullopt;
    }
    const std::uint32_t flags = r.get_u32();
    if (flags != 0) {  // reserved; also keeps every header byte validated
      fail("unsupported flags " + std::to_string(flags));
      return std::nullopt;
    }
    offset_ = sizeof magic + sizeof version_flags;
    header_read_ = true;
  }

  char head[5];
  is_.read(head, 1);
  if (is_.gcount() == 0) {
    // Clean end of stream.  complete() tells callers whether the end
    // marker was actually seen; a missing one means truncation.
    if (!saw_end_) fail("stream ends without a shard-end record");
    return std::nullopt;
  }
  if (saw_end_) {
    fail("trailing data after the shard-end record");
    return std::nullopt;
  }
  is_.read(head + 1, 4);
  if (is_.gcount() != 4) {
    fail("truncated record header");
    return std::nullopt;
  }
  const auto raw_type = static_cast<std::uint8_t>(head[0]);
  if (raw_type < 1 || raw_type > 5) {
    fail("unknown record type " + std::to_string(raw_type));
    return std::nullopt;
  }
  const auto type = static_cast<RecordType>(raw_type);
  PayloadReader len_reader(std::string_view(head + 1, 4));
  const std::uint32_t len = len_reader.get_u32();
  if (len > kMaxPayloadBytes) {
    fail("payload length " + std::to_string(len) + " exceeds cap");
    return std::nullopt;
  }
  buf_.resize(len);
  if (len > 0) {
    is_.read(buf_.data(), static_cast<std::streamsize>(len));
    if (is_.gcount() != static_cast<std::streamsize>(len)) {
      fail("truncated record payload (want " + std::to_string(len) +
           " bytes)");
      return std::nullopt;
    }
  }

  std::string payload_error;
  auto rec = decode_payload(type, buf_, &payload_error);
  if (!rec) {
    fail(payload_error);
    return std::nullopt;
  }

  if (type == RecordType::kShardEnd) {
    const auto& end = std::get<ShardEndRecord>(*rec);
    if (end.records != records_) {
      fail("record count mismatch: end says " + std::to_string(end.records) +
           ", saw " + std::to_string(records_));
      return std::nullopt;
    }
    if (end.results != results_) {
      fail("result count mismatch: end says " + std::to_string(end.results) +
           ", saw " + std::to_string(results_));
      return std::nullopt;
    }
    if (end.checksum != checksum_) {
      fail("checksum mismatch (stream was modified)");
      return std::nullopt;
    }
    saw_end_ = true;
  } else {
    // Fold the record's full encoded bytes into the running checksum,
    // exactly as the writer did.
    checksum_ = fnv1a(std::string_view(head, 5), checksum_);
    checksum_ = fnv1a(buf_, checksum_);
    ++records_;
    if (type == RecordType::kResult) ++results_;
  }
  offset_ += 5 + len;
  return rec;
}

std::optional<std::vector<Record>> decode_all(std::string_view data,
                                              std::string* error) {
  std::string owned(data);
  std::istringstream is(owned, std::ios::binary);
  BinReader reader(is);
  std::vector<Record> out;
  while (auto rec = reader.next()) out.push_back(std::move(*rec));
  if (!reader.ok()) {
    if (error != nullptr) *error = reader.error();
    return std::nullopt;
  }
  if (!reader.complete()) {
    if (error != nullptr) *error = "missing shard-end record";
    return std::nullopt;
  }
  return out;
}

std::string encode_all(const std::vector<Record>& records) {
  std::ostringstream os(std::ios::binary);
  BinWriter w(os);
  for (const Record& r : records) {
    // End markers are regenerated (counts + checksum are derived state), so
    // re-encoding a decoded stream reproduces the original bytes.
    if (record_type(r) == RecordType::kShardEnd) continue;
    w.write(r);
  }
  w.write_end();
  return os.str();
}

}  // namespace ccdem::campaign
