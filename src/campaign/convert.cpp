#include "campaign/convert.h"

#include <fstream>
#include <ostream>
#include <variant>
#include <vector>

#include "campaign/campaign.h"
#include "obs/counters.h"
#include "obs/trace_export.h"

namespace ccdem::campaign {

namespace fs = std::filesystem;

namespace {

struct Collected {
  std::vector<obs::Span> spans;
  obs::Counters::Snapshot counters;
  std::vector<ResultRecord> results;
};

/// Streams the shard file, keeping only what the converter asked for.
std::optional<std::string> collect(const fs::path& path, bool want_spans,
                                   bool want_results, Collected& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return "cannot open " + path.string();
  BinReader reader(is);
  while (auto rec = reader.next()) {
    if (const auto* sp = std::get_if<SpansRecord>(&*rec)) {
      if (want_spans) {
        out.spans.insert(out.spans.end(), sp->spans.begin(), sp->spans.end());
      }
    } else if (const auto* c = std::get_if<CountersRecord>(&*rec)) {
      out.counters.counters.insert(out.counters.counters.end(),
                                   c->counters.begin(), c->counters.end());
    } else if (const auto* r = std::get_if<ResultRecord>(&*rec)) {
      if (want_results) out.results.push_back(*r);
    }
  }
  if (!reader.ok()) return path.string() + ": " + reader.error();
  if (!reader.complete()) {
    return path.string() + ": truncated (no verified end marker)";
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> bin_to_chrome_trace(const fs::path& bin_path,
                                               std::ostream& os) {
  Collected c;
  if (auto err = collect(bin_path, /*want_spans=*/true,
                         /*want_results=*/false, c)) {
    return err;
  }
  obs::write_chrome_trace(os, c.spans, c.counters);
  return std::nullopt;
}

std::optional<std::string> bin_to_trace_csv(const fs::path& bin_path,
                                            std::ostream& os) {
  Collected c;
  if (auto err = collect(bin_path, /*want_spans=*/true,
                         /*want_results=*/false, c)) {
    return err;
  }
  obs::write_trace_csv(os, c.spans, c.counters);
  return std::nullopt;
}

std::optional<std::string> bin_to_results_csv(const fs::path& bin_path,
                                              std::ostream& os) {
  Collected c;
  if (auto err = collect(bin_path, /*want_spans=*/false,
                         /*want_results=*/true, c)) {
    return err;
  }
  os << "scenario_index,app,mode,seed,duration_ms,mean_power_mw,"
        "mean_refresh_hz,meter_error_rate,response_mean_ms,frames_composed,"
        "content_frames,frames_posted,rate_switches,final_frame_hash,"
        "has_ab,saved_power_pct,quality_pct\n";
  for (const ResultRecord& r : c.results) {
    os << r.scenario_index << ',' << r.app << ',' << r.mode << ',' << r.seed
       << ',' << r.duration_ms << ',' << format_double(r.mean_power_mw) << ','
       << format_double(r.mean_refresh_hz) << ','
       << format_double(r.meter_error_rate) << ','
       << format_double(r.response_mean_ms) << ',' << r.frames_composed << ','
       << r.content_frames << ',' << r.frames_posted << ',' << r.rate_switches
       << ',' << r.final_frame_hash << ',' << (r.has_ab ? 1 : 0) << ','
       << format_double(r.saved_power_pct) << ','
       << format_double(r.quality_pct) << "\n";
  }
  return std::nullopt;
}

}  // namespace ccdem::campaign
