// Device power model: the simulated replacement for the paper's Galaxy S3 +
// Monsoon testbed.
//
// Power decomposes into
//   * a continuous part: SoC base + panel static (brightness-dependent) +
//     a refresh-rate-proportional term (panel timing/driver and the memory
//     traffic of scan-out), and
//   * impulse energies: per-composition copy cost (scales with composed
//     pixels), per-frame application render cost (reported by app models --
//     a redundant frame still costs GPU render energy on a real device), and
//     per-touch input pipeline cost.
//
// The constants are calibrated so that the 60 Hz baseline and the savings
// deltas land in the bands the paper reports (see DESIGN.md section 6);
// EXPERIMENTS.md records paper-vs-measured for every figure.
#pragma once

#include "gfx/surface_flinger.h"
#include "sim/time.h"

namespace ccdem::power {

struct DevicePowerParams {
  double soc_base_mw = 380.0;        ///< CPU idle + radios + rails
  double panel_static_mw = 290.0;    ///< backlight/emission at 50 % brightness
  /// Backlight scaling: static panel power is
  ///   panel_static_mw * (brightness_floor + brightness_slope * brightness)
  /// normalised so brightness = 0.5 gives exactly panel_static_mw (the
  /// paper's measurement point).
  double brightness_floor = 0.3;
  double brightness_slope = 1.4;
  double panel_per_hz_mw = 4.0;      ///< scan-out cost per refresh Hz
  double composition_base_mj = 0.4;  ///< fixed cost of a composition pass
  double composition_mj_per_mpixel = 9.0;  ///< copy cost per Mpixel composed
  double touch_event_mj = 2.0;       ///< input pipeline CPU cost per event
  /// Cost of reprogramming the panel's timing generator on a refresh-rate
  /// switch (driver I/O + PLL relock).  Small, but it is the term the
  /// hysteresis extension trades against.
  double rate_switch_mj = 0.5;
  /// SoC-to-panel link power (display controller + MIPI lanes) while the
  /// link is active.  Panel self-refresh (the PSR extension) powers it down
  /// when the content is fully static.  Zero by default so the headline
  /// calibration (DESIGN.md section 6, which folds the link into
  /// soc_base_mw) is unchanged; the PSR experiments split it out explicitly
  /// via `galaxy_s3_with_psr_link()`.
  double link_active_mw = 0.0;

  /// Galaxy S3 calibration with the panel link split out of the SoC base,
  /// for self-refresh experiments.  Total idle power is identical to
  /// galaxy_s3().
  static DevicePowerParams galaxy_s3_with_psr_link() {
    DevicePowerParams p;
    p.link_active_mw = 60.0;
    p.soc_base_mw -= 60.0;
    return p;
  }

  /// Calibration used throughout the reproduction (Galaxy S3 LTE class).
  static DevicePowerParams galaxy_s3() { return DevicePowerParams{}; }
};

/// Attribution tag for impulse energies.
enum class EnergyTag {
  kComposition,  ///< compositor copy work
  kRender,       ///< app-side GPU/CPU rendering
  kTouch,        ///< input pipeline handling
  kMeter,        ///< content-rate comparison CPU
  kRateSwitch,   ///< panel timing reprogram
  kOther,
};

/// Where the energy went, in millijoules.  The continuous components are
/// split analytically; impulses by their tag.  Together they explain which
/// path a saving came from (panel refresh vs app render vs composition).
struct EnergyBreakdown {
  double soc_base_mj = 0.0;
  double panel_static_mj = 0.0;   ///< brightness-scaled backlight/emission
  double refresh_mj = 0.0;        ///< the per-Hz scan-out term
  double link_mj = 0.0;
  double auxiliary_mj = 0.0;      ///< e.g. OLED emission model
  double composition_mj = 0.0;
  double render_mj = 0.0;
  double touch_mj = 0.0;
  double meter_mj = 0.0;
  double rate_switch_mj = 0.0;
  double other_mj = 0.0;

  [[nodiscard]] double total_mj() const {
    return soc_base_mj + panel_static_mj + refresh_mj + link_mj +
           auxiliary_mj + composition_mj + render_mj + touch_mj + meter_mj +
           rate_switch_mj + other_mj;
  }
};

class DevicePowerModel final : public gfx::FrameListener {
 public:
  DevicePowerModel(const DevicePowerParams& params, int initial_refresh_hz);

  /// Continuous power for a given refresh rate (mW), including the current
  /// auxiliary (content-dependent) component.
  [[nodiscard]] double continuous_power_mw(int refresh_hz) const;

  /// Sets the auxiliary continuous power component (mW) from time `t`
  /// onward.  Used by content-dependent panel models (e.g. the OLED
  /// extension, where emission power tracks frame luminance).
  void set_auxiliary_power_mw(sim::Time t, double mw);
  [[nodiscard]] double auxiliary_power_mw() const { return auxiliary_mw_; }

  /// Powers the SoC-to-panel link up/down from time `t` onward (panel
  /// self-refresh).  The link is active initially.
  void set_link_active(sim::Time t, bool active);
  [[nodiscard]] bool link_active() const { return link_active_; }

  /// Sets the screen brightness in [0, 1] from time `t` onward.  The
  /// calibration point (and the default) is 0.5, the paper's "screen
  /// brightness at 50 %".
  void set_brightness(sim::Time t, double brightness);
  [[nodiscard]] double brightness() const { return brightness_; }

  /// Hook for DisplayPanel::add_rate_listener.
  void on_rate_change(sim::Time t, int refresh_hz);

  /// FrameListener: charges composition energy for each composed frame.
  void on_frame(const gfx::FrameInfo& info, const gfx::Framebuffer&) override;

  /// Charges an impulse energy (app render cost, touch handling, ...).
  void add_energy_mj(sim::Time t, double mj,
                     EnergyTag tag = EnergyTag::kOther);

  void on_touch(sim::Time t) {
    add_energy_mj(t, params_.touch_event_mj, EnergyTag::kTouch);
  }

  /// Total energy consumed from simulation start through `t` (mJ).
  /// `t` must not precede the last accounted event.
  [[nodiscard]] double energy_mj_at(sim::Time t) const;

  /// Per-component attribution through the last accounted event.
  [[nodiscard]] const EnergyBreakdown& breakdown() const {
    return breakdown_;
  }

  [[nodiscard]] const DevicePowerParams& params() const { return params_; }
  [[nodiscard]] int refresh_hz() const { return refresh_hz_; }

 private:
  /// Integrates the continuous power up to `t` at the current rate.
  void advance_to(sim::Time t);

  DevicePowerParams params_;
  int refresh_hz_;
  double auxiliary_mw_ = 0.0;
  double brightness_ = 0.5;
  bool link_active_ = true;
  sim::Time last_update_{};
  double accumulated_mj_ = 0.0;
  EnergyBreakdown breakdown_;
};

}  // namespace ccdem::power
