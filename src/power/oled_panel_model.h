// OLED emission model: content-dependent panel power.
//
// The Galaxy S3's panel is an AMOLED: emission power scales with what is on
// screen (the premise of Chameleon and FOCUS in the paper's related work,
// refs [5]-[7]).  This extension samples the composed framebuffer's
// luminance and feeds a luma-proportional component into the device power
// model, so experiments can separate the *refresh-rate* savings (the
// paper's contribution, orthogonal to content colour) from content-colour
// effects.
//
// Sampling uses a pixel stride rather than the metering grid so the model
// stays independent of the core library's sampler.
#pragma once

#include "gfx/surface_flinger.h"
#include "power/device_power_model.h"

namespace ccdem::power {

struct OledParams {
  /// Emission power with a full white screen at the experiment brightness.
  double full_white_mw = 480.0;
  /// Emission power with a black screen (driver quiescent).
  double black_mw = 40.0;
  /// Every `stride`-th pixel in x and y contributes to the luma estimate.
  int sample_stride = 16;

  /// Calibrated to Galaxy S3-class AMOLED measurements at 50 % brightness.
  static OledParams galaxy_s3_amoled() { return OledParams{}; }
};

class OledPanelModel final : public gfx::FrameListener {
 public:
  /// When attaching this model, configure the DevicePowerParams with
  /// `panel_static_mw = 0` -- the luma-dependent emission replaces the
  /// constant backlight term of the LCD-style default.
  OledPanelModel(DevicePowerModel& power, OledParams params);

  /// FrameListener: re-estimates the frame luma and updates the auxiliary
  /// power.  Only runs when the frame actually changed content.
  void on_frame(const gfx::FrameInfo& info, const gfx::Framebuffer& fb) override;

  /// Mean luma in [0, 1] of the most recent estimate.
  [[nodiscard]] double current_luma() const { return luma_; }
  [[nodiscard]] double emission_power_mw(double luma) const;
  [[nodiscard]] const OledParams& params() const { return params_; }

 private:
  DevicePowerModel& power_;
  OledParams params_;
  double luma_ = 0.0;
  bool initialized_ = false;
};

}  // namespace ccdem::power
