#include "power/oled_panel_model.h"

#include <cassert>

namespace ccdem::power {

OledPanelModel::OledPanelModel(DevicePowerModel& power, OledParams params)
    : power_(power), params_(params) {
  assert(params_.sample_stride > 0);
  assert(params_.full_white_mw >= params_.black_mw);
}

double OledPanelModel::emission_power_mw(double luma) const {
  return params_.black_mw +
         (params_.full_white_mw - params_.black_mw) * luma;
}

void OledPanelModel::on_frame(const gfx::FrameInfo& info,
                              const gfx::Framebuffer& fb) {
  // Unchanged content keeps the previous emission estimate; sampling only
  // on content frames keeps the model's own cost negligible.
  if (initialized_ && !info.content_changed) return;
  initialized_ = true;

  std::int64_t sum = 0;
  std::int64_t n = 0;
  for (int y = params_.sample_stride / 2; y < fb.height();
       y += params_.sample_stride) {
    const auto row = fb.row(y);
    for (int x = params_.sample_stride / 2; x < fb.width();
         x += params_.sample_stride) {
      sum += row[static_cast<std::size_t>(x)].luma();
      ++n;
    }
  }
  luma_ = n == 0 ? 0.0 : static_cast<double>(sum) / (255.0 * n);
  power_.set_auxiliary_power_mw(info.composed_at, emission_power_mw(luma_));
}

}  // namespace ccdem::power
