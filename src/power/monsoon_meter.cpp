#include "power/monsoon_meter.h"

#include <cassert>

namespace ccdem::power {

MonsoonMeter::MonsoonMeter(sim::Simulator& sim, const DevicePowerModel& model,
                           sim::Duration interval)
    : model_(model), interval_(interval) {
  assert(interval.ticks > 0);
  start_ = sim.now();
  last_sample_ = start_;
  first_energy_mj_ = model_.energy_mj_at(start_);
  last_energy_mj_ = first_energy_mj_;
  sim.every(interval_, [this](sim::Time t) {
    if (!running_) return false;
    const double e = model_.energy_mj_at(t);
    const double dt_s = (t - last_sample_).seconds();
    if (dt_s > 0.0) {
      trace_.record(t, (e - last_energy_mj_) / dt_s);
    }
    last_energy_mj_ = e;
    last_sample_ = t;
    return true;
  });
}

double MonsoonMeter::mean_power_mw() const {
  const double span_s = (last_sample_ - start_).seconds();
  if (span_s <= 0.0) return 0.0;
  return (last_energy_mj_ - first_energy_mj_) / span_s;
}

}  // namespace ccdem::power
