// MonsoonMeter: the simulated counterpart of the Monsoon power monitor the
// paper uses to measure device power.
//
// Samples the device power model on a fixed cadence and records average
// power over each sampling interval (exact, since the model exposes the
// cumulative energy integral).  The resulting trace feeds Fig. 8's
// saved-power series and the per-app averages of Fig. 9 / Table 1.
#pragma once

#include "power/device_power_model.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace ccdem::power {

class MonsoonMeter {
 public:
  /// Starts sampling immediately; the first sample covers
  /// [sim.now(), sim.now() + interval).
  MonsoonMeter(sim::Simulator& sim, const DevicePowerModel& model,
               sim::Duration interval = sim::milliseconds(50));

  MonsoonMeter(const MonsoonMeter&) = delete;
  MonsoonMeter& operator=(const MonsoonMeter&) = delete;

  void stop() { running_ = false; }

  /// Average power (mW) per sampling interval; point timestamps are the
  /// *end* of each interval.
  [[nodiscard]] const sim::Trace& trace() const { return trace_; }

  /// Mean power over everything sampled so far (mW).
  [[nodiscard]] double mean_power_mw() const;

  /// Total sampled energy (mJ).
  [[nodiscard]] double total_energy_mj() const { return last_energy_mj_; }

 private:
  const DevicePowerModel& model_;
  sim::Duration interval_;
  sim::Trace trace_{"power_mw"};
  double last_energy_mj_ = 0.0;
  double first_energy_mj_ = 0.0;
  sim::Time start_{};
  sim::Time last_sample_{};
  bool running_ = true;
};

}  // namespace ccdem::power
