// Battery model: converts power savings into the quantity users feel --
// screen-on time.
//
// The paper reports milliwatts; a Galaxy S3-class phone carries a 2100 mAh
// / 3.8 V pack, so a ~230 mW average reduction is directly a screen-on-time
// extension.  Used by the battery_life example and extension benches.
#pragma once

namespace ccdem::power {

struct BatterySpec {
  double capacity_mah = 2100.0;
  double nominal_voltage_v = 3.8;

  /// The pack of the paper's test device (Galaxy S3 LTE).
  static BatterySpec galaxy_s3() { return BatterySpec{}; }
};

/// State-of-charge thresholds below which a brownout episode constitutes
/// system pressure (fault/fault_injector.h models the sagging SoC; the
/// degradation ladder in core/ sheds rate and brightness in response).
/// Both are fractions of full charge in [0, 1].
struct BrownoutThresholds {
  /// Below this SoC a live brownout episode caps the max refresh rate.
  double cap_rate_below_soc = 0.15;
  /// Below this SoC it additionally dims the panel (the ladder's dim rung).
  double cap_brightness_below_soc = 0.10;

  static BrownoutThresholds galaxy_s3() { return BrownoutThresholds{}; }
};

class Battery {
 public:
  explicit Battery(BatterySpec spec) : spec_(spec) {}

  [[nodiscard]] const BatterySpec& spec() const { return spec_; }

  /// Total energy content in millijoules.
  [[nodiscard]] double capacity_mj() const;

  /// Runtime in hours at a constant drain (mW).  Drain must be positive.
  [[nodiscard]] double hours_at_mw(double drain_mw) const;

  /// Additional runtime (hours) gained by reducing the drain from
  /// `baseline_mw` to `baseline_mw - saved_mw`.
  [[nodiscard]] double hours_gained(double baseline_mw,
                                    double saved_mw) const;

  /// Relative runtime extension (e.g. 0.18 = 18 % longer).
  [[nodiscard]] double relative_gain(double baseline_mw,
                                     double saved_mw) const;

 private:
  BatterySpec spec_;
};

}  // namespace ccdem::power
