#include "power/device_power_model.h"

#include <cassert>

namespace ccdem::power {

DevicePowerModel::DevicePowerModel(const DevicePowerParams& params,
                                   int initial_refresh_hz)
    : params_(params), refresh_hz_(initial_refresh_hz) {}

double DevicePowerModel::continuous_power_mw(int refresh_hz) const {
  const double panel_static =
      params_.panel_static_mw *
      (params_.brightness_floor + params_.brightness_slope * brightness_);
  return params_.soc_base_mw + panel_static + auxiliary_mw_ +
         (link_active_ ? params_.link_active_mw : 0.0) +
         params_.panel_per_hz_mw * static_cast<double>(refresh_hz);
}

void DevicePowerModel::set_auxiliary_power_mw(sim::Time t, double mw) {
  advance_to(t);
  auxiliary_mw_ = mw;
}

void DevicePowerModel::set_link_active(sim::Time t, bool active) {
  advance_to(t);
  link_active_ = active;
}

void DevicePowerModel::set_brightness(sim::Time t, double brightness) {
  assert(brightness >= 0.0 && brightness <= 1.0);
  advance_to(t);
  brightness_ = brightness;
}

void DevicePowerModel::advance_to(sim::Time t) {
  assert(t >= last_update_);
  const double dt_s = (t - last_update_).seconds();
  accumulated_mj_ += continuous_power_mw(refresh_hz_) * dt_s;
  breakdown_.soc_base_mj += params_.soc_base_mw * dt_s;
  breakdown_.panel_static_mj +=
      params_.panel_static_mw *
      (params_.brightness_floor + params_.brightness_slope * brightness_) *
      dt_s;
  breakdown_.refresh_mj +=
      params_.panel_per_hz_mw * static_cast<double>(refresh_hz_) * dt_s;
  if (link_active_) breakdown_.link_mj += params_.link_active_mw * dt_s;
  breakdown_.auxiliary_mj += auxiliary_mw_ * dt_s;
  last_update_ = t;
}

void DevicePowerModel::on_rate_change(sim::Time t, int refresh_hz) {
  advance_to(t);
  if (refresh_hz != refresh_hz_) {
    accumulated_mj_ += params_.rate_switch_mj;
    breakdown_.rate_switch_mj += params_.rate_switch_mj;
  }
  refresh_hz_ = refresh_hz;
}

void DevicePowerModel::on_frame(const gfx::FrameInfo& info,
                                const gfx::Framebuffer&) {
  const double mpixels =
      static_cast<double>(info.composed_pixels) / 1'000'000.0;
  add_energy_mj(info.composed_at,
                params_.composition_base_mj +
                    params_.composition_mj_per_mpixel * mpixels,
                EnergyTag::kComposition);
}

void DevicePowerModel::add_energy_mj(sim::Time t, double mj, EnergyTag tag) {
  advance_to(t);
  accumulated_mj_ += mj;
  switch (tag) {
    case EnergyTag::kComposition: breakdown_.composition_mj += mj; break;
    case EnergyTag::kRender: breakdown_.render_mj += mj; break;
    case EnergyTag::kTouch: breakdown_.touch_mj += mj; break;
    case EnergyTag::kMeter: breakdown_.meter_mj += mj; break;
    case EnergyTag::kRateSwitch: breakdown_.rate_switch_mj += mj; break;
    case EnergyTag::kOther: breakdown_.other_mj += mj; break;
  }
}

double DevicePowerModel::energy_mj_at(sim::Time t) const {
  assert(t >= last_update_);
  const double dt_s = (t - last_update_).seconds();
  return accumulated_mj_ + continuous_power_mw(refresh_hz_) * dt_s;
}

}  // namespace ccdem::power
