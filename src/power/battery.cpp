#include "power/battery.h"

#include <cassert>

namespace ccdem::power {

double Battery::capacity_mj() const {
  // mAh -> mA*s is *3600; times volts gives mJ (mA * V * s = mW * s = mJ).
  return spec_.capacity_mah * 3600.0 * spec_.nominal_voltage_v;
}

double Battery::hours_at_mw(double drain_mw) const {
  assert(drain_mw > 0.0);
  const double seconds = capacity_mj() / drain_mw;
  return seconds / 3600.0;
}

double Battery::hours_gained(double baseline_mw, double saved_mw) const {
  assert(baseline_mw > saved_mw);
  return hours_at_mw(baseline_mw - saved_mw) - hours_at_mw(baseline_mw);
}

double Battery::relative_gain(double baseline_mw, double saved_mw) const {
  assert(baseline_mw > saved_mw);
  return hours_at_mw(baseline_mw - saved_mw) / hours_at_mw(baseline_mw) - 1.0;
}

}  // namespace ccdem::power
