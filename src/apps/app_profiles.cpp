#include "apps/app_profiles.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <iterator>
#include <utility>

namespace ccdem::apps {

namespace {

/// Builds a general-app spec around a StaticUi scene.
AppSpec general(std::string name, double idle_request_fps,
                double idle_content_fps, double render_mj = 2.5) {
  AppSpec s;
  s.name = std::move(name);
  s.category = AppSpec::Category::kGeneral;
  s.idle_request_fps = idle_request_fps;
  s.burst_request_fps = 60.0;
  s.burst_hold_s = 1.0;
  s.render_mj_per_frame = render_mj;
  s.scene = SceneSpec::static_ui(idle_content_fps);
  s.monkey = input::MonkeyProfile::general_app();
  return s;
}

/// Builds a game spec around a Game scene.  Games request frames near the
/// engine's target rate at all times and respond to touch with extra logic.
AppSpec game(std::string name, double request_fps, double content_fps,
             double touch_boost_fps = 14.0, int sprites = 8,
             double render_mj = 9.0) {
  AppSpec s;
  s.name = std::move(name);
  s.category = AppSpec::Category::kGame;
  s.idle_request_fps = request_fps;
  s.burst_request_fps = std::max(request_fps, 60.0);
  s.burst_hold_s = 0.8;
  s.render_mj_per_frame = render_mj;
  s.scene = SceneSpec::game(content_fps, sprites, touch_boost_fps);
  s.monkey = input::MonkeyProfile::game_app();
  return s;
}

}  // namespace

std::vector<AppSpec> general_apps() {
  std::vector<AppSpec> v;
  v.push_back(general("Auction", 6.0, 2.0));
  // Cash Slide, CGV and Daum Maps are the paper's examples of general apps
  // with ~20 redundant fps (Fig. 3(c)): high request rate, low content rate.
  v.push_back(general("Cash Slide", 25.0, 3.0, 4.5));
  v.push_back(general("CGV", 24.0, 4.0, 5.0));
  v.push_back(general("Coupang", 8.0, 3.0));
  v.push_back(general("Daum", 7.0, 3.0));
  {
    // Daum Maps: the 2-D panning map scene; map engines keep requesting
    // frames while the map sits still (Fig. 3's ~20 redundant fps) and
    // tile redraws are the costliest general-app renders.
    AppSpec s;
    s.name = "Daum Maps";
    s.category = AppSpec::Category::kGeneral;
    s.idle_request_fps = 28.0;
    s.burst_request_fps = 60.0;
    s.burst_hold_s = 1.0;
    s.render_mj_per_frame = 6.0;
    s.scene = SceneSpec::map(/*marker_pulse_fps=*/2.0);
    s.monkey = input::MonkeyProfile::general_app();
    s.monkey.swipe_probability = 0.85;  // maps are dragged, not tapped
    v.push_back(std::move(s));
  }
  v.push_back(general("Facebook", 7.0, 5.0));
  {
    // KakaoTalk: the messenger scene -- cursor blink when idle, keystroke
    // bursts while touched, incoming bubbles every few seconds.
    AppSpec s;
    s.name = "KakaoTalk";
    s.category = AppSpec::Category::kGeneral;
    s.idle_request_fps = 6.0;
    s.burst_request_fps = 60.0;
    s.burst_hold_s = 1.0;
    s.render_mj_per_frame = 2.5;
    s.scene = SceneSpec::typing(2.0, 8.0);
    s.monkey = input::MonkeyProfile::general_app();
    s.monkey.mean_gap_s = 4.5;         // typing means frequent-ish taps
    s.monkey.swipe_probability = 0.1;  // mostly key presses
    v.push_back(std::move(s));
  }
  {
    // MX Player: the video case; content is pinned at the video cadence.
    AppSpec s;
    s.name = "MX Player";
    s.category = AppSpec::Category::kGeneral;
    s.idle_request_fps = 26.0;
    s.burst_request_fps = 60.0;
    s.burst_hold_s = 0.6;
    s.render_mj_per_frame = 4.0;
    s.scene = SceneSpec::video(24.0);
    s.monkey = input::MonkeyProfile::general_app();
    s.monkey.mean_gap_s = 12.0;  // a video is mostly watched, rarely touched
    v.push_back(std::move(s));
  }
  v.push_back(general("Naver", 9.0, 4.0));
  v.push_back(general("Naver Webtoon", 10.0, 6.0));
  {
    AppSpec s;
    s.name = "NaverMap";
    s.category = AppSpec::Category::kGeneral;
    s.idle_request_fps = 22.0;
    s.burst_request_fps = 60.0;
    s.burst_hold_s = 1.0;
    s.render_mj_per_frame = 5.0;
    s.scene = SceneSpec::map(/*marker_pulse_fps=*/3.0);
    s.monkey = input::MonkeyProfile::general_app();
    s.monkey.swipe_probability = 0.85;
    v.push_back(std::move(s));
  }
  v.push_back(general("PhotoWonder", 5.0, 2.0));
  v.push_back(general("Tiny Flashlight", 2.0, 0.3, 1.5));
  v.push_back(general("Weather", 20.0, 4.0, 4.0));
  return v;
}

std::vector<AppSpec> game_apps() {
  // Names as printed in Fig. 3(b)/(d); a few are garbled in the available
  // text of the paper and are reconstructed (see DESIGN.md).
  std::vector<AppSpec> v;
  // Touch-response content boosts are set so an interacting game's content
  // rate lands in the upper sections (~26-43 fps): the section controller
  // then rides up on its own during interaction and the touch booster only
  // pays for the ramp lag, matching the paper's small boost cost.
  v.push_back(game("Anipang", 60.0, 12.0, 20.0));
  // Engine-heavy titles render near 60 fps but their game logic targets
  // ~30 fps, the console-era cadence of 2013 mobile engines.
  v.push_back(game("Asphalt 8", 50.0, 33.0, 10.0, 10, 10.0));
  v.push_back(game("Canimal Wars", 55.0, 18.0, 14.0));
  v.push_back(game("Castle Heros", 55.0, 15.0, 16.0));
  v.push_back(game("Cookie Run", 60.0, 30.0, 12.0, 9));
  v.push_back(game("Devilishness", 50.0, 10.0, 22.0));
  v.push_back(game("Everypong", 55.0, 20.0, 12.0));
  v.push_back(game("Geometry Dash", 60.0, 32.0, 10.0, 9));
  v.push_back(game("I Love Style", 35.0, 8.0, 18.0, 6, 6.0));
  // Jelly Splash: Fig. 2's poster child -- pinned near 60 fps requests with
  // content changing an order of magnitude slower.
  v.push_back(game("Jelly Splash", 60.0, 8.0, 20.0));
  v.push_back(game("Modoo Marble", 45.0, 12.0, 18.0));
  v.push_back(game("PokoPang", 58.0, 22.0, 10.0));
  v.push_back(game("Swingrun", 45.0, 28.0, 8.0));
  v.push_back(game("TempleRun", 60.0, 31.0, 10.0, 9));
  v.push_back(game("Watermargin", 40.0, 10.0, 18.0, 6, 6.0));
  return v;
}

std::vector<AppSpec> all_apps() {
  std::vector<AppSpec> v = general_apps();
  std::vector<AppSpec> g = game_apps();
  v.insert(v.end(), std::make_move_iterator(g.begin()),
           std::make_move_iterator(g.end()));
  return v;
}

AppSpec app_by_name(const std::string& name) {
  for (AppSpec& s : all_apps()) {
    if (s.name == name) return std::move(s);
  }
  std::cerr << "unknown app profile: " << name << "\n";
  std::abort();
}

std::vector<AppSpec> scene_demo_apps() {
  std::vector<AppSpec> v;
  {
    // Menu UI: a six-state machine touring every UiState kind, with the
    // dialog reachable both from the menu (touch) and the marquee.  Per-
    // state animation rates stay at or below 24 fps so the quality arm's
    // delivered/actual ratio holds even on sparse ladders.
    AppSpec s;
    s.name = "Menu UI";
    s.category = AppSpec::Category::kGeneral;
    s.idle_request_fps = 10.0;
    s.burst_request_fps = 60.0;
    s.burst_hold_s = 1.0;
    s.render_mj_per_frame = 3.0;
    UiSceneSpec ui;
    ui.states = {
        {UiState::Kind::kIdle, 1200, 2.0, 1, 1},
        {UiState::Kind::kMenu, 900, 6.0, 2, 3},
        {UiState::Kind::kScroll, 700, 24.0, 4, -1},
        {UiState::Kind::kDialog, 600, 12.0, 1, 0},
        {UiState::Kind::kSlide, 500, 24.0, 5, -1},
        {UiState::Kind::kMarquee, 1500, 24.0, 0, 3},
    };
    ui.idle_timeout_ms = 2500;
    ui.marquee_px = 6;
    s.scene = SceneSpec::ui_machine(std::move(ui));
    s.monkey = input::MonkeyProfile::general_app();
    v.push_back(std::move(s));
  }
  {
    // Burst Video: long static gaps punctuated by 12-frame bursts at 30
    // fps, with EVSO-style per-segment motion levels.  The 700 ms gap is
    // shorter than the default 1 s meter window, so the measured rate
    // never fully drains between bursts.
    AppSpec s;
    s.name = "Burst Video";
    s.category = AppSpec::Category::kGeneral;
    s.idle_request_fps = 26.0;
    s.burst_request_fps = 60.0;
    s.burst_hold_s = 0.6;
    s.render_mj_per_frame = 4.0;
    s.scene = SceneSpec::burst_video({700, 12, 30.0, {1, 3, 0, 2}});
    s.monkey = input::MonkeyProfile::general_app();
    s.monkey.mean_gap_s = 12.0;  // mostly watched, rarely touched
    v.push_back(std::move(s));
  }
  {
    // Overlay Suite: a UI primary plus two auxiliary surfaces with
    // independent damage -- a 40 px status bar on top (z 10) and a dialog
    // band mid-screen (z 5) -- composed through SurfaceFlinger.
    AppSpec s;
    s.name = "Overlay Suite";
    s.category = AppSpec::Category::kGeneral;
    s.idle_request_fps = 10.0;
    s.burst_request_fps = 60.0;
    s.burst_hold_s = 1.0;
    s.render_mj_per_frame = 3.0;
    UiSceneSpec ui;
    ui.states = {
        {UiState::Kind::kIdle, 1000, 2.0, 1, 1},
        {UiState::Kind::kMenu, 800, 6.0, 2, 2},
        {UiState::Kind::kScroll, 600, 24.0, 0, -1},
    };
    s.scene = SceneSpec::ui_machine(std::move(ui));
    s.monkey = input::MonkeyProfile::general_app();
    {
      AppSpec bar;
      bar.name = "Status Bar";
      bar.idle_request_fps = 4.0;
      bar.burst_request_fps = 4.0;
      bar.burst_hold_s = 0.0;
      bar.render_mj_per_frame = 0.5;
      UiSceneSpec clock;
      clock.states = {{UiState::Kind::kIdle, 0, 1.0, 0, -1}};
      clock.idle_timeout_ms = 0;
      bar.scene = SceneSpec::ui_machine(std::move(clock));
      bar.surface_rect = {0, 0, 720, 40};
      bar.surface_z = 10;
      s.overlays.push_back(std::move(bar));
    }
    {
      AppSpec band;
      band.name = "Dialog Band";
      band.idle_request_fps = 6.0;
      band.burst_request_fps = 6.0;
      band.burst_hold_s = 0.0;
      band.render_mj_per_frame = 1.0;
      UiSceneSpec blink;
      blink.states = {
          {UiState::Kind::kDialog, 1500, 4.0, 1, -1},
          {UiState::Kind::kMarquee, 1500, 8.0, 0, -1},
      };
      blink.idle_timeout_ms = 0;
      blink.marquee_px = 4;
      band.scene = SceneSpec::ui_machine(std::move(blink));
      band.surface_rect = {60, 420, 600, 320};
      band.surface_z = 5;
      s.overlays.push_back(std::move(band));
    }
    v.push_back(std::move(s));
  }
  return v;
}

std::optional<AppSpec> find_profile(const std::string& name) {
  for (AppSpec& s : all_apps()) {
    if (s.name == name) return std::move(s);
  }
  if (AppSpec w = nexus_revampled_wallpaper(); w.name == name) return w;
  for (AppSpec& s : scene_demo_apps()) {
    if (s.name == name) return std::move(s);
  }
  return std::nullopt;
}

AppSpec nexus_revampled_wallpaper() {
  AppSpec s;
  s.name = "Nexus Revampled";
  s.category = AppSpec::Category::kGeneral;
  // The wallpaper animates continuously; it requests frames at its own
  // cadence (below 25 fps per section 4.1) and every frame has content.
  s.idle_request_fps = 22.0;
  s.burst_request_fps = 22.0;
  s.burst_hold_s = 0.0;
  s.render_mj_per_frame = 1.5;
  // Dot geometry vs the sampling grids: a radius-8 dot always covers a
  // sample point of the 9K grid (10 px stride; worst-case corner distance
  // sqrt(50) ~ 7.1 < 8) but can fall entirely between the samples of the
  // 4K (15 px) and 2K (20 px) grids -- giving Fig. 6's "accurate from 9K
  // up, erroneous below" shape.
  s.scene = SceneSpec::wallpaper(/*dots=*/2, /*dot_radius=*/8, /*fps=*/20.0);
  s.monkey = input::MonkeyProfile::general_app();
  s.monkey.mean_gap_s = 1e9;  // never touched during the accuracy study
  return s;
}

}  // namespace ccdem::apps
