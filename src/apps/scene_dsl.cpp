#include "apps/scene_dsl.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <sstream>
#include <vector>

namespace ccdem::apps {

namespace {

constexpr const char* kSchema = "ccdem-scene-v1";
constexpr int kMaxStates = 16;
constexpr std::int64_t kMaxMs = 600'000;
constexpr double kMaxFps = 240.0;

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// Strict numeric parsing, same rules as the Scenario format: the whole
// value must be consumed, doubles must be finite.
std::optional<long long> parse_int_strict(const std::string& v) {
  long long out = 0;
  const char* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(v.data(), end, out);
  if (ec != std::errc{} || ptr != end || v.empty()) return std::nullopt;
  return out;
}

std::optional<double> parse_double_strict(const std::string& v) {
  double out = 0.0;
  const char* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(v.data(), end, out);
  if (ec != std::errc{} || ptr != end || v.empty()) return std::nullopt;
  if (!std::isfinite(out)) return std::nullopt;
  return out;
}

/// Shortest round-trip decimal (std::to_chars default).
std::string double_to_string(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  assert(ec == std::errc{});
  return std::string(buf, ptr);
}

const char* kind_to_string(UiState::Kind k) {
  switch (k) {
    case UiState::Kind::kIdle: return "idle";
    case UiState::Kind::kMenu: return "menu";
    case UiState::Kind::kScroll: return "scroll";
    case UiState::Kind::kSlide: return "slide";
    case UiState::Kind::kMarquee: return "marquee";
    case UiState::Kind::kDialog: return "dialog";
  }
  return "idle";
}

std::optional<UiState::Kind> parse_kind(const std::string& v) {
  if (v == "idle") return UiState::Kind::kIdle;
  if (v == "menu") return UiState::Kind::kMenu;
  if (v == "scroll") return UiState::Kind::kScroll;
  if (v == "slide") return UiState::Kind::kSlide;
  if (v == "marquee") return UiState::Kind::kMarquee;
  if (v == "dialog") return UiState::Kind::kDialog;
  return std::nullopt;
}

/// Parses one `state =` value: `<kind> dwell_ms=<ms> fps=<f> next=<i>
/// touch=<i>`, all four attributes required, any order, no duplicates.
std::optional<UiState> parse_state(const std::string& v, std::string* error) {
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos < v.size()) {
    const auto sp = v.find(' ', pos);
    const std::string tok =
        v.substr(pos, sp == std::string::npos ? std::string::npos : sp - pos);
    if (!tok.empty()) tokens.push_back(tok);
    if (sp == std::string::npos) break;
    pos = sp + 1;
  }
  if (tokens.empty()) {
    if (error) *error = "empty state line";
    return std::nullopt;
  }
  UiState st;
  const auto kind = parse_kind(tokens[0]);
  if (!kind) {
    if (error) *error = "unknown state kind: " + tokens[0];
    return std::nullopt;
  }
  st.kind = *kind;
  bool have_dwell = false, have_fps = false, have_next = false,
       have_touch = false;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      if (error) *error = "bad state attribute: " + tokens[i];
      return std::nullopt;
    }
    const std::string key = tokens[i].substr(0, eq);
    const std::string val = tokens[i].substr(eq + 1);
    if (key == "dwell_ms") {
      const auto ms = parse_int_strict(val);
      if (!ms || *ms < 0 || *ms > kMaxMs || have_dwell) return std::nullopt;
      st.dwell_ms = *ms;
      have_dwell = true;
    } else if (key == "fps") {
      const auto fps = parse_double_strict(val);
      if (!fps || *fps < 0.0 || *fps > kMaxFps || have_fps)
        return std::nullopt;
      st.anim_fps = *fps;
      have_fps = true;
    } else if (key == "next") {
      const auto n = parse_int_strict(val);
      if (!n || *n < 0 || *n >= kMaxStates || have_next) return std::nullopt;
      st.next = static_cast<int>(*n);
      have_next = true;
    } else if (key == "touch") {
      const auto n = parse_int_strict(val);
      if (!n || *n < -1 || *n >= kMaxStates || have_touch)
        return std::nullopt;
      st.touch_next = static_cast<int>(*n);
      have_touch = true;
    } else {
      if (error) *error = "unknown state attribute: " + key;
      return std::nullopt;
    }
  }
  if (!have_dwell || !have_fps || !have_next || !have_touch) {
    if (error) *error = "state line missing an attribute";
    return std::nullopt;
  }
  return st;
}

std::optional<std::vector<int>> parse_motion(const std::string& v) {
  std::vector<int> motion;
  std::size_t pos = 0;
  while (pos <= v.size()) {
    const auto comma = v.find(',', pos);
    const std::string item =
        trim(v.substr(pos, comma == std::string::npos ? std::string::npos
                                                      : comma - pos));
    const auto level = parse_int_strict(item);
    if (!level || *level < 0 || *level > 3) return std::nullopt;
    motion.push_back(static_cast<int>(*level));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (motion.empty() || motion.size() > 16) return std::nullopt;
  return motion;
}

}  // namespace

std::string scene_spec_to_string(const SceneSpec& spec) {
  std::ostringstream os;
  os << "schema = " << kSchema << "\n";
  if (spec.type == SceneSpec::Type::kUi) {
    os << "type = ui\n";
    os << "idle_timeout_ms = " << spec.ui.idle_timeout_ms << "\n";
    os << "marquee_px = " << spec.ui.marquee_px << "\n";
    for (const UiState& st : spec.ui.states) {
      os << "state = " << kind_to_string(st.kind)
         << " dwell_ms=" << st.dwell_ms
         << " fps=" << double_to_string(st.anim_fps) << " next=" << st.next
         << " touch=" << st.touch_next << "\n";
    }
    return os.str();
  }
  if (spec.type == SceneSpec::Type::kBurstVideo) {
    os << "type = burst_video\n";
    os << "gap_ms = " << spec.burst.gap_ms << "\n";
    os << "burst_frames = " << spec.burst.burst_frames << "\n";
    os << "burst_fps = " << double_to_string(spec.burst.burst_fps) << "\n";
    os << "motion = ";
    for (std::size_t i = 0; i < spec.burst.motion.size(); ++i) {
      if (i) os << ",";
      os << spec.burst.motion[i];
    }
    os << "\n";
    return os.str();
  }
  return "";
}

std::optional<SceneSpec> scene_spec_from_string(const std::string& text,
                                                std::string* error) {
  const auto fail = [error](const std::string& msg) -> std::optional<SceneSpec> {
    if (error) *error = msg;
    return std::nullopt;
  };

  bool have_schema = false;
  std::optional<std::string> type;
  UiSceneSpec ui;
  ui.states.clear();
  BurstVideoSpec burst;
  bool have_timeout = false, have_marquee = false, have_gap = false,
       have_frames = false, have_fps = false, have_motion = false;

  std::istringstream is(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(is, raw)) {
    ++lineno;
    std::string line = raw;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      return fail("scene line " + std::to_string(lineno) + ": not key=value");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    const auto bad = [&]() {
      return fail("scene line " + std::to_string(lineno) + ": bad " + key +
                  " value: " + value);
    };

    if (key == "schema") {
      if (value != kSchema) return fail("unsupported scene schema: " + value);
      have_schema = true;
    } else if (key == "type") {
      if (type) return fail("duplicate type");
      if (value != "ui" && value != "burst_video") return bad();
      type = value;
    } else if (key == "idle_timeout_ms") {
      const auto ms = parse_int_strict(value);
      if (!ms || *ms < 0 || *ms > kMaxMs || have_timeout) return bad();
      ui.idle_timeout_ms = *ms;
      have_timeout = true;
    } else if (key == "marquee_px") {
      const auto px = parse_int_strict(value);
      if (!px || *px < 1 || *px > 64 || have_marquee) return bad();
      ui.marquee_px = static_cast<int>(*px);
      have_marquee = true;
    } else if (key == "state") {
      std::string state_error;
      const auto st = parse_state(value, &state_error);
      if (!st) {
        return fail("scene line " + std::to_string(lineno) + ": " +
                    (state_error.empty() ? "bad state" : state_error));
      }
      if (ui.states.size() >= kMaxStates) return fail("too many states");
      ui.states.push_back(*st);
    } else if (key == "gap_ms") {
      const auto ms = parse_int_strict(value);
      if (!ms || *ms < 0 || *ms > kMaxMs || have_gap) return bad();
      burst.gap_ms = *ms;
      have_gap = true;
    } else if (key == "burst_frames") {
      const auto n = parse_int_strict(value);
      if (!n || *n < 1 || *n > 240 || have_frames) return bad();
      burst.burst_frames = static_cast<int>(*n);
      have_frames = true;
    } else if (key == "burst_fps") {
      const auto fps = parse_double_strict(value);
      if (!fps || *fps <= 0.0 || *fps > kMaxFps || have_fps) return bad();
      burst.burst_fps = *fps;
      have_fps = true;
    } else if (key == "motion") {
      const auto m = parse_motion(value);
      if (!m || have_motion) return bad();
      burst.motion = *m;
      have_motion = true;
    } else {
      return fail("unknown scene key: " + key);
    }
  }

  if (!have_schema) return fail("missing scene schema line");
  if (!type) return fail("missing scene type");
  if (*type == "ui") {
    if (have_gap || have_frames || have_fps || have_motion) {
      return fail("burst_video keys in a ui scene");
    }
    if (ui.states.empty()) return fail("ui scene needs at least one state");
    const int n = static_cast<int>(ui.states.size());
    for (const UiState& st : ui.states) {
      if (st.next >= n) return fail("state next out of range");
      if (st.touch_next >= n) return fail("state touch out of range");
    }
    return SceneSpec::ui_machine(std::move(ui));
  }
  if (have_timeout || have_marquee || !ui.states.empty()) {
    return fail("ui keys in a burst_video scene");
  }
  return SceneSpec::burst_video(std::move(burst));
}

}  // namespace ccdem::apps
