// Scene: what an application draws.
//
// A scene owns the *content timeline* of an app -- the thing the paper's
// content rate measures.  `render` is called whenever the app model decides
// to produce a frame; the scene draws only if its content actually advanced
// since the last render and reports whether it touched any pixels.  An app
// that renders faster than its content evolves therefore posts redundant
// frames, exactly the waste pattern of Fig. 2/3.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "gfx/canvas.h"
#include "input/touch_event.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace ccdem::apps {

class Scene {
 public:
  virtual ~Scene() = default;

  /// Paints the initial full-screen content.  Called once, before the first
  /// render, with the surface canvas.
  virtual void init(gfx::Canvas& canvas) = 0;

  /// Produces the frame for time `t`.  Returns true iff pixels changed.
  virtual bool render(gfx::Canvas& canvas, sim::Time t) = 0;

  /// Input reaches the scene directly (scroll impulses, game actions).
  virtual void on_touch(const input::TouchEvent&) {}

  /// The scene's own content rate at `t` (fps) -- the rate at which it
  /// *would* change pixels given unlimited rendering.  Used by workload
  /// tests; the meter never reads this.
  [[nodiscard]] virtual double nominal_content_fps(sim::Time t) const = 0;
};

/// One state of a UiScene state machine (the ccdem-scene-v1 DSL, see
/// apps/scene_dsl.h).  Transitions fire on a dwell timer (`next`) and on
/// touch (`touch_next`); the scene-wide interaction timeout returns the
/// machine to state 0.
struct UiState {
  enum class Kind { kIdle, kMenu, kScroll, kSlide, kMarquee, kDialog };
  Kind kind = Kind::kIdle;
  std::int64_t dwell_ms = 1000;  ///< 0 disables the timed transition
  double anim_fps = 8.0;         ///< per-state animation rate
  int next = 0;                  ///< state entered when dwell expires
  int touch_next = -1;           ///< state entered on touch-down (-1 = none)
  [[nodiscard]] bool operator==(const UiState&) const = default;
};

/// State graph + scene-wide knobs for UiScene.  State 0 is the initial
/// (and idle-timeout) state; `states` is never empty.
struct UiSceneSpec {
  std::vector<UiState> states{UiState{}};
  std::int64_t idle_timeout_ms = 3000;  ///< 0 disables timeout-to-state-0
  int marquee_px = 6;  ///< marquee band height; 1 px is the Fig. 6 case
  [[nodiscard]] bool operator==(const UiSceneSpec&) const = default;
};

/// Long static gaps punctuated by frame bursts (the BurstLink shape), with
/// EVSO-style per-segment motion levels: `motion[seg % motion.size()]` is
/// how many blocks move per burst frame (0 = the segment only changes its
/// backdrop once).
struct BurstVideoSpec {
  std::int64_t gap_ms = 900;   ///< static gap between bursts
  int burst_frames = 12;       ///< frames per burst
  double burst_fps = 30.0;     ///< decode rate inside a burst
  std::vector<int> motion{2};  ///< per-segment motion level, 0..3, cycled
  [[nodiscard]] bool operator==(const BurstVideoSpec&) const = default;
};

/// Flat description of a scene; the factory turns it into a Scene instance.
struct SceneSpec {
  enum class Type {
    kStaticUi,
    kVideo,
    kGame,
    kWallpaper,
    kTyping,
    kMap,
    kUi,
    kBurstVideo
  };
  Type type = Type::kStaticUi;

  // --- kStaticUi: browse/feed UI with an ad ticker and touch scrolling ---
  double idle_content_fps = 1.0;   ///< spontaneous changes (ad/widget ticks)
  int scroll_px_per_frame = 40;    ///< scroll consumed per rendered frame
  int scroll_px_per_move = 14;     ///< scroll queued per touch-move event
  int fling_px = 160;              ///< extra scroll queued on touch-up

  // --- kVideo: full-width video region updating at the video frame rate ---
  double video_fps = 24.0;
  /// The synthetic clip loops after this many decoded frames (0 = never):
  /// past one loop every frame is an exact repeat of a frame one period ago,
  /// the whole-frame memoization case (video loops, trailer autoplay).
  int video_loop_frames = 96;
  /// Decoded frames per "cut": the gradient backdrop only changes when the
  /// cut index changes, so consecutive frames inside a cut share most rows
  /// -- the inter-frame coherence real codecs exhibit (and the tile cache
  /// exploits); the moving blocks still change every frame.
  int video_cut_frames = 12;

  // --- kGame: sprites over a static background; logic ticks at content fps
  double game_content_fps = 20.0;
  double touch_content_boost_fps = 12.0;  ///< extra logic rate while touched
  double touch_boost_hold_s = 0.8;
  int sprite_count = 8;
  int sprite_radius = 44;

  // --- kWallpaper: small moving dots (the Fig. 6 adversarial workload) ---
  double wallpaper_fps = 20.0;
  int dot_count = 3;
  int dot_radius = 4;

  // --- kTyping: messenger with cursor blink, keystrokes, message bubbles ---
  double cursor_blink_fps = 2.0;
  double incoming_msg_period_s = 8.0;

  // --- kUi / kBurstVideo: DSL-described scenes (apps/scene_dsl.h) ---
  UiSceneSpec ui{};
  BurstVideoSpec burst{};

  static SceneSpec static_ui(double idle_content_fps) {
    SceneSpec s;
    s.type = Type::kStaticUi;
    s.idle_content_fps = idle_content_fps;
    return s;
  }
  static SceneSpec video(double fps) {
    SceneSpec s;
    s.type = Type::kVideo;
    s.video_fps = fps;
    return s;
  }
  static SceneSpec game(double content_fps, int sprites = 8,
                        double touch_boost_fps = 12.0) {
    SceneSpec s;
    s.type = Type::kGame;
    s.game_content_fps = content_fps;
    s.sprite_count = sprites;
    s.touch_content_boost_fps = touch_boost_fps;
    return s;
  }
  static SceneSpec wallpaper(int dots, int dot_radius, double fps = 20.0) {
    SceneSpec s;
    s.type = Type::kWallpaper;
    s.dot_count = dots;
    s.dot_radius = dot_radius;
    s.wallpaper_fps = fps;
    return s;
  }
  static SceneSpec typing(double cursor_blink_fps = 2.0,
                          double incoming_msg_period_s = 8.0) {
    SceneSpec s;
    s.type = Type::kTyping;
    s.cursor_blink_fps = cursor_blink_fps;
    s.incoming_msg_period_s = incoming_msg_period_s;
    return s;
  }
  /// 2-D panning map; `marker_pulse_fps` drives the idle position marker.
  static SceneSpec map(double marker_pulse_fps = 1.0) {
    SceneSpec s;
    s.type = Type::kMap;
    s.idle_content_fps = marker_pulse_fps;
    return s;
  }
  static SceneSpec ui_machine(UiSceneSpec spec) {
    SceneSpec s;
    s.type = Type::kUi;
    s.ui = std::move(spec);
    return s;
  }
  static SceneSpec burst_video(BurstVideoSpec spec) {
    SceneSpec s;
    s.type = Type::kBurstVideo;
    s.burst = std::move(spec);
    return s;
  }
};

/// Builds a scene for a surface-sized canvas.  `rng` seeds per-scene
/// variation (sprite paths, feed content).
[[nodiscard]] std::unique_ptr<Scene> make_scene(const SceneSpec& spec,
                                                gfx::Size surface_size,
                                                sim::Rng rng);

}  // namespace ccdem::apps
