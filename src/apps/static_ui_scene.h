// StaticUiScene: the browse-style UI of general applications.
//
// Layout: a header bar, a scrollable feed of content cards, and an ad
// banner.  When idle the only pixel changes are banner/widget ticks at
// `idle_content_fps`; touch moves queue scroll pixels that subsequent
// renders consume, so interaction produces a content burst (Fig. 2's
// Facebook trace: flat when idle, spikes on user requests).
#pragma once

#include <cstdint>

#include "apps/scene.h"

namespace ccdem::apps {

class StaticUiScene final : public Scene {
 public:
  StaticUiScene(const SceneSpec& spec, gfx::Size size, sim::Rng rng);

  void init(gfx::Canvas& canvas) override;
  bool render(gfx::Canvas& canvas, sim::Time t) override;
  void on_touch(const input::TouchEvent& e) override;
  [[nodiscard]] double nominal_content_fps(sim::Time t) const override;

  [[nodiscard]] int pending_scroll_px() const { return pending_scroll_px_; }

 private:
  void paint_feed_band(gfx::Canvas& canvas, int y0, int y1);
  void paint_banner(gfx::Canvas& canvas, std::uint32_t seed);

  SceneSpec spec_;
  gfx::Size size_;
  sim::Rng rng_;
  gfx::Rect header_{};
  gfx::Rect feed_{};
  gfx::Rect banner_{};
  std::int64_t last_idle_version_ = -1;
  int scroll_offset_px_ = 0;       ///< virtual feed position
  int pending_scroll_px_ = 0;      ///< queued by touch, consumed by renders
  sim::Time last_touch_{};
  bool touching_ = false;
};

}  // namespace ccdem::apps
