// UiScene: an interactive UI modelled as a state machine.
//
// Real UIs are not statistical loops: they sit in discrete states (idle
// screen, menu, scrolling list, slide transition, marquee ticker, modal
// dialog), each with its own animation rate, and move between them on
// timers and touches.  That shape -- long quiet stretches, short animated
// flurries, sub-pixel-thin content like a 1-px marquee -- is exactly the
// adversarial input for a content-rate-driven refresh governor, so the
// state graph is fully scriptable through UiSceneSpec (serialized by the
// ccdem-scene-v1 DSL, apps/scene_dsl.h).
//
// Determinism contract: rendering is a pure function of (spec, touch
// sequence, render times).  No RNG is consumed after construction, so two
// scenes built from the same spec produce byte-identical frame sequences
// for the same inputs -- the property the DST determinism oracle leans on.
//
// BurstVideoScene lives here too: frame bursts separated by long static
// gaps (the BurstLink hard case) with EVSO-style per-segment motion levels.
#pragma once

#include <cstdint>

#include "apps/scene.h"

namespace ccdem::apps {

class UiScene final : public Scene {
 public:
  UiScene(const SceneSpec& spec, gfx::Size size, sim::Rng rng);

  void init(gfx::Canvas& canvas) override;
  bool render(gfx::Canvas& canvas, sim::Time t) override;
  void on_touch(const input::TouchEvent& e) override;
  [[nodiscard]] double nominal_content_fps(sim::Time t) const override;

  /// Current state index; exposed for state-machine tests.
  [[nodiscard]] int state() const { return state_; }

 private:
  /// Advances the machine to `target` at time `t`.  Entering a *different*
  /// state repaints the full backdrop (every backdrop colour is unique per
  /// state index, and animations never use backdrop-range colours, so the
  /// repaint always changes pixels); re-entering the current state resets
  /// the dwell/animation clocks without touching the canvas.
  void enter_state(gfx::Canvas& canvas, int target, sim::Time t,
                   bool& changed);
  void paint_backdrop(gfx::Canvas& canvas, bool& changed);
  bool animate(gfx::Canvas& canvas, sim::Time t);
  /// Latches per-entry dialog state; the canary build plants its bug here.
  void arm_dialog_entry();
  [[nodiscard]] gfx::Rgb888 backdrop_color() const;

  [[nodiscard]] const UiState& cur() const {
    return spec_.states[static_cast<std::size_t>(state_)];
  }
  /// Seed that differs between consecutive animation versions *and* between
  /// consecutive entries of the same state, so every repaint is an honest
  /// pixel change even across self-transitions.
  [[nodiscard]] std::uint32_t anim_seed(std::int64_t version) const {
    return static_cast<std::uint32_t>(version * 2 + (entry_seq_ & 1));
  }

  UiSceneSpec spec_;
  gfx::Size size_;
  int state_ = 0;
  sim::Time entered_{};
  sim::Time last_touch_{};
  bool touched_ = false;  ///< any touch seen yet
  int pending_touch_target_ = -1;
  std::int64_t last_version_ = -1;
  std::uint32_t entry_seq_ = 0;
  std::uint32_t dialog_seed_base_ = 0;
  int slide_edge_px_ = 0;
  int marquee_y_ = -1;  ///< band top painted by the last marquee frame
};

class BurstVideoScene final : public Scene {
 public:
  BurstVideoScene(const SceneSpec& spec, gfx::Size size, sim::Rng rng);

  void init(gfx::Canvas& canvas) override;
  bool render(gfx::Canvas& canvas, sim::Time t) override;
  [[nodiscard]] double nominal_content_fps(sim::Time t) const override;

 private:
  struct Position {
    std::int64_t segment = 0;  ///< burst index since t=0
    int frame = 0;             ///< frame within the burst
    bool in_burst = false;
  };
  [[nodiscard]] Position position_at(sim::Time t) const;
  [[nodiscard]] int motion_level(std::int64_t segment) const;
  void paint_burst_frame(gfx::Canvas& canvas, std::int64_t version,
                         std::int64_t segment, int level);

  BurstVideoSpec spec_;
  gfx::Size size_;
  std::int64_t burst_ms_ = 0;   ///< burst phase length
  std::int64_t period_ms_ = 1;  ///< burst + gap
  std::int64_t last_version_ = -1;
  std::int64_t last_segment_ = -1;
};

}  // namespace ccdem::apps
