#include "apps/static_ui_scene.h"

#include <algorithm>
#include <cmath>

namespace ccdem::apps {

namespace {
constexpr int kHeaderHeight = 80;
constexpr int kBannerHeight = 96;
constexpr int kCardHeight = 150;

/// Colour of the virtual feed card containing virtual row `vy`.
gfx::Rgb888 card_color(int vy) {
  const std::uint32_t i = static_cast<std::uint32_t>(vy / kCardHeight);
  // Hash the card index into a pastel palette entry.
  const std::uint32_t h = i * 2654435761u;
  return gfx::Rgb888{static_cast<std::uint8_t>(180 + (h & 0x3f)),
                     static_cast<std::uint8_t>(180 + ((h >> 8) & 0x3f)),
                     static_cast<std::uint8_t>(180 + ((h >> 16) & 0x3f))};
}
}  // namespace

StaticUiScene::StaticUiScene(const SceneSpec& spec, gfx::Size size,
                             sim::Rng rng)
    : spec_(spec), size_(size), rng_(rng) {
  header_ = {0, 0, size.width, kHeaderHeight};
  banner_ = {0, size.height - kBannerHeight, size.width, kBannerHeight};
  feed_ = {0, kHeaderHeight, size.width,
           size.height - kHeaderHeight - kBannerHeight};
}

void StaticUiScene::init(gfx::Canvas& canvas) {
  canvas.fill_rect(header_, gfx::Rgb888{30, 60, 120});
  canvas.draw_text_block(
      gfx::Rect{12, 20, header_.width / 2, kHeaderHeight - 40},
      gfx::colors::kWhite, gfx::Rgb888{30, 60, 120}, 7u);
  paint_feed_band(canvas, feed_.y, feed_.bottom());
  paint_banner(canvas, 0u);
  last_idle_version_ = 0;  // banner seed 0 is on screen already
}

void StaticUiScene::paint_feed_band(gfx::Canvas& canvas, int y0, int y1) {
  // Each screen row maps to virtual feed row (y - feed_.y + scroll_offset).
  int y = y0;
  while (y < y1) {
    const int vy = y - feed_.y + scroll_offset_px_;
    const int card_top_vy = (vy / kCardHeight) * kCardHeight;
    const int card_end_y = y + (card_top_vy + kCardHeight - vy);
    const int band_end = std::min(card_end_y, y1);
    // Card body with a darker separator line at the card boundary.
    canvas.fill_rect(gfx::Rect{feed_.x, y, feed_.width, band_end - y},
                     card_color(vy));
    if (vy == card_top_vy) {
      canvas.fill_rect(gfx::Rect{feed_.x, y, feed_.width, 2},
                       gfx::colors::kDarkGray);
    }
    y = band_end;
  }
}

void StaticUiScene::paint_banner(gfx::Canvas& canvas, std::uint32_t seed) {
  const gfx::Rgb888 bg{static_cast<std::uint8_t>(60 + (seed * 37) % 120),
                       static_cast<std::uint8_t>(40 + (seed * 61) % 120),
                       static_cast<std::uint8_t>(80 + (seed * 13) % 120)};
  canvas.fill_rect(banner_, bg);
  canvas.draw_text_block(gfx::Rect{24, banner_.y + 24, banner_.width - 48,
                                   banner_.height - 48},
                         gfx::colors::kWhite, bg, seed);
}

void StaticUiScene::on_touch(const input::TouchEvent& e) {
  last_touch_ = e.t;
  switch (e.action) {
    case input::TouchEvent::Action::kDown:
      touching_ = true;
      break;
    case input::TouchEvent::Action::kMove:
      pending_scroll_px_ += spec_.scroll_px_per_move;
      break;
    case input::TouchEvent::Action::kUp:
      touching_ = false;
      // Fling: the feed keeps moving after the finger lifts.
      pending_scroll_px_ += spec_.fling_px;
      break;
  }
}

bool StaticUiScene::render(gfx::Canvas& canvas, sim::Time t) {
  bool changed = false;

  // Consume queued scroll, at most `scroll_px_per_frame` per render.
  if (pending_scroll_px_ > 0) {
    const int dy = std::min(pending_scroll_px_, spec_.scroll_px_per_frame);
    pending_scroll_px_ -= dy;
    scroll_offset_px_ += dy;
    canvas.scroll_up(feed_, dy);
    paint_feed_band(canvas, feed_.bottom() - dy, feed_.bottom());
    changed = true;
  }

  // Idle content: the ad banner rotates at idle_content_fps.
  if (spec_.idle_content_fps > 0.0) {
    const auto version = static_cast<std::int64_t>(
        t.seconds() * spec_.idle_content_fps);
    if (version != last_idle_version_) {
      last_idle_version_ = version;
      paint_banner(canvas, static_cast<std::uint32_t>(version));
      changed = true;
    }
  }
  return changed;
}

double StaticUiScene::nominal_content_fps(sim::Time) const {
  // While scroll is queued every render changes pixels; otherwise only the
  // banner ticks.
  if (pending_scroll_px_ > 0) return 60.0;
  return spec_.idle_content_fps;
}

}  // namespace ccdem::apps
