// The 30 commercial applications of the paper's evaluation (section 2.2):
// 15 general applications and 15 games from the Google Play Top Charts
// (South Korea), run on a Galaxy S3.
//
// Each profile parameterises an AppSpec so the app's frame-request rate,
// content rate, interaction response and render cost reproduce the
// behaviour classes reported in Fig. 2 and Fig. 3:
//  * general apps mostly request < 30 fps; ~40 % of them post ~20 redundant
//    fps (Cash Slide, Daum Maps, CGV, ...),
//  * games all update the display above 30 fps and 80 % of them post more
//    than 20 redundant fps.
// The per-app numbers are reconstructions from the paper's bar charts (the
// published figures give per-app bars but no table); the aggregate shape is
// what the reproduction validates.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "apps/app_model.h"
#include "gfx/geometry.h"

namespace ccdem::apps {

/// The Galaxy S3 (SHV-E210S) screen the paper instruments.
inline constexpr gfx::Size kGalaxyS3Screen{720, 1280};

/// All 15 general applications, in the order of Fig. 3(a)/(c).
[[nodiscard]] std::vector<AppSpec> general_apps();

/// All 15 game applications, in the order of Fig. 3(b)/(d).
[[nodiscard]] std::vector<AppSpec> game_apps();

/// general_apps() followed by game_apps().
[[nodiscard]] std::vector<AppSpec> all_apps();

/// Looks up a profile by name (case-sensitive).  Aborts if unknown.
[[nodiscard]] AppSpec app_by_name(const std::string& name);

/// The Nexus Revampled live wallpaper used for the Fig. 6 accuracy study.
[[nodiscard]] AppSpec nexus_revampled_wallpaper();

/// Scene-demo profiles exercising the DSL-described scenes: "Menu UI" (a
/// UiScene state machine), "Burst Video" (gap/burst video) and "Overlay
/// Suite" (primary UI plus status-bar and dialog overlay surfaces).  Kept
/// out of all_apps() so the paper's 30-app evaluation set stays exact.
[[nodiscard]] std::vector<AppSpec> scene_demo_apps();

/// Looks up any known profile by name: the 30 evaluation apps, the live
/// wallpaper, and the scene demos.  This is the lookup Scenario files and
/// experiment configs resolve `app` keys against.
[[nodiscard]] std::optional<AppSpec> find_profile(const std::string& name);

}  // namespace ccdem::apps
