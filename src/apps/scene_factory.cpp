#include "apps/game_scene.h"
#include "apps/map_scene.h"
#include "apps/scene.h"
#include "apps/static_ui_scene.h"
#include "apps/typing_scene.h"
#include "apps/ui_scene.h"
#include "apps/video_scene.h"
#include "apps/wallpaper_scene.h"

namespace ccdem::apps {

std::unique_ptr<Scene> make_scene(const SceneSpec& spec,
                                  gfx::Size surface_size, sim::Rng rng) {
  switch (spec.type) {
    case SceneSpec::Type::kStaticUi:
      return std::make_unique<StaticUiScene>(spec, surface_size, rng);
    case SceneSpec::Type::kVideo:
      return std::make_unique<VideoScene>(spec, surface_size, rng);
    case SceneSpec::Type::kGame:
      return std::make_unique<GameScene>(spec, surface_size, rng);
    case SceneSpec::Type::kWallpaper:
      return std::make_unique<WallpaperScene>(spec, surface_size, rng);
    case SceneSpec::Type::kTyping:
      return std::make_unique<TypingScene>(spec, surface_size, rng);
    case SceneSpec::Type::kMap:
      return std::make_unique<MapScene>(spec, surface_size, rng);
    case SceneSpec::Type::kUi:
      return std::make_unique<UiScene>(spec, surface_size, rng);
    case SceneSpec::Type::kBurstVideo:
      return std::make_unique<BurstVideoScene>(spec, surface_size, rng);
  }
  return nullptr;  // unreachable: all enum values handled
}

}  // namespace ccdem::apps
