// ccdem-scene-v1: the scene DSL.
//
// A strict key=value text form (same conventions as the Scenario format:
// '#' comments, whole-value numeric parses, exact round-trip through the
// canonical serialization) for the two DSL-described scenes:
//
//   schema = ccdem-scene-v1          schema = ccdem-scene-v1
//   type = ui                        type = burst_video
//   idle_timeout_ms = 3000           gap_ms = 900
//   marquee_px = 6                   burst_frames = 12
//   state = menu dwell_ms=900 fps=6 next=2 touch=3
//   state = dialog dwell_ms=600 fps=12 next=0 touch=-1
//                                    burst_fps = 30
//                                    motion = 1,3,0,2
//
// `state` lines are ordered (state 0 is initial) and each carries all four
// attributes; kinds are idle/menu/scroll/slide/marquee/dialog.  Scenario
// embeds this block verbatim between begin_scene/end_scene markers, so the
// grammar deliberately has no line that could collide with those.
#pragma once

#include <optional>
#include <string>

#include "apps/scene.h"

namespace ccdem::apps {

/// Canonical text for a kUi or kBurstVideo spec (ends with '\n').  Other
/// scene types have no DSL form and yield an empty string.
[[nodiscard]] std::string scene_spec_to_string(const SceneSpec& spec);

/// Strict parse; on failure returns nullopt and (if non-null) sets *error.
/// parse(to_string(s)) == s for every spec that to_string accepts.
[[nodiscard]] std::optional<SceneSpec> scene_spec_from_string(
    const std::string& text, std::string* error = nullptr);

}  // namespace ccdem::apps
