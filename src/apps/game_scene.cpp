#include "apps/game_scene.h"

#include <algorithm>
#include <cmath>

namespace ccdem::apps {

GameScene::GameScene(const SceneSpec& spec, gfx::Size size, sim::Rng rng)
    : spec_(spec), size_(size), rng_(rng) {
  hud_ = {0, 0, size.width, 56};
  sprites_.resize(static_cast<std::size_t>(spec.sprite_count));
  const int r = spec.sprite_radius;
  for (auto& s : sprites_) {
    s.center = {static_cast<int>(rng_.uniform_int(r + 10, size.width - r - 10)),
                static_cast<int>(
                    rng_.uniform_int(hud_.bottom() + r + 10,
                                     size.height - r - 10))};
    s.ax = rng_.uniform(40.0, 160.0);
    s.ay = rng_.uniform(40.0, 200.0);
    s.fx = rng_.uniform(0.05, 0.22);
    s.fy = rng_.uniform(0.05, 0.22);
    s.phx = rng_.uniform(0.0, 6.28);
    s.phy = rng_.uniform(0.0, 6.28);
    s.color = gfx::Rgb888{static_cast<std::uint8_t>(rng_.uniform_int(90, 255)),
                          static_cast<std::uint8_t>(rng_.uniform_int(90, 255)),
                          static_cast<std::uint8_t>(rng_.uniform_int(90, 255))};
    s.pos = sprite_pos(s, 0);
  }
}

gfx::Point GameScene::sprite_pos(const Sprite& s, std::int64_t tick) const {
  const double td = static_cast<double>(tick);
  int x = s.center.x + static_cast<int>(s.ax * std::sin(s.fx * td + s.phx));
  int y = s.center.y + static_cast<int>(s.ay * std::cos(s.fy * td + s.phy));
  const int r = spec_.sprite_radius;
  x = std::clamp(x, r, size_.width - r - 1);
  y = std::clamp(y, hud_.bottom() + r, size_.height - r - 1);
  return {x, y};
}

void GameScene::draw_sprite_at(gfx::Canvas& canvas, const Sprite& s,
                               gfx::Point p) {
  canvas.draw_circle(p, spec_.sprite_radius, s.color);
}

// The sprite parameter exists for symmetry with draw_sprite_at; every
// sprite erases to the same background.
void GameScene::erase_sprite_at(gfx::Canvas& canvas, const Sprite&,
                                gfx::Point p) {
  const int r = spec_.sprite_radius;
  canvas.fill_rect(gfx::Rect{p.x - r, p.y - r, 2 * r + 1, 2 * r + 1}, bg_);
}

void GameScene::init(gfx::Canvas& canvas) {
  canvas.fill(bg_);
  canvas.fill_rect(hud_, gfx::Rgb888{10, 10, 20});
  canvas.draw_text_block(gfx::Rect{12, 12, hud_.width / 3, 32},
                         gfx::colors::kYellow, gfx::Rgb888{10, 10, 20},
                         score_);
  for (const auto& s : sprites_) draw_sprite_at(canvas, s, s.pos);
}

void GameScene::on_touch(const input::TouchEvent& e) {
  // The game reacts: logic speeds up briefly and the score HUD changes.
  boost_until_ = e.t + sim::seconds_f(spec_.touch_boost_hold_s);
  if (e.action == input::TouchEvent::Action::kDown) ++score_;
}

double GameScene::effective_content_fps(sim::Time t) const {
  double fps = spec_.game_content_fps;
  if (t <= boost_until_) fps += spec_.touch_content_boost_fps;
  return fps;
}

bool GameScene::render(gfx::Canvas& canvas, sim::Time t) {
  // Advance the logic clock at the effective rate since the last render.
  // The boost changes the rate, so integrate piecewise rather than sampling.
  const double dt = (t - last_render_).seconds();
  if (dt > 0.0) {
    double boosted_s = 0.0;
    if (last_render_ < boost_until_) {
      boosted_s = (std::min(t, boost_until_) - last_render_).seconds();
    }
    logic_clock_ += spec_.game_content_fps * dt +
                    spec_.touch_content_boost_fps * boosted_s;
  }
  last_render_ = t;

  const auto tick = static_cast<std::int64_t>(logic_clock_);
  if (tick == last_tick_) return false;  // engine re-render, content static
  const std::int64_t prev_tick = last_tick_;
  last_tick_ = tick;

  // A tick only changes pixels if some sprite's rounded position moved or
  // the HUD readout rolled over; otherwise the redraw would be identical
  // and the frame is redundant despite the logic advancing.
  std::vector<gfx::Point> new_pos(sprites_.size());
  bool any_moved = false;
  for (std::size_t i = 0; i < sprites_.size(); ++i) {
    new_pos[i] = sprite_pos(sprites_[i], tick);
    if (new_pos[i] != sprites_[i].pos) any_moved = true;
  }
  const bool hud_changed = prev_tick >= 0 && prev_tick / 30 != tick / 30;
  if (!any_moved && !hud_changed) return false;

  if (any_moved) {
    // Erase all sprites at their old positions, then redraw at new positions
    // (two passes so overlapping sprites do not punch holes in each other).
    for (auto& s : sprites_) erase_sprite_at(canvas, s, s.pos);
    for (std::size_t i = 0; i < sprites_.size(); ++i) {
      sprites_[i].pos = new_pos[i];
      draw_sprite_at(canvas, sprites_[i], sprites_[i].pos);
    }
  }
  // HUD updates once per ~30 logic ticks (score/time readout).
  if (hud_changed) {
    canvas.fill_rect(hud_, gfx::Rgb888{10, 10, 20});
    canvas.draw_text_block(gfx::Rect{12, 12, hud_.width / 3, 32},
                           gfx::colors::kYellow, gfx::Rgb888{10, 10, 20},
                           score_ + static_cast<std::uint32_t>(tick / 30));
  }
  return true;
}

double GameScene::nominal_content_fps(sim::Time t) const {
  return effective_content_fps(t);
}

}  // namespace ccdem::apps
