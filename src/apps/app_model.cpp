#include "apps/app_model.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ccdem::apps {

AppModel::AppModel(AppSpec spec, gfx::Surface* surface,
                   power::DevicePowerModel* power, sim::Rng rng)
    : spec_(std::move(spec)), surface_(surface), power_(power) {
  assert(surface_ != nullptr);
  scene_ = make_scene(spec_.scene, surface_->buffer().size(), rng);
}

double AppModel::render_energy_mj(double request_fps) const {
  if (!spec_.dvfs_coupling) return spec_.render_mj_per_frame;
  return spec_.render_mj_per_frame * (0.7 + 0.6 * request_fps / 60.0);
}

double AppModel::current_request_fps(sim::Time t) const {
  const double own =
      t <= burst_until_ ? spec_.burst_request_fps : spec_.idle_request_fps;
  if (request_cap_fps_ > 0.0) return std::min(own, request_cap_fps_);
  return own;
}

void AppModel::set_foreground(bool fg) {
  if (fg && !foreground_) {
    // Activity resume: repaint the whole window (the framebuffer may hold
    // another app's pixels) and start requesting immediately.
    initialized_ = false;
    next_render_ = sim::Time{};
  }
  foreground_ = fg;
  surface_->set_visible(fg);
}

void AppModel::on_touch(const input::TouchEvent& e) {
  if (!foreground_) return;
  burst_until_ = e.t + sim::seconds_f(spec_.burst_hold_s);
  // A parked app (zero idle rate) resumes requesting right away.
  next_render_ = std::min(next_render_, e.t);
  scene_->on_touch(e);
}

void AppModel::on_vsync(sim::Time t, int refresh_hz) {
  if (!foreground_) return;
  const double desired_fps = current_request_fps(t);
  // An app always paints its window once on launch/resume, even if it then
  // never requests again (idle_request_fps == 0: a truly static app).
  if (initialized_ && desired_fps <= 0.0) return;
  if (initialized_ && t < next_render_) return;

  gfx::Canvas& canvas = surface_->begin_frame();
  if (!initialized_) {
    scene_->init(canvas);
    initialized_ = true;
  }
  scene_->render(canvas, t);
  surface_->post_frame();
  ++frames_posted_;
  if (power_ != nullptr) {
    // The DVFS factor follows the *achieved* rate: V-Sync caps rendering at
    // the refresh rate, and the frequency governor follows the actual load.
    power_->add_energy_mj(
        t,
        render_energy_mj(
            std::min(desired_fps, static_cast<double>(refresh_hz))),
        power::EnergyTag::kRender);
  }

  // Pace the next request at the desired cadence, allowing at most one
  // frame of backlog so a refresh-rate jump does not trigger a burst of
  // catch-up renders.
  if (desired_fps > 0.0) {
    const sim::Duration period = sim::period_of_hz(desired_fps);
    next_render_ = std::max(next_render_ + period, t - period);
  } else {
    next_render_ = t + sim::seconds(3600);  // parked until a touch burst
  }
}

}  // namespace ccdem::apps
