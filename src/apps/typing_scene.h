// TypingScene: a messenger conversation (KakaoTalk class).
//
// Content sources, smallest to largest:
//  * a cursor blinking at ~2 Hz in the input bar (tiny change -- with the
//    wallpaper dots, a second adversarial case for sparse metering grids),
//  * keystrokes while the user touches (key highlight + text growth),
//  * incoming message bubbles every several seconds (conversation scrolls).
//
// The idle content rate is therefore ~2 fps with bursts during typing --
// the general-app profile of Fig. 3 with realistic pixel behaviour.
#pragma once

#include <cstdint>

#include "apps/scene.h"

namespace ccdem::apps {

class TypingScene final : public Scene {
 public:
  TypingScene(const SceneSpec& spec, gfx::Size size, sim::Rng rng);

  void init(gfx::Canvas& canvas) override;
  bool render(gfx::Canvas& canvas, sim::Time t) override;
  void on_touch(const input::TouchEvent& e) override;
  [[nodiscard]] double nominal_content_fps(sim::Time t) const override;

 private:
  void paint_bubble(gfx::Canvas& canvas, std::uint32_t seed, bool incoming);
  void paint_input_text(gfx::Canvas& canvas);
  [[nodiscard]] gfx::Rect cursor_rect() const;

  SceneSpec spec_;
  gfx::Size size_;
  sim::Rng rng_;
  gfx::Rect conversation_{};
  gfx::Rect input_bar_{};
  gfx::Rect keyboard_{};
  std::int64_t last_blink_version_ = 0;
  std::int64_t last_message_version_ = 0;
  bool cursor_on_ = false;
  int pending_keystrokes_ = 0;
  int typed_chars_ = 0;
  std::uint32_t bubble_seed_ = 0;
  int highlighted_key_ = -1;  ///< key index to un-highlight next render
};

}  // namespace ccdem::apps
