#include "apps/wallpaper_scene.h"

#include <algorithm>
#include <cmath>

namespace ccdem::apps {

WallpaperScene::WallpaperScene(const SceneSpec& spec, gfx::Size size,
                               sim::Rng rng)
    : spec_(spec), size_(size), rng_(rng) {
  dots_.resize(static_cast<std::size_t>(spec.dot_count));
  for (auto& d : dots_) {
    d.x = rng_.uniform(20.0, size.width - 20.0);
    d.y = rng_.uniform(20.0, size.height - 20.0);
    // A dot glides several pixels per logic tick; direction is random.
    // The stride matters for the Fig. 6 accuracy study: moving about one
    // grid cell per tick makes each frame's covered-sample set change, so a
    // sufficiently dense grid sees every frame while a coarse one cannot.
    const double speed = rng_.uniform(8.0, 14.0);
    const double angle = rng_.uniform(0.0, 6.283);
    d.vx = speed * std::cos(angle);
    d.vy = speed * std::sin(angle);
    d.color = gfx::Rgb888{
        static_cast<std::uint8_t>(rng_.uniform_int(150, 255)),
        static_cast<std::uint8_t>(rng_.uniform_int(150, 255)),
        static_cast<std::uint8_t>(rng_.uniform_int(150, 255))};
  }
}

void WallpaperScene::draw_dot(gfx::Canvas& canvas, const Dot& d) {
  canvas.draw_circle({static_cast<int>(d.x), static_cast<int>(d.y)},
                     spec_.dot_radius, d.color);
}

void WallpaperScene::erase_dot(gfx::Canvas& canvas, const Dot& d) {
  const int r = spec_.dot_radius;
  canvas.fill_rect(gfx::Rect{static_cast<int>(d.x) - r,
                             static_cast<int>(d.y) - r, 2 * r + 1, 2 * r + 1},
                   bg_);
}

void WallpaperScene::init(gfx::Canvas& canvas) {
  canvas.fill(bg_);
  for (const auto& d : dots_) draw_dot(canvas, d);
}

bool WallpaperScene::render(gfx::Canvas& canvas, sim::Time t) {
  const auto version =
      static_cast<std::int64_t>(t.seconds() * spec_.wallpaper_fps);
  if (version == last_version_) return false;
  const std::int64_t steps = last_version_ < 0 ? 1 : version - last_version_;
  last_version_ = version;

  for (auto& d : dots_) {
    erase_dot(canvas, d);
    for (std::int64_t k = 0; k < steps; ++k) {
      d.x += d.vx;
      d.y += d.vy;
      // Bounce off the edges.
      const double r = spec_.dot_radius;
      if (d.x < r || d.x > size_.width - 1 - r) {
        d.vx = -d.vx;
        d.x = std::clamp(d.x, r, size_.width - 1 - r);
      }
      if (d.y < r || d.y > size_.height - 1 - r) {
        d.vy = -d.vy;
        d.y = std::clamp(d.y, r, size_.height - 1 - r);
      }
    }
    draw_dot(canvas, d);
  }
  return true;
}

double WallpaperScene::nominal_content_fps(sim::Time) const {
  return spec_.wallpaper_fps;
}

}  // namespace ccdem::apps
