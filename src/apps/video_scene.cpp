#include "apps/video_scene.h"

namespace ccdem::apps {

VideoScene::VideoScene(const SceneSpec& spec, gfx::Size size, sim::Rng rng)
    : spec_(spec), size_(size), rng_(rng) {
  // 16:9-ish video band centred vertically; controls strip at the bottom.
  const int video_h = size.width * 9 / 16;
  video_ = {0, (size.height - video_h) / 2, size.width, video_h};
  controls_ = {0, size.height - 72, size.width, 72};
}

void VideoScene::init(gfx::Canvas& canvas) {
  canvas.fill(gfx::colors::kBlack);
  paint_video_frame(canvas, 0);
  last_version_ = 0;  // frame 0 is on screen; re-rendering it is redundant
  canvas.fill_rect(controls_, gfx::colors::kDarkGray);
}

void VideoScene::paint_video_frame(gfx::Canvas& canvas,
                                   std::int64_t version) {
  // A cheap synthetic video with real-codec temporal structure: a gradient
  // backdrop that only changes when the cut index changes, plus two moving
  // high-contrast blocks that reposition every decoded frame.  Within a cut
  // most rows repeat byte-for-byte (inter-frame coherence, the tile cache's
  // win); every frame still has changed pixels, so the ground-truth content
  // rate stays at the decode rate.
  const auto v = static_cast<std::uint32_t>(version);
  const std::uint32_t cut =
      spec_.video_cut_frames > 0 ? v / static_cast<std::uint32_t>(
                                           spec_.video_cut_frames)
                                 : v;
  const gfx::Rgb888 top{static_cast<std::uint8_t>(40 + (cut * 7) % 120),
                        static_cast<std::uint8_t>(30 + (cut * 11) % 100), 60};
  const gfx::Rgb888 bottom{20,
                           static_cast<std::uint8_t>(60 + (cut * 5) % 120),
                           static_cast<std::uint8_t>(90 + (cut * 3) % 100)};
  canvas.fill_gradient(video_, top, bottom);
  const int bw = video_.width / 6;
  const int bx = video_.x + static_cast<int>((v * 23) % static_cast<std::uint32_t>(
                                                 video_.width - bw));
  const int by = video_.y + static_cast<int>((v * 17) % static_cast<std::uint32_t>(
                                                 video_.height - 60));
  canvas.fill_rect(gfx::Rect{bx, by, bw, 60}, gfx::colors::kWhite);
  canvas.fill_rect(
      gfx::Rect{video_.x + video_.width - bx - bw, video_.y + 20, bw / 2, 40},
      gfx::colors::kYellow);
}

void VideoScene::on_touch(const input::TouchEvent& e) {
  if (e.action == input::TouchEvent::Action::kDown) {
    controls_dirty_ = true;
    ++controls_seed_;
  }
}

bool VideoScene::render(gfx::Canvas& canvas, sim::Time t) {
  bool changed = false;
  const auto version =
      static_cast<std::int64_t>(t.seconds() * spec_.video_fps);
  if (version != last_version_) {
    last_version_ = version;
    // The clip loops: past one period every decoded frame repeats an earlier
    // one exactly, which is what whole-frame memoization keys on.
    const std::int64_t looped = spec_.video_loop_frames > 0
                                    ? version % spec_.video_loop_frames
                                    : version;
    paint_video_frame(canvas, looped);
    changed = true;
  }
  if (controls_dirty_) {
    controls_dirty_ = false;
    canvas.fill_rect(controls_, gfx::colors::kDarkGray);
    canvas.draw_text_block(gfx::Rect{16, controls_.y + 16,
                                     controls_.width - 32, 40},
                           gfx::colors::kWhite, gfx::colors::kDarkGray,
                           controls_seed_);
    changed = true;
  }
  return changed;
}

double VideoScene::nominal_content_fps(sim::Time) const {
  return spec_.video_fps;
}

}  // namespace ccdem::apps
