// WallpaperScene: a live wallpaper making *small* changes each frame.
//
// Models the Nexus Revampled wallpaper the paper uses as the adversarial
// accuracy workload in section 4.1: a handful of tiny dots drifting across
// the screen.  A dot can move entirely between the sample points of a coarse
// grid, making the frame look redundant to the meter -- the source of the
// error rates at 2K/4K pixels in Fig. 6.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/scene.h"

namespace ccdem::apps {

class WallpaperScene final : public Scene {
 public:
  WallpaperScene(const SceneSpec& spec, gfx::Size size, sim::Rng rng);

  void init(gfx::Canvas& canvas) override;
  bool render(gfx::Canvas& canvas, sim::Time t) override;
  [[nodiscard]] double nominal_content_fps(sim::Time t) const override;

 private:
  struct Dot {
    double x = 0, y = 0;    ///< position
    double vx = 0, vy = 0;  ///< velocity in px per logic tick
    gfx::Rgb888 color{};
  };

  void draw_dot(gfx::Canvas& canvas, const Dot& d);
  void erase_dot(gfx::Canvas& canvas, const Dot& d);

  SceneSpec spec_;
  gfx::Size size_;
  sim::Rng rng_;
  std::vector<Dot> dots_;
  gfx::Rgb888 bg_{8, 8, 16};
  std::int64_t last_version_ = -1;
};

}  // namespace ccdem::apps
