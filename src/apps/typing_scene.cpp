#include "apps/typing_scene.h"

#include <algorithm>

namespace ccdem::apps {

namespace {
constexpr int kInputBarHeight = 90;
constexpr int kKeyboardHeight = 380;
constexpr int kBubbleHeight = 110;
constexpr int kKeyColumns = 10;
constexpr int kKeyRows = 4;
const gfx::Rgb888 kBgColor{235, 240, 245};
const gfx::Rgb888 kKeyboardColor{210, 214, 220};
const gfx::Rgb888 kKeyColor{250, 250, 252};
const gfx::Rgb888 kKeyHighlight{160, 190, 250};
const gfx::Rgb888 kInputColor{255, 255, 255};
}  // namespace

TypingScene::TypingScene(const SceneSpec& spec, gfx::Size size, sim::Rng rng)
    : spec_(spec), size_(size), rng_(rng) {
  keyboard_ = {0, size.height - kKeyboardHeight, size.width,
               kKeyboardHeight};
  input_bar_ = {0, keyboard_.y - kInputBarHeight, size.width,
                kInputBarHeight};
  conversation_ = {0, 0, size.width, input_bar_.y};
}

gfx::Rect TypingScene::cursor_rect() const {
  const int x = 16 + typed_chars_ * 11;
  return gfx::Rect{std::min(x, input_bar_.right() - 24), input_bar_.y + 20,
                   3, kInputBarHeight - 40};
}

void TypingScene::paint_bubble(gfx::Canvas& canvas, std::uint32_t seed,
                               bool incoming) {
  // Scroll the conversation up and draw the new bubble at the bottom.
  canvas.scroll_up(conversation_, kBubbleHeight);
  const int w = conversation_.width * 3 / 5;
  const gfx::Rect band{conversation_.x,
                       conversation_.bottom() - kBubbleHeight,
                       conversation_.width, kBubbleHeight};
  canvas.fill_rect(band, kBgColor);
  const gfx::Rect bubble{incoming ? 12 : conversation_.width - w - 12,
                         band.y + 8, w, kBubbleHeight - 16};
  const gfx::Rgb888 color =
      incoming ? gfx::Rgb888{255, 255, 255} : gfx::Rgb888{255, 235, 59};
  canvas.fill_rect(bubble, color);
  canvas.draw_text_block(
      gfx::Rect{bubble.x + 10, bubble.y + 10, bubble.width - 20,
                bubble.height - 20},
      gfx::colors::kDarkGray, color, seed);
}

void TypingScene::paint_input_text(gfx::Canvas& canvas) {
  canvas.fill_rect(input_bar_, kInputColor);
  canvas.draw_text_block(
      gfx::Rect{12, input_bar_.y + 24,
                std::min(16 + typed_chars_ * 11, input_bar_.width - 24),
                kInputBarHeight - 48},
      gfx::colors::kDarkGray, kInputColor,
      static_cast<std::uint32_t>(typed_chars_));
}

void TypingScene::init(gfx::Canvas& canvas) {
  canvas.fill_rect(conversation_, kBgColor);
  // Seed the conversation with a few bubbles.
  for (int i = 0; i < 4; ++i) {
    paint_bubble(canvas, static_cast<std::uint32_t>(i), i % 2 == 0);
  }
  paint_input_text(canvas);
  canvas.fill_rect(keyboard_, kKeyboardColor);
  const int kw = keyboard_.width / kKeyColumns;
  const int kh = keyboard_.height / kKeyRows;
  for (int r = 0; r < kKeyRows; ++r) {
    for (int c = 0; c < kKeyColumns; ++c) {
      canvas.fill_rect(gfx::Rect{c * kw + 3, keyboard_.y + r * kh + 3,
                                 kw - 6, kh - 6},
                       kKeyColor);
    }
  }
}

void TypingScene::on_touch(const input::TouchEvent& e) {
  if (e.action == input::TouchEvent::Action::kDown) {
    ++pending_keystrokes_;
  }
}

bool TypingScene::render(gfx::Canvas& canvas, sim::Time t) {
  bool changed = false;

  // Cursor blink.
  if (spec_.cursor_blink_fps > 0.0) {
    const auto blink =
        static_cast<std::int64_t>(t.seconds() * spec_.cursor_blink_fps);
    if (blink != last_blink_version_) {
      last_blink_version_ = blink;
      cursor_on_ = !cursor_on_;
      canvas.fill_rect(cursor_rect(),
                       cursor_on_ ? gfx::colors::kDarkGray : kInputColor);
      changed = true;
    }
  }

  // Un-highlight the previously pressed key, then process one keystroke.
  const int kw = keyboard_.width / kKeyColumns;
  const int kh = keyboard_.height / kKeyRows;
  if (highlighted_key_ >= 0) {
    const int r = highlighted_key_ / kKeyColumns;
    const int c = highlighted_key_ % kKeyColumns;
    canvas.fill_rect(gfx::Rect{c * kw + 3, keyboard_.y + r * kh + 3, kw - 6,
                               kh - 6},
                     kKeyColor);
    highlighted_key_ = -1;
    changed = true;
  }
  if (pending_keystrokes_ > 0) {
    --pending_keystrokes_;
    highlighted_key_ =
        static_cast<int>(rng_.uniform_int(0, kKeyColumns * kKeyRows - 1));
    const int r = highlighted_key_ / kKeyColumns;
    const int c = highlighted_key_ % kKeyColumns;
    canvas.fill_rect(gfx::Rect{c * kw + 3, keyboard_.y + r * kh + 3, kw - 6,
                               kh - 6},
                     kKeyHighlight);
    ++typed_chars_;
    if (typed_chars_ * 11 > input_bar_.width - 60) {
      // "Send": the typed text becomes an outgoing bubble.
      typed_chars_ = 0;
      paint_bubble(canvas, ++bubble_seed_, /*incoming=*/false);
    }
    paint_input_text(canvas);
    changed = true;
  }

  // Incoming messages.
  if (spec_.incoming_msg_period_s > 0.0) {
    const auto version = static_cast<std::int64_t>(
        t.seconds() / spec_.incoming_msg_period_s);
    if (version != last_message_version_) {
      last_message_version_ = version;
      paint_bubble(canvas, 1000u + static_cast<std::uint32_t>(version),
                   /*incoming=*/true);
      changed = true;
    }
  }
  return changed;
}

double TypingScene::nominal_content_fps(sim::Time) const {
  double fps = spec_.cursor_blink_fps;
  if (pending_keystrokes_ > 0 || highlighted_key_ >= 0) fps = 30.0;
  return fps;
}

}  // namespace ccdem::apps
