// MapScene: a tile-based map viewer (Daum Maps / NaverMap class).
//
// Unlike the feed scene's vertical scrolling, a map pans in two dimensions:
// each touch move drags the viewport, the whole visible area shifts, and
// the newly exposed bands repaint from the virtual tile plane.  Map apps
// also animate markers/position pulses at a low idle rate and are known
// redundancy offenders (Fig. 3's Daum Maps ~20 redundant fps: the engine
// keeps requesting frames while the map sits still).
#pragma once

#include <cstdint>

#include "apps/scene.h"

namespace ccdem::apps {

class MapScene final : public Scene {
 public:
  MapScene(const SceneSpec& spec, gfx::Size size, sim::Rng rng);

  void init(gfx::Canvas& canvas) override;
  bool render(gfx::Canvas& canvas, sim::Time t) override;
  void on_touch(const input::TouchEvent& e) override;
  [[nodiscard]] double nominal_content_fps(sim::Time t) const override;

  [[nodiscard]] gfx::Point viewport_origin() const {
    return {origin_x_, origin_y_};
  }

 private:
  /// Colour of the virtual map at world coordinates (wx, wy).
  [[nodiscard]] gfx::Rgb888 world_color(int wx, int wy) const;
  void paint_world_band(gfx::Canvas& canvas, gfx::Rect screen_band);
  void paint_marker(gfx::Canvas& canvas, std::int64_t pulse);
  void pan(gfx::Canvas& canvas, int dx, int dy);

  SceneSpec spec_;
  gfx::Size size_;
  sim::Rng rng_;
  int origin_x_ = 0;  ///< world coordinate of the screen's top-left
  int origin_y_ = 0;
  std::int64_t last_pulse_version_ = 0;
  bool dragging_ = false;
  gfx::Point last_touch_pos_{};
  int pending_dx_ = 0;  ///< queued pan, consumed per render
  int pending_dy_ = 0;
};

}  // namespace ccdem::apps
