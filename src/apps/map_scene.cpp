#include "apps/map_scene.h"

#include <algorithm>
#include <cmath>

namespace ccdem::apps {

namespace {
constexpr int kTile = 64;
constexpr int kRoadPeriod = 256;
constexpr int kRoadWidth = 6;
}  // namespace

MapScene::MapScene(const SceneSpec& spec, gfx::Size size, sim::Rng rng)
    : spec_(spec), size_(size), rng_(rng) {
  origin_x_ = static_cast<int>(rng_.uniform_int(0, 1 << 16));
  origin_y_ = static_cast<int>(rng_.uniform_int(0, 1 << 16));
}

gfx::Rgb888 MapScene::world_color(int wx, int wy) const {
  // Roads form a grid over pastel terrain tiles.
  const int rx = ((wx % kRoadPeriod) + kRoadPeriod) % kRoadPeriod;
  const int ry = ((wy % kRoadPeriod) + kRoadPeriod) % kRoadPeriod;
  if (rx < kRoadWidth || ry < kRoadWidth) return gfx::Rgb888{235, 235, 230};
  const auto tx = static_cast<std::uint32_t>(wx >= 0 ? wx / kTile
                                                     : (wx - kTile + 1) / kTile);
  const auto ty = static_cast<std::uint32_t>(wy >= 0 ? wy / kTile
                                                     : (wy - kTile + 1) / kTile);
  const std::uint32_t h = (tx * 2654435761u) ^ (ty * 40503u);
  return gfx::Rgb888{static_cast<std::uint8_t>(140 + (h & 0x3f)),
                     static_cast<std::uint8_t>(170 + ((h >> 8) & 0x3f)),
                     static_cast<std::uint8_t>(130 + ((h >> 16) & 0x3f))};
}

void MapScene::paint_world_band(gfx::Canvas& canvas, gfx::Rect screen_band) {
  const gfx::Rect band = screen_band.intersect(gfx::Rect::of(size_));
  if (band.empty()) return;
  gfx::Framebuffer& fb = canvas.framebuffer();
  // Paint in horizontal runs of constant colour (roads/tiles are blocky),
  // which keeps panning cheap.
  for (int y = band.y; y < band.bottom(); ++y) {
    const int wy = y + origin_y_;
    int x = band.x;
    while (x < band.right()) {
      const gfx::Rgb888 c = world_color(x + origin_x_, wy);
      int run_end = x + 1;
      while (run_end < band.right() &&
             world_color(run_end + origin_x_, wy) == c) {
        ++run_end;
      }
      for (int px = x; px < run_end; ++px) fb.set(px, y, c);
      x = run_end;
    }
  }
  // fb writes bypass the canvas, so mark the band explicitly.
  canvas.mark_dirty(band);
}

void MapScene::paint_marker(gfx::Canvas& canvas, std::int64_t pulse) {
  const gfx::Point center{size_.width / 2, size_.height / 2};
  const int max_r = 20;
  // Repaint the world beneath the largest marker extent, then the pulse.
  paint_world_band(canvas,
                   gfx::Rect{center.x - max_r, center.y - max_r,
                             2 * max_r + 1, 2 * max_r + 1});
  // Radius and ring colour both cycle (with co-prime periods) so any two
  // distinct pulse values paint distinct pixels -- even across version
  // jumps after a long render gap.
  const int r = 8 + static_cast<int>(pulse % 4) * 3;
  const auto g =
      static_cast<std::uint8_t>(70 + (static_cast<std::uint64_t>(pulse) * 37) % 80);
  canvas.draw_circle(center, r, gfx::Rgb888{30, g, 220});
  canvas.draw_circle(center, 5, gfx::colors::kWhite);
}

void MapScene::init(gfx::Canvas& canvas) {
  paint_world_band(canvas, gfx::Rect::of(size_));
  paint_marker(canvas, 0);
}

void MapScene::on_touch(const input::TouchEvent& e) {
  switch (e.action) {
    case input::TouchEvent::Action::kDown:
      dragging_ = true;
      last_touch_pos_ = e.pos;
      break;
    case input::TouchEvent::Action::kMove:
      if (dragging_) {
        // Dragging right moves the viewport left (content follows finger).
        pending_dx_ -= e.pos.x - last_touch_pos_.x;
        pending_dy_ -= e.pos.y - last_touch_pos_.y;
        last_touch_pos_ = e.pos;
      }
      break;
    case input::TouchEvent::Action::kUp:
      dragging_ = false;
      break;
  }
}

void MapScene::pan(gfx::Canvas& canvas, int dx, int dy) {
  origin_x_ += dx;
  origin_y_ += dy;
  // Content moves opposite to the origin shift; shift() marks the region.
  canvas.shift(gfx::Rect::of(size_), -dx, -dy);
  // Exposed bands: vertical band on the entering side, horizontal band too.
  if (dx > 0) {
    paint_world_band(canvas, gfx::Rect{size_.width - dx, 0, dx, size_.height});
  } else if (dx < 0) {
    paint_world_band(canvas, gfx::Rect{0, 0, -dx, size_.height});
  }
  if (dy > 0) {
    paint_world_band(canvas, gfx::Rect{0, size_.height - dy, size_.width, dy});
  } else if (dy < 0) {
    paint_world_band(canvas, gfx::Rect{0, 0, size_.width, -dy});
  }
}

bool MapScene::render(gfx::Canvas& canvas, sim::Time t) {
  bool changed = false;

  if (pending_dx_ != 0 || pending_dy_ != 0) {
    const int step = spec_.scroll_px_per_frame;
    const int dx = std::clamp(pending_dx_, -step, step);
    const int dy = std::clamp(pending_dy_, -step, step);
    pending_dx_ -= dx;
    pending_dy_ -= dy;
    if (dx != 0 || dy != 0) {
      pan(canvas, dx, dy);
      changed = true;
    }
  }

  if (spec_.idle_content_fps > 0.0) {
    const auto pulse =
        static_cast<std::int64_t>(t.seconds() * spec_.idle_content_fps);
    if (pulse != last_pulse_version_) {
      last_pulse_version_ = pulse;
      paint_marker(canvas, pulse);
      changed = true;
    }
  }
  return changed;
}

double MapScene::nominal_content_fps(sim::Time) const {
  if (pending_dx_ != 0 || pending_dy_ != 0) return 60.0;
  return spec_.idle_content_fps;
}

}  // namespace ccdem::apps
