// VideoScene: a media player (MX Player class).
//
// A letterboxed video region updates at the encoded frame rate regardless of
// interaction; the chrome (controls, seek bar) changes only on touch.  The
// content rate is therefore pinned near `video_fps` -- the case where the
// section controller locks the refresh rate to the lowest level above the
// video cadence and saves power with no quality impact.
#pragma once

#include <cstdint>

#include "apps/scene.h"

namespace ccdem::apps {

class VideoScene final : public Scene {
 public:
  VideoScene(const SceneSpec& spec, gfx::Size size, sim::Rng rng);

  void init(gfx::Canvas& canvas) override;
  bool render(gfx::Canvas& canvas, sim::Time t) override;
  void on_touch(const input::TouchEvent& e) override;
  [[nodiscard]] double nominal_content_fps(sim::Time t) const override;

 private:
  void paint_video_frame(gfx::Canvas& canvas, std::int64_t version);

  SceneSpec spec_;
  gfx::Size size_;
  sim::Rng rng_;
  gfx::Rect video_{};
  gfx::Rect controls_{};
  std::int64_t last_version_ = -1;
  bool controls_dirty_ = false;
  std::uint32_t controls_seed_ = 0;
};

}  // namespace ccdem::apps
