// AppModel: the frame-request behaviour of an application.
//
// Separates *how often the app asks for frames* (the frame rate, Fig. 2)
// from *how often its content changes* (the scene's content rate).  The app
// renders on V-Sync callbacks -- V-Sync caps its request rate at the current
// refresh rate, which is the interaction the whole paper leans on -- and
// posts a frame whether or not the scene drew anything, charging its render
// energy either way (a real app burns GPU redrawing identical content).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/scene.h"
#include "display/display_panel.h"
#include "gfx/surface.h"
#include "input/input_dispatcher.h"
#include "input/monkey.h"
#include "power/device_power_model.h"
#include "sim/rng.h"

namespace ccdem::apps {

struct AppSpec {
  enum class Category { kGeneral, kGame };

  std::string name;
  Category category = Category::kGeneral;

  /// Frames the app requests per second when idle.
  double idle_request_fps = 8.0;
  /// Request rate during and shortly after interaction.
  double burst_request_fps = 60.0;
  /// How long after the last touch the burst request rate persists.
  double burst_hold_s = 1.0;
  /// App-side render energy per posted frame (GPU + CPU), in mJ.
  double render_mj_per_frame = 2.5;

  /// DVFS coupling (extension, off by default): real governors raise the
  /// GPU/CPU frequency -- and the energy *per frame* -- with the frame
  /// rate.  When enabled, the per-frame render energy is scaled by
  /// 0.7 + 0.6 * (request_fps / 60), so halving the frame rate saves more
  /// than linearly (the effect the paper's hardware measurements include
  /// and a pure per-frame model misses).
  bool dvfs_coupling = false;

  SceneSpec scene{};
  input::MonkeyProfile monkey = input::MonkeyProfile::general_app();

  /// Multi-surface composition: where this app's surface sits on screen
  /// (empty = full screen) and at which z-order.  `overlays` are auxiliary
  /// surfaces (status bar, dialog band, ...) installed alongside the
  /// primary app, each with its own scene, damage tracking and fixed RNG
  /// stream -- adding one never perturbs the primary app's randomness.
  gfx::Rect surface_rect{};
  int surface_z = 0;
  std::vector<AppSpec> overlays;
};

class AppModel final : public display::VsyncObserver,
                       public input::TouchListener {
 public:
  /// `power` may be null (no render-energy accounting).
  AppModel(AppSpec spec, gfx::Surface* surface,
           power::DevicePowerModel* power, sim::Rng rng);

  AppModel(const AppModel&) = delete;
  AppModel& operator=(const AppModel&) = delete;

  /// Choreographer callback (panel phase kApp): maybe renders and posts.
  void on_vsync(sim::Time t, int refresh_hz) override;

  /// Input delivery: opens the request burst and forwards to the scene.
  void on_touch(const input::TouchEvent& e) override;

  [[nodiscard]] const AppSpec& spec() const { return spec_; }
  [[nodiscard]] Scene& scene() { return *scene_; }
  [[nodiscard]] std::uint64_t frames_posted() const { return frames_posted_; }
  [[nodiscard]] double current_request_fps(sim::Time t) const;

  /// Render energy for one frame at the given request rate, including the
  /// optional DVFS coupling factor.
  [[nodiscard]] double render_energy_mj(double request_fps) const;

  /// External cap on the request rate, used by frame-rate governors
  /// (core::FrameRateGovernor); 0 disables the cap.  The cap models an
  /// OS-imposed render throttle, so it applies on top of the app's own
  /// idle/burst request behaviour.
  void set_request_cap(double fps) { request_cap_fps_ = fps; }
  [[nodiscard]] double request_cap() const { return request_cap_fps_; }

  /// Foreground control for app-switching sessions.  A backgrounded app
  /// ignores V-Sync and touch; bringing it to the foreground forces a full
  /// window redraw on the next frame (as a real activity resume does).
  void set_foreground(bool fg);
  [[nodiscard]] bool foreground() const { return foreground_; }

 private:
  AppSpec spec_;
  gfx::Surface* surface_;
  power::DevicePowerModel* power_;
  std::unique_ptr<Scene> scene_;
  bool initialized_ = false;
  bool foreground_ = true;
  sim::Time next_render_{};
  sim::Time burst_until_{sim::Time{} - sim::seconds(1)};
  double request_cap_fps_ = 0.0;
  std::uint64_t frames_posted_ = 0;
};

}  // namespace ccdem::apps
